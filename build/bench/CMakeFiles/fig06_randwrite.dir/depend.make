# Empty dependencies file for fig06_randwrite.
# This may be replaced when dependencies are built.
