file(REMOVE_RECURSE
  "CMakeFiles/fig06_randwrite.dir/fig06_randwrite.cc.o"
  "CMakeFiles/fig06_randwrite.dir/fig06_randwrite.cc.o.d"
  "fig06_randwrite"
  "fig06_randwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_randwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
