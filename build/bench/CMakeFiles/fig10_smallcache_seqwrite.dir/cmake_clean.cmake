file(REMOVE_RECURSE
  "CMakeFiles/fig10_smallcache_seqwrite.dir/fig10_smallcache_seqwrite.cc.o"
  "CMakeFiles/fig10_smallcache_seqwrite.dir/fig10_smallcache_seqwrite.cc.o.d"
  "fig10_smallcache_seqwrite"
  "fig10_smallcache_seqwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_smallcache_seqwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
