# Empty dependencies file for fig10_smallcache_seqwrite.
# This may be replaced when dependencies are built.
