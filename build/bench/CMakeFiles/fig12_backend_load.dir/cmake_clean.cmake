file(REMOVE_RECURSE
  "CMakeFiles/fig12_backend_load.dir/fig12_backend_load.cc.o"
  "CMakeFiles/fig12_backend_load.dir/fig12_backend_load.cc.o.d"
  "fig12_backend_load"
  "fig12_backend_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_backend_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
