# Empty compiler generated dependencies file for fig12_backend_load.
# This may be replaced when dependencies are built.
