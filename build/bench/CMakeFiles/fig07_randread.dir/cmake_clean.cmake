file(REMOVE_RECURSE
  "CMakeFiles/fig07_randread.dir/fig07_randread.cc.o"
  "CMakeFiles/fig07_randread.dir/fig07_randread.cc.o.d"
  "fig07_randread"
  "fig07_randread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_randread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
