# Empty compiler generated dependencies file for fig07_randread.
# This may be replaced when dependencies are built.
