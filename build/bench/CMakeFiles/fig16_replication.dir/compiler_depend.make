# Empty compiler generated dependencies file for fig16_replication.
# This may be replaced when dependencies are built.
