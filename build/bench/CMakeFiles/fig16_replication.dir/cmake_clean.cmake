file(REMOVE_RECURSE
  "CMakeFiles/fig16_replication.dir/fig16_replication.cc.o"
  "CMakeFiles/fig16_replication.dir/fig16_replication.cc.o.d"
  "fig16_replication"
  "fig16_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
