file(REMOVE_RECURSE
  "CMakeFiles/micro_structures.dir/micro_structures.cc.o"
  "CMakeFiles/micro_structures.dir/micro_structures.cc.o.d"
  "micro_structures"
  "micro_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
