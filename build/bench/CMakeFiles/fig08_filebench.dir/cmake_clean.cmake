file(REMOVE_RECURSE
  "CMakeFiles/fig08_filebench.dir/fig08_filebench.cc.o"
  "CMakeFiles/fig08_filebench.dir/fig08_filebench.cc.o.d"
  "fig08_filebench"
  "fig08_filebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_filebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
