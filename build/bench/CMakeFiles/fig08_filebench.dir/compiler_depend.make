# Empty compiler generated dependencies file for fig08_filebench.
# This may be replaced when dependencies are built.
