
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_filebench.cc" "bench/CMakeFiles/fig08_filebench.dir/fig08_filebench.cc.o" "gcc" "bench/CMakeFiles/fig08_filebench.dir/fig08_filebench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/lsvd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/lsvd/CMakeFiles/lsvd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lsvd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/minifs/CMakeFiles/lsvd_minifs.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/lsvd_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/lsvd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
