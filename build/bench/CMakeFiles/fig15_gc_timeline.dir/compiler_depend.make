# Empty compiler generated dependencies file for fig15_gc_timeline.
# This may be replaced when dependencies are built.
