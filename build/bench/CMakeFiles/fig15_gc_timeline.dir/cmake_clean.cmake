file(REMOVE_RECURSE
  "CMakeFiles/fig15_gc_timeline.dir/fig15_gc_timeline.cc.o"
  "CMakeFiles/fig15_gc_timeline.dir/fig15_gc_timeline.cc.o.d"
  "fig15_gc_timeline"
  "fig15_gc_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
