# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tbl06_latency_breakdown.
