# Empty compiler generated dependencies file for tbl06_latency_breakdown.
# This may be replaced when dependencies are built.
