file(REMOVE_RECURSE
  "CMakeFiles/tbl06_latency_breakdown.dir/tbl06_latency_breakdown.cc.o"
  "CMakeFiles/tbl06_latency_breakdown.dir/tbl06_latency_breakdown.cc.o.d"
  "tbl06_latency_breakdown"
  "tbl06_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl06_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
