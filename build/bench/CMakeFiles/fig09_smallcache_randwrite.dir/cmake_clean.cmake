file(REMOVE_RECURSE
  "CMakeFiles/fig09_smallcache_randwrite.dir/fig09_smallcache_randwrite.cc.o"
  "CMakeFiles/fig09_smallcache_randwrite.dir/fig09_smallcache_randwrite.cc.o.d"
  "fig09_smallcache_randwrite"
  "fig09_smallcache_randwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_smallcache_randwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
