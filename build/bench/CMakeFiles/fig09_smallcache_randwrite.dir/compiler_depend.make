# Empty compiler generated dependencies file for fig09_smallcache_randwrite.
# This may be replaced when dependencies are built.
