# Empty dependencies file for sec49_aws_cost.
# This may be replaced when dependencies are built.
