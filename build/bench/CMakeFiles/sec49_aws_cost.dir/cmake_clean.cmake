file(REMOVE_RECURSE
  "CMakeFiles/sec49_aws_cost.dir/sec49_aws_cost.cc.o"
  "CMakeFiles/sec49_aws_cost.dir/sec49_aws_cost.cc.o.d"
  "sec49_aws_cost"
  "sec49_aws_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec49_aws_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
