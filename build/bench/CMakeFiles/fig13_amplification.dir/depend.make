# Empty dependencies file for fig13_amplification.
# This may be replaced when dependencies are built.
