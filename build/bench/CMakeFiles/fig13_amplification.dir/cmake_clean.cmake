file(REMOVE_RECURSE
  "CMakeFiles/fig13_amplification.dir/fig13_amplification.cc.o"
  "CMakeFiles/fig13_amplification.dir/fig13_amplification.cc.o.d"
  "fig13_amplification"
  "fig13_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
