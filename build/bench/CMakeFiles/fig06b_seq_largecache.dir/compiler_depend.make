# Empty compiler generated dependencies file for fig06b_seq_largecache.
# This may be replaced when dependencies are built.
