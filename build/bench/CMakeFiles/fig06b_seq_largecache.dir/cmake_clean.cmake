file(REMOVE_RECURSE
  "CMakeFiles/fig06b_seq_largecache.dir/fig06b_seq_largecache.cc.o"
  "CMakeFiles/fig06b_seq_largecache.dir/fig06b_seq_largecache.cc.o.d"
  "fig06b_seq_largecache"
  "fig06b_seq_largecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_seq_largecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
