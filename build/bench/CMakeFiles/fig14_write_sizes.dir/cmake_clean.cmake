file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_sizes.dir/fig14_write_sizes.cc.o"
  "CMakeFiles/fig14_write_sizes.dir/fig14_write_sizes.cc.o.d"
  "fig14_write_sizes"
  "fig14_write_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
