# Empty dependencies file for fig14_write_sizes.
# This may be replaced when dependencies are built.
