file(REMOVE_RECURSE
  "CMakeFiles/tbl04_crash.dir/tbl04_crash.cc.o"
  "CMakeFiles/tbl04_crash.dir/tbl04_crash.cc.o.d"
  "tbl04_crash"
  "tbl04_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl04_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
