# Empty compiler generated dependencies file for tbl04_crash.
# This may be replaced when dependencies are built.
