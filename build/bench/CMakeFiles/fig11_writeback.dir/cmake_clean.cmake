file(REMOVE_RECURSE
  "CMakeFiles/fig11_writeback.dir/fig11_writeback.cc.o"
  "CMakeFiles/fig11_writeback.dir/fig11_writeback.cc.o.d"
  "fig11_writeback"
  "fig11_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
