# Empty compiler generated dependencies file for fig11_writeback.
# This may be replaced when dependencies are built.
