# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tbl03_filebench_stats.
