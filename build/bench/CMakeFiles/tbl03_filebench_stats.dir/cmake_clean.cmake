file(REMOVE_RECURSE
  "CMakeFiles/tbl03_filebench_stats.dir/tbl03_filebench_stats.cc.o"
  "CMakeFiles/tbl03_filebench_stats.dir/tbl03_filebench_stats.cc.o.d"
  "tbl03_filebench_stats"
  "tbl03_filebench_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl03_filebench_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
