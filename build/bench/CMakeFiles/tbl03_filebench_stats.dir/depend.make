# Empty dependencies file for tbl03_filebench_stats.
# This may be replaced when dependencies are built.
