# Empty dependencies file for tbl05_gc_traces.
# This may be replaced when dependencies are built.
