file(REMOVE_RECURSE
  "CMakeFiles/tbl05_gc_traces.dir/tbl05_gc_traces.cc.o"
  "CMakeFiles/tbl05_gc_traces.dir/tbl05_gc_traces.cc.o.d"
  "tbl05_gc_traces"
  "tbl05_gc_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl05_gc_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
