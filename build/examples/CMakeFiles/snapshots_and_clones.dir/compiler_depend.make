# Empty compiler generated dependencies file for snapshots_and_clones.
# This may be replaced when dependencies are built.
