file(REMOVE_RECURSE
  "CMakeFiles/snapshots_and_clones.dir/snapshots_and_clones.cpp.o"
  "CMakeFiles/snapshots_and_clones.dir/snapshots_and_clones.cpp.o.d"
  "snapshots_and_clones"
  "snapshots_and_clones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshots_and_clones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
