file(REMOVE_RECURSE
  "CMakeFiles/replication_demo.dir/replication_demo.cpp.o"
  "CMakeFiles/replication_demo.dir/replication_demo.cpp.o.d"
  "replication_demo"
  "replication_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
