# Empty compiler generated dependencies file for replication_demo.
# This may be replaced when dependencies are built.
