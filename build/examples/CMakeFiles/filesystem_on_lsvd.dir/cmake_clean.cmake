file(REMOVE_RECURSE
  "CMakeFiles/filesystem_on_lsvd.dir/filesystem_on_lsvd.cpp.o"
  "CMakeFiles/filesystem_on_lsvd.dir/filesystem_on_lsvd.cpp.o.d"
  "filesystem_on_lsvd"
  "filesystem_on_lsvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_on_lsvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
