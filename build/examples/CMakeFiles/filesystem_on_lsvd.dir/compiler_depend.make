# Empty compiler generated dependencies file for filesystem_on_lsvd.
# This may be replaced when dependencies are built.
