# Empty compiler generated dependencies file for lsvd_sim.
# This may be replaced when dependencies are built.
