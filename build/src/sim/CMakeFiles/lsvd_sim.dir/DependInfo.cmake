
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/lsvd_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/lsvd_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/disk_model.cc" "src/sim/CMakeFiles/lsvd_sim.dir/disk_model.cc.o" "gcc" "src/sim/CMakeFiles/lsvd_sim.dir/disk_model.cc.o.d"
  "/root/repo/src/sim/server_queue.cc" "src/sim/CMakeFiles/lsvd_sim.dir/server_queue.cc.o" "gcc" "src/sim/CMakeFiles/lsvd_sim.dir/server_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/lsvd_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/lsvd_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
