file(REMOVE_RECURSE
  "liblsvd_sim.a"
)
