file(REMOVE_RECURSE
  "CMakeFiles/lsvd_sim.dir/cluster.cc.o"
  "CMakeFiles/lsvd_sim.dir/cluster.cc.o.d"
  "CMakeFiles/lsvd_sim.dir/disk_model.cc.o"
  "CMakeFiles/lsvd_sim.dir/disk_model.cc.o.d"
  "CMakeFiles/lsvd_sim.dir/server_queue.cc.o"
  "CMakeFiles/lsvd_sim.dir/server_queue.cc.o.d"
  "CMakeFiles/lsvd_sim.dir/simulator.cc.o"
  "CMakeFiles/lsvd_sim.dir/simulator.cc.o.d"
  "liblsvd_sim.a"
  "liblsvd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
