file(REMOVE_RECURSE
  "CMakeFiles/lsvd_objstore.dir/mem_object_store.cc.o"
  "CMakeFiles/lsvd_objstore.dir/mem_object_store.cc.o.d"
  "CMakeFiles/lsvd_objstore.dir/sim_object_store.cc.o"
  "CMakeFiles/lsvd_objstore.dir/sim_object_store.cc.o.d"
  "liblsvd_objstore.a"
  "liblsvd_objstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_objstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
