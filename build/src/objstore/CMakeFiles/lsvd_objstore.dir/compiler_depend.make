# Empty compiler generated dependencies file for lsvd_objstore.
# This may be replaced when dependencies are built.
