file(REMOVE_RECURSE
  "liblsvd_objstore.a"
)
