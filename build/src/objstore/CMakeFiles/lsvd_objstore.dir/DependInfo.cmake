
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objstore/mem_object_store.cc" "src/objstore/CMakeFiles/lsvd_objstore.dir/mem_object_store.cc.o" "gcc" "src/objstore/CMakeFiles/lsvd_objstore.dir/mem_object_store.cc.o.d"
  "/root/repo/src/objstore/sim_object_store.cc" "src/objstore/CMakeFiles/lsvd_objstore.dir/sim_object_store.cc.o" "gcc" "src/objstore/CMakeFiles/lsvd_objstore.dir/sim_object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lsvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
