file(REMOVE_RECURSE
  "CMakeFiles/lsvd_workload.dir/driver.cc.o"
  "CMakeFiles/lsvd_workload.dir/driver.cc.o.d"
  "CMakeFiles/lsvd_workload.dir/filebench.cc.o"
  "CMakeFiles/lsvd_workload.dir/filebench.cc.o.d"
  "CMakeFiles/lsvd_workload.dir/fio_gen.cc.o"
  "CMakeFiles/lsvd_workload.dir/fio_gen.cc.o.d"
  "CMakeFiles/lsvd_workload.dir/trace_gen.cc.o"
  "CMakeFiles/lsvd_workload.dir/trace_gen.cc.o.d"
  "liblsvd_workload.a"
  "liblsvd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
