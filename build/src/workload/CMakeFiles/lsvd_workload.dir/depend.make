# Empty dependencies file for lsvd_workload.
# This may be replaced when dependencies are built.
