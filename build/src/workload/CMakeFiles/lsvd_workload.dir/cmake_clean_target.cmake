file(REMOVE_RECURSE
  "liblsvd_workload.a"
)
