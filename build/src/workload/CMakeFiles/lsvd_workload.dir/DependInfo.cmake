
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/driver.cc" "src/workload/CMakeFiles/lsvd_workload.dir/driver.cc.o" "gcc" "src/workload/CMakeFiles/lsvd_workload.dir/driver.cc.o.d"
  "/root/repo/src/workload/filebench.cc" "src/workload/CMakeFiles/lsvd_workload.dir/filebench.cc.o" "gcc" "src/workload/CMakeFiles/lsvd_workload.dir/filebench.cc.o.d"
  "/root/repo/src/workload/fio_gen.cc" "src/workload/CMakeFiles/lsvd_workload.dir/fio_gen.cc.o" "gcc" "src/workload/CMakeFiles/lsvd_workload.dir/fio_gen.cc.o.d"
  "/root/repo/src/workload/trace_gen.cc" "src/workload/CMakeFiles/lsvd_workload.dir/trace_gen.cc.o" "gcc" "src/workload/CMakeFiles/lsvd_workload.dir/trace_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blockdev/CMakeFiles/lsvd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
