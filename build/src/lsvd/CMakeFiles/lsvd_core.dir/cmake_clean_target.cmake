file(REMOVE_RECURSE
  "liblsvd_core.a"
)
