file(REMOVE_RECURSE
  "CMakeFiles/lsvd_core.dir/backend_store.cc.o"
  "CMakeFiles/lsvd_core.dir/backend_store.cc.o.d"
  "CMakeFiles/lsvd_core.dir/extent_map.cc.o"
  "CMakeFiles/lsvd_core.dir/extent_map.cc.o.d"
  "CMakeFiles/lsvd_core.dir/gc_sim.cc.o"
  "CMakeFiles/lsvd_core.dir/gc_sim.cc.o.d"
  "CMakeFiles/lsvd_core.dir/journal.cc.o"
  "CMakeFiles/lsvd_core.dir/journal.cc.o.d"
  "CMakeFiles/lsvd_core.dir/lsvd_disk.cc.o"
  "CMakeFiles/lsvd_core.dir/lsvd_disk.cc.o.d"
  "CMakeFiles/lsvd_core.dir/object_format.cc.o"
  "CMakeFiles/lsvd_core.dir/object_format.cc.o.d"
  "CMakeFiles/lsvd_core.dir/read_cache.cc.o"
  "CMakeFiles/lsvd_core.dir/read_cache.cc.o.d"
  "CMakeFiles/lsvd_core.dir/replicator.cc.o"
  "CMakeFiles/lsvd_core.dir/replicator.cc.o.d"
  "CMakeFiles/lsvd_core.dir/write_cache.cc.o"
  "CMakeFiles/lsvd_core.dir/write_cache.cc.o.d"
  "liblsvd_core.a"
  "liblsvd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
