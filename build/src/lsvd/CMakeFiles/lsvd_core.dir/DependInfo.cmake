
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsvd/backend_store.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/backend_store.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/backend_store.cc.o.d"
  "/root/repo/src/lsvd/extent_map.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/extent_map.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/extent_map.cc.o.d"
  "/root/repo/src/lsvd/gc_sim.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/gc_sim.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/gc_sim.cc.o.d"
  "/root/repo/src/lsvd/journal.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/journal.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/journal.cc.o.d"
  "/root/repo/src/lsvd/lsvd_disk.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/lsvd_disk.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/lsvd_disk.cc.o.d"
  "/root/repo/src/lsvd/object_format.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/object_format.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/object_format.cc.o.d"
  "/root/repo/src/lsvd/read_cache.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/read_cache.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/read_cache.cc.o.d"
  "/root/repo/src/lsvd/replicator.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/replicator.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/replicator.cc.o.d"
  "/root/repo/src/lsvd/write_cache.cc" "src/lsvd/CMakeFiles/lsvd_core.dir/write_cache.cc.o" "gcc" "src/lsvd/CMakeFiles/lsvd_core.dir/write_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blockdev/CMakeFiles/lsvd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/lsvd_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
