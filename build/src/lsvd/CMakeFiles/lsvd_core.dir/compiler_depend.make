# Empty compiler generated dependencies file for lsvd_core.
# This may be replaced when dependencies are built.
