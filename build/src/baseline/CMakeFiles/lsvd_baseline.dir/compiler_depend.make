# Empty compiler generated dependencies file for lsvd_baseline.
# This may be replaced when dependencies are built.
