file(REMOVE_RECURSE
  "liblsvd_baseline.a"
)
