file(REMOVE_RECURSE
  "CMakeFiles/lsvd_baseline.dir/bcache_device.cc.o"
  "CMakeFiles/lsvd_baseline.dir/bcache_device.cc.o.d"
  "CMakeFiles/lsvd_baseline.dir/rbd_disk.cc.o"
  "CMakeFiles/lsvd_baseline.dir/rbd_disk.cc.o.d"
  "liblsvd_baseline.a"
  "liblsvd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
