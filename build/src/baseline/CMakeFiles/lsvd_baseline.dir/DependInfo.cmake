
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bcache_device.cc" "src/baseline/CMakeFiles/lsvd_baseline.dir/bcache_device.cc.o" "gcc" "src/baseline/CMakeFiles/lsvd_baseline.dir/bcache_device.cc.o.d"
  "/root/repo/src/baseline/rbd_disk.cc" "src/baseline/CMakeFiles/lsvd_baseline.dir/rbd_disk.cc.o" "gcc" "src/baseline/CMakeFiles/lsvd_baseline.dir/rbd_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsvd/CMakeFiles/lsvd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/lsvd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/lsvd_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
