file(REMOVE_RECURSE
  "liblsvd_blockdev.a"
)
