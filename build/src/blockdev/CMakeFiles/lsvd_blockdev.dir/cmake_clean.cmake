file(REMOVE_RECURSE
  "CMakeFiles/lsvd_blockdev.dir/sim_ssd.cc.o"
  "CMakeFiles/lsvd_blockdev.dir/sim_ssd.cc.o.d"
  "liblsvd_blockdev.a"
  "liblsvd_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
