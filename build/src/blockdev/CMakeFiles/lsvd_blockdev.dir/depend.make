# Empty dependencies file for lsvd_blockdev.
# This may be replaced when dependencies are built.
