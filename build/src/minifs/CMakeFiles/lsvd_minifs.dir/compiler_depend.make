# Empty compiler generated dependencies file for lsvd_minifs.
# This may be replaced when dependencies are built.
