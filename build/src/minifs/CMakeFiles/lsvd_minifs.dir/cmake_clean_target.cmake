file(REMOVE_RECURSE
  "liblsvd_minifs.a"
)
