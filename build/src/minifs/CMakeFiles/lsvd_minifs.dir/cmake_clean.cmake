file(REMOVE_RECURSE
  "CMakeFiles/lsvd_minifs.dir/minifs.cc.o"
  "CMakeFiles/lsvd_minifs.dir/minifs.cc.o.d"
  "liblsvd_minifs.a"
  "liblsvd_minifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_minifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
