file(REMOVE_RECURSE
  "CMakeFiles/lsvd_util.dir/buffer.cc.o"
  "CMakeFiles/lsvd_util.dir/buffer.cc.o.d"
  "CMakeFiles/lsvd_util.dir/crc32c.cc.o"
  "CMakeFiles/lsvd_util.dir/crc32c.cc.o.d"
  "CMakeFiles/lsvd_util.dir/histogram.cc.o"
  "CMakeFiles/lsvd_util.dir/histogram.cc.o.d"
  "CMakeFiles/lsvd_util.dir/table.cc.o"
  "CMakeFiles/lsvd_util.dir/table.cc.o.d"
  "liblsvd_util.a"
  "liblsvd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
