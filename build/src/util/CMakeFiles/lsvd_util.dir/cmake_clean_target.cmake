file(REMOVE_RECURSE
  "liblsvd_util.a"
)
