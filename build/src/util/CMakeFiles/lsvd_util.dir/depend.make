# Empty dependencies file for lsvd_util.
# This may be replaced when dependencies are built.
