
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/buffer.cc" "src/util/CMakeFiles/lsvd_util.dir/buffer.cc.o" "gcc" "src/util/CMakeFiles/lsvd_util.dir/buffer.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/util/CMakeFiles/lsvd_util.dir/crc32c.cc.o" "gcc" "src/util/CMakeFiles/lsvd_util.dir/crc32c.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/lsvd_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/lsvd_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/lsvd_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/lsvd_util.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
