# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/blockdev_test[1]_include.cmake")
include("/root/repo/build/tests/objstore_test[1]_include.cmake")
include("/root/repo/build/tests/extent_map_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/write_cache_test[1]_include.cmake")
include("/root/repo/build/tests/read_cache_test[1]_include.cmake")
include("/root/repo/build/tests/backend_store_test[1]_include.cmake")
include("/root/repo/build/tests/lsvd_disk_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/replicator_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/minifs_test[1]_include.cmake")
include("/root/repo/build/tests/minifs_property_test[1]_include.cmake")
