file(REMOVE_RECURSE
  "CMakeFiles/replicator_test.dir/replicator_test.cc.o"
  "CMakeFiles/replicator_test.dir/replicator_test.cc.o.d"
  "replicator_test"
  "replicator_test.pdb"
  "replicator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
