# Empty dependencies file for replicator_test.
# This may be replaced when dependencies are built.
