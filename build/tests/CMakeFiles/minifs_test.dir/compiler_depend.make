# Empty compiler generated dependencies file for minifs_test.
# This may be replaced when dependencies are built.
