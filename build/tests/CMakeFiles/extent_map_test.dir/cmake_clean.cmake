file(REMOVE_RECURSE
  "CMakeFiles/extent_map_test.dir/extent_map_test.cc.o"
  "CMakeFiles/extent_map_test.dir/extent_map_test.cc.o.d"
  "extent_map_test"
  "extent_map_test.pdb"
  "extent_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extent_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
