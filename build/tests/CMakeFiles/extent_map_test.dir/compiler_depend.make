# Empty compiler generated dependencies file for extent_map_test.
# This may be replaced when dependencies are built.
