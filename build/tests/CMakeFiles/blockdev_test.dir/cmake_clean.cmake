file(REMOVE_RECURSE
  "CMakeFiles/blockdev_test.dir/blockdev_test.cc.o"
  "CMakeFiles/blockdev_test.dir/blockdev_test.cc.o.d"
  "blockdev_test"
  "blockdev_test.pdb"
  "blockdev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockdev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
