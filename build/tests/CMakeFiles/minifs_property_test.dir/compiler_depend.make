# Empty compiler generated dependencies file for minifs_property_test.
# This may be replaced when dependencies are built.
