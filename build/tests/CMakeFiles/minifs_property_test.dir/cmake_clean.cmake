file(REMOVE_RECURSE
  "CMakeFiles/minifs_property_test.dir/minifs_property_test.cc.o"
  "CMakeFiles/minifs_property_test.dir/minifs_property_test.cc.o.d"
  "minifs_property_test"
  "minifs_property_test.pdb"
  "minifs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minifs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
