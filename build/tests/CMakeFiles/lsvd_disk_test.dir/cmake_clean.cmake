file(REMOVE_RECURSE
  "CMakeFiles/lsvd_disk_test.dir/lsvd_disk_test.cc.o"
  "CMakeFiles/lsvd_disk_test.dir/lsvd_disk_test.cc.o.d"
  "lsvd_disk_test"
  "lsvd_disk_test.pdb"
  "lsvd_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsvd_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
