# Empty dependencies file for lsvd_disk_test.
# This may be replaced when dependencies are built.
