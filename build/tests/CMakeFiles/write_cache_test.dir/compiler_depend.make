# Empty compiler generated dependencies file for write_cache_test.
# This may be replaced when dependencies are built.
