file(REMOVE_RECURSE
  "CMakeFiles/write_cache_test.dir/write_cache_test.cc.o"
  "CMakeFiles/write_cache_test.dir/write_cache_test.cc.o.d"
  "write_cache_test"
  "write_cache_test.pdb"
  "write_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
