# Empty dependencies file for backend_store_test.
# This may be replaced when dependencies are built.
