file(REMOVE_RECURSE
  "CMakeFiles/backend_store_test.dir/backend_store_test.cc.o"
  "CMakeFiles/backend_store_test.dir/backend_store_test.cc.o.d"
  "backend_store_test"
  "backend_store_test.pdb"
  "backend_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
