# Empty dependencies file for objstore_test.
# This may be replaced when dependencies are built.
