file(REMOVE_RECURSE
  "CMakeFiles/objstore_test.dir/objstore_test.cc.o"
  "CMakeFiles/objstore_test.dir/objstore_test.cc.o.d"
  "objstore_test"
  "objstore_test.pdb"
  "objstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
