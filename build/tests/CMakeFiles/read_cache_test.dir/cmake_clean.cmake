file(REMOVE_RECURSE
  "CMakeFiles/read_cache_test.dir/read_cache_test.cc.o"
  "CMakeFiles/read_cache_test.dir/read_cache_test.cc.o.d"
  "read_cache_test"
  "read_cache_test.pdb"
  "read_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
