# Empty compiler generated dependencies file for read_cache_test.
# This may be replaced when dependencies are built.
