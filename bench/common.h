// Shared experiment plumbing for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's §4; the
// helpers here assemble the two systems under test on the paper's hardware
// (Table 1):
//   - LSVD: client host (P3700 cache SSD, 10 GbE) -> RGW-style erasure-coded
//     object store on a Ceph pool.
//   - bcache+RBD: same host, bcache write-back cache -> triple-replicated
//     RBD on the same pool.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/baseline/bcache_device.h"
#include "src/baseline/rbd_disk.h"
#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/sim_object_store.h"
#include "src/sim/sim_domain.h"
#include "src/util/crc32c.h"
#include "src/util/metrics.h"
#include "src/util/table.h"
#include "src/workload/driver.h"
#include "src/workload/fio_gen.h"

namespace lsvd {
namespace bench {

// Process-wide tallies behind the --perf harness (docs/PERF.md). Worlds add
// their event-engine totals on destruction; the workload helpers add driver
// op counts. All of it is virtual-time state, so the tallies are exactly as
// deterministic as the simulation itself — only wall_seconds varies run to
// run.
struct PerfTotals {
  uint64_t events = 0;       // simulator events processed, all worlds
  uint64_t sim_ios = 0;      // driver ops completed (reads+writes+flushes)
  double sim_seconds = 0.0;  // virtual seconds simulated, summed over worlds
  // Parallel-engine fields (DESIGN.md §14). threads/domains stay 1 for the
  // sequential engine; sync_stalls counts domain-windows a domain sat idle
  // at a window barrier (deterministic — it is a property of the event
  // timeline, not of wall-clock scheduling).
  int threads = 1;           // max worker threads used by any world
  int domains = 1;           // max simulation domains in any world
  uint64_t sync_stalls = 0;
};

inline PerfTotals& GlobalPerfTotals() {
  static PerfTotals totals;
  return totals;
}

// Resident bytes held by paged extent maps at the end of the run, reported
// in the --perf JSON as `map_resident_bytes`. Benches that exercise
// `LsvdConfig::map_resident_bytes` set this from the map's ResidentBytes();
// everything else leaves it 0 (fully resident flat maps are accounted in
// peak RSS, not here).
inline uint64_t& GlobalMapResidentBytes() {
  static uint64_t bytes = 0;
  return bytes;
}

// Paper defaults (§4.1).
inline constexpr uint64_t kVolumeSize = 80 * kGiB;
inline constexpr uint64_t kLargeCache = 100 * kGiB;  // "larger than volume"
inline constexpr uint64_t kSmallCache = 5 * static_cast<uint64_t>(1e9);

inline LsvdConfig DefaultLsvdConfig(uint64_t volume_size,
                                    uint64_t cache_size) {
  LsvdConfig config;
  config.volume_name = "vol";
  config.volume_size = volume_size;
  // ~20% write cache / 80% read cache split (§3.1).
  config.write_cache_size =
      std::max<uint64_t>(64 * kMiB, cache_size / 5) / kBlockSize * kBlockSize;
  config.read_cache_size =
      (cache_size - config.write_cache_size) / kBlockSize * kBlockSize;
  config.batch_bytes = 8 * kMiB;
  return config;
}

// One client machine + one backend cluster world. Every component built via
// the system helpers below registers its metrics into `metrics`, so a bench
// can snapshot/dump the whole world uniformly (see MaybeDumpMetrics).
// `metrics` is declared first so it outlives the components whose callback
// gauges it holds.
struct World {
  MetricsRegistry metrics;
  Simulator sim;
  ClientHostConfig host_config;
  std::unique_ptr<ClientHost> host;
  std::unique_ptr<BackendCluster> cluster;
  std::unique_ptr<NetLink> backend_link;
  // Parallel per-domain engine (DESIGN.md §14). Null until EnableParallel;
  // when null every helper below degrades to exactly the sequential paths,
  // which is what keeps default bench output byte-identical.
  std::unique_ptr<SimDomainGroup> group;
  SimDomain* client_domain = nullptr;
  std::vector<SimDomain*> extra_domains;
  int threads = 1;

  explicit World(ClusterConfig cluster_config,
                 uint64_t ssd_capacity = 800 * kGiB) {
    host_config.ssd_capacity = ssd_capacity;
    Init(cluster_config);
  }

  // Multi-tenant worlds (fig17) configure the host explicitly: fair-share
  // QoS pool, host-wide PUT window, SSD size.
  World(ClusterConfig cluster_config, ClientHostConfig hc) {
    host_config = hc;
    Init(cluster_config);
  }

  // Switches the world to the parallel engine: `sim` (the client host's
  // engine) becomes domain 0 of a SimDomainGroup and Run()/At() route
  // through the conservative scheduler. Callers then create one
  // AddSimDomain per backend shard (and per extra client host, in
  // fleet-style benches) and bind stores via
  // SimObjectStore::BindBackendDomain. Results are deterministic for any
  // `n`, including n=1.
  //
  // `n` is clamped to the host's core count: worker count never changes
  // results (only wall-clock), and oversubscribed workers only add barrier
  // latency. Tests that want real threads regardless of host size call
  // SimDomainGroup::Run directly.
  void EnableParallel(int n) {
    group = std::make_unique<SimDomainGroup>();
    client_domain = group->AdoptDomain("client", &sim);
    const int hw = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    threads = std::max(1, std::min(n, hw));
    // New mode, no golden to preserve: surface the client-link byte
    // counters in --json dumps.
    backend_link->RegisterMetrics(&metrics);
  }

  SimDomain* AddSimDomain(const std::string& name) {
    SimDomain* d = group->AddDomain(name);
    extra_domains.push_back(d);
    return d;
  }

  // Runs the world to quiescence on whichever engine is active.
  void Run() {
    if (group != nullptr) {
      group->Run(threads);
    } else {
      sim.Run();
    }
  }

  // Schedules `fn` at virtual time `t`. Under the parallel engine it runs
  // as a coordinator barrier task — every domain quiesced and advanced to
  // `t` — so mid-run samplers may read any domain's state race-free.
  void At(Nanos t, std::function<void()> fn) {
    if (group != nullptr) {
      group->At(t, std::move(fn));
    } else {
      sim.At(t, std::move(fn));
    }
  }

  ~World() {
    PerfTotals& totals = GlobalPerfTotals();
    totals.events += sim.events_processed();
    totals.sim_seconds += ToSeconds(sim.now());
    if (group != nullptr) {
      for (SimDomain* d : extra_domains) {
        totals.events += d->sim()->events_processed();
      }
      totals.sync_stalls += group->sync_stalls();
      totals.threads = std::max(totals.threads, threads);
      totals.domains =
          std::max(totals.domains, static_cast<int>(group->domain_count()));
    }
  }

 private:
  void Init(ClusterConfig cluster_config) {
    host = std::make_unique<ClientHost>(&sim, host_config, &metrics);
    cluster =
        std::make_unique<BackendCluster>(&sim, cluster_config, &metrics);
    backend_link = std::make_unique<NetLink>(&sim, NetParams{});
  }
};

struct LsvdSystem {
  std::unique_ptr<SimObjectStore> store;
  std::unique_ptr<LsvdDisk> disk;

  static LsvdSystem Create(World* world, LsvdConfig config) {
    LsvdSystem sys;
    sys.store = std::make_unique<SimObjectStore>(
        &world->sim, world->cluster.get(), world->backend_link.get(),
        SimObjectStoreConfig{}, &world->metrics);
    sys.disk = std::make_unique<LsvdDisk>(world->host.get(), sys.store.get(),
                                          std::move(config), &world->metrics);
    std::optional<Status> s;
    sys.disk->Create([&](Status st) { s = st; });
    world->Run();
    if (!s.has_value() || !s->ok()) {
      std::fprintf(stderr, "LSVD create failed\n");
      std::abort();
    }
    return sys;
  }
};

struct BcacheRbdSystem {
  std::unique_ptr<RbdDisk> rbd;
  std::unique_ptr<BcacheDevice> bcache;

  static BcacheRbdSystem Create(World* world, uint64_t volume_size,
                                uint64_t cache_size) {
    BcacheRbdSystem sys;
    sys.rbd = std::make_unique<RbdDisk>(&world->sim, world->cluster.get(),
                                        world->backend_link.get(), volume_size,
                                        RbdConfig{}, /*volume_id=*/0,
                                        &world->metrics);
    auto region = world->host->AllocRegion(cache_size / kBlockSize *
                                           kBlockSize);
    if (!region.ok()) {
      std::fprintf(stderr, "bcache region allocation failed\n");
      std::abort();
    }
    sys.bcache = std::make_unique<BcacheDevice>(
        world->host.get(), sys.rbd.get(), *region,
        cache_size / kBlockSize * kBlockSize, BcacheConfig{},
        &world->metrics);
    return sys;
  }
};

// Fills the volume with data (§4.1 preconditioning), then lets writeback
// settle so experiments start from a steady state.
inline void Precondition(World* world, VirtualDisk* disk) {
  Driver driver(&world->sim, disk, MakePreconditionGen(disk->size(), 4 * kMiB),
                /*queue_depth=*/16);
  bool done = false;
  driver.Run([&] { done = true; });
  world->Run();
  if (!done) {
    std::fprintf(stderr, "precondition stalled\n");
    std::abort();
  }
  GlobalPerfTotals().sim_ios += driver.stats().ops;
}

// Runs a fio-style workload for `seconds` of virtual time and returns stats.
// Per-op client latencies land in the world registry ("driver.*_us").
inline DriverStats RunFio(World* world, VirtualDisk* disk, FioConfig fio,
                          int queue_depth, double seconds) {
  Driver driver(&world->sim, disk, MakeFioGen(fio), queue_depth,
                world->sim.now() + FromSeconds(seconds), &world->metrics);
  bool done = false;
  driver.Run([&] { done = true; });
  world->Run();
  GlobalPerfTotals().sim_ios += driver.stats().ops;
  return driver.stats();
}

// Parses "--flag=value" style arguments; returns fallback when absent.
inline double ArgDouble(int argc, char** argv, const std::string& flag,
                        double fallback) {
  const std::string prefix = "--" + flag + "=";
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stod(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

// Integer-valued "--flag=value" arguments (e.g. --threads=8).
inline int ArgInt(int argc, char** argv, const std::string& flag,
                  int fallback) {
  return static_cast<int>(ArgDouble(argc, argv, flag, fallback));
}

// Worker-thread count for the parallel engine: "--threads=N". Returns 0 when
// the flag is absent, which benches must treat as "sequential engine, legacy
// code path" so default output stays byte-identical (--threads=1 runs the
// parallel scheduler with inline windows instead).
inline int ArgThreads(int argc, char** argv) {
  return ArgInt(argc, argv, "threads", 0);
}

// True when a bare "--flag" (no value) is present.
inline bool ArgFlag(int argc, char** argv, const std::string& flag) {
  const std::string want = "--" + flag;
  for (int i = 1; i < argc; i++) {
    if (want == argv[i]) {
      return true;
    }
  }
  return false;
}

// Wall-clock perf harness (docs/PERF.md). Declare first in main():
//
//   PerfScope perf(argc, argv, "fig06_randwrite");
//
// When "--perf" was passed, the destructor writes BENCH_<name>.json into the
// working directory with wall time, event-engine throughput, and simulated-IO
// throughput, and prints a one-line summary. Without --perf it is inert, so
// bench stdout stays byte-identical to the pre-harness output.
class PerfScope {
 public:
  PerfScope(int argc, char** argv, std::string name)
      : name_(std::move(name)),
        enabled_(ArgFlag(argc, argv, "perf")),
        start_(std::chrono::steady_clock::now()) {}

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  ~PerfScope() {
    if (!enabled_) {
      return;
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    const PerfTotals& totals = GlobalPerfTotals();
    const double events_per_sec =
        wall > 0 ? static_cast<double>(totals.events) / wall : 0.0;
    const double ios_per_sec =
        wall > 0 ? static_cast<double>(totals.sim_ios) / wall : 0.0;
#ifdef NDEBUG
    const char* build_type = "opt";
#else
    const char* build_type = "debug";
#endif
    // ru_maxrss is KiB on Linux; peak RSS covers the whole process (maps,
    // caches, simulator state), so regressions in any of them show up here.
    struct rusage usage {};
    const uint64_t peak_rss_bytes =
        getrusage(RUSAGE_SELF, &usage) == 0
            ? static_cast<uint64_t>(usage.ru_maxrss) * 1024
            : 0;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"wall_seconds\":%.6f,"
                 "\"events\":%llu,\"events_per_sec\":%.1f,"
                 "\"sim_ios\":%llu,\"sim_ios_per_sec\":%.1f,"
                 "\"sim_seconds\":%.6f,"
                 "\"peak_rss_bytes\":%llu,\"map_resident_bytes\":%llu,"
                 "\"threads\":%d,\"domains\":%d,\"sync_stalls\":%llu,"
                 "\"crc32c_impl\":\"%s\",\"build_type\":\"%s\"}\n",
                 name_.c_str(), wall,
                 static_cast<unsigned long long>(totals.events),
                 events_per_sec,
                 static_cast<unsigned long long>(totals.sim_ios), ios_per_sec,
                 totals.sim_seconds,
                 static_cast<unsigned long long>(peak_rss_bytes),
                 static_cast<unsigned long long>(GlobalMapResidentBytes()),
                 totals.threads, totals.domains,
                 static_cast<unsigned long long>(totals.sync_stalls),
                 Crc32cImplName(), build_type);
    std::fclose(f);
    std::printf("[perf] %s: %.3fs wall, %.3gM events (%.3gM/s), "
                "%llu sim IOs (%.3gK/s), %.3g sim-s -> %s\n",
                name_.c_str(), wall,
                static_cast<double>(totals.events) / 1e6, events_per_sec / 1e6,
                static_cast<unsigned long long>(totals.sim_ios),
                ios_per_sec / 1e3, totals.sim_seconds, path.c_str());
  }

 private:
  std::string name_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

// Uniform metrics dump: when "--json" was passed, prints the whole world
// registry as one JSON object on a single line (machine-parseable; see
// docs/METRICS.md). Call at the end of main, after the last workload.
inline void MaybeDumpMetrics(const World& world, int argc, char** argv) {
  if (ArgFlag(argc, argv, "json")) {
    std::printf("%s\n", world.metrics.ToJson().c_str());
  }
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper.c_str());
  std::printf("setup: Table 1 — client 800G NVMe cache + 10GbE;"
              " backends: config#1 32-SSD pool / config#2 62-HDD pool\n\n");
}

}  // namespace bench
}  // namespace lsvd

#endif  // BENCH_COMMON_H_
