// Figure 19 (extension): fleet-scale control plane — placement, clone
// fan-out, live migration, host failover (docs/FLEET.md, DESIGN.md §15).
//
// The paper's deployment model is a hypervisor fleet: every host runs many
// LSVD volumes against a shared backend (§4.3), and the properties that
// make LSVD attractive there are control-plane ones — a volume is "a write
// cache you can drain plus an object stream you can recover", so migration
// and failover are the crash-recovery path reused on purpose. This bench
// stands up M hosts x S shards under one FleetController and measures:
//   - placement: volumes hosted, spread across hosts;
//   - clone fan-out: one golden image -> N-1 snapshot-pinned clones;
//   - live migration: a concurrent wave, migrations/s and blackout time;
//   - failover: kill a host, lease-expiry detection time, recover-attach
//     time for its volumes, and the p99 write impact on a tenant
//     co-located with the recovery storm.
// --threads=N runs placement/clone/serving/detection on the parallel
// engine (one domain per host and per shard); migration and failover are
// sequential-engine-only and are skipped there (docs/FLEET.md explains
// why), keeping default output byte-identical to the no-flag run.
#include "bench/common.h"
#include "src/fleet/fleet.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

// A World-alike owning the fleet; declaration order makes the registry
// outlive every component whose gauges it holds.
struct FleetRig {
  MetricsRegistry metrics;
  Simulator sim;  // sequential engine / controller domain of the parallel one
  std::unique_ptr<SimDomainGroup> group;
  std::unique_ptr<FleetController> fleet;
  int threads = 1;

  FleetRig(const FleetConfig& fc, int worker_threads) {
    if (worker_threads > 0) {
      group = std::make_unique<SimDomainGroup>();
      SimDomain* control = group->AdoptDomain("control", &sim);
      const int hw = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
      threads = std::max(1, std::min(worker_threads, hw));
      fleet = std::make_unique<FleetController>(group.get(), control, fc,
                                                &metrics);
    } else {
      fleet = std::make_unique<FleetController>(&sim, fc, &metrics);
    }
  }

  void Run() {
    if (group != nullptr) {
      group->Run(threads);
    } else {
      sim.Run();
    }
  }

  void At(Nanos t, std::function<void()> fn) {
    if (group != nullptr) {
      group->At(t, std::move(fn));
    } else {
      sim.At(t, std::move(fn));
    }
  }

  // Latest clock across the fleet (domains quiesce at different times).
  Nanos Now() {
    Nanos t = sim.now();
    for (int i = 0; i < fleet->num_hosts(); i++) {
      t = std::max(t, fleet->host_sim(i)->now());
    }
    return t;
  }

  ~FleetRig() {
    PerfTotals& totals = GlobalPerfTotals();
    totals.events += sim.events_processed();
    totals.sim_seconds += ToSeconds(Now());
    if (group != nullptr) {
      for (int i = 0; i < fleet->num_hosts(); i++) {
        totals.events += fleet->host_sim(i)->events_processed();
      }
      for (int s = 0; s < fleet->num_shards(); s++) {
        totals.events += fleet->shard_sim(s)->events_processed();
      }
      totals.sync_stalls += group->sync_stalls();
      totals.threads = std::max(totals.threads, threads);
      totals.domains = std::max(totals.domains,
                                static_cast<int>(group->domain_count()));
    }
  }
};

// Runs a driver on `disk` (which lives on host sim `sim`) to its deadline
// and returns the p99 of "<victim.write_us>" from a private registry.
double DriveVictim(FleetRig* rig, Simulator* sim, VirtualDisk* disk,
                   double seconds, uint64_t volume_size, uint64_t seed) {
  MetricsRegistry reg;
  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 4 * kKiB;
  fio.volume_size = volume_size;
  fio.seed = seed;
  Driver driver(sim, disk, MakeFioGen(fio), /*queue_depth=*/16,
                sim->now() + FromSeconds(seconds), &reg, "victim");
  bool done = false;
  driver.Run([&] { done = true; });
  rig->Run();
  if (!done) {
    std::fprintf(stderr, "victim workload stalled\n");
    std::abort();
  }
  GlobalPerfTotals().sim_ios += driver.stats().ops;
  return reg.Snapshot().Percentile("victim.write_us", 0.99);
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig19_fleet");
  const bool smoke = ArgFlag(argc, argv, "smoke");
  const int threads = ArgThreads(argc, argv);
  const int hosts = ArgInt(argc, argv, "hosts", smoke ? 4 : 8);
  const int volumes = ArgInt(argc, argv, "volumes", smoke ? 48 : 1024);
  const int shards = ArgInt(argc, argv, "shards", 1);
  const int migrations = ArgInt(argc, argv, "migrations", smoke ? 4 : 16);
  const double serve_s = ArgDouble(argc, argv, "seconds", smoke ? 0.2 : 0.75);
  const double failover_s = 1.0;  // covers kill + lease expiry + recovery
  const uint64_t volume_size = smoke ? 256 * kMiB : kGiB;
  const uint64_t cache = 80 * kMiB;  // 64 MiB wc floor + 16 MiB rc
  const uint64_t image_bytes = smoke ? 16 * kMiB : 64 * kMiB;

  PrintHeader("fig19: fleet-scale control plane",
              "extension of §4.3 — placement, live migration, failover");

  FleetConfig fc;
  fc.hosts = hosts;
  fc.shards = shards;
  fc.cluster = ClusterConfig::SsdPool();
  if (smoke) {
    fc.cluster.num_disks = 8;
  }
  FleetRig rig(fc, threads);
  FleetController& fleet = *rig.fleet;

  // --- golden image: create, fill, snapshot ---
  LsvdConfig gcfg = DefaultLsvdConfig(volume_size, cache);
  gcfg.volume_name = "golden";
  std::optional<Status> created;
  const int golden =
      fleet.CreateVolume(gcfg, [&](Status s) { created = s; },
                         /*track_metrics=*/true);
  rig.Run();
  if (golden < 0 || !created.has_value() || !created->ok()) {
    std::fprintf(stderr, "golden create failed\n");
    return 1;
  }
  const int golden_host = fleet.host_of(golden);
  Simulator* gsim = fleet.host_sim(golden_host);
  {
    FioConfig fill;
    fill.pattern = FioConfig::Pattern::kSeqWrite;
    fill.block_size = 256 * kKiB;
    fill.volume_size = volume_size;
    fill.max_bytes = image_bytes;
    Driver filler(gsim, fleet.disk(golden), MakeFioGen(fill),
                  /*queue_depth=*/8);
    bool done = false;
    filler.Run([&] { done = true; });
    rig.Run();
    if (!done) {
      std::fprintf(stderr, "image fill stalled\n");
      return 1;
    }
    GlobalPerfTotals().sim_ios += filler.stats().ops;
  }
  std::optional<uint64_t> snap_seq;
  fleet.disk(golden)->Snapshot([&](Result<uint64_t> r) {
    if (r.ok()) {
      snap_seq = *r;
    }
  });
  rig.Run();
  if (!snap_seq.has_value()) {
    std::fprintf(stderr, "golden snapshot failed\n");
    return 1;
  }

  // --- clone fan-out ---
  fleet.DistributeImage(golden);  // parallel engine: pre-seed host buckets
  const Nanos clone_start = rig.Now();
  // Per-clone completion slots: each callback runs on its own host's
  // domain, so distinct elements keep the parallel engine race-free (the
  // fig18 `created` pattern); quiescence time is useless as a wave clock
  // because dangling PUT-timeout timers pad it by 30 virtual seconds.
  std::vector<Nanos> clone_done(static_cast<size_t>(volumes), 0);
  std::vector<uint8_t> clone_okv(static_cast<size_t>(volumes), 0);
  std::vector<Simulator*> clone_sim(static_cast<size_t>(volumes), nullptr);
  for (int i = 1; i < volumes; i++) {
    const size_t k = static_cast<size_t>(i);
    const int id = fleet.CloneVolume(
        golden, "clone" + std::to_string(i), *snap_seq, [&, k](Status s) {
          clone_okv[k] = s.ok() ? 1 : 0;
          clone_done[k] = clone_sim[k] != nullptr ? clone_sim[k]->now() : 0;
        });
    // The callback cannot fire before the next Run, so publishing the
    // placed host's clock here is race-free.
    if (id >= 0) {
      clone_sim[k] = fleet.host_sim(fleet.host_of(id));
    }
  }
  rig.Run();
  int clone_ok = 0;
  int clone_fail = 0;
  Nanos clone_end = clone_start;
  for (int i = 1; i < volumes; i++) {
    clone_okv[static_cast<size_t>(i)] ? clone_ok++ : clone_fail++;
    clone_end = std::max(clone_end, clone_done[static_cast<size_t>(i)]);
  }
  const double clone_wave_s = ToSeconds(clone_end - clone_start);
  int max_per_host = 0;
  for (int i = 0; i < hosts; i++) {
    max_per_host = std::max(max_per_host, fleet.volumes_on(i));
  }
  std::printf("fleet: %d hosts x %d shard(s), engine=%s\n", hosts, shards,
              threads > 0 ? "parallel" : "sequential");
  std::printf("volumes hosted:     %zu (golden + %d clones, %d failed)\n",
              fleet.volume_count(), clone_ok, clone_fail);
  std::printf("clone fan-out:      %d clones in %.3f s (%.0f/s), "
              "max %d volumes/host\n",
              clone_ok, clone_wave_s,
              clone_wave_s > 0 ? clone_ok / clone_wave_s : 0.0, max_per_host);

  // --- baseline victim latency (tenant on the golden image's host) ---
  const double p99_before =
      DriveVictim(&rig, gsim, fleet.disk(golden), serve_s, volume_size, 3);

  // --- live migration wave (sequential engine only) ---
  if (threads == 0) {
    std::vector<int> wave;
    for (int v = 1; v < static_cast<int>(fleet.volume_count()) &&
                    static_cast<int>(wave.size()) < migrations;
         v++) {
      if (fleet.host_of(v) != golden_host &&
          fleet.health(v) == FleetController::VolumeHealth::kActive) {
        wave.push_back(v);
      }
    }
    const Nanos wave_start = rig.sim.now();
    Nanos wave_end = wave_start;
    int mig_ok = 0;
    int mig_fail = 0;
    for (int v : wave) {
      Status s = fleet.MigrateVolume(
          v, /*dst_host=*/-1,
          [&](Status st, const MigrationStats&) {
            st.ok() ? mig_ok++ : mig_fail++;
            wave_end = std::max(wave_end, rig.sim.now());
          });
      if (!s.ok()) {
        mig_fail++;
      }
    }
    rig.Run();
    const double wave_s = ToSeconds(wave_end - wave_start);
    const MetricsSnapshot snap = rig.metrics.Snapshot();
    std::printf("migration wave:     %d/%zu ok in %.3f s (%.1f/s)\n", mig_ok,
                wave.size(), wave_s, wave_s > 0 ? mig_ok / wave_s : 0.0);
    std::printf("  drain+blackout:   total p50=%.1f ms, blackout p50=%.2f ms "
                "p99=%.2f ms, handoff=%.0f KiB\n",
                snap.Percentile("fleet.migration.total_us", 0.5) / 1e3,
                snap.Percentile("fleet.migration.blackout_us", 0.5) / 1e3,
                snap.Percentile("fleet.migration.blackout_us", 0.99) / 1e3,
                static_cast<double>(
                    rig.metrics.GetCounter("fleet.handoff_bytes")->value()) /
                    1024.0 / std::max(1, mig_ok));
  } else {
    std::printf("migration wave:     skipped (sequential engine only; "
                "see docs/FLEET.md)\n");
  }

  // --- host failure: kill, lease-expiry detection, failover, victim p99 ---
  const int kill_host = (golden_host + 1) % hosts;
  const int victims_before = fleet.volumes_on(kill_host);
  const Nanos t0 = rig.Now();
  fleet.RunControlPlane(t0 + FromSeconds(failover_s));
  rig.At(t0 + 200 * kMillisecond, [&] { fleet.KillHost(kill_host); });
  const double p99_during =
      DriveVictim(&rig, gsim, fleet.disk(golden), failover_s, volume_size, 4);
  rig.Run();  // let recovery finish past the victim's deadline
  {
    const MetricsSnapshot snap = rig.metrics.Snapshot();
    const uint64_t recovered =
        rig.metrics.GetCounter("fleet.failover_volumes")->value();
    std::printf("failover:           host %d killed (%d volumes), detect "
                "%.0f ms\n",
                kill_host, victims_before,
                snap.Percentile("fleet.failover.detect_us", 0.5) / 1e3);
    if (threads == 0) {
      std::printf("  recover-attach:   %llu volumes, recovery p50=%.0f ms "
                  "p99=%.0f ms\n",
                  static_cast<unsigned long long>(recovered),
                  snap.Percentile("fleet.failover.recovery_us", 0.5) / 1e3,
                  snap.Percentile("fleet.failover.recovery_us", 0.99) / 1e3);
    } else {
      std::printf("  recover-attach:   skipped (sequential engine only)\n");
    }
    std::printf("victim p99 write:   %.1f us before, %.1f us during "
                "failover (%+.0f%%)\n",
                p99_before, p99_during,
                p99_before > 0 ? (p99_during / p99_before - 1) * 100 : 0.0);
  }

  if (ArgFlag(argc, argv, "json")) {
    std::printf("%s\n", rig.metrics.ToJson().c_str());
  }
  return 0;
}
