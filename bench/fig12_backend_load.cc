// Figure 12 (+ §4.5): backend efficiency — total client IOPS vs mean backend
// disk utilization, for 1..32 virtual disks on one client machine, 16 KiB
// random writes at QD 32 each, HDD pool (config #2).
//
// Paper result shape: LSVD reaches ~50K IOPS with the backend disks ~10%
// busy (the client machine/SSD/NIC is the bottleneck); RBD peaks around 13K
// IOPS with the backend ~70% busy — a ~25x efficiency gap.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig12_backend_load");
  const double seconds = ArgDouble(argc, argv, "seconds", 2.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 4.0);
  const int max_disks = static_cast<int>(ArgDouble(argc, argv, "max-disks", 16));
  PrintHeader("fig12_backend_load",
              "Figure 12 — client IOPS vs backend disk utilization, 1-32 "
              "virtual disks");
  std::printf("16 KiB randwrite QD32 per disk, %gs per point, %g GiB per "
              "volume, 62-HDD pool\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"system", "vdisks", "total IOPS", "backend util %",
               "backend IOPS"});

  for (int system = 0; system < 2; system++) {
    const char* name = system == 0 ? "lsvd" : "rbd";
    for (int ndisks = 1; ndisks <= max_disks; ndisks *= 2) {
      World world(ClusterConfig::HddPool());
      std::vector<std::unique_ptr<SimObjectStore>> stores;
      std::vector<std::unique_ptr<LsvdDisk>> lsvd_disks;
      std::vector<std::unique_ptr<RbdDisk>> rbd_disks;
      std::vector<VirtualDisk*> disks;

      for (int d = 0; d < ndisks; d++) {
        if (system == 0) {
          LsvdConfig config = DefaultLsvdConfig(volume, 16 * kGiB / ndisks);
          config.volume_name = "vol" + std::to_string(d);
          stores.push_back(std::make_unique<SimObjectStore>(
              &world.sim, world.cluster.get(), world.backend_link.get(),
              SimObjectStoreConfig{}));
          auto disk = std::make_unique<LsvdDisk>(world.host.get(),
                                                 stores.back().get(), config);
          bool created = false;
          disk->Create([&](Status s) { created = s.ok(); });
          world.sim.Run();
          if (!created) {
            std::abort();
          }
          disks.push_back(disk.get());
          lsvd_disks.push_back(std::move(disk));
        } else {
          rbd_disks.push_back(std::make_unique<RbdDisk>(
              &world.sim, world.cluster.get(), world.backend_link.get(),
              volume, RbdConfig{}, static_cast<uint64_t>(d)));
          disks.push_back(rbd_disks.back().get());
        }
      }

      // Measure from a clean baseline (no preconditioning writes: they would
      // dominate the utilization window; the paper preconditions too but
      // measures steady state).
      const Nanos t0 = world.sim.now();
      const Nanos busy0 = world.cluster->TotalBusy();
      const DiskStats ops0 = world.cluster->TotalStats();

      std::vector<std::unique_ptr<Driver>> drivers;
      size_t remaining = disks.size();
      for (size_t d = 0; d < disks.size(); d++) {
        FioConfig fio;
        fio.pattern = FioConfig::Pattern::kRandWrite;
        fio.block_size = 16 * kKiB;
        fio.volume_size = volume;
        fio.seed = 100 + d;
        drivers.push_back(std::make_unique<Driver>(
            &world.sim, disks[d], MakeFioGen(fio), 32,
            t0 + FromSeconds(seconds)));
        drivers.back()->Run([&remaining] { remaining--; });
      }
      world.sim.Run();

      double iops = 0;
      for (const auto& driver : drivers) {
        iops += driver->stats().Iops();
      }
      const Nanos t1 = world.sim.now();
      const double util = world.cluster->MeanUtilization(busy0, t0, t1);
      const DiskStats ops1 = world.cluster->TotalStats();
      const double backend_iops =
          static_cast<double>(ops1.write_ops - ops0.write_ops) /
          ToSeconds(t1 - t0);
      table.AddRow({name, std::to_string(ndisks), Table::Fmt(iops, 0),
                    Table::Fmt(util * 100, 1), Table::Fmt(backend_iops, 0)});
    }
  }
  table.Print();
  std::printf("\npaper: LSVD 47-50K IOPS @ ~10%% busy; RBD ~13K IOPS @ ~70%% "
              "busy with 32 disks\n");
  return 0;
}
