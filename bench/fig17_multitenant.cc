// Figure 17 (extension): multi-tenant client host — noisy neighbor vs QoS.
//
// The paper deploys LSVD as a hypervisor-hosted cache shared by many volumes
// (§4.3); this bench quantifies what that sharing costs a latency-sensitive
// tenant and what the host's per-volume QoS throttle buys back. One client
// host carries two volumes:
//   - writer: a sequential write-heavy tenant (256 KiB seq, QD 16)
//   - reader: a latency-sensitive tenant (4 KiB random reads, QD 4, cache
//     warmed so reads are served from the shared SSD)
// Three scenarios: reader alone (baseline), both tenants with QoS off, and
// both tenants with the writer under a token-bucket bandwidth cap plus a
// host-wide PUT window. Reported: per-tenant throughput and the reader's
// p99 read latency relative to solo.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

struct ScenarioResult {
  double writer_mbps = 0;
  double reader_kiops = 0;
  double reader_p99_us = 0;
  std::string metrics_json;
};

// Warm the reader's cache so its random reads hit the shared SSD.
void WarmReads(World* world, VirtualDisk* disk) {
  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kSeqRead;
  fio.block_size = 256 * kKiB;
  fio.volume_size = disk->size();
  fio.max_bytes = disk->size();
  Driver driver(&world->sim, disk, MakeFioGen(fio), 16);
  bool done = false;
  driver.Run([&] { done = true; });
  world->sim.Run();
  if (!done) {
    std::abort();
  }
}

ScenarioResult RunScenario(uint64_t volume, double seconds, bool with_writer,
                           bool qos_on, double writer_cap_mbps,
                           bool want_json) {
  ClientHostConfig hc;
  if (qos_on) {
    hc.host_put_window = 8;  // writer cannot monopolize backend PUTs
  }
  World world(ClusterConfig::SsdPool(), hc);

  LsvdConfig reader_config = DefaultLsvdConfig(volume, kLargeCache);
  reader_config.volume_name = "reader";
  reader_config.SetPerVolumeMetricPrefixes();
  LsvdSystem reader_sys = LsvdSystem::Create(&world, reader_config);
  Precondition(&world, reader_sys.disk.get());
  WarmReads(&world, reader_sys.disk.get());

  LsvdSystem writer_sys;
  if (with_writer) {
    LsvdConfig writer_config = DefaultLsvdConfig(volume, kSmallCache);
    writer_config.volume_name = "writer";
    writer_config.SetPerVolumeMetricPrefixes();
    if (qos_on) {
      writer_config.qos.bytes_per_sec =
          static_cast<uint64_t>(writer_cap_mbps * 1e6);
      writer_config.qos.burst_seconds = 0.05;
    }
    writer_sys = LsvdSystem::Create(&world, writer_config);
    Precondition(&world, writer_sys.disk.get());
  }

  // Both tenants run concurrently against one deadline.
  const Nanos deadline = world.sim.now() + FromSeconds(seconds);
  FioConfig rfio;
  rfio.pattern = FioConfig::Pattern::kRandRead;
  rfio.block_size = 4 * kKiB;
  rfio.volume_size = volume;
  Driver reader(&world.sim, reader_sys.disk.get(), MakeFioGen(rfio),
                /*queue_depth=*/4, deadline, &world.metrics, "reader");

  std::unique_ptr<Driver> writer;
  if (with_writer) {
    FioConfig wfio;
    wfio.pattern = FioConfig::Pattern::kSeqWrite;
    wfio.block_size = 256 * kKiB;
    wfio.volume_size = volume;
    wfio.seed = 2;
    writer = std::make_unique<Driver>(&world.sim, writer_sys.disk.get(),
                                      MakeFioGen(wfio), /*queue_depth=*/16,
                                      deadline, &world.metrics, "writer");
  }

  bool reader_done = false;
  bool writer_done = !with_writer;
  reader.Run([&] { reader_done = true; });
  if (writer != nullptr) {
    writer->Run([&] { writer_done = true; });
  }
  world.sim.Run();
  if (!reader_done || !writer_done) {
    std::fprintf(stderr, "tenant workload stalled\n");
    std::abort();
  }

  ScenarioResult r;
  r.reader_kiops = reader.stats().Iops() / 1e3;
  r.reader_p99_us = world.metrics.Snapshot().Percentile("reader.read_us", 0.99);
  if (writer != nullptr) {
    r.writer_mbps = writer->stats().WriteThroughputBps() / 1e6;
  }
  if (want_json) {
    r.metrics_json = world.metrics.ToJson();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig17_multitenant");
  const bool smoke = ArgFlag(argc, argv, "smoke");
  const double seconds = ArgDouble(argc, argv, "seconds", smoke ? 0.05 : 3.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib",
                                   smoke ? 0.25 : 4.0);
  const double cap_mbps = ArgDouble(argc, argv, "writer-cap-mbps", 100.0);
  const bool want_json = ArgFlag(argc, argv, "json");

  PrintHeader("fig17_multitenant",
              "extension — noisy neighbor on a multi-volume host, QoS on/off");
  std::printf("reader: 4K randread QD4 (cache-warmed); writer: 256K seqwrite "
              "QD16; %gs per cell, %g GiB volumes; QoS cap %g MB/s\n\n",
              seconds, vol_gib, cap_mbps);

  const auto volume =
      static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));

  const ScenarioResult solo =
      RunScenario(volume, seconds, /*with_writer=*/false, /*qos_on=*/false,
                  cap_mbps, /*want_json=*/false);
  const ScenarioResult off =
      RunScenario(volume, seconds, /*with_writer=*/true, /*qos_on=*/false,
                  cap_mbps, /*want_json=*/false);
  const ScenarioResult on =
      RunScenario(volume, seconds, /*with_writer=*/true, /*qos_on=*/true,
                  cap_mbps, want_json);

  Table table({"scenario", "writer MB/s", "reader kIOPS", "reader p99 us",
               "p99 vs solo"});
  auto row = [&](const char* name, const ScenarioResult& r) {
    table.AddRow({name,
                  r.writer_mbps > 0 ? Table::Fmt(r.writer_mbps, 1) : "-",
                  Table::Fmt(r.reader_kiops, 1), Table::Fmt(r.reader_p99_us, 0),
                  Table::Fmt(r.reader_p99_us / solo.reader_p99_us, 2)});
  };
  row("reader solo", solo);
  row("qos off", off);
  row("qos on", on);
  table.Print();
  std::printf("\nexpected shape: with QoS the reader's p99 stays within ~2x "
              "of solo while the capped writer gives up throughput; without "
              "QoS the writer degrades the reader further\n");

  if (want_json) {
    std::printf("%s\n", on.metrics_json.c_str());
  }
  return 0;
}
