// Figure 22 (repo extension, no direct paper counterpart): huge thin
// volumes — the cost of the virtual-to-object translation map, and what
// TRIM/discard buys the collector (DESIGN.md §13).
//
// The paper sizes its volumes so the flat extent map always fits in RAM
// (§3.4 reports ~1 GB of map per 100 TB of 100%-sequential volume, growing
// ~30x under fragmentation). This bench quantifies the alternative shipped
// here for thin volumes whose *address space* is 10x larger than the mapped
// data:
//
//   1. map bytes per mapped TiB — flat ExtentMap vs the compressed
//      two-level PagedExtentMap (LsvdConfig::map_resident_bytes), same
//      extent population on a sparse volume;
//   2. the map-miss read penalty the paged form trades for that memory:
//      page loads per 1k random lookups under a tight resident budget, and
//      the wall-clock ratio against the flat map;
//   3. steady-state WAF with and without discard: a file-churn workload on
//      the GC simulator where deletes either punch the map immediately
//      (TRIM) or leave stale blocks "live" until the address is reused;
//   4. recovery: wall time and resident map footprint to rebuild the object
//      map from a checkpoint extent list, at 1x and 10x volume spans.
//
// `--smoke` shrinks every population for the run_all.sh sweep; the full run
// is what the ISSUE-8 acceptance numbers (>= 4x map-bytes reduction,
// discard lowering WAF) refer to.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/util/rng.h"
#include "src/lsvd/extent_map.h"
#include "src/lsvd/gc_sim.h"
#include "src/lsvd/paged_extent_map.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

struct Params {
  uint64_t base_span;      // 1x volume address space
  uint64_t span_mult;      // the "10x larger sparse volume"
  uint64_t extents;        // mapped extents on the 10x volume
  uint64_t cluster;        // extents per allocation cluster (file locality)
  uint64_t resident_budget;
  uint64_t page_span;
  uint64_t lookups;        // random reads for the miss-penalty section
  // File-churn WAF experiment.
  uint64_t slots;
  uint64_t live_slots;
  uint64_t file_bytes;
  uint64_t churn_ops;
  uint64_t batch_bytes;
};

Params FullParams() {
  Params p;
  p.base_span = 1ull * 1024 * kGiB;  // 1 TiB address space, 10 TiB sparse
  p.span_mult = 10;
  p.extents = 400000;
  p.cluster = 128;
  p.resident_budget = 512 * kKiB;
  p.page_span = 256 * kMiB;
  p.lookups = 100000;
  p.slots = 1024;
  p.live_slots = 256;
  p.file_bytes = 256 * kKiB;
  p.churn_ops = 6000;
  p.batch_bytes = 4 * kMiB;
  return p;
}

Params SmokeParams() {
  Params p;
  p.base_span = 2ull * kGiB;  // 2 GiB address space, 20 GiB sparse
  p.span_mult = 10;
  p.extents = 30000;
  p.cluster = 128;
  p.resident_budget = 64 * kKiB;
  p.page_span = 64 * kMiB;
  p.lookups = 20000;
  p.slots = 256;
  p.live_slots = 64;
  p.file_bytes = 64 * kKiB;
  p.churn_ops = 1200;
  p.batch_bytes = 1 * kMiB;
  return p;
}

// Synthesizes a thin-volume extent population: `count` small extents in
// clusters of `cluster` (file-allocator locality), scattered uniformly over
// `span` bytes. Targets walk forward through 4 MiB objects, the layout a
// sequence of sealed write batches produces.
std::vector<MapExtent<ObjTarget>> MakePopulation(uint64_t span, uint64_t count,
                                                 uint64_t cluster,
                                                 uint64_t seed) {
  std::vector<MapExtent<ObjTarget>> out;
  out.reserve(count);
  Rng rng(seed);
  constexpr uint64_t kObjectBytes = 4 * kMiB;
  uint64_t seq = 1;
  uint64_t offset = 0;
  uint64_t pos = 0;
  uint64_t in_cluster = 0;
  while (out.size() < count) {
    if (in_cluster == 0) {
      pos = (rng.Uniform(span / kBlockSize)) * kBlockSize;
      in_cluster = cluster;
    }
    const uint64_t len = (1 + rng.Uniform(4)) * kBlockSize;  // 4-16 KiB
    if (pos + len > span) {
      in_cluster = 0;
      continue;
    }
    if (offset + len > kObjectBytes) {
      seq++;
      offset = 0;
    }
    out.push_back({pos, len, ObjTarget{seq, offset}});
    offset += len;
    // 8-64 KiB hole to the next extent in the cluster, so nothing merges.
    pos += len + (2 + rng.Uniform(15)) * kBlockSize;
    in_cluster--;
  }
  return out;
}

double Ms(std::chrono::steady_clock::time_point t0,
          std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// The file-churn WAF experiment: `slots` fixed-size file slots, `live`
// kept allocated; every op deletes one live file and writes a fresh one
// into a free slot. With `discard` the delete trims immediately; without,
// the stale blocks stay mapped (and get copied by GC as live data) until
// the slot is reused.
GcSimResult RunChurn(const Params& p, bool discard) {
  GcSimConfig config;
  config.batch_bytes = p.batch_bytes;
  config.gc_low_watermark = 0.85;
  config.gc_high_watermark = 0.89;
  GcSimulator sim(config);

  Rng rng(7);
  std::vector<uint8_t> live(p.slots, 0);
  std::vector<uint64_t> live_list;
  uint64_t live_count = 0;
  while (live_count < p.live_slots) {
    const uint64_t s = rng.Uniform(p.slots);
    if (live[s]) {
      continue;
    }
    live[s] = 1;
    live_list.push_back(s);
    live_count++;
    sim.Write(s * p.file_bytes, p.file_bytes);
  }
  for (uint64_t op = 0; op < p.churn_ops; op++) {
    // Delete a random live file...
    const uint64_t di = rng.Uniform(live_list.size());
    const uint64_t dead = live_list[di];
    live[dead] = 0;
    if (discard) {
      sim.Trim(dead * p.file_bytes, p.file_bytes);
    }
    // ...and allocate a fresh one in a random free slot.
    uint64_t slot;
    do {
      slot = rng.Uniform(p.slots);
    } while (live[slot]);
    live[slot] = 1;
    live_list[di] = slot;
    sim.Write(slot * p.file_bytes, p.file_bytes);
  }
  return sim.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig22_thin_maps");
  const bool smoke = ArgFlag(argc, argv, "smoke");
  const Params p = smoke ? SmokeParams() : FullParams();
  PrintHeader("fig22_thin_maps",
              "extension — huge thin volumes: paged extent maps and "
              "TRIM/discard (cf. §3.4's map-size estimate)");
  const uint64_t big_span = p.base_span * p.span_mult;
  std::printf("sparse volume: %s address space (%llux the %s base), "
              "%s extents in clusters of %llu%s\n\n",
              Table::FmtBytes(big_span).c_str(),
              static_cast<unsigned long long>(p.span_mult),
              Table::FmtBytes(p.base_span).c_str(),
              Table::FmtCount(p.extents).c_str(),
              static_cast<unsigned long long>(p.cluster),
              smoke ? " [smoke]" : "");

  // --- 1. map bytes per mapped TiB, flat vs paged -------------------------
  const auto population = MakePopulation(big_span, p.extents, p.cluster, 42);
  ExtentMap<ObjTarget> flat;
  PagedExtentMap<ObjTarget> paged(p.resident_budget, p.page_span);
  for (const auto& e : population) {
    flat.Update(e.start, e.len, e.target, nullptr);
    paged.Update(e.start, e.len, e.target, nullptr);
  }
  const double mapped_tib =
      static_cast<double>(flat.mapped_bytes()) / (1024.0 * kGiB);
  const double flat_bytes = static_cast<double>(flat.MemoryBytes());
  const double paged_bytes = static_cast<double>(paged.MemoryBytes());
  const double reduction = flat_bytes / paged_bytes;
  Table mtable({"map", "extents", "map bytes", "bytes/mapped TiB",
                "resident", "packed"});
  mtable.AddRow({"flat", Table::FmtCount(flat.extent_count()),
                 Table::FmtBytes(flat.MemoryBytes()),
                 Table::FmtBytes(static_cast<uint64_t>(flat_bytes /
                                                       mapped_tib)),
                 Table::FmtBytes(flat.MemoryBytes()), "-"});
  mtable.AddRow({"paged", Table::FmtCount(paged.extent_count()),
                 Table::FmtBytes(paged.MemoryBytes()),
                 Table::FmtBytes(static_cast<uint64_t>(paged_bytes /
                                                       mapped_tib)),
                 Table::FmtBytes(paged.ResidentBytes()),
                 Table::FmtBytes(paged.PackedBytes())});
  mtable.Print();
  std::printf("mapped data: %s over %s; paged map reduction: %.1fx "
              "(budget %s, %s pages, %s touched)\n\n",
              Table::FmtBytes(flat.mapped_bytes()).c_str(),
              Table::FmtBytes(big_span).c_str(), reduction,
              Table::FmtBytes(p.resident_budget).c_str(),
              Table::FmtBytes(p.page_span).c_str(),
              Table::FmtCount(paged.page_count()).c_str());

  // --- 2. map-miss read penalty under the resident budget -----------------
  // Random single-block lookups across the whole sparse span: nearly every
  // one lands on a cold page, so this is the worst-case unpack penalty.
  {
    Rng rng(99);
    std::vector<uint64_t> addrs(p.lookups);
    for (auto& a : addrs) {
      a = rng.Uniform(big_span / kBlockSize) * kBlockSize;
    }
    uint64_t sink = 0;
    const auto f0 = std::chrono::steady_clock::now();
    for (const uint64_t a : addrs) {
      sink += flat.LookupOne(a).has_value();
    }
    const auto f1 = std::chrono::steady_clock::now();
    const uint64_t loads_before = paged.page_loads();
    const auto g0 = std::chrono::steady_clock::now();
    for (const uint64_t a : addrs) {
      sink += paged.LookupOne(a).has_value();
    }
    const auto g1 = std::chrono::steady_clock::now();
    const uint64_t loads = paged.page_loads() - loads_before;
    const double flat_ns = Ms(f0, f1) * 1e6 / static_cast<double>(p.lookups);
    const double paged_ns = Ms(g0, g1) * 1e6 / static_cast<double>(p.lookups);
    std::printf("map-miss penalty: %s random lookups, %s page loads "
                "(%.0f per 1k lookups)\n",
                Table::FmtCount(p.lookups).c_str(),
                Table::FmtCount(loads).c_str(),
                1000.0 * static_cast<double>(loads) /
                    static_cast<double>(p.lookups));
    std::printf("  flat %.0f ns/lookup, paged %.0f ns/lookup -> %.1fx "
                "penalty (hits: %llu)\n\n",
                flat_ns, paged_ns, flat_ns > 0 ? paged_ns / flat_ns : 0.0,
                static_cast<unsigned long long>(sink));
  }

  // --- 3. WAF with and without discard ------------------------------------
  const GcSimResult keep = RunChurn(p, /*discard=*/false);
  const GcSimResult trim = RunChurn(p, /*discard=*/true);
  Table wtable({"deletes", "WAF", "gc copied", "trimmed", "objects",
                "map extents"});
  wtable.AddRow({"kept mapped", Table::Fmt(keep.waf(), 3),
                 Table::FmtBytes(keep.gc_copied_bytes),
                 Table::FmtBytes(keep.trimmed_bytes),
                 Table::FmtCount(keep.objects_created),
                 Table::FmtCount(keep.extent_count)});
  wtable.AddRow({"discarded", Table::Fmt(trim.waf(), 3),
                 Table::FmtBytes(trim.gc_copied_bytes),
                 Table::FmtBytes(trim.trimmed_bytes),
                 Table::FmtCount(trim.objects_created),
                 Table::FmtCount(trim.extent_count)});
  wtable.Print();
  std::printf("file churn: %s slots, %s live, %s files, %s ops; discard "
              "cuts WAF %.3f -> %.3f (%.0f%% of the GC copy traffic was "
              "stale data)\n\n",
              Table::FmtCount(p.slots).c_str(),
              Table::FmtCount(p.live_slots).c_str(),
              Table::FmtBytes(p.file_bytes).c_str(),
              Table::FmtCount(p.churn_ops).c_str(), keep.waf(), trim.waf(),
              keep.gc_copied_bytes == 0
                  ? 0.0
                  : 100.0 *
                        (1.0 - static_cast<double>(trim.gc_copied_bytes) /
                                   static_cast<double>(keep.gc_copied_bytes)));

  // --- 4. recovery on the 10x sparse volume -------------------------------
  // Rebuild the object map from a checkpoint extent list (what
  // BackendStore::Recover does after reading the checkpoint object), at the
  // base span and at 10x, flat vs paged.
  Table rtable({"volume", "map", "extents", "rebuild ms", "resident after",
                "evictions"});
  for (const uint64_t mult : {uint64_t{1}, p.span_mult}) {
    const auto ext = MakePopulation(p.base_span * mult, p.extents * mult /
                                        p.span_mult, p.cluster, 17 + mult);
    std::vector<MapExtent<ObjTarget>> sorted = ext;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    const std::string label =
        Table::FmtBytes(p.base_span * mult) + (mult == 1 ? " (1x)" : " (10x)");

    ExtentMap<ObjTarget> fmap;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& e : sorted) {
      fmap.Update(e.start, e.len, e.target, nullptr);
    }
    const auto t1 = std::chrono::steady_clock::now();
    rtable.AddRow({label, "flat", Table::FmtCount(fmap.extent_count()),
                   Table::Fmt(Ms(t0, t1), 1),
                   Table::FmtBytes(fmap.MemoryBytes()), "-"});

    PagedExtentMap<ObjTarget> pmap(p.resident_budget, p.page_span);
    const auto t2 = std::chrono::steady_clock::now();
    for (const auto& e : sorted) {
      pmap.Update(e.start, e.len, e.target, nullptr);
    }
    const auto t3 = std::chrono::steady_clock::now();
    rtable.AddRow({label, "paged", Table::FmtCount(pmap.extent_count()),
                   Table::Fmt(Ms(t2, t3), 1),
                   Table::FmtBytes(pmap.ResidentBytes()),
                   Table::FmtCount(pmap.page_evictions())});
  }
  rtable.Print();
  std::printf("\nkey shapes: the paged map holds map bytes per mapped TiB "
              ">= 4x below the flat map on the sparse 10x volume and keeps "
              "its resident footprint at the configured budget through "
              "recovery; the price is the reported cold-page unpack penalty "
              "on random reads. Discard keeps deleted data out of the "
              "cleaner, cutting steady-state WAF.\n");

  GlobalMapResidentBytes() = paged.ResidentBytes();
  if (!smoke && reduction < 4.0) {
    std::fprintf(stderr, "fig22: expected >= 4x map reduction, got %.2fx\n",
                 reduction);
    return 1;
  }
  return 0;
}
