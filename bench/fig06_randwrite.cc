// Figure 6: random-write throughput, 80 GiB volume, large (in-cache) cache.
//
// Paper result shape: LSVD is 20-30% faster than bcache+RBD for 4 KiB and
// 16 KiB writes at every queue depth, and falls behind only for 64 KiB
// writes at queue depth 32. LSVD reaches ~60K IOPS at 4 KiB / ~50K at
// 16 KiB.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig06_randwrite");
  const double seconds = ArgDouble(argc, argv, "seconds", 3.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 8.0);
  PrintHeader("fig06_randwrite",
              "Figure 6 — random write performance, large cache");
  std::printf("fio randwrite, %gs per cell, %g GiB volume (scaled from "
              "80 GiB), preconditioned\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"bs", "qd", "lsvd MB/s", "lsvd IOPS", "bcache+rbd MB/s",
               "bcache+rbd IOPS", "lsvd/bcache"});

  // With --json: full registry dump of the last LSVD cell (worlds are
  // per-cell, so this is the 64K/QD32 configuration).
  std::string metrics_json;
  for (const uint64_t bs : {4 * kKiB, 16 * kKiB, 64 * kKiB}) {
    for (const int qd : {4, 16, 32}) {
      double mbps[2];
      double iops[2];
      for (int system = 0; system < 2; system++) {
        // Fresh world per cell so cells are independent, like fio runs.
        World world(ClusterConfig::SsdPool());
        std::unique_ptr<VirtualDisk> keeper;
        VirtualDisk* disk = nullptr;
        LsvdSystem lsvd_sys;
        BcacheRbdSystem bcache_sys;
        if (system == 0) {
          lsvd_sys = LsvdSystem::Create(
              &world, DefaultLsvdConfig(volume, kLargeCache));
          disk = lsvd_sys.disk.get();
        } else {
          bcache_sys = BcacheRbdSystem::Create(&world, volume, kLargeCache);
          disk = bcache_sys.bcache.get();
        }
        Precondition(&world, disk);

        FioConfig fio;
        fio.pattern = FioConfig::Pattern::kRandWrite;
        fio.block_size = bs;
        fio.volume_size = volume;
        const DriverStats stats = RunFio(&world, disk, fio, qd, seconds);
        mbps[system] = stats.WriteThroughputBps() / 1e6;
        iops[system] = stats.Iops();
        if (system == 0) {
          metrics_json = world.metrics.ToJson();
        }
      }
      table.AddRow({std::to_string(bs / kKiB) + "K", std::to_string(qd),
                    Table::Fmt(mbps[0], 1), Table::Fmt(iops[0], 0),
                    Table::Fmt(mbps[1], 1), Table::Fmt(iops[1], 0),
                    Table::Fmt(mbps[0] / mbps[1], 2)});
    }
  }
  table.Print();
  std::printf("\npaper: LSVD ahead 20-30%% at 4K/16K, behind at 64K QD32\n");
  if (ArgFlag(argc, argv, "json")) {
    std::printf("%s\n", metrics_json.c_str());
  }
  return 0;
}
