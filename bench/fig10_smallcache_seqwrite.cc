// Figure 10: sequential writes, small (5 GB) cache. Shares the harness with
// Figure 9 (fig09_smallcache_randwrite.cc) via --sequential.
#define main fig09_main
#include "bench/fig09_smallcache_randwrite.cc"
#undef main

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig10_smallcache_seqwrite");
  // Strip --perf before delegating: fig09's inner PerfScope must stay inert
  // so only this binary's BENCH_ file is written.
  std::vector<char*> args;
  for (int i = 0; i < argc; i++) {
    if (std::string(argv[i]) != "--perf") {
      args.push_back(argv[i]);
    }
  }
  static char flag[] = "--sequential=1";
  args.push_back(flag);
  return fig09_main(static_cast<int>(args.size()), args.data());
}
