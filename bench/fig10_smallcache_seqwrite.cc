// Figure 10: sequential writes, small (5 GB) cache. Shares the harness with
// Figure 9 (fig09_smallcache_randwrite.cc) via --sequential.
#define main fig09_main
#include "bench/fig09_smallcache_randwrite.cc"
#undef main

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char flag[] = "--sequential=1";
  args.push_back(flag);
  return fig09_main(static_cast<int>(args.size()), args.data());
}
