// Figure 8: Filebench throughput, LSVD vs bcache+RBD, normalized.
//
// Paper result shape: fileserver ~0.8x (LSVD slightly behind), oltp ~1.25x,
// varmail ~4x — the sync-heavy workloads win big on LSVD because a commit
// barrier is a single cache-device flush, while bcache writes out B-tree
// metadata on every barrier (§4.2.2). LSVD additionally writes everything
// back and garbage-collects *during* the runs.
#include "bench/common.h"
#include "src/workload/filebench.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig08_filebench");
  const double seconds = ArgDouble(argc, argv, "seconds", 10.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 8.0);
  PrintHeader("fig08_filebench",
              "Figure 8 — Filebench throughput, LSVD vs RBD+bcache");
  std::printf("%gs per cell, %g GiB volume, large cache, ext4-level block "
              "stream (Table 3 models)\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"workload", "lsvd MB/s", "lsvd WAF", "bcache+rbd MB/s",
               "normalized (lsvd/bcache)", "paper"});

  for (const auto& profile :
       {FilebenchProfile::Fileserver(), FilebenchProfile::Oltp(),
        FilebenchProfile::Varmail()}) {
    double mbps[2];
    double waf = 0;
    for (int system = 0; system < 2; system++) {
      World world(ClusterConfig::SsdPool());
      VirtualDisk* disk = nullptr;
      LsvdSystem lsvd_sys;
      BcacheRbdSystem bcache_sys;
      if (system == 0) {
        lsvd_sys = LsvdSystem::Create(&world,
                                      DefaultLsvdConfig(volume, kLargeCache));
        disk = lsvd_sys.disk.get();
      } else {
        bcache_sys = BcacheRbdSystem::Create(&world, volume, kLargeCache);
        disk = bcache_sys.bcache.get();
      }
      Precondition(&world, disk);
      // The paper pre-loads the (large) cache before each test (§4.2): warm
      // with one sequential read pass so reads hit the cache in both systems.
      {
        FioConfig warm;
        warm.pattern = FioConfig::Pattern::kSeqRead;
        warm.block_size = 256 * kKiB;
        warm.volume_size = volume;
        warm.max_bytes = volume;
        Driver warmer(&world.sim, disk, MakeFioGen(warm), 16);
        bool warmed = false;
        warmer.Run([&] { warmed = true; });
        world.sim.Run();
        if (!warmed) {
          std::abort();
        }
      }

      FilebenchProfile scaled = profile;
      scaled.working_set = std::min<uint64_t>(profile.working_set, volume);
      Driver driver(&world.sim, disk,
                    MakeFilebenchGen(scaled, volume, 3),
                    /*queue_depth=*/16,
                    world.sim.now() + FromSeconds(seconds));
      bool done = false;
      driver.Run([&] { done = true; });
      world.sim.Run();
      const DriverStats& stats = driver.stats();
      const double data_bytes = static_cast<double>(stats.bytes_written) +
                                static_cast<double>(stats.bytes_read);
      mbps[system] =
          data_bytes / ToSeconds(stats.finished_at - stats.started_at) / 1e6;
      if (system == 0) {
        const auto& bs = lsvd_sys.disk->backend().stats();
        waf = bs.client_bytes > 0
                  ? static_cast<double>(bs.payload_bytes +
                                        bs.gc_bytes_copied) /
                        static_cast<double>(bs.client_bytes)
                  : 0.0;
      }
    }
    std::string paper = profile.name == "fileserver" ? "0.8x"
                        : profile.name == "oltp"     ? "1.25x"
                                                     : "4x";
    table.AddRow({profile.name, Table::Fmt(mbps[0], 1), Table::Fmt(waf, 2),
                  Table::Fmt(mbps[1], 1), Table::Fmt(mbps[0] / mbps[1], 2),
                  paper});
  }
  table.Print();
  std::printf("\npaper WAFs: fileserver 1.046, varmail 1.22, oltp 1.75\n");
  return 0;
}
