// Figure 7: random-read throughput, 80 GiB volume, large cache (100 % cache
// hits after warming).
//
// Paper result shape: LSVD's (unoptimized) read cache matches bcache at low
// queue depths but falls behind by up to ~30 % at queue depth 32.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

// Warm the cache: read the whole volume once so subsequent random reads hit.
void WarmReads(World* world, VirtualDisk* disk) {
  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kSeqRead;
  fio.block_size = 256 * kKiB;
  fio.volume_size = disk->size();
  fio.max_bytes = disk->size();
  Driver driver(&world->sim, disk, MakeFioGen(fio), 16);
  bool done = false;
  driver.Run([&] { done = true; });
  world->sim.Run();
  if (!done) {
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig07_randread");
  const double seconds = ArgDouble(argc, argv, "seconds", 3.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 4.0);
  PrintHeader("fig07_randread",
              "Figure 7 — random read performance, large cache, 100% hits");
  std::printf("fio randread, %gs per cell, %g GiB volume (scaled from "
              "80 GiB), cache pre-warmed\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"bs", "qd", "lsvd MB/s", "bcache+rbd MB/s", "lsvd/bcache"});

  // With --json: full registry dump of the last LSVD cell.
  std::string metrics_json;
  for (const uint64_t bs : {4 * kKiB, 16 * kKiB, 64 * kKiB}) {
    for (const int qd : {4, 16, 32}) {
      double mbps[2];
      for (int system = 0; system < 2; system++) {
        World world(ClusterConfig::SsdPool());
        VirtualDisk* disk = nullptr;
        LsvdSystem lsvd_sys;
        BcacheRbdSystem bcache_sys;
        if (system == 0) {
          lsvd_sys = LsvdSystem::Create(
              &world, DefaultLsvdConfig(volume, kLargeCache));
          disk = lsvd_sys.disk.get();
        } else {
          bcache_sys = BcacheRbdSystem::Create(&world, volume, kLargeCache);
          disk = bcache_sys.bcache.get();
        }
        Precondition(&world, disk);
        WarmReads(&world, disk);

        FioConfig fio;
        fio.pattern = FioConfig::Pattern::kRandRead;
        fio.block_size = bs;
        fio.volume_size = volume;
        const DriverStats stats = RunFio(&world, disk, fio, qd, seconds);
        mbps[system] = stats.ReadThroughputBps() / 1e6;
        if (system == 0) {
          metrics_json = world.metrics.ToJson();
        }
      }
      table.AddRow({std::to_string(bs / kKiB) + "K", std::to_string(qd),
                    Table::Fmt(mbps[0], 1), Table::Fmt(mbps[1], 1),
                    Table::Fmt(mbps[0] / mbps[1], 2)});
    }
  }
  table.Print();
  std::printf("\npaper: roughly equal at QD4, LSVD up to 30%% behind at QD32\n");
  if (ArgFlag(argc, argv, "json")) {
    std::printf("%s\n", metrics_json.c_str());
  }
  return 0;
}
