#!/usr/bin/env bash
# Smoke-runs every bench binary with tiny parameters and validates that the
# --json metrics dump (where supported) parses. Wired into ctest as
# `bench_smoke`; also usable standalone:
#
#   bench/run_all.sh [--perf] [--jobs=N] [path/to/build/bench]
#
# Tiny parameters keep the whole sweep under about a minute — this checks
# that every figure/table binary still runs end to end and that the metrics
# JSON stays machine-readable; it does NOT produce paper-quality numbers.
#
# With --perf, every bench additionally runs under the wall-clock perf
# harness (docs/PERF.md): each binary writes BENCH_<name>.json into
# bench/results/ (override with BENCH_RESULTS_DIR) — a tracked directory, so
# perf snapshots can be committed rather than stranded in the build tree —
# and a summary table (events/sec, simulated-IOs/sec, wall seconds per bench
# plus totals) is printed at the end.
#
# With --jobs=N, up to N benches run concurrently (multi-process perf sweep;
# DESIGN.md section 14). Results print in submission order once all jobs
# finish, any child failure makes the script exit non-zero, and perf-mode
# JSON lands in a private per-job directory first and is published into the
# results dir with an atomic same-filesystem rename — concurrent jobs can
# never leave a torn BENCH_*.json behind. Note that perf numbers taken with
# N > 1 share the machine; treat them as smoke coverage, not measurements.
set -u

PERF=0
JOBS=1
while :; do
  case "${1:-}" in
    --perf)
      PERF=1
      shift
      ;;
    --jobs=*)
      JOBS="${1#--jobs=}"
      case "$JOBS" in
        ''|*[!0-9]*) echo "bad --jobs value: $JOBS" >&2; exit 1 ;;
      esac
      [ "$JOBS" -ge 1 ] || JOBS=1
      shift
      ;;
    *)
      break
      ;;
  esac
done

BENCH_DIR="${1:-$(dirname "$0")/../build/bench}"
if [ ! -d "$BENCH_DIR" ]; then
  echo "bench dir not found: $BENCH_DIR" >&2
  exit 1
fi
# PerfScope writes BENCH_<name>.json into the bench's working directory, so
# pin that to the results dir (and make BENCH_DIR absolute first, since the
# benches no longer run from this script's CWD).
BENCH_DIR="$(cd "$BENCH_DIR" && pwd)"
RESULTS_DIR="${BENCH_RESULTS_DIR:-$(cd "$(dirname "$0")" && pwd)/results}"
if [ "$PERF" = 1 ]; then
  mkdir -p "$RESULTS_DIR"
fi

PYTHON="$(command -v python3 || true)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
failures=0

# validate_json FILE NAME: the last line must be a JSON object containing the
# write-ack latency histogram produced by the tracing layer.
validate_json() {
  local out="$1" name="$2"
  local line
  line="$(grep '^{.*}$' "$out" | tail -1)"
  if [ -z "$line" ]; then
    echo "  FAIL: $name produced no JSON line" >&2
    return 1
  fi
  if [ -n "$PYTHON" ]; then
    if ! printf '%s\n' "$line" | "$PYTHON" -c '
import json, sys
d = json.load(sys.stdin)
ack = [k for k in d if k.endswith("write.ack_us")]
assert ack, "no write-ack histogram in dump"
for k in ack:
    assert "p50" in d[k] and "p99" in d[k], k + " missing percentiles"
'; then
      echo "  FAIL: $name JSON did not validate" >&2
      return 1
    fi
  fi
  return 0
}

# run_one NAME [ARGS...]: execute one bench; record its exit in
# $TMP/NAME.status and its output in $TMP/NAME.out. Safe to run from a
# background job: everything it touches is private to NAME.
run_one() {
  local name="$1"
  shift
  local bin="$BENCH_DIR/$name"
  local out="$TMP/$name.out"
  if [ ! -x "$bin" ]; then
    echo "missing" > "$TMP/$name.status"
    return
  fi
  local workdir="."
  if [ "$PERF" = 1 ]; then
    set -- "$@" --perf
    workdir="$RESULTS_DIR"
    if [ "$JOBS" -gt 1 ]; then
      # Private staging dir per job: PerfScope writes BENCH_<name>.json into
      # its CWD, and publishing via same-filesystem rename below keeps
      # concurrent writers from ever exposing a torn file.
      workdir="$RESULTS_DIR/.job-$name"
      mkdir -p "$workdir"
    fi
  fi
  local rc=0
  (cd "$workdir" && "$bin" "$@") >"$out" 2>&1 || rc=$?
  if [ "$PERF" = 1 ] && [ "$JOBS" -gt 1 ]; then
    local f
    for f in "$workdir"/BENCH_*.json; do
      [ -e "$f" ] && mv -f "$f" "$RESULTS_DIR/$(basename "$f")"
    done
    rmdir "$workdir" 2>/dev/null || true
  fi
  echo "$rc" > "$TMP/$name.status"
}

# report NAME: print the pass/fail line for a finished bench (validating the
# JSON dump when --json was among its arguments) and count failures. Runs in
# the main shell, in submission order.
report() {
  local name="$1"
  local out="$TMP/$name.out"
  local args=""
  [ -f "$TMP/$name.args" ] && args="$(cat "$TMP/$name.args")"
  local status
  status="$(cat "$TMP/$name.status" 2>/dev/null || echo 999)"
  if [ "$status" = "missing" ]; then
    echo "FAIL $name (binary missing)"
    failures=$((failures + 1))
    return
  fi
  if [ "$status" != 0 ]; then
    echo "FAIL $name (exit $status)"
    sed 's/^/    /' "$out" | tail -5
    failures=$((failures + 1))
    return
  fi
  case " $args " in
    *" --json "*)
      if ! validate_json "$out" "$name"; then
        failures=$((failures + 1))
        return
      fi
      ;;
  esac
  echo "ok   $name $args"
}

JOB_NAMES=""

# run NAME [ARGS...]: run one bench — immediately (jobs=1, incremental
# output) or as a throttled background job reported in order at the end.
run() {
  local name="$1"
  shift
  JOB_NAMES="$JOB_NAMES $name"
  echo "$*" > "$TMP/$name.args"
  if [ "$JOBS" -gt 1 ]; then
    while [ "$(jobs -rp | wc -l)" -ge "$JOBS" ]; do
      wait -n || true
    done
    run_one "$name" "$@" &
  else
    run_one "$name" "$@"
    report "$name"
  fi
}

run fig06_randwrite --seconds=0.05 --volume-gib=0.25 --json
run fig06b_seq_largecache --seconds=0.05 --volume-gib=0.25
run fig07_randread --seconds=0.05 --volume-gib=0.25 --json
run fig08_filebench --seconds=0.2 --volume-gib=0.5
run fig09_smallcache_randwrite --seconds=0.2 --volume-gib=0.5 --json
run fig10_smallcache_seqwrite --seconds=0.2 --volume-gib=0.5 --json
run fig11_writeback --burst-gib=0.05 --volume-gib=0.5
run fig12_backend_load --seconds=0.1 --volume-gib=0.25 --max-disks=2
run fig13_amplification --seconds=0.1 --volume-gib=0.25
run fig14_write_sizes --seconds=0.1 --volume-gib=0.25
run fig15_gc_timeline --seconds=1 --volume-gib=0.25
run fig16_replication --seconds=2 --volume-gib=0.25
run fig17_multitenant --smoke --json
run fig18_scaleout --smoke --json
run fig19_fleet --smoke --json
run fig20_tail --smoke --json
run fig21_waf_frontier --scale=256
run fig22_thin_maps --smoke
run tbl03_filebench_stats --ops=2000
run tbl04_crash --trials=1
run tbl05_gc_traces --scale=256
run tbl06_latency_breakdown --json
run sec49_aws_cost --seconds=0.5
run ablation_design_choices --seconds=0.1 --volume-gib=0.5

if [ "$JOBS" -gt 1 ]; then
  wait
  for name in $JOB_NAMES; do
    report "$name"
  done
fi

if [ "$failures" -gt 0 ]; then
  echo "$failures bench(es) failed" >&2
  exit 1
fi
echo "all benches passed"

if [ "$PERF" = 1 ]; then
  if [ -z "$PYTHON" ]; then
    echo "perf: python3 unavailable, skipping aggregation (BENCH_*.json written)"
    exit 0
  fi
  cd "$RESULTS_DIR"
  "$PYTHON" - <<'EOF'
import glob, json, sys

files = sorted(glob.glob("BENCH_*.json"))
if not files:
    sys.exit("perf: no BENCH_*.json files found")
rows = []
for path in files:
    with open(path) as f:
        rows.append(json.load(f))
print()
print("perf summary (%s, crc32c=%s)" % (rows[0]["build_type"],
                                        rows[0]["crc32c_impl"]))
hdr = "%-28s %10s %14s %14s %12s %10s %10s" % (
    "bench", "wall s", "events/s", "sim IO/s", "sim s", "peak MiB", "map KiB")
print(hdr)
print("-" * len(hdr))
MIB = 1024.0 * 1024.0
for r in rows:
    print("%-28s %10.3f %14s %14s %12.3f %10.1f %10.1f" %
          (r["bench"], r["wall_seconds"],
           "{:,.0f}".format(r["events_per_sec"]),
           "{:,.0f}".format(r["sim_ios_per_sec"]), r["sim_seconds"],
           r.get("peak_rss_bytes", 0) / MIB,
           r.get("map_resident_bytes", 0) / 1024.0))
wall = sum(r["wall_seconds"] for r in rows)
events = sum(r["events"] for r in rows)
ios = sum(r["sim_ios"] for r in rows)
print("-" * len(hdr))
print("%-28s %10.3f %14s %14s %12.3f %10.1f %10s" %
      ("TOTAL", wall, "{:,.0f}".format(events / wall if wall else 0),
       "{:,.0f}".format(ios / wall if wall else 0),
       sum(r["sim_seconds"] for r in rows),
       max(r.get("peak_rss_bytes", 0) for r in rows) / MIB, "max rss"))
EOF
fi
