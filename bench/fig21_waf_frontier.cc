// Figure 21 (repo extension, no direct paper counterpart): the WAF
// frontier — steady-state write amplification as a function of the backend
// space utilization the collector is asked to maintain, for the three GC
// victim-selection policies (docs/GC.md; DESIGN.md §11).
//
// Each point pins the collector's watermarks at a target utilization
// (low = target, high = target + 0.04) and replays a Table-5 trace
// stand-in with cold segregation enabled, so the only variable per column
// is how victims are scored:
//   - greedy:       least-utilized object (the paper's collector),
//   - cost-benefit: Sprite-LFS (1-u)(1+a)/(1+u) over the stable age a —
//                   waits for hot objects to empty, pays higher-u
//                   cleanings for cold ones,
//   - age-bucketed: coarse log2 stable-age buckets, utilization tie-break.
// The expected shape is the classic LFS result: the policies agree at low
// utilization, and cost-benefit pulls ahead of greedy as the target rises
// past ~85%, where picking the wrong victim means recopying hot data.
//
// A second sweep models a zoned/SMR-style backend (GcSimConfig::zone_bytes):
// objects pack into 128 MiB sequential-only zones, the cleaner relocates a
// whole zone's live data into the cold stream and resets it. Dead bytes
// stranded in a zone count against utilization, so WAF is strictly worse
// than the object-granular frontier at the same target.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/lsvd/gc_sim.h"
#include "src/workload/trace_gen.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

// Trace profiles with enough long-term overwrite pressure for victim
// selection to matter (the all-profiles sweep is tbl05's job).
constexpr const char* kProfiles[] = {"w04", "w07", "w66", "w31"};

constexpr GcPolicyKind kPolicies[] = {GcPolicyKind::kGreedy,
                                      GcPolicyKind::kCostBenefit,
                                      GcPolicyKind::kAgeBucketed};

constexpr double kUtils[] = {0.70, 0.75, 0.80, 0.85, 0.90, 0.95};

GcSimResult RunPoint(const TraceProfile& profile, uint64_t scale,
                     GcPolicyKind policy, double util, uint64_t zone_bytes) {
  GcSimConfig config;
  config.batch_bytes = 32 * kMiB;
  config.gc_low_watermark = util;
  config.gc_high_watermark = std::min(util + 0.04, 0.99);
  config.policy = policy;
  config.segregate_cold = true;
  config.zone_bytes = zone_bytes;
  GcSimulator sim(config);
  auto stream = MakeTraceStream(profile, scale, 17);
  uint64_t vlba = 0;
  uint64_t len = 0;
  while (stream(&vlba, &len)) {
    sim.Write(vlba, len);
  }
  return sim.Finish();
}

const char* BestName(const double wafs[3]) {
  int best = 0;
  for (int i = 1; i < 3; i++) {
    if (wafs[i] < wafs[best]) {
      best = i;
    }
  }
  return GcPolicyKindName(kPolicies[best]);
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig21_waf_frontier");
  const auto scale = static_cast<uint64_t>(ArgDouble(argc, argv, "scale", 48));
  PrintHeader("fig21_waf_frontier",
              "extension — WAF vs. utilization frontier per GC policy "
              "(cf. §4.6 and the Sprite-LFS cost-benefit cleaner)");
  std::printf("synthetic trace stand-ins, volume scaled 1/%llu; cold "
              "segregation on; watermarks = (target, target+0.04)\n\n",
              static_cast<unsigned long long>(scale));

  std::vector<TraceProfile> profiles;
  for (const auto& profile : TraceProfile::Table5()) {
    for (const char* want : kProfiles) {
      if (profile.name == want) {
        profiles.push_back(profile);
      }
    }
  }

  Table table({"trace", "util target", "WAF greedy", "WAF cost-benefit",
               "WAF age-bucketed", "best"});
  int high_points = 0;       // frontier points with target >= 0.85
  int high_cb_wins = 0;      // ...where cost-benefit strictly beats greedy
  int high_cb_not_worse = 0; // ...where cost-benefit is <= greedy
  for (const auto& profile : profiles) {
    for (const double util : kUtils) {
      double wafs[3];
      for (int p = 0; p < 3; p++) {
        wafs[p] = RunPoint(profile, scale, kPolicies[p], util, 0).waf();
      }
      if (util >= 0.85) {
        high_points++;
        if (wafs[1] < wafs[0]) {
          high_cb_wins++;
        }
        if (wafs[1] <= wafs[0]) {
          high_cb_not_worse++;
        }
      }
      table.AddRow({profile.name, Table::Fmt(util, 2), Table::Fmt(wafs[0], 3),
                    Table::Fmt(wafs[1], 3), Table::Fmt(wafs[2], 3),
                    BestName(wafs)});
    }
  }
  table.Print();
  std::printf("\nfrontier points at util >= 0.85: %d; cost-benefit < greedy "
              "on %d, <= greedy on %d\n",
              high_points, high_cb_wins, high_cb_not_worse);

  // Zoned/SMR-style backend: 128 MiB sequential-only zones (4 batches),
  // whole-zone relocate-and-reset reclaim.
  const uint64_t zone_bytes = 128 * kMiB;
  std::printf("\nzoned/SMR profile — %llu MiB zones, whole-zone reclaim "
              "(trace w04):\n",
              static_cast<unsigned long long>(zone_bytes / kMiB));
  Table ztable({"util target", "WAF greedy", "WAF cost-benefit",
                "WAF age-bucketed", "zones reset (g/cb/ab)"});
  const TraceProfile* zoned_profile = nullptr;
  for (const auto& profile : profiles) {
    if (profile.name == "w04") {
      zoned_profile = &profile;
    }
  }
  if (zoned_profile != nullptr) {
    for (const double util : kUtils) {
      GcSimResult r[3];
      for (int p = 0; p < 3; p++) {
        r[p] = RunPoint(*zoned_profile, scale, kPolicies[p], util, zone_bytes);
      }
      char resets[64];
      std::snprintf(resets, sizeof(resets), "%llu / %llu / %llu",
                    static_cast<unsigned long long>(r[0].zones_reset),
                    static_cast<unsigned long long>(r[1].zones_reset),
                    static_cast<unsigned long long>(r[2].zones_reset));
      ztable.AddRow({Table::Fmt(util, 2), Table::Fmt(r[0].waf(), 3),
                     Table::Fmt(r[1].waf(), 3), Table::Fmt(r[2].waf(), 3),
                     resets});
    }
    ztable.Print();
  }

  std::printf("\nkey shapes: policies converge at low targets and on "
              "coalescing-dominated traces (w66/w07); cost-benefit beats "
              "greedy at 0.85-0.90 on w04 and across the zoned sweep; "
              "zoned reclaim amplifies every policy (stranded dead "
              "space).\n");
  return 0;
}
