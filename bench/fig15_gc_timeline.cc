// Figure 15 (+ §4.6 physical experiments): garbage collection effectiveness
// and cost under varmail.
//
// Paper result shape: with GC off, invalid (stale) data grows nearly
// linearly; with GC on, cleaning starts when utilization hits 70% and holds
// garbage to <=30% of the total, at a small throughput cost (~10% for
// varmail) and overall write amplification ~1.18.
#include "bench/common.h"
#include "src/workload/filebench.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig15_gc_timeline");
  const double seconds = ArgDouble(argc, argv, "seconds", 30.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 2.0);
  PrintHeader("fig15_gc_timeline",
              "Figure 15 — GC keeps stale data bounded (varmail, small "
              "cache), plus GC slowdown");
  std::printf("varmail model, %gs, %g GiB volume, 5 GB cache\n\n", seconds,
              vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  struct RunResult {
    std::vector<std::pair<double, double>> live_gb;     // (t, live GB)
    std::vector<std::pair<double, double>> garbage_gb;  // (t, stale GB)
    double throughput_mbps = 0;
    double waf = 0;
    uint64_t cleaned = 0;
  };
  RunResult results[2];

  for (int gc_on = 0; gc_on < 2; gc_on++) {
    World world(ClusterConfig::SsdPool());
    LsvdConfig config = DefaultLsvdConfig(volume, kSmallCache);
    config.gc_enabled = gc_on == 1;
    LsvdSystem sys = LsvdSystem::Create(&world, config);
    Precondition(&world, sys.disk.get());

    FilebenchProfile varmail = FilebenchProfile::Varmail();
    varmail.working_set = volume;
    const Nanos t0 = world.sim.now();
    Driver driver(&world.sim, sys.disk.get(),
                  MakeFilebenchGen(varmail, volume, 5), 16,
                  t0 + FromSeconds(seconds));
    bool done = false;
    driver.Run([&] { done = true; });

    RunResult& res = results[gc_on];
    for (int step = 0; step < static_cast<int>(seconds) + 60; step++) {
      world.sim.RunUntil(t0 + (step + 1) * kSecond);
      const auto& backend = sys.disk->backend();
      const double live = static_cast<double>(backend.live_bytes()) / 1e9;
      const double total = static_cast<double>(backend.total_bytes()) / 1e9;
      res.live_gb.push_back({step + 1.0, live});
      res.garbage_gb.push_back({step + 1.0, total - live});
      if (done && world.sim.empty()) {
        break;
      }
    }
    world.sim.Run();
    const auto& stats = driver.stats();
    res.throughput_mbps =
        static_cast<double>(stats.bytes_written + stats.bytes_read) /
        ToSeconds(stats.finished_at - stats.started_at) / 1e6;
    const auto& bs = sys.disk->backend().stats();
    res.waf = bs.client_bytes > 0
                  ? static_cast<double>(bs.payload_bytes + bs.gc_bytes_copied) /
                        static_cast<double>(bs.client_bytes)
                  : 0;
    res.cleaned = bs.gc_objects_cleaned;
  }

  std::printf("%-8s %-14s %-14s %-14s %-14s\n", "t(s)", "live(gc off)",
              "stale(gc off)", "live(gc on)", "stale(gc on)");
  const size_t rows =
      std::max(results[0].live_gb.size(), results[1].live_gb.size());
  for (size_t i = 0; i < rows; i += std::max<size_t>(1, rows / 30)) {
    auto at = [&](const std::vector<std::pair<double, double>>& v) {
      return i < v.size() ? v[i].second : 0.0;
    };
    std::printf("%-8zu %-14.2f %-14.2f %-14.2f %-14.2f\n", i + 1,
                at(results[0].live_gb), at(results[0].garbage_gb),
                at(results[1].live_gb), at(results[1].garbage_gb));
  }

  std::printf("\nthroughput: gc off %.1f MB/s, gc on %.1f MB/s "
              "(slowdown %.1f%%; paper ~10%% for varmail)\n",
              results[0].throughput_mbps, results[1].throughput_mbps,
              100.0 * (1.0 - results[1].throughput_mbps /
                                 std::max(1.0, results[0].throughput_mbps)));
  std::printf("gc on: WAF %.3f (paper 1.176), objects cleaned %llu\n",
              results[1].waf,
              static_cast<unsigned long long>(results[1].cleaned));
  const auto& g_on = results[1].garbage_gb;
  const auto& l_on = results[1].live_gb;
  if (!g_on.empty()) {
    const double stale = g_on.back().second;
    const double live = l_on.back().second;
    std::printf("final stale fraction with GC: %.0f%% (paper: bounded at "
                "~30%%)\n",
                100.0 * stale / std::max(1e-9, stale + live));
  }
  return 0;
}
