// Figure 16 (+ §4.8): asynchronous replication by lazy object copying.
//
// A fileserver-style workload (hot/medium/cold file sets) writes to the
// primary object store; a replicator copies objects older than 60 s to a
// second store. Paper result shape: replica traffic tracks the virtual-disk
// write rate with a lag; garbage collection deletes some objects before they
// replicate (103 GB written vs 85 GB copied); the replica mounts to a
// consistent image via the standard recovery rules despite out-of-order
// arrival.
#include "bench/common.h"
#include "src/lsvd/replicator.h"
#include "src/workload/filebench.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig16_replication");
  const double seconds = ArgDouble(argc, argv, "seconds", 90.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 2.0);
  PrintHeader("fig16_replication",
              "Figure 16 — data transfer during asynchronous replication");
  std::printf("fileserver-style mix, %gs, %g GiB volume; copy objects older "
              "than 20 s (paper: 60 s)\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  World world(ClusterConfig::SsdPool());
  // The replica store lives on its own cluster + link (second datacenter).
  BackendCluster replica_cluster(&world.sim, ClusterConfig::HddPool());
  NetLink replica_link(&world.sim, NetParams{});
  SimObjectStore replica(&world.sim, &replica_cluster, &replica_link,
                         SimObjectStoreConfig{});

  LsvdConfig config = DefaultLsvdConfig(volume, kSmallCache);
  LsvdSystem sys = LsvdSystem::Create(&world, config);

  ReplicatorConfig rep_config;
  rep_config.volume_name = config.volume_name;
  rep_config.min_age = 20 * kSecond;
  rep_config.poll_interval = 5 * kSecond;
  Replicator replicator(&world.sim, sys.store.get(), &replica, rep_config);
  replicator.Start();

  FilebenchProfile fileserver = FilebenchProfile::Fileserver();
  fileserver.working_set = volume;
  // Some sync pressure so batches flow continuously.
  fileserver.writes_per_sync = 500;
  const Nanos t0 = world.sim.now();
  // Pace the workload so total writes ~= 2x the footprint over the run
  // (the paper writes 103 GB against large file sets; writing many times
  // the footprint would just hand everything to the GC before it ages in).
  const uint64_t byte_budget = 2 * volume;
  auto inner = MakeFilebenchGen(fileserver, volume, 21);
  auto written = std::make_shared<uint64_t>(0);
  auto paced = [inner, written, byte_budget](WorkloadOp* op) {
    if (*written >= byte_budget) {
      return false;
    }
    if (!inner(op)) {
      return false;
    }
    if (op->kind == WorkloadOp::Kind::kWrite) {
      *written += op->len;
    }
    return true;
  };
  Driver driver(&world.sim, sys.disk.get(), paced, 4,
                t0 + FromSeconds(seconds));
  driver.Run([] {});

  std::printf("%-8s %-16s %-18s %-16s\n", "t(s)", "vdisk MB/s",
              "primary put MB/s", "replica MB/s");
  uint64_t last_written = 0;
  uint64_t last_put = 0;
  uint64_t last_copied = 0;
  const int steps = static_cast<int>(seconds) + 60;
  for (int step = 0; step < steps; step++) {
    world.sim.RunUntil(t0 + (step + 1) * 5 * kSecond);
    const uint64_t written = driver.stats().bytes_written;
    const uint64_t put = sys.store->stats().put_bytes;
    const uint64_t copied = replicator.stats().bytes_copied;
    if (step % 2 == 1) {
      std::printf("%-8d %-16.1f %-18.1f %-16.1f\n", (step + 1) * 5,
                  static_cast<double>(written - last_written) / 5e6,
                  static_cast<double>(put - last_put) / 5e6,
                  static_cast<double>(copied - last_copied) / 5e6);
    }
    last_written = written;
    last_put = put;
    last_copied = copied;
    if (world.sim.empty()) {
      break;
    }
  }
  replicator.Stop();
  world.sim.Run();

  const double written_gb =
      static_cast<double>(driver.stats().bytes_written) / 1e9;
  const double copied_gb =
      static_cast<double>(replicator.stats().bytes_copied) / 1e9;
  std::printf("\ntotal written to virtual disk: %.1f GB; copied to replica: "
              "%.1f GB (%.0f%%)\n",
              written_gb, copied_gb, 100.0 * copied_gb / std::max(0.01, written_gb));
  std::printf("objects copied: %llu, skipped (GC deleted first): %llu\n",
              static_cast<unsigned long long>(replicator.stats().objects_copied),
              static_cast<unsigned long long>(
                  replicator.stats().objects_skipped_deleted));
  std::printf("paper: 103 GB written, 85 GB replicated; GC deletes some "
              "objects before they age in\n");

  // Mount the replica and verify it recovers consistently (§4.8's key
  // claim: the standard recovery strategy suffices).
  ClientHost replica_host(&world.sim, ClientHostConfig{});
  LsvdDisk mounted(&replica_host, &replica, config);
  std::optional<Status> mount_status;
  mounted.OpenCacheLost([&](Status s) { mount_status = s; });
  world.sim.Run();
  std::printf("replica mount: %s (recovered through object seq %llu of %llu "
              "written)\n",
              mount_status && mount_status->ok() ? "CONSISTENT" : "FAILED",
              static_cast<unsigned long long>(mounted.backend().applied_seq()),
              static_cast<unsigned long long>(
                  sys.disk->backend().applied_seq()));
  return mount_status && mount_status->ok() ? 0 : 1;
}
