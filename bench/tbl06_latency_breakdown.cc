// Table 6: fine-grained single-operation latency breakdown (§4.7).
//
// The paper instrumented its kernel/userspace prototype with timestamp
// counters for isolated reads and writes. Here the per-stage costs are model
// inputs (StageCosts); this bench echoes that decomposition and then
// *measures* isolated end-to-end operation latencies in the simulator so
// the two can be compared (the end-to-end number also includes device time
// and, for a read miss, the S3 GET).
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

// Measures one operation's latency without draining background work (so a
// write can be followed immediately by a cache-hit read of the same block).
Nanos MeasureIsolated(World* world, LsvdDisk* disk, bool write,
                      uint64_t offset) {
  const Nanos t0 = world->sim.now();
  bool done = false;
  if (write) {
    disk->Write(offset, Buffer::Zeros(4 * kKiB), [&](Status) { done = true; });
  } else {
    disk->Read(offset, 4 * kKiB, [&](Result<Buffer>) { done = true; });
  }
  while (!done && world->sim.Step()) {
  }
  return world->sim.now() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "tbl06_latency_breakdown");
  PrintHeader("tbl06_latency_breakdown",
              "Table 6 — single read / write stage breakdown");

  const StageCosts costs;
  std::printf("write path (model inputs; paper's measurements in "
              "parentheses):\n");
  Table wtable({"#", "k/u", "stage", "model us", "paper us"});
  wtable.AddRow({"1", "k", "write to NVMe (device model)", "-", "64"});
  wtable.AddRow({"2", "k", "map update",
                 Table::Fmt(costs.write_map_update / 1e3, 0), "3"});
  wtable.AddRow({"3", "k", "context switch (journal worker)",
                 Table::Fmt(costs.record_context_switch / 1e3, 0), "50"});
  wtable.AddRow({"4", "k", "request handling / return",
                 Table::Fmt(costs.write_submit / 1e3, 0), "20"});
  wtable.AddRow({"5", "u", "daemon (golang) per batch",
                 Table::Fmt(costs.batch_golang / 1e3, 0), "63"});
  wtable.AddRow({"6", "u", "read from NVMe (pass-through)", "-", "110"});
  wtable.AddRow({"7", "k", "return to kernel",
                 Table::Fmt(costs.return_to_kernel / 1e3, 0), "27"});
  wtable.Print();

  std::printf("\nread-miss path:\n");
  Table rtable({"#", "k/u", "stage", "model us", "paper us"});
  rtable.AddRow({"1", "k", "map lookup",
                 Table::Fmt(costs.read_map_lookup / 1e3, 0), "3"});
  rtable.AddRow({"2", "k", "context switch + returns",
                 Table::Fmt(costs.read_miss_kernel / 1e3, 0), "99"});
  rtable.AddRow({"3", "u", "daemon (golang)",
                 Table::Fmt(costs.read_miss_golang / 1e3, 0), "34"});
  rtable.AddRow({"4", "u", "S3 range request (net+disk model)", "-", "5920"});
  rtable.AddRow({"5", "u", "write to NVMe (read-cache fill)", "-", "136"});
  rtable.Print();

  // Measured end-to-end isolated latencies.
  World world(ClusterConfig::SsdPool());
  LsvdSystem sys = LsvdSystem::Create(&world, DefaultLsvdConfig(kGiB,
                                                                8 * kGiB));
  // Populate one extent and push it to the backend.
  bool ready = false;
  sys.disk->Write(0, Buffer::Zeros(kMiB), [&](Status) {});
  sys.disk->Drain([&](Status) { ready = true; });
  world.sim.Run();
  if (!ready) {
    return 1;
  }

  const Nanos write_lat = MeasureIsolated(&world, sys.disk.get(), true,
                                          512 * kMiB);
  // Immediately after the write, the same block is a write-cache hit.
  const Nanos hit_lat = MeasureIsolated(&world, sys.disk.get(), false,
                                        512 * kMiB);
  // Drain so the first extent's cache records are released: reading it is a
  // genuine backend (S3 range GET) miss.
  world.sim.Run();
  const Nanos miss_lat = MeasureIsolated(&world, sys.disk.get(), false, 0);

  std::printf("\nmeasured isolated end-to-end latencies (simulated):\n");
  Table m({"operation", "latency us", "paper (sum of stages)"});
  m.AddRow({"write (ack at cache)", Table::Fmt(write_lat / 1e3, 0), "~200"});
  m.AddRow({"read, cache hit", Table::Fmt(hit_lat / 1e3, 0), "n/a"});
  m.AddRow({"read, backend miss", Table::Fmt(miss_lat / 1e3, 0), "~6200"});
  m.Print();
  std::printf("\npaper: the S3 GET dominates the read-miss path; context "
              "switching dominates CPU overhead\n");
  MaybeDumpMetrics(world, argc, argv);
  return 0;
}
