// Tables 2 & 3: Filebench workload parameters and their block-level
// behaviour (mean write size, writes and bytes between commit barriers).
//
// The paper measured these from block traces of Filebench over ext4; our
// workload models emit the same block-level stream, and this bench verifies
// the statistics the models produce against the paper's measurements.
#include "bench/common.h"
#include "src/workload/filebench.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "tbl03_filebench_stats");
  const double ops = ArgDouble(argc, argv, "ops", 300000);
  PrintHeader("tbl03_filebench_stats",
              "Tables 2-3 — Filebench parameters and block-level behaviour");

  Table params({"workload", "file count", "mean file size", "IO size",
                "threads", "mean append"});
  Table stats({"workload", "writes/sync", "KiB/sync", "mean write KiB",
               "paper writes/sync", "paper mean write"});

  for (const auto& profile :
       {FilebenchProfile::Fileserver(), FilebenchProfile::Oltp(),
        FilebenchProfile::Varmail()}) {
    params.AddRow({profile.name, Table::FmtCount(profile.file_count),
                   Table::FmtBytes(profile.mean_file_size),
                   profile.io_size ? Table::FmtBytes(profile.io_size) : "-",
                   std::to_string(profile.threads),
                   Table::FmtBytes(profile.io_size)});

    auto gen = MakeFilebenchGen(profile, 32 * kGiB, 11);
    WorkloadOp op;
    uint64_t writes = 0;
    uint64_t write_bytes = 0;
    uint64_t flushes = 0;
    for (uint64_t i = 0; i < static_cast<uint64_t>(ops); i++) {
      gen(&op);
      if (op.kind == WorkloadOp::Kind::kWrite) {
        writes++;
        write_bytes += op.len;
      } else if (op.kind == WorkloadOp::Kind::kFlush) {
        flushes++;
      }
    }
    const double per_sync =
        flushes > 0 ? static_cast<double>(writes) / static_cast<double>(flushes)
                    : static_cast<double>(writes);
    const double bytes_sync =
        flushes > 0
            ? static_cast<double>(write_bytes) / static_cast<double>(flushes)
            : static_cast<double>(write_bytes);
    const double mean_write =
        writes > 0 ? static_cast<double>(write_bytes) /
                         static_cast<double>(writes)
                   : 0;
    std::string paper_sync;
    std::string paper_write;
    if (profile.name == "fileserver") {
      paper_sync = "12865";
      paper_write = "94 KiB";
    } else if (profile.name == "oltp") {
      paper_sync = "42.7";
      paper_write = "4.7 KiB";
    } else {
      paper_sync = "7.6";
      paper_write = "27 KiB";
    }
    stats.AddRow({profile.name, Table::Fmt(per_sync, 1),
                  Table::Fmt(bytes_sync / 1024, 0),
                  Table::Fmt(mean_write / 1024, 1), paper_sync, paper_write});
  }

  std::printf("Table 2 (workload parameters):\n");
  params.Print();
  std::printf("\nTable 3 (block-level behaviour, measured from %g ops):\n",
              ops);
  stats.Print();
  return 0;
}
