// Figure 20 (extension): open-loop tail latency vs offered load — fixed vs
// adaptive group commit.
//
// The paper's fio numbers (figs 6-10) are closed-loop: a fixed queue depth
// measures service time, and offered load collapses to whatever the system
// completes. Production virtual-disk clients are open-loop — they issue when
// *they* decide — and under bursts the host-side queue, not the device, sets
// p99/p99.9. This bench drives 4 KiB random writes from a Poisson burst
// arrival process (src/workload/arrival.h) at several offered loads and
// reports the client-observed latency distribution:
//   - LSVD with default (fixed) sealing,
//   - LSVD with adaptive batching (plug/seal deadline, journal flush
//     coalescing, small-write fast path; DESIGN.md §12),
//   - bcache+RBD as the baseline system,
// plus closed-loop QD16 rows for contrast with the paper's methodology.
// Expected shape: at low-to-moderate load, adaptive sealing cuts LSVD's
// open-loop p99 (a lone write no longer waits out the plug heuristic);
// at saturation the queue dominates and all systems degrade together.
#include <string>
#include <vector>

#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

// Host-side concurrency bound for the open-loop driver: a virtio-style
// submission queue. Arrivals beyond this wait in the host queue, split out
// as "w.queue_us" vs "w.service_us".
constexpr int kOpenLoopDepth = 64;

struct CellResult {
  double kiops = 0;       // achieved completion rate
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double queue_p99_us = 0;  // open loop only: host-queue wait
  std::string metrics_json;
};

enum class Sys { kLsvdFixed, kLsvdAdaptive, kBcache };

const char* SysName(Sys s) {
  switch (s) {
    case Sys::kLsvdFixed:
      return "lsvd fixed";
    case Sys::kLsvdAdaptive:
      return "lsvd adaptive";
    case Sys::kBcache:
      return "bcache+rbd";
  }
  return "?";
}

// One (system, mode, load) cell gets its own world so cells are independent
// and deterministic regardless of ordering.
CellResult RunCell(Sys sys, bool open_loop, double rate_iops, double seconds,
                   uint64_t volume, double seal_deadline_us, bool want_json) {
  World world(ClusterConfig::SsdPool());

  LsvdSystem lsvd_sys;
  BcacheRbdSystem bcache_sys;
  VirtualDisk* disk = nullptr;
  if (sys == Sys::kBcache) {
    bcache_sys = BcacheRbdSystem::Create(&world, volume, kSmallCache);
    disk = bcache_sys.bcache.get();
  } else {
    LsvdConfig config = DefaultLsvdConfig(volume, kSmallCache);
    if (sys == Sys::kLsvdAdaptive) {
      config.batch_seal_deadline = FromSeconds(seal_deadline_us * 1e-6);
      config.journal_flush_coalescing = true;
      config.small_write_fast_path = true;
    }
    lsvd_sys = LsvdSystem::Create(&world, config);
    disk = lsvd_sys.disk.get();
  }
  Precondition(&world, disk);

  // Pre-create the driver's latency histograms with log-linear sub-buckets
  // (sub_bits=6, ~1.6% resolution) so p99.9 is not quantized to powers of
  // two; the driver's GetHistogram then resolves these instances.
  world.metrics.GetHistogram("w.write_us", 6);
  world.metrics.GetHistogram("w.queue_us", 6);
  world.metrics.GetHistogram("w.service_us", 6);

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 4 * kKiB;
  fio.volume_size = volume;
  const Nanos deadline = world.sim.now() + FromSeconds(seconds);
  Driver driver(&world.sim, disk, MakeFioGen(fio), /*queue_depth=*/16,
                deadline, &world.metrics, "w");
  if (open_loop) {
    ArrivalConfig arrivals;
    arrivals.profile = ArrivalConfig::Profile::kBurst;
    arrivals.rate = rate_iops;
    // Several burst cycles per run: 4x the mean rate for the first fifth of
    // each period.
    arrivals.period = FromSeconds(seconds / 5.0);
    arrivals.burst_duration = arrivals.period / 5;
    arrivals.multiplier = 4.0;
    driver.EnableOpenLoop(arrivals, kOpenLoopDepth);
  }

  bool done = false;
  driver.Run([&] { done = true; });
  world.sim.Run();
  if (!done) {
    std::fprintf(stderr, "fig20 cell stalled\n");
    std::abort();
  }
  GlobalPerfTotals().sim_ios += driver.stats().ops;

  const MetricsSnapshot snap = world.metrics.Snapshot();
  CellResult r;
  r.kiops = driver.stats().Iops() / 1e3;
  r.p50_us = snap.Percentile("w.write_us", 0.50);
  r.p99_us = snap.Percentile("w.write_us", 0.99);
  r.p999_us = snap.Percentile("w.write_us", 0.999);
  if (open_loop) {
    r.queue_p99_us = snap.Percentile("w.queue_us", 0.99);
  }
  if (want_json) {
    r.metrics_json = world.metrics.ToJson();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig20_tail");
  const bool smoke = ArgFlag(argc, argv, "smoke");
  const double seconds = ArgDouble(argc, argv, "seconds", smoke ? 0.05 : 2.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib",
                                   smoke ? 0.25 : 4.0);
  const double seal_deadline_us =
      ArgDouble(argc, argv, "seal-deadline-us", 500.0);
  const bool want_json = ArgFlag(argc, argv, "json");

  PrintHeader("fig20_tail",
              "extension — open-loop bursty arrivals, tail latency vs offered "
              "load, fixed vs adaptive group commit");
  std::printf("4K randwrite; open loop: Poisson bursts (4x rate, 1/5 duty), "
              "host QD cap %d; closed loop: QD16; %gs per cell, %g GiB "
              "volumes; adaptive seal deadline %g us\n\n",
              kOpenLoopDepth, seconds, vol_gib, seal_deadline_us);

  const auto volume =
      static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  std::vector<double> loads_kiops =
      smoke ? std::vector<double>{5, 20} : std::vector<double>{10, 15, 60};

  Table table({"system", "mode", "offered kIOPS", "done kIOPS", "p50 us",
               "p99 us", "p99.9 us", "queue p99 us"});
  auto row = [&](Sys sys, const char* mode, double offered,
                 const CellResult& r) {
    table.AddRow({SysName(sys), mode,
                  offered > 0 ? Table::Fmt(offered, 0) : "-",
                  Table::Fmt(r.kiops, 1), Table::Fmt(r.p50_us, 0),
                  Table::Fmt(r.p99_us, 0), Table::Fmt(r.p999_us, 0),
                  offered > 0 ? Table::Fmt(r.queue_p99_us, 0) : "-"});
  };

  // Closed-loop contrast rows (the paper's methodology).
  for (Sys sys : {Sys::kLsvdFixed, Sys::kBcache}) {
    const CellResult r = RunCell(sys, /*open_loop=*/false, 0.0, seconds,
                                 volume, seal_deadline_us,
                                 /*want_json=*/false);
    row(sys, "closed", 0.0, r);
  }

  // Open-loop sweep; the final adaptive cell's world is the one dumped with
  // --json (it carries the new deadline_seals / coalesced_flushes counters).
  std::string json;
  for (size_t i = 0; i < loads_kiops.size(); i++) {
    const double load = loads_kiops[i];
    const bool last = i + 1 == loads_kiops.size();
    for (Sys sys : {Sys::kLsvdFixed, Sys::kLsvdAdaptive, Sys::kBcache}) {
      const bool dump = want_json && last && sys == Sys::kLsvdAdaptive;
      const CellResult r = RunCell(sys, /*open_loop=*/true, load * 1e3,
                                   seconds, volume, seal_deadline_us, dump);
      row(sys, "open", load, r);
      if (dump) {
        json = r.metrics_json;
      }
    }
  }
  table.Print();
  std::printf("\nexpected shape: open-loop p99/p99.9 >> closed-loop at the "
              "same throughput once bursts queue; adaptive sealing cuts "
              "lsvd's open-loop tail at low-to-moderate load and converges "
              "with fixed sealing at saturation\n");

  if (want_json) {
    std::printf("%s\n", json.c_str());
  }
  return 0;
}
