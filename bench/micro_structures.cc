// google-benchmark microbenchmarks for LSVD's core data structures: the
// extent map (all three translation maps, §3.1/§6.1), CRC32C, and the
// journal/object codecs. These justify the in-memory-map design decision
// (§6.1: ~24 bytes and sub-microsecond operations per entry).
#include <benchmark/benchmark.h>

#include "src/lsvd/extent_map.h"
#include "src/lsvd/journal.h"
#include "src/lsvd/object_format.h"
#include "src/util/crc32c.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace lsvd {
namespace {

void BM_ExtentMapUpdate(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  ExtentMap<ObjTarget> map;
  Rng rng(1);
  // Pre-populate.
  for (uint64_t i = 0; i < entries; i++) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{i, 0});
  }
  uint64_t seq = entries;
  for (auto _ : state) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{seq++, 0});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtentMapUpdate)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ExtentMapLookup(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  ExtentMap<ObjTarget> map;
  Rng rng(2);
  for (uint64_t i = 0; i < entries; i++) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{i, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.Lookup(rng.Uniform(entries * 4) * 16 * kKiB, 64 * kKiB));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtentMapLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_JournalEncode(benchmark::State& state) {
  JournalRecord rec;
  rec.seq = 1;
  const auto nexts = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < nexts; i++) {
    rec.extents.push_back({i * 16 * kKiB, 16 * kKiB});
  }
  rec.data = Buffer::Zeros(nexts * 16 * kKiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeJournalRecord(rec));
  }
}
BENCHMARK(BM_JournalEncode)->Arg(4)->Arg(32)->Arg(128);

void BM_ObjectHeaderDecode(benchmark::State& state) {
  DataObjectHeader header;
  header.seq = 7;
  const auto nexts = static_cast<size_t>(state.range(0));
  Buffer data;
  for (size_t i = 0; i < nexts; i++) {
    header.extents.push_back({i * 64 * kKiB, 16 * kKiB, 0, 0});
    data.AppendZeros(16 * kKiB);
  }
  const Buffer object = EncodeDataObject(header, data);
  for (auto _ : state) {
    DataObjectHeader out;
    benchmark::DoNotOptimize(DecodeDataObjectHeader(object, &out));
  }
}
BENCHMARK(BM_ObjectHeaderDecode)->Arg(16)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace lsvd

BENCHMARK_MAIN();
