// google-benchmark microbenchmarks for LSVD's core data structures: the
// extent map (all three translation maps, §3.1/§6.1), the event engine,
// CRC32C, and the journal/object codecs. These justify the in-memory-map
// design decision (§6.1: ~24 bytes and sub-microsecond operations per entry)
// and track the hot-path CPU work (docs/PERF.md).
//
// Benchmarks report an "allocs_per_op" counter (heap allocations per
// iteration, via the operator-new hook below) so allocation regressions in
// the scheduler and map fast paths show up directly.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <new>

#include "src/lsvd/extent_map.h"
#include "src/lsvd/journal.h"
#include "src/lsvd/object_format.h"
#include "src/sim/simulator.h"
#include "src/util/crc32c.h"
#include "src/util/rng.h"
#include "src/util/units.h"

// Global operator-new replacement counting heap allocations. Counting is a
// single relaxed atomic add, cheap enough to leave on for every benchmark.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t n, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace lsvd {
namespace {

// RAII: counts heap allocations across the timed loop and reports them as a
// per-iteration counter.
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state)
      : state_(state), start_(g_alloc_count.load(std::memory_order_relaxed)) {}
  ~AllocCounter() {
    const uint64_t n =
        g_alloc_count.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(n) /
        static_cast<double>(state_.iterations() ? state_.iterations() : 1));
  }

 private:
  benchmark::State& state_;
  uint64_t start_;
};

void BM_ExtentMapUpdate(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  ExtentMap<ObjTarget> map;
  Rng rng(1);
  // Pre-populate.
  for (uint64_t i = 0; i < entries; i++) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{i, 0});
  }
  uint64_t seq = entries;
  AllocCounter allocs(state);
  for (auto _ : state) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{seq++, 0});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtentMapUpdate)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ExtentMapLookup(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  ExtentMap<ObjTarget> map;
  Rng rng(2);
  for (uint64_t i = 0; i < entries; i++) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{i, 0});
  }
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.Lookup(rng.Uniform(entries * 4) * 16 * kKiB, 64 * kKiB));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtentMapLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

// Out-param Lookup (the hot-path API): no result-vector allocation, and the
// map's last-extent hint turns repeated/sequential probes into O(1).
void BM_ExtentMapLookupOutParam(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  ExtentMap<ObjTarget> map;
  Rng rng(2);
  for (uint64_t i = 0; i < entries; i++) {
    map.Update(rng.Uniform(entries * 4) * 16 * kKiB, 16 * kKiB,
               ObjTarget{i, 0});
  }
  ExtentMap<ObjTarget>::SegmentVec segs;
  AllocCounter allocs(state);
  for (auto _ : state) {
    map.Lookup(rng.Uniform(entries * 4) * 16 * kKiB, 64 * kKiB, &segs);
    benchmark::DoNotOptimize(segs.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtentMapLookupOutParam)->Arg(1000)->Arg(100000)->Arg(1000000);

// Sequential scan over adjacent extents — the hint's best case (streaming
// reads, GC victim scans, checkpoint encodes).
void BM_ExtentMapLookupSequential(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  ExtentMap<ObjTarget> map;
  for (uint64_t i = 0; i < entries; i++) {
    map.Update(i * 16 * kKiB, 16 * kKiB, ObjTarget{i, 0});
  }
  ExtentMap<ObjTarget>::SegmentVec segs;
  uint64_t next = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    map.Lookup(next * 16 * kKiB, 16 * kKiB, &segs);
    benchmark::DoNotOptimize(segs.size());
    next = (next + 1) % entries;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtentMapLookupSequential)->Arg(1000)->Arg(1000000);

// Event engine: schedule-then-drain churn with short delays — the shape of
// nearly all simulation traffic (device latencies, network hops). Exercises
// the calendar queue's near window and InlineFn's inline storage.
void BM_SimulatorNearEvents(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Simulator sim;
  Rng rng(3);
  uint64_t sink = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    for (int i = 0; i < batch; i++) {
      sim.At(sim.now() + 1 + static_cast<Nanos>(rng.Uniform(500 * 1000)),
             [&sink] { sink++; });
    }
    sim.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_SimulatorNearEvents)->Arg(64)->Arg(1024);

// Mixed near + far timers: far events (seconds out, e.g. GC ticks and retry
// backoffs) land in the overflow heap and must migrate into the calendar
// window without disturbing near-event throughput.
void BM_SimulatorMixedHorizon(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Simulator sim;
  Rng rng(4);
  uint64_t sink = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    for (int i = 0; i < batch; i++) {
      const bool far = (i & 7) == 0;  // 1 in 8 beyond the near window
      const Nanos delay = far ? FromSeconds(0.1 + 0.01 * (i & 63))
                              : 1 + static_cast<Nanos>(rng.Uniform(100 * 1000));
      sim.At(sim.now() + delay, [&sink] { sink++; });
    }
    sim.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_SimulatorMixedHorizon)->Arg(64)->Arg(1024);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_JournalEncode(benchmark::State& state) {
  JournalRecord rec;
  rec.seq = 1;
  const auto nexts = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < nexts; i++) {
    rec.extents.push_back({i * 16 * kKiB, 16 * kKiB});
  }
  rec.data = Buffer::Zeros(nexts * 16 * kKiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeJournalRecord(rec));
  }
}
BENCHMARK(BM_JournalEncode)->Arg(4)->Arg(32)->Arg(128);

void BM_ObjectHeaderDecode(benchmark::State& state) {
  DataObjectHeader header;
  header.seq = 7;
  const auto nexts = static_cast<size_t>(state.range(0));
  Buffer data;
  for (size_t i = 0; i < nexts; i++) {
    header.extents.push_back({i * 64 * kKiB, 16 * kKiB, 0, 0});
    data.AppendZeros(16 * kKiB);
  }
  const Buffer object = EncodeDataObject(header, data);
  for (auto _ : state) {
    DataObjectHeader out;
    benchmark::DoNotOptimize(DecodeDataObjectHeader(object, &out));
  }
}
BENCHMARK(BM_ObjectHeaderDecode)->Arg(16)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace lsvd

BENCHMARK_MAIN();
