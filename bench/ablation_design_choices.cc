// Ablations of the design choices discussed in the paper's §3/§6:
//
//   - batch size (the paper uses 8 or 32 MiB objects),
//   - write-cache / read-cache split of the SSD (~20/80 in the prototype),
//   - the prototype's kernel/user SSD pass-through (§4.7 "The Bad": data
//     crosses the kernel boundary via the SSD; the successor removes this),
//   - within-batch write coalescing (§3.1).
//
// Workload: 16 KiB random writes at QD 32 with a small cache (so the full
// write path, including writeback, is exercised).
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

double MeasureMbps(LsvdConfig config, double seconds) {
  World world(ClusterConfig::SsdPool());
  LsvdSystem sys = LsvdSystem::Create(&world, std::move(config));
  Precondition(&world, sys.disk.get());
  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 16 * kKiB;
  fio.volume_size = sys.disk->size();
  return RunFio(&world, sys.disk.get(), fio, 32, seconds)
             .WriteThroughputBps() /
         1e6;
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "ablation_design_choices");
  const double seconds = ArgDouble(argc, argv, "seconds", 8.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 4.0);
  PrintHeader("ablation_design_choices",
              "§3/§6 design-choice ablations (16 KiB randwrite QD32, "
              "writeback-bound small cache)");
  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  // Scaled small cache (cf. fig09) so the run reaches the writeback-bound
  // regime where these knobs matter.
  const auto small_cache =
      static_cast<uint64_t>(std::max(0.4, 5.0 * vol_gib / 80.0) * 1e9);
  const LsvdConfig base = DefaultLsvdConfig(volume, small_cache);

  Table table({"variant", "MB/s", "vs default"});
  const double baseline = MeasureMbps(base, seconds);
  table.AddRow({"default (8 MiB batch, 20/80 split, pass-through on, "
                "coalesce on)",
                Table::Fmt(baseline, 1), "1.00"});

  {
    LsvdConfig c = base;
    c.batch_bytes = 32 * kMiB;
    const double v = MeasureMbps(c, seconds);
    table.AddRow({"batch 32 MiB", Table::Fmt(v, 1),
                  Table::Fmt(v / baseline, 2)});
  }
  {
    LsvdConfig c = base;
    c.batch_bytes = kMiB;
    const double v = MeasureMbps(c, seconds);
    table.AddRow({"batch 1 MiB (more objects, more per-PUT overhead)",
                  Table::Fmt(v, 1), Table::Fmt(v / baseline, 2)});
  }
  {
    LsvdConfig c = base;
    // 50/50 split: smaller read cache, bigger log.
    const uint64_t total = c.write_cache_size + c.read_cache_size;
    c.write_cache_size = total / 2 / kBlockSize * kBlockSize;
    c.read_cache_size = (total - c.write_cache_size) / kBlockSize * kBlockSize;
    const double v = MeasureMbps(c, seconds);
    table.AddRow({"50/50 cache split", Table::Fmt(v, 1),
                  Table::Fmt(v / baseline, 2)});
  }
  {
    LsvdConfig c = base;
    c.pass_through_ssd = false;
    const double v = MeasureMbps(c, seconds);
    table.AddRow({"no SSD pass-through (the planned userspace rewrite, "
                  "§6.2)",
                  Table::Fmt(v, 1), Table::Fmt(v / baseline, 2)});
  }
  {
    LsvdConfig c = base;
    c.coalesce_within_batch = false;
    const double v = MeasureMbps(c, seconds);
    table.AddRow({"no within-batch coalescing", Table::Fmt(v, 1),
                  Table::Fmt(v / baseline, 2)});
  }
  table.Print();
  std::printf("\nexpected: larger batches amortize PUT costs; removing the "
              "pass-through frees SSD bandwidth (§4.7); coalescing matters "
              "for overwrite-heavy workloads rather than uniform random\n");
  return 0;
}
