// Figure 9: random writes with a small (5 GB) cache — the sustained,
// writeback-bound regime (§4.3).
//
// Paper result shape: LSVD writes back nearly as fast as a medium local SSD
// (600+ MB/s) because batches become large erasure-coded object writes;
// bcache+RBD collapses to roughly uncached RBD speed because each evicted
// block is a small replicated backend write. LSVD wins by 2-8x.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig09_smallcache_randwrite");
  const double seconds = ArgDouble(argc, argv, "seconds", 12.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 8.0);
  const bool sequential = ArgDouble(argc, argv, "sequential", 0) != 0;
  // The paper's 5 GB cache against an 80 GiB volume; scale the cache with
  // the volume so the cache-full, writeback-bound regime is reached within
  // the (scaled) run duration.
  const auto small_cache = static_cast<uint64_t>(
      std::max(0.75, 5.0 * vol_gib / 80.0) * 1e9);
  PrintHeader(sequential ? "fig10_smallcache_seqwrite"
                         : "fig09_smallcache_randwrite",
              sequential
                  ? "Figure 10 — sequential writes, small (5 GB) cache"
                  : "Figure 9 — random writes, small (5 GB) cache");
  std::printf("%gs per cell, %g GiB volume, scaled small cache (writeback-bound)\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"bs", "qd", "lsvd MB/s", "bcache+rbd MB/s", "lsvd/bcache"});

  // With --json: full registry dump of the last LSVD cell.
  std::string metrics_json;
  for (const uint64_t bs : {4 * kKiB, 16 * kKiB, 64 * kKiB}) {
    for (const int qd : {4, 16, 32}) {
      double mbps[2];
      for (int system = 0; system < 2; system++) {
        World world(ClusterConfig::SsdPool());
        VirtualDisk* disk = nullptr;
        LsvdSystem lsvd_sys;
        BcacheRbdSystem bcache_sys;
        if (system == 0) {
          lsvd_sys = LsvdSystem::Create(&world,
                                        DefaultLsvdConfig(volume, small_cache));
          disk = lsvd_sys.disk.get();
        } else {
          bcache_sys = BcacheRbdSystem::Create(&world, volume, small_cache);
          disk = bcache_sys.bcache.get();
        }
        Precondition(&world, disk);

        FioConfig fio;
        fio.pattern = sequential ? FioConfig::Pattern::kSeqWrite
                                 : FioConfig::Pattern::kRandWrite;
        fio.block_size = bs;
        fio.volume_size = volume;
        const DriverStats stats = RunFio(&world, disk, fio, qd, seconds);
        mbps[system] = stats.WriteThroughputBps() / 1e6;
        if (system == 0) {
          metrics_json = world.metrics.ToJson();
        }
      }
      table.AddRow({std::to_string(bs / kKiB) + "K", std::to_string(qd),
                    Table::Fmt(mbps[0], 1), Table::Fmt(mbps[1], 1),
                    Table::Fmt(mbps[0] / mbps[1], 2)});
    }
  }
  table.Print();
  std::printf("\npaper: LSVD ~600 MB/s sustained, 2-8x over bcache+RBD; RBD "
              "gains little from bcache here\n");
  if (ArgFlag(argc, argv, "json")) {
    std::printf("%s\n", metrics_json.c_str());
  }
  return 0;
}
