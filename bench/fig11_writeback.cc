// Figure 11: writeback behaviour on the HDD backend (config #2).
//
// The client performs a burst of random 4 KiB writes; we then wait until the
// remote image is synchronized with the cache. Paper result shape: LSVD
// writes back aggressively *during* the client burst (~173 MB/s average) and
// finishes shortly after the client does; bcache performs no writeback under
// load and then crawls (~15 MB/s of small replicated RBD writes) for many
// minutes — an 11.5x writeback-speed gap, during which the backend image is
// inconsistent.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

struct Timeline {
  double client_done_s = 0;
  double sync_done_s = 0;
  double writeback_mbps = 0;
  std::vector<std::pair<double, double>> series;  // (t, backend MB/s)
};

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig11_writeback");
  const double burst_gib = ArgDouble(argc, argv, "burst-gib", 1.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 8.0);
  PrintHeader("fig11_writeback",
              "Figure 11 — writeback behaviour after a random-write burst, "
              "HDD backend");
  std::printf("%g GiB of 4 KiB random writes on a %g GiB volume (paper: "
              "20 GB on 80 GiB)\n\n",
              burst_gib, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  const auto burst =
      static_cast<uint64_t>(burst_gib * static_cast<double>(kGiB));
  const Nanos bucket = kSecond;

  Timeline timelines[2];
  for (int system = 0; system < 2; system++) {
    World world(ClusterConfig::HddPool());
    VirtualDisk* disk = nullptr;
    LsvdSystem lsvd_sys;
    BcacheRbdSystem bcache_sys;
    if (system == 0) {
      lsvd_sys =
          LsvdSystem::Create(&world, DefaultLsvdConfig(volume, kSmallCache));
      disk = lsvd_sys.disk.get();
    } else {
      bcache_sys = BcacheRbdSystem::Create(&world, volume, kSmallCache);
      disk = bcache_sys.bcache.get();
    }

    const Nanos t0 = world.sim.now();
    // Sample backend bytes per second while the experiment runs.
    auto& tl = timelines[system];
    uint64_t last_backend = 0;
    auto backend_bytes = [&]() {
      const DiskStats total = world.cluster->TotalStats();
      return total.write_bytes;
    };

    FioConfig fio;
    fio.pattern = FioConfig::Pattern::kRandWrite;
    fio.block_size = 4 * kKiB;
    fio.volume_size = volume;
    fio.max_bytes = burst;
    Driver driver(&world.sim, disk, MakeFioGen(fio), 32);
    bool client_done = false;
    driver.Run([&] { client_done = true; });

    // Drive the simulation in 1 s steps, sampling and detecting sync.
    const uint64_t backend_at_start = backend_bytes();
    bool synced = false;
    for (int step = 0; step < 4000 && !synced; step++) {
      world.sim.RunUntil(t0 + (step + 1) * bucket);
      const uint64_t now_bytes = backend_bytes();
      tl.series.push_back(
          {ToSeconds(world.sim.now() - t0),
           static_cast<double>(now_bytes - last_backend - (step == 0 ? backend_at_start : 0)) /
               1e6});
      last_backend = now_bytes;
      if (client_done && tl.client_done_s == 0) {
        tl.client_done_s = ToSeconds(driver.stats().finished_at - t0);
      }
      if (client_done) {
        if (system == 0) {
          // Synced when the write cache is fully released and batches done.
          if (lsvd_sys.disk->backend().idle() &&
              lsvd_sys.disk->write_cache().fully_synced()) {
            synced = true;
          } else {
            lsvd_sys.disk->backend().Seal();
          }
        } else {
          if (bcache_sys.bcache->dirty_bytes() == 0) {
            synced = true;
          }
        }
      }
    }
    tl.sync_done_s = ToSeconds(world.sim.now() - t0);
    const double wb_window = tl.sync_done_s;
    tl.writeback_mbps =
        static_cast<double>(backend_bytes()) / wb_window / 1e6;
  }

  std::printf("%-12s %-18s %-18s %-14s\n", "system", "client done (s)",
              "synchronized (s)", "avg wb MB/s*");
  std::printf("---------------------------------------------------------\n");
  std::printf("%-12s %-18.1f %-18.1f %-14.1f\n", "lsvd",
              timelines[0].client_done_s, timelines[0].sync_done_s,
              timelines[0].writeback_mbps);
  std::printf("%-12s %-18.1f %-18.1f %-14.1f\n", "bcache+rbd",
              timelines[1].client_done_s, timelines[1].sync_done_s,
              timelines[1].writeback_mbps);
  std::printf("* backend bytes (incl. replication/EC) / time to sync\n");
  std::printf("\nwriteback speedup (sync time ratio): %.1fx  (paper: 11.5x "
              "faster writeback, 120 s vs 1500+ s)\n",
              timelines[1].sync_done_s / std::max(1.0, timelines[0].sync_done_s));

  std::printf("\nbackend write throughput over time (MB/s, 1 s buckets):\n");
  std::printf("%-8s %-12s %-12s\n", "t(s)", "lsvd", "bcache+rbd");
  const size_t rows =
      std::max(timelines[0].series.size(), timelines[1].series.size());
  for (size_t i = 0; i < rows; i += std::max<size_t>(1, rows / 40)) {
    const double a =
        i < timelines[0].series.size() ? timelines[0].series[i].second : 0;
    const double b =
        i < timelines[1].series.size() ? timelines[1].series[i].second : 0;
    std::printf("%-8zu %-12.1f %-12.1f\n", i + 1, a, b);
  }
  return 0;
}
