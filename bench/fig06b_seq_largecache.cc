// §4.2.1 (text, graphs omitted in the paper for space): sequential
// read/write performance with a large cache.
//
// Paper result shape: sequential reads similar for both systems; sequential
// writes range from LSVD 25% faster (16 KiB QD4) to 25% slower (64 KiB
// QD32).
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig06b_seq_largecache");
  const double seconds = ArgDouble(argc, argv, "seconds", 3.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 4.0);
  PrintHeader("fig06b_seq_largecache",
              "§4.2.1 — sequential I/O, large cache (graphs omitted in the "
              "paper)");

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"op", "bs", "qd", "lsvd MB/s", "bcache+rbd MB/s",
               "lsvd/bcache"});

  for (const bool is_write : {true, false}) {
    for (const uint64_t bs : {16 * kKiB, 64 * kKiB}) {
      for (const int qd : {4, 32}) {
        double mbps[2];
        for (int system = 0; system < 2; system++) {
          World world(ClusterConfig::SsdPool());
          VirtualDisk* disk = nullptr;
          LsvdSystem lsvd_sys;
          BcacheRbdSystem bcache_sys;
          if (system == 0) {
            lsvd_sys = LsvdSystem::Create(
                &world, DefaultLsvdConfig(volume, kLargeCache));
            disk = lsvd_sys.disk.get();
          } else {
            bcache_sys = BcacheRbdSystem::Create(&world, volume, kLargeCache);
            disk = bcache_sys.bcache.get();
          }
          Precondition(&world, disk);
          if (!is_write) {
            // Warm the cache for reads.
            FioConfig warm;
            warm.pattern = FioConfig::Pattern::kSeqRead;
            warm.block_size = 256 * kKiB;
            warm.volume_size = volume;
            warm.max_bytes = volume;
            Driver warmer(&world.sim, disk, MakeFioGen(warm), 16);
            bool done = false;
            warmer.Run([&] { done = true; });
            world.sim.Run();
          }
          FioConfig fio;
          fio.pattern = is_write ? FioConfig::Pattern::kSeqWrite
                                 : FioConfig::Pattern::kSeqRead;
          fio.block_size = bs;
          fio.volume_size = volume;
          const DriverStats stats = RunFio(&world, disk, fio, qd, seconds);
          mbps[system] = (is_write ? stats.WriteThroughputBps()
                                   : stats.ReadThroughputBps()) /
                         1e6;
        }
        table.AddRow({is_write ? "write" : "read",
                      std::to_string(bs / kKiB) + "K", std::to_string(qd),
                      Table::Fmt(mbps[0], 1), Table::Fmt(mbps[1], 1),
                      Table::Fmt(mbps[0] / mbps[1], 2)});
      }
    }
  }
  table.Print();
  std::printf("\npaper: sequential performance similar; LSVD +25%% (16K QD4) "
              "to -25%% (64K QD32)\n");
  return 0;
}
