// Table 5: simulated LSVD batching + garbage collection on (synthetic
// stand-ins for) the CloudPhysics traces.
//
// For each trace and each algorithm variant — no-merge, merge (within-batch
// coalescing), merge+defrag (plug <=8 KiB holes while copying) — reports
// total writes, final extent-map size, write amplification, and merge ratio,
// side by side with the paper's numbers. 32 MiB batches, 70/75% thresholds,
// as in §4.6.
#include "bench/common.h"
#include "src/lsvd/gc_sim.h"
#include "src/workload/trace_gen.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

struct PaperRow {
  const char* name;
  double gb;
  double extents_nomerge_m, extents_merge_m, extents_defrag_m;
  double waf_nomerge, waf_merge, waf_defrag;
  double merge_ratio;
};

constexpr PaperRow kPaper[] = {
    {"w10", 484, 3.88, 3.51, 3.51, 1.11, 1.10, 1.10, 0.01},
    {"w04", 1786, 1.93, 1.91, 1.91, 1.52, 1.44, 1.44, 0.21},
    {"w66", 49, 0.02, 0.02, 0.02, 1.97, 1.35, 1.36, 0.55},
    {"w01", 272, 5.67, 5.47, 2.78, 1.20, 1.18, 1.20, 0.11},
    {"w07", 85, 0.70, 0.69, 0.55, 1.82, 1.76, 1.83, 0.06},
    {"w31", 321, 0.90, 0.61, 0.61, 1.03, 1.02, 1.02, 0.02},
    {"w59", 60, 0.26, 0.26, 0.26, 1.75, 1.65, 1.64, 0.14},
    {"w41", 127, 0.59, 0.58, 0.05, 1.44, 1.14, 1.14, 0.71},
    {"w05", 389, 6.80, 3.06, 3.06, 1.08, 1.08, 1.08, 0.00},
};

GcSimResult RunTrace(const TraceProfile& profile, uint64_t scale, bool merge,
                     bool defrag) {
  GcSimConfig config;
  config.batch_bytes = 32 * kMiB;
  config.merge = merge;
  config.defrag = defrag;
  GcSimulator sim(config);
  auto stream = MakeTraceStream(profile, scale, 17);
  uint64_t vlba = 0;
  uint64_t len = 0;
  while (stream(&vlba, &len)) {
    sim.Write(vlba, len);
  }
  return sim.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "tbl05_gc_traces");
  const auto scale = static_cast<uint64_t>(ArgDouble(argc, argv, "scale", 48));
  PrintHeader("tbl05_gc_traces",
              "Table 5 — simulated GC on CloudPhysics-like traces");
  std::printf("synthetic trace stand-ins (see DESIGN.md substitutions), "
              "volume scaled 1/%llu; extent counts scale accordingly\n\n",
              static_cast<unsigned long long>(scale));

  Table table({"trace", "writes GB", "extents K (nomerge/merge/defrag)",
               "WAF (nomerge/merge/defrag)", "merge ratio",
               "paper WAF (nm/m)", "paper merge"});

  for (const auto& profile : TraceProfile::Table5()) {
    const GcSimResult nomerge = RunTrace(profile, scale, false, false);
    const GcSimResult merge = RunTrace(profile, scale, true, false);
    const GcSimResult defrag = RunTrace(profile, scale, true, true);

    const PaperRow* paper = nullptr;
    for (const auto& row : kPaper) {
      if (profile.name == row.name) {
        paper = &row;
      }
    }
    char extents[96];
    std::snprintf(extents, sizeof(extents), "%.1f / %.1f / %.1f",
                  nomerge.extent_count / 1e3, merge.extent_count / 1e3,
                  defrag.extent_count / 1e3);
    char wafs[96];
    std::snprintf(wafs, sizeof(wafs), "%.2f / %.2f / %.2f", nomerge.waf(),
                  merge.waf(), defrag.waf());
    char paper_waf[48];
    std::snprintf(paper_waf, sizeof(paper_waf), "%.2f / %.2f",
                  paper ? paper->waf_nomerge : 0, paper ? paper->waf_merge : 0);
    table.AddRow({profile.name,
                  Table::Fmt(static_cast<double>(merge.client_bytes) / 1e9, 1),
                  extents, wafs, Table::Fmt(merge.merge_ratio(), 2),
                  paper_waf, Table::Fmt(paper ? paper->merge_ratio : 0, 2)});
  }
  table.Print();
  std::printf("\npaper extent counts are for full-size traces "
              "(M entries); scaled runs shrink proportionally.\n");
  std::printf("key shapes: w66/w41 coalesce most bytes; w01 defrag halves "
              "the map; w05 merge halves extents at zero merge ratio.\n");
  return 0;
}
