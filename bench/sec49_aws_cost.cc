// §4.9: deployability — LSVD on AWS with S3 + instance NVMe vs provisioned
// IOPS EBS, plus a simulated performance check of the m5d.xlarge setup.
//
// Paper result: LSVD's random-read IOPS approaches EBS's maximum provisioned
// tier (64K), yet costs a few dollars a month (S3 storage + requests)
// versus $3000+/month for a 50K-provisioned-IOPS EBS volume.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "sec49_aws_cost");
  const double seconds = ArgDouble(argc, argv, "seconds", 5.0);
  PrintHeader("sec49_aws_cost",
              "§4.9 — LSVD on AWS: cost model + m5d.xlarge simulation");

  // --- cost model (2021-era on-demand prices, as in the paper) ---
  const double kEbsIops = 50000;
  const double kEbsPerIopsMonth = 0.065;       // io2 provisioned IOPS $/IOPS-mo
  const double kEbsPerGbMonth = 0.125;         // io2 $/GB-mo
  const double kS3PerGbMonth = 0.023;
  const double kS3PutPer1000 = 0.005;
  const double kVolumeGb = 80;
  // LSVD batches ~8 MiB per PUT: even a saturated 128 MB/s writer makes only
  // ~16 PUT/s => ~41M/mo... the paper's "few dollars" assumes a typical duty
  // cycle; use 5% duty at full write bandwidth.
  const double puts_per_month = 0.05 * (128.0 / 8.0) * 86400 * 30;

  const double ebs_cost = kEbsIops * kEbsPerIopsMonth + kVolumeGb * kEbsPerGbMonth;
  const double lsvd_cost =
      kVolumeGb * 1.5 /*4,2 EC overhead not applicable on S3; keep raw*/ /
          1.5 * kS3PerGbMonth +
      puts_per_month / 1000 * kS3PutPer1000;

  Table cost({"option", "monthly cost", "notes"});
  cost.AddRow({"EBS io2, 50K provisioned IOPS",
               "$" + Table::Fmt(ebs_cost, 0),
               "50K x $0.065 + 80 GB x $0.125"});
  cost.AddRow({"LSVD: S3 + instance NVMe", "$" + Table::Fmt(lsvd_cost, 2),
               "80 GB S3 + PUT requests (NVMe included in instance)"});
  cost.Print();
  std::printf("\npaper: \"a few dollars a month\" vs \"over $3000/mo\"\n\n");

  // --- simulated m5d.xlarge check ---
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 150 * kGiB;  // the instance's dedicated NVMe
  hc.ssd = SsdParams::AwsInstanceNvme();
  ClientHost host(&sim, hc);
  BackendCluster s3_cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore s3(&sim, &s3_cluster, &link, SimObjectStoreConfig{});

  LsvdConfig config = DefaultLsvdConfig(8 * kGiB, 32 * kGiB);
  LsvdDisk disk(&host, &s3, config);
  bool created = false;
  disk.Create([&](Status s) { created = s.ok(); });
  sim.Run();
  if (!created) {
    return 1;
  }

  // Warm the volume, then random reads (the paper's headline IOPS number).
  {
    Driver pre(&sim, &disk, MakePreconditionGen(disk.size(), 4 * kMiB), 8);
    bool done = false;
    pre.Run([&] { done = true; });
    sim.Run();
    FioConfig warm;
    warm.pattern = FioConfig::Pattern::kSeqRead;
    warm.block_size = 256 * kKiB;
    warm.volume_size = disk.size();
    warm.max_bytes = disk.size();
    Driver warmer(&sim, &disk, MakeFioGen(warm), 16);
    done = false;
    warmer.Run([&] { done = true; });
    sim.Run();
  }
  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandRead;
  fio.block_size = 4 * kKiB;
  fio.volume_size = disk.size();
  Driver driver(&sim, &disk, MakeFioGen(fio), 32,
                sim.now() + FromSeconds(seconds));
  bool done = false;
  driver.Run([&] { done = true; });
  sim.Run();

  std::printf("simulated m5d.xlarge (230/128 MB/s instance NVMe): LSVD "
              "4 KiB random read = %.0f IOPS\n",
              driver.stats().Iops());
  std::printf("paper: peak LSVD random-read rates approach EBS's 64K "
              "provisioned maximum\n");
  return 0;
}
