// Figure 13: I/O and byte amplification for the 16 KiB random-write load
// test (§4.5).
//
// Paper result: RBD suffers 6x amplification in both operations and bytes
// (data + WAL at each of 3 replicas); LSVD generates ~0.25 backend ops per
// client op (one ~1 MiB chunk write covers many batched client writes) —
// a 24x I/O-efficiency gap.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig13_amplification");
  const double seconds = ArgDouble(argc, argv, "seconds", 5.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 4.0);
  PrintHeader("fig13_amplification",
              "Figure 13 — I/O and byte amplification, 16 KiB randwrite");
  std::printf("16 KiB randwrite QD32, %gs, %g GiB volume, HDD pool\n\n",
              seconds, vol_gib);

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Table table({"system", "client ops", "backend ops", "ops amp",
               "client GiB", "backend GiB", "byte amp"});

  for (int system = 0; system < 2; system++) {
    World world(ClusterConfig::HddPool());
    VirtualDisk* disk = nullptr;
    LsvdSystem lsvd_sys;
    std::unique_ptr<RbdDisk> rbd;
    if (system == 0) {
      lsvd_sys =
          LsvdSystem::Create(&world, DefaultLsvdConfig(volume, kSmallCache));
      disk = lsvd_sys.disk.get();
    } else {
      rbd = std::make_unique<RbdDisk>(&world.sim, world.cluster.get(),
                                      world.backend_link.get(), volume,
                                      RbdConfig{});
      disk = rbd.get();
    }

    const DiskStats before = world.cluster->TotalStats();
    FioConfig fio;
    fio.pattern = FioConfig::Pattern::kRandWrite;
    fio.block_size = 16 * kKiB;
    fio.volume_size = volume;
    const DriverStats stats = RunFio(&world, disk, fio, 32, seconds);
    // Let writeback finish so all backend costs are attributed.
    if (system == 0) {
      std::optional<Status> drained;
      lsvd_sys.disk->Drain([&](Status s) { drained = s; });
      world.sim.Run();
    } else {
      world.sim.Run();
    }
    const DiskStats after = world.cluster->TotalStats();

    const double client_ops = static_cast<double>(stats.writes);
    const double backend_ops =
        static_cast<double>(after.write_ops - before.write_ops);
    const double client_bytes = static_cast<double>(stats.bytes_written);
    const double backend_bytes =
        static_cast<double>(after.write_bytes - before.write_bytes);
    table.AddRow({system == 0 ? "lsvd" : "rbd", Table::Fmt(client_ops, 0),
                  Table::Fmt(backend_ops, 0),
                  Table::Fmt(backend_ops / client_ops, 2),
                  Table::Fmt(client_bytes / 1e9, 2),
                  Table::Fmt(backend_bytes / 1e9, 2),
                  Table::Fmt(backend_bytes / client_bytes, 2)});
  }
  table.Print();
  std::printf("\npaper: RBD 6x ops and bytes; LSVD 0.25x ops, ~1.5x bytes "
              "(4,2 erasure code)\n");
  return 0;
}
