// Figure 14: histogram of backend write sizes (bytes written per merged I/O
// size bucket) during the 16 KiB random-write load test (§4.5).
//
// Paper result shape: RBD's backend writes cluster at 16-24 KiB (data writes
// plus WAL records); LSVD's cluster around 1 MiB (the 4 MiB RADOS-stripe
// data/parity chunks of a 4,2 code), plus a small-write tail of object
// metadata.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig14_write_sizes");
  const double seconds = ArgDouble(argc, argv, "seconds", 5.0);
  const double vol_gib = ArgDouble(argc, argv, "volume-gib", 4.0);
  PrintHeader("fig14_write_sizes",
              "Figure 14 — bytes written vs backend I/O size, 16 KiB "
              "randwrite (sequential writes merged)");

  const auto volume = static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  Histogram hist[2];
  for (int system = 0; system < 2; system++) {
    World world(ClusterConfig::HddPool());
    VirtualDisk* disk = nullptr;
    LsvdSystem lsvd_sys;
    std::unique_ptr<RbdDisk> rbd;
    if (system == 0) {
      lsvd_sys =
          LsvdSystem::Create(&world, DefaultLsvdConfig(volume, kSmallCache));
      disk = lsvd_sys.disk.get();
    } else {
      rbd = std::make_unique<RbdDisk>(&world.sim, world.cluster.get(),
                                      world.backend_link.get(), volume,
                                      RbdConfig{});
      disk = rbd.get();
    }
    FioConfig fio;
    fio.pattern = FioConfig::Pattern::kRandWrite;
    fio.block_size = 16 * kKiB;
    fio.volume_size = volume;
    RunFio(&world, disk, fio, 32, seconds);
    world.sim.Run();
    world.cluster->FlushWriteRuns();
    hist[system] = world.cluster->write_size_histogram();
  }

  std::printf("GiB written per I/O-size bucket (lower bound of bucket):\n\n");
  Table table({"I/O size", "lsvd GiB", "rbd GiB"});
  for (int b = 12; b < 24; b++) {  // 4 KiB .. 8 MiB
    const uint64_t lower = uint64_t{1} << b;
    table.AddRow({Table::FmtBytes(lower),
                  Table::Fmt(static_cast<double>(hist[0].BucketWeight(b)) / 1e9, 3),
                  Table::Fmt(static_cast<double>(hist[1].BucketWeight(b)) / 1e9, 3)});
  }
  table.Print();
  std::printf("\nmean backend write: lsvd %s, rbd %s\n",
              Table::FmtBytes(static_cast<uint64_t>(hist[0].MeanValue())).c_str(),
              Table::FmtBytes(static_cast<uint64_t>(hist[1].MeanValue())).c_str());
  std::printf("paper: RBD almost all 16-24 KiB; LSVD clustered ~1 MiB\n");
  return 0;
}
