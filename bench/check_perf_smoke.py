#!/usr/bin/env python3
"""Perf-harness smoke check (ctest label: perf_smoke; see docs/PERF.md).

Runs one short bench under --perf, then:
  1. validates the BENCH_<name>.json it writes against the documented schema,
  2. compares the virtual-time (deterministic) fields -- events, sim_ios,
     sim_seconds -- against the checked-in golden snapshot. Any drift means a
     change altered simulation behavior, which the perf work must not do.

Wall-clock fields (wall_seconds, *_per_sec) are machine-dependent and only
schema-checked. Regenerate the golden after an *intentional* simulation
change with:

    bench/check_perf_smoke.py <build-bench-dir> --update
"""
import json
import os
import subprocess
import sys
import tempfile

BENCH = "fig06_randwrite"
ARGS = ["--seconds=0.05", "--volume-gib=0.25", "--perf"]
GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden",
                      "perf_smoke.json")
# Fields that must be byte-for-byte reproducible run to run.
DETERMINISTIC = ("bench", "events", "sim_ios", "sim_seconds")
SCHEMA = {
    "bench": str,
    "wall_seconds": float,
    "events": int,
    "events_per_sec": float,
    "sim_ios": int,
    "sim_ios_per_sec": float,
    "sim_seconds": float,
    "peak_rss_bytes": int,
    "map_resident_bytes": int,
    # Parallel-engine fields (DESIGN.md section 14): worker threads, domain
    # count, and idle domain-windows. All 1/1/0 for the sequential engine;
    # tolerated and recorded here so the perf trajectory stays comparable
    # across thread counts.
    "threads": int,
    "domains": int,
    "sync_stalls": int,
    "crc32c_impl": str,
    "build_type": str,
}


def fail(msg):
    print("perf_smoke FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_schema(report, name):
    """Validates one BENCH json dict against the documented schema."""
    for key, want_type in SCHEMA.items():
        if key not in report:
            fail("%s missing field %r" % (name, key))
        value = report[key]
        if want_type is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, want_type):
            fail("%s field %r has type %s, want %s" %
                 (name, key, type(report[key]).__name__, want_type.__name__))
    if set(report) - set(SCHEMA):
        fail("%s has undocumented fields: %s" %
             (name, sorted(set(report) - set(SCHEMA))))


def check_committed_results():
    """Schema-checks every committed bench/results/BENCH_*.json snapshot.

    Committed snapshots (e.g. BENCH_fig19_fleet.json) are wall-clock runs
    from whatever machine produced them, so only the schema is enforced —
    but a snapshot that drifts from the schema (new field, renamed bench)
    fails here instead of rotting silently.
    """
    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "results")
    if not os.path.isdir(results_dir):
        return 0
    checked = 0
    for entry in sorted(os.listdir(results_dir)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        path = os.path.join(results_dir, entry)
        with open(path) as f:
            try:
                report = json.load(f)
            except json.JSONDecodeError as e:
                fail("committed snapshot %s is malformed: %s" % (entry, e))
        check_schema(report, entry)
        want = entry[len("BENCH_"):-len(".json")]
        if report["bench"] != want:
            fail("committed snapshot %s names bench %r" %
                 (entry, report["bench"]))
        checked += 1
    return checked


def main():
    if len(sys.argv) < 2:
        fail("usage: check_perf_smoke.py <build-bench-dir> [--update]")
    bench_dir = os.path.abspath(sys.argv[1])
    update = "--update" in sys.argv[2:]
    binary = os.path.join(bench_dir, BENCH)
    if not os.access(binary, os.X_OK):
        fail("bench binary missing: %s" % binary)

    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.run([binary] + ARGS, cwd=tmp,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            fail("%s exited %d:\n%s" % (BENCH, proc.returncode,
                                        proc.stderr[-2000:]))
        path = os.path.join(tmp, "BENCH_%s.json" % BENCH)
        if not os.path.exists(path):
            fail("bench did not write %s" % path)
        with open(path) as f:
            try:
                report = json.load(f)
            except json.JSONDecodeError as e:
                fail("malformed BENCH json: %s" % e)

    check_schema(report, "BENCH json")
    if report["bench"] != BENCH:
        fail("bench name %r != %r" % (report["bench"], BENCH))
    if report["wall_seconds"] <= 0 or report["events"] <= 0:
        fail("implausible report: %s" % report)

    snapshot = {k: report[k] for k in DETERMINISTIC}
    if update:
        os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
        with open(GOLDEN, "w") as f:
            json.dump(snapshot, f, indent=2, sort_keys=True)
            f.write("\n")
        print("perf_smoke: golden updated: %s" % GOLDEN)
        return

    if not os.path.exists(GOLDEN):
        fail("golden snapshot missing (%s); run with --update" % GOLDEN)
    with open(GOLDEN) as f:
        golden = json.load(f)
    if snapshot != golden:
        diff = {k: (golden.get(k), snapshot[k]) for k in DETERMINISTIC
                if golden.get(k) != snapshot[k]}
        fail("virtual-time drift from golden (golden, got): %s" % diff)
    committed = check_committed_results()
    print("perf_smoke OK: schema valid, virtual-time fields match golden "
          "(threads=%d domains=%d sync_stalls=%d), %d committed snapshot(s) "
          "schema-checked" %
          (report["threads"], report["domains"], report["sync_stalls"],
           committed))


if __name__ == "__main__":
    main()
