// Figure 18 (extension; DESIGN.md §9): backend scale-out — one LSVD volume
// striped round-robin across N independent object-store shards, each backed
// by its own small HDD pool, driven by a writeback-bound random-write
// workload. Aggregate client write throughput should scale with the shard
// count until the client NIC (10 GbE) becomes the bottleneck: the client
// host, which the paper shows is the limit long before the backend (§4.5),
// stays fixed while the backend grows.
//
// Acceptance target: >= 3x aggregate write throughput at 4 shards vs 1
// shard with the same per-shard disk count.
//
// --threads=N runs the sweep on the parallel per-domain engine (DESIGN.md
// §14): each client host is one SimDomain, each shard's cluster another, and
// N worker threads execute the conservative windows. Results are
// deterministic for any N; the flag absent means the sequential engine and
// byte-identical legacy output. --shards=K narrows the sweep to a single
// point (wall-clock speedup measurements).
//
// --clients=C scales the *fleet*: C client hosts, each with its own NIC and
// its own volume striped over the same shards. One client host saturates its
// 10 GbE NIC at ~16 events per 100us sync window — too sparse for the
// parallel engine to win — so speedup measurements use a fleet plus
// --ssd-shards (SSD-backed shards) to keep the backend from becoming the
// bottleneck at fleet-aggregate bandwidth.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

// One client host of the fleet: host + NIC + per-shard stores + its volume.
// Client 0 borrows the World's host/link and registers into the world
// metrics registry, so --clients=1 stays byte-identical with the pre-fleet
// bench; extra clients own private components with private registries
// (the null-registry convention) to keep gauge names collision-free.
struct ClientRig {
  SimDomain* domain = nullptr;  // null => runs on the world sim
  Simulator* sim = nullptr;
  ClientHost* host = nullptr;
  NetLink* link = nullptr;
  std::unique_ptr<ClientHost> owned_host;
  std::unique_ptr<NetLink> owned_link;
  std::vector<std::unique_ptr<SimObjectStore>> stores;
  std::unique_ptr<LsvdDisk> disk;
};

}  // namespace

int main(int argc, char** argv) {
  const int threads = ArgThreads(argc, argv);
  const int clients = ArgInt(argc, argv, "clients", 1);
  const bool ssd_shards = ArgFlag(argc, argv, "ssd-shards");
  // Per-config perf snapshots (BENCH_fig18_scaleout[_cC][_tN].json) so the
  // speedup curve can live in bench/results/ next to the sequential one.
  std::string perf_name = "fig18_scaleout";
  if (clients > 1) {
    perf_name += "_c" + std::to_string(clients);
  }
  if (threads > 0) {
    perf_name += "_t" + std::to_string(threads);
  }
  PerfScope perf(argc, argv, perf_name);
  const bool smoke = ArgFlag(argc, argv, "smoke");
  const double seconds = ArgDouble(argc, argv, "seconds", smoke ? 0.2 : 6.0);
  const double warmup = ArgDouble(argc, argv, "warmup", smoke ? 0.05 : 1.5);
  const double vol_gib =
      ArgDouble(argc, argv, "volume-gib", smoke ? 0.25 : 8.0);
  const double cache_gib =
      ArgDouble(argc, argv, "cache-gib", smoke ? 0.25 : 1.0);
  const int disks_per_shard =
      static_cast<int>(ArgDouble(argc, argv, "disks-per-shard", 2));
  const int max_shards =
      static_cast<int>(ArgDouble(argc, argv, "max-shards", smoke ? 2 : 8));
  // --shards=K: measure exactly one sweep point instead of 1,2,...
  const int only_shards = ArgInt(argc, argv, "shards", 0);

  PrintHeader("fig18_scaleout",
              "extension — write throughput vs backend shard count, one "
              "volume striped over N object stores");
  std::printf("256 KiB randwrite QD32, writeback-bound (%g GiB cache), "
              "%gs measured after %gs warmup, %d %s per shard\n",
              cache_gib, seconds, warmup, disks_per_shard,
              ssd_shards ? "SSDs" : "HDDs");
  if (clients > 1) {
    std::printf("fleet mode: %d client hosts, each its own NIC and volume, "
                "striped over the same shards\n", clients);
  }
  std::printf("\n");

  const auto volume =
      static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  const auto cache =
      static_cast<uint64_t>(cache_gib * static_cast<double>(kGiB));

  Table table({"shards", "client MB/s", "speedup", "backend MB/s",
               "mean shard util %"});
  double base_mbps = 0;
  double speedup4 = 0;
  // The last sweep point survives the loop so --json can snapshot its
  // registry; declaration order gives world-last destruction (components
  // deregister their gauge callbacks before the registry dies).
  std::unique_ptr<World> last_world;
  std::vector<std::unique_ptr<BackendCluster>> last_clusters;
  std::vector<ClientRig> last_rigs;
  // (shards, wall seconds) per sweep point, reported when --threads is set.
  std::vector<std::pair<int, double>> wall_times;

  const int first_shards = only_shards > 0 ? only_shards : 1;
  const int last_shards = only_shards > 0 ? only_shards : max_shards;
  for (int shards = first_shards; shards <= last_shards; shards *= 2) {
    // The World's built-in cluster is unused here (every shard brings its
    // own pool); keep it minimal.
    ClusterConfig unused_pool;
    unused_pool.kind = DiskKind::kHdd;
    unused_pool.num_disks = 1;
    auto world = std::make_unique<World>(unused_pool);
    if (threads > 0) {
      world->EnableParallel(threads);
    }

    std::vector<ClientRig> rigs(static_cast<size_t>(clients));
    rigs[0].domain = world->client_domain;
    rigs[0].sim = &world->sim;
    rigs[0].host = world->host.get();
    rigs[0].link = world->backend_link.get();
    // Extra client hosts get their own domains before the shard domains so
    // domain ids key to the (clients, shards) config, never to thread count.
    for (int c = 1; c < clients; c++) {
      ClientRig& rig = rigs[static_cast<size_t>(c)];
      if (threads > 0) {
        rig.domain = world->AddSimDomain("client" + std::to_string(c));
        rig.sim = rig.domain->sim();
      } else {
        rig.sim = &world->sim;
      }
      rig.owned_host =
          std::make_unique<ClientHost>(rig.sim, world->host_config, nullptr);
      rig.host = rig.owned_host.get();
      rig.owned_link = std::make_unique<NetLink>(rig.sim, NetParams{});
      rig.link = rig.owned_link.get();
    }

    ClusterConfig shard_pool;
    shard_pool.kind = ssd_shards ? DiskKind::kSsd : DiskKind::kHdd;
    shard_pool.num_disks = disks_per_shard;

    std::vector<std::unique_ptr<BackendCluster>> clusters;
    std::vector<SimDomain*> shard_doms(static_cast<size_t>(shards), nullptr);
    for (int i = 0; i < shards; i++) {
      const std::string prefix = "shard" + std::to_string(i);
      // Under the parallel engine each shard's cluster lives in its own
      // domain; channels are created in (client, shard) order so channel
      // ids — the determinism tie-break — key to the topology, not to how
      // domains are packed onto threads.
      SimDomain* dom = nullptr;
      Simulator* shard_sim = &world->sim;
      if (threads > 0) {
        dom = world->AddSimDomain(prefix);
        shard_sim = dom->sim();
      }
      shard_doms[static_cast<size_t>(i)] = dom;
      clusters.push_back(std::make_unique<BackendCluster>(
          shard_sim, shard_pool, &world->metrics, prefix + ".cluster"));
      rigs[0].stores.push_back(std::make_unique<SimObjectStore>(
          &world->sim, clusters.back().get(), world->backend_link.get(),
          SimObjectStoreConfig{}, &world->metrics, prefix + ".objstore"));
      if (threads > 0) {
        const Nanos hop = world->backend_link->half_rtt();
        CrossDomainChannel* c2b =
            world->group->Connect(world->client_domain, dom, hop);
        CrossDomainChannel* b2c =
            world->group->Connect(dom, world->client_domain, hop);
        rigs[0].stores.back()->BindBackendDomain(dom, c2b, b2c);
      }
    }
    // Extra clients' stores share each shard's cluster (their own allocator
    // heads; the cluster just queues disk ops from both).
    for (int c = 1; c < clients; c++) {
      ClientRig& rig = rigs[static_cast<size_t>(c)];
      for (int i = 0; i < shards; i++) {
        rig.stores.push_back(std::make_unique<SimObjectStore>(
            rig.sim, clusters[static_cast<size_t>(i)].get(), rig.link,
            SimObjectStoreConfig{}, nullptr));
        if (threads > 0) {
          SimDomain* dom = shard_doms[static_cast<size_t>(i)];
          const Nanos hop = rig.link->half_rtt();
          CrossDomainChannel* c2b = world->group->Connect(rig.domain, dom, hop);
          CrossDomainChannel* b2c = world->group->Connect(dom, rig.domain, hop);
          rig.stores.back()->BindBackendDomain(dom, c2b, b2c);
        }
      }
    }

    LsvdConfig config = DefaultLsvdConfig(volume, cache);
    std::vector<std::optional<Status>> created(static_cast<size_t>(clients));
    for (int c = 0; c < clients; c++) {
      ClientRig& rig = rigs[static_cast<size_t>(c)];
      std::vector<ObjectStore*> ptrs;
      for (auto& s : rig.stores) {
        ptrs.push_back(s.get());
      }
      rig.disk = std::make_unique<LsvdDisk>(
          rig.host, ptrs, config, c == 0 ? &world->metrics : nullptr);
      rig.disk->Create(
          [&created, c](Status s) { created[static_cast<size_t>(c)] = s; });
    }
    world->Run();
    for (const auto& st : created) {
      if (!st.has_value() || !st->ok()) {
        std::fprintf(stderr, "create failed\n");
        return 1;
      }
    }

    FioConfig fio;
    fio.pattern = FioConfig::Pattern::kRandWrite;
    fio.block_size = 256 * kKiB;
    fio.volume_size = volume;

    // One driver per client, all run to quiescence together; returns the
    // aggregate write throughput (Bps). For --clients=1 this is exactly
    // RunFio's sequence, so single-client output stays byte-identical.
    auto run_fleet = [&](uint64_t seed, double secs) {
      std::vector<std::unique_ptr<Driver>> drivers;
      for (int c = 0; c < clients; c++) {
        ClientRig& rig = rigs[static_cast<size_t>(c)];
        FioConfig f = fio;
        // Decorrelated seeds: each client writes its own volume, so streams
        // must differ; client 0 keeps the legacy seed.
        f.seed = c == 0 ? seed : seed * 1000 + static_cast<uint64_t>(c);
        drivers.push_back(std::make_unique<Driver>(
            rig.sim, rig.disk.get(), MakeFioGen(f), 32,
            rig.sim->now() + FromSeconds(secs),
            c == 0 ? &world->metrics : nullptr));
        drivers.back()->Run([] {});
      }
      world->Run();
      double write_bps = 0;
      for (auto& d : drivers) {
        GlobalPerfTotals().sim_ios += d->stats().ops;
        write_bps += d->stats().WriteThroughputBps();
      }
      return write_bps;
    };

    // Warmup populates the maps and object stream; the run then drains to
    // quiescence, so the measured window starts from an empty write cache
    // (its one-time fill slightly favours the 1-shard baseline).
    run_fleet(1, warmup);

    const Nanos t0 = world->sim.now();
    std::vector<Nanos> busy0(static_cast<size_t>(shards));
    uint64_t put_bytes0 = 0;
    for (int i = 0; i < shards; i++) {
      busy0[static_cast<size_t>(i)] = clusters[static_cast<size_t>(i)]
                                          ->TotalBusy();
    }
    for (auto& rig : rigs) {
      for (auto& s : rig.stores) {
        put_bytes0 += s->stats().put_bytes;
      }
    }

    // The run goes to quiescence, which appends a long cache-drain tail
    // after the drivers' deadline; sample the backend counters *at* the
    // deadline so backend MB/s and utilization describe the loaded window,
    // like the client-side stats do.
    double util_sum = 0;
    uint64_t put_bytes1 = 0;
    // Under the parallel engine this runs as a coordinator barrier task with
    // every domain quiesced and advanced to the deadline, so reading shard
    // cluster state from here is race-free.
    world->At(world->sim.now() + FromSeconds(seconds), [&] {
      const Nanos tm = world->sim.now();
      for (int i = 0; i < shards; i++) {
        util_sum += clusters[static_cast<size_t>(i)]->MeanUtilization(
            busy0[static_cast<size_t>(i)], t0, tm);
      }
      for (auto& rig : rigs) {
        for (auto& s : rig.stores) {
          put_bytes1 += s->stats().put_bytes;
        }
      }
    });

    const auto wall_start = std::chrono::steady_clock::now();
    const double write_bps = run_fleet(2, seconds);
    wall_times.emplace_back(
        shards, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count());

    const double mbps = write_bps / 1e6;
    const double backend_mbps =
        static_cast<double>(put_bytes1 - put_bytes0) / seconds / 1e6;
    if (shards == 1) {
      base_mbps = mbps;
    }
    const double speedup = base_mbps > 0 ? mbps / base_mbps : 0;
    if (shards == 4) {
      speedup4 = speedup;
    }
    table.AddRow({std::to_string(shards), Table::Fmt(mbps, 1),
                  Table::Fmt(speedup, 2) + "x", Table::Fmt(backend_mbps, 1),
                  Table::Fmt(util_sum / shards * 100, 1)});
    // Retire the previous point before its world (registry) goes away.
    last_rigs = std::move(rigs);
    last_clusters = std::move(clusters);
    last_world = std::move(world);
  }
  table.Print();
  if (threads > 0) {
    // Wall-clock report for the parallel engine: virtual-time results above
    // are thread-count-invariant; this is the part that is allowed to vary.
    // threads may exceed the host's cores; World clamps (worker count never
    // changes results), so report what actually ran.
    std::printf("\nparallel engine: threads=%d (effective workers: %d)\n",
                threads,
                last_world != nullptr ? last_world->threads : threads);
    for (const auto& [n, wall] : wall_times) {
      std::printf("  shards=%d measured-run wall-clock: %.3fs\n", n, wall);
    }
    if (last_world != nullptr && last_world->group != nullptr) {
      const SimDomainGroup& g = *last_world->group;
      std::printf("  last point: domains=%zu windows=%llu sync_stalls=%llu "
                  "messages=%llu events=%llu\n",
                  g.domain_count(),
                  static_cast<unsigned long long>(g.windows()),
                  static_cast<unsigned long long>(g.sync_stalls()),
                  static_cast<unsigned long long>(g.messages_delivered()),
                  static_cast<unsigned long long>(g.events_processed()));
    }
  }
  if (only_shards == 0 && max_shards >= 4) {
    std::printf("\nspeedup at 4 shards: %.2fx (target >= 3x; client NIC is "
                "the eventual ceiling)\n",
                speedup4);
  }
  if (last_world != nullptr) {
    MaybeDumpMetrics(*last_world, argc, argv);
  }
  return 0;
}
