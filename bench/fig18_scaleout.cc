// Figure 18 (extension; DESIGN.md §9): backend scale-out — one LSVD volume
// striped round-robin across N independent object-store shards, each backed
// by its own small HDD pool, driven by a writeback-bound random-write
// workload. Aggregate client write throughput should scale with the shard
// count until the client NIC (10 GbE) becomes the bottleneck: the client
// host, which the paper shows is the limit long before the backend (§4.5),
// stays fixed while the backend grows.
//
// Acceptance target: >= 3x aggregate write throughput at 4 shards vs 1
// shard with the same per-shard disk count.
#include "bench/common.h"

using namespace lsvd;
using namespace lsvd::bench;

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "fig18_scaleout");
  const bool smoke = ArgFlag(argc, argv, "smoke");
  const double seconds = ArgDouble(argc, argv, "seconds", smoke ? 0.2 : 6.0);
  const double warmup = ArgDouble(argc, argv, "warmup", smoke ? 0.05 : 1.5);
  const double vol_gib =
      ArgDouble(argc, argv, "volume-gib", smoke ? 0.25 : 8.0);
  const double cache_gib =
      ArgDouble(argc, argv, "cache-gib", smoke ? 0.25 : 1.0);
  const int disks_per_shard =
      static_cast<int>(ArgDouble(argc, argv, "disks-per-shard", 2));
  const int max_shards =
      static_cast<int>(ArgDouble(argc, argv, "max-shards", smoke ? 2 : 8));

  PrintHeader("fig18_scaleout",
              "extension — write throughput vs backend shard count, one "
              "volume striped over N object stores");
  std::printf("256 KiB randwrite QD32, writeback-bound (%g GiB cache), "
              "%gs measured after %gs warmup, %d HDDs per shard\n\n",
              cache_gib, seconds, warmup, disks_per_shard);

  const auto volume =
      static_cast<uint64_t>(vol_gib * static_cast<double>(kGiB));
  const auto cache =
      static_cast<uint64_t>(cache_gib * static_cast<double>(kGiB));

  Table table({"shards", "client MB/s", "speedup", "backend MB/s",
               "mean shard util %"});
  double base_mbps = 0;
  double speedup4 = 0;
  // The last sweep point survives the loop so --json can snapshot its
  // registry; declaration order gives world-last destruction (components
  // deregister their gauge callbacks before the registry dies).
  std::unique_ptr<World> last_world;
  std::vector<std::unique_ptr<BackendCluster>> last_clusters;
  std::vector<std::unique_ptr<SimObjectStore>> last_stores;
  std::unique_ptr<LsvdDisk> last_disk;

  for (int shards = 1; shards <= max_shards; shards *= 2) {
    // The World's built-in cluster is unused here (every shard brings its
    // own pool); keep it minimal.
    ClusterConfig unused_pool;
    unused_pool.kind = DiskKind::kHdd;
    unused_pool.num_disks = 1;
    auto world = std::make_unique<World>(unused_pool);

    ClusterConfig shard_pool;
    shard_pool.kind = DiskKind::kHdd;
    shard_pool.num_disks = disks_per_shard;

    std::vector<std::unique_ptr<BackendCluster>> clusters;
    std::vector<std::unique_ptr<SimObjectStore>> stores;
    std::vector<ObjectStore*> store_ptrs;
    for (int i = 0; i < shards; i++) {
      const std::string prefix = "shard" + std::to_string(i);
      clusters.push_back(std::make_unique<BackendCluster>(
          &world->sim, shard_pool, &world->metrics, prefix + ".cluster"));
      stores.push_back(std::make_unique<SimObjectStore>(
          &world->sim, clusters.back().get(), world->backend_link.get(),
          SimObjectStoreConfig{}, &world->metrics, prefix + ".objstore"));
      store_ptrs.push_back(stores.back().get());
    }

    LsvdConfig config = DefaultLsvdConfig(volume, cache);
    auto disk = std::make_unique<LsvdDisk>(world->host.get(), store_ptrs,
                                           config, &world->metrics);
    std::optional<Status> created;
    disk->Create([&](Status s) { created = s; });
    world->sim.Run();
    if (!created.has_value() || !created->ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }

    FioConfig fio;
    fio.pattern = FioConfig::Pattern::kRandWrite;
    fio.block_size = 256 * kKiB;
    fio.volume_size = volume;

    // Warmup populates the maps and object stream; RunFio then drains to
    // quiescence, so the measured window starts from an empty write cache
    // (its one-time fill slightly favours the 1-shard baseline).
    fio.seed = 1;
    RunFio(world.get(), disk.get(), fio, 32, warmup);

    const Nanos t0 = world->sim.now();
    std::vector<Nanos> busy0(static_cast<size_t>(shards));
    uint64_t put_bytes0 = 0;
    for (int i = 0; i < shards; i++) {
      busy0[static_cast<size_t>(i)] = clusters[static_cast<size_t>(i)]
                                          ->TotalBusy();
      put_bytes0 += stores[static_cast<size_t>(i)]->stats().put_bytes;
    }

    // RunFio runs the simulator to quiescence, which appends a long
    // cache-drain tail after the driver's deadline; sample the backend
    // counters *at* the deadline so backend MB/s and utilization describe
    // the loaded window, like the client-side stats do.
    double util_sum = 0;
    uint64_t put_bytes1 = 0;
    world->sim.After(FromSeconds(seconds), [&] {
      const Nanos tm = world->sim.now();
      for (int i = 0; i < shards; i++) {
        put_bytes1 += stores[static_cast<size_t>(i)]->stats().put_bytes;
        util_sum += clusters[static_cast<size_t>(i)]->MeanUtilization(
            busy0[static_cast<size_t>(i)], t0, tm);
      }
    });

    fio.seed = 2;
    const DriverStats stats = RunFio(world.get(), disk.get(), fio, 32,
                                     seconds);

    const double mbps = stats.WriteThroughputBps() / 1e6;
    const double backend_mbps =
        static_cast<double>(put_bytes1 - put_bytes0) / seconds / 1e6;
    if (shards == 1) {
      base_mbps = mbps;
    }
    const double speedup = base_mbps > 0 ? mbps / base_mbps : 0;
    if (shards == 4) {
      speedup4 = speedup;
    }
    table.AddRow({std::to_string(shards), Table::Fmt(mbps, 1),
                  Table::Fmt(speedup, 2) + "x", Table::Fmt(backend_mbps, 1),
                  Table::Fmt(util_sum / shards * 100, 1)});
    // Retire the previous point before its world (registry) goes away.
    last_disk = std::move(disk);
    last_stores = std::move(stores);
    last_clusters = std::move(clusters);
    last_world = std::move(world);
  }
  table.Print();
  if (max_shards >= 4) {
    std::printf("\nspeedup at 4 shards: %.2fx (target >= 3x; client NIC is "
                "the eventual ceiling)\n",
                speedup4);
  }
  if (last_world != nullptr) {
    MaybeDumpMetrics(*last_world, argc, argv);
  }
  return 0;
}
