// Table 4: crash tests — a recursive file copy interrupted by a "VM reset",
// followed by loss of the client cache (§4.4).
//
// A file-copy workload runs on a journaled filesystem (minifs, the ext4
// stand-in) over each virtual disk. At a random point the client machine is
// reset and the SSD cache discarded, as in the paper's test. The recovered
// *backend* image is then mounted and fsck'd:
//   - LSVD recovers a consistent prefix: mounts cleanly in every trial.
//   - bcache wrote back in LBA order, not write order, so the RBD image can
//     hold later writes without earlier ones: mounts may fail or fsck may
//     find damage / lose files (the paper lost all files in one of three
//     trials).
#include "bench/common.h"
#include "src/minifs/minifs.h"

using namespace lsvd;
using namespace lsvd::bench;

namespace {

struct TrialResult {
  bool mounted = false;
  bool fsck_clean = false;
  uint64_t files_found = 0;
  uint64_t files_intact = 0;
  std::string note;
};

constexpr int kFiles = 600;
constexpr uint64_t kFileBytes = 16 * kKiB;

// Drives the copy workload: create files, fsync every 20, crash at
// `crash_after_files`.
template <typename CrashFn>
TrialResult RunTrial(World* world, VirtualDisk* disk,
                     std::function<VirtualDisk*()> recovered_disk,
                     int crash_after_files, CrashFn crash) {
  TrialResult result;
  // Format + mount.
  MiniFsGeometry geo;
  geo.max_files = 8192;
  std::optional<Status> fmt;
  MiniFs::Format(&world->sim, disk, geo, [&](Status s) { fmt = s; });
  world->sim.Run();
  if (!fmt || !fmt->ok()) {
    result.note = "format failed";
    return result;
  }
  std::shared_ptr<MiniFs> fs;
  MiniFs::Mount(&world->sim, disk, [&](Result<std::shared_ptr<MiniFs>> r) {
    if (r.ok()) {
      fs = *r;
    }
  });
  world->sim.Run();
  if (!fs) {
    result.note = "initial mount failed";
    return result;
  }

  // Copy files; stop at the crash point (mid-stream, unsynced tail).
  Rng rng(static_cast<uint64_t>(crash_after_files) * 7919);
  for (int i = 0; i < crash_after_files && i < kFiles; i++) {
    std::optional<Status> cs;
    fs->CreateFile("file" + std::to_string(i),
                   Buffer::Zeros(kFileBytes / 2 + rng.Uniform(kFileBytes)),
                   [&](Status s) { cs = s; });
    while (!cs.has_value() && world->sim.Step()) {
    }
    if (!cs || !cs->ok()) {
      result.note = "create failed";
      return result;
    }
    if (i % 20 == 19) {
      std::optional<Status> ss;
      fs->Fsync([&](Status s) { ss = s; });
      while (!ss.has_value() && world->sim.Step()) {
      }
    }
  }

  // Crash: kill the filesystem and the client; discard the cache.
  fs->Kill();
  crash();
  world->sim.Run();

  // Mount + fsck the recovered image.
  VirtualDisk* after = recovered_disk();
  std::optional<MiniFs::FsckReport> report;
  MiniFs::Fsck(&world->sim, after,
               [&](MiniFs::FsckReport r) { report = std::move(r); });
  world->sim.Run();
  if (!report) {
    result.note = "fsck never completed";
    return result;
  }
  result.mounted = report->mountable;
  result.fsck_clean = report->clean();
  result.files_found = report->files_found;
  result.files_intact = report->files_intact;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  PerfScope perf(argc, argv, "tbl04_crash");
  const int trials = static_cast<int>(ArgDouble(argc, argv, "trials", 3));
  PrintHeader("tbl04_crash",
              "Table 4 — crash tests: interrupted file copy, cache lost");
  std::printf("%d files of ~16 KiB, fsync every 20, crash mid-copy, cache "
              "discarded (paper: 74K files, VM reset, cache deleted)\n\n",
              trials >= 0 ? kFiles : kFiles);

  Table table({"system", "trial", "mounted?", "fsck clean?", "files intact",
               "files found"});

  for (int trial = 0; trial < trials; trial++) {
    const int crash_point = 150 + trial * 170;

    // --- LSVD ---
    {
      World world(ClusterConfig::SsdPool());
      LsvdConfig config = DefaultLsvdConfig(2 * kGiB, kSmallCache);
      config.batch_bytes = kMiB;  // keep batches flowing for small volumes
      LsvdSystem sys = LsvdSystem::Create(&world, config);
      std::unique_ptr<ClientHost> host2;
      std::unique_ptr<LsvdDisk> recovered;
      auto result = RunTrial(
          &world, sys.disk.get(),
          [&]() -> VirtualDisk* {
            host2 = std::make_unique<ClientHost>(&world.sim,
                                                 ClientHostConfig{});
            recovered = std::make_unique<LsvdDisk>(host2.get(),
                                                   sys.store.get(), config);
            std::optional<Status> s;
            recovered->OpenCacheLost([&](Status st) { s = st; });
            world.sim.Run();
            return recovered.get();
          },
          crash_point, [&]() {
            sys.disk->Kill();
            sys.store->ClientCrash();
            world.host->ssd()->DiscardAll();
          });
      table.AddRow({"lsvd", std::to_string(trial + 1),
                    result.mounted ? "yes" : "NO",
                    result.fsck_clean ? "yes" : "NO",
                    std::to_string(result.files_intact),
                    std::to_string(result.files_found)});
    }

    // --- bcache + RBD ---
    {
      World world(ClusterConfig::SsdPool());
      BcacheRbdSystem sys = BcacheRbdSystem::Create(&world, 2 * kGiB,
                                                    kSmallCache);
      auto result = RunTrial(
          &world, sys.bcache.get(),
          [&]() -> VirtualDisk* {
            // The cache is gone; the surviving image is the RBD backend.
            return sys.rbd.get();
          },
          crash_point, [&]() {
            // bcache paused writeback under load; after the copy stops it
            // gets a brief idle window (roughly one writeback round) before
            // the reset — so the backing image holds an *LBA-ordered*
            // subset of the dirty data, not a temporal prefix.
            world.sim.RunUntil(world.sim.now() + 250 * kMillisecond);
            sys.bcache->Kill();
            world.host->ssd()->DiscardAll();
          });
      table.AddRow({"bcache+rbd", std::to_string(trial + 1),
                    result.mounted ? "yes" : "NO",
                    result.fsck_clean ? "yes" : "NO",
                    std::to_string(result.files_intact),
                    std::to_string(result.files_found)});
    }
  }
  table.Print();
  std::printf("\npaper: LSVD mounted cleanly 3/3; bcache was unmountable in "
              "one trial and lost all copied files after fsck\n");
  return 0;
}
