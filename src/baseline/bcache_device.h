// bcache baseline: a write-back SSD cache layered over a remote virtual disk
// (paper §4: "RBD coupled with Linux bcache in write-back mode").
//
// Behavioural model of the properties the paper's evaluation exercises:
//  - Writes allocate cache-device space, journal their B-tree update (group
//    commit), and are acknowledged when data + journal are written. B-tree
//    insertion serializes on a single worker (`btree_cost`).
//  - A commit barrier must write out dirty B-tree nodes plus the journal and
//    flush the device — the extra metadata I/O that makes sync-heavy
//    workloads up to 4x slower than LSVD (§4.2.2).
//  - Writeback runs only when the client is idle (bcache throttles writeback
//    under load, Figure 11) and proceeds in LBA order — not write order — so
//    losing the cache mid-writeback leaves the backing image inconsistent
//    (Table 4). Under cache-full pressure writeback is forced and incoming
//    writes stall.
#ifndef SRC_BASELINE_BCACHE_DEVICE_H_
#define SRC_BASELINE_BCACHE_DEVICE_H_

#include <deque>
#include <memory>

#include "src/blockdev/virtual_disk.h"
#include "src/lsvd/client_host.h"
#include "src/lsvd/extent_map.h"
#include "src/util/metrics.h"
#include "src/util/run_allocator.h"

namespace lsvd {

struct BcacheConfig {
  Nanos btree_cost = 22 * kMicrosecond;  // per-insert serialization
  Nanos read_cost = 6 * kMicrosecond;    // read path (no btree write lock)
  // Dirty B-tree nodes written per commit barrier, as a function of updates
  // since the last barrier (1 node per this many updates, minimum 1).
  // Scattered small writes dirty roughly one leaf each; some share.
  uint64_t updates_per_btree_node = 2;
  uint64_t max_barrier_nodes = 8;
  // Writeback pacing.
  Nanos writeback_interval = 100 * kMillisecond;
  uint64_t writeback_batch_bytes = 4 * kMiB;
  uint64_t writeback_chunk = 256 * kKiB;  // max merged extent per backing write
  // Stall incoming writes when dirty data exceeds this fraction of the cache.
  double dirty_stall_fraction = 0.95;
};

struct BcacheStats {
  uint64_t writes = 0;
  uint64_t write_bytes = 0;
  uint64_t reads = 0;
  uint64_t read_hits = 0;
  uint64_t journal_writes = 0;
  uint64_t barrier_node_writes = 0;
  uint64_t flushes = 0;
  uint64_t writeback_ops = 0;
  uint64_t writeback_bytes = 0;
  uint64_t stalled_writes = 0;
};

class BcacheDevice : public VirtualDisk {
 public:
  BcacheDevice(ClientHost* host, VirtualDisk* backing, uint64_t cache_base,
               uint64_t cache_size, BcacheConfig config,
               MetricsRegistry* metrics = nullptr,
               const std::string& prefix = "bcache");

  uint64_t size() const override { return backing_->size(); }
  void Write(uint64_t offset, Buffer data,
             std::function<void(Status)> done) override;
  void Read(uint64_t offset, uint64_t len,
            std::function<void(Result<Buffer>)> done) override;
  void Flush(std::function<void(Status)> done) override;

  // Writes back every dirty extent, regardless of load (used to measure the
  // paper's §4.4 sync time; bcache itself only drains when idle).
  void WritebackAll(std::function<void()> done);

  uint64_t dirty_bytes() const { return dirty_.mapped_bytes(); }
  BcacheStats stats() const;

  void Kill() { *alive_ = false; }

 private:
  struct CleanEntry {
    uint64_t vlba;
    uint64_t len;
    uint64_t plba;
  };

  void DoWrite(uint64_t offset, Buffer data, std::function<void(Status)> done);
  // Frees cache space still mapped by `displaced` extents.
  void FreeDisplaced(const ExtentMap<SsdTarget>::ExtentVec& ext);
  // Allocates `len` contiguous bytes, evicting clean lines as needed.
  std::optional<uint64_t> AllocateEvicting(uint64_t len);
  void JoinJournal(std::function<void()> committed);
  void PumpJournal();
  void ArmWriteback();
  void ForceWriteback();
  void WritebackRound(uint64_t max_bytes, bool forced,
                      std::function<void()> done);
  void RetryStalled();

  ClientHost* host_;
  SimSsd* ssd_;
  VirtualDisk* backing_;
  BcacheConfig config_;
  ServerQueue btree_cpu_;
  RunAllocator alloc_;

  ExtentMap<SsdTarget> dirty_;
  ExtentMap<SsdTarget> clean_;
  std::deque<CleanEntry> clean_fifo_;

  // Cache-device layout.
  uint64_t journal_base_ = 0;
  uint64_t journal_size_ = 0;
  uint64_t meta_base_ = 0;
  uint64_t meta_size_ = 0;
  uint64_t meta_counter_ = 0;

  // Journal group commit.
  std::vector<std::function<void()>> journal_waiters_;
  bool journal_in_flight_ = false;
  uint64_t journal_head_ = 0;  // sequential journal region cursor
  uint64_t updates_since_barrier_ = 0;

  // Writeback state.
  bool writeback_armed_ = false;
  bool writeback_running_ = false;
  bool force_retry_pending_ = false;
  uint64_t writes_since_tick_ = 0;
  uint64_t wb_cursor_ = 0;  // LBA-order scan position

  struct StalledWrite {
    uint64_t offset;
    Buffer data;
    std::function<void(Status)> done;
  };
  std::deque<StalledWrite> stalled_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter* c_writes_;
  Counter* c_write_bytes_;
  Counter* c_reads_;
  Counter* c_read_hits_;
  Counter* c_journal_writes_;
  Counter* c_barrier_node_writes_;
  Counter* c_flushes_;
  Counter* c_writeback_ops_;
  Counter* c_writeback_bytes_;
  Counter* c_stalled_writes_;
  // Write ack latency, comparable to lsvd.write.ack_us.
  Histogram* h_write_ack_us_;
  // Last member: destroyed first, so gauge callbacks never outlive the state
  // they read (the shared host registry outlives detached volumes).
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_BASELINE_BCACHE_DEVICE_H_
