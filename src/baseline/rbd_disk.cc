#include "src/baseline/rbd_disk.h"

#include <cassert>

#include "src/blockdev/block_device.h"

namespace lsvd {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Chunk data areas start above the per-disk WAL region.
constexpr uint64_t kDataRegionBase = 8 * kGiB;

bool Aligned(uint64_t v) { return v % kBlockSize == 0; }

}  // namespace

RbdDisk::RbdDisk(Simulator* sim, BackendCluster* cluster, NetLink* link,
                 uint64_t volume_size, RbdConfig config, uint64_t volume_id,
                 MetricsRegistry* metrics, const std::string& prefix)
    : sim_(sim),
      cluster_(cluster),
      link_(link),
      volume_size_(volume_size),
      config_(config),
      volume_id_(volume_id) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_writes_ = metrics_->GetCounter(prefix + ".writes");
  c_write_bytes_ = metrics_->GetCounter(prefix + ".write_bytes");
  c_reads_ = metrics_->GetCounter(prefix + ".reads");
  c_read_bytes_ = metrics_->GetCounter(prefix + ".read_bytes");
  h_write_ack_us_ = metrics_->GetHistogram(prefix + ".write.ack_us");
  h_read_e2e_us_ = metrics_->GetHistogram(prefix + ".read.e2e_us");
}

RbdStats RbdDisk::stats() const {
  RbdStats s;
  s.writes = c_writes_->value();
  s.write_bytes = c_write_bytes_->value();
  s.reads = c_reads_->value();
  s.read_bytes = c_read_bytes_->value();
  return s;
}

uint64_t RbdDisk::ChunkHash(uint64_t chunk) const {
  return Mix(chunk * 0x9E3779B97F4A7C15ULL + volume_id_);
}

uint64_t RbdDisk::ChunkBase(uint64_t chunk, int replica) const {
  // Deterministic home: repeated writes to the same chunk land in the same
  // disk region (the write "streams" observed in the paper's §4.5 analysis).
  const uint64_t span = cluster_->disk_capacity() - kDataRegionBase -
                        config_.chunk_size;
  const uint64_t h = Mix(ChunkHash(chunk) ^ static_cast<uint64_t>(replica));
  return kDataRegionBase + (h % span) / kBlockSize * kBlockSize;
}

// One chunk-contained piece of a client write: journal + data at each of the
// three replicas, acknowledged when the three WAL appends are durable.
void RbdDisk::WriteOnePiece(uint64_t offset, uint64_t len,
                            std::function<void()> acked) {
  const uint64_t chunk = ChunkIndex(offset);
  const uint64_t within = offset % config_.chunk_size;
  auto wal_remaining = std::make_shared<int>(config_.replicas);
  auto alive = alive_;
  for (int r = 0; r < config_.replicas; r++) {
    const int disk = cluster_->PickDisk(ChunkHash(chunk), r);
    // WAL append: data + commit metadata, sequential on the OSD journal.
    cluster_->WalAppend(
        disk, static_cast<uint32_t>(len + config_.wal_overhead),
        [alive, wal_remaining, acked]() {
          if (--*wal_remaining == 0 && *alive) {
            acked();
          }
        });
    // In-place data write into the chunk's home region (applied after the
    // journal; not part of the acknowledgement path).
    cluster_->Write(disk, ChunkBase(chunk, r) + within,
                    static_cast<uint32_t>(len), []() {});
  }
}

void RbdDisk::Write(uint64_t offset, Buffer data,
                    std::function<void(Status)> done) {
  if (!Aligned(offset) || !Aligned(data.size()) || data.empty()) {
    done(Status::InvalidArgument("unaligned or empty RBD write"));
    return;
  }
  if (offset + data.size() > volume_size_) {
    done(Status::OutOfRange("write beyond volume size"));
    return;
  }
  c_writes_->Inc();
  c_write_bytes_->Inc(data.size());
  const Nanos submitted = sim_->now();

  // Store contents immediately (the acknowledgement below gates the caller,
  // and RBD has no client-side volatile state to lose).
  for (uint64_t b = 0; b < data.size() / kBlockSize; b++) {
    Buffer slice = data.Slice(b * kBlockSize, kBlockSize);
    const uint64_t block = offset / kBlockSize + b;
    if (slice.IsAllZeros()) {
      blocks_[block] = nullptr;
    } else {
      blocks_[block] =
          std::make_shared<const std::vector<uint8_t>>(slice.ToBytes());
    }
  }

  // Split on chunk boundaries; each piece is replicated independently.
  std::vector<std::pair<uint64_t, uint64_t>> pieces;
  uint64_t pos = offset;
  uint64_t left = data.size();
  while (left > 0) {
    const uint64_t chunk_end =
        (ChunkIndex(pos) + 1) * config_.chunk_size;
    const uint64_t n = std::min(left, chunk_end - pos);
    pieces.push_back({pos, n});
    pos += n;
    left -= n;
  }

  auto alive = alive_;
  const uint64_t bytes = data.size();
  std::function<void(Status)> acked =
      [this, alive, submitted, done = std::move(done)](Status s) {
        if (*alive) {
          RecordLatencyUs(h_write_ack_us_, sim_->now() - submitted);
        }
        done(s);
      };
  // Client -> primary transfer, then fan out to replicas.
  link_->SendToBackend(bytes, [this, alive, pieces,
                               done = std::move(acked)]() mutable {
    if (!*alive) {
      return;
    }
    sim_->After(link_->half_rtt(), [this, alive, pieces,
                                    done = std::move(done)]() mutable {
      auto remaining = std::make_shared<size_t>(pieces.size());
      auto finish = [this, alive, remaining, done = std::move(done)]() {
        if (--*remaining == 0 && *alive) {
          sim_->After(link_->half_rtt(), [alive, done]() {
            if (*alive) {
              done(Status::Ok());
            }
          });
        }
      };
      for (const auto& [off, len] : pieces) {
        WriteOnePiece(off, len, finish);
      }
    });
  });
}

void RbdDisk::Read(uint64_t offset, uint64_t len,
                   std::function<void(Result<Buffer>)> done) {
  if (!Aligned(offset) || !Aligned(len) || len == 0) {
    done(Status::InvalidArgument("unaligned or empty RBD read"));
    return;
  }
  if (offset + len > volume_size_) {
    done(Status::OutOfRange("read beyond volume size"));
    return;
  }
  c_reads_->Inc();
  c_read_bytes_->Inc(len);
  const Nanos started = sim_->now();

  Buffer out;
  for (uint64_t b = 0; b < len / kBlockSize; b++) {
    auto it = blocks_.find(offset / kBlockSize + b);
    if (it == blocks_.end() || it->second == nullptr) {
      out.AppendZeros(kBlockSize);
    } else {
      out.AppendBytes(
          std::span<const uint8_t>(it->second->data(), it->second->size()));
    }
  }

  // Timing: request to primary, disk read, transfer back.
  const uint64_t chunk = ChunkIndex(offset);
  const uint64_t within = offset % config_.chunk_size;
  const int disk = cluster_->PickDisk(ChunkHash(chunk), 0);
  auto alive = alive_;
  sim_->After(link_->half_rtt(), [this, alive, disk, chunk, within, len,
                                  started, out = std::move(out),
                                  done = std::move(done)]() mutable {
    cluster_->Read(disk, ChunkBase(chunk, 0) + within,
                   static_cast<uint32_t>(len),
                   [this, alive, len, started, out = std::move(out),
                    done = std::move(done)]() mutable {
      link_->ReceiveFromBackend(len, [this, alive, started,
                                      out = std::move(out),
                                      done = std::move(done)]() mutable {
        if (!*alive) {
          return;
        }
        sim_->After(link_->half_rtt(),
                    [this, alive, started, out = std::move(out),
                     done = std::move(done)]() {
          if (*alive) {
            RecordLatencyUs(h_read_e2e_us_, sim_->now() - started);
            done(out);
          }
        });
      });
    });
  });
}

void RbdDisk::Flush(std::function<void(Status)> done) {
  // Acknowledged writes are already journaled at three replicas.
  sim_->After(0, [alive = alive_, done = std::move(done)]() {
    if (*alive) {
      done(Status::Ok());
    }
  });
}

}  // namespace lsvd
