// Ceph RADOS Block Device (RBD) baseline (paper §2.1, §4.5, §5).
//
// The virtual disk image is split into 4 MiB mutable chunks distributed over
// the backend pool by consistent hashing, with triple replication. Each
// client write performs, at each of the three replicas, a write-ahead-log
// append (data + commit metadata, the 16/20/24 KiB writes of Figure 14) and
// an in-place data write — six backend I/Os per client write, matching the
// paper's measured 6x amplification (Figure 13). The write is acknowledged
// once all three WAL appends complete, so Flush is a no-op (acknowledged
// writes are already replicated-durable).
#ifndef SRC_BASELINE_RBD_DISK_H_
#define SRC_BASELINE_RBD_DISK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/blockdev/virtual_disk.h"
#include "src/sim/cluster.h"
#include "src/sim/net_link.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace lsvd {

struct RbdConfig {
  uint64_t chunk_size = 4 * kMiB;
  int replicas = 3;
  // WAL overhead added to each journaled write (commit record / two-phase
  // metadata; the paper sees 16 KiB writes journaled as 16-24 KiB).
  uint64_t wal_overhead = 4 * kKiB;
};

struct RbdStats {
  uint64_t writes = 0;
  uint64_t write_bytes = 0;
  uint64_t reads = 0;
  uint64_t read_bytes = 0;
};

class RbdDisk : public VirtualDisk {
 public:
  RbdDisk(Simulator* sim, BackendCluster* cluster, NetLink* link,
          uint64_t volume_size, RbdConfig config, uint64_t volume_id = 0,
          MetricsRegistry* metrics = nullptr,
          const std::string& prefix = "rbd");

  uint64_t size() const override { return volume_size_; }
  void Write(uint64_t offset, Buffer data,
             std::function<void(Status)> done) override;
  void Read(uint64_t offset, uint64_t len,
            std::function<void(Result<Buffer>)> done) override;
  void Flush(std::function<void(Status)> done) override;

  // Drops contents (used to model an image that was never written).
  void Kill() { *alive_ = false; }

  RbdStats stats() const;

 private:
  uint64_t ChunkIndex(uint64_t offset) const { return offset / config_.chunk_size; }
  uint64_t ChunkHash(uint64_t chunk) const;
  // Deterministic on-disk home of a chunk replica.
  uint64_t ChunkBase(uint64_t chunk, int replica) const;
  void WriteOnePiece(uint64_t offset, uint64_t len,
                     std::function<void()> acked);

  Simulator* sim_;
  BackendCluster* cluster_;
  NetLink* link_;
  uint64_t volume_size_;
  RbdConfig config_;
  uint64_t volume_id_;

  // Image contents at 4 KiB granularity (absent or null = zeros).
  std::unordered_map<uint64_t, std::shared_ptr<const std::vector<uint8_t>>>
      blocks_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter* c_writes_;
  Counter* c_write_bytes_;
  Counter* c_reads_;
  Counter* c_read_bytes_;
  // Ack latencies comparable to lsvd.write.ack_us / lsvd.read.e2e_us.
  Histogram* h_write_ack_us_;
  Histogram* h_read_e2e_us_;
};

}  // namespace lsvd

#endif  // SRC_BASELINE_RBD_DISK_H_
