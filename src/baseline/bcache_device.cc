#include "src/baseline/bcache_device.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lsvd {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

bool Aligned(uint64_t v) { return v % kBlockSize == 0; }

}  // namespace

BcacheDevice::BcacheDevice(ClientHost* host, VirtualDisk* backing,
                           uint64_t cache_base, uint64_t cache_size,
                           BcacheConfig config, MetricsRegistry* metrics,
                           const std::string& prefix)
    : host_(host),
      ssd_(host->ssd()),
      backing_(backing),
      config_(config),
      btree_cpu_(host->sim(), 1),
      alloc_(0, 1) {  // re-seated below once the layout is computed
  // Layout: journal + metadata region up front, data space after it.
  const uint64_t meta_size =
      std::max<uint64_t>(8 * kMiB, cache_size / 64) / kBlockSize * kBlockSize;
  journal_base_ = cache_base;
  journal_size_ = meta_size / 2;
  meta_base_ = cache_base + journal_size_;
  meta_size_ = meta_size - journal_size_;
  journal_head_ = journal_base_;
  alloc_ = RunAllocator(cache_base + meta_size, cache_size - meta_size);

  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_writes_ = metrics_->GetCounter(prefix + ".writes");
  c_write_bytes_ = metrics_->GetCounter(prefix + ".write_bytes");
  c_reads_ = metrics_->GetCounter(prefix + ".reads");
  c_read_hits_ = metrics_->GetCounter(prefix + ".read_hits");
  c_journal_writes_ = metrics_->GetCounter(prefix + ".journal_writes");
  c_barrier_node_writes_ =
      metrics_->GetCounter(prefix + ".barrier_node_writes");
  c_flushes_ = metrics_->GetCounter(prefix + ".flushes");
  c_writeback_ops_ = metrics_->GetCounter(prefix + ".writeback_ops");
  c_writeback_bytes_ = metrics_->GetCounter(prefix + ".writeback_bytes");
  c_stalled_writes_ = metrics_->GetCounter(prefix + ".stalled_writes");
  h_write_ack_us_ = metrics_->GetHistogram(prefix + ".write.ack_us");
  callback_guard_.Register(metrics_, prefix + ".dirty_bytes", [this] {
    return static_cast<double>(dirty_.mapped_bytes());
  });
}

BcacheStats BcacheDevice::stats() const {
  BcacheStats s;
  s.writes = c_writes_->value();
  s.write_bytes = c_write_bytes_->value();
  s.reads = c_reads_->value();
  s.read_hits = c_read_hits_->value();
  s.journal_writes = c_journal_writes_->value();
  s.barrier_node_writes = c_barrier_node_writes_->value();
  s.flushes = c_flushes_->value();
  s.writeback_ops = c_writeback_ops_->value();
  s.writeback_bytes = c_writeback_bytes_->value();
  s.stalled_writes = c_stalled_writes_->value();
  return s;
}

void BcacheDevice::FreeDisplaced(const ExtentMap<SsdTarget>::ExtentVec& ext) {
  for (const auto& e : ext) {
    alloc_.Free(e.target.plba, e.len);
  }
}

std::optional<uint64_t> BcacheDevice::AllocateEvicting(uint64_t len) {
  // Allocation needs a *contiguous* run; keep evicting clean lines (FIFO)
  // until one materializes — RunAllocator::Free merges neighbors, so once
  // everything clean is evicted the free space is maximally coalesced.
  while (true) {
    auto run = alloc_.Allocate(len);
    if (run.has_value()) {
      return run;
    }
    if (clean_fifo_.empty()) {
      return std::nullopt;
    }
    CleanEntry entry = clean_fifo_.front();
    clean_fifo_.pop_front();
    // Free only the portions still mapped to this entry's slot (overwritten
    // ranges were freed when they were displaced).
    ExtentMap<SsdTarget>::SegmentVec segs;
    ExtentMap<SsdTarget>::ExtentVec removed;
    clean_.Lookup(entry.vlba, entry.len, &segs);
    for (const auto& seg : segs) {
      if (!seg.target.has_value()) {
        continue;
      }
      const uint64_t expected = entry.plba + (seg.start - entry.vlba);
      if (seg.target->plba == expected) {
        clean_.Remove(seg.start, seg.len, &removed);
        FreeDisplaced(removed);
      }
    }
  }
}

void BcacheDevice::Write(uint64_t offset, Buffer data,
                         std::function<void(Status)> done) {
  if (!Aligned(offset) || !Aligned(data.size()) || data.empty()) {
    done(Status::InvalidArgument("unaligned or empty bcache write"));
    return;
  }
  if (offset + data.size() > backing_->size()) {
    done(Status::OutOfRange("write beyond volume size"));
    return;
  }
  c_writes_->Inc();
  c_write_bytes_->Inc(data.size());
  writes_since_tick_++;

  // Ack latency covers everything up to the journal group commit, including
  // any time spent in the stalled queue.
  const Nanos submitted = host_->sim()->now();
  auto alive = alive_;
  auto acked = [this, alive, submitted,
                done = std::move(done)](Status s) mutable {
    if (*alive) {
      RecordLatencyUs(h_write_ack_us_, host_->sim()->now() - submitted);
    }
    done(s);
  };

  if (!stalled_.empty()) {
    stalled_.push_back(StalledWrite{offset, std::move(data), std::move(acked)});
    c_stalled_writes_->Inc();
    ForceWriteback();
    return;
  }
  DoWrite(offset, std::move(data), std::move(acked));
}

void BcacheDevice::DoWrite(uint64_t offset, Buffer data,
                           std::function<void(Status)> done) {
  const uint64_t len = data.size();
  const bool over_dirty =
      static_cast<double>(dirty_.mapped_bytes()) >
      config_.dirty_stall_fraction * static_cast<double>(alloc_.total_bytes());
  std::optional<uint64_t> plba;
  if (!over_dirty) {
    plba = AllocateEvicting(len);
  }
  if (!plba.has_value()) {
    if (len > alloc_.total_bytes() / 2) {
      // Can never fit (even a fully drained cache could stay fragmented).
      done(Status::ResourceExhausted("write larger than bcache data space"));
      return;
    }
    // Cache full: stall until writeback (or in-flight inserts becoming
    // dirty and then written back) frees space.
    stalled_.push_front(StalledWrite{offset, std::move(data), std::move(done)});
    c_stalled_writes_->Inc();
    ForceWriteback();
    return;
  }

  auto alive = alive_;
  const uint64_t target = *plba;
  btree_cpu_.Submit(config_.btree_cost,
                    [this, alive, offset, target, data = std::move(data),
                     done = std::move(done)]() mutable {
    if (!*alive) {
      return;
    }
    const uint64_t len = data.size();
    // Older copies of this range die now; their space is reusable.
    ExtentMap<SsdTarget>::ExtentVec displaced;
    dirty_.Update(offset, len, SsdTarget{target}, &displaced);
    FreeDisplaced(displaced);
    clean_.Remove(offset, len, &displaced);
    FreeDisplaced(displaced);
    updates_since_barrier_++;
    ArmWriteback();
    ssd_->Write(target, std::move(data),
                [this, alive, done = std::move(done)](Status s) mutable {
      if (!*alive) {
        return;
      }
      if (!s.ok()) {
        done(s);
        return;
      }
      // Acknowledged once the b-tree update is journaled (group commit).
      JoinJournal([done = std::move(done)]() { done(Status::Ok()); });
    });
  });
}

void BcacheDevice::JoinJournal(std::function<void()> committed) {
  journal_waiters_.push_back(std::move(committed));
  PumpJournal();
}

void BcacheDevice::PumpJournal() {
  if (journal_in_flight_ || journal_waiters_.empty()) {
    return;
  }
  journal_in_flight_ = true;
  auto group =
      std::make_shared<std::vector<std::function<void()>>>(
          std::move(journal_waiters_));
  journal_waiters_.clear();
  if (journal_head_ + kBlockSize > journal_base_ + journal_size_) {
    journal_head_ = journal_base_;
  }
  const uint64_t at = journal_head_;
  journal_head_ += kBlockSize;
  auto alive = alive_;
  ssd_->Write(at, Buffer::Zeros(kBlockSize), [this, alive, group](Status) {
    if (!*alive) {
      return;
    }
    c_journal_writes_->Inc();
    journal_in_flight_ = false;
    for (auto& cb : *group) {
      cb();
    }
    PumpJournal();
  });
}

void BcacheDevice::Flush(std::function<void(Status)> done) {
  c_flushes_->Inc();
  // Unlike LSVD's log, bcache must write its dirty B-tree nodes out before
  // the barrier completes (§4.2.2). Node writes are ordered (children before
  // parents), so they serialize; the journal commit then needs a pre-flush
  // (nodes durable before the commit record) and a post-flush.
  const uint64_t nodes = std::min(
      config_.max_barrier_nodes,
      updates_since_barrier_ / config_.updates_per_btree_node + 1);
  updates_since_barrier_ = 0;
  c_barrier_node_writes_->Inc(nodes);

  auto alive = alive_;
  auto commit = [this, alive, done = std::move(done)]() mutable {
    ssd_->Flush([this, alive, done = std::move(done)](Status) mutable {
      if (!*alive) {
        return;
      }
      JoinJournal([this, alive, done = std::move(done)]() mutable {
        ssd_->Flush([alive, done = std::move(done)](Status s) {
          if (*alive) {
            done(s);
          }
        });
      });
    });
  };

  // The loop body captures itself only weakly (each SSD-write callback
  // re-locks a strong reference), so the function object is freed when the
  // loop finishes rather than leaking in a shared_ptr cycle.
  auto write_node = std::make_shared<std::function<void(uint64_t)>>();
  std::weak_ptr<std::function<void(uint64_t)>> weak_node = write_node;
  *write_node = [this, alive, nodes, weak_node,
                 commit = std::move(commit)](uint64_t n) mutable {
    if (n >= nodes) {
      commit();
      return;
    }
    // B-tree nodes live at scattered metadata offsets.
    const uint64_t at =
        meta_base_ + Mix(meta_counter_++) % (meta_size_ / kBlockSize) *
                         kBlockSize;
    ssd_->Write(at, Buffer::Zeros(kBlockSize),
                [alive, write_node = weak_node.lock(), n](Status) {
                  if (*alive) {
                    (*write_node)(n + 1);
                  }
                });
  };
  (*write_node)(0);
}

void BcacheDevice::Read(uint64_t offset, uint64_t len,
                        std::function<void(Result<Buffer>)> done) {
  if (!Aligned(offset) || !Aligned(len) || len == 0) {
    done(Status::InvalidArgument("unaligned or empty bcache read"));
    return;
  }
  if (offset + len > backing_->size()) {
    done(Status::OutOfRange("read beyond volume size"));
    return;
  }
  c_reads_->Inc();

  struct Fragment {
    uint64_t vlba;
    uint64_t len;
    std::optional<uint64_t> plba;  // nullopt = backing miss
  };
  auto plan = std::make_shared<std::vector<Fragment>>();
  bool all_hits = true;
  ExtentMap<SsdTarget>::SegmentVec dsegs;
  ExtentMap<SsdTarget>::SegmentVec csegs;
  dirty_.Lookup(offset, len, &dsegs);
  for (const auto& dseg : dsegs) {
    if (dseg.target.has_value()) {
      plan->push_back(Fragment{dseg.start, dseg.len, dseg.target->plba});
      continue;
    }
    clean_.Lookup(dseg.start, dseg.len, &csegs);
    for (const auto& cseg : csegs) {
      if (cseg.target.has_value()) {
        plan->push_back(Fragment{cseg.start, cseg.len, cseg.target->plba});
      } else {
        plan->push_back(Fragment{cseg.start, cseg.len, std::nullopt});
        all_hits = false;
      }
    }
  }
  if (all_hits) {
    c_read_hits_->Inc();
  }

  auto parts = std::make_shared<std::vector<Buffer>>(plan->size());
  auto remaining = std::make_shared<size_t>(plan->size());
  auto failed = std::make_shared<bool>(false);
  auto finish = [parts, remaining, failed, done](size_t i, Result<Buffer> r) {
    if (r.ok()) {
      (*parts)[i] = std::move(r).value();
    } else if (!*failed) {
      *failed = true;
      done(r.status());
    }
    if (--*remaining == 0 && !*failed) {
      Buffer out;
      for (auto& p : *parts) {
        out.Append(p);
      }
      done(out);
    }
  };

  auto alive = alive_;
  btree_cpu_.Submit(config_.read_cost, [this, alive, plan, finish]() {
    if (!*alive) {
      return;
    }
    for (size_t i = 0; i < plan->size(); i++) {
      const Fragment& frag = (*plan)[i];
      if (frag.plba.has_value()) {
        ssd_->Read(*frag.plba, frag.len, [i, finish](Result<Buffer> r) {
          finish(i, std::move(r));
        });
      } else {
        backing_->Read(frag.vlba, frag.len,
                       [this, alive, i, frag, finish](Result<Buffer> r) {
          if (!*alive) {
            return;
          }
          if (r.ok()) {
            // Fill the cache (clean) in the background.
            auto slot = AllocateEvicting(frag.len);
            if (slot.has_value()) {
              ExtentMap<SsdTarget>::ExtentVec removed;
              clean_.Remove(frag.vlba, frag.len, &removed);
              FreeDisplaced(removed);
              clean_.Update(frag.vlba, frag.len, SsdTarget{*slot}, nullptr);
              clean_fifo_.push_back(CleanEntry{frag.vlba, frag.len, *slot});
              ssd_->Write(*slot, *r, [](Status) {});
            }
          }
          finish(i, std::move(r));
        });
      }
    }
  });
}

void BcacheDevice::ArmWriteback() {
  if (writeback_armed_ || dirty_.mapped_bytes() == 0) {
    return;
  }
  writeback_armed_ = true;
  auto alive = alive_;
  host_->sim()->After(config_.writeback_interval, [this, alive]() {
    if (!*alive) {
      return;
    }
    writeback_armed_ = false;
    if (dirty_.mapped_bytes() == 0) {
      return;
    }
    const bool idle = writes_since_tick_ == 0;
    writes_since_tick_ = 0;
    if (idle && !writeback_running_) {
      WritebackRound(config_.writeback_batch_bytes, false,
                     [this, alive]() {
        if (*alive) {
          ArmWriteback();
        }
      });
    } else {
      // Load present: bcache pauses writeback (Figure 11); check again later.
      ArmWriteback();
    }
  });
}

void BcacheDevice::ForceWriteback() {
  if (writeback_running_ || force_retry_pending_) {
    return;
  }
  auto alive = alive_;
  if (dirty_.mapped_bytes() == 0) {
    // Nothing dirty yet (writes still in flight toward the cache): let the
    // simulation advance before retrying the stalled queue.
    force_retry_pending_ = true;
    host_->sim()->After(kMillisecond, [this, alive]() {
      if (!*alive) {
        return;
      }
      force_retry_pending_ = false;
      RetryStalled();
      if (!stalled_.empty()) {
        ForceWriteback();
      }
    });
    return;
  }
  WritebackRound(config_.writeback_batch_bytes, true, [this, alive]() {
    if (!*alive) {
      return;
    }
    RetryStalled();
    if (!stalled_.empty()) {
      ForceWriteback();
    }
  });
}

void BcacheDevice::WritebackRound(uint64_t max_bytes, bool forced,
                                  std::function<void()> done) {
  (void)forced;
  if (writeback_running_ || dirty_.mapped_bytes() == 0) {
    host_->sim()->After(0, std::move(done));
    return;
  }
  writeback_running_ = true;

  // Select dirty extents in LBA order starting at the scan cursor — this is
  // the ordering that breaks crash consistency (Table 4).
  struct Piece {
    uint64_t vlba;
    uint64_t len;
    uint64_t plba;
  };
  std::vector<Piece> pieces;
  uint64_t selected = 0;
  const auto extents = dirty_.Extents();
  size_t start = 0;
  while (start < extents.size() && extents[start].start < wb_cursor_) {
    start++;
  }
  for (size_t n = 0; n < extents.size() && selected < max_bytes; n++) {
    const auto& e = extents[(start + n) % extents.size()];
    uint64_t off = 0;
    while (off < e.len && selected < max_bytes) {
      const uint64_t piece = std::min(config_.writeback_chunk, e.len - off);
      pieces.push_back(Piece{e.start + off, piece, e.target.plba + off});
      selected += piece;
      off += piece;
    }
    wb_cursor_ = e.start + e.len;
  }
  if (pieces.empty()) {
    writeback_running_ = false;
    host_->sim()->After(0, std::move(done));
    return;
  }

  auto remaining = std::make_shared<size_t>(pieces.size());
  auto alive = alive_;
  auto piece_done = [this, alive, remaining, done = std::move(done)]() {
    if (--*remaining > 0 || !*alive) {
      return;
    }
    writeback_running_ = false;
    RetryStalled();
    done();
  };

  for (const auto& p : pieces) {
    ssd_->Read(p.plba, p.len,
               [this, alive, p, piece_done](Result<Buffer> r) {
      if (!*alive) {
        return;
      }
      if (!r.ok()) {
        piece_done();
        return;
      }
      c_writeback_ops_->Inc();
      c_writeback_bytes_->Inc(p.len);
      backing_->Write(p.vlba, std::move(r).value(),
                      [this, alive, p, piece_done](Status s) {
        if (!*alive) {
          return;
        }
        if (s.ok()) {
          // Move still-current ranges from dirty to clean.
          ExtentMap<SsdTarget>::SegmentVec segs;
          dirty_.Lookup(p.vlba, p.len, &segs);
          for (const auto& seg : segs) {
            if (!seg.target.has_value()) {
              continue;
            }
            const uint64_t expected = p.plba + (seg.start - p.vlba);
            if (seg.target->plba == expected) {
              dirty_.Remove(seg.start, seg.len, nullptr);
              clean_.Update(seg.start, seg.len, SsdTarget{expected}, nullptr);
              clean_fifo_.push_back(
                  CleanEntry{seg.start, seg.len, expected});
            }
          }
        }
        piece_done();
      });
    });
  }
}

void BcacheDevice::RetryStalled() {
  while (!stalled_.empty()) {
    const bool over_dirty =
        static_cast<double>(dirty_.mapped_bytes()) >
        config_.dirty_stall_fraction *
            static_cast<double>(alloc_.total_bytes());
    if (over_dirty) {
      return;  // still no room; the forced-writeback loop continues
    }
    const size_t before = stalled_.size();
    StalledWrite w = std::move(stalled_.front());
    stalled_.pop_front();
    DoWrite(w.offset, std::move(w.data), std::move(w.done));
    if (stalled_.size() >= before) {
      return;  // the write re-stalled: no progress possible right now
    }
  }
}

void BcacheDevice::WritebackAll(std::function<void()> done) {
  if (dirty_.mapped_bytes() == 0) {
    host_->sim()->After(0, std::move(done));
    return;
  }
  auto alive = alive_;
  WritebackRound(UINT64_MAX, true, [this, alive, done = std::move(done)]() mutable {
    if (!*alive) {
      return;
    }
    WritebackAll(std::move(done));
  });
}

}  // namespace lsvd
