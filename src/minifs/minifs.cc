#include "src/minifs/minifs.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/blockdev/block_device.h"
#include "src/util/codec.h"
#include "src/util/crc32c.h"

namespace lsvd {
namespace {

constexpr uint32_t kSuperMagic = 0x4D465331;   // "MFS1"
constexpr uint32_t kDescMagic = 0x4D464A44;    // journal descriptor
constexpr uint32_t kCommitMagic = 0x4D464A43;  // journal commit
constexpr uint32_t kVersion = 1;

constexpr uint64_t kInodeSize = 128;
constexpr uint64_t kInodesPerBlock = kBlockSize / kInodeSize;  // 32
constexpr uint64_t kDirentSize = 32;
constexpr uint64_t kDirentsPerBlock = kBlockSize / kDirentSize;  // 128
constexpr size_t kMaxName = 25;
constexpr uint64_t kDirectPtrs = 12;
constexpr uint64_t kPtrsPerIndirect = kBlockSize / 8;  // 512
constexpr uint64_t kMaxFileBlocks = kDirectPtrs + 2 * kPtrsPerIndirect;
// Metadata block copies per journal transaction (the descriptor's target
// list must fit one block: 20-byte header + 8 bytes per target).
constexpr uint64_t kMaxTxnBlocks = 448;

struct SuperBlock {
  uint64_t total_blocks = 0;
  uint64_t journal_start = 0;
  uint64_t journal_blocks = 0;
  uint64_t inode_start = 0;
  uint64_t inode_blocks = 0;
  uint64_t bitmap_start = 0;
  uint64_t bitmap_blocks = 0;
  uint64_t data_start = 0;
};

Buffer EncodeSuper(const SuperBlock& sb) {
  Encoder enc;
  enc.PutU32(kSuperMagic);
  enc.PutU32(kVersion);
  enc.PutU64(sb.total_blocks);
  enc.PutU64(sb.journal_start);
  enc.PutU64(sb.journal_blocks);
  enc.PutU64(sb.inode_start);
  enc.PutU64(sb.inode_blocks);
  enc.PutU64(sb.bitmap_start);
  enc.PutU64(sb.bitmap_blocks);
  enc.PutU64(sb.data_start);
  const size_t crc_pos = enc.size();
  enc.PutU32(0);
  enc.PadTo(kBlockSize);
  auto bytes = enc.Take();
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; i++) {
    bytes[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  return Buffer::FromBytes(bytes);
}

Status DecodeSuper(const Buffer& block, SuperBlock* sb) {
  auto bytes = block.ToBytes();
  Decoder dec(bytes);
  if (dec.GetU32() != kSuperMagic || dec.GetU32() != kVersion) {
    return Status::Corruption("bad minifs superblock");
  }
  sb->total_blocks = dec.GetU64();
  sb->journal_start = dec.GetU64();
  sb->journal_blocks = dec.GetU64();
  sb->inode_start = dec.GetU64();
  sb->inode_blocks = dec.GetU64();
  sb->bitmap_start = dec.GetU64();
  sb->bitmap_blocks = dec.GetU64();
  sb->data_start = dec.GetU64();
  const size_t crc_pos = dec.position();
  const uint32_t crc = dec.GetU32();
  auto check = bytes;
  for (int i = 0; i < 4; i++) {
    check[crc_pos + static_cast<size_t>(i)] = 0;
  }
  if (Crc32c(check.data(), check.size()) != crc) {
    return Status::Corruption("minifs superblock CRC mismatch");
  }
  if (sb->data_start == 0 || sb->data_start >= sb->total_blocks) {
    return Status::Corruption("minifs superblock geometry invalid");
  }
  return Status::Ok();
}

// Groups a sorted list of (block, Buffer) into contiguous device writes.
void WriteBlocksBatched(
    VirtualDisk* disk, const std::vector<std::pair<uint64_t, Buffer>>& blocks,
    std::function<void(Status)> done) {
  if (blocks.empty()) {
    done(Status::Ok());
    return;
  }
  struct Run {
    uint64_t start_block;
    Buffer data;
  };
  std::vector<Run> runs;
  for (const auto& [block, data] : blocks) {
    if (!runs.empty() &&
        runs.back().start_block + runs.back().data.size() / kBlockSize ==
            block) {
      runs.back().data.Append(data);
    } else {
      runs.push_back(Run{block, data});
    }
  }
  auto remaining = std::make_shared<size_t>(runs.size());
  auto failed = std::make_shared<bool>(false);
  for (auto& run : runs) {
    disk->Write(run.start_block * kBlockSize, std::move(run.data),
                [remaining, failed, done](Status s) {
      if (!s.ok() && !*failed) {
        *failed = true;
        done(s);
      }
      if (--*remaining == 0 && !*failed) {
        done(Status::Ok());
      }
    });
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Format

void MiniFs::Format(Simulator* sim, VirtualDisk* disk, MiniFsGeometry geo,
                    std::function<void(Status)> done) {
  (void)sim;
  SuperBlock sb;
  sb.total_blocks = disk->size() / kBlockSize;
  sb.journal_start = 1;
  sb.journal_blocks = std::max<uint64_t>(64, geo.journal_bytes / kBlockSize);
  sb.inode_start = sb.journal_start + sb.journal_blocks;
  sb.inode_blocks = (geo.max_files + kInodesPerBlock - 1) / kInodesPerBlock;
  sb.bitmap_start = sb.inode_start + sb.inode_blocks;
  if (sb.bitmap_start + 16 >= sb.total_blocks) {
    done(Status::InvalidArgument("disk too small for minifs"));
    return;
  }
  const uint64_t remaining = sb.total_blocks - sb.bitmap_start;
  // One bitmap byte per data block: a bitmap block covers 4096 data blocks.
  sb.bitmap_blocks =
      std::max<uint64_t>(1, (remaining + kBlockSize) / (kBlockSize + 1));
  sb.data_start = sb.bitmap_start + sb.bitmap_blocks;
  if (sb.data_start + 16 >= sb.total_blocks) {
    done(Status::InvalidArgument("disk too small for minifs"));
    return;
  }

  Buffer image = EncodeSuper(sb);
  image.AppendZeros(sb.journal_blocks * kBlockSize);
  {
    // Inode block 0 carries the root directory inode (type 2, empty).
    Encoder enc;
    enc.PutU32(2);  // type: directory
    enc.PutU64(0);  // size
    enc.PutU32(0);  // content crc
    for (uint64_t i = 0; i < kDirectPtrs + 2; i++) {
      enc.PutU64(0);
    }
    enc.PadTo(kBlockSize);
    image.AppendBytes(enc.bytes());
  }
  image.AppendZeros((sb.inode_blocks - 1) * kBlockSize);
  image.AppendZeros(sb.bitmap_blocks * kBlockSize);

  disk->Write(0, std::move(image), [disk, done = std::move(done)](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    disk->Flush(std::move(done));
  });
}

// ---------------------------------------------------------------------------
// Allocation & serialization

MiniFs::MiniFs(Simulator* sim, VirtualDisk* disk) : sim_(sim), disk_(disk) {}

MiniFs::~MiniFs() { Kill(); }

Result<uint64_t> MiniFs::AllocBlock() {
  for (uint64_t i = 0; i < bitmap_.size(); i++) {
    if (bitmap_[i] == 0 && !reuse_blocked_.contains(i)) {
      bitmap_[i] = 1;
      MarkBitmapDirty(i);
      return geo_.data_start + i;
    }
  }
  return Status::ResourceExhausted("minifs data space full");
}

void MiniFs::FreeBlock(uint64_t block) {
  assert(block >= geo_.data_start);
  const uint64_t i = block - geo_.data_start;
  assert(i < bitmap_.size() && bitmap_[i] == 1);
  bitmap_[i] = 0;
  MarkBitmapDirty(i);
  // Block reuse until the free is journaled (ordered-mode safety).
  reuse_blocked_.insert(i);
  pending_unblock_.push_back(i);
}

Result<uint32_t> MiniFs::AllocInode() {
  for (uint32_t i = 1; i < inodes_.size(); i++) {  // 0 is the root dir
    if (inodes_[i].type == 0) {
      inodes_[i].type = 1;
      MarkInodeDirty(i);
      return i;
    }
  }
  return Status::ResourceExhausted("minifs inode table full");
}

void MiniFs::MarkInodeDirty(uint32_t ino) {
  dirty_meta_.insert(geo_.inode_start + ino / kInodesPerBlock);
}

void MiniFs::MarkBitmapDirty(uint64_t data_block_index) {
  dirty_meta_.insert(geo_.bitmap_start + data_block_index / kBlockSize);
}

Result<uint64_t> MiniFs::AppendBlockTo(uint32_t ino) {
  auto& list = blocklists_[ino];
  if (list.size() >= kMaxFileBlocks) {
    return Status::ResourceExhausted("minifs file too large");
  }
  auto block = AllocBlock();
  if (!block.ok()) {
    return block;
  }
  const uint64_t index = list.size();
  list.push_back(*block);
  if (index < kDirectPtrs) {
    MarkInodeDirty(ino);
  } else {
    const int which = static_cast<int>((index - kDirectPtrs) /
                                       kPtrsPerIndirect);
    auto& node = inodes_[ino];
    if (node.indirect[which] == 0) {
      auto ind = AllocBlock();
      if (!ind.ok()) {
        return ind;
      }
      node.indirect[which] = *ind;
      indirect_owner_[*ind] = {ino, which};
      MarkInodeDirty(ino);
    }
    dirty_meta_.insert(node.indirect[which]);
  }
  return block;
}

void MiniFs::ReleaseInodeBlocks(uint32_t ino) {
  for (const uint64_t b : blocklists_[ino]) {
    FreeBlock(b);
  }
  blocklists_[ino].clear();
  auto& node = inodes_[ino];
  for (int w = 0; w < 2; w++) {
    if (node.indirect[w] != 0) {
      dirty_meta_.erase(node.indirect[w]);
      indirect_owner_.erase(node.indirect[w]);
      FreeBlock(node.indirect[w]);
      node.indirect[w] = 0;
    }
  }
  MarkInodeDirty(ino);
}

Buffer MiniFs::SerializeInodeBlock(uint64_t index) const {
  Encoder enc;
  for (uint64_t i = 0; i < kInodesPerBlock; i++) {
    const uint64_t ino = index * kInodesPerBlock + i;
    const Inode node = ino < inodes_.size() ? inodes_[ino] : Inode{};
    enc.PutU32(node.type);
    enc.PutU64(node.size);
    enc.PutU32(node.content_crc);
    for (uint64_t d = 0; d < kDirectPtrs; d++) {
      const auto& list =
          ino < blocklists_.size() ? blocklists_[ino] : std::vector<uint64_t>{};
      enc.PutU64(d < list.size() ? list[d] : 0);
    }
    enc.PutU64(node.indirect[0]);
    enc.PutU64(node.indirect[1]);
  }
  assert(enc.size() == kBlockSize);
  return Buffer::FromBytes(enc.bytes());
}

Buffer MiniFs::SerializeBitmapBlock(uint64_t index) const {
  std::vector<uint8_t> bytes(kBlockSize, 0);
  const uint64_t base = index * kBlockSize;
  for (uint64_t i = 0; i < kBlockSize && base + i < bitmap_.size(); i++) {
    bytes[i] = bitmap_[base + i];
  }
  return Buffer::FromBytes(bytes);
}

Buffer MiniFs::SerializeDirBlock(uint64_t index) const {
  Encoder enc;
  for (uint64_t s = 0; s < kDirentsPerBlock; s++) {
    const uint64_t slot = index * kDirentsPerBlock + s;
    const size_t start = enc.size();
    if (slot < dir_slots_.size() && dir_slots_[slot].second != 0) {
      const auto& [name, ino] = dir_slots_[slot];
      enc.PutU32(ino);
      enc.PutU8(1);
      enc.PutU8(static_cast<uint8_t>(name.size()));
      enc.PutBytes({reinterpret_cast<const uint8_t*>(name.data()),
                    name.size()});
    }
    while (enc.size() - start < kDirentSize) {
      enc.PutU8(0);
    }
  }
  assert(enc.size() == kBlockSize);
  return Buffer::FromBytes(enc.bytes());
}

Buffer MiniFs::SerializeIndirectBlock(uint32_t ino, int which) const {
  Encoder enc;
  const auto& list = blocklists_[ino];
  const uint64_t base = kDirectPtrs +
                        static_cast<uint64_t>(which) * kPtrsPerIndirect;
  for (uint64_t i = 0; i < kPtrsPerIndirect; i++) {
    enc.PutU64(base + i < list.size() ? list[base + i] : 0);
  }
  assert(enc.size() == kBlockSize);
  return Buffer::FromBytes(enc.bytes());
}

Buffer MiniFs::SerializeMetaBlock(uint64_t block) const {
  if (block >= geo_.inode_start && block < geo_.inode_start + geo_.inode_blocks) {
    return SerializeInodeBlock(block - geo_.inode_start);
  }
  if (block >= geo_.bitmap_start &&
      block < geo_.bitmap_start + geo_.bitmap_blocks) {
    return SerializeBitmapBlock(block - geo_.bitmap_start);
  }
  if (auto it = indirect_owner_.find(block); it != indirect_owner_.end()) {
    return SerializeIndirectBlock(it->second.first, it->second.second);
  }
  // Otherwise it must be a root-directory data block.
  const auto& dir = blocklists_[0];
  for (uint64_t i = 0; i < dir.size(); i++) {
    if (dir[i] == block) {
      return SerializeDirBlock(i);
    }
  }
  assert(false && "dirty metadata block of unknown kind");
  return Buffer::Zeros(kBlockSize);
}

// ---------------------------------------------------------------------------
// Directory

Status MiniFs::DirInsert(const std::string& name, uint32_t ino) {
  if (name.empty() || name.size() > kMaxName) {
    return Status::InvalidArgument("minifs name invalid");
  }
  if (dir_.contains(name)) {
    return Status::InvalidArgument("minifs file exists");
  }
  uint64_t slot = dir_slots_.size();
  for (uint64_t i = 0; i < dir_slots_.size(); i++) {
    if (dir_slots_[i].second == 0) {
      slot = i;
      break;
    }
  }
  const uint64_t need_blocks = slot / kDirentsPerBlock + 1;
  while (blocklists_[0].size() < need_blocks) {
    auto block = AppendBlockTo(0);
    if (!block.ok()) {
      return block.status();
    }
  }
  if (slot == dir_slots_.size()) {
    dir_slots_.push_back({name, ino});
  } else {
    dir_slots_[slot] = {name, ino};
  }
  dir_[name] = ino;
  dirty_meta_.insert(blocklists_[0][slot / kDirentsPerBlock]);
  inodes_[0].size = dir_slots_.size() * kDirentSize;
  MarkInodeDirty(0);
  return Status::Ok();
}

void MiniFs::DirErase(const std::string& name) {
  auto it = dir_.find(name);
  if (it == dir_.end()) {
    return;
  }
  for (uint64_t i = 0; i < dir_slots_.size(); i++) {
    if (dir_slots_[i].second == it->second && dir_slots_[i].first == name) {
      dir_slots_[i] = {"", 0};
      dirty_meta_.insert(blocklists_[0][i / kDirentsPerBlock]);
      break;
    }
  }
  dir_.erase(it);
}

std::vector<std::string> MiniFs::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(dir_.size());
  for (const auto& [name, ino] : dir_) {
    names.push_back(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// File operations

void MiniFs::CreateFile(const std::string& name, Buffer content,
                        std::function<void(Status)> done) {
  auto ino = AllocInode();
  if (!ino.ok()) {
    done(ino.status());
    return;
  }
  if (static_cast<size_t>(std::max<uint64_t>(blocklists_.size(), *ino + 1)) >
      blocklists_.size()) {
    blocklists_.resize(*ino + 1);
  }

  const uint64_t size = content.size();
  Buffer padded = content;
  if (size % kBlockSize != 0) {
    padded.AppendZeros(kBlockSize - size % kBlockSize);
  }
  const uint64_t nblocks = padded.size() / kBlockSize;

  std::vector<std::pair<uint64_t, Buffer>> writes;
  for (uint64_t b = 0; b < nblocks; b++) {
    auto block = AppendBlockTo(*ino);
    if (!block.ok()) {
      ReleaseInodeBlocks(*ino);
      inodes_[*ino] = Inode{};
      done(block.status());
      return;
    }
    writes.push_back({*block, padded.Slice(b * kBlockSize, kBlockSize)});
  }
  std::sort(writes.begin(), writes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Inode& node = inodes_[*ino];
  node.type = 1;
  node.size = size;
  node.content_crc = content.Crc();
  MarkInodeDirty(*ino);
  const Status dir_status = DirInsert(name, *ino);
  if (!dir_status.ok()) {
    ReleaseInodeBlocks(*ino);
    inodes_[*ino] = Inode{};
    done(dir_status);
    return;
  }

  // Ordered mode: data goes to disk now; metadata waits for the journal.
  auto alive = alive_;
  WriteBlocksBatched(disk_, writes,
                     [alive, done = std::move(done)](Status s) {
    if (*alive) {
      done(s);
    }
  });
}

void MiniFs::DeleteFile(const std::string& name,
                        std::function<void(Status)> done) {
  auto it = dir_.find(name);
  if (it == dir_.end()) {
    done(Status::NotFound(name));
    return;
  }
  const uint32_t ino = it->second;
  DirErase(name);
  ReleaseInodeBlocks(ino);
  inodes_[ino] = Inode{};
  MarkInodeDirty(ino);
  auto alive = alive_;
  sim_->After(0, [alive, done = std::move(done)]() {
    if (*alive) {
      done(Status::Ok());
    }
  });
}

void MiniFs::ReadFile(const std::string& name,
                      std::function<void(Result<Buffer>)> done) {
  auto it = dir_.find(name);
  if (it == dir_.end()) {
    done(Status::NotFound(name));
    return;
  }
  const uint32_t ino = it->second;
  const Inode& node = inodes_[ino];
  const auto& list = blocklists_[ino];
  if (list.empty()) {
    done(Buffer());
    return;
  }

  auto parts = std::make_shared<std::vector<Buffer>>(list.size());
  auto remaining = std::make_shared<size_t>(list.size());
  auto failed = std::make_shared<bool>(false);
  auto alive = alive_;
  const uint64_t size = node.size;
  for (size_t i = 0; i < list.size(); i++) {
    disk_->Read(list[i] * kBlockSize, kBlockSize,
                [alive, parts, remaining, failed, i, size,
                 done](Result<Buffer> r) {
      if (!*alive) {
        return;
      }
      if (r.ok()) {
        (*parts)[i] = std::move(r).value();
      } else if (!*failed) {
        *failed = true;
        done(r.status());
      }
      if (--*remaining == 0 && !*failed) {
        Buffer whole;
        for (auto& p : *parts) {
          whole.Append(p);
        }
        done(whole.Slice(0, size));
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Journal commit

void MiniFs::Fsync(std::function<void(Status)> done) {
  assert(!commit_in_flight_ && "minifs operations must be serialized");
  Commit(std::move(done));
}

void MiniFs::Commit(std::function<void(Status)> done) {
  if (dirty_meta_.empty()) {
    auto alive = alive_;
    disk_->Flush([alive, done = std::move(done)](Status s) {
      if (*alive) {
        done(s);
      }
    });
    return;
  }
  commit_in_flight_ = true;

  // Snapshot the dirty set and serialize the metadata now. Blocks freed up
  // to this point become reusable once this commit is durable.
  auto unblock = std::make_shared<std::vector<uint64_t>>(
      std::move(pending_unblock_));
  pending_unblock_.clear();
  std::vector<uint64_t> targets(dirty_meta_.begin(), dirty_meta_.end());
  dirty_meta_.clear();
  auto checkpoint =
      std::make_shared<std::vector<std::pair<uint64_t, Buffer>>>();
  for (const uint64_t b : targets) {
    checkpoint->push_back({b, SerializeMetaBlock(b)});
  }

  // Build the journal image: one or more transactions.
  Buffer image;
  uint64_t blocks_needed = 0;
  size_t index = 0;
  while (index < targets.size()) {
    const uint64_t count =
        std::min<uint64_t>(kMaxTxnBlocks, targets.size() - index);
    const uint64_t txid = next_txid_++;
    Encoder desc;
    desc.PutU32(kDescMagic);
    desc.PutU64(txid);
    desc.PutU32(static_cast<uint32_t>(count));
    const size_t crc_pos = desc.size();
    desc.PutU32(0);
    for (uint64_t i = 0; i < count; i++) {
      desc.PutU64(targets[index + i]);
    }
    desc.PadTo(kBlockSize);
    auto desc_bytes = desc.Take();
    const uint32_t desc_crc = Crc32c(desc_bytes.data(), desc_bytes.size());
    for (int i = 0; i < 4; i++) {
      desc_bytes[crc_pos + static_cast<size_t>(i)] =
          static_cast<uint8_t>(desc_crc >> (8 * i));
    }
    image.AppendBytes(desc_bytes);

    Buffer copies;
    for (uint64_t i = 0; i < count; i++) {
      copies.Append((*checkpoint)[index + i].second);
    }
    const uint32_t data_crc = copies.Crc();
    image.Append(copies);

    Encoder commit;
    commit.PutU32(kCommitMagic);
    commit.PutU64(txid);
    commit.PutU32(static_cast<uint32_t>(count));
    commit.PutU32(data_crc);
    commit.PadTo(kBlockSize);
    image.AppendBytes(commit.bytes());

    blocks_needed += 2 + count;
    index += count;
  }

  assert(blocks_needed <= geo_.journal_blocks && "journal too small");
  if (journal_head_ + blocks_needed > geo_.journal_blocks) {
    journal_head_ = 0;  // wrap; prior transactions are checkpointed
  }
  const uint64_t at = (geo_.journal_start + journal_head_) * kBlockSize;
  journal_head_ += blocks_needed;

  auto alive = alive_;
  disk_->Write(at, std::move(image),
               [this, alive, checkpoint, unblock,
                done = std::move(done)](Status s) mutable {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      commit_in_flight_ = false;
      done(s);
      return;
    }
    // The barrier makes the transaction durable; then checkpoint in place.
    disk_->Flush([this, alive, checkpoint, unblock,
                  done = std::move(done)](Status s2) mutable {
      if (!*alive) {
        return;
      }
      if (!s2.ok()) {
        commit_in_flight_ = false;
        done(s2);
        return;
      }
      // The frees are durable: the blocks may be reused.
      for (const uint64_t i : *unblock) {
        reuse_blocked_.erase(i);
      }
      if (discard_enabled_ && !unblock->empty()) {
        // Pass the frees down as discards, coalesced into contiguous
        // ranges. Fire-and-forget: a lost discard only costs space, and it
        // is safe now — a crash replays this (committed) transaction, so
        // the blocks can never roll back into a live file.
        std::sort(unblock->begin(), unblock->end());
        size_t i = 0;
        while (i < unblock->size()) {
          size_t j = i + 1;
          while (j < unblock->size() &&
                 (*unblock)[j] == (*unblock)[j - 1] + 1) {
            j++;
          }
          disk_->Trim((geo_.data_start + (*unblock)[i]) * kBlockSize,
                      (j - i) * kBlockSize, [](Status) {});
          i = j;
        }
      }
      WriteBlocksBatched(disk_, *checkpoint,
                         [this, alive, done = std::move(done)](Status s3) {
        if (!*alive) {
          return;
        }
        commit_in_flight_ = false;
        done(s3);
      });
    });
  });
}

// ---------------------------------------------------------------------------
// Mount / Fsck

struct MiniFsInternal {
  using LoadDone = std::function<void(Result<std::shared_ptr<MiniFs>>,
                                      MiniFs::FsckReport)>;

  // Parses one journal transaction at block `pos` of the journal buffer.
  static bool ParseTxn(const std::vector<uint8_t>& journal, uint64_t pos,
                       uint64_t journal_blocks, uint64_t* txid,
                       std::map<uint64_t, Buffer>* updates, uint64_t* next) {
    if (pos + 2 > journal_blocks) {
      return false;
    }
    const uint8_t* desc = journal.data() + pos * kBlockSize;
    Decoder dec({desc, kBlockSize});
    if (dec.GetU32() != kDescMagic) {
      return false;
    }
    *txid = dec.GetU64();
    const uint32_t count = dec.GetU32();
    const size_t crc_pos = dec.position();
    const uint32_t desc_crc = dec.GetU32();
    if (count == 0 || count > kMaxTxnBlocks ||
        pos + 2 + count > journal_blocks) {
      return false;
    }
    std::vector<uint8_t> check(desc, desc + kBlockSize);
    for (int i = 0; i < 4; i++) {
      check[crc_pos + static_cast<size_t>(i)] = 0;
    }
    if (Crc32c(check.data(), check.size()) != desc_crc) {
      return false;
    }
    std::vector<uint64_t> targets;
    for (uint32_t i = 0; i < count; i++) {
      targets.push_back(dec.GetU64());
    }
    if (!dec.ok()) {
      return false;
    }
    const uint8_t* commit = journal.data() + (pos + 1 + count) * kBlockSize;
    Decoder cdec({commit, kBlockSize});
    if (cdec.GetU32() != kCommitMagic || cdec.GetU64() != *txid ||
        cdec.GetU32() != count) {
      return false;
    }
    const uint32_t data_crc = cdec.GetU32();
    const uint8_t* copies = journal.data() + (pos + 1) * kBlockSize;
    if (Crc32c(copies, count * kBlockSize) != data_crc) {
      return false;
    }
    for (uint32_t i = 0; i < count; i++) {
      (*updates)[targets[i]] =
          Buffer::FromBytes({copies + i * kBlockSize, kBlockSize});
    }
    *next = pos + 2 + count;
    return true;
  }

  // Scans the whole journal region; committed transactions are merged in
  // ascending-txid order (later transactions win per block).
  static std::map<uint64_t, Buffer> ReplayJournal(
      const std::vector<uint8_t>& journal, uint64_t journal_blocks,
      uint64_t* max_txid) {
    std::map<uint64_t, std::map<uint64_t, Buffer>> txns;
    uint64_t pos = 0;
    while (pos < journal_blocks) {
      uint64_t txid = 0;
      uint64_t next = 0;
      std::map<uint64_t, Buffer> updates;
      if (ParseTxn(journal, pos, journal_blocks, &txid, &updates, &next)) {
        *max_txid = std::max(*max_txid, txid);
        txns[txid] = std::move(updates);
        pos = next;
      } else {
        pos++;
      }
    }
    std::map<uint64_t, Buffer> merged;
    for (auto& [txid, updates] : txns) {
      for (auto& [block, content] : updates) {
        merged[block] = std::move(content);
      }
    }
    return merged;
  }

  // Fetches a set of blocks, consulting journal overrides before the disk.
  static void FetchBlocks(
      VirtualDisk* disk, const std::map<uint64_t, Buffer>& overrides,
      std::vector<uint64_t> blocks,
      std::function<void(Result<std::map<uint64_t, Buffer>>)> done) {
    auto out = std::make_shared<std::map<uint64_t, Buffer>>();
    std::vector<uint64_t> need;
    for (const uint64_t b : blocks) {
      if (auto it = overrides.find(b); it != overrides.end()) {
        (*out)[b] = it->second;
      } else {
        need.push_back(b);
      }
    }
    if (need.empty()) {
      done(std::move(*out));
      return;
    }
    auto remaining = std::make_shared<size_t>(need.size());
    auto failed = std::make_shared<bool>(false);
    for (const uint64_t b : need) {
      disk->Read(b * kBlockSize, kBlockSize,
                 [out, remaining, failed, b, done](Result<Buffer> r) {
        if (!r.ok() && !*failed) {
          *failed = true;
          done(r.status());
        }
        if (r.ok()) {
          (*out)[b] = std::move(r).value();
        }
        if (--*remaining == 0 && !*failed) {
          done(std::move(*out));
        }
      });
    }
  }

  static void Load(Simulator* sim, VirtualDisk* disk, bool full_check,
                   LoadDone done);
  static void FinishLoad(Simulator* sim, VirtualDisk* disk, bool full_check,
                         SuperBlock sb,
                         std::shared_ptr<std::map<uint64_t, Buffer>> overrides,
                         uint64_t max_txid, Buffer inode_region,
                         Buffer bitmap_region,
                         std::shared_ptr<MiniFs::FsckReport> report,
                         LoadDone done);
  static void VerifyFiles(std::shared_ptr<MiniFs> fs,
                          std::shared_ptr<MiniFs::FsckReport> report,
                          std::shared_ptr<std::vector<std::string>> names,
                          size_t index, std::function<void()> done);
};

void MiniFsInternal::Load(Simulator* sim, VirtualDisk* disk, bool full_check,
                          LoadDone done) {
  auto report = std::make_shared<MiniFs::FsckReport>();
  auto fail = [done, report](Status s) {
    report->mountable = false;
    report->structurally_clean = false;
    report->errors.push_back(s.ToString());
    done(s, *report);
  };

  disk->Read(0, kBlockSize, [=](Result<Buffer> r) {
    if (!r.ok()) {
      fail(r.status());
      return;
    }
    SuperBlock sb;
    if (Status s = DecodeSuper(*r, &sb); !s.ok()) {
      fail(s);
      return;
    }
    if (sb.total_blocks * kBlockSize > disk->size()) {
      fail(Status::Corruption("minifs superblock larger than device"));
      return;
    }
    disk->Read(sb.journal_start * kBlockSize, sb.journal_blocks * kBlockSize,
               [=](Result<Buffer> jr) {
      if (!jr.ok()) {
        fail(jr.status());
        return;
      }
      const std::vector<uint8_t> journal = jr->ToBytes();
      uint64_t max_txid = 0;
      auto overrides = std::make_shared<std::map<uint64_t, Buffer>>(
          ReplayJournal(journal, sb.journal_blocks, &max_txid));
      disk->Read(sb.inode_start * kBlockSize, sb.inode_blocks * kBlockSize,
                 [=](Result<Buffer> ir) {
        if (!ir.ok()) {
          fail(ir.status());
          return;
        }
        Buffer inode_region = std::move(ir).value();
        disk->Read(sb.bitmap_start * kBlockSize,
                   sb.bitmap_blocks * kBlockSize,
                   [=, inode_region = std::move(inode_region)](
                       Result<Buffer> br) mutable {
          if (!br.ok()) {
            fail(br.status());
            return;
          }
          FinishLoad(sim, disk, full_check, sb, overrides, max_txid,
                     std::move(inode_region), std::move(br).value(), report,
                     done);
        });
      });
    });
  });
}

void MiniFsInternal::FinishLoad(
    Simulator* sim, VirtualDisk* disk, bool full_check, SuperBlock sb,
    std::shared_ptr<std::map<uint64_t, Buffer>> overrides, uint64_t max_txid,
    Buffer inode_region, Buffer bitmap_region,
    std::shared_ptr<MiniFs::FsckReport> report, LoadDone done) {
  auto fs = std::shared_ptr<MiniFs>(new MiniFs(sim, disk));
  fs->geo_.total_blocks = sb.total_blocks;
  fs->geo_.journal_start = sb.journal_start;
  fs->geo_.journal_blocks = sb.journal_blocks;
  fs->geo_.inode_start = sb.inode_start;
  fs->geo_.inode_blocks = sb.inode_blocks;
  fs->geo_.bitmap_start = sb.bitmap_start;
  fs->geo_.bitmap_blocks = sb.bitmap_blocks;
  fs->geo_.data_start = sb.data_start;
  fs->next_txid_ = max_txid + 1;
  fs->journal_head_ = 0;

  // Region accessor honoring journal overrides.
  auto region_block = [&](uint64_t block, uint64_t region_start,
                          const Buffer& region) {
    if (auto it = overrides->find(block); it != overrides->end()) {
      return it->second;
    }
    return region.Slice((block - region_start) * kBlockSize, kBlockSize);
  };

  // Bitmap.
  const uint64_t data_blocks = sb.total_blocks - sb.data_start;
  fs->bitmap_.assign(data_blocks, 0);
  for (uint64_t b = 0; b < sb.bitmap_blocks; b++) {
    auto bytes =
        region_block(sb.bitmap_start + b, sb.bitmap_start, bitmap_region)
            .ToBytes();
    for (uint64_t i = 0; i < kBlockSize; i++) {
      const uint64_t idx = b * kBlockSize + i;
      if (idx < data_blocks) {
        fs->bitmap_[idx] = bytes[i] != 0 ? 1 : 0;
      }
    }
  }

  // Inodes (pointer fields parsed; block lists resolved after indirect
  // blocks are fetched).
  const uint64_t inode_count = sb.inode_blocks * kInodesPerBlock;
  fs->inodes_.assign(inode_count, MiniFs::Inode{});
  fs->blocklists_.assign(inode_count, {});
  struct RawInode {
    std::vector<uint64_t> direct;
  };
  std::vector<RawInode> raw(inode_count);
  std::vector<uint64_t> indirect_fetch;
  auto block_in_range = [&](uint64_t b) {
    return b >= sb.data_start && b < sb.total_blocks;
  };

  bool root_ok = true;
  for (uint64_t b = 0; b < sb.inode_blocks; b++) {
    auto bytes =
        region_block(sb.inode_start + b, sb.inode_start, inode_region)
            .ToBytes();
    Decoder dec(bytes);
    for (uint64_t i = 0; i < kInodesPerBlock; i++) {
      const uint64_t ino = b * kInodesPerBlock + i;
      MiniFs::Inode& node = fs->inodes_[ino];
      node.type = dec.GetU32();
      node.size = dec.GetU64();
      node.content_crc = dec.GetU32();
      for (uint64_t d = 0; d < kDirectPtrs; d++) {
        raw[ino].direct.push_back(dec.GetU64());
      }
      node.indirect[0] = dec.GetU64();
      node.indirect[1] = dec.GetU64();
      if (node.type > 2 || (ino == 0 && node.type != 2)) {
        root_ok = ino != 0 && root_ok;
        if (ino == 0) {
          report->errors.push_back("root inode invalid");
        } else {
          report->structurally_clean = false;
          report->errors.push_back("inode type invalid");
          node = MiniFs::Inode{};
        }
      }
      for (int w = 0; w < 2 && node.type != 0; w++) {
        if (node.indirect[w] != 0) {
          if (!block_in_range(node.indirect[w])) {
            report->structurally_clean = false;
            report->errors.push_back("indirect pointer out of range");
            node.indirect[w] = 0;
          } else {
            indirect_fetch.push_back(node.indirect[w]);
            fs->indirect_owner_[node.indirect[w]] = {
                static_cast<uint32_t>(ino), w};
          }
        }
      }
    }
  }
  if (!root_ok) {
    report->mountable = false;
    done(Status::Corruption("minifs root inode unusable"), *report);
    return;
  }

  FetchBlocks(disk, *overrides, indirect_fetch,
              [=, raw = std::move(raw)](
                  Result<std::map<uint64_t, Buffer>> fetched) mutable {
    if (!fetched.ok()) {
      report->mountable = false;
      done(fetched.status(), *report);
      return;
    }
    // Resolve per-inode block lists.
    for (uint64_t ino = 0; ino < fs->inodes_.size(); ino++) {
      MiniFs::Inode& node = fs->inodes_[ino];
      if (node.type == 0) {
        continue;
      }
      const uint64_t want_blocks =
          node.type == 2
              ? (node.size / kDirentSize + kDirentsPerBlock - 1) /
                    kDirentsPerBlock
              : (node.size + kBlockSize - 1) / kBlockSize;
      std::vector<uint64_t> pointers = raw[ino].direct;
      for (int w = 0; w < 2; w++) {
        if (node.indirect[w] == 0) {
          continue;
        }
        auto bytes = fetched->at(node.indirect[w]).ToBytes();
        Decoder dec(bytes);
        for (uint64_t i = 0; i < kPtrsPerIndirect; i++) {
          pointers.push_back(dec.GetU64());
        }
      }
      bool ok = want_blocks <= pointers.size();
      for (uint64_t i = 0; ok && i < want_blocks; i++) {
        if (!block_in_range(pointers[i])) {
          ok = false;
        }
      }
      if (!ok) {
        if (ino == 0) {
          report->mountable = false;
          report->errors.push_back("root directory blocks invalid");
          done(Status::Corruption("minifs root directory unusable"), *report);
          return;
        }
        report->structurally_clean = false;
        report->files_corrupt++;
        report->errors.push_back("file block pointers invalid");
        fs->inodes_[ino] = MiniFs::Inode{};
        continue;
      }
      fs->blocklists_[ino].assign(pointers.begin(),
                                  pointers.begin() +
                                      static_cast<ptrdiff_t>(want_blocks));
    }

    // Fetch and parse the root directory.
    FetchBlocks(disk, *overrides, fs->blocklists_[0],
                [=](Result<std::map<uint64_t, Buffer>> dir_blocks) {
      if (!dir_blocks.ok()) {
        report->mountable = false;
        done(dir_blocks.status(), *report);
        return;
      }
      const uint64_t slots = fs->inodes_[0].size / kDirentSize;
      fs->dir_slots_.assign(slots, {"", 0});
      for (uint64_t s = 0; s < slots; s++) {
        const uint64_t block = fs->blocklists_[0][s / kDirentsPerBlock];
        auto bytes = dir_blocks->at(block).ToBytes();
        const uint8_t* ent = bytes.data() + (s % kDirentsPerBlock) * kDirentSize;
        Decoder dec({ent, kDirentSize});
        const uint32_t ino = dec.GetU32();
        const uint8_t used = dec.GetU8();
        const uint8_t len = dec.GetU8();
        if (used == 0 || ino == 0) {
          continue;
        }
        std::string name(reinterpret_cast<const char*>(ent + 6),
                         std::min<size_t>(len, kMaxName));
        bool entry_ok = len <= kMaxName && ino < fs->inodes_.size() &&
                        fs->inodes_[ino].type == 1 && !fs->dir_.contains(name);
        if (!entry_ok) {
          report->structurally_clean = false;
          report->files_corrupt++;
          report->errors.push_back("directory entry invalid: " + name);
          continue;
        }
        fs->dir_slots_[s] = {name, ino};
        fs->dir_[name] = ino;
      }
      report->mountable = true;
      report->files_found = fs->dir_.size();

      // Recovery checkpoint: write replayed metadata in place + barrier.
      std::vector<std::pair<uint64_t, Buffer>> checkpoint(
          overrides->begin(), overrides->end());
      WriteBlocksBatched(disk, checkpoint, [=](Status s) {
        if (!s.ok()) {
          report->mountable = false;
          done(s, *report);
          return;
        }
        fs->disk_->Flush([=](Status s2) {
          if (!s2.ok()) {
            report->mountable = false;
            done(s2, *report);
            return;
          }
          if (!full_check) {
            done(fs, *report);
            return;
          }
          auto names = std::make_shared<std::vector<std::string>>(
              fs->ListFiles());
          VerifyFiles(fs, report, names, 0, [=]() { done(fs, *report); });
        });
      });
    });
  });
}

void MiniFsInternal::VerifyFiles(
    std::shared_ptr<MiniFs> fs, std::shared_ptr<MiniFs::FsckReport> report,
    std::shared_ptr<std::vector<std::string>> names, size_t index,
    std::function<void()> done) {
  if (index >= names->size()) {
    done();
    return;
  }
  const std::string& name = (*names)[index];
  fs->ReadFile(name, [=](Result<Buffer> r) {
    const uint32_t ino = fs->dir_.at(name);
    if (!r.ok() || r->Crc() != fs->inodes_[ino].content_crc) {
      report->files_corrupt++;
      report->errors.push_back("file content damaged: " + name);
    } else {
      report->files_intact++;
    }
    VerifyFiles(fs, report, names, index + 1, std::move(done));
  });
}

void MiniFs::Mount(Simulator* sim, VirtualDisk* disk,
                   std::function<void(Result<std::shared_ptr<MiniFs>>)> done) {
  MiniFsInternal::Load(sim, disk, /*full_check=*/false,
                       [done = std::move(done)](
                           Result<std::shared_ptr<MiniFs>> fs,
                           FsckReport) { done(std::move(fs)); });
}

void MiniFs::Fsck(Simulator* sim, VirtualDisk* disk,
                  std::function<void(FsckReport)> done) {
  MiniFsInternal::Load(sim, disk, /*full_check=*/true,
                       [done = std::move(done)](
                           Result<std::shared_ptr<MiniFs>> fs,
                           FsckReport report) {
                         if (fs.ok()) {
                           (*fs)->Kill();
                         }
                         done(std::move(report));
                       });
}

}  // namespace lsvd
