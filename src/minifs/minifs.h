// minifs: a small journaled filesystem over a VirtualDisk.
//
// Stand-in for the ext4 filesystem used in the paper's crash tests
// (Table 4): the experiment only needs "does the recovered image mount?" and
// "does fsck find damage / lose files?", which requires a filesystem whose
// consistency depends on write ordering the same way ext4's does.
//
// Design (all 4 KiB blocks):
//   block 0          superblock (geometry, CRC)
//   journal region   physical metadata journal: transactions of
//                    [descriptor | metadata block copies... | commit],
//                    each CRC-protected with a monotonic transaction id
//   inode table      128-byte inodes (type, size, content CRC, 12 direct
//                    block pointers, 2 indirect pointers)
//   block bitmap     data-area allocation bitmap
//   data region      directory blocks and file data
//
// Ordered-mode journaling: file data is written in place first; metadata
// (inodes, bitmap, directory blocks) is only modified in memory and made
// durable by Fsync(), which appends a journal transaction, issues a disk
// commit barrier, and then checkpoints the metadata in place. Mount replays
// committed transactions in id order. Fsck additionally verifies structural
// invariants and per-file content CRCs, counting intact vs lost files.
//
// Concurrency: one filesystem operation at a time (callers serialize), which
// matches how the crash-test workload drives it.
#ifndef SRC_MINIFS_MINIFS_H_
#define SRC_MINIFS_MINIFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/blockdev/virtual_disk.h"
#include "src/sim/simulator.h"

namespace lsvd {

struct MiniFsGeometry {
  uint32_t max_files = 100000;
  uint64_t journal_bytes = 4 * kMiB;
};

class MiniFs {
 public:
  // Writes a fresh filesystem onto the disk.
  static void Format(Simulator* sim, VirtualDisk* disk, MiniFsGeometry geo,
                     std::function<void(Status)> done);

  // Loads the filesystem: superblock, journal replay, metadata. Fails with
  // kCorruption if the image is not mountable.
  static void Mount(Simulator* sim, VirtualDisk* disk,
                    std::function<void(Result<std::shared_ptr<MiniFs>>)> done);

  struct FsckReport {
    bool mountable = false;
    bool structurally_clean = true;  // bitmaps/inodes/directory consistent
    uint64_t files_found = 0;
    uint64_t files_intact = 0;   // content CRC matches
    uint64_t files_corrupt = 0;  // structure or content damaged
    std::vector<std::string> errors;

    bool clean() const {
      return mountable && structurally_clean && files_corrupt == 0;
    }
  };
  // Full check: mount + structural invariants + per-file content CRCs.
  static void Fsck(Simulator* sim, VirtualDisk* disk,
                   std::function<void(FsckReport)> done);

  // --- file operations (one at a time) ---
  // Creates a file with the given content (data blocks written in place,
  // metadata buffered until the next Fsync).
  void CreateFile(const std::string& name, Buffer content,
                  std::function<void(Status)> done);
  void DeleteFile(const std::string& name, std::function<void(Status)> done);
  void ReadFile(const std::string& name,
                std::function<void(Result<Buffer>)> done);
  // Journal commit + disk barrier; acknowledged files survive a crash.
  void Fsync(std::function<void(Status)> done);

  std::vector<std::string> ListFiles() const;
  uint64_t file_count() const { return dir_.size(); }

  // Enables TRIM/discard on file delete: once a freeing transaction is
  // durable, the freed data blocks are discarded on the underlying disk
  // (coalesced into contiguous ranges, fire-and-forget — like ext4's
  // `discard` mount option). Off by default.
  void EnableDiscard() { discard_enabled_ = true; }

  ~MiniFs();
  void Kill() { *alive_ = false; }

 private:
  friend struct MiniFsInternal;
  MiniFs(Simulator* sim, VirtualDisk* disk);

  struct Inode {
    uint32_t type = 0;  // 0 free, 1 file, 2 directory
    uint64_t size = 0;
    uint32_t content_crc = 0;
    // On-disk pointer fields; in memory the full block list lives in
    // blocklists_ and these are derived at serialization time.
    uint64_t indirect[2] = {};
  };

  struct Geometry {
    uint64_t total_blocks = 0;
    uint64_t journal_start = 0;
    uint64_t journal_blocks = 0;
    uint64_t inode_start = 0;
    uint64_t inode_blocks = 0;
    uint64_t bitmap_start = 0;
    uint64_t bitmap_blocks = 0;
    uint64_t data_start = 0;
  };

  // Block-level helpers.
  Result<uint64_t> AllocBlock();
  void FreeBlock(uint64_t block);
  Result<uint32_t> AllocInode();
  void MarkInodeDirty(uint32_t ino);
  void MarkBitmapDirty(uint64_t data_block_index);
  // Grows inode `ino`'s block list by one block (allocating indirect blocks
  // as needed) and marks the involved metadata dirty.
  Result<uint64_t> AppendBlockTo(uint32_t ino);
  void ReleaseInodeBlocks(uint32_t ino);

  Buffer SerializeInodeBlock(uint64_t index) const;
  Buffer SerializeBitmapBlock(uint64_t index) const;
  Buffer SerializeDirBlock(uint64_t index) const;
  Buffer SerializeIndirectBlock(uint32_t ino, int which) const;
  Buffer SerializeMetaBlock(uint64_t block) const;
  void Commit(std::function<void(Status)> done);

  // Directory (root only; flat namespace like the paper's copied tree).
  Status DirInsert(const std::string& name, uint32_t ino);
  void DirErase(const std::string& name);

  Simulator* sim_;
  VirtualDisk* disk_;
  Geometry geo_;

  std::vector<Inode> inodes_;
  std::vector<std::vector<uint64_t>> blocklists_;  // per-inode data blocks
  std::vector<uint8_t> bitmap_;  // one byte per data block (simple, fast)
  // Ordered-mode rule: a freed block must not be reused until the freeing
  // transaction commits, or an in-place write could corrupt a file that a
  // crash (or unmounted tail) would roll back into existence.
  std::set<uint64_t> reuse_blocked_;     // data-block indices
  std::vector<uint64_t> pending_unblock_;  // unblocked when the commit lands
  std::map<std::string, uint32_t> dir_;  // name -> inode
  std::vector<std::pair<std::string, uint32_t>> dir_slots_;  // slot layout
  std::map<uint64_t, std::pair<uint32_t, int>> indirect_owner_;

  std::set<uint64_t> dirty_meta_;  // absolute block numbers needing commit
  uint64_t next_txid_ = 1;
  uint64_t journal_head_ = 0;  // block offset within the journal region
  bool commit_in_flight_ = false;
  bool discard_enabled_ = false;  // see EnableDiscard()

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace lsvd

#endif  // SRC_MINIFS_MINIFS_H_
