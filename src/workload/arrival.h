// Open-loop arrival processes for the workload driver (DESIGN.md §12).
//
// Closed-loop drivers (fixed queue depth) measure service time: offered load
// collapses to whatever the system can complete. Production virtual-disk
// traffic is open-loop — clients issue when *they* decide, and under load
// the queue, not the device, sets p99/p99.9. ArrivalProcess generates the
// arrival timestamps: a Poisson process at a configurable mean rate, with
// optional deterministic rate modulation (a diurnal sine or a periodic
// on/off burst) applied by thinning, so the sequence is exactly reproducible
// from the seed.
#ifndef SRC_WORKLOAD_ARRIVAL_H_
#define SRC_WORKLOAD_ARRIVAL_H_

#include <cstdint>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace lsvd {

struct ArrivalConfig {
  enum class Profile {
    kConstant,  // homogeneous Poisson at `rate`
    kDiurnal,   // rate * (1 + depth * sin(2*pi * t / period))
    kBurst,     // rate, except `multiplier` * rate during periodic bursts
  };
  Profile profile = Profile::kConstant;
  double rate = 1000.0;  // mean arrivals per second (long-run average shape)

  // kDiurnal: one "day" compressed into `period`; depth in [0, 1).
  Nanos period = 10 * kSecond;
  double depth = 0.5;

  // kBurst: every `period`, the first `burst_duration` runs at
  // rate * multiplier; the remainder of the period runs at `rate`.
  Nanos burst_duration = kSecond;
  double multiplier = 8.0;

  uint64_t seed = 1;
};

// Deterministic generator of monotone arrival timestamps. Time-varying
// profiles use thinning: candidates are drawn from a Poisson process at the
// profile's peak rate and accepted with probability rate(t)/peak, which
// preserves the exact Poisson property at every instant.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalConfig config);

  // Timestamp of the next arrival at or after the previous one (the first
  // call yields the first arrival after `start`, default 0).
  Nanos Next();

  // Instantaneous rate at virtual time `t` (exposed for tests).
  double RateAt(Nanos t) const;

  void set_start(Nanos start) { t_ = start; }

 private:
  ArrivalConfig config_;
  double peak_rate_;
  Rng rng_;
  Nanos t_ = 0;
};

}  // namespace lsvd

#endif  // SRC_WORKLOAD_ARRIVAL_H_
