// Synthetic stand-ins for the CloudPhysics trace corpus (paper §4.6,
// Table 5).
//
// The real corpus (week-long block traces of 106 production VMs) is
// proprietary; each profile here is tuned to exercise the same batching/GC
// regime as the paper's correspondingly-named trace: total volume written,
// footprint, write-size mix, spatial locality, and the rate of short-interval
// overwrites (which is what within-batch coalescing can eliminate).
// DESIGN.md documents this substitution.
#ifndef SRC_WORKLOAD_TRACE_GEN_H_
#define SRC_WORKLOAD_TRACE_GEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace lsvd {

struct TraceProfile {
  std::string name;
  uint64_t total_write_bytes = 0;  // trace volume (paper's "writes GB")
  uint64_t footprint = 0;          // virtual-disk bytes ever touched
  uint64_t mean_write = 64 * kKiB;
  // Fraction of writes that immediately overwrite one of the last few
  // writes (eliminable by within-batch coalescing).
  double immediate_overwrite = 0.0;
  // Fraction of writes that continue sequentially from the previous write.
  double sequential = 0.5;
  // Skewed reuse of a hot region (drives long-term overwrites -> GC).
  double hot_fraction = 0.2;
  double hot_access = 0.5;
  // Fragmenting behaviour: writes chopped into small interleaved pieces.
  bool fragmenting = false;

  // The nine representative traces of Table 5.
  static std::vector<TraceProfile> Table5();
};

// Streams (vlba, len) pairs; returns false when the byte budget is spent.
// `scale` divides the trace volume (and footprint) for quicker runs.
using TraceStream = std::function<bool(uint64_t* vlba, uint64_t* len)>;
TraceStream MakeTraceStream(const TraceProfile& profile, uint64_t scale,
                            uint64_t seed = 1);

}  // namespace lsvd

#endif  // SRC_WORKLOAD_TRACE_GEN_H_
