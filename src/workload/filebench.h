// Filebench workload models (paper §4.2.2, Tables 2 and 3).
//
// The paper's Table 3 characterizes each Filebench personality at the block
// level after passing through ext4: mean (merged) write size, and the
// distance between commit barriers measured in writes and bytes. Those
// block-level statistics are exactly what the virtual disk under test sees,
// so the models here emit that stream directly:
//
//                 mean write   writes/sync   bytes/sync    read mix
//   fileserver      94 KiB        12865        579 MiB       ~1:1
//   oltp            4.7 KiB        42.7        199 KiB       heavy read
//   varmail          27 KiB          7.6       131 KiB       ~1:1
//
// Writes target a skewed working set with heavy re-writing (varmail
// recreates the same small files), which is what drives garbage collection
// in §4.6's physical experiment.
#ifndef SRC_WORKLOAD_FILEBENCH_H_
#define SRC_WORKLOAD_FILEBENCH_H_

#include <string>

#include "src/util/rng.h"
#include "src/workload/driver.h"

namespace lsvd {

struct FilebenchProfile {
  std::string name;
  // Block-level behaviour (Table 3).
  double mean_write_size = 16 * kKiB;   // exponential around the mean
  double writes_per_sync = 100;         // commit-barrier distance
  double read_fraction = 0.3;           // fraction of data ops that are reads
  // Footprint & locality (drives overwrites / GC pressure).
  uint64_t working_set = 4 * kGiB;
  double hot_fraction = 0.2;            // fraction of the working set
  double hot_access = 0.8;              // fraction of accesses to it
  // Cyclic reuse of the hot region: varmail's create/delete churn (and
  // oltp's log) reuse blocks roughly in FIFO order, so backend objects die
  // together — the behaviour behind the paper's low varmail/oltp WAFs.
  bool hot_cyclic = false;

  // Table 2 provenance (echoed by benches; not used by the generator).
  uint64_t file_count = 0;
  uint64_t mean_file_size = 0;
  uint64_t io_size = 0;
  int threads = 0;

  static FilebenchProfile Fileserver();
  static FilebenchProfile Oltp();
  static FilebenchProfile Varmail();
};

// Emits the profile's block-level op stream over `volume_size`.
WorkloadGen MakeFilebenchGen(const FilebenchProfile& profile,
                             uint64_t volume_size, uint64_t seed = 1);

}  // namespace lsvd

#endif  // SRC_WORKLOAD_FILEBENCH_H_
