#include "src/workload/driver.h"

#include <cassert>
#include <utility>

namespace lsvd {

Driver::Driver(Simulator* sim, VirtualDisk* disk, WorkloadGen gen,
               int queue_depth, Nanos deadline, MetricsRegistry* metrics,
               const std::string& prefix)
    : sim_(sim),
      disk_(disk),
      gen_(std::move(gen)),
      queue_depth_(queue_depth),
      deadline_(deadline),
      metrics_(metrics),
      prefix_(prefix) {
  assert(queue_depth_ > 0);
  if (metrics != nullptr) {
    h_write_us_ = metrics->GetHistogram(prefix + ".write_us");
    h_read_us_ = metrics->GetHistogram(prefix + ".read_us");
    h_flush_us_ = metrics->GetHistogram(prefix + ".flush_us");
    c_write_errors_ = metrics->GetCounter(prefix + ".write_errors");
    c_read_errors_ = metrics->GetCounter(prefix + ".read_errors");
    c_flush_errors_ = metrics->GetCounter(prefix + ".flush_errors");
  }
}

void Driver::EnableOpenLoop(const ArrivalConfig& arrivals,
                            int max_outstanding) {
  arrivals_ = std::make_unique<ArrivalProcess>(arrivals);
  max_outstanding_ = max_outstanding;
  if (metrics_ != nullptr) {
    h_queue_us_ = metrics_->GetHistogram(prefix_ + ".queue_us");
    h_service_us_ = metrics_->GetHistogram(prefix_ + ".service_us");
  }
}

void Driver::EnableTimeline(Nanos bucket) {
  assert(bucket > 0);
  bucket_ = bucket;
}

void Driver::Run(std::function<void()> done) {
  done_ = std::move(done);
  stats_.started_at = sim_->now();
  stats_.finished_at = sim_->now();
  if (arrivals_ != nullptr) {
    arrivals_->set_start(sim_->now());
    // Defer so `done` always fires from event context, even if the very
    // first arrival already lands past the deadline.
    sim_->After(0, [this]() { ScheduleNextArrival(); });
    return;
  }
  for (int i = 0; i < queue_depth_; i++) {
    Issue();
  }
  if (outstanding_ == 0) {
    // Empty workload.
    sim_->After(0, done_);
  }
}

// One arrival is in flight at a time: the timer fires at the arrival
// timestamp, the op is pulled from the generator then, and the next arrival
// is scheduled — so the event queue never holds more than one future
// arrival regardless of the offered rate.
void Driver::ScheduleNextArrival() {
  const Nanos at = arrivals_->Next();
  if (deadline_ > 0 && at >= deadline_) {
    exhausted_ = true;
    MaybeFinishOpenLoop();
    return;
  }
  sim_->At(at, [this]() {
    WorkloadOp op;
    if (!gen_(&op)) {
      exhausted_ = true;
      MaybeFinishOpenLoop();
      return;
    }
    const Nanos arrived = sim_->now();
    if (max_outstanding_ > 0 && outstanding_ >= max_outstanding_) {
      open_queue_.emplace_back(op, arrived);
    } else {
      DispatchOpen(op, arrived);
    }
    ScheduleNextArrival();
  });
}

void Driver::DispatchOpen(const WorkloadOp& op, Nanos arrived) {
  outstanding_++;
  const Nanos issued = sim_->now();
  RecordLatencyUs(h_queue_us_, issued - arrived);
  auto complete = [this, op, arrived, issued](bool ok) {
    outstanding_--;
    if (ok) {
      RecordLatencyUs(h_service_us_, sim_->now() - issued);
      Histogram* h = h_write_us_;
      if (op.kind == WorkloadOp::Kind::kRead) {
        h = h_read_us_;
      } else if (op.kind == WorkloadOp::Kind::kFlush) {
        h = h_flush_us_;
      }
      // Client-observed latency spans the wait in the host-side queue too.
      RecordLatencyUs(h, sim_->now() - arrived);
      Account(op);
    } else {
      AccountError(op);
    }
    while (!open_queue_.empty() &&
           (max_outstanding_ == 0 || outstanding_ < max_outstanding_)) {
      auto next = open_queue_.front();
      open_queue_.pop_front();
      DispatchOpen(next.first, next.second);
    }
    MaybeFinishOpenLoop();
  };
  switch (op.kind) {
    case WorkloadOp::Kind::kWrite:
      disk_->Write(op.offset, Buffer::Zeros(op.len),
                   [complete](Status s) { complete(s.ok()); });
      break;
    case WorkloadOp::Kind::kRead:
      disk_->Read(op.offset, op.len,
                  [complete](Result<Buffer> r) { complete(r.ok()); });
      break;
    case WorkloadOp::Kind::kFlush:
      disk_->Flush([complete](Status s) { complete(s.ok()); });
      break;
  }
}

void Driver::MaybeFinishOpenLoop() {
  if (exhausted_ && outstanding_ == 0 && open_queue_.empty() && done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done();
  }
}

void Driver::Account(const WorkloadOp& op) {
  stats_.ops++;
  stats_.finished_at = sim_->now();
  switch (op.kind) {
    case WorkloadOp::Kind::kWrite:
      stats_.writes++;
      stats_.bytes_written += op.len;
      if (bucket_ > 0) {
        const auto b = static_cast<size_t>((sim_->now() - stats_.started_at) /
                                           bucket_);
        if (b >= write_buckets_.size()) {
          write_buckets_.resize(b + 1, 0);
        }
        write_buckets_[b] += op.len;
      }
      break;
    case WorkloadOp::Kind::kRead:
      stats_.reads++;
      stats_.bytes_read += op.len;
      break;
    case WorkloadOp::Kind::kFlush:
      stats_.flushes++;
      break;
  }
}

// A failed op counts toward the error totals only: success counts, byte
// totals, and latency histograms reflect completed work, so throughput
// figures stay meaningful while a degraded disk sheds load.
void Driver::AccountError(const WorkloadOp& op) {
  stats_.finished_at = sim_->now();
  switch (op.kind) {
    case WorkloadOp::Kind::kWrite:
      stats_.write_errors++;
      if (c_write_errors_ != nullptr) {
        c_write_errors_->Inc();
      }
      break;
    case WorkloadOp::Kind::kRead:
      stats_.read_errors++;
      if (c_read_errors_ != nullptr) {
        c_read_errors_->Inc();
      }
      break;
    case WorkloadOp::Kind::kFlush:
      stats_.flush_errors++;
      if (c_flush_errors_ != nullptr) {
        c_flush_errors_->Inc();
      }
      break;
  }
}

void Driver::Issue() {
  // A pending commit barrier gates everything: writes must pause while a
  // barrier is outstanding (§2.2), so the barrier is issued alone once all
  // other ops drain, and nothing is issued while it runs.
  if (barrier_pending_) {
    if (outstanding_ > 0) {
      return;
    }
    barrier_pending_ = false;
    outstanding_++;
    const WorkloadOp op{WorkloadOp::Kind::kFlush, 0, 0};
    const Nanos submitted = sim_->now();
    disk_->Flush([this, op, submitted](Status s) {
      outstanding_--;
      if (s.ok()) {
        RecordLatencyUs(h_flush_us_, sim_->now() - submitted);
        Account(op);
      } else {
        AccountError(op);
      }
      // The barrier blocked the whole queue; refill it.
      for (int i = 0; i < queue_depth_; i++) {
        Issue();
      }
    });
    return;
  }

  if (exhausted_ || (deadline_ > 0 && sim_->now() >= deadline_)) {
    exhausted_ = true;
    if (outstanding_ == 0 && done_) {
      auto done = std::move(done_);
      done_ = nullptr;
      done();
    }
    return;
  }
  WorkloadOp op;
  if (!gen_(&op)) {
    exhausted_ = true;
    if (outstanding_ == 0 && done_) {
      auto done = std::move(done_);
      done_ = nullptr;
      done();
    }
    return;
  }
  if (op.kind == WorkloadOp::Kind::kFlush) {
    barrier_pending_ = true;
    Issue();  // drains, then issues the barrier
    return;
  }
  outstanding_++;
  const Nanos submitted = sim_->now();
  auto complete = [this, op, submitted](bool ok) {
    outstanding_--;
    if (ok) {
      RecordLatencyUs(op.kind == WorkloadOp::Kind::kWrite ? h_write_us_
                                                          : h_read_us_,
                      sim_->now() - submitted);
      Account(op);
    } else {
      AccountError(op);
    }
    Issue();
  };
  switch (op.kind) {
    case WorkloadOp::Kind::kWrite:
      disk_->Write(op.offset, Buffer::Zeros(op.len),
                   [complete](Status s) { complete(s.ok()); });
      break;
    case WorkloadOp::Kind::kRead:
      disk_->Read(op.offset, op.len,
                  [complete](Result<Buffer> r) { complete(r.ok()); });
      break;
    case WorkloadOp::Kind::kFlush:
      break;  // handled above
  }
}

}  // namespace lsvd
