#include "src/workload/filebench.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "src/blockdev/block_device.h"

namespace lsvd {

FilebenchProfile FilebenchProfile::Fileserver() {
  FilebenchProfile p;
  p.name = "fileserver";
  p.mean_write_size = 94 * kKiB;
  p.writes_per_sync = 12865;
  p.read_fraction = 0.35;
  p.working_set = 24 * kGiB;  // 200K files x 128 KiB (Table 2)
  p.hot_fraction = 0.3;
  p.hot_access = 0.6;
  p.file_count = 200000;
  p.mean_file_size = 128 * kKiB;
  p.io_size = 16 * kKiB;  // mean append size
  p.threads = 50;
  return p;
}

FilebenchProfile FilebenchProfile::Oltp() {
  FilebenchProfile p;
  p.name = "oltp";
  p.mean_write_size = 4.7 * kKiB;
  p.writes_per_sync = 42.7;
  p.read_fraction = 0.7;      // database reads dominate
  p.working_set = 24 * kGiB;  // 250 files x 100 MiB (Table 2)
  p.hot_fraction = 0.1;
  p.hot_access = 0.85;        // hot log / index pages rewritten constantly
  p.hot_cyclic = true;        // the database log wraps
  p.file_count = 250;
  p.mean_file_size = 100 * kMiB;
  p.io_size = 2000;
  p.threads = 50;
  return p;
}

FilebenchProfile FilebenchProfile::Varmail() {
  FilebenchProfile p;
  p.name = "varmail";
  p.mean_write_size = 27 * kKiB;
  p.writes_per_sync = 7.6;
  p.read_fraction = 0.4;
  p.working_set = 27 * kGiB;  // 900K files x 32 KiB (Table 2)
  p.hot_fraction = 0.05;
  p.hot_access = 0.9;  // create/delete of small files re-writes hot metadata
  p.hot_cyclic = true;  // freed blocks are reused roughly in order
  p.file_count = 900000;
  p.mean_file_size = 32 * kKiB;
  p.io_size = 16 * kKiB;
  p.threads = 16;
  return p;
}

WorkloadGen MakeFilebenchGen(const FilebenchProfile& profile,
                             uint64_t volume_size, uint64_t seed) {
  struct State {
    Rng rng;
    double writes_since_sync = 0;
    uint64_t hot_cursor = 0;
    // Recently written extents: file servers and mail servers read what was
    // just written (delivery then fetch), so most reads land here — which is
    // also what keeps them cache hits on a write-back design.
    std::deque<std::pair<uint64_t, uint64_t>> recent_writes;
    explicit State(uint64_t s) : rng(s) {}
  };
  auto st = std::make_shared<State>(seed);
  const uint64_t span_blocks =
      std::min(profile.working_set, volume_size) / kBlockSize;

  return [profile, st, span_blocks](WorkloadOp* op) {
    // Commit barrier when enough writes accumulated (randomized around the
    // Table 3 mean distance).
    if (st->writes_since_sync >= profile.writes_per_sync) {
      st->writes_since_sync -= profile.writes_per_sync;
      op->kind = WorkloadOp::Kind::kFlush;
      op->offset = 0;
      op->len = 0;
      return true;
    }
    uint64_t block;
    const auto hot_blocks = static_cast<uint64_t>(
        static_cast<double>(span_blocks) * profile.hot_fraction);
    if (profile.hot_cyclic && hot_blocks > 0 &&
        st->rng.Bernoulli(profile.hot_access)) {
      block = st->hot_cursor % hot_blocks;
    } else {
      block = st->rng.Skewed(span_blocks, profile.hot_fraction,
                             profile.hot_access);
    }
    // Size: exponential around the mean, block-aligned, at least one block.
    const double raw = st->rng.Exponential(profile.mean_write_size);
    uint64_t len = std::max<uint64_t>(
        kBlockSize,
        static_cast<uint64_t>(raw) / kBlockSize * kBlockSize);
    len = std::min<uint64_t>(len, kMiB);
    const uint64_t offset =
        std::min(block, span_blocks - len / kBlockSize) * kBlockSize;

    if (st->rng.Bernoulli(profile.read_fraction)) {
      op->kind = WorkloadOp::Kind::kRead;
      // Read-after-write locality: 80% of reads target a recent write.
      if (!st->recent_writes.empty() && st->rng.Bernoulli(0.8)) {
        const auto& [w_off, w_len] =
            st->recent_writes[st->rng.Uniform(st->recent_writes.size())];
        op->offset = w_off;
        op->len = w_len;
        return true;
      }
    } else {
      op->kind = WorkloadOp::Kind::kWrite;
      st->writes_since_sync += 1;
      if (profile.hot_cyclic) {
        st->hot_cursor += len / kBlockSize;
      }
      st->recent_writes.push_back({offset, len});
      if (st->recent_writes.size() > 128) {
        st->recent_writes.pop_front();
      }
    }
    op->offset = offset;
    op->len = len;
    return true;
  };
}

}  // namespace lsvd
