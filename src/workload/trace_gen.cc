#include "src/workload/trace_gen.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "src/blockdev/block_device.h"

namespace lsvd {
namespace {

constexpr uint64_t kGB = 1000ULL * 1000 * 1000;

uint64_t BlockAlign(uint64_t v) {
  return std::max<uint64_t>(kBlockSize, v / kBlockSize * kBlockSize);
}

}  // namespace

std::vector<TraceProfile> TraceProfile::Table5() {
  std::vector<TraceProfile> traces;
  // Values are tuned so the GC simulator lands near the paper's Table 5
  // rows; see bench/tbl05_gc_traces.cc for the side-by-side comparison.
  {
    TraceProfile t;  // w10: large, mostly write-once, mildly fragmented
    t.name = "w10";
    t.total_write_bytes = 484 * kGB;
    t.footprint = 420 * kGB;
    t.mean_write = 128 * kKiB;
    t.immediate_overwrite = 0.01;
    t.sequential = 0.25;
    t.hot_fraction = 0.3;
    t.hot_access = 0.4;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w04: huge volume, warm working set, some coalescing
    t.name = "w04";
    t.total_write_bytes = 1786 * kGB;
    t.footprint = 560 * kGB;
    t.mean_write = 256 * kKiB;
    t.immediate_overwrite = 0.21;
    t.sequential = 0.5;
    t.hot_fraction = 0.15;
    t.hot_access = 0.7;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w66: small, intense rewriting, very coalescable
    t.name = "w66";
    t.total_write_bytes = 49 * kGB;
    t.footprint = 3 * kGB;
    t.mean_write = 192 * kKiB;
    t.immediate_overwrite = 0.45;
    t.sequential = 0.6;
    t.hot_fraction = 0.1;
    t.hot_access = 0.8;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w01: small interleaved writes -> fragmented map
    t.name = "w01";
    t.total_write_bytes = 272 * kGB;
    t.footprint = 130 * kGB;
    t.mean_write = 16 * kKiB;
    t.immediate_overwrite = 0.11;
    t.sequential = 0.3;
    t.hot_fraction = 0.3;
    t.hot_access = 0.6;
    t.fragmenting = true;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w07: dispersed overwrites of a small footprint
    t.name = "w07";
    t.total_write_bytes = 85 * kGB;
    t.footprint = 9 * kGB;
    t.mean_write = 12 * kKiB;
    t.immediate_overwrite = 0.02;
    t.sequential = 0.2;
    t.hot_fraction = 0.4;
    t.hot_access = 0.5;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w31: append-mostly streams, negligible rewriting
    t.name = "w31";
    t.total_write_bytes = 321 * kGB;
    t.footprint = 310 * kGB;
    t.mean_write = 512 * kKiB;
    t.immediate_overwrite = 0.02;
    t.sequential = 0.9;
    t.hot_fraction = 0.5;
    t.hot_access = 0.5;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w59: small hot set, moderate coalescing
    t.name = "w59";
    t.total_write_bytes = 60 * kGB;
    t.footprint = 7 * kGB;
    t.mean_write = 32 * kKiB;
    t.immediate_overwrite = 0.07;
    t.sequential = 0.4;
    t.hot_fraction = 0.2;
    t.hot_access = 0.7;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w41: log-like rapid rewrite; coalescing removes most
    t.name = "w41";
    t.total_write_bytes = 127 * kGB;
    t.footprint = 3 * kGB;
    t.mean_write = 8 * kKiB;
    t.immediate_overwrite = 0.55;
    t.sequential = 0.3;
    t.hot_fraction = 0.1;
    t.hot_access = 0.9;
    t.fragmenting = true;
    traces.push_back(t);
  }
  {
    TraceProfile t;  // w05: interleaved sequential streams, no overwrites
    t.name = "w05";
    t.total_write_bytes = 389 * kGB;
    t.footprint = 380 * kGB;
    t.mean_write = 48 * kKiB;
    t.immediate_overwrite = 0.0;
    t.sequential = 0.95;
    t.hot_fraction = 0.5;
    t.hot_access = 0.5;
    traces.push_back(t);
  }
  return traces;
}

TraceStream MakeTraceStream(const TraceProfile& profile, uint64_t scale,
                            uint64_t seed) {
  struct State {
    Rng rng;
    uint64_t written = 0;
    // Interleaved sequential stream cursors (round robin).
    std::vector<uint64_t> streams;
    size_t next_stream = 0;
    std::deque<std::pair<uint64_t, uint64_t>> recent;  // for overwrites
    explicit State(uint64_t s) : rng(s) {}
  };
  auto st = std::make_shared<State>(seed);
  const uint64_t budget = profile.total_write_bytes / std::max<uint64_t>(1, scale);
  const uint64_t footprint =
      BlockAlign(profile.footprint / std::max<uint64_t>(1, scale));
  const uint64_t blocks = footprint / kBlockSize;
  // Several concurrent sequential streams, as real VMs exhibit.
  constexpr size_t kStreams = 6;
  for (size_t i = 0; i < kStreams; i++) {
    st->streams.push_back(seed * 7919 % std::max<uint64_t>(1, blocks) +
                          i * (blocks / kStreams));
  }

  return [profile, st, budget, blocks](uint64_t* vlba, uint64_t* len) {
    if (st->written >= budget || blocks == 0) {
      return false;
    }

    // 1. Immediate overwrite of a recent write (coalescable in a batch).
    if (!st->recent.empty() &&
        st->rng.Bernoulli(profile.immediate_overwrite)) {
      const auto& [v, l] =
          st->recent[st->rng.Uniform(st->recent.size())];
      *vlba = v;
      *len = l;
      st->written += *len;
      return true;
    }

    uint64_t size = BlockAlign(
        static_cast<uint64_t>(st->rng.Exponential(
            static_cast<double>(profile.mean_write))));
    size = std::min<uint64_t>(size, 4 * kMiB);
    uint64_t block;
    if (st->rng.Bernoulli(profile.sequential)) {
      // Continue one of the interleaved streams.
      auto& cursor = st->streams[st->next_stream];
      st->next_stream = (st->next_stream + 1) % st->streams.size();
      block = cursor;
      if (profile.fragmenting) {
        // Leave a small hole behind each piece (defrag's target pattern).
        cursor += size / kBlockSize + 1 + st->rng.Uniform(2);
      } else {
        cursor += size / kBlockSize;
      }
      if (cursor >= blocks) {
        cursor = st->rng.Uniform(blocks);
      }
    } else {
      block = st->rng.Skewed(blocks, profile.hot_fraction,
                             profile.hot_access);
    }
    if (block + size / kBlockSize > blocks) {
      block = blocks - size / kBlockSize;
    }
    *vlba = block * kBlockSize;
    *len = size;
    st->written += size;

    st->recent.push_back({*vlba, *len});
    if (st->recent.size() > 8) {
      st->recent.pop_front();
    }
    return true;
  };
}

}  // namespace lsvd
