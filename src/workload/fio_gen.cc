#include "src/workload/fio_gen.h"

#include <algorithm>

namespace lsvd {

WorkloadGen MakeFioGen(FioConfig config) {
  auto rng = std::make_shared<Rng>(config.seed);
  auto ops = std::make_shared<uint64_t>(0);
  auto bytes = std::make_shared<uint64_t>(0);
  auto cursor = std::make_shared<uint64_t>(0);
  const uint64_t blocks = config.volume_size / config.block_size;

  return [config, rng, ops, bytes, cursor, blocks](WorkloadOp* op) {
    if (config.max_ops > 0 && *ops >= config.max_ops) {
      return false;
    }
    if (config.max_bytes > 0 && *bytes >= config.max_bytes) {
      return false;
    }
    (*ops)++;
    (*bytes) += config.block_size;
    op->len = config.block_size;
    switch (config.pattern) {
      case FioConfig::Pattern::kRandWrite:
        op->kind = WorkloadOp::Kind::kWrite;
        op->offset = rng->Uniform(blocks) * config.block_size;
        break;
      case FioConfig::Pattern::kRandRead:
        op->kind = WorkloadOp::Kind::kRead;
        op->offset = rng->Uniform(blocks) * config.block_size;
        break;
      case FioConfig::Pattern::kSeqWrite:
        op->kind = WorkloadOp::Kind::kWrite;
        op->offset = (*cursor % blocks) * config.block_size;
        (*cursor)++;
        break;
      case FioConfig::Pattern::kSeqRead:
        op->kind = WorkloadOp::Kind::kRead;
        op->offset = (*cursor % blocks) * config.block_size;
        (*cursor)++;
        break;
    }
    return true;
  };
}

WorkloadGen MakePreconditionGen(uint64_t volume_size, uint64_t io_size) {
  auto cursor = std::make_shared<uint64_t>(0);
  return [volume_size, io_size, cursor](WorkloadOp* op) {
    if (*cursor >= volume_size) {
      return false;
    }
    op->kind = WorkloadOp::Kind::kWrite;
    op->offset = *cursor;
    op->len = std::min(io_size, volume_size - *cursor);
    *cursor += op->len;
    return true;
  };
}

}  // namespace lsvd
