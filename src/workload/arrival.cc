#include "src/workload/arrival.h"

#include <cassert>
#include <cmath>

namespace lsvd {

ArrivalProcess::ArrivalProcess(ArrivalConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.rate > 0.0);
  switch (config_.profile) {
    case ArrivalConfig::Profile::kConstant:
      peak_rate_ = config_.rate;
      break;
    case ArrivalConfig::Profile::kDiurnal:
      assert(config_.depth >= 0.0 && config_.depth < 1.0);
      peak_rate_ = config_.rate * (1.0 + config_.depth);
      break;
    case ArrivalConfig::Profile::kBurst:
      assert(config_.multiplier >= 1.0);
      assert(config_.burst_duration <= config_.period);
      peak_rate_ = config_.rate * config_.multiplier;
      break;
  }
}

double ArrivalProcess::RateAt(Nanos t) const {
  switch (config_.profile) {
    case ArrivalConfig::Profile::kConstant:
      return config_.rate;
    case ArrivalConfig::Profile::kDiurnal: {
      const double phase = 2.0 * M_PI * ToSeconds(t % config_.period) /
                           ToSeconds(config_.period);
      return config_.rate * (1.0 + config_.depth * std::sin(phase));
    }
    case ArrivalConfig::Profile::kBurst:
      return (t % config_.period) < config_.burst_duration
                 ? config_.rate * config_.multiplier
                 : config_.rate;
  }
  return config_.rate;
}

Nanos ArrivalProcess::Next() {
  // Thinning (Lewis & Shedler): candidate gaps at the peak rate, accepted
  // with probability rate(t)/peak. Candidate draws and acceptance draws both
  // come from the one seeded stream, so the sequence is fully deterministic.
  for (;;) {
    const double gap_s = rng_.Exponential(1.0 / peak_rate_);
    Nanos gap = FromSeconds(gap_s);
    if (gap < 1) {
      gap = 1;  // arrivals are strictly ordered in integer virtual time
    }
    t_ += gap;
    if (peak_rate_ <= config_.rate ||
        rng_.NextDouble() * peak_rate_ <= RateAt(t_)) {
      return t_;
    }
  }
}

}  // namespace lsvd
