// fio-style micro-benchmark generators (paper §4.2.1): random or sequential
// reads/writes of a fixed block size, bounded by ops, bytes, or the driver's
// deadline.
#ifndef SRC_WORKLOAD_FIO_GEN_H_
#define SRC_WORKLOAD_FIO_GEN_H_

#include <memory>

#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/driver.h"

namespace lsvd {

struct FioConfig {
  enum class Pattern { kRandWrite, kRandRead, kSeqWrite, kSeqRead };
  Pattern pattern = Pattern::kRandWrite;
  uint64_t block_size = 4 * kKiB;
  uint64_t volume_size = 80 * kGiB;
  // Stop conditions; 0 = unlimited (use the driver's deadline).
  uint64_t max_ops = 0;
  uint64_t max_bytes = 0;
  uint64_t seed = 1;
};

// Returns a generator closure for Driver.
WorkloadGen MakeFioGen(FioConfig config);

// Sequentially writes the whole volume once (the paper preconditions every
// volume with data before an experiment, §4.1). Uses large writes.
WorkloadGen MakePreconditionGen(uint64_t volume_size,
                                uint64_t io_size = kMiB);

}  // namespace lsvd

#endif  // SRC_WORKLOAD_FIO_GEN_H_
