// Workload driver against a VirtualDisk. Two issue disciplines:
//
//  - Closed loop (default): a fixed number of operations outstanding
//    (fio-style queue depth); the next op issues when one completes.
//  - Open loop (EnableOpenLoop): ops issue at timestamps drawn from an
//    ArrivalProcess regardless of completions, the way production clients
//    behave — under load the queue, not the device, sets tail latency.
//
// Both account completed work, including a time-bucketed throughput series
// for the paper's timeline figures (11, 15, 16).
#ifndef SRC_WORKLOAD_DRIVER_H_
#define SRC_WORKLOAD_DRIVER_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/blockdev/virtual_disk.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "src/util/units.h"
#include "src/workload/arrival.h"

namespace lsvd {

// One operation produced by a workload model.
struct WorkloadOp {
  enum class Kind { kWrite, kRead, kFlush };
  Kind kind = Kind::kWrite;
  uint64_t offset = 0;
  uint64_t len = 0;
};

// A workload model is a generator of operations; returning false ends the
// workload (e.g. after a byte budget is exhausted).
using WorkloadGen = std::function<bool(WorkloadOp*)>;

struct DriverStats {
  uint64_t ops = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t flushes = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  // Failed ops are excluded from the success counts and byte totals above.
  uint64_t write_errors = 0;
  uint64_t read_errors = 0;
  uint64_t flush_errors = 0;
  Nanos started_at = 0;
  Nanos finished_at = 0;

  uint64_t errors() const { return write_errors + read_errors + flush_errors; }

  double Iops() const {
    const Nanos d = finished_at - started_at;
    return d > 0 ? static_cast<double>(ops) / ToSeconds(d) : 0.0;
  }
  double WriteThroughputBps() const {
    const Nanos d = finished_at - started_at;
    return d > 0 ? static_cast<double>(bytes_written) / ToSeconds(d) : 0.0;
  }
  double ReadThroughputBps() const {
    const Nanos d = finished_at - started_at;
    return d > 0 ? static_cast<double>(bytes_read) / ToSeconds(d) : 0.0;
  }
};

class Driver {
 public:
  // `queue_depth` ops are kept outstanding; the run ends when the generator
  // is exhausted or `deadline` (virtual time) passes, whichever is first.
  // Pass deadline = 0 for no time limit. If `metrics` is given, per-op
  // client-observed latency histograms ("<prefix>.write_us" etc.) record
  // there; without a registry the driver skips latency tracking.
  Driver(Simulator* sim, VirtualDisk* disk, WorkloadGen gen, int queue_depth,
         Nanos deadline = 0, MetricsRegistry* metrics = nullptr,
         const std::string& prefix = "driver");

  // Switches the driver to open-loop issue: ops dispatch at timestamps drawn
  // from `arrivals` instead of on completion. `max_outstanding` bounds
  // host-side concurrency (0 = unbounded); arrivals beyond the bound wait in
  // a FIFO queue. With a registry, two extra histograms record where time
  // goes: "<prefix>.queue_us" (arrival -> issue) and "<prefix>.service_us"
  // (issue -> completion); the per-kind histograms keep their
  // client-observed meaning, arrival -> completion. Flush ops lose their
  // closed-loop barrier semantics — an open-loop client does not stall its
  // own arrivals. Call before Run().
  void EnableOpenLoop(const ArrivalConfig& arrivals, int max_outstanding = 0);

  // Starts issuing; `done` fires when the last outstanding op completes.
  void Run(std::function<void()> done);

  const DriverStats& stats() const { return stats_; }

  // Bytes completed per bucket since Run() started (timeline figures).
  void EnableTimeline(Nanos bucket);
  const std::vector<uint64_t>& write_timeline() const { return write_buckets_; }
  Nanos timeline_bucket() const { return bucket_; }

 private:
  void Issue();
  void Account(const WorkloadOp& op);
  void AccountError(const WorkloadOp& op);

  // Open-loop machinery. One arrival is scheduled at a time; when it fires
  // the op is pulled from the generator and dispatched (or queued if the
  // concurrency bound is hit), then the next arrival is scheduled.
  void ScheduleNextArrival();
  void DispatchOpen(const WorkloadOp& op, Nanos arrived);
  void MaybeFinishOpenLoop();

  Simulator* sim_;
  VirtualDisk* disk_;
  WorkloadGen gen_;
  int queue_depth_;
  Nanos deadline_;
  int outstanding_ = 0;
  bool exhausted_ = false;
  bool barrier_pending_ = false;
  std::function<void()> done_;
  // Open-loop state: null arrivals_ means closed loop.
  std::unique_ptr<ArrivalProcess> arrivals_;
  int max_outstanding_ = 0;
  std::deque<std::pair<WorkloadOp, Nanos>> open_queue_;
  MetricsRegistry* metrics_;
  std::string prefix_;
  Nanos bucket_ = 0;
  std::vector<uint64_t> write_buckets_;
  DriverStats stats_;
  // Null when no registry was supplied (RecordLatencyUs is a no-op on null).
  Histogram* h_write_us_ = nullptr;
  Histogram* h_read_us_ = nullptr;
  Histogram* h_flush_us_ = nullptr;
  // Registered only in open-loop mode (EnableOpenLoop with a registry).
  Histogram* h_queue_us_ = nullptr;
  Histogram* h_service_us_ = nullptr;
  Counter* c_write_errors_ = nullptr;
  Counter* c_read_errors_ = nullptr;
  Counter* c_flush_errors_ = nullptr;
};

}  // namespace lsvd

#endif  // SRC_WORKLOAD_DRIVER_H_
