#include "src/blockdev/sim_ssd.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lsvd {
namespace {

bool Aligned(uint64_t v) { return v % kBlockSize == 0; }

}  // namespace

SimSsd::SimSsd(Simulator* sim, uint64_t capacity, SsdParams params)
    : sim_(sim),
      capacity_(capacity),
      params_(params),
      read_queue_(sim, params.channels),
      write_queue_(sim, params.channels) {
  assert(Aligned(capacity));
}

bool SimSsd::MatchStream(std::deque<uint64_t>* streams, uint64_t offset,
                         uint64_t end) {
  auto it = std::find(streams->begin(), streams->end(), offset);
  const bool sequential = it != streams->end();
  if (sequential) {
    streams->erase(it);
  }
  streams->push_back(end);
  while (streams->size() > params_.stream_slots) {
    streams->pop_front();
  }
  return sequential;
}

// Submits the request as one or more channel occupations (striping large
// requests across channels) and fires `done` when the slowest completes plus
// the fixed device latency.
void SimSsd::SubmitOp(bool is_write, uint64_t offset, uint64_t len,
                      std::function<void()> done) {
  const uint64_t end = offset + len;
  bool sequential;
  Nanos op_cost;
  double bw;
  Nanos latency;
  if (is_write) {
    sequential = MatchStream(&write_streams_, offset, end);
    op_cost = sequential ? params_.sequential_write_op
                         : params_.random_write_op;
    bw = params_.channel_write_bw_bps;
    latency = params_.write_latency;
    if (sequential) {
      stats_.sequential_writes++;
    }
  } else {
    sequential = MatchStream(&read_streams_, offset, end);
    op_cost = sequential ? params_.sequential_read_op : params_.random_read_op;
    bw = params_.channel_read_bw_bps;
    latency = params_.read_latency;
  }

  uint64_t unit = sequential ? params_.sequential_stripe_unit
                             : params_.stripe_unit;
  if (unit == 0) {
    unit = len;
  }
  const uint64_t subops = std::max<uint64_t>(1, (len + unit - 1) / unit);
  ServerQueue& queue = is_write ? write_queue_ : read_queue_;
  if (subops == 1) {
    // Single-stripe requests (the common case for small IO) skip the shared
    // completion counter and its allocation.
    const auto transfer =
        static_cast<Nanos>(static_cast<double>(len) / bw * 1e9);
    queue.Submit(std::max(op_cost, transfer),
                 [this, latency, done = std::move(done)]() {
                   sim_->After(latency, std::move(done));
                 });
    return;
  }
  auto remaining = std::make_shared<uint64_t>(subops);
  auto finish = [this, remaining, latency, done = std::move(done)]() {
    if (--*remaining == 0) {
      sim_->After(latency, done);
    }
  };
  uint64_t left = len;
  for (uint64_t s = 0; s < subops; s++) {
    const uint64_t piece = std::min(unit, left);
    left -= piece;
    const auto transfer =
        static_cast<Nanos>(static_cast<double>(piece) / bw * 1e9);
    // The command-level cost is charged once (on the first stripe).
    const Nanos service = s == 0 ? std::max(op_cost, transfer) : transfer;
    queue.Submit(service, finish);
  }
}

void SimSsd::StoreBlocks(BlockMap* map, uint64_t offset, const Buffer& data) {
  const uint64_t blocks = data.size() / kBlockSize;
  if (data.IsAllZeros()) {
    // Bulk payloads are symbolic zero runs; skip per-block slicing.
    for (uint64_t i = 0; i < blocks; i++) {
      (*map)[offset / kBlockSize + i] = nullptr;
    }
    return;
  }
  for (uint64_t i = 0; i < blocks; i++) {
    const uint64_t block = offset / kBlockSize + i;
    // A block that is exactly one already-materialized chunk (e.g. an
    // encoded journal header) is stored by reference, not copied.
    if (auto whole = data.SharedSpan(i * kBlockSize, kBlockSize)) {
      (*map)[block] = std::move(whole);
      continue;
    }
    Buffer slice = data.Slice(i * kBlockSize, kBlockSize);
    if (slice.IsAllZeros()) {
      (*map)[block] = nullptr;
    } else {
      (*map)[block] = std::make_shared<const std::vector<uint8_t>>(
          slice.ToBytes());
    }
  }
}

Buffer SimSsd::LoadBlocks(uint64_t offset, uint64_t len) const {
  Buffer out;
  const uint64_t blocks = len / kBlockSize;
  for (uint64_t i = 0; i < blocks; i++) {
    const uint64_t block = offset / kBlockSize + i;
    const BlockData* data = nullptr;
    if (auto it = volatile_.find(block); it != volatile_.end()) {
      data = &it->second;
    } else if (auto jt = durable_.find(block); jt != durable_.end()) {
      data = &jt->second;
    }
    if (data == nullptr || *data == nullptr) {
      out.AppendZeros(kBlockSize);
    } else {
      // Share the stored block's storage; stored blocks are immutable and
      // map-value replacement only swaps the shared_ptr, so sharing is safe.
      out.AppendShared(*data);
    }
  }
  return out;
}

void SimSsd::Write(uint64_t offset, Buffer data, WriteCallback done) {
  if (!Aligned(offset) || !Aligned(data.size()) || data.empty()) {
    done(Status::InvalidArgument("unaligned or empty SSD write"));
    return;
  }
  if (offset + data.size() > capacity_) {
    done(Status::OutOfRange("SSD write beyond capacity"));
    return;
  }
  stats_.write_ops++;
  stats_.write_bytes += data.size();
  if (fail_next_writes_ > 0) {
    fail_next_writes_--;
    SubmitOp(true, offset, data.size(), [done = std::move(done)]() {
      done(Status::Unavailable("injected SSD write failure"));
    });
    return;
  }
  // Contents land in the volatile cache as soon as the op is accepted;
  // completion is acknowledged after the service time.
  StoreBlocks(&volatile_, offset, data);
  SubmitOp(true, offset, data.size(),
           [done = std::move(done)]() { done(Status::Ok()); });
}

void SimSsd::Read(uint64_t offset, uint64_t len, ReadCallback done) {
  if (!Aligned(offset) || !Aligned(len) || len == 0) {
    done(Status::InvalidArgument("unaligned or empty SSD read"));
    return;
  }
  if (offset + len > capacity_) {
    done(Status::OutOfRange("SSD read beyond capacity"));
    return;
  }
  stats_.read_ops++;
  stats_.read_bytes += len;
  Buffer data = LoadBlocks(offset, len);
  SubmitOp(false, offset, len,
           [done = std::move(done), data = std::move(data)]() {
    done(data);
  });
}

void SimSsd::Flush(WriteCallback done) {
  stats_.flushes++;
  // Everything currently in the volatile cache becomes durable when the
  // flush completes; writes submitted after this point are not covered.
  auto flushed = std::make_shared<BlockMap>(std::move(volatile_));
  volatile_.clear();
  // The moved-from map lost its buckets; pre-size for the next flush window
  // (steady-state windows carry similar write counts) to avoid re-growing
  // the table from scratch every cycle.
  volatile_.reserve(flushed->size());
  const uint64_t epoch = epoch_;
  write_queue_.Submit(params_.flush,
                      [this, epoch, flushed, done = std::move(done)]() {
    if (epoch == epoch_) {
      for (auto& [block, data] : *flushed) {
        durable_[block] = std::move(data);
      }
    }
    done(Status::Ok());
  });
}

void SimSsd::PowerFail() {
  volatile_.clear();
  epoch_++;
}

void SimSsd::DiscardAll() {
  volatile_.clear();
  durable_.clear();
  epoch_++;
}

}  // namespace lsvd
