// Common interface for virtual disks: LSVD, the RBD baseline, and
// bcache-over-RBD all present this to workloads and benches.
#ifndef SRC_BLOCKDEV_VIRTUAL_DISK_H_
#define SRC_BLOCKDEV_VIRTUAL_DISK_H_

#include <cstdint>
#include <functional>

#include "src/util/buffer.h"
#include "src/util/status.h"

namespace lsvd {

class VirtualDisk {
 public:
  virtual ~VirtualDisk() = default;

  virtual uint64_t size() const = 0;

  // Offsets and lengths must be multiples of kBlockSize (4 KiB).
  virtual void Write(uint64_t offset, Buffer data,
                     std::function<void(Status)> done) = 0;
  virtual void Read(uint64_t offset, uint64_t len,
                    std::function<void(Result<Buffer>)> done) = 0;
  // Commit barrier: all previously acknowledged writes are durable when
  // `done` fires.
  virtual void Flush(std::function<void(Status)> done) = 0;
  // TRIM/discard: after the callback fires, reads of the range return zeros
  // until it is rewritten, and the device may reclaim the backing space.
  // Advisory — disks without discard support acknowledge without acting.
  virtual void Trim(uint64_t offset, uint64_t len,
                    std::function<void(Status)> done) {
    (void)offset;
    (void)len;
    done(Status::Ok());
  }
};

}  // namespace lsvd

#endif  // SRC_BLOCKDEV_VIRTUAL_DISK_H_
