// Data-bearing simulated NVMe SSD with a service-time model and crash
// injection.
//
// Timing is calibrated to the paper's client cache device (Intel DC P3700,
// Table 1 / §4.1): 2.8 / 1.9 GB/s sequential read/write, 460K / 90K random
// read/write IOPS. The device detects sequential streams, so a log-structured
// writer (LSVD's cache) gets bandwidth-bound service while a random writer
// (bcache allocation) pays the per-op random-write cost — the mechanism
// behind the paper's Figure 6 result.
//
// Crash semantics: completed writes sit in a volatile cache until Flush;
// PowerFail() drops the volatile cache (crash with device surviving),
// DiscardAll() models total cache loss (device gone / machine replaced).
#ifndef SRC_BLOCKDEV_SIM_SSD_H_
#define SRC_BLOCKDEV_SIM_SSD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/sim/server_queue.h"
#include "src/sim/simulator.h"

namespace lsvd {

struct SsdParams {
  int channels = 8;
  Nanos random_read_op = 17 * kMicrosecond;    // ~460K IOPS at saturation
  Nanos random_write_op = 88 * kMicrosecond;   // ~90K IOPS at saturation
  Nanos sequential_read_op = 8 * kMicrosecond;
  Nanos sequential_write_op = 10 * kMicrosecond;
  double channel_read_bw_bps = 2.8e9 / 8;
  double channel_write_bw_bps = 1.9e9 / 8;
  // Fixed completion latency added outside the channel occupancy (typical
  // NVMe: tens of microseconds for writes, ~100 for reads).
  Nanos read_latency = 70 * kMicrosecond;
  Nanos write_latency = 15 * kMicrosecond;
  Nanos flush = 120 * kMicrosecond;
  // Requests larger than this are striped across channels, as the device's
  // internal parallelism would. Sequential streams stripe at finer grain
  // (the device lays consecutive stripes across dies), which is what makes a
  // log-structured writer bandwidth-efficient even for medium-sized appends.
  uint64_t stripe_unit = 64 * kKiB;
  uint64_t sequential_stripe_unit = 16 * kKiB;
  // Number of concurrent sequential streams the device tracks.
  size_t stream_slots = 16;

  static SsdParams P3700() { return SsdParams{}; }
  // Zero-latency variant for unit tests.
  static SsdParams Instant() {
    SsdParams p;
    p.random_read_op = p.random_write_op = 0;
    p.sequential_read_op = p.sequential_write_op = 0;
    p.channel_read_bw_bps = p.channel_write_bw_bps = 1e18;
    p.read_latency = p.write_latency = 0;
    p.flush = 0;
    return p;
  }
  // AWS m5d.xlarge instance NVMe (§4.9): 230 / 128 MB/s measured.
  static SsdParams AwsInstanceNvme() {
    SsdParams p;
    p.channels = 4;
    p.random_read_op = 4 * 20 * kMicrosecond;
    p.random_write_op = 4 * 40 * kMicrosecond;
    p.channel_read_bw_bps = 230e6 / 4;
    p.channel_write_bw_bps = 128e6 / 4;
    return p;
  }
};

struct SsdStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t flushes = 0;
  uint64_t sequential_writes = 0;
};

class SimSsd : public BlockDevice {
 public:
  SimSsd(Simulator* sim, uint64_t capacity, SsdParams params);

  uint64_t capacity() const override { return capacity_; }

  void Write(uint64_t offset, Buffer data, WriteCallback done) override;
  void Read(uint64_t offset, uint64_t len, ReadCallback done) override;
  void Flush(WriteCallback done) override;

  // --- fault injection ---
  // Power failure: completed-but-unflushed writes are lost; the device stays
  // usable (contents = last flushed state).
  void PowerFail();
  // Catastrophic loss: all contents are gone (reads return zeros).
  void DiscardAll();
  // The next `n` writes complete with Unavailable after their service time
  // and store nothing (media error / aborted command).
  void FailNextWrites(int n) { fail_next_writes_ += n; }

  const SsdStats& stats() const { return stats_; }

 private:
  using BlockData = std::shared_ptr<const std::vector<uint8_t>>;
  // nullptr value = explicitly-written zero block; absent key = never written
  // (also zeros). The distinction matters only for the volatile overlay.
  using BlockMap = std::unordered_map<uint64_t, BlockData>;

  void SubmitOp(bool is_write, uint64_t offset, uint64_t len,
                std::function<void()> done);
  bool MatchStream(std::deque<uint64_t>* streams, uint64_t offset,
                   uint64_t end);
  void StoreBlocks(BlockMap* map, uint64_t offset, const Buffer& data);
  Buffer LoadBlocks(uint64_t offset, uint64_t len) const;

  Simulator* sim_;
  uint64_t capacity_;
  SsdParams params_;
  // Reads and writes are served by separate channel pools, matching how
  // NVMe devices quote (and roughly deliver) independent read and write
  // bandwidths.
  ServerQueue read_queue_;
  ServerQueue write_queue_;
  BlockMap durable_;
  BlockMap volatile_;
  std::deque<uint64_t> write_streams_;  // recent write end offsets
  std::deque<uint64_t> read_streams_;
  // Bumped by PowerFail/DiscardAll so that in-flight flushes cannot promote
  // pre-crash volatile data to durable after the failure.
  uint64_t epoch_ = 0;
  int fail_next_writes_ = 0;
  SsdStats stats_;
};

}  // namespace lsvd

#endif  // SRC_BLOCKDEV_SIM_SSD_H_
