// Asynchronous block device interface.
//
// All LSVD cache components and the baselines are written against this
// interface. Offsets and lengths must be multiples of kBlockSize (4 KiB,
// matching the paper's cache log alignment).
//
// Durability contract (same as a real disk/SSD with a volatile write cache,
// §2.2 of the paper): a completed Write is *not* durable until a subsequent
// Flush completes. A power failure loses completed-but-unflushed writes.
#ifndef SRC_BLOCKDEV_BLOCK_DEVICE_H_
#define SRC_BLOCKDEV_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>

#include "src/util/buffer.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace lsvd {

inline constexpr uint64_t kBlockSize = 4 * kKiB;

class BlockDevice {
 public:
  using WriteCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Result<Buffer>)>;

  virtual ~BlockDevice() = default;

  virtual uint64_t capacity() const = 0;

  // Writes `data` at `offset`; `done` fires when the device acknowledges
  // (data is in the device's volatile cache).
  virtual void Write(uint64_t offset, Buffer data, WriteCallback done) = 0;

  // Reads `len` bytes at `offset`.
  virtual void Read(uint64_t offset, uint64_t len, ReadCallback done) = 0;

  // Commit barrier: when `done` fires, every previously completed write is
  // durable.
  virtual void Flush(WriteCallback done) = 0;
};

}  // namespace lsvd

#endif  // SRC_BLOCKDEV_BLOCK_DEVICE_H_
