// Parallel per-domain simulation with conservative synchronization
// (DESIGN.md §14).
//
// A SimDomain wraps one calendar-queue Simulator holding a disjoint slice of
// the simulated system: the client host (SSD, caches, journal, QoS) is one
// domain, and each backend shard's BackendCluster is another. Domains never
// share mutable state; the only cross-domain influence is a message through
// a CrossDomainChannel, whose fixed minimum delay (the NetLink rtt/2) is the
// scheduler's lookahead.
//
// SimDomainGroup::Run executes barrier-synchronized bounded-lag windows
// (YAWNS-style conservative PDES):
//
//   loop:
//     m := min over domains of next_event_time()
//     H := min(m + L, next barrier task)     // L = min channel lookahead
//     run every domain's events in [m, H) — in parallel, one thread each
//     barrier; drain all channel outboxes sorted by (deliver, channel, seq)
//
// Safety: a message sent at s >= m delivers at >= s + L >= m + L >= H, so no
// delivery can land inside the window that produced it — domains in a window
// are causally independent and may run concurrently without rollback.
// Progress: each window advances global virtual time by at least L.
//
// Determinism: the sorted barrier drain makes the merged cross-domain
// delivery order a pure function of the simulation, independent of thread
// count and of how shards are packed onto domains (see
// cross_domain_channel.h). Windows whose event population is sparse are
// executed inline on the coordinator thread — same order, no barrier cost —
// which keeps the long GC/drain tail of a bench from being eaten by
// synchronization overhead.
#ifndef SRC_SIM_SIM_DOMAIN_H_
#define SRC_SIM_SIM_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/cross_domain_channel.h"
#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace lsvd {

class SimDomain {
 public:
  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;

  Simulator* sim() const { return sim_; }
  int id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class SimDomainGroup;

  // `external` non-null adopts a caller-owned simulator (the client world's
  // existing engine); null creates an owned one.
  SimDomain(int id, std::string name, Simulator* external)
      : id_(id), name_(std::move(name)) {
    if (external == nullptr) {
      owned_ = std::make_unique<Simulator>();
      sim_ = owned_.get();
    } else {
      sim_ = external;
    }
  }

  const int id_;
  const std::string name_;
  std::unique_ptr<Simulator> owned_;
  Simulator* sim_;
};

inline Nanos CrossDomainChannel::src_now_() const { return src_->sim()->now(); }

class SimDomainGroup {
 public:
  SimDomainGroup() = default;
  ~SimDomainGroup();
  SimDomainGroup(const SimDomainGroup&) = delete;
  SimDomainGroup& operator=(const SimDomainGroup&) = delete;

  // Topology setup — call before Run, never during it.
  SimDomain* AddDomain(const std::string& name);
  SimDomain* AdoptDomain(const std::string& name, Simulator* sim);
  CrossDomainChannel* Connect(SimDomain* src, SimDomain* dst, Nanos min_delay);

  // Schedules `fn` on the coordinator at virtual time `t`: it runs at a
  // window barrier with every domain quiesced and advanced to `t`, so it may
  // read any domain's state (mid-run samplers) race-free. Between Run calls
  // the queue persists; tasks earlier than all pending events run first.
  void At(Nanos t, std::function<void()> fn);

  // Runs all domains to quiescence (no pending events, no pending tasks,
  // no in-flight messages) using up to `threads` worker threads. threads<=1
  // executes every window inline on the calling thread — identical results,
  // no thread machinery. Re-entrant across calls (benches alternate setup
  // phases with Run).
  void Run(int threads);

  size_t domain_count() const { return domains_.size(); }

  // Scheduler statistics (monotonic across Run calls; deterministic).
  uint64_t windows() const { return windows_; }
  // Domain-windows in which a domain had no event to run — idle cycles a
  // domain spent waiting at the barrier for its neighbors.
  uint64_t sync_stalls() const { return sync_stalls_; }
  uint64_t messages_delivered() const { return messages_; }
  // Events executed across all domains' simulators (lifetime totals).
  uint64_t events_processed() const;

 private:
  struct Task {
    Nanos t;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct TaskLater {
    bool operator()(const Task& a, const Task& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  Nanos MinEventTime() const;
  // Executes one window [*, limit): runs every domain with an event before
  // `limit`, then drains all channel outboxes in (deliver, channel, seq)
  // order. `parallel` selects worker dispatch vs inline execution. Returns
  // the number of events executed (feeds the sparse-window heuristic).
  uint64_t RunWindow(Nanos limit, bool parallel);
  void DeliverMessages(Nanos window_end);

  void StartWorkers(int workers);
  void StopWorkers();
  void WorkerMain(int index);

  std::vector<std::unique_ptr<SimDomain>> domains_;
  std::vector<std::unique_ptr<CrossDomainChannel>> channels_;
  Nanos lookahead_ = Simulator::kNoEventTime;  // min over channels

  std::priority_queue<Task, std::vector<Task>, TaskLater> tasks_;
  uint64_t next_task_seq_ = 0;

  // Scratch for the barrier drain (reused to avoid per-window allocation).
  struct PendingMessage {
    Nanos deliver;
    int channel;
    uint64_t seq;
    Simulator* dst;
    Simulator::Fn fn;
  };
  std::vector<PendingMessage> pending_;

  uint64_t windows_ = 0;
  uint64_t sync_stalls_ = 0;
  uint64_t messages_ = 0;

  // --- worker pool (alive only inside one Run call) ---------------------
  // Coordinator publishes a window by storing window_end_ then bumping
  // generation_ (release); workers acquire generation_, run their domains'
  // events below window_end_, and count themselves done. Workers spin
  // briefly before sleeping on the atomic so the dense phase of a bench
  // (windows every few µs of wall time) never pays a futex round trip.
  std::vector<std::thread> workers_;
  std::vector<std::vector<SimDomain*>> assignment_;  // [worker] -> domains
  std::atomic<uint64_t> generation_{0};
  std::atomic<int> done_count_{0};
  Nanos window_end_ = 0;  // published via generation_ (release/acquire)
  bool stop_ = false;     // likewise
  // Spin before futex-waiting? Set by Run() (before workers start) to false
  // when the host has fewer cores than workers, where spinning steals the
  // timeslice from the very thread being waited on.
  bool spin_ = true;
};

}  // namespace lsvd

#endif  // SRC_SIM_SIM_DOMAIN_H_
