#include "src/sim/sim_domain.h"

#include <algorithm>
#include <cassert>

namespace lsvd {
namespace {

// Below this many events per window, barrier dispatch costs more than the
// work itself (the GC/drain tail of a bench runs minutes of virtual time at
// a handful of events per window), so the coordinator executes the window
// inline. The threshold compares against the *previous* window's population
// — a deterministic value — so the inline/parallel choice, like everything
// else here, is identical for every thread count.
constexpr uint64_t kSparseInlineThreshold = 64;

// Spin iterations before a worker (or the coordinator) falls back to a futex
// wait. Dense-phase windows are a few µs of wall time apart; spinning that
// long keeps the hot path syscall-free. Spinning is only profitable when
// every thread owns a core — on an oversubscribed host a spinner burns the
// timeslice the thread it waits for needs, so Run() disables it there.
constexpr int kSpinIters = 16 * 1024;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

SimDomainGroup::~SimDomainGroup() {
  if (!workers_.empty()) {
    StopWorkers();
  }
}

SimDomain* SimDomainGroup::AddDomain(const std::string& name) {
  assert(workers_.empty() && "topology is fixed while Run is active");
  domains_.emplace_back(
      new SimDomain(static_cast<int>(domains_.size()), name, nullptr));
  return domains_.back().get();
}

SimDomain* SimDomainGroup::AdoptDomain(const std::string& name,
                                       Simulator* sim) {
  assert(workers_.empty() && "topology is fixed while Run is active");
  domains_.emplace_back(
      new SimDomain(static_cast<int>(domains_.size()), name, sim));
  return domains_.back().get();
}

CrossDomainChannel* SimDomainGroup::Connect(SimDomain* src, SimDomain* dst,
                                            Nanos min_delay) {
  assert(src != dst && "a channel must cross a domain boundary");
  channels_.emplace_back(new CrossDomainChannel(
      static_cast<int>(channels_.size()), src, dst, min_delay));
  return channels_.back().get();
}

void SimDomainGroup::At(Nanos t, std::function<void()> fn) {
  tasks_.push(Task{t, next_task_seq_++, std::move(fn)});
}

Nanos SimDomainGroup::MinEventTime() const {
  Nanos m = Simulator::kNoEventTime;
  for (const auto& d : domains_) {
    m = std::min(m, d->sim()->next_event_time());
  }
  return m;
}

uint64_t SimDomainGroup::events_processed() const {
  uint64_t total = 0;
  for (const auto& d : domains_) {
    total += d->sim()->events_processed();
  }
  return total;
}

void SimDomainGroup::DeliverMessages([[maybe_unused]] Nanos window_end) {
  pending_.clear();
  for (auto& ch : channels_) {
    for (auto& msg : ch->outbox_) {
      pending_.push_back(PendingMessage{msg.deliver, ch->id_, msg.seq,
                                        ch->dst_->sim(), std::move(msg.fn)});
    }
    ch->outbox_.clear();
  }
  if (pending_.empty()) {
    return;
  }
  // The (deliver, channel, seq) sort is the determinism linchpin: it fixes
  // the order messages enter destination calendars (and thus their FIFO
  // sequence numbers there) independent of which thread produced them first.
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingMessage& a, const PendingMessage& b) {
              if (a.deliver != b.deliver) {
                return a.deliver < b.deliver;
              }
              if (a.channel != b.channel) {
                return a.channel < b.channel;
              }
              return a.seq < b.seq;
            });
  for (auto& msg : pending_) {
    // Lookahead guarantee: nothing sent during the window just executed may
    // land inside it.
    assert(msg.deliver >= window_end);
    msg.dst->At(msg.deliver, std::move(msg.fn));
    messages_++;
  }
  pending_.clear();
}

uint64_t SimDomainGroup::RunWindow(Nanos limit, bool parallel) {
  windows_++;
  size_t active = 0;
  for (const auto& d : domains_) {
    if (d->sim()->next_event_time() < limit) {
      active++;
    }
  }
  sync_stalls_ += domains_.size() - active;

  const uint64_t before = events_processed();
  if (!parallel || active <= 1) {
    for (const auto& d : domains_) {
      d->sim()->RunBefore(limit);
    }
  } else {
    window_end_ = limit;
    done_count_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
    for (SimDomain* d : assignment_[0]) {
      d->sim()->RunBefore(limit);
    }
    const int target = static_cast<int>(workers_.size());
    int spins = spin_ ? 0 : kSpinIters;
    for (;;) {
      const int done = done_count_.load(std::memory_order_acquire);
      if (done == target) {
        break;
      }
      if (++spins < kSpinIters) {
        CpuRelax();
      } else {
        done_count_.wait(done, std::memory_order_acquire);
      }
    }
  }
  DeliverMessages(limit);
  return events_processed() - before;
}

void SimDomainGroup::WorkerMain(int index) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t gen;
    int spins = spin_ ? 0 : kSpinIters;
    while ((gen = generation_.load(std::memory_order_acquire)) == seen) {
      if (++spins < kSpinIters) {
        CpuRelax();
      } else {
        generation_.wait(seen, std::memory_order_acquire);
      }
    }
    seen = gen;
    if (stop_) {
      return;
    }
    const Nanos limit = window_end_;
    for (SimDomain* d : assignment_[index]) {
      d->sim()->RunBefore(limit);
    }
    done_count_.fetch_add(1, std::memory_order_release);
    done_count_.notify_one();
  }
}

void SimDomainGroup::StartWorkers(int workers) {
  // The coordinator doubles as worker 0 and keeps the client domain (id 0,
  // usually the largest) to itself; shards round-robin over the real worker
  // threads so a lopsided `threads` never packs the client with a shard.
  assignment_.assign(workers, {});
  assignment_[0].push_back(domains_[0].get());
  for (size_t d = 1; d < domains_.size(); d++) {
    const int w = 1 + static_cast<int>((d - 1) % (workers - 1));
    assignment_[w].push_back(domains_[d].get());
  }
  stop_ = false;
  done_count_.store(0, std::memory_order_relaxed);
  workers_.reserve(workers - 1);
  for (int i = 1; i < workers; i++) {
    workers_.emplace_back(&SimDomainGroup::WorkerMain, this, i);
  }
}

void SimDomainGroup::StopWorkers() {
  stop_ = true;
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
  workers_.clear();
  assignment_.clear();
  generation_.store(0, std::memory_order_relaxed);
  stop_ = false;
}

void SimDomainGroup::Run(int threads) {
  if (domains_.empty()) {
    return;
  }
  lookahead_ = Simulator::kNoEventTime;
  for (const auto& ch : channels_) {
    lookahead_ = std::min(lookahead_, ch->min_delay());
  }
  const int workers =
      std::min<int>(std::max(threads, 1), static_cast<int>(domains_.size()));
  const bool use_workers = workers >= 2;
  spin_ = static_cast<unsigned>(workers) <=
          std::max(1u, std::thread::hardware_concurrency());
  if (use_workers) {
    StartWorkers(workers);
  }
  // Seed at the threshold so the first window dispatches in parallel; from
  // then on the previous window's (deterministic) population decides.
  uint64_t last_window_events = kSparseInlineThreshold;
  for (;;) {
    Nanos m = MinEventTime();
    while (!tasks_.empty() && tasks_.top().t <= m) {
      Task task = tasks_.top();
      tasks_.pop();
      for (const auto& d : domains_) {
        d->sim()->AdvanceTo(task.t);
      }
      task.fn();
      // A barrier task may send on a channel; deliver immediately so the
      // message participates in the next window's horizon computation.
      DeliverMessages(task.t);
      m = MinEventTime();
    }
    if (m == Simulator::kNoEventTime) {
      break;
    }
    Nanos limit = lookahead_ == Simulator::kNoEventTime
                      ? Simulator::kNoEventTime
                      : m + lookahead_;
    if (!tasks_.empty() && tasks_.top().t < limit) {
      limit = tasks_.top().t;
    }
    // limit > m always: pending tasks here have t > m, and lookahead_ > 0.
    last_window_events = RunWindow(
        limit, use_workers && last_window_events >= kSparseInlineThreshold);
  }
  if (use_workers) {
    StopWorkers();
  }
}

}  // namespace lsvd
