// Typed message channels between simulation domains (DESIGN.md §14).
//
// A CrossDomainChannel is the only way an event in one SimDomain may affect
// another domain. Every channel carries a fixed minimum propagation delay —
// in this codebase the NetLink rtt/2 (plus any gateway overhead folded into
// the hop) — which is exactly the lookahead the conservative scheduler in
// sim_domain.h relies on: a message sent at time `s` cannot be delivered
// before `s + min_delay`, so the coordinator can let every domain run a
// whole window of that width without rollback.
//
// Determinism contract: channel ids are assigned by creation order, which
// callers must key to stable topology (e.g. shard index), NOT to how shards
// are packed onto domains or threads. Each channel stamps its messages with
// a private monotonically increasing sequence number; the coordinator drains
// all outboxes at each window barrier sorted by (deliver_time, channel_id,
// seq). Because both keys are independent of thread count and domain
// packing, the merged delivery order — and therefore every simulation
// result — is identical for any --threads / domain-count choice.
#ifndef SRC_SIM_CROSS_DOMAIN_CHANNEL_H_
#define SRC_SIM_CROSS_DOMAIN_CHANNEL_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace lsvd {

class SimDomain;
class SimDomainGroup;

class CrossDomainChannel {
 public:
  CrossDomainChannel(const CrossDomainChannel&) = delete;
  CrossDomainChannel& operator=(const CrossDomainChannel&) = delete;

  // Sends `fn` to the destination domain, to run `delay` ns after the source
  // domain's current virtual time. `delay` must be >= min_delay(); anything
  // shorter would break the lookahead proof, so it is clamped in release
  // builds (and asserts in debug builds).
  //
  // Must only be called from the source domain's event context (or from the
  // coordinator while all domains are quiesced).
  void SendAfter(Nanos delay, Simulator::Fn fn) {
    assert(delay >= min_delay_ && "send below channel lookahead");
    if (delay < min_delay_) {
      delay = min_delay_;  // release-mode safety: keep lookahead sound
    }
    outbox_.push_back(Message{src_now_() + delay, next_seq_++, std::move(fn)});
  }

  int id() const { return id_; }
  Nanos min_delay() const { return min_delay_; }
  SimDomain* src() const { return src_; }
  SimDomain* dst() const { return dst_; }

 private:
  friend class SimDomainGroup;

  struct Message {
    Nanos deliver;
    uint64_t seq;
    Simulator::Fn fn;
  };

  CrossDomainChannel(int id, SimDomain* src, SimDomain* dst, Nanos min_delay)
      : id_(id), src_(src), dst_(dst), min_delay_(min_delay) {
    assert(min_delay_ > 0 && "zero lookahead cannot make progress");
  }

  Nanos src_now_() const;  // defined in sim_domain.h (needs SimDomain)

  const int id_;
  SimDomain* const src_;
  SimDomain* const dst_;
  const Nanos min_delay_;
  uint64_t next_seq_ = 0;
  // Written only by the source domain during its window; drained only by the
  // coordinator at the barrier. Never touched concurrently.
  std::vector<Message> outbox_;
};

}  // namespace lsvd

#endif  // SRC_SIM_CROSS_DOMAIN_CHANNEL_H_
