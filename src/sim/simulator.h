// Discrete-event simulation engine.
//
// Everything time-dependent in this repository (SSD service times, backend
// disk seeks, network transfers, CPU overheads) runs on this engine's virtual
// clock, so benchmark results are deterministic and hardware-independent: a
// "throughput" number is bytes moved per *virtual* second.
//
// The engine is the innermost loop of every bench, so it is built for
// wall-clock speed without changing any virtual-time result:
//  - Events hold an InlineFn<64> — typical lambdas (a `this` pointer plus a
//    few scalars) live inside the event, so scheduling does not allocate.
//  - The pending set is a two-level calendar queue: a ring of 1024 buckets,
//    each 4096 ns wide (~4.2 ms near horizon), holding per-bucket binary
//    min-heaps, with a single overflow heap for far-future timers. Most
//    operations touch a heap of a handful of events instead of one giant
//    heap of everything in flight.
//
// Ordering is exactly (timestamp, FIFO sequence) — identical to the
// reference binary heap (see tests/calendar_queue_test.cc), which is what
// keeps every figure bit-identical across engine changes.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/util/inline_fn.h"
#include "src/util/units.h"

namespace lsvd {

class Simulator {
 public:
  using Fn = InlineFn<64>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Nanos now() const { return now_; }

  // Schedules `fn` at absolute virtual time `t` (>= now).
  void At(Nanos t, Fn fn);

  // Schedules `fn` `dt` nanoseconds from now.
  void After(Nanos dt, Fn fn) { At(now_ + dt, std::move(fn)); }

  // Runs one event; returns false if the queue is empty.
  bool Step();

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamps <= `t`, then sets the clock to `t`.
  // Returns the number of events processed.
  uint64_t RunUntil(Nanos t);

  // Sentinel returned by next_event_time() when the queue is empty.
  static constexpr Nanos kNoEventTime = INT64_MAX;

  // Timestamp of the earliest pending event, or kNoEventTime when empty.
  // Does not mutate queue state, so the parallel coordinator may call it
  // between windows without committing cursor movement.
  Nanos next_event_time() const {
    return size_ == 0 ? kNoEventTime : PeekNextTime();
  }

  // Runs events with timestamps strictly below `limit` and leaves the clock
  // at the last executed event (it does NOT advance to `limit`). This is the
  // window-execution primitive of the parallel engine (sim_domain.h): events
  // scheduled at exactly `limit` may still race with cross-domain messages
  // delivered at `limit`, so they belong to the next window.
  // Returns the number of events processed.
  uint64_t RunBefore(Nanos limit);

  // Advances the clock to `t` without running anything. Precondition: no
  // pending event is earlier than `t`. The parallel coordinator uses this to
  // line up quiesced domains before a barrier task so every domain observes
  // the same now().
  void AdvanceTo(Nanos t) {
    assert(size_ == 0 || PeekNextTime() >= t);
    if (now_ < t) {
      now_ = t;
    }
  }

  bool empty() const { return size_ == 0; }
  size_t pending_events() const { return size_; }

  // Total events executed over the simulator's lifetime (perf harness).
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Nanos t;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  // Calendar geometry: bucket width 2^12 ns, 1024 buckets => ~4.2 ms near
  // window; longer timers (writeback intervals, probes) overflow to `far_`.
  static constexpr int kBucketShift = 12;
  static constexpr uint64_t kNumBuckets = 1024;
  static constexpr uint64_t kBucketMask = kNumBuckets - 1;

  static uint64_t DayOf(Nanos t) {
    return static_cast<uint64_t>(t) >> kBucketShift;
  }

  // Days from `from_day` to the first non-empty bucket, scanning the
  // occupancy bitmap a word at a time (wrapping). Precondition:
  // near_size_ > 0, so a set bit exists within the window.
  uint64_t ScanToOccupied(uint64_t from_day) const;

  // Timestamp of the earliest pending event, without mutating any queue
  // state. Precondition: size_ > 0.
  Nanos PeekNextTime() const;

  // Moves far-heap events that now fall inside the near window into their
  // buckets, advances `cur_day_` to the first non-empty bucket, and returns
  // that bucket. Precondition: size_ > 0.
  //
  // Committing: callers must pop from the returned bucket. Advancing
  // cur_day_ without popping would let a later At() with an earlier
  // timestamp land in a bucket behind the cursor, where the scan finds it
  // only after a full wrap — events would run out of order and now() could
  // go backwards. Use PeekNextTime() to decide whether to pop at all.
  std::vector<Event>* SettleEarliest();

  // Pops the earliest event out of `bucket` (min of its heap).
  Event PopFrom(std::vector<Event>* bucket);

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  uint64_t processed_ = 0;

  // Occupancy bitmap over buckets_ (bit i = bucket i non-empty): lets the
  // cursor skip runs of empty buckets a word at a time. Long idle stretches
  // of virtual time otherwise cost one loop iteration per elapsed 4 µs day,
  // which dominates benches that simulate minutes of mostly-idle time.
  void MarkOccupied(uint64_t slot) {
    occupied_[slot >> 6] |= uint64_t{1} << (slot & 63);
  }
  void ClearOccupied(uint64_t slot) {
    occupied_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  }

  uint64_t cur_day_ = 0;    // earliest bucket the cursor has reached
  size_t near_size_ = 0;    // events currently in buckets_
  std::array<std::vector<Event>, kNumBuckets> buckets_;
  std::array<uint64_t, kNumBuckets / 64> occupied_{};
  std::vector<Event> far_;  // min-heap of events beyond the near window
};

}  // namespace lsvd

#endif  // SRC_SIM_SIMULATOR_H_
