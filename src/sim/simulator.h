// Discrete-event simulation engine.
//
// Everything time-dependent in this repository (SSD service times, backend
// disk seeks, network transfers, CPU overheads) runs on this engine's virtual
// clock, so benchmark results are deterministic and hardware-independent: a
// "throughput" number is bytes moved per *virtual* second.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/units.h"

namespace lsvd {

class Simulator {
 public:
  using Fn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Nanos now() const { return now_; }

  // Schedules `fn` at absolute virtual time `t` (>= now).
  void At(Nanos t, Fn fn);

  // Schedules `fn` `dt` nanoseconds from now.
  void After(Nanos dt, Fn fn) { At(now_ + dt, std::move(fn)); }

  // Runs one event; returns false if the queue is empty.
  bool Step();

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamps <= `t`, then sets the clock to `t`.
  // Returns the number of events processed.
  uint64_t RunUntil(Nanos t);

  bool empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos t;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace lsvd

#endif  // SRC_SIM_SIMULATOR_H_
