#include "src/sim/server_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lsvd {

ServerQueue::ServerQueue(Simulator* sim, int servers) : sim_(sim) {
  assert(servers > 0);
  free_at_.assign(static_cast<size_t>(servers), 0);
}

void ServerQueue::Submit(Nanos service, std::function<void()> done) {
  assert(service >= 0);
  // Pick the server that frees up earliest (equivalent to a shared FIFO fed
  // to k identical servers).
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const Nanos start = std::max(sim_->now(), *it);
  const Nanos end = start + service;
  *it = end;
  busy_ += service;
  sim_->At(end, [this, done = std::move(done)]() {
    completed_++;
    done();
  });
}

}  // namespace lsvd
