// Per-device storage service models for the backend cluster.
//
// Two device kinds from the paper's Table 1:
//  - HddModel: 10K RPM SAS HDD (config #2). Single actuator with an elevator
//    (shortest-seek-first) queue; writes within 128 KiB of the head are cheap
//    "near" accesses, matching the analysis in §4.5 of the paper.
//  - BackendSsdModel: consumer SATA SSD (config #1), ~10K sustained random
//    write IOPS per device, modeled as a small channel pool.
#ifndef SRC_SIM_DISK_MODEL_H_
#define SRC_SIM_DISK_MODEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "src/sim/server_queue.h"
#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace lsvd {

// Cumulative per-device counters, sampled by benches to compute utilization
// windows (paper Figure 12 uses /proc/diskstats busy fractions).
struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  Nanos busy = 0;
};

// Abstract device: asynchronous reads/writes against byte offsets.
class DiskModel {
 public:
  virtual ~DiskModel() = default;

  virtual void Submit(bool is_write, uint64_t offset, uint32_t len,
                      std::function<void()> done) = 0;

  const DiskStats& stats() const { return stats_; }

 protected:
  void Account(bool is_write, uint32_t len, Nanos service) {
    if (is_write) {
      stats_.write_ops++;
      stats_.write_bytes += len;
    } else {
      stats_.read_ops++;
      stats_.read_bytes += len;
    }
    stats_.busy += service;
  }

  DiskStats stats_;
};

struct HddParams {
  // Positioning cost when the target is within `near_distance` of the head
  // (track-following / same-cylinder access, e.g. consecutive OSD journal
  // appends).
  Nanos near_access = 150 * kMicrosecond;
  uint64_t near_distance = 128 * kKiB;
  // Graded long-seek cost: seek_base + seek_full * sqrt(distance/capacity),
  // the classic seek-curve shape. A lone random access on a 1 TB disk costs
  // ~3 ms (≈370 write IOPS as in the paper §4.5); a deep elevator queue
  // shrinks the achieved distance and thus the cost.
  Nanos seek_base = 600 * kMicrosecond;
  Nanos seek_full = 4500 * kMicrosecond;
  uint64_t capacity = kGiB * 1024;
  // Media transfer rate.
  double bandwidth_bps = 180.0 * 1e6;
  // Bound on the elevator's candidate window (ops considered for reordering).
  size_t queue_window = 64;
};

// Single-spindle hard disk with shortest-seek-first scheduling.
class HddModel : public DiskModel {
 public:
  HddModel(Simulator* sim, HddParams params);

  void Submit(bool is_write, uint64_t offset, uint32_t len,
              std::function<void()> done) override;

 private:
  struct Op {
    bool is_write;
    uint64_t offset;
    uint32_t len;
    std::function<void()> done;
  };

  void StartNext();
  Nanos ServiceTime(const Op& op) const;

  Simulator* sim_;
  HddParams params_;
  std::deque<Op> pending_;
  bool in_service_ = false;
  uint64_t head_pos_ = 0;
};

struct BackendSsdParams {
  int channels = 4;
  Nanos read_op = 100 * kMicrosecond;   // ~40K read IOPS across 4 channels
  Nanos write_op = 400 * kMicrosecond;  // ~10K sustained write IOPS
  double channel_bandwidth_bps = 125.0 * 1e6;  // ~500 MB/s aggregate
};

// Capacity/consumer SSD used as a backend pool device (config #1).
class BackendSsdModel : public DiskModel {
 public:
  BackendSsdModel(Simulator* sim, BackendSsdParams params);

  void Submit(bool is_write, uint64_t offset, uint32_t len,
              std::function<void()> done) override;

 private:
  BackendSsdParams params_;
  ServerQueue queue_;
};

}  // namespace lsvd

#endif  // SRC_SIM_DISK_MODEL_H_
