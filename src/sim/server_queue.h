// k-server FIFO service queue with busy-time accounting.
//
// Models any resource that serves requests with a known service time and
// bounded parallelism: SSD channels, a client CPU (k = 1), or a NIC link.
#ifndef SRC_SIM_SERVER_QUEUE_H_
#define SRC_SIM_SERVER_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace lsvd {

class ServerQueue {
 public:
  // `servers` is the number of requests that may be in service concurrently.
  ServerQueue(Simulator* sim, int servers);

  // Enqueues a request needing `service` ns of exclusive server time;
  // `done` fires when it completes.
  void Submit(Nanos service, std::function<void()> done);

  // Total server-nanoseconds spent busy so far (across all servers).
  Nanos busy_time() const { return busy_; }
  uint64_t completed_ops() const { return completed_; }

  // Fraction of one server's capacity used over [t0, t1), given cumulative
  // busy-time samples taken by the caller at t0 and t1.
  static double Utilization(Nanos busy_delta, Nanos interval, int servers) {
    if (interval <= 0) {
      return 0.0;
    }
    return static_cast<double>(busy_delta) /
           static_cast<double>(interval * servers);
  }

 private:
  Simulator* sim_;
  // Earliest time each server becomes free; size = number of servers.
  std::vector<Nanos> free_at_;
  Nanos busy_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace lsvd

#endif  // SRC_SIM_SERVER_QUEUE_H_
