#include "src/sim/cluster.h"

#include <cassert>
#include <utility>

namespace lsvd {
namespace {

// 64-bit mix for placement hashing.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// The WAL lives in the first part of each disk; data placement offsets are
// generated above it.
constexpr uint64_t kWalRegion = 8 * kGiB;

}  // namespace

BackendCluster::BackendCluster(Simulator* sim, ClusterConfig config,
                               MetricsRegistry* metrics,
                               const std::string& prefix)
    : sim_(sim), config_(config) {
  assert(config_.num_disks > 0);
  disks_.reserve(static_cast<size_t>(config_.num_disks));
  for (int i = 0; i < config_.num_disks; i++) {
    if (config_.kind == DiskKind::kHdd) {
      disks_.push_back(std::make_unique<HddModel>(sim_, config_.hdd));
    } else {
      disks_.push_back(std::make_unique<BackendSsdModel>(sim_, config_.ssd));
    }
  }
  wal_head_.assign(disks_.size(), 0);
  write_run_.assign(disks_.size(), WriteRun{});

  if (metrics != nullptr) {
    for (int i = 0; i < config_.num_disks; i++) {
      DiskModel* d = disks_[static_cast<size_t>(i)].get();
      const std::string base = prefix + ".disk[" + std::to_string(i) + "]";
      metrics->RegisterCallback(base + ".busy_us", [d] {
        return static_cast<double>(d->stats().busy) / 1000.0;
      });
      metrics->RegisterCallback(base + ".read_ops", [d] {
        return static_cast<double>(d->stats().read_ops);
      });
      metrics->RegisterCallback(base + ".write_ops", [d] {
        return static_cast<double>(d->stats().write_ops);
      });
      metrics->RegisterCallback(base + ".read_bytes", [d] {
        return static_cast<double>(d->stats().read_bytes);
      });
      metrics->RegisterCallback(base + ".write_bytes", [d] {
        return static_cast<double>(d->stats().write_bytes);
      });
    }
    metrics->RegisterCallback(prefix + ".total.busy_us", [this] {
      return static_cast<double>(TotalBusy()) / 1000.0;
    });
    metrics->RegisterCallback(prefix + ".total.read_ops", [this] {
      return static_cast<double>(TotalStats().read_ops);
    });
    metrics->RegisterCallback(prefix + ".total.write_ops", [this] {
      return static_cast<double>(TotalStats().write_ops);
    });
    metrics->RegisterCallback(prefix + ".total.read_bytes", [this] {
      return static_cast<double>(TotalStats().read_bytes);
    });
    metrics->RegisterCallback(prefix + ".total.write_bytes", [this] {
      return static_cast<double>(TotalStats().write_bytes);
    });
  }
}

void BackendCluster::Write(int disk, uint64_t offset, uint32_t len,
                           std::function<void()> done) {
  assert(disk >= 0 && disk < num_disks());
  AccountWrite(disk, offset, len);
  disks_[static_cast<size_t>(disk)]->Submit(true, offset, len,
                                            std::move(done));
}

void BackendCluster::Read(int disk, uint64_t offset, uint32_t len,
                          std::function<void()> done) {
  assert(disk >= 0 && disk < num_disks());
  disks_[static_cast<size_t>(disk)]->Submit(false, offset, len,
                                            std::move(done));
}

int BackendCluster::PickDisk(uint64_t hash, int replica) const {
  // Derive a distinct pseudo-random permutation start per item; successive
  // replicas step by a hash-derived odd stride so copies land on distinct
  // disks (for replica < num_disks).
  const auto n = static_cast<uint64_t>(num_disks());
  const uint64_t start = Mix(hash) % n;
  const uint64_t stride = (Mix(hash ^ 0xA5A5A5A5A5A5A5A5ULL) % (n - 1)) + 1;
  return static_cast<int>((start + stride * static_cast<uint64_t>(replica)) %
                          n);
}

uint64_t BackendCluster::WalAppend(int disk, uint32_t len,
                                   std::function<void()> done) {
  assert(disk >= 0 && disk < num_disks());
  auto& head = wal_head_[static_cast<size_t>(disk)];
  const uint64_t offset = head;
  head += len;
  if (head >= kWalRegion) {
    head = 0;  // circular journal
  }
  Write(disk, offset, len, std::move(done));
  return offset;
}

DiskStats BackendCluster::TotalStats() const {
  DiskStats total;
  for (const auto& d : disks_) {
    const DiskStats& s = d->stats();
    total.read_ops += s.read_ops;
    total.write_ops += s.write_ops;
    total.read_bytes += s.read_bytes;
    total.write_bytes += s.write_bytes;
    total.busy += s.busy;
  }
  return total;
}

Nanos BackendCluster::TotalBusy() const {
  Nanos busy = 0;
  for (const auto& d : disks_) {
    busy += d->stats().busy;
  }
  return busy;
}

double BackendCluster::MeanUtilization(Nanos busy_at_t0, Nanos t0,
                                       Nanos t1) const {
  const Nanos interval = t1 - t0;
  if (interval <= 0) {
    return 0.0;
  }
  const Nanos busy_delta = TotalBusy() - busy_at_t0;
  return static_cast<double>(busy_delta) /
         static_cast<double>(interval * num_disks());
}

void BackendCluster::AccountWrite(int disk, uint64_t offset, uint32_t len) {
  auto& run = write_run_[static_cast<size_t>(disk)];
  if (run.len > 0 && offset == run.end) {
    run.end += len;
    run.len += len;
    return;
  }
  if (run.len > 0) {
    write_sizes_.Add(run.len, run.len);
  }
  run.end = offset + len;
  run.len = len;
}

void BackendCluster::FlushWriteRuns() {
  for (auto& run : write_run_) {
    if (run.len > 0) {
      write_sizes_.Add(run.len, run.len);
      run = WriteRun{};
    }
  }
}

}  // namespace lsvd
