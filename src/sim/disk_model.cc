#include "src/sim/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace lsvd {

HddModel::HddModel(Simulator* sim, HddParams params)
    : sim_(sim), params_(params) {}

void HddModel::Submit(bool is_write, uint64_t offset, uint32_t len,
                      std::function<void()> done) {
  pending_.push_back(Op{is_write, offset, len, std::move(done)});
  if (!in_service_) {
    StartNext();
  }
}

Nanos HddModel::ServiceTime(const Op& op) const {
  const uint64_t distance = op.offset > head_pos_ ? op.offset - head_pos_
                                                  : head_pos_ - op.offset;
  Nanos position;
  if (distance <= params_.near_distance) {
    position = params_.near_access;
  } else {
    const double frac = std::min(
        1.0, static_cast<double>(distance) /
                 static_cast<double>(params_.capacity));
    position = params_.seek_base +
               static_cast<Nanos>(static_cast<double>(params_.seek_full) *
                                  std::sqrt(frac));
  }
  const auto transfer = static_cast<Nanos>(
      static_cast<double>(op.len) / params_.bandwidth_bps * 1e9);
  return position + transfer;
}

void HddModel::StartNext() {
  if (pending_.empty()) {
    in_service_ = false;
    return;
  }
  in_service_ = true;
  // Elevator: among the first `queue_window` queued ops, serve the one with
  // the smallest positioning distance from the current head location.
  const size_t window = std::min(pending_.size(), params_.queue_window);
  size_t best = 0;
  uint64_t best_distance = UINT64_MAX;
  for (size_t i = 0; i < window; i++) {
    const uint64_t off = pending_[i].offset;
    const uint64_t d = off > head_pos_ ? off - head_pos_ : head_pos_ - off;
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  Op op = std::move(pending_[best]);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(best));

  const Nanos service = ServiceTime(op);
  Account(op.is_write, op.len, service);
  head_pos_ = op.offset + op.len;
  sim_->After(service, [this, done = std::move(op.done)]() {
    done();
    StartNext();
  });
}

BackendSsdModel::BackendSsdModel(Simulator* sim, BackendSsdParams params)
    : params_(params), queue_(sim, params.channels) {}

void BackendSsdModel::Submit(bool is_write, uint64_t offset, uint32_t len,
                             std::function<void()> done) {
  (void)offset;  // SSDs have no positional cost in this model.
  const Nanos op_cost = is_write ? params_.write_op : params_.read_op;
  const auto transfer = static_cast<Nanos>(
      static_cast<double>(len) / params_.channel_bandwidth_bps * 1e9);
  const Nanos service = std::max(op_cost, transfer);
  Account(is_write, len, service);
  queue_.Submit(service, std::move(done));
}

}  // namespace lsvd
