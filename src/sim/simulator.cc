#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lsvd {

void Simulator::At(Nanos t, Fn fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  if (t < now_) {
    t = now_;  // release-mode safety: keep the bucket invariant intact
  }
  const uint64_t day = DayOf(t);
  Event ev{t, next_seq_++, std::move(fn)};
  if (day < cur_day_ + kNumBuckets) {
    auto& bucket = buckets_[day & kBucketMask];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    MarkOccupied(day & kBucketMask);
    near_size_++;
  } else {
    far_.push_back(std::move(ev));
    std::push_heap(far_.begin(), far_.end(), Later{});
  }
  size_++;
}

std::vector<Simulator::Event>* Simulator::SettleEarliest() {
  assert(size_ > 0);
  if (near_size_ == 0) {
    // Nothing near: jump the window to the earliest far timer.
    cur_day_ = DayOf(far_.front().t);
  }
  // Pull in far events that the advancing window has caught up with. Any
  // far event earlier than every near event necessarily falls inside the
  // window (near events were inserted with day < cur_day_ + kNumBuckets),
  // so after this loop the global minimum lives in a bucket.
  while (!far_.empty() && DayOf(far_.front().t) < cur_day_ + kNumBuckets) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    Event ev = std::move(far_.back());
    far_.pop_back();
    const uint64_t slot = DayOf(ev.t) & kBucketMask;
    auto& bucket = buckets_[slot];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    MarkOccupied(slot);
    near_size_++;
  }
  // Advance the cursor to the first non-empty bucket via the occupancy
  // bitmap (a word at a time, wrapping). The cursor only moves forward, and
  // at least one near event exists here, so a set bit is always found
  // within the window.
  const uint64_t start = cur_day_ & kBucketMask;
  constexpr uint64_t kWordMask = kNumBuckets / 64 - 1;
  const uint64_t word_idx = start >> 6;
  uint64_t word = occupied_[word_idx] & (~uint64_t{0} << (start & 63));
  uint64_t advance;
  if (word != 0) {
    advance = static_cast<uint64_t>(std::countr_zero(word)) - (start & 63);
  } else {
    advance = 64 - (start & 63);
    // <= kWordMask + 1: the last iteration re-reads the first word, whose
    // low bits map to the far end of the ring (days just under +1024).
    for (uint64_t i = 1; i <= kWordMask + 1; i++) {
      word = occupied_[(word_idx + i) & kWordMask];
      if (word != 0) {
        advance += static_cast<uint64_t>(std::countr_zero(word));
        break;
      }
      advance += 64;
      assert(i <= kWordMask && "no occupied bucket despite near events");
    }
  }
  cur_day_ += advance;
  return &buckets_[cur_day_ & kBucketMask];
}

Simulator::Event Simulator::PopFrom(std::vector<Event>* bucket) {
  std::pop_heap(bucket->begin(), bucket->end(), Later{});
  Event ev = std::move(bucket->back());
  bucket->pop_back();
  if (bucket->empty()) {
    ClearOccupied(static_cast<uint64_t>(bucket - buckets_.data()));
  }
  near_size_--;
  size_--;
  processed_++;
  return ev;
}

bool Simulator::Step() {
  if (size_ == 0) {
    return false;
  }
  // The event is moved out before running so the handler may schedule
  // further events (mutating the queue) safely.
  Event ev = PopFrom(SettleEarliest());
  now_ = ev.t;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

uint64_t Simulator::RunUntil(Nanos t) {
  uint64_t processed = 0;
  while (size_ > 0) {
    std::vector<Event>* bucket = SettleEarliest();
    if (bucket->front().t > t) {
      break;
    }
    Event ev = PopFrom(bucket);
    now_ = ev.t;
    ev.fn();
    processed++;
  }
  if (now_ < t) {
    now_ = t;
  }
  return processed;
}

}  // namespace lsvd
