#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace lsvd {

void Simulator::At(Nanos t, Fn fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the event is copied out so the handler
  // may schedule further events (mutating the queue) safely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

uint64_t Simulator::RunUntil(Nanos t) {
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    Step();
    processed++;
  }
  if (now_ < t) {
    now_ = t;
  }
  return processed;
}

}  // namespace lsvd
