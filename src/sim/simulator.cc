#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lsvd {

void Simulator::At(Nanos t, Fn fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  if (t < now_) {
    t = now_;  // release-mode safety: keep the bucket invariant intact
  }
  const uint64_t day = DayOf(t);
  Event ev{t, next_seq_++, std::move(fn)};
  if (day < cur_day_ + kNumBuckets) {
    auto& bucket = buckets_[day & kBucketMask];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    MarkOccupied(day & kBucketMask);
    near_size_++;
  } else {
    far_.push_back(std::move(ev));
    std::push_heap(far_.begin(), far_.end(), Later{});
  }
  size_++;
}

uint64_t Simulator::ScanToOccupied(uint64_t from_day) const {
  assert(near_size_ > 0);
  const uint64_t start = from_day & kBucketMask;
  constexpr uint64_t kWordMask = kNumBuckets / 64 - 1;
  const uint64_t word_idx = start >> 6;
  uint64_t word = occupied_[word_idx] & (~uint64_t{0} << (start & 63));
  if (word != 0) {
    return static_cast<uint64_t>(std::countr_zero(word)) - (start & 63);
  }
  uint64_t advance = 64 - (start & 63);
  // <= kWordMask + 1: the last iteration re-reads the first word, whose
  // low bits map to the far end of the ring (days just under +1024).
  for (uint64_t i = 1; i <= kWordMask + 1; i++) {
    word = occupied_[(word_idx + i) & kWordMask];
    if (word != 0) {
      advance += static_cast<uint64_t>(std::countr_zero(word));
      break;
    }
    advance += 64;
    assert(i <= kWordMask && "no occupied bucket despite near events");
  }
  return advance;
}

Nanos Simulator::PeekNextTime() const {
  assert(size_ > 0);
  if (near_size_ == 0) {
    return far_.front().t;
  }
  // Every bucketed event precedes every far timer: bucketed events have
  // day < cur_day_ + kNumBuckets (checked at insert, cursor only advances),
  // while far_.front() has day >= cur_day_ + kNumBuckets (checked at insert
  // and re-established by SettleEarliest's migration loop). So the first
  // occupied bucket at/after the cursor holds the global minimum.
  const uint64_t day = cur_day_ + ScanToOccupied(cur_day_);
  return buckets_[day & kBucketMask].front().t;
}

std::vector<Simulator::Event>* Simulator::SettleEarliest() {
  assert(size_ > 0);
  if (near_size_ == 0) {
    // Nothing near: jump the window to the earliest far timer.
    cur_day_ = DayOf(far_.front().t);
  }
  // Pull in far events that the advancing window has caught up with. Any
  // far event earlier than every near event necessarily falls inside the
  // window (near events were inserted with day < cur_day_ + kNumBuckets),
  // so after this loop the global minimum lives in a bucket.
  while (!far_.empty() && DayOf(far_.front().t) < cur_day_ + kNumBuckets) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    Event ev = std::move(far_.back());
    far_.pop_back();
    const uint64_t slot = DayOf(ev.t) & kBucketMask;
    auto& bucket = buckets_[slot];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    MarkOccupied(slot);
    near_size_++;
  }
  cur_day_ += ScanToOccupied(cur_day_);
  return &buckets_[cur_day_ & kBucketMask];
}

Simulator::Event Simulator::PopFrom(std::vector<Event>* bucket) {
  std::pop_heap(bucket->begin(), bucket->end(), Later{});
  Event ev = std::move(bucket->back());
  bucket->pop_back();
  if (bucket->empty()) {
    ClearOccupied(static_cast<uint64_t>(bucket - buckets_.data()));
  }
  near_size_--;
  size_--;
  processed_++;
  return ev;
}

bool Simulator::Step() {
  if (size_ == 0) {
    return false;
  }
  // The event is moved out before running so the handler may schedule
  // further events (mutating the queue) safely.
  Event ev = PopFrom(SettleEarliest());
  now_ = ev.t;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

uint64_t Simulator::RunUntil(Nanos t) {
  uint64_t processed = 0;
  // Peek before settling: SettleEarliest commits cursor movement, which is
  // only safe when the found event is actually popped. If it ran here and
  // the front event exceeded t, the cursor would be left ahead of now_ and
  // a later At() could place an earlier event behind it (see SettleEarliest
  // contract in simulator.h).
  while (size_ > 0 && PeekNextTime() <= t) {
    Event ev = PopFrom(SettleEarliest());
    now_ = ev.t;
    ev.fn();
    processed++;
  }
  if (now_ < t) {
    now_ = t;
  }
  return processed;
}

uint64_t Simulator::RunBefore(Nanos limit) {
  uint64_t processed = 0;
  // Same peek-before-settle discipline as RunUntil: only commit cursor
  // movement when the event is actually popped.
  while (size_ > 0 && PeekNextTime() < limit) {
    Event ev = PopFrom(SettleEarliest());
    now_ = ev.t;
    ev.fn();
    processed++;
  }
  return processed;
}

}  // namespace lsvd
