// Backend storage cluster model: N IOPS-limited devices behind a network.
//
// Reproduces the two Ceph pools from the paper's Table 1:
//   config #1: 4 nodes, 32 consumer SATA SSDs
//   config #2: 9 nodes, 62 10K-RPM SAS HDDs
// The cluster exposes raw per-disk reads/writes; placement policies
// (replication, erasure coding, RBD chunking) live in src/objstore and
// src/baseline and are expressed as patterns of these raw ops. Per-disk busy
// time, op counts, and a merged-sequential write-size histogram are tracked
// for the backend-load experiments (Figures 12-14).
#ifndef SRC_SIM_CLUSTER_H_
#define SRC_SIM_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/sim/simulator.h"
#include "src/util/histogram.h"
#include "src/util/metrics.h"
#include "src/util/units.h"

namespace lsvd {

enum class DiskKind { kHdd, kSsd };

struct ClusterConfig {
  DiskKind kind = DiskKind::kSsd;
  int num_disks = 32;
  HddParams hdd;
  BackendSsdParams ssd;
  // Logical capacity per disk, used only to spread placement offsets.
  uint64_t disk_capacity = kGiB * 1024;

  static ClusterConfig SsdPool() {  // Table 1 config #1
    ClusterConfig c;
    c.kind = DiskKind::kSsd;
    c.num_disks = 32;
    return c;
  }
  static ClusterConfig HddPool() {  // Table 1 config #2
    ClusterConfig c;
    c.kind = DiskKind::kHdd;
    c.num_disks = 62;
    return c;
  }
};

class BackendCluster {
 public:
  // If `metrics` is given, per-disk and cluster-total callback gauges
  // ("cluster.disk[i].busy_us" etc.) register there as live views over the
  // disk models; snapshots read them at snapshot time.
  BackendCluster(Simulator* sim, ClusterConfig config,
                 MetricsRegistry* metrics = nullptr,
                 const std::string& prefix = "cluster");

  int num_disks() const { return static_cast<int>(disks_.size()); }
  uint64_t disk_capacity() const { return config_.disk_capacity; }

  // Raw device ops. `disk` in [0, num_disks).
  void Write(int disk, uint64_t offset, uint32_t len,
             std::function<void()> done);
  void Read(int disk, uint64_t offset, uint32_t len,
            std::function<void()> done);

  // Deterministic placement: the `replica`-th copy of an item with the given
  // hash, on distinct disks.
  int PickDisk(uint64_t hash, int replica) const;

  // Appends `len` bytes to the per-disk write-ahead-log region, which is
  // written sequentially (so HDD near-access costs apply), and returns the
  // offset written. Models Ceph OSD journaling behaviour.
  uint64_t WalAppend(int disk, uint32_t len, std::function<void()> done);

  // --- statistics ---
  const DiskStats& disk_stats(int disk) const { return disks_[disk]->stats(); }
  DiskStats TotalStats() const;
  // Cumulative busy nanoseconds summed over all disks (sample twice and
  // subtract to get a window).
  Nanos TotalBusy() const;
  // Mean per-disk utilization in [t0, t1) given a busy sample from t0.
  double MeanUtilization(Nanos busy_at_t0, Nanos t0, Nanos t1) const;

  // Histogram of backend write sizes with consecutive sequential writes to
  // the same disk merged, as in the paper's Figure 14 analysis. Call
  // FlushWriteRuns() before reading.
  void FlushWriteRuns();
  const Histogram& write_size_histogram() const { return write_sizes_; }

 private:
  struct WriteRun {
    uint64_t end = UINT64_MAX;  // offset one past the last write
    uint64_t len = 0;
  };

  void AccountWrite(int disk, uint64_t offset, uint32_t len);

  Simulator* sim_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::vector<uint64_t> wal_head_;   // per-disk WAL append offset
  std::vector<WriteRun> write_run_;  // per-disk open merge run
  Histogram write_sizes_;
};

}  // namespace lsvd

#endif  // SRC_SIM_CLUSTER_H_
