// Client network link model: 10 Gbit Ethernet (Table 1).
//
// Models the client machine's NIC as separate transmit and receive queues
// with a fixed round-trip latency. Transfers to the backend serialize on the
// single client link, which is what makes the single client machine the
// bottleneck at high LSVD IOPS (paper §4.5).
#ifndef SRC_SIM_NET_LINK_H_
#define SRC_SIM_NET_LINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/sim/server_queue.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "src/util/units.h"

namespace lsvd {

struct NetParams {
  double bandwidth_bps = 1.25e9;     // 10 Gbit
  Nanos rtt = 200 * kMicrosecond;    // LAN round trip
};

class NetLink {
 public:
  NetLink(Simulator* sim, NetParams params)
      : sim_(sim), params_(params), tx_(sim, 1), rx_(sim, 1) {}

  Nanos rtt() const { return params_.rtt; }
  Nanos half_rtt() const { return params_.rtt / 2; }

  // Client -> backend transfer of `bytes`; `done` fires when the last byte
  // leaves the link (propagation added by callers via half_rtt()).
  void SendToBackend(uint64_t bytes, std::function<void()> done) {
    sent_ += bytes;
    tx_.Submit(TransferTime(bytes), std::move(done));
  }

  // Backend -> client transfer.
  void ReceiveFromBackend(uint64_t bytes, std::function<void()> done) {
    received_ += bytes;
    rx_.Submit(TransferTime(bytes), std::move(done));
  }

  uint64_t bytes_sent() const { return sent_; }
  uint64_t bytes_received() const { return received_; }

  // Opt-in byte-counter gauges (callers that want them in --json dumps call
  // this once after construction; the counters exist either way).
  void RegisterMetrics(MetricsRegistry* metrics,
                       const std::string& prefix = "net") {
    metrics->RegisterCallback(prefix + ".bytes_sent", [this] {
      return static_cast<double>(sent_);
    });
    metrics->RegisterCallback(prefix + ".bytes_received", [this] {
      return static_cast<double>(received_);
    });
  }

  Nanos TransferTime(uint64_t bytes) const {
    return static_cast<Nanos>(static_cast<double>(bytes) /
                              params_.bandwidth_bps * 1e9);
  }

 private:
  Simulator* sim_;
  NetParams params_;
  ServerQueue tx_;
  ServerQueue rx_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace lsvd

#endif  // SRC_SIM_NET_LINK_H_
