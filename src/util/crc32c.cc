#include "src/util/crc32c.h"

#include <array>

namespace lsvd {
namespace {

// Generates the 8 slicing tables at static-initialization time.
struct Tables {
  uint32_t t[8][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& tb = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Process 8 bytes at a time with slicing-by-8.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24));
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace lsvd
