#include "src/util/crc32c.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define LSVD_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define LSVD_CRC32C_ARM 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace lsvd {
namespace {

// Generates the 8 slicing tables at static-initialization time.
struct Tables {
  uint32_t t[8][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

// Extend-by-zeros support. Feeding one zero byte advances the (inverted)
// CRC register by the GF(2)-linear map s -> (s >> 8) ^ T0[s & 0xff], so a
// run of n zero bytes applies that matrix to the n-th power. Precomputing
// the 64 repeated squarings M^(2^k) lets any n be applied as O(popcount(n))
// 32x32 bit-matrix multiplies — independent of which byte-level
// implementation (hardware or software) produced `crc`.
struct ZeroMatrices {
  // mat[k][j] = column j of M^(2^k), i.e. the image of basis state 1<<j.
  uint32_t mat[64][32];

  ZeroMatrices() {
    const auto& tb = GetTables();
    for (uint32_t j = 0; j < 32; j++) {
      const uint32_t s = uint32_t{1} << j;
      mat[0][j] = (s >> 8) ^ tb.t[0][s & 0xFF];
    }
    for (int k = 1; k < 64; k++) {
      for (uint32_t j = 0; j < 32; j++) {
        mat[k][j] = Apply(mat[k - 1], mat[k - 1][j]);
      }
    }
  }

  static uint32_t Apply(const uint32_t (&m)[32], uint32_t s) {
    uint32_t r = 0;
    while (s != 0) {
      r ^= m[std::countr_zero(s)];
      s &= s - 1;
    }
    return r;
  }
};

const ZeroMatrices& GetZeroMatrices() {
  static const ZeroMatrices zm;
  return zm;
}

#if defined(LSVD_CRC32C_X86)

__attribute__((target("sse4.2")))
uint32_t ExtendHardware(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Head: bring the pointer to 8-byte alignment.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    n--;
  }
  // Body: 8 bytes per instruction, unrolled 4x to keep the three-cycle
  // crc32 latency chains overlapped with loads.
  uint64_t crc64 = crc;
  while (n >= 32) {
    uint64_t a;
    uint64_t b;
    uint64_t c;
    uint64_t d;
    std::memcpy(&a, p, 8);
    std::memcpy(&b, p + 8, 8);
    std::memcpy(&c, p + 16, 8);
    std::memcpy(&d, p + 24, 8);
    crc64 = _mm_crc32_u64(crc64, a);
    crc64 = _mm_crc32_u64(crc64, b);
    crc64 = _mm_crc32_u64(crc64, c);
    crc64 = _mm_crc32_u64(crc64, d);
    p += 32;
    n -= 32;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return ~crc;
}

bool HardwareSupported() { return __builtin_cpu_supports("sse4.2") != 0; }
constexpr const char* kHardwareName = "sse4.2";

#elif defined(LSVD_CRC32C_ARM)

uint32_t ExtendHardware(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    n--;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *p++);
  }
  return ~crc;
}

bool HardwareSupported() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return true;  // compiled with +crc, assume the target has it
#endif
}
constexpr const char* kHardwareName = "armv8";

#endif

struct Dispatch {
  internal::Crc32cFn fn;
  const char* name;
};

Dispatch PickImpl() {
#if defined(LSVD_CRC32C_X86) || defined(LSVD_CRC32C_ARM)
  if (HardwareSupported()) {
    return {&ExtendHardware, kHardwareName};
  }
#endif
  return {&internal::Crc32cExtendSoftware, "software"};
}

const Dispatch& GetDispatch() {
  static const Dispatch dispatch = PickImpl();
  return dispatch;
}

}  // namespace

namespace internal {

uint32_t Crc32cExtendSoftware(uint32_t crc, const void* data, size_t n) {
  const auto& tb = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Process 8 bytes at a time with slicing-by-8.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24));
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

Crc32cFn Crc32cHardwareImpl() {
#if defined(LSVD_CRC32C_X86) || defined(LSVD_CRC32C_ARM)
  if (HardwareSupported()) {
    return &ExtendHardware;
  }
#endif
  return nullptr;
}

}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  return GetDispatch().fn(crc, data, n);
}

uint32_t Crc32cExtendZeros(uint32_t crc, uint64_t n) {
  const auto& zm = GetZeroMatrices();
  uint32_t s = ~crc;
  for (int k = 0; n != 0; n >>= 1, k++) {
    if (n & 1) {
      s = ZeroMatrices::Apply(zm.mat[k], s);
    }
  }
  return ~s;
}

const char* Crc32cImplName() { return GetDispatch().name; }

}  // namespace lsvd
