// Unified metrics layer: a registry of named counters, gauges, and
// Histogram-backed latency timers shared by every component in the stack.
//
// Names are hierarchical, dot-separated, and stable — they are the public
// observability interface documented in docs/METRICS.md (e.g.
// "lsvd.write.ack_us", "backend.gc.bytes_moved", "cluster.disk[0].busy_us").
//
// Ownership model: each top-level object (LsvdDisk, BcacheDevice, RbdDisk,
// bench::World, ...) owns one MetricsRegistry and hands a pointer plus a name
// prefix to its components. Components constructed standalone (tests, the
// recovery probe inside WriteCache::Recover) pass nullptr and get a private
// registry, so no call site is forced to care about metrics.
//
// Snapshots are cheap value copies; DiffSince() subtracts a baseline snapshot
// (per bucket for histograms) so steady-state intervals can be measured after
// a warm-up phase. ToJson()/ToTable() render a snapshot for machines/humans.
#ifndef SRC_UTIL_METRICS_H_
#define SRC_UTIL_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/histogram.h"

namespace lsvd {

// Monotonically increasing event/byte counter.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Instantaneous value, set by its owner (for values with no natural setter
// prefer MetricsRegistry::RegisterCallback, which samples at snapshot time).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Point-in-time copy of a registry's contents. Plain data: safe to keep after
// the registry (and the components feeding it) are destroyed.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind = Kind::kCounter;
    // Counter value (as integer) or gauge value.
    double value = 0.0;
    // Histogram state. With sub_bits 0 (the default), buckets[i] covers
    // [2^i, 2^(i+1)) and bucket 0 is [0, 2); with sub_bits k > 0 the
    // histogram uses log-linear geometry (see HistogramBucketLower).
    uint64_t count = 0;
    uint64_t weight = 0;
    int sub_bits = 0;
    double value_sum = 0.0;
    std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (count, weight)

    // Histogram percentile by sample count, interpolated within the bucket
    // (mirrors Histogram::Percentile). Returns 0 for empty/non-histograms.
    double Percentile(double fraction) const;
    double Mean() const;
  };

  std::map<std::string, Entry> entries;

  // Null if the name is not present.
  const Entry* Find(const std::string& name) const;
  // Counter value for `name`, or 0 if absent / not a counter.
  uint64_t CounterValue(const std::string& name) const;
  // Percentile of the named histogram, or 0 if absent.
  double Percentile(const std::string& name, double fraction) const;

  // Returns (*this - baseline): counters and histogram buckets subtract;
  // gauges keep this snapshot's value. Entries absent from the baseline pass
  // through unchanged.
  MetricsSnapshot DiffSince(const MetricsSnapshot& baseline) const;

  // Single-line JSON object. Counters are integers, gauges doubles;
  // histograms expand to {"count", "mean", "p50", "p99", "buckets": [[lower,
  // count, weight], ...]}. Never emits NaN/Inf (invalid JSON).
  std::string ToJson() const;
  // Aligned human-readable listing (one metric per row; histograms show
  // count/mean/p50/p99).
  std::string ToTable() const;
};

// Registry of named metrics. Get-or-create: the same name always returns the
// same object, and pointers remain valid for the registry's lifetime, so
// components resolve their metrics once at construction and increment through
// raw pointers on the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. A name registered as one kind must not be
  // requested as another (asserts in debug builds, returns a detached
  // dummy object in release builds so the caller never crashes).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `sub_bits` selects the histogram's bucket geometry on first creation
  // (see histogram.h); later lookups return the existing histogram no matter
  // what they pass, so a bench wanting fine p99.9 resolution pre-creates the
  // name with sub_bits > 0 before the component resolves it.
  Histogram* GetHistogram(const std::string& name, int sub_bits = 0);

  // Registers a gauge whose value is computed by `fn` at snapshot time —
  // the idiomatic way to expose existing state (utilization, queue depths,
  // sim::DiskStats) without mirroring writes. Re-registering a name replaces
  // the callback; `fn` must stay valid for the registry's lifetime or until
  // replaced/unregistered. Components whose lifetime is shorter than the
  // registry's (per-volume components on a shared host registry) must
  // register through a CallbackGuard instead of calling this directly.
  void RegisterCallback(const std::string& name, std::function<double()> fn);
  // Drops the callback for `name`, freezing its last sampled value into a
  // plain gauge so the metric stays visible in post-detach dumps. No-op for
  // unknown names or non-callback slots.
  void UnregisterCallback(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToTable() const { return Snapshot().ToTable(); }

  size_t size() const { return slots_.size(); }

 private:
  struct Slot {
    MetricsSnapshot::Kind kind = MetricsSnapshot::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  // if set, overrides gauge->value()
  };
  // std::map: deterministic export order, stable addresses for owned objects.
  std::map<std::string, Slot> slots_;
};

// RAII holder for snapshot-time gauge callbacks. A component that can be
// destroyed while its registry lives on (any per-volume component on a
// multi-tenant host's shared registry) registers through a guard member so
// destruction unregisters the callbacks — a dangling `this` capture would
// crash the next snapshot. Declare the guard AFTER the registry pointer and
// the state the callbacks read, so it is destroyed first.
class CallbackGuard {
 public:
  CallbackGuard() = default;
  CallbackGuard(const CallbackGuard&) = delete;
  CallbackGuard& operator=(const CallbackGuard&) = delete;
  ~CallbackGuard() { Release(); }

  void Register(MetricsRegistry* registry, const std::string& name,
                std::function<double()> fn) {
    registry->RegisterCallback(name, std::move(fn));
    registered_.emplace_back(registry, name);
  }

  // Unregisters everything now (callbacks freeze their last value).
  void Release() {
    for (const auto& [registry, name] : registered_) {
      registry->UnregisterCallback(name);
    }
    registered_.clear();
  }

 private:
  std::vector<std::pair<MetricsRegistry*, std::string>> registered_;
};

// Records an elapsed simulated duration (nanoseconds) into a latency
// histogram in microseconds. Null histogram or negative interval is a no-op,
// so call sites don't need metric-enabled/disabled branches.
inline void RecordLatencyUs(Histogram* h, int64_t nanos) {
  if (h == nullptr || nanos < 0) {
    return;
  }
  h->Add(static_cast<uint64_t>(nanos) / 1000);
}

}  // namespace lsvd

#endif  // SRC_UTIL_METRICS_H_
