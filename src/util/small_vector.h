// SmallVector: a contiguous vector with inline storage for the first N
// elements, so the extent-map hot paths (Lookup/Update segment outputs,
// typically 1-3 entries) never touch the heap.
//
// Deliberately minimal — push/emplace, clear, reserve, iteration, copy and
// move — which is all the translation-map call sites need.
#ifndef SRC_UTIL_SMALL_VECTOR_H_
#define SRC_UTIL_SMALL_VECTOR_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lsvd {

template <typename T, size_t N>
class SmallVector {
 public:
  static_assert(N > 0, "inline capacity must be non-zero");

  SmallVector() noexcept : data_(InlineData()), size_(0), cap_(N) {}

  SmallVector(const SmallVector& other) : SmallVector() {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; i++) {
      ::new (data_ + i) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    TakeFrom(std::move(other));
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (size_t i = 0; i < other.size_; i++) {
        ::new (data_ + i) T(other.data_[i]);
      }
      size_ = other.size_;
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Deallocate();
      data_ = InlineData();
      size_ = 0;
      cap_ = N;
      TakeFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { Deallocate(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }
  bool is_inline() const { return data_ == InlineData(); }

  T& operator[](size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) {
      // Construct into the fresh storage before the old elements are moved
      // out and freed: the arguments may reference an element of this
      // vector (push_back(v[0])), which std::vector guarantees works.
      const size_t new_cap = cap_ * 2;
      T* fresh = Allocate(new_cap);
      T* slot = ::new (fresh + size_) T(std::forward<Args>(args)...);
      Rehome(fresh, new_cap);
      size_++;
      return *slot;
    }
    T* slot = ::new (data_ + size_) T(std::forward<Args>(args)...);
    size_++;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    size_--;
    data_[size_].~T();
  }

  // Destroys elements but keeps the current storage (inline or heap), so a
  // scratch vector reused across calls stops reallocating once warm.
  void clear() {
    for (size_t i = 0; i < size_; i++) {
      data_[i].~T();
    }
    size_ = 0;
  }

  void reserve(size_t want) {
    if (want > cap_) {
      Grow(want);
    }
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    for (size_t i = 0; i < a.size_; i++) {
      if (!(a.data_[i] == b.data_[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  static T* Allocate(size_t cap) {
    return static_cast<T*>(
        ::operator new(cap * sizeof(T), std::align_val_t(alignof(T))));
  }

  // Moves the live elements into `fresh` and retires the old storage.
  // `fresh` may already hold a just-constructed element past size_ (the
  // emplace_back growth path), which this leaves untouched.
  void Rehome(T* fresh, size_t new_cap) {
    for (size_t i = 0; i < size_; i++) {
      ::new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    cap_ = new_cap;
  }

  void Grow(size_t want) {
    const size_t new_cap = want > cap_ * 2 ? want : cap_ * 2;
    Rehome(Allocate(new_cap), new_cap);
  }

  // Move-assignment helper: expects *this to be empty and inline.
  void TakeFrom(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      for (size_t i = 0; i < other.size_; i++) {
        ::new (data_ + i) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.cap_ = N;
    }
  }

  void Deallocate() {
    clear();
    if (!is_inline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
  }

  T* data_;
  size_t size_;
  size_t cap_;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace lsvd

#endif  // SRC_UTIL_SMALL_VECTOR_H_
