#include "src/util/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace lsvd {
namespace {

// JSON string escape for metric names (ASCII identifiers in practice, but be
// correct regardless).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Formats a double as valid JSON (no NaN/Inf, no trailing noise).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  // Integral values print without a fraction so counters stay integers.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double MetricsSnapshot::Entry::Percentile(double fraction) const {
  if (kind != Kind::kHistogram || count == 0) {
    return 0.0;
  }
  const double target = fraction * static_cast<double>(count);
  double seen = 0;
  for (size_t b = 0; b < buckets.size(); b++) {
    const double c = static_cast<double>(buckets[b].first);
    if (seen + c >= target) {
      const double lower = HistogramBucketLower(static_cast<int>(b), sub_bits);
      const double upper =
          HistogramBucketLower(static_cast<int>(b) + 1, sub_bits);
      const double within = c > 0 ? (target - seen) / c : 0.0;
      return lower + within * (upper - lower);
    }
    seen += c;
  }
  return HistogramBucketLower(static_cast<int>(buckets.size()), sub_bits);
}

double MetricsSnapshot::Entry::Mean() const {
  if (count == 0) {
    return 0.0;
  }
  return value_sum / static_cast<double>(count);
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& name) const {
  auto it = entries.find(name);
  return it == entries.end() ? nullptr : &it->second;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const Entry* e = Find(name);
  if (e == nullptr || e->kind != Kind::kCounter) {
    return 0;
  }
  return static_cast<uint64_t>(e->value);
}

double MetricsSnapshot::Percentile(const std::string& name,
                                   double fraction) const {
  const Entry* e = Find(name);
  return e == nullptr ? 0.0 : e->Percentile(fraction);
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& baseline) const {
  MetricsSnapshot diff;
  for (const auto& [name, e] : entries) {
    Entry d = e;
    const Entry* base = baseline.Find(name);
    if (base != nullptr && base->kind == e.kind) {
      switch (e.kind) {
        case Kind::kCounter:
          d.value = e.value - base->value;
          break;
        case Kind::kGauge:
          break;  // gauges are instantaneous: keep the newer value
        case Kind::kHistogram: {
          d.count = e.count - base->count;
          d.weight = e.weight - base->weight;
          d.value_sum = e.value_sum - base->value_sum;
          for (size_t b = 0; b < d.buckets.size(); b++) {
            if (b < base->buckets.size()) {
              d.buckets[b].first -= base->buckets[b].first;
              d.buckets[b].second -= base->buckets[b].second;
            }
          }
          break;
        }
      }
    }
    diff.entries.emplace(name, std::move(d));
  }
  return diff;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, e] : entries) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << "\"" << JsonEscape(name) << "\": ";
    switch (e.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        out << JsonNumber(e.value);
        break;
      case Kind::kHistogram: {
        out << "{\"count\": " << e.count << ", \"weight\": " << e.weight
            << ", \"mean\": " << JsonNumber(e.Mean())
            << ", \"p50\": " << JsonNumber(e.Percentile(0.50))
            << ", \"p99\": " << JsonNumber(e.Percentile(0.99))
            << ", \"buckets\": [";
        bool bfirst = true;
        for (size_t b = 0; b < e.buckets.size(); b++) {
          if (e.buckets[b].first == 0 && e.buckets[b].second == 0) {
            continue;
          }
          if (!bfirst) {
            out << ", ";
          }
          bfirst = false;
          const auto lower = static_cast<uint64_t>(
              HistogramBucketLower(static_cast<int>(b), e.sub_bits));
          out << "[" << lower << ", " << e.buckets[b].first << ", "
              << e.buckets[b].second << "]";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "}";
  return out.str();
}

std::string MetricsSnapshot::ToTable() const {
  size_t name_width = 4;
  for (const auto& [name, e] : entries) {
    name_width = std::max(name_width, name.size());
  }
  std::ostringstream out;
  for (const auto& [name, e] : entries) {
    out << name << std::string(name_width - name.size() + 2, ' ');
    switch (e.kind) {
      case Kind::kCounter:
        out << static_cast<uint64_t>(e.value);
        break;
      case Kind::kGauge: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", e.value);
        out << buf;
        break;
      }
      case Kind::kHistogram: {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "count=%llu mean=%.1f p50=%.1f p99=%.1f",
                      static_cast<unsigned long long>(e.count), e.Mean(),
                      e.Percentile(0.50), e.Percentile(0.99));
        out << buf;
        break;
      }
    }
    out << "\n";
  }
  return out.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Slot& slot = slots_[name];
  if (slot.counter == nullptr) {
    assert(slot.gauge == nullptr && slot.histogram == nullptr &&
           !slot.callback && "metric re-registered with a different kind");
    slot.kind = MetricsSnapshot::Kind::kCounter;
    slot.counter = std::make_unique<Counter>();
  }
  return slot.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Slot& slot = slots_[name];
  if (slot.gauge == nullptr) {
    assert(slot.counter == nullptr && slot.histogram == nullptr &&
           "metric re-registered with a different kind");
    slot.kind = MetricsSnapshot::Kind::kGauge;
    slot.gauge = std::make_unique<Gauge>();
  }
  return slot.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         int sub_bits) {
  Slot& slot = slots_[name];
  if (slot.histogram == nullptr) {
    assert(slot.counter == nullptr && slot.gauge == nullptr &&
           !slot.callback && "metric re-registered with a different kind");
    slot.kind = MetricsSnapshot::Kind::kHistogram;
    slot.histogram = std::make_unique<Histogram>(sub_bits);
  }
  return slot.histogram.get();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<double()> fn) {
  Slot& slot = slots_[name];
  assert(slot.counter == nullptr && slot.histogram == nullptr &&
         "metric re-registered with a different kind");
  slot.kind = MetricsSnapshot::Kind::kGauge;
  slot.callback = std::move(fn);
}

void MetricsRegistry::UnregisterCallback(const std::string& name) {
  auto it = slots_.find(name);
  if (it == slots_.end() || !it->second.callback) {
    return;
  }
  // Freeze the final value so the metric survives the component.
  if (it->second.gauge == nullptr) {
    it->second.gauge = std::make_unique<Gauge>();
  }
  it->second.gauge->Set(it->second.callback());
  it->second.callback = nullptr;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, slot] : slots_) {
    MetricsSnapshot::Entry e;
    e.kind = slot.kind;
    switch (slot.kind) {
      case MetricsSnapshot::Kind::kCounter:
        e.value = static_cast<double>(slot.counter->value());
        break;
      case MetricsSnapshot::Kind::kGauge:
        e.value = slot.callback ? slot.callback() : slot.gauge->value();
        break;
      case MetricsSnapshot::Kind::kHistogram: {
        const Histogram& h = *slot.histogram;
        e.count = h.total_count();
        e.weight = h.total_weight();
        e.sub_bits = h.sub_bits();
        e.value_sum = h.value_sum();
        e.buckets.reserve(static_cast<size_t>(h.num_buckets()));
        for (int b = 0; b < h.num_buckets(); b++) {
          e.buckets.emplace_back(h.BucketCount(b), h.BucketWeight(b));
        }
        break;
      }
    }
    snap.entries.emplace(name, std::move(e));
  }
  return snap;
}

}  // namespace lsvd
