// Deterministic pseudo-random number generation for workloads and simulation.
//
// xoshiro256** core plus the distributions workload generators need
// (uniform integers, Zipf-like hot/cold selection, exponential sizes).
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace lsvd {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      word = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  // Uniform integer in [lo, hi).
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo < hi);
    return lo + Uniform(hi - lo);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Hot/cold skewed choice: with probability `hot_frac_of_accesses` returns a
  // slot in the first `hot_frac_of_space` of [0, n); otherwise a uniform slot.
  // A cheap stand-in for the Zipf-like locality of real block traces.
  uint64_t Skewed(uint64_t n, double hot_frac_of_space,
                  double hot_frac_of_accesses) {
    assert(n > 0);
    const auto hot = static_cast<uint64_t>(
        static_cast<double>(n) * hot_frac_of_space);
    if (hot > 0 && Bernoulli(hot_frac_of_accesses)) {
      return Uniform(hot);
    }
    return Uniform(n);
  }

  // Exponentially distributed double with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = 1e-12;
    }
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace lsvd

#endif  // SRC_UTIL_RNG_H_
