// Size and time unit helpers shared across the project.
//
// All simulated time in this project is expressed in nanoseconds held in a
// signed 64-bit integer (`Nanos`); all device and disk addresses are byte
// offsets held in unsigned 64-bit integers.
#ifndef SRC_UTIL_UNITS_H_
#define SRC_UTIL_UNITS_H_

#include <cstdint>

namespace lsvd {

using Nanos = int64_t;

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr Nanos kMicrosecond = 1000;
inline constexpr Nanos kMillisecond = 1000 * kMicrosecond;
inline constexpr Nanos kSecond = 1000 * kMillisecond;

// Converts simulated nanoseconds to (floating) seconds.
constexpr double ToSeconds(Nanos t) { return static_cast<double>(t) / 1e9; }

// Converts (floating) seconds to simulated nanoseconds.
constexpr Nanos FromSeconds(double s) { return static_cast<Nanos>(s * 1e9); }

// Bytes-per-second throughput over an interval; returns 0 for empty intervals.
constexpr double BytesPerSecond(uint64_t bytes, Nanos interval) {
  if (interval <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / ToSeconds(interval);
}

}  // namespace lsvd

#endif  // SRC_UTIL_UNITS_H_
