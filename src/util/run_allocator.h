// First-fit extent (run) allocator over a byte range.
//
// The single free-map implementation in the tree: the bcache baseline uses
// it directly for cache-device space (allocations are contiguous when space
// is unfragmented and scatter as the free map fragments — mirroring how a
// real allocator degrades), and lsvd/SsdRegionAllocator layers owner-labeled
// region bookkeeping on top of it.
#ifndef SRC_UTIL_RUN_ALLOCATOR_H_
#define SRC_UTIL_RUN_ALLOCATOR_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>

namespace lsvd {

class RunAllocator {
 public:
  RunAllocator(uint64_t base, uint64_t size) : total_(size) {
    if (size > 0) {
      free_[base] = size;
    }
    free_bytes_ = size;
  }

  uint64_t free_bytes() const { return free_bytes_; }
  uint64_t total_bytes() const { return total_; }

  // Allocates a contiguous run of exactly `len` bytes (first fit); nullopt
  // if no single free run is large enough.
  std::optional<uint64_t> Allocate(uint64_t len) {
    assert(len > 0);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second < len) {
        continue;
      }
      const uint64_t offset = it->first;
      const uint64_t run_len = it->second;
      free_.erase(it);
      if (run_len > len) {
        free_[offset + len] = run_len - len;
      }
      free_bytes_ -= len;
      return offset;
    }
    return std::nullopt;
  }

  // Returns a run to the free map, merging with neighbors.
  void Free(uint64_t offset, uint64_t len) {
    assert(len > 0);
    const uint64_t freed = len;  // merged neighbors are already counted
    auto next = free_.lower_bound(offset);
    // Merge with predecessor.
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      assert(prev->first + prev->second <= offset && "double free");
      if (prev->first + prev->second == offset) {
        offset = prev->first;
        len += prev->second;
        free_.erase(prev);
      }
    }
    // Merge with successor.
    if (next != free_.end()) {
      assert(offset + len <= next->first && "double free");
      if (offset + len == next->first) {
        len += next->second;
        next = free_.erase(next);
      }
    }
    free_[offset] = len;
    free_bytes_ += freed;
  }

 private:
  std::map<uint64_t, uint64_t> free_;  // offset -> run length
  uint64_t free_bytes_ = 0;
  uint64_t total_ = 0;
};

}  // namespace lsvd

#endif  // SRC_UTIL_RUN_ALLOCATOR_H_
