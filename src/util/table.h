// Fixed-width text table printer used by the benchmark harnesses to emit the
// rows/series that correspond to each table and figure in the paper.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsvd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  // Renders with aligned columns and a header separator.
  std::string ToString() const;
  void Print() const;

  // Formatting helpers for cells.
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtBytes(uint64_t bytes);      // e.g. "1.5 MiB"
  static std::string FmtCount(uint64_t n);          // thousands separators

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lsvd

#endif  // SRC_UTIL_TABLE_H_
