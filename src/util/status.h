// Minimal Status / Result error-propagation types.
//
// The project uses explicit status values rather than exceptions for
// recoverable I/O errors (device failures, missing objects, corrupt records),
// matching common practice in storage systems code. Programmer errors are
// asserted.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lsvd {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // object / extent does not exist
  kCorruption,      // CRC mismatch, bad magic, truncated record
  kInvalidArgument, // caller error detectable at runtime
  kOutOfRange,      // address beyond device / volume size
  kUnavailable,     // device offline (e.g. after injected crash)
  kResourceExhausted,
  kFenced,          // write rejected: caller's attachment epoch is stale
};

// Human-readable name for a status code.
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFenced:
      return "FENCED";
  }
  return "UNKNOWN";
}

// Value-type status: a code plus an optional message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m = "") {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Fenced(std::string m = "") {
    return Status(StatusCode::kFenced, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace lsvd

#endif  // SRC_UTIL_STATUS_H_
