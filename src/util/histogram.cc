#include "src/util/histogram.h"

#include <bit>
#include <cmath>
#include <sstream>

namespace lsvd {
namespace {

int BucketFor(uint64_t value) {
  if (value < 2) {
    return 0;
  }
  return 64 - std::countl_zero(value) - 1;
}

}  // namespace

void Histogram::Add(uint64_t value, uint64_t weight) {
  const int b = BucketFor(value);
  if (b >= static_cast<int>(buckets_.size())) {
    buckets_.resize(b + 1);
  }
  buckets_[b].count += 1;
  buckets_[b].weight += weight;
  total_count_ += 1;
  total_weight_ += weight;
  value_sum_ += static_cast<double>(value);
}

uint64_t Histogram::BucketWeight(int bucket) const {
  if (bucket < 0 || bucket >= static_cast<int>(buckets_.size())) {
    return 0;
  }
  return buckets_[bucket].weight;
}

uint64_t Histogram::BucketCount(int bucket) const {
  if (bucket < 0 || bucket >= static_cast<int>(buckets_.size())) {
    return 0;
  }
  return buckets_[bucket].count;
}

double Histogram::Percentile(double fraction) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  const double target = fraction * static_cast<double>(total_count_);
  double seen = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    const double c = static_cast<double>(buckets_[b].count);
    if (seen + c >= target) {
      const double lower = (b == 0) ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double upper = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double within = c > 0 ? (target - seen) / c : 0.0;
      return lower + within * (upper - lower);
    }
    seen += c;
  }
  return std::ldexp(1.0, static_cast<int>(buckets_.size()));
}

double Histogram::MeanValue() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return value_sum_ / static_cast<double>(total_count_);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  for (size_t b = 0; b < buckets_.size(); b++) {
    if (buckets_[b].weight == 0) {
      continue;
    }
    const uint64_t lower = (b == 0) ? 0 : (uint64_t{1} << b);
    out << lower << " " << buckets_[b].weight << "\n";
  }
  return out.str();
}

}  // namespace lsvd
