#include "src/util/histogram.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <sstream>

namespace lsvd {
namespace {

int BucketFor(uint64_t value, int sub_bits) {
  if (sub_bits == 0) {
    if (value < 2) {
      return 0;
    }
    return 64 - std::countl_zero(value) - 1;
  }
  // Log-linear: values below 2^k get unit-width buckets; a value in octave
  // [2^m, 2^(m+1)) lands in sub-bucket (value - 2^m) >> (m - k) of that
  // octave's 2^k-wide group. The two ranges meet seamlessly at 2^k.
  const int k = sub_bits;
  if (value < (uint64_t{1} << k)) {
    return static_cast<int>(value);
  }
  const int m = 64 - std::countl_zero(value) - 1;
  const int sub = static_cast<int>((value - (uint64_t{1} << m)) >> (m - k));
  return ((m - k + 1) << k) + sub;
}

}  // namespace

double HistogramBucketLower(int bucket, int sub_bits) {
  if (sub_bits == 0) {
    return bucket == 0 ? 0.0 : std::ldexp(1.0, bucket);
  }
  const int k = sub_bits;
  if (bucket < (1 << k)) {
    return static_cast<double>(bucket);
  }
  const int group = bucket >> k;       // octave group index, >= 1
  const int m = group + k - 1;         // octave exponent
  const int sub = bucket & ((1 << k) - 1);
  return std::ldexp(1.0, m) + static_cast<double>(sub) * std::ldexp(1.0, m - k);
}

Histogram::Histogram(int sub_bits) : sub_bits_(sub_bits) {
  assert(sub_bits >= 0 && sub_bits <= 8 && "sub_bits out of range");
}

void Histogram::Add(uint64_t value, uint64_t weight) {
  const int b = BucketFor(value, sub_bits_);
  if (b >= static_cast<int>(buckets_.size())) {
    buckets_.resize(b + 1);
  }
  buckets_[b].count += 1;
  buckets_[b].weight += weight;
  total_count_ += 1;
  total_weight_ += weight;
  value_sum_ += static_cast<double>(value);
}

uint64_t Histogram::BucketWeight(int bucket) const {
  if (bucket < 0 || bucket >= static_cast<int>(buckets_.size())) {
    return 0;
  }
  return buckets_[bucket].weight;
}

uint64_t Histogram::BucketCount(int bucket) const {
  if (bucket < 0 || bucket >= static_cast<int>(buckets_.size())) {
    return 0;
  }
  return buckets_[bucket].count;
}

double Histogram::Percentile(double fraction) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  const double target = fraction * static_cast<double>(total_count_);
  double seen = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    const double c = static_cast<double>(buckets_[b].count);
    if (seen + c >= target) {
      const double lower = HistogramBucketLower(static_cast<int>(b), sub_bits_);
      const double upper =
          HistogramBucketLower(static_cast<int>(b) + 1, sub_bits_);
      const double within = c > 0 ? (target - seen) / c : 0.0;
      return lower + within * (upper - lower);
    }
    seen += c;
  }
  return HistogramBucketLower(static_cast<int>(buckets_.size()), sub_bits_);
}

double Histogram::MeanValue() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return value_sum_ / static_cast<double>(total_count_);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  for (size_t b = 0; b < buckets_.size(); b++) {
    if (buckets_[b].weight == 0) {
      continue;
    }
    const auto lower = static_cast<uint64_t>(
        HistogramBucketLower(static_cast<int>(b), sub_bits_));
    out << lower << " " << buckets_[b].weight << "\n";
  }
  return out.str();
}

}  // namespace lsvd
