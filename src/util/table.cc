#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lsvd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::ToString() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); c++) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); c++) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::FmtBytes(uint64_t bytes) {
  const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int s = 0;
  while (v >= 1024.0 && s < 4) {
    v /= 1024.0;
    s++;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix[s]);
  return buf;
}

std::string Table::FmtCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (pos > 0 && pos % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    pos++;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace lsvd
