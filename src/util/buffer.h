// Buffer: an immutable rope of byte chunks, where a chunk is either real
// bytes or a zero run.
//
// The simulation is data-bearing (journal headers, object headers, and
// filesystem metadata are real bytes protected by real CRCs), but bulk
// workload payloads are zero-filled. Representing zero runs symbolically
// keeps an 80 GiB preconditioned volume at a few kilobytes of memory while
// preserving exact length/offset semantics end to end.
#ifndef SRC_UTIL_BUFFER_H_
#define SRC_UTIL_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace lsvd {

class Buffer {
 public:
  Buffer() = default;

  static Buffer Zeros(uint64_t n) {
    Buffer b;
    b.AppendZeros(n);
    return b;
  }
  static Buffer FromBytes(std::span<const uint8_t> bytes) {
    Buffer b;
    b.AppendBytes(bytes);
    return b;
  }
  static Buffer FromString(const std::string& s) {
    return FromBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Appends a copy of `bytes`. All-zero inputs are stored as a zero run.
  void AppendBytes(std::span<const uint8_t> bytes);
  // Appends `bytes` by sharing its backing storage instead of copying.
  // Same zero-run normalization as AppendBytes, so the resulting buffer is
  // indistinguishable from one built with AppendBytes — only cheaper.
  void AppendShared(std::shared_ptr<const std::vector<uint8_t>> bytes);
  void AppendZeros(uint64_t n);
  // Appends another buffer (chunks are shared, O(chunks)).
  void Append(const Buffer& other);

  // True if every byte is zero.
  bool IsAllZeros() const;

  // Copies [offset, offset+out.size()) into `out`. Asserts in range.
  void CopyTo(uint64_t offset, std::span<uint8_t> out) const;

  // Sub-range view; shares chunk storage.
  Buffer Slice(uint64_t offset, uint64_t len) const;

  // If [offset, offset+len) is exactly one data chunk covering its entire
  // backing vector, returns that vector (no copy); otherwise null. Lets a
  // block store keep a reference to an already-materialized block (e.g. an
  // encoded journal header) instead of copying it out.
  std::shared_ptr<const std::vector<uint8_t>> SharedSpan(uint64_t offset,
                                                         uint64_t len) const;

  // Materializes the whole buffer (tests / codec paths on small data only).
  std::vector<uint8_t> ToBytes() const;

  // CRC32C over the full contents, computed without materializing zero runs.
  uint32_t Crc() const;

  friend bool operator==(const Buffer& a, const Buffer& b);

 private:
  struct Chunk {
    std::shared_ptr<const std::vector<uint8_t>> data;  // null => zero run
    uint64_t offset = 0;  // into *data (unused for zero runs)
    uint64_t len = 0;
  };

  // Appends one chunk, merging it into the tail when possible: adjacent zero
  // runs always merge, and data chunks merge when they reference contiguous
  // ranges of the same backing vector (common when a sliced buffer is
  // re-assembled piecewise, e.g. batch encode and journal replay).
  void AppendChunk(const Chunk& c);

  std::vector<Chunk> chunks_;
  uint64_t size_ = 0;
};

}  // namespace lsvd

#endif  // SRC_UTIL_BUFFER_H_
