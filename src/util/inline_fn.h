// InlineFn: a move-only type-erased `void()` callable with small-buffer
// storage, built for the simulator's event hot path.
//
// `std::function` heap-allocates any capture list larger than two pointers,
// which puts one malloc/free pair on every scheduled event. InlineFn stores
// callables up to `kInlineBytes` directly inside the object (no allocation)
// and falls back to the heap only for oversized or over-aligned captures.
// Trivially-copyable captures — the overwhelming majority of event lambdas,
// which capture `this` plus a few integers — relocate with a memcpy instead
// of a virtual move call.
#ifndef SRC_UTIL_INLINE_FN_H_
#define SRC_UTIL_INLINE_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace lsvd {

template <size_t kInlineBytes>
class InlineFn {
 public:
  InlineFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFn> && std::is_invocable_v<D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every At()/After() call site.
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = InlineOps<D>();
    } else {
      // Oversized capture: the buffer holds a single owning pointer.
      D* heap = new D(std::forward<F>(f));
      std::memcpy(&storage_, &heap, sizeof(heap));
      ops_ = HeapOps<D>();
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&storage_, &other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  void operator()() { ops_->invoke(&storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the callable lives in the inline buffer (tests, benchmarks).
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  static constexpr size_t inline_capacity() { return kInlineBytes; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs `dst` from `src` and destroys `src` (one call instead
    // of a move + destroy pair; memcpy for trivially-copyable captures).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* As(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  template <typename D>
  static const Ops* InlineOps() {
    if constexpr (std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      static constexpr Ops ops = {
          [](void* s) { (*As<D>(s))(); },
          [](void* dst, void* src) noexcept { std::memcpy(dst, src,
                                                          sizeof(D)); },
          [](void*) noexcept {},
          /*inline_storage=*/true,
      };
      return &ops;
    } else {
      static constexpr Ops ops = {
          [](void* s) { (*As<D>(s))(); },
          [](void* dst, void* src) noexcept {
            D* from = As<D>(src);
            ::new (dst) D(std::move(*from));
            from->~D();
          },
          [](void* s) noexcept { As<D>(s)->~D(); },
          /*inline_storage=*/true,
      };
      return &ops;
    }
  }

  template <typename D>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* s) {
          D* heap;
          std::memcpy(&heap, s, sizeof(heap));
          (*heap)();
        },
        [](void* dst, void* src) noexcept {
          std::memcpy(dst, src, sizeof(D*));
        },
        [](void* s) noexcept {
          D* heap;
          std::memcpy(&heap, s, sizeof(heap));
          delete heap;
        },
        /*inline_storage=*/false,
    };
    return &ops;
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace lsvd

#endif  // SRC_UTIL_INLINE_FN_H_
