// CRC32C (Castagnoli polynomial 0x1EDC6F41). Used to protect journal record
// headers+data in the write-back cache and backend object headers, as in the
// paper (§3.1).
//
// Dispatches at runtime to a hardware implementation when available —
// SSE4.2 `crc32` on x86-64, the ARMv8 CRC32 extension on aarch64 — and
// falls back to slicing-by-8 software otherwise. The two paths are verified
// byte-identical (tests/crc32c_test.cc), so checksums written by one build
// always validate on another.
#ifndef SRC_UTIL_CRC32C_H_
#define SRC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lsvd {

// Extends `crc` with `data[0, n)`. Pass 0 as the initial value.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// One-shot CRC of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

// Extends `crc` as if by `n` zero bytes, in O(log n) matrix applications
// instead of O(n) byte processing. Exactly equivalent to Crc32cExtend over a
// run of `n` zero bytes (tests/crc32c_test.cc verifies), so symbolic zero
// runs — TRIM'd regions, unwritten cache lines — checksum without ever
// materializing the zeros.
uint32_t Crc32cExtendZeros(uint32_t crc, uint64_t n);

// Which implementation Crc32cExtend dispatches to on this machine:
// "sse4.2", "armv8", or "software".
const char* Crc32cImplName();

namespace internal {

using Crc32cFn = uint32_t (*)(uint32_t crc, const void* data, size_t n);

// The slicing-by-8 reference implementation, always available.
uint32_t Crc32cExtendSoftware(uint32_t crc, const void* data, size_t n);

// The hardware implementation, or nullptr when this machine lacks the
// instructions. Exposed so tests can verify hw/sw equivalence explicitly.
Crc32cFn Crc32cHardwareImpl();

}  // namespace internal

}  // namespace lsvd

#endif  // SRC_UTIL_CRC32C_H_
