// CRC32C (Castagnoli polynomial 0x1EDC6F41), slicing-by-8 software
// implementation. Used to protect journal record headers+data in the
// write-back cache and backend object headers, as in the paper (§3.1).
#ifndef SRC_UTIL_CRC32C_H_
#define SRC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lsvd {

// Extends `crc` with `data[0, n)`. Pass 0 as the initial value.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// One-shot CRC of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace lsvd

#endif  // SRC_UTIL_CRC32C_H_
