#include "src/util/buffer.h"

#include <algorithm>
#include <cassert>

#include "src/util/crc32c.h"

namespace lsvd {
namespace {

bool AllZero(std::span<const uint8_t> bytes) {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](uint8_t b) { return b == 0; });
}

}  // namespace

void Buffer::AppendBytes(std::span<const uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  if (AllZero(bytes)) {
    AppendZeros(bytes.size());
    return;
  }
  auto data = std::make_shared<std::vector<uint8_t>>(bytes.begin(),
                                                     bytes.end());
  chunks_.push_back(Chunk{std::move(data), 0, bytes.size()});
  size_ += bytes.size();
}

void Buffer::AppendShared(std::shared_ptr<const std::vector<uint8_t>> bytes) {
  if (bytes == nullptr || bytes->empty()) {
    return;
  }
  if (AllZero({bytes->data(), bytes->size()})) {
    AppendZeros(bytes->size());
    return;
  }
  const uint64_t len = bytes->size();
  chunks_.push_back(Chunk{std::move(bytes), 0, len});
  size_ += len;
}

void Buffer::AppendZeros(uint64_t n) {
  if (n == 0) {
    return;
  }
  if (!chunks_.empty() && chunks_.back().data == nullptr) {
    chunks_.back().len += n;  // coalesce adjacent zero runs
  } else {
    chunks_.push_back(Chunk{nullptr, 0, n});
  }
  size_ += n;
}

void Buffer::AppendChunk(const Chunk& c) {
  if (c.len == 0) {
    return;
  }
  if (!chunks_.empty()) {
    Chunk& back = chunks_.back();
    const bool both_zero = back.data == nullptr && c.data == nullptr;
    const bool contiguous_data = back.data != nullptr &&
                                 back.data == c.data &&
                                 back.offset + back.len == c.offset;
    if (both_zero || contiguous_data) {
      back.len += c.len;
      size_ += c.len;
      return;
    }
  }
  chunks_.push_back(c);
  size_ += c.len;
}

void Buffer::Append(const Buffer& other) {
  chunks_.reserve(chunks_.size() + other.chunks_.size());
  for (const auto& c : other.chunks_) {
    AppendChunk(c);
  }
}

bool Buffer::IsAllZeros() const {
  for (const auto& c : chunks_) {
    if (c.data != nullptr) {
      // Chunks with backing data were non-zero at append time.
      return false;
    }
  }
  return true;
}

void Buffer::CopyTo(uint64_t offset, std::span<uint8_t> out) const {
  assert(offset + out.size() <= size_);
  uint64_t pos = 0;       // start of current chunk within the buffer
  uint64_t written = 0;   // bytes already produced
  for (const auto& c : chunks_) {
    if (written == out.size()) {
      break;
    }
    const uint64_t chunk_end = pos + c.len;
    const uint64_t want_from = offset + written;
    if (chunk_end <= want_from) {
      pos = chunk_end;
      continue;
    }
    const uint64_t within = want_from - pos;
    const uint64_t n = std::min(c.len - within, out.size() - written);
    if (c.data == nullptr) {
      std::memset(out.data() + written, 0, n);
    } else {
      std::memcpy(out.data() + written, c.data->data() + c.offset + within, n);
    }
    written += n;
    pos = chunk_end;
  }
  assert(written == out.size());
}

Buffer Buffer::Slice(uint64_t offset, uint64_t len) const {
  assert(offset + len <= size_);
  Buffer out;
  out.chunks_.reserve(std::min<size_t>(chunks_.size(), 8));
  uint64_t pos = 0;
  for (const auto& c : chunks_) {
    if (out.size_ == len) {
      break;
    }
    const uint64_t chunk_end = pos + c.len;
    const uint64_t want_from = offset + out.size_;
    if (chunk_end <= want_from) {
      pos = chunk_end;
      continue;
    }
    const uint64_t within = want_from - pos;
    const uint64_t n = std::min(c.len - within, len - out.size_);
    out.AppendChunk(Chunk{c.data, c.data == nullptr ? 0 : c.offset + within, n});
    pos = chunk_end;
  }
  assert(out.size_ == len);
  return out;
}

std::shared_ptr<const std::vector<uint8_t>> Buffer::SharedSpan(
    uint64_t offset, uint64_t len) const {
  assert(offset + len <= size_);
  uint64_t pos = 0;
  for (const auto& c : chunks_) {
    const uint64_t chunk_end = pos + c.len;
    if (offset < chunk_end) {
      // First chunk overlapping the range: the whole range must lie inside
      // it and line up with the full backing vector.
      if (c.data != nullptr && offset + len <= chunk_end &&
          c.offset + (offset - pos) == 0 && c.data->size() == len) {
        return c.data;
      }
      return nullptr;
    }
    pos = chunk_end;
  }
  return nullptr;
}

std::vector<uint8_t> Buffer::ToBytes() const {
  std::vector<uint8_t> out(size_);
  if (size_ > 0) {
    CopyTo(0, out);
  }
  return out;
}

uint32_t Buffer::Crc() const {
  uint32_t crc = 0;
  for (const auto& c : chunks_) {
    if (c.data == nullptr) {
      // Zero runs stay symbolic: extend the CRC algebraically instead of
      // streaming materialized zero bytes through the byte engine.
      crc = Crc32cExtendZeros(crc, c.len);
    } else {
      crc = Crc32cExtend(crc, c.data->data() + c.offset, c.len);
    }
  }
  return crc;
}

bool operator==(const Buffer& a, const Buffer& b) {
  if (a.size_ != b.size_) {
    return false;
  }
  // Compare by materialized windows to keep memory bounded.
  constexpr uint64_t kWindow = 64 * 1024;
  std::vector<uint8_t> wa(kWindow);
  std::vector<uint8_t> wb(kWindow);
  for (uint64_t off = 0; off < a.size_; off += kWindow) {
    const uint64_t n = std::min(kWindow, a.size_ - off);
    a.CopyTo(off, {wa.data(), n});
    b.CopyTo(off, {wb.data(), n});
    if (std::memcmp(wa.data(), wb.data(), n) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace lsvd
