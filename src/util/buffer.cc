#include "src/util/buffer.h"

#include <algorithm>
#include <cassert>

#include "src/util/crc32c.h"

namespace lsvd {
namespace {

bool AllZero(std::span<const uint8_t> bytes) {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](uint8_t b) { return b == 0; });
}

// Scratch zero block for CRC computation over zero runs.
const std::vector<uint8_t>& ZeroBlock() {
  static const std::vector<uint8_t> block(4096, 0);
  return block;
}

}  // namespace

void Buffer::AppendBytes(std::span<const uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  if (AllZero(bytes)) {
    AppendZeros(bytes.size());
    return;
  }
  auto data = std::make_shared<std::vector<uint8_t>>(bytes.begin(),
                                                     bytes.end());
  chunks_.push_back(Chunk{std::move(data), 0, bytes.size()});
  size_ += bytes.size();
}

void Buffer::AppendZeros(uint64_t n) {
  if (n == 0) {
    return;
  }
  if (!chunks_.empty() && chunks_.back().data == nullptr) {
    chunks_.back().len += n;  // coalesce adjacent zero runs
  } else {
    chunks_.push_back(Chunk{nullptr, 0, n});
  }
  size_ += n;
}

void Buffer::Append(const Buffer& other) {
  for (const auto& c : other.chunks_) {
    if (c.data == nullptr) {
      AppendZeros(c.len);
    } else {
      chunks_.push_back(c);
      size_ += c.len;
    }
  }
}

bool Buffer::IsAllZeros() const {
  for (const auto& c : chunks_) {
    if (c.data != nullptr) {
      // Chunks with backing data were non-zero at append time.
      return false;
    }
  }
  return true;
}

void Buffer::CopyTo(uint64_t offset, std::span<uint8_t> out) const {
  assert(offset + out.size() <= size_);
  uint64_t pos = 0;       // start of current chunk within the buffer
  uint64_t written = 0;   // bytes already produced
  for (const auto& c : chunks_) {
    if (written == out.size()) {
      break;
    }
    const uint64_t chunk_end = pos + c.len;
    const uint64_t want_from = offset + written;
    if (chunk_end <= want_from) {
      pos = chunk_end;
      continue;
    }
    const uint64_t within = want_from - pos;
    const uint64_t n = std::min(c.len - within, out.size() - written);
    if (c.data == nullptr) {
      std::memset(out.data() + written, 0, n);
    } else {
      std::memcpy(out.data() + written, c.data->data() + c.offset + within, n);
    }
    written += n;
    pos = chunk_end;
  }
  assert(written == out.size());
}

Buffer Buffer::Slice(uint64_t offset, uint64_t len) const {
  assert(offset + len <= size_);
  Buffer out;
  uint64_t pos = 0;
  for (const auto& c : chunks_) {
    if (out.size_ == len) {
      break;
    }
    const uint64_t chunk_end = pos + c.len;
    const uint64_t want_from = offset + out.size_;
    if (chunk_end <= want_from) {
      pos = chunk_end;
      continue;
    }
    const uint64_t within = want_from - pos;
    const uint64_t n = std::min(c.len - within, len - out.size_);
    if (c.data == nullptr) {
      out.AppendZeros(n);
    } else {
      out.chunks_.push_back(Chunk{c.data, c.offset + within, n});
      out.size_ += n;
    }
    pos = chunk_end;
  }
  assert(out.size_ == len);
  return out;
}

std::vector<uint8_t> Buffer::ToBytes() const {
  std::vector<uint8_t> out(size_);
  if (size_ > 0) {
    CopyTo(0, out);
  }
  return out;
}

uint32_t Buffer::Crc() const {
  uint32_t crc = 0;
  for (const auto& c : chunks_) {
    if (c.data == nullptr) {
      uint64_t left = c.len;
      while (left > 0) {
        const uint64_t n = std::min<uint64_t>(left, ZeroBlock().size());
        crc = Crc32cExtend(crc, ZeroBlock().data(), n);
        left -= n;
      }
    } else {
      crc = Crc32cExtend(crc, c.data->data() + c.offset, c.len);
    }
  }
  return crc;
}

bool operator==(const Buffer& a, const Buffer& b) {
  if (a.size_ != b.size_) {
    return false;
  }
  // Compare by materialized windows to keep memory bounded.
  constexpr uint64_t kWindow = 64 * 1024;
  std::vector<uint8_t> wa(kWindow);
  std::vector<uint8_t> wb(kWindow);
  for (uint64_t off = 0; off < a.size_; off += kWindow) {
    const uint64_t n = std::min(kWindow, a.size_ - off);
    a.CopyTo(off, {wa.data(), n});
    b.CopyTo(off, {wb.data(), n});
    if (std::memcmp(wa.data(), wb.data(), n) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace lsvd
