// Bucketed histogram, used for backend write-size distributions (paper
// Figure 14) and latency percentiles.
//
// The default geometry is power-of-two buckets: bucket i covers
// [2^i, 2^(i+1)), bucket 0 is [0, 2). That quantizes the top percentiles to
// a full octave — too coarse for p99.9 reporting — so a histogram may
// instead be constructed with `sub_bits` > 0 for HdrHistogram-style
// log-linear growth: each octave splits into 2^sub_bits equal-width
// sub-buckets (values below 2^sub_bits get exact unit-width buckets), giving
// a bounded relative error of 2^-sub_bits at every scale.
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsvd {

// Lower bound of `bucket` for a histogram with the given sub-bucket bits
// (0 = legacy power-of-two geometry). Shared by Histogram and the snapshot
// layer in metrics.h, which re-derives bounds from raw bucket vectors.
double HistogramBucketLower(int bucket, int sub_bits);

class Histogram {
 public:
  Histogram() = default;
  // Log-linear geometry with 2^sub_bits sub-buckets per octave; sub_bits 0
  // is exactly the legacy power-of-two histogram.
  explicit Histogram(int sub_bits);

  // Records one sample of the given value, weighted by `weight`
  // (e.g. weight = bytes for a bytes-by-I/O-size histogram).
  void Add(uint64_t value, uint64_t weight = 1);

  uint64_t total_count() const { return total_count_; }
  uint64_t total_weight() const { return total_weight_; }

  // Weight accumulated in bucket `bucket` (see HistogramBucketLower for the
  // bucket -> value-range mapping).
  uint64_t BucketWeight(int bucket) const;
  // Sample count in the same bucket.
  uint64_t BucketCount(int bucket) const;
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int sub_bits() const { return sub_bits_; }
  double value_sum() const { return value_sum_; }

  // Value below which `fraction` (0..1) of the recorded *count* falls,
  // interpolated within the winning bucket.
  double Percentile(double fraction) const;

  double MeanValue() const;

  // One line per non-empty bucket: "lower_bound weight".
  std::string ToString() const;

 private:
  struct Bucket {
    uint64_t count = 0;
    uint64_t weight = 0;
  };
  std::vector<Bucket> buckets_;
  uint64_t total_count_ = 0;
  uint64_t total_weight_ = 0;
  int sub_bits_ = 0;
  // Sum of raw values for MeanValue().
  double value_sum_ = 0;
};

}  // namespace lsvd

#endif  // SRC_UTIL_HISTOGRAM_H_
