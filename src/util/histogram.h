// Power-of-two bucketed histogram, used for backend write-size distributions
// (paper Figure 14) and latency percentiles.
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsvd {

class Histogram {
 public:
  // Records one sample of the given value, weighted by `weight`
  // (e.g. weight = bytes for a bytes-by-I/O-size histogram).
  void Add(uint64_t value, uint64_t weight = 1);

  uint64_t total_count() const { return total_count_; }
  uint64_t total_weight() const { return total_weight_; }

  // Weight accumulated in the bucket [2^i, 2^(i+1)); bucket 0 is [0, 2).
  uint64_t BucketWeight(int bucket) const;
  // Sample count in the same bucket.
  uint64_t BucketCount(int bucket) const;
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  double value_sum() const { return value_sum_; }

  // Value below which `fraction` (0..1) of the recorded *count* falls,
  // interpolated within the winning bucket.
  double Percentile(double fraction) const;

  double MeanValue() const;

  // One line per non-empty bucket: "lower_bound weight".
  std::string ToString() const;

 private:
  struct Bucket {
    uint64_t count = 0;
    uint64_t weight = 0;
  };
  std::vector<Bucket> buckets_;
  uint64_t total_count_ = 0;
  uint64_t total_weight_ = 0;
  // Sum of raw values for MeanValue().
  double value_sum_ = 0;
};

}  // namespace lsvd

#endif  // SRC_UTIL_HISTOGRAM_H_
