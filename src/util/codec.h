// Little-endian wire codec helpers for on-disk / on-object metadata.
#ifndef SRC_UTIL_CODEC_H_
#define SRC_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace lsvd {

class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU32(uint32_t v) {
    const size_t pos = out_.size();
    out_.resize(pos + 4);
    for (int i = 0; i < 4; i++) {
      out_[pos + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  void PutU64(uint64_t v) {
    const size_t pos = out_.size();
    out_.resize(pos + 8);
    for (int i = 0; i < 8; i++) {
      out_[pos + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  void PutBytes(std::span<const uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }
  // Zero-pads to a multiple of `align`.
  void PadTo(size_t align) {
    out_.resize((out_.size() + align - 1) / align * align);
  }
  // Pre-sizes the output for encoders on a hot path (journal records pad to
  // a full block, so the final size is known up front).
  void Reserve(size_t n) { out_.reserve(n); }
  // Overwrites 4 bytes at `pos` (for CRC backpatching).
  void PatchU32(size_t pos, uint32_t v) {
    for (int i = 0; i < 4; i++) {
      out_[pos + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  size_t size() const { return out_.size(); }
  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const uint8_t> in) : in_(in) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return in_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t GetU8() {
    if (!Need(1)) {
      return 0;
    }
    return in_[pos_++];
  }
  uint32_t GetU32() {
    if (!Need(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
      v |= static_cast<uint32_t>(in_[pos_++]) << (8 * i);
    }
    return v;
  }
  uint64_t GetU64() {
    if (!Need(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; i++) {
      v |= static_cast<uint64_t>(in_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::string GetString() {
    const uint32_t n = GetU32();
    if (!Need(n)) {
      return "";
    }
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  void Skip(size_t n) {
    if (Need(n)) {
      pos_ += n;
    }
  }

 private:
  bool Need(size_t n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace lsvd

#endif  // SRC_UTIL_CODEC_H_
