#include "src/fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lsvd {

FleetController::FleetController(Simulator* sim, FleetConfig config,
                                 MetricsRegistry* metrics)
    : config_(config), control_sim_(sim) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  shards_.resize(static_cast<size_t>(config_.shards));
  for (int s = 0; s < config_.shards; s++) {
    Shard& sh = shards_[static_cast<size_t>(s)];
    sh.sim = sim;
    sh.cluster = std::make_unique<BackendCluster>(
        sim, config_.cluster, metrics_, "cluster.shard" + std::to_string(s));
    sh.bucket = std::make_unique<ObjectBucket>();
  }
  hosts_.resize(static_cast<size_t>(config_.hosts));
  for (int i = 0; i < config_.hosts; i++) {
    FleetHost& h = hosts_[static_cast<size_t>(i)];
    h.sim = sim;
    ClientHostConfig hc = config_.host;
    hc.metric_prefix = "host." + std::to_string(i);
    h.client = std::make_unique<ClientHost>(sim, hc, metrics_);
  }
  RegisterMetrics();
}

FleetController::FleetController(SimDomainGroup* group, SimDomain* control,
                                 FleetConfig config, MetricsRegistry* metrics)
    : config_(config), group_(group), control_sim_(control->sim()) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  // Domains, then channels, in fixed (host, shard) order: channel ids are
  // the parallel engine's determinism tie-break, so they must key to the
  // fleet topology, never to thread count (same rule as fig18).
  shards_.resize(static_cast<size_t>(config_.shards));
  for (int s = 0; s < config_.shards; s++) {
    Shard& sh = shards_[static_cast<size_t>(s)];
    sh.domain = group->AddDomain("fleetshard" + std::to_string(s));
    sh.sim = sh.domain->sim();
    sh.cluster = std::make_unique<BackendCluster>(
        sh.sim, config_.cluster, metrics_,
        "cluster.shard" + std::to_string(s));
  }
  hosts_.resize(static_cast<size_t>(config_.hosts));
  for (int i = 0; i < config_.hosts; i++) {
    FleetHost& h = hosts_[static_cast<size_t>(i)];
    h.domain = group->AddDomain("fleethost" + std::to_string(i));
    h.sim = h.domain->sim();
    ClientHostConfig hc = config_.host;
    hc.metric_prefix = "host." + std::to_string(i);
    h.client = std::make_unique<ClientHost>(h.sim, hc, metrics_);
    const Nanos hop = h.client->link()->half_rtt();
    for (int s = 0; s < config_.shards; s++) {
      SimDomain* sd = shards_[static_cast<size_t>(s)].domain;
      h.to_shard.push_back(group->Connect(h.domain, sd, hop));
      h.from_shard.push_back(group->Connect(sd, h.domain, hop));
      // One namespace per (host, shard): objects become visible on the
      // host's side at PUT-ack time, so the map can only be this host's.
      h.buckets.push_back(std::make_unique<ObjectBucket>());
    }
    h.hb_channel = group->Connect(h.domain, control, hop);
  }
  RegisterMetrics();
}

FleetController::~FleetController() = default;

void FleetController::RegisterMetrics() {
  callback_guard_.Register(metrics_, "fleet.hosts", [this] {
    return static_cast<double>(hosts_.size());
  });
  callback_guard_.Register(metrics_, "fleet.hosts_alive", [this] {
    double n = 0;
    for (const FleetHost& h : hosts_) {
      if (!h.declared_dead) {
        n++;
      }
    }
    return n;
  });
  callback_guard_.Register(metrics_, "fleet.volumes", [this] {
    return static_cast<double>(volumes_.size());
  });
  callback_guard_.Register(metrics_, "fleet.volumes_active", [this] {
    double n = 0;
    for (const auto& v : volumes_) {
      if (v->state == VolumeHealth::kActive) {
        n++;
      }
    }
    return n;
  });
  c_creates_ = metrics_->GetCounter("fleet.creates");
  c_create_failures_ = metrics_->GetCounter("fleet.create_failures");
  c_clones_ = metrics_->GetCounter("fleet.clones");
  c_placement_rejected_ = metrics_->GetCounter("fleet.placement_rejected");
  c_heartbeats_ = metrics_->GetCounter("fleet.heartbeats");
  c_leases_expired_ = metrics_->GetCounter("fleet.leases_expired");
  c_migrations_ = metrics_->GetCounter("fleet.migrations");
  c_migrations_aborted_ = metrics_->GetCounter("fleet.migrations_aborted");
  c_migrations_failed_ = metrics_->GetCounter("fleet.migrations_failed");
  c_failovers_ = metrics_->GetCounter("fleet.failovers");
  c_failover_volumes_ = metrics_->GetCounter("fleet.failover_volumes");
  c_handoff_bytes_ = metrics_->GetCounter("fleet.handoff_bytes");
  c_image_bytes_ = metrics_->GetCounter("fleet.image_bytes_distributed");
  h_blackout_us_ = metrics_->GetHistogram("fleet.migration.blackout_us");
  h_migration_total_us_ = metrics_->GetHistogram("fleet.migration.total_us");
  h_recovery_us_ = metrics_->GetHistogram("fleet.failover.recovery_us");
  h_detect_us_ = metrics_->GetHistogram("fleet.failover.detect_us");
}

ObjectBucket* FleetController::BucketFor(int host, int shard) {
  if (group_ != nullptr) {
    return hosts_[static_cast<size_t>(host)]
        .buckets[static_cast<size_t>(shard)]
        .get();
  }
  return shards_[static_cast<size_t>(shard)].bucket.get();
}

int FleetController::Pick(const PlacementRequest& req) const {
  std::vector<HostLoad> loads;
  loads.reserve(hosts_.size());
  for (size_t i = 0; i < hosts_.size(); i++) {
    const FleetHost& h = hosts_[i];
    HostLoad load;
    load.host = static_cast<int>(i);
    load.alive = h.process_alive && !h.declared_dead;
    load.ssd_free_bytes = h.client->ssd_regions()->free_bytes();
    load.volumes = 0;
    load.reserved_iops = 0;
    for (const auto& v : volumes_) {
      if (v->host == static_cast<int>(i) &&
          v->state != VolumeHealth::kFailed) {
        load.volumes++;
        load.reserved_iops += v->iops;
      }
    }
    loads.push_back(load);
  }
  return ChoosePlacement(config_.placement, loads, req);
}

int FleetController::volumes_on(int host) const {
  int n = 0;
  for (const auto& v : volumes_) {
    if (v->host == host && v->disk != nullptr) {
      n++;
    }
  }
  return n;
}

LsvdDisk* FleetController::disk(int volume) {
  return volumes_[static_cast<size_t>(volume)]->disk.get();
}

LsvdDisk* FleetController::stale_disk(int volume) {
  auto& stale = volumes_[static_cast<size_t>(volume)]->stale_disks;
  return stale.empty() ? nullptr : stale.back().get();
}

void FleetController::Attach(VolumeState& v, int host_id, OpenMode mode,
                             DoneCallback done) {
  FleetHost& h = hosts_[static_cast<size_t>(host_id)];
  std::vector<ObjectStore*> ptrs;
  for (int s = 0; s < config_.shards; s++) {
    auto raw = std::make_unique<SimObjectStore>(
        h.sim, shards_[static_cast<size_t>(s)].cluster.get(),
        h.client->link(), config_.objstore, nullptr, "objstore",
        BucketFor(host_id, s));
    if (group_ != nullptr) {
      raw->BindBackendDomain(shards_[static_cast<size_t>(s)].domain,
                             h.to_shard[static_cast<size_t>(s)],
                             h.from_shard[static_cast<size_t>(s)]);
    }
    auto fenced = std::make_unique<FencedObjectStore>(
        h.sim, raw.get(), &directory_, v.name, v.epoch);
    ptrs.push_back(fenced.get());
    v.raw_views.push_back(std::move(raw));
    v.views.push_back(std::move(fenced));
  }
  v.disk = std::make_unique<LsvdDisk>(h.client.get(), ptrs, v.config,
                                      v.track_metrics ? metrics_ : nullptr);
  auto cb = [done = std::move(done)](Status s) {
    if (done) {
      done(std::move(s));
    }
  };
  if (mode == OpenMode::kCreate) {
    v.disk->Create(std::move(cb));
  } else {
    v.disk->OpenCacheLost(std::move(cb));
  }
}

void FleetController::Abandon(VolumeState& v) {
  if (v.disk != nullptr) {
    v.stale_disks.push_back(std::move(v.disk));
  }
  for (auto& f : v.views) {
    v.stale_views.push_back(std::move(f));
  }
  v.views.clear();
  for (auto& r : v.raw_views) {
    v.stale_raw_views.push_back(std::move(r));
  }
  v.raw_views.clear();
}

int FleetController::CreateVolume(LsvdConfig config, DoneCallback done,
                                  bool track_metrics) {
  config.backend_shards = config_.shards;
  if (track_metrics) {
    config.SetPerVolumeMetricPrefixes();
  }
  PlacementRequest req;
  req.ssd_bytes = config.write_cache_size + config.read_cache_size;
  req.iops = config.qos.iops;
  req.iops_budget = config_.placement_iops_budget;
  const int host_id = Pick(req);
  if (host_id < 0) {
    c_create_failures_->Inc();
    c_placement_rejected_->Inc();
    if (done) {
      control_sim_->After(0, [done = std::move(done)] {
        done(Status::ResourceExhausted("no host fits volume"));
      });
    }
    return -1;
  }
  const int id = static_cast<int>(volumes_.size());
  volumes_.push_back(std::make_unique<VolumeState>());
  VolumeState& v = *volumes_.back();
  v.id = id;
  v.name = config.volume_name;
  v.config = std::move(config);
  v.track_metrics = track_metrics;
  v.ssd_bytes = req.ssd_bytes;
  v.iops = req.iops;
  v.host = host_id;
  v.epoch = directory_.Register(v.name, host_id);
  c_creates_->Inc();
  Attach(v, host_id, OpenMode::kCreate,
         [this, id, done = std::move(done)](Status s) {
           VolumeState& v = *volumes_[static_cast<size_t>(id)];
           if (v.state == VolumeHealth::kCreating) {
             if (s.ok()) {
               v.state = VolumeHealth::kActive;
             } else {
               v.state = VolumeHealth::kFailed;
               c_create_failures_->Inc();
             }
           }
           if (done) {
             done(std::move(s));
           }
         });
  return id;
}

int FleetController::CloneVolume(int base_volume, const std::string& clone_name,
                                 uint64_t base_seq, DoneCallback done,
                                 bool track_metrics) {
  VolumeState& base = *volumes_[static_cast<size_t>(base_volume)];
  assert(base.disk != nullptr && "clone base must be attached");
  c_clones_->Inc();
  return CreateVolume(base.disk->MakeCloneConfig(clone_name, base_seq),
                      std::move(done), track_metrics);
}

void FleetController::DistributeImage(int base_volume) {
  if (group_ == nullptr) {
    return;  // one shared namespace per shard already
  }
  VolumeState& v = *volumes_[static_cast<size_t>(base_volume)];
  const std::string prefix = v.name + ".";
  uint64_t bytes = 0;
  for (int s = 0; s < config_.shards; s++) {
    ObjectBucket* src = BucketFor(v.host, s);
    for (int h = 0; h < config_.hosts; h++) {
      if (h == v.host) {
        continue;
      }
      ObjectBucket* dst = BucketFor(h, s);
      for (auto it = src->objects.lower_bound(prefix);
           it != src->objects.end() && it->first.starts_with(prefix); ++it) {
        dst->objects[it->first] = it->second;
        bytes += it->second.size();
      }
    }
  }
  c_image_bytes_->Inc(bytes);
}

Status FleetController::MigrateVolume(int volume, int dst_host,
                                      MigrationCallback done) {
  if (group_ != nullptr) {
    return Status::InvalidArgument(
        "live migration needs the shared-namespace sequential fleet");
  }
  if (volume < 0 || volume >= static_cast<int>(volumes_.size())) {
    return Status::InvalidArgument("unknown volume");
  }
  VolumeState& v = *volumes_[static_cast<size_t>(volume)];
  if (v.state != VolumeHealth::kActive) {
    return Status::InvalidArgument("volume is not active");
  }
  PlacementRequest req;
  req.ssd_bytes = v.ssd_bytes;
  req.iops = v.iops;
  req.exclude_host = v.host;
  req.iops_budget = config_.placement_iops_budget;
  if (dst_host < 0) {
    dst_host = Pick(req);
    if (dst_host < 0) {
      return Status::ResourceExhausted("no host fits volume");
    }
  } else {
    const FleetHost& dh = hosts_[static_cast<size_t>(dst_host)];
    if (dst_host == v.host || dst_host >= config_.hosts ||
        !dh.process_alive || dh.declared_dead) {
      return Status::InvalidArgument("bad migration target");
    }
  }
  v.state = VolumeHealth::kMigrating;
  v.migration_inflight = true;
  v.freeze_time = control_sim_->now();
  const uint64_t epoch = v.epoch;
  const Nanos freeze = v.freeze_time;
  const int dst = dst_host;
  // Every continuation re-checks (state, epoch): a failover that steals the
  // volume mid-flight flips both, and the stale steps must become no-ops.
  auto stale = [this, volume, epoch] {
    VolumeState& v = *volumes_[static_cast<size_t>(volume)];
    return v.state != VolumeHealth::kMigrating || v.epoch != epoch;
  };
  v.disk->DetachForMigration([this, volume, dst, freeze, epoch, stale,
                              done](Result<MigrationHandoff> r) {
    VolumeState& v = *volumes_[static_cast<size_t>(volume)];
    if (stale()) {
      if (done) {
        done(Status::Unavailable("migration aborted by failover"),
             MigrationStats{});
      }
      return;
    }
    if (!r.ok()) {
      v.state = VolumeHealth::kActive;
      v.migration_inflight = false;
      c_migrations_failed_->Inc();
      if (done) {
        done(r.status(), MigrationStats{});
      }
      return;
    }
    const Nanos detached = control_sim_->now();
    const uint64_t handoff_bytes =
        config_.handoff_header_bytes +
        config_.handoff_bytes_per_object * r->applied_seq;
    const uint64_t applied_seq = r->applied_seq;
    c_handoff_bytes_->Inc(handoff_bytes);
    // Ship the descriptor: source tx, propagation, target rx.
    NetLink* src_link = hosts_[static_cast<size_t>(v.host)].client->link();
    src_link->SendToBackend(handoff_bytes, [this, volume, dst, freeze,
                                            detached, handoff_bytes,
                                            applied_seq, stale, done,
                                            src_link] {
      if (stale()) {
        if (done) {
          done(Status::Unavailable("migration aborted by failover"),
               MigrationStats{});
        }
        return;
      }
      control_sim_->After(src_link->half_rtt(), [this, volume, dst, freeze,
                                                 detached, handoff_bytes,
                                                 applied_seq, stale, done] {
        if (stale()) {
          if (done) {
            done(Status::Unavailable("migration aborted by failover"),
                 MigrationStats{});
          }
          return;
        }
        hosts_[static_cast<size_t>(dst)].client->link()->ReceiveFromBackend(
            handoff_bytes, [this, volume, dst, freeze, detached,
                            handoff_bytes, applied_seq, stale, done] {
              if (stale()) {
                if (done) {
                  done(Status::Unavailable("migration aborted by failover"),
                       MigrationStats{});
                }
                return;
              }
              FinishMigration(volume, dst, freeze, detached, handoff_bytes,
                              applied_seq, done);
            });
      });
    });
  });
  return Status::Ok();
}

void FleetController::FinishMigration(int volume, int dst, Nanos freeze,
                                      Nanos detached, uint64_t handoff_bytes,
                                      uint64_t applied_seq,
                                      MigrationCallback done) {
  VolumeState& v = *volumes_[static_cast<size_t>(volume)];
  const int src = v.host;
  // Retire the source attachment: the tail is drained, so the source's SSD
  // regions hold nothing the backend doesn't. Destroying the disk detaches
  // it from the source host; then its cache regions go back to the
  // allocator.
  const DiskRegions old_regions = v.disk->regions();
  v.disk.reset();
  v.views.clear();
  v.raw_views.clear();
  SsdRegionAllocator* regions =
      hosts_[static_cast<size_t>(src)].client->ssd_regions();
  Status freed = regions->Free(old_regions.write_cache_base);
  assert(freed.ok());
  freed = regions->Free(old_regions.read_cache_base);
  assert(freed.ok());
  (void)freed;
  // Epoch flip: from here any straggler writes under the old attachment are
  // fenced (none exist on this path — the source is gone — but the flip is
  // what makes the protocol safe when it races a failover).
  v.epoch = directory_.Flip(v.name, dst);
  v.host = dst;
  v.state = VolumeHealth::kRecovering;
  Attach(v, dst, OpenMode::kCacheLost,
         [this, volume, src, dst, freeze, detached, handoff_bytes,
          applied_seq, done = std::move(done)](Status s) {
           VolumeState& v = *volumes_[static_cast<size_t>(volume)];
           if (v.state != VolumeHealth::kRecovering) {
             return;  // a failover of dst took over
           }
           v.migration_inflight = false;
           if (!s.ok()) {
             v.state = VolumeHealth::kFailed;
             c_migrations_failed_->Inc();
             if (done) {
               done(std::move(s), MigrationStats{});
             }
             return;
           }
           v.state = VolumeHealth::kActive;
           v.freeze_time = 0;
           MigrationStats stats;
           stats.src_host = src;
           stats.dst_host = dst;
           stats.drain = detached - freeze;
           stats.blackout = control_sim_->now() - detached;
           stats.total = control_sim_->now() - freeze;
           stats.handoff_bytes = handoff_bytes;
           stats.applied_seq = applied_seq;
           c_migrations_->Inc();
           RecordLatencyUs(h_blackout_us_, stats.blackout);
           RecordLatencyUs(h_migration_total_us_, stats.total);
           if (done) {
             done(Status::Ok(), stats);
           }
         });
}

void FleetController::KillHost(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  if (!h.process_alive) {
    return;
  }
  h.process_alive = false;
  h.down_since = h.sim->now();
  for (auto& vp : volumes_) {
    VolumeState& v = *vp;
    if (v.host != host || v.disk == nullptr) {
      continue;
    }
    v.disk->Kill();
    v.freeze_time = h.sim->now();
    v.state = VolumeHealth::kDown;
  }
}

void FleetController::PartitionHost(int host) {
  FleetHost& h = hosts_[static_cast<size_t>(host)];
  h.partitioned = true;
  if (h.down_since == 0) {
    h.down_since = h.sim->now();
  }
}

void FleetController::FailoverHost(int host) {
  if (group_ != nullptr) {
    return;  // recover-attach is sequential-engine-only (see header)
  }
  FleetHost& fh = hosts_[static_cast<size_t>(host)];
  fh.declared_dead = true;
  c_failovers_->Inc();
  const Nanos now = control_sim_->now();
  for (size_t i = 0; i < volumes_.size(); i++) {
    VolumeState& v = *volumes_[i];
    if (v.host != host || v.state == VolumeHealth::kFailed) {
      continue;
    }
    if (v.migration_inflight) {
      v.migration_inflight = false;
      c_migrations_aborted_->Inc();
    }
    if (v.freeze_time == 0) {
      // Partitioned host: the volume never stopped serving locally; clock
      // its outage from the failover decision.
      v.freeze_time = now;
    }
    Abandon(v);
    PlacementRequest req;
    req.ssd_bytes = v.ssd_bytes;
    req.iops = v.iops;
    req.exclude_host = host;
    req.iops_budget = config_.placement_iops_budget;
    const int dst = Pick(req);
    if (dst < 0) {
      v.state = VolumeHealth::kFailed;
      c_placement_rejected_->Inc();
      continue;
    }
    v.epoch = directory_.Flip(v.name, dst);
    v.host = dst;
    v.state = VolumeHealth::kRecovering;
    const Nanos freeze = v.freeze_time;
    const int id = static_cast<int>(i);
    Attach(v, dst, OpenMode::kCacheLost, [this, id, freeze](Status s) {
      VolumeState& v = *volumes_[static_cast<size_t>(id)];
      if (v.state != VolumeHealth::kRecovering) {
        return;  // a second failure re-failed-over the volume
      }
      if (!s.ok()) {
        v.state = VolumeHealth::kFailed;
        return;
      }
      v.state = VolumeHealth::kActive;
      v.freeze_time = 0;
      c_failover_volumes_->Inc();
      RecordLatencyUs(h_recovery_us_, control_sim_->now() - freeze);
    });
  }
}

void FleetController::RunControlPlane(Nanos until) {
  // Domains only advance while they have events, so by the time the
  // coordinator calls this the control domain (and any idle host) may trail
  // the busiest host by whole virtual seconds. Anchor the lease bookkeeping
  // and every chain at the fleet-wide latest clock — otherwise the first
  // lease checks would read that skew as heartbeat silence and declare
  // healthy hosts dead.
  Nanos start = control_sim_->now();
  for (const FleetHost& h : hosts_) {
    start = std::max(start, h.sim->now());
  }
  if (!control_inited_) {
    control_inited_ = true;
    for (FleetHost& h : hosts_) {
      h.last_heartbeat = start;
    }
  }
  control_until_ = std::max(control_until_, until);
  for (int i = 0; i < static_cast<int>(hosts_.size()); i++) {
    FleetHost& h = hosts_[static_cast<size_t>(i)];
    if (!h.hb_running && h.process_alive && !h.partitioned) {
      h.hb_running = true;
      h.sim->At(std::max(start, h.sim->now()),
                [this, i] { ScheduleHeartbeat(i); });
    }
  }
  if (!lease_running_) {
    lease_running_ = true;
    control_sim_->At(std::max(start, control_sim_->now()),
                     [this] { ScheduleLeaseCheck(); });
  }
}

void FleetController::ScheduleHeartbeat(int i) {
  FleetHost& h = hosts_[static_cast<size_t>(i)];
  h.sim->After(config_.heartbeat_interval, [this, i] {
    FleetHost& h = hosts_[static_cast<size_t>(i)];
    if (!h.process_alive || h.partitioned || h.sim->now() > control_until_) {
      h.hb_running = false;
      return;
    }
    const Nanos hop = h.client->link()->half_rtt();
    if (h.hb_channel != nullptr) {
      h.hb_channel->SendAfter(hop, [this, i] { OnHeartbeat(i); });
    } else {
      control_sim_->After(hop, [this, i] { OnHeartbeat(i); });
    }
    ScheduleHeartbeat(i);
  });
}

void FleetController::OnHeartbeat(int i) {
  // Runs on the controller's domain: every mutation of controller state is
  // single-domain even under the parallel engine.
  c_heartbeats_->Inc();
  hosts_[static_cast<size_t>(i)].last_heartbeat = control_sim_->now();
}

void FleetController::ScheduleLeaseCheck() {
  control_sim_->After(config_.lease_check_interval, [this] {
    if (control_sim_->now() > control_until_) {
      lease_running_ = false;
      return;
    }
    const Nanos now = control_sim_->now();
    for (int i = 0; i < static_cast<int>(hosts_.size()); i++) {
      FleetHost& h = hosts_[static_cast<size_t>(i)];
      // Strict '>' so a heartbeat landing exactly at expiry keeps the
      // lease: the verdict never depends on same-timestamp delivery order.
      if (!h.declared_dead && now - h.last_heartbeat > config_.lease_duration) {
        DeclareDead(i);
      }
    }
    ScheduleLeaseCheck();
  });
}

void FleetController::DeclareDead(int i) {
  FleetHost& h = hosts_[static_cast<size_t>(i)];
  h.declared_dead = true;
  c_leases_expired_->Inc();
  if (h.down_since != 0) {
    RecordLatencyUs(h_detect_us_, control_sim_->now() - h.down_since);
  }
  if (config_.auto_failover && group_ == nullptr) {
    FailoverHost(i);
  }
}

}  // namespace lsvd
