#include "src/fleet/placement.h"

namespace lsvd {

namespace {

bool Fits(const HostLoad& h, const PlacementRequest& req) {
  if (!h.alive || h.host == req.exclude_host) {
    return false;
  }
  if (h.ssd_free_bytes < req.ssd_bytes) {
    return false;
  }
  if (req.iops_budget != 0 && h.reserved_iops + req.iops > req.iops_budget) {
    return false;
  }
  return true;
}

}  // namespace

int ChoosePlacement(PlacementPolicyKind kind, const std::vector<HostLoad>& hosts,
                    const PlacementRequest& req) {
  const HostLoad* best = nullptr;
  for (const HostLoad& h : hosts) {
    if (!Fits(h, req)) {
      continue;
    }
    if (kind == PlacementPolicyKind::kFirstFit) {
      // Hosts arrive in id order; the first fit is the lowest id.
      return h.host;
    }
    if (best == nullptr || h.volumes < best->volumes ||
        (h.volumes == best->volumes &&
         h.ssd_free_bytes > best->ssd_free_bytes)) {
      best = &h;
    }
    // Equal on both keys keeps the earlier (lower-id) host.
  }
  return best == nullptr ? -1 : best->host;
}

}  // namespace lsvd
