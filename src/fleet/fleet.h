// Fleet control plane (DESIGN.md §15, docs/FLEET.md): M client hosts sharing
// S backend shards, hosting thousands of LSVD volumes, under one controller
// that owns placement, live migration, and host-failure failover.
//
// The controller is deliberately thin: all durability comes from the LSVD
// data path itself. A volume's write cache is on its host's SSD and its
// object stream is in the shared backend, so moving a volume between hosts
// is "drain the cache tail, flip the ownership epoch, recover-attach from
// the backend" — the same crash-consistent recovery path tbl04 tortures,
// reused as a management operation. The VolumeDirectory's epoch fencing
// (src/objstore/volume_directory.h) is what makes the flip safe against
// stale hosts that were wrongly declared dead.
//
// Engines: on the sequential engine everything works. Under the parallel
// engine (DESIGN.md §14) each host and each backend shard is its own
// SimDomain; placement, clone fan-out, steady-state serving and the
// heartbeat/lease detector all run multi-domain, but live migration and
// failover recover-attach are sequential-engine-only — they need one shared
// object namespace per shard, and the namespace map is client-side state
// that must not be mutated from two domains (see ObjectBucket).
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/placement.h"
#include "src/lsvd/client_host.h"
#include "src/lsvd/config.h"
#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/sim_object_store.h"
#include "src/objstore/volume_directory.h"
#include "src/sim/cluster.h"
#include "src/sim/sim_domain.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace lsvd {

// Knobs for one fleet. Every field is documented in docs/FLEET.md (the
// check_docs.py config lint enforces this).
struct FleetConfig {
  int hosts = 8;
  int shards = 1;
  ClientHostConfig host;
  ClusterConfig cluster;
  SimObjectStoreConfig objstore;
  PlacementPolicyKind placement = PlacementPolicyKind::kLoadSpread;
  uint64_t placement_iops_budget = 0;
  Nanos heartbeat_interval = 50 * kMillisecond;
  Nanos lease_duration = 250 * kMillisecond;
  Nanos lease_check_interval = 50 * kMillisecond;
  bool auto_failover = true;
  uint64_t handoff_header_bytes = 4 * kKiB;
  uint64_t handoff_bytes_per_object = 32;
};

// Timing of one completed live migration, reported to the caller and into
// the fleet.migration.* histograms.
struct MigrationStats {
  int src_host = -1;
  int dst_host = -1;
  // MigrateVolume call -> handoff descriptor ready: the drain-and-seal of
  // the write-cache tail plus the checkpoint write on the source.
  Nanos drain = 0;
  // Handoff ready -> serving on the target: descriptor transfer, epoch flip
  // and recover-attach. This is the part no pre-copy scheme can hide.
  Nanos blackout = 0;
  // Call -> serving on the target (== drain + blackout here, because this
  // one-shot scheme freezes client I/O for the whole migration).
  Nanos total = 0;
  uint64_t handoff_bytes = 0;
  uint64_t applied_seq = 0;
};

class FleetController {
 public:
  using DoneCallback = std::function<void(Status)>;
  using MigrationCallback =
      std::function<void(Status, const MigrationStats&)>;

  enum class VolumeHealth {
    kCreating,    // Create/clone materialization in flight
    kActive,      // attached and serving
    kMigrating,   // live migration in progress (I/O frozen by the caller)
    kRecovering,  // failover or migration recover-attach in flight
    kDown,        // host died; waiting for the lease detector / failover
    kFailed,      // no host fits, or an open failed — needs operator action
  };

  // Sequential engine: every host, shard and the controller share `sim`.
  // Null `metrics` gives the controller a private registry (metrics()).
  FleetController(Simulator* sim, FleetConfig config,
                  MetricsRegistry* metrics = nullptr);
  // Parallel engine: each host and each shard gets its own new domain in
  // `group`; the controller's lease detector runs on `control` (typically
  // the caller's main/client domain). Call before the group's first Run so
  // channel ids key to the topology. KillHost/PartitionHost/CreateVolume/
  // CloneVolume/DistributeImage must run at a barrier (SimDomainGroup::At)
  // or between Run calls; MigrateVolume and FailoverHost are unavailable.
  FleetController(SimDomainGroup* group, SimDomain* control,
                  FleetConfig config, MetricsRegistry* metrics = nullptr);
  ~FleetController();

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  // --- volume lifecycle ---
  // Places and creates a volume; returns its fleet id, or -1 if no host
  // fits (done still fires, with ResourceExhausted). `config.volume_name`
  // must be fleet-unique; backend_shards is overwritten with the fleet's.
  // With `track_metrics` the volume's lsvd.* metrics land in the fleet
  // registry under "lsvd.<name>." — use sparingly, thousands of tracked
  // volumes would bloat every snapshot; untracked volumes keep private
  // registries.
  int CreateVolume(LsvdConfig config, DoneCallback done = nullptr,
                   bool track_metrics = false);
  // Clone fan-out: place a copy-on-write clone of `base_volume` pinned at
  // object `base_seq` (from Snapshot, or applied_seq after a Drain). Counts
  // as a create plus a clone.
  int CloneVolume(int base_volume, const std::string& clone_name,
                  uint64_t base_seq, DoneCallback done = nullptr,
                  bool track_metrics = false);
  // Parallel engine only (a no-op on the sequential engine, where shard
  // namespaces are already shared): copies `base_volume`'s backend objects
  // into every other host's bucket so clones placed anywhere can
  // materialize. Models out-of-band golden-image distribution; charged to
  // fleet.image_bytes_distributed, not to simulated links. Call between
  // Run calls, after the base image has drained.
  void DistributeImage(int base_volume);

  // --- live migration (sequential engine only) ---
  // Drain-and-seal on the source, ship the handoff descriptor over both
  // hosts' links, flip the directory epoch (fencing the source), recover-
  // attach on the target. The caller must stop issuing I/O to the volume
  // first and may resume when `done` fires. `dst_host` -1 lets the
  // placement policy choose. Errors: InvalidArgument (parallel engine, bad
  // volume/host), ResourceExhausted (no host fits). If a failover steals
  // the volume mid-migration, done fires with Unavailable.
  Status MigrateVolume(int volume, int dst_host = -1,
                       MigrationCallback done = nullptr);

  // --- failure injection & failover ---
  // Host process death: every disk on it is Kill()ed (callbacks dropped,
  // SSD content survives per crash semantics) and its heartbeats stop. The
  // lease detector declares it dead after lease_duration. Parallel engine:
  // call at a barrier.
  void KillHost(int host);
  // Network partition: heartbeats stop but the host keeps running — its
  // volumes serve on, and after failover their stale attachments write
  // into the fence (the double-attach scenario docs/FLEET.md tabulates).
  void PartitionHost(int host);
  // Re-places every volume of `host` onto survivors and recover-attaches
  // them via OpenCacheLost. Runs automatically from the lease detector when
  // auto_failover is set (sequential engine); exposed for deterministic
  // tests. Volumes that fit nowhere become kFailed.
  void FailoverHost(int host);

  // --- control plane ---
  // Runs heartbeats (each host -> controller, every heartbeat_interval)
  // and the lease detector (every lease_check_interval) up to virtual time
  // `until`, then quiesces — so Run() terminates. Call again to extend.
  void RunControlPlane(Nanos until);

  // --- introspection ---
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Simulator* shard_sim(int s) { return shards_[static_cast<size_t>(s)].sim; }
  size_t volume_count() const { return volumes_.size(); }
  int volumes_on(int host) const;
  ClientHost* host(int i) { return hosts_[static_cast<size_t>(i)].client.get(); }
  Simulator* host_sim(int i) { return hosts_[static_cast<size_t>(i)].sim; }
  SimDomain* host_domain(int i) {
    return hosts_[static_cast<size_t>(i)].domain;
  }
  bool host_process_alive(int i) const {
    return hosts_[static_cast<size_t>(i)].process_alive;
  }
  bool host_declared_dead(int i) const {
    return hosts_[static_cast<size_t>(i)].declared_dead;
  }
  VolumeHealth health(int volume) const {
    return volumes_[static_cast<size_t>(volume)]->state;
  }
  int host_of(int volume) const {
    return volumes_[static_cast<size_t>(volume)]->host;
  }
  // The live attachment (nullptr while kDown/kFailed).
  LsvdDisk* disk(int volume);
  // The newest abandoned attachment, still running if its host is only
  // partitioned — the double-attach victim tests poke at.
  LsvdDisk* stale_disk(int volume);
  uint64_t volume_epoch(int volume) const {
    return volumes_[static_cast<size_t>(volume)]->epoch;
  }
  VolumeDirectory& directory() { return directory_; }
  MetricsRegistry& metrics() { return *metrics_; }
  Simulator* control_sim() { return control_sim_; }
  bool parallel() const { return group_ != nullptr; }

 private:
  struct Shard {
    SimDomain* domain = nullptr;  // parallel engine only
    Simulator* sim = nullptr;
    std::unique_ptr<BackendCluster> cluster;
    // Sequential engine: the one namespace every host view shares.
    std::unique_ptr<ObjectBucket> bucket;
  };

  struct FleetHost {
    SimDomain* domain = nullptr;  // parallel engine only
    Simulator* sim = nullptr;
    std::unique_ptr<ClientHost> client;
    // Parallel engine: per-host namespaces (indexed by shard) and the
    // channels carrying store requests/responses and heartbeats.
    std::vector<std::unique_ptr<ObjectBucket>> buckets;
    std::vector<CrossDomainChannel*> to_shard;
    std::vector<CrossDomainChannel*> from_shard;
    CrossDomainChannel* hb_channel = nullptr;
    bool process_alive = true;
    bool partitioned = false;
    bool declared_dead = false;
    bool hb_running = false;
    Nanos last_heartbeat = 0;  // controller clock
    Nanos down_since = 0;      // kill/partition time, for detect latency
  };

  struct VolumeState {
    int id = -1;
    std::string name;
    LsvdConfig config;
    bool track_metrics = false;
    uint64_t ssd_bytes = 0;  // placement footprint
    uint64_t iops = 0;       // placement reservation
    int host = -1;
    uint64_t epoch = 0;
    VolumeHealth state = VolumeHealth::kCreating;
    bool migration_inflight = false;
    Nanos freeze_time = 0;  // when client I/O (or the host) stopped
    // Declaration order = reverse destruction order: the live disk dies
    // before its store views, stale disks before theirs.
    std::vector<std::unique_ptr<SimObjectStore>> stale_raw_views;
    std::vector<std::unique_ptr<FencedObjectStore>> stale_views;
    std::vector<std::unique_ptr<LsvdDisk>> stale_disks;
    std::vector<std::unique_ptr<SimObjectStore>> raw_views;
    std::vector<std::unique_ptr<FencedObjectStore>> views;
    std::unique_ptr<LsvdDisk> disk;
  };

  enum class OpenMode { kCreate, kCacheLost };

  void RegisterMetrics();
  ObjectBucket* BucketFor(int host, int shard);
  int Pick(const PlacementRequest& req) const;
  // Builds store views + disk for v on `host_id` and starts the open.
  void Attach(VolumeState& v, int host_id, OpenMode mode, DoneCallback done);
  // Moves the current attachment to the stale_* lists (no Kill, no free:
  // a merely-partitioned host keeps running it until the fence stops it).
  void Abandon(VolumeState& v);
  void FinishMigration(int volume, int dst, Nanos freeze, Nanos detached,
                       uint64_t handoff_bytes, uint64_t applied_seq,
                       MigrationCallback done);
  void ScheduleHeartbeat(int i);
  void OnHeartbeat(int i);
  void ScheduleLeaseCheck();
  void DeclareDead(int i);

  FleetConfig config_;
  SimDomainGroup* group_ = nullptr;
  Simulator* control_sim_ = nullptr;

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;

  VolumeDirectory directory_;
  std::vector<Shard> shards_;
  std::vector<FleetHost> hosts_;
  std::vector<std::unique_ptr<VolumeState>> volumes_;

  // Control-plane horizon: heartbeat/lease chains stop past this time so
  // the simulation quiesces. Written only while the engine is quiesced.
  Nanos control_until_ = 0;
  bool control_inited_ = false;
  bool lease_running_ = false;

  Counter* c_creates_;
  Counter* c_create_failures_;
  Counter* c_clones_;
  Counter* c_placement_rejected_;
  Counter* c_heartbeats_;
  Counter* c_leases_expired_;
  Counter* c_migrations_;
  Counter* c_migrations_aborted_;
  Counter* c_migrations_failed_;
  Counter* c_failovers_;
  Counter* c_failover_volumes_;
  Counter* c_handoff_bytes_;
  Counter* c_image_bytes_;
  Histogram* h_blackout_us_;
  Histogram* h_migration_total_us_;
  Histogram* h_recovery_us_;
  Histogram* h_detect_us_;

  // Last member: the fleet.* gauges read hosts_/volumes_ above.
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_FLEET_FLEET_H_
