// Volume placement policies for the fleet control plane (docs/FLEET.md).
//
// Placement is a pure function over a snapshot of per-host load: given what
// the controller knows about every host's free SSD, reserved IOPS and volume
// count, pick the host a new (or failing-over) volume should attach to.
// Both policies are deterministic — ties break toward the lowest host id —
// so fleet runs replay identically for a given seed and event order.
#ifndef SRC_FLEET_PLACEMENT_H_
#define SRC_FLEET_PLACEMENT_H_

#include <cstdint>
#include <vector>

namespace lsvd {

enum class PlacementPolicyKind {
  // Lowest-id alive host that fits the request. Packs volumes densely onto
  // early hosts (good for power-down economics, bad for blast radius).
  kFirstFit,
  // Among alive hosts that fit, prefer the fewest attached volumes, then the
  // most free SSD bytes, then the lowest id. Spreads load and keeps the
  // failover fan-in per surviving host small.
  kLoadSpread,
};

// The controller's view of one host, fed to ChoosePlacement.
struct HostLoad {
  int host = -1;
  // Eligible at all: the process is up and its lease has not expired.
  bool alive = true;
  uint64_t ssd_free_bytes = 0;
  // Sum of the QoS iops reservations of volumes already placed here.
  uint64_t reserved_iops = 0;
  int volumes = 0;
};

struct PlacementRequest {
  // SSD footprint the volume needs (write cache + read cache regions).
  uint64_t ssd_bytes = 0;
  // The volume's QoS iops reservation (0 = best effort, no budget charge).
  uint64_t iops = 0;
  // Host to never pick (e.g. the migration source / the dead host). -1 ok.
  int exclude_host = -1;
  // Per-host iops capacity; a host is full once reserved_iops + iops would
  // exceed it. 0 disables the iops dimension.
  uint64_t iops_budget = 0;
};

// Returns the chosen host id, or -1 if no alive host fits.
int ChoosePlacement(PlacementPolicyKind kind, const std::vector<HostLoad>& hosts,
                    const PlacementRequest& req);

}  // namespace lsvd

#endif  // SRC_FLEET_PLACEMENT_H_
