// S3-like object store interface: immutable named objects.
//
// This is the only contract the LSVD backend needs from remote storage
// (paper §3): whole-object PUT (atomic), GET and range GET, LIST by prefix,
// DELETE. Objects are immutable once created; LSVD encodes log order in the
// object *name* (volume prefix + sequence number).
//
// A deployment may expose several independent ObjectStore instances (e.g.
// separate clusters or placement groups); a sharded LSVD volume (DESIGN.md
// §9) stripes its sequence-numbered stream round-robin across them. Stores
// need no knowledge of each other — each shard simply sees a subsequence of
// names in the shared volume namespace.
#ifndef SRC_OBJSTORE_OBJECT_STORE_H_
#define SRC_OBJSTORE_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/status.h"

namespace lsvd {

class ObjectStore {
 public:
  using PutCallback = std::function<void(Status)>;
  using GetCallback = std::function<void(Result<Buffer>)>;

  virtual ~ObjectStore() = default;

  // Atomically creates `name` with `data`. Overwriting an existing name is
  // an error (objects are immutable).
  virtual void Put(const std::string& name, Buffer data,
                   PutCallback done) = 0;

  virtual void Get(const std::string& name, GetCallback done) = 0;

  // Reads [offset, offset+len) of the object.
  virtual void GetRange(const std::string& name, uint64_t offset,
                        uint64_t len, GetCallback done) = 0;

  virtual void Delete(const std::string& name, PutCallback done) = 0;

  // Control-plane: names with the given prefix, in lexicographic order.
  // Synchronous (used during recovery and by the garbage collector; its cost
  // is negligible next to data movement).
  virtual std::vector<std::string> List(const std::string& prefix) const = 0;

  // Size of an existing object, or NotFound.
  virtual Result<uint64_t> Head(const std::string& name) const = 0;
};

}  // namespace lsvd

#endif  // SRC_OBJSTORE_OBJECT_STORE_H_
