// Simulated S3-compatible object store (Ceph RADOS Gateway stand-in).
//
// Functionally a key->Buffer map; every operation is charged realistic time
// against the client NIC (NetLink) and the backend disk pool
// (BackendCluster). Two placement policies:
//
//  - kErasure42 (paper's LSVD configuration): each 4 MiB RADOS-style stripe
//    of a PUT becomes 4 data + 2 parity chunk writes of stripe/4 bytes each,
//    plus a batch of small journal/metadata writes — reproducing the ~1 MiB
//    backend write clustering and the small-write tail in Figure 14.
//  - kReplicated3: three whole-stripe copies (used for ablations).
//
// An object becomes visible when all its backend writes complete, so
// concurrent PUTs commit out of order under backend congestion — exactly the
// "stranded object" scenario LSVD's prefix recovery handles (§3.3).
// ClientCrash() drops unacknowledged completions and abandons PUTs that have
// not yet reached the backend.
#ifndef SRC_OBJSTORE_SIM_OBJECT_STORE_H_
#define SRC_OBJSTORE_SIM_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/objstore/object_store.h"
#include "src/sim/cluster.h"
#include "src/sim/net_link.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"

namespace lsvd {

struct SimObjectStoreConfig {
  enum class Placement { kErasure42, kReplicated3 };
  Placement placement = Placement::kErasure42;
  uint64_t stripe_size = 4 * kMiB;
  // Ceph issues ~64 writes per 4 MiB object (paper §4.5): 6 chunk writes for
  // the 4,2 code plus ~58 small journal/metadata writes, charged as WAL
  // appends on the chunk disks. This is what yields the paper's 0.25 backend
  // ops per client op in the 16 KiB load test (Figure 13).
  uint32_t metadata_writes_per_stripe = 58;
  uint32_t metadata_write_size = 4 * kKiB;
  // Per-request gateway (RGW) software overhead: the paper measures an S3
  // range GET at ~5.9 ms end to end (Table 6).
  Nanos get_overhead = 3500 * kMicrosecond;
  Nanos put_overhead = 2 * kMillisecond;
};

struct ObjectStoreStats {
  uint64_t puts = 0;
  uint64_t put_bytes = 0;
  uint64_t gets = 0;
  uint64_t get_bytes = 0;
  uint64_t deletes = 0;
};

class CrossDomainChannel;
class SimDomain;

// The durable object namespace of one backend shard. By default every
// SimObjectStore owns a private bucket (the historical single-host
// behavior); a fleet (src/fleet) builds one bucket per shard and hands the
// same bucket to every host's store view, so objects PUT through host A's
// view are visible to host B's — the property live migration, failover
// recover-attach and cross-host clone fan-out all rest on. A bucket must
// only be shared between stores whose client sides run on one simulator
// (one SimDomain): the map is mutated from client event context, so
// cross-domain sharing would be a data race (DESIGN.md §15).
struct ObjectBucket {
  std::map<std::string, Buffer> objects;
};

class SimObjectStore : public ObjectStore {
 public:
  // `bucket` null keeps a privately owned namespace; non-null shares the
  // caller's (which must outlive the store).
  SimObjectStore(Simulator* sim, BackendCluster* cluster, NetLink* link,
                 SimObjectStoreConfig config,
                 MetricsRegistry* metrics = nullptr,
                 const std::string& prefix = "objstore",
                 ObjectBucket* bucket = nullptr);

  // Parallel engine (DESIGN.md §14): runs this store's backend half — the
  // BackendCluster disk/WAL work and the gateway overheads — on `backend`'s
  // simulator, with the two channels carrying the request and response hops.
  // The cluster passed at construction must have been built on `backend`'s
  // simulator. Client-side state (the object map, epoch, counters, NetLink
  // queues, pending completions) stays on the constructing simulator.
  // Without this call the store runs entirely on `sim` — byte-identical to
  // the pre-parallel engine.
  void BindBackendDomain(SimDomain* backend, CrossDomainChannel* to_backend,
                         CrossDomainChannel* to_client);

  void Put(const std::string& name, Buffer data, PutCallback done) override;
  void Get(const std::string& name, GetCallback done) override;
  void GetRange(const std::string& name, uint64_t offset, uint64_t len,
                GetCallback done) override;
  void Delete(const std::string& name, PutCallback done) override;
  std::vector<std::string> List(const std::string& prefix) const override;
  Result<uint64_t> Head(const std::string& name) const override;

  // Client process crash: in-flight client-side work is abandoned; PUTs whose
  // data already reached the backend still commit (the backend is remote and
  // unaffected).
  void ClientCrash() { epoch_++; }

  ObjectStoreStats stats() const;
  ObjectBucket* bucket() { return bucket_; }

 private:
  // Issues the stripe/metadata disk writes for an object of `size` bytes.
  // Runs on the backend simulator (== sim_ unless a domain is bound); only
  // the object name and size cross the domain boundary, never the Buffer.
  void BackendWrites(const std::string& name, uint64_t size,
                     std::function<void()> all_done);
  void ReadTiming(uint64_t bytes, std::function<void()> done);
  // Domain-split twins of the Put / ReadTiming bodies (see .cc).
  void PutViaDomain(const std::string& name, Buffer data, PutCallback done);
  void ReadViaDomain(uint64_t bytes, std::function<void()> done);
  uint64_t Allocate(int disk, uint32_t len);
  static uint64_t NameHash(const std::string& name, uint64_t salt);

  Simulator* sim_;
  BackendCluster* cluster_;
  NetLink* link_;
  SimObjectStoreConfig config_;
  std::unique_ptr<ObjectBucket> owned_bucket_;
  ObjectBucket* bucket_;
  std::vector<uint64_t> alloc_head_;  // per-disk data-region bump allocator
  uint64_t epoch_ = 0;

  // Parallel-engine state. backend_sim_ aliases sim_ until BindBackendDomain
  // splits the store; the pending maps keep Buffers and completion closures
  // on the client side, keyed by a cookie that crosses the boundary instead.
  Simulator* backend_sim_;
  CrossDomainChannel* to_backend_ = nullptr;
  CrossDomainChannel* to_client_ = nullptr;
  uint64_t next_cookie_ = 0;
  struct PendingPut {
    std::string name;
    Buffer data;
    PutCallback done;
    uint64_t epoch;
  };
  struct PendingRead {
    std::function<void()> done;
    uint64_t epoch;
  };
  std::map<uint64_t, PendingPut> pending_puts_;
  std::map<uint64_t, PendingRead> pending_reads_;

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter* c_puts_;
  Counter* c_put_bytes_;
  Counter* c_gets_;
  Counter* c_get_bytes_;
  Counter* c_deletes_;
};

}  // namespace lsvd

#endif  // SRC_OBJSTORE_SIM_OBJECT_STORE_H_
