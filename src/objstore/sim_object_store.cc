#include "src/objstore/sim_object_store.h"

#include <cassert>
#include <utility>

#include "src/sim/cross_domain_channel.h"
#include "src/sim/sim_domain.h"

namespace lsvd {
namespace {

// Data-region allocations start above the per-disk WAL region.
constexpr uint64_t kDataRegionBase = 8 * kGiB;

uint64_t RoundUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

SimObjectStore::SimObjectStore(Simulator* sim, BackendCluster* cluster,
                               NetLink* link, SimObjectStoreConfig config,
                               MetricsRegistry* metrics,
                               const std::string& prefix,
                               ObjectBucket* bucket)
    : sim_(sim), cluster_(cluster), link_(link), config_(config),
      backend_sim_(sim) {
  if (bucket == nullptr) {
    owned_bucket_ = std::make_unique<ObjectBucket>();
    bucket = owned_bucket_.get();
  }
  bucket_ = bucket;
  alloc_head_.assign(static_cast<size_t>(cluster_->num_disks()),
                     kDataRegionBase);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_puts_ = metrics_->GetCounter(prefix + ".puts");
  c_put_bytes_ = metrics_->GetCounter(prefix + ".put_bytes");
  c_gets_ = metrics_->GetCounter(prefix + ".gets");
  c_get_bytes_ = metrics_->GetCounter(prefix + ".get_bytes");
  c_deletes_ = metrics_->GetCounter(prefix + ".deletes");
  metrics_->RegisterCallback(prefix + ".object_count", [this] {
    return static_cast<double>(bucket_->objects.size());
  });
}

ObjectStoreStats SimObjectStore::stats() const {
  ObjectStoreStats s;
  s.puts = c_puts_->value();
  s.put_bytes = c_put_bytes_->value();
  s.gets = c_gets_->value();
  s.get_bytes = c_get_bytes_->value();
  s.deletes = c_deletes_->value();
  return s;
}

uint64_t SimObjectStore::NameHash(const std::string& name, uint64_t salt) {
  uint64_t h = 1469598103934665603ULL ^ salt;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t SimObjectStore::Allocate(int disk, uint32_t len) {
  auto& head = alloc_head_[static_cast<size_t>(disk)];
  const uint64_t offset = head;
  head += RoundUp(len, 4 * kKiB);
  if (head >= cluster_->disk_capacity()) {
    head = kDataRegionBase;
  }
  return offset;
}

void SimObjectStore::BindBackendDomain(SimDomain* backend,
                                       CrossDomainChannel* to_backend,
                                       CrossDomainChannel* to_client) {
  assert(to_backend->dst() == backend && to_client->src() == backend);
  backend_sim_ = backend->sim();
  to_backend_ = to_backend;
  to_client_ = to_client;
}

void SimObjectStore::BackendWrites(const std::string& name, uint64_t size,
                                   std::function<void()> all_done) {
  // Counts outstanding disk writes; fires all_done when the last completes.
  auto remaining = std::make_shared<int>(0);
  auto issued_all = std::make_shared<bool>(false);
  auto one_done = [remaining, issued_all, all_done]() {
    (*remaining)--;
    if (*issued_all && *remaining == 0) {
      all_done();
    }
  };

  const uint64_t stripes =
      (size + config_.stripe_size - 1) / config_.stripe_size;
  for (uint64_t s = 0; s < stripes; s++) {
    const uint64_t stripe_len =
        std::min(config_.stripe_size, size - s * config_.stripe_size);
    const uint64_t hash = NameHash(name, s);

    if (config_.placement == SimObjectStoreConfig::Placement::kErasure42) {
      // 4 data + 2 parity chunks of stripe/4 bytes each.
      const auto chunk_len = static_cast<uint32_t>(
          RoundUp((stripe_len + 3) / 4, 4 * kKiB));
      for (int c = 0; c < 6; c++) {
        const int disk = cluster_->PickDisk(hash, c);
        const uint64_t off = Allocate(disk, chunk_len);
        (*remaining)++;
        cluster_->Write(disk, off, chunk_len, one_done);
      }
    } else {
      const auto copy_len =
          static_cast<uint32_t>(RoundUp(stripe_len, 4 * kKiB));
      for (int c = 0; c < 3; c++) {
        const int disk = cluster_->PickDisk(hash, c);
        const uint64_t off = Allocate(disk, copy_len);
        (*remaining)++;
        cluster_->Write(disk, off, copy_len, one_done);
      }
    }

    // Small metadata / OSD-journal writes accompanying the stripe.
    for (uint32_t m = 0; m < config_.metadata_writes_per_stripe; m++) {
      const int disk = cluster_->PickDisk(hash, static_cast<int>(m % 3));
      (*remaining)++;
      cluster_->WalAppend(disk, config_.metadata_write_size, one_done);
    }
  }
  *issued_all = true;
  if (*remaining == 0) {
    // Zero-byte object: commit immediately.
    backend_sim_->After(0, all_done);
  }
}

void SimObjectStore::Put(const std::string& name, Buffer data,
                         PutCallback done) {
  if (bucket_->objects.contains(name)) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::InvalidArgument("object exists (objects are immutable)"));
    });
    return;
  }
  c_puts_->Inc();
  c_put_bytes_->Inc(data.size());
  if (to_backend_ != nullptr) {
    PutViaDomain(name, std::move(data), std::move(done));
    return;
  }
  const uint64_t epoch = epoch_;
  const uint64_t size = data.size();
  // Phase 1: the object body crosses the client link.
  link_->SendToBackend(size, [this, epoch, name, data = std::move(data),
                              done = std::move(done)]() mutable {
    if (epoch != epoch_) {
      return;  // client crashed mid-transfer: PUT abandoned
    }
    // Phase 2 (after propagation + gateway overhead): backend disk writes;
    // the object commits when they all complete, regardless of later client
    // failures.
    sim_->After(link_->half_rtt() + config_.put_overhead,
                [this, name, data = std::move(data),
                 done = std::move(done)]() mutable {
      const uint64_t put_epoch = epoch_;
      const uint64_t size = data.size();
      BackendWrites(name, size, [this, put_epoch, name,
                                 data = std::move(data),
                                 done = std::move(done)]() mutable {
        bucket_->objects[name] = std::move(data);
        // Phase 3: acknowledgement back to the client.
        sim_->After(link_->half_rtt(),
                    [this, put_epoch, done = std::move(done)]() {
          if (put_epoch != epoch_) {
            return;  // ack lost: object exists but client never learns
          }
          done(Status::Ok());
        });
      });
    });
  });
}

// Domain-split Put: same virtual-time offsets as the sequential path — link
// transfer, half_rtt + put_overhead to the gateway, backend disk writes,
// half_rtt ack — but the middle leg runs on the backend domain's simulator
// and only (cookie, name, size) cross the boundary. Two visible differences,
// both documented in DESIGN.md §14: the object map insert happens when the
// ack lands (client time) rather than when the last disk write completes
// (backend time), and the commit epoch is captured when the body finishes
// crossing the link rather than at gateway arrival.
void SimObjectStore::PutViaDomain(const std::string& name, Buffer data,
                                  PutCallback done) {
  const uint64_t epoch = epoch_;
  const uint64_t size = data.size();
  link_->SendToBackend(size, [this, epoch, name, size,
                              data = std::move(data),
                              done = std::move(done)]() mutable {
    if (epoch != epoch_) {
      return;  // client crashed mid-transfer: PUT abandoned
    }
    const uint64_t cookie = next_cookie_++;
    pending_puts_.emplace(
        cookie, PendingPut{name, std::move(data), std::move(done), epoch_});
    to_backend_->SendAfter(
        link_->half_rtt() + config_.put_overhead,
        [this, cookie, name, size]() {
          BackendWrites(name, size, [this, cookie]() {
            to_client_->SendAfter(link_->half_rtt(), [this, cookie]() {
              auto node = pending_puts_.extract(cookie);
              PendingPut& put = node.mapped();
              bucket_->objects[put.name] = std::move(put.data);
              if (put.epoch == epoch_) {
                put.done(Status::Ok());
              }
            });
          });
        });
  });
}

void SimObjectStore::ReadTiming(uint64_t bytes, std::function<void()> done) {
  if (to_backend_ != nullptr) {
    ReadViaDomain(bytes, std::move(done));
    return;
  }
  // Request out (negligible size) + gateway overhead + backend disk read(s)
  // + body back.
  const uint64_t epoch = epoch_;
  sim_->After(link_->half_rtt() + config_.get_overhead,
              [this, epoch, bytes, done = std::move(done)]() mutable {
    // Charge the read against the data chunks it covers.
    const auto chunk = static_cast<uint32_t>(
        std::min<uint64_t>(RoundUp(std::max<uint64_t>(bytes, 4 * kKiB),
                                   4 * kKiB),
                           UINT32_MAX));
    const int disk = cluster_->PickDisk(NameHash("read", alloc_head_[0]),
                                        0);
    cluster_->Read(disk, Allocate(disk, 0), chunk,
                   [this, epoch, bytes, done = std::move(done)]() {
      link_->ReceiveFromBackend(bytes, [this, epoch,
                                        done = std::move(done)]() {
        if (epoch != epoch_) {
          return;
        }
        sim_->After(link_->half_rtt(), done);
      });
    });
  });
}

// Domain-split read timing: request hop (half_rtt + gateway overhead) to the
// backend domain, disk read there, then the response hop. The sequential
// path charges NIC-receive serialization before the final half_rtt of
// propagation; here the response crosses the channel (propagation) first and
// serializes on the client NIC on arrival — same total service time, only
// the queueing order differs under rx contention (DESIGN.md §14).
void SimObjectStore::ReadViaDomain(uint64_t bytes,
                                   std::function<void()> done) {
  const uint64_t cookie = next_cookie_++;
  pending_reads_.emplace(cookie, PendingRead{std::move(done), epoch_});
  to_backend_->SendAfter(
      link_->half_rtt() + config_.get_overhead, [this, cookie, bytes]() {
        const auto chunk = static_cast<uint32_t>(
            std::min<uint64_t>(RoundUp(std::max<uint64_t>(bytes, 4 * kKiB),
                                       4 * kKiB),
                               UINT32_MAX));
        const int disk =
            cluster_->PickDisk(NameHash("read", alloc_head_[0]), 0);
        cluster_->Read(disk, Allocate(disk, 0), chunk,
                       [this, cookie, bytes]() {
          to_client_->SendAfter(link_->half_rtt(), [this, cookie, bytes]() {
            link_->ReceiveFromBackend(bytes, [this, cookie]() {
              auto node = pending_reads_.extract(cookie);
              PendingRead& read = node.mapped();
              if (read.epoch == epoch_) {
                read.done();
              }
            });
          });
        });
      });
}

void SimObjectStore::Get(const std::string& name, GetCallback done) {
  auto it = bucket_->objects.find(name);
  if (it == bucket_->objects.end()) {
    sim_->After(0, [done = std::move(done), name]() {
      done(Status::NotFound(name));
    });
    return;
  }
  c_gets_->Inc();
  c_get_bytes_->Inc(it->second.size());
  Buffer data = it->second;
  ReadTiming(data.size(), [done = std::move(done), data = std::move(data)]() {
    done(data);
  });
}

void SimObjectStore::GetRange(const std::string& name, uint64_t offset,
                              uint64_t len, GetCallback done) {
  auto it = bucket_->objects.find(name);
  if (it == bucket_->objects.end()) {
    sim_->After(0, [done = std::move(done), name]() {
      done(Status::NotFound(name));
    });
    return;
  }
  if (offset + len > it->second.size()) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::OutOfRange("range beyond object size"));
    });
    return;
  }
  c_gets_->Inc();
  c_get_bytes_->Inc(len);
  Buffer data = it->second.Slice(offset, len);
  ReadTiming(len, [done = std::move(done), data = std::move(data)]() {
    done(data);
  });
}

void SimObjectStore::Delete(const std::string& name, PutCallback done) {
  c_deletes_->Inc();
  bucket_->objects.erase(name);
  const uint64_t epoch = epoch_;
  sim_->After(link_->rtt(), [this, epoch, done = std::move(done)]() {
    if (epoch != epoch_) {
      return;
    }
    done(Status::Ok());
  });
}

std::vector<std::string> SimObjectStore::List(
    const std::string& prefix) const {
  std::vector<std::string> names;
  for (auto it = bucket_->objects.lower_bound(prefix); it != bucket_->objects.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    names.push_back(it->first);
  }
  return names;
}

Result<uint64_t> SimObjectStore::Head(const std::string& name) const {
  auto it = bucket_->objects.find(name);
  if (it == bucket_->objects.end()) {
    return Status::NotFound(name);
  }
  return it->second.size();
}

}  // namespace lsvd
