// Volume directory + write fencing (DESIGN.md §15, docs/FLEET.md).
//
// The VolumeDirectory is the fleet's authoritative volume -> (host, epoch)
// map — the piece of control-plane metadata that makes ownership handoffs
// safe. Every attachment of a volume carries the epoch it was granted;
// reassigning the volume (live migration, failover) bumps the epoch, and
// from that instant any store traffic still issued under the old epoch is
// *fenced*: mutations fail with StatusCode::kFenced. A host that was
// wrongly declared dead (partition, stalled heartbeats) can therefore keep
// running against its stale attachment without corrupting the object
// stream — its PUTs bounce, its write cache keeps the data, and the new
// attachment's recover-attach sees a consistent prefix.
//
// In the simulation the directory is a plain map read synchronously at
// operation-issue time; this models a linearizable metadata service (etcd/
// chubby-style) whose lookup latency is negligible next to the data path.
// Reads are deliberately NOT fenced: objects are immutable, so a stale
// reader can only observe data it was already allowed to see.
#ifndef SRC_OBJSTORE_VOLUME_DIRECTORY_H_
#define SRC_OBJSTORE_VOLUME_DIRECTORY_H_

#include <map>
#include <string>

#include "src/objstore/object_store.h"
#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace lsvd {

struct VolumeDirEntry {
  int host = -1;
  uint64_t epoch = 0;
};

class VolumeDirectory {
 public:
  // Registers a new volume on `host`; returns its first epoch (1).
  // The name must be unused.
  uint64_t Register(const std::string& volume, int host);
  // Reassigns the volume to `host` and bumps the epoch; store views fenced
  // to the old epoch observe their mutations failing from now on. Returns
  // the new epoch.
  uint64_t Flip(const std::string& volume, int host);
  // Current epoch, or 0 for unknown volumes.
  uint64_t CurrentEpoch(const std::string& volume) const;
  Result<VolumeDirEntry> Lookup(const std::string& volume) const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, VolumeDirEntry> entries_;
};

// Per-attachment fencing decorator: wraps the shard store view a volume
// attachment writes through, pinning the epoch the attachment was granted.
// Put/Delete check the directory's current epoch at issue time and fail
// with kFenced when stale; Get/GetRange/List/Head pass through unfenced
// (immutable objects). The error is delivered asynchronously through the
// simulator, like every other store completion.
class FencedObjectStore : public ObjectStore {
 public:
  FencedObjectStore(Simulator* sim, ObjectStore* base,
                    const VolumeDirectory* directory, std::string volume,
                    uint64_t epoch)
      : sim_(sim), base_(base), directory_(directory),
        volume_(std::move(volume)), epoch_(epoch) {}

  void Put(const std::string& name, Buffer data, PutCallback done) override;
  void Get(const std::string& name, GetCallback done) override;
  void GetRange(const std::string& name, uint64_t offset, uint64_t len,
                GetCallback done) override;
  void Delete(const std::string& name, PutCallback done) override;
  std::vector<std::string> List(const std::string& prefix) const override;
  Result<uint64_t> Head(const std::string& name) const override;

  uint64_t epoch() const { return epoch_; }
  bool fenced() const { return directory_->CurrentEpoch(volume_) != epoch_; }

 private:
  Simulator* sim_;
  ObjectStore* base_;
  const VolumeDirectory* directory_;
  std::string volume_;
  uint64_t epoch_;
};

}  // namespace lsvd

#endif  // SRC_OBJSTORE_VOLUME_DIRECTORY_H_
