// In-memory object store test double: zero latency, optional fault hooks.
#ifndef SRC_OBJSTORE_MEM_OBJECT_STORE_H_
#define SRC_OBJSTORE_MEM_OBJECT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "src/objstore/object_store.h"
#include "src/sim/simulator.h"

namespace lsvd {

class MemObjectStore : public ObjectStore {
 public:
  explicit MemObjectStore(Simulator* sim) : sim_(sim) {}

  void Put(const std::string& name, Buffer data, PutCallback done) override;
  void Get(const std::string& name, GetCallback done) override;
  void GetRange(const std::string& name, uint64_t offset, uint64_t len,
                GetCallback done) override;
  void Delete(const std::string& name, PutCallback done) override;
  std::vector<std::string> List(const std::string& prefix) const override;
  Result<uint64_t> Head(const std::string& name) const override;

  // --- fault injection ---
  // When set, the next `n` Puts are "stranded": the client never gets an
  // acknowledgement and the object is not created (models a crash with PUTs
  // in flight).
  void DropNextPuts(int n) { drop_puts_ = n; }
  // Removes an object directly (simulating loss), bypassing Delete.
  void Corrupt(const std::string& name) { objects_.erase(name); }

  size_t object_count() const { return objects_.size(); }
  uint64_t bytes_stored() const;

 private:
  Simulator* sim_;
  std::map<std::string, Buffer> objects_;
  int drop_puts_ = 0;
};

}  // namespace lsvd

#endif  // SRC_OBJSTORE_MEM_OBJECT_STORE_H_
