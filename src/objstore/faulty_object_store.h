// Fault-injecting decorator over any ObjectStore.
//
// Wraps a real store and, driven by a seeded RNG, makes its data plane
// unreliable: transient errors (Unavailable) on PUT/GET/DELETE, added
// latency, torn PUTs (a kill mid-upload leaves a truncated object behind
// and the client never learns whether the PUT landed), and a switchable
// offline mode where every data-plane call fails until the store "comes
// back". List/Head are the control plane and always pass through — real
// deployments serve them from replicated metadata, and recovery depends on
// them being authoritative.
//
// All injected delays run on simulated time, so retry/backoff behaviour in
// the layers above is deterministic for a given seed.
#ifndef SRC_OBJSTORE_FAULTY_OBJECT_STORE_H_
#define SRC_OBJSTORE_FAULTY_OBJECT_STORE_H_

#include <string>
#include <vector>

#include "src/objstore/object_store.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace lsvd {

struct FaultInjectionConfig {
  uint64_t seed = 1;
  // Per-call probability of failing with Unavailable (after any latency).
  double put_error_p = 0.0;
  double get_error_p = 0.0;     // applies to Get and GetRange
  double delete_error_p = 0.0;
  // Per-call probability that a PUT is torn: a strict prefix of the data is
  // written under the target name and the caller gets Unavailable. Checked
  // only when the PUT was not already failed outright.
  double torn_put_p = 0.0;
  // Uniform extra latency in [min, max] added to every data-plane call.
  Nanos added_latency_min = 0;
  Nanos added_latency_max = 0;
};

struct FaultStats {
  uint64_t put_errors = 0;
  uint64_t get_errors = 0;
  uint64_t delete_errors = 0;
  uint64_t torn_puts = 0;
};

class FaultyObjectStore : public ObjectStore {
 public:
  FaultyObjectStore(ObjectStore* inner, Simulator* sim,
                    FaultInjectionConfig config);

  void Put(const std::string& name, Buffer data, PutCallback done) override;
  void Get(const std::string& name, GetCallback done) override;
  void GetRange(const std::string& name, uint64_t offset, uint64_t len,
                GetCallback done) override;
  void Delete(const std::string& name, PutCallback done) override;
  std::vector<std::string> List(const std::string& prefix) const override;
  Result<uint64_t> Head(const std::string& name) const override;

  // Permanent-failure mode: while set, every data-plane call fails with
  // Unavailable (tears nothing); probabilities are not consulted.
  void set_offline(bool offline) { offline_ = offline; }
  bool offline() const { return offline_; }

  const FaultStats& fault_stats() const { return stats_; }

 private:
  Nanos Latency();
  // Runs `fn` after the injected latency for one call.
  void Delayed(std::function<void()> fn);

  ObjectStore* inner_;
  Simulator* sim_;
  FaultInjectionConfig config_;
  Rng rng_;
  bool offline_ = false;
  FaultStats stats_;
};

}  // namespace lsvd

#endif  // SRC_OBJSTORE_FAULTY_OBJECT_STORE_H_
