#include "src/objstore/faulty_object_store.h"

#include <algorithm>
#include <utility>

namespace lsvd {

FaultyObjectStore::FaultyObjectStore(ObjectStore* inner, Simulator* sim,
                                     FaultInjectionConfig config)
    : inner_(inner), sim_(sim), config_(config), rng_(config.seed) {}

Nanos FaultyObjectStore::Latency() {
  if (config_.added_latency_max <= config_.added_latency_min) {
    return config_.added_latency_min;
  }
  return static_cast<Nanos>(
      rng_.UniformRange(static_cast<uint64_t>(config_.added_latency_min),
                        static_cast<uint64_t>(config_.added_latency_max) + 1));
}

void FaultyObjectStore::Delayed(std::function<void()> fn) {
  sim_->After(Latency(), std::move(fn));
}

void FaultyObjectStore::Put(const std::string& name, Buffer data,
                            PutCallback done) {
  if (offline_ || rng_.Bernoulli(config_.put_error_p)) {
    stats_.put_errors++;
    Delayed([done = std::move(done)]() {
      done(Status::Unavailable("injected PUT failure"));
    });
    return;
  }
  if (data.size() > 1 && rng_.Bernoulli(config_.torn_put_p)) {
    // Kill mid-upload: a strict prefix of the object lands under the real
    // name, and the client sees only a transient error — it cannot tell a
    // torn PUT from one that never started.
    stats_.torn_puts++;
    const uint64_t cut = rng_.UniformRange(1, data.size());
    Buffer torn = data.Slice(0, cut);
    Delayed([this, name, torn = std::move(torn),
             done = std::move(done)]() mutable {
      inner_->Put(name, std::move(torn), [done = std::move(done)](Status) {
        done(Status::Unavailable("injected torn PUT"));
      });
    });
    return;
  }
  Delayed([this, name, data = std::move(data),
           done = std::move(done)]() mutable {
    inner_->Put(name, std::move(data), std::move(done));
  });
}

void FaultyObjectStore::Get(const std::string& name, GetCallback done) {
  if (offline_ || rng_.Bernoulli(config_.get_error_p)) {
    stats_.get_errors++;
    Delayed([done = std::move(done)]() {
      done(Status::Unavailable("injected GET failure"));
    });
    return;
  }
  Delayed([this, name, done = std::move(done)]() mutable {
    inner_->Get(name, std::move(done));
  });
}

void FaultyObjectStore::GetRange(const std::string& name, uint64_t offset,
                                 uint64_t len, GetCallback done) {
  if (offline_ || rng_.Bernoulli(config_.get_error_p)) {
    stats_.get_errors++;
    Delayed([done = std::move(done)]() {
      done(Status::Unavailable("injected GET failure"));
    });
    return;
  }
  Delayed([this, name, offset, len, done = std::move(done)]() mutable {
    inner_->GetRange(name, offset, len, std::move(done));
  });
}

void FaultyObjectStore::Delete(const std::string& name, PutCallback done) {
  if (offline_ || rng_.Bernoulli(config_.delete_error_p)) {
    stats_.delete_errors++;
    Delayed([done = std::move(done)]() {
      done(Status::Unavailable("injected DELETE failure"));
    });
    return;
  }
  Delayed([this, name, done = std::move(done)]() mutable {
    inner_->Delete(name, std::move(done));
  });
}

std::vector<std::string> FaultyObjectStore::List(
    const std::string& prefix) const {
  return inner_->List(prefix);
}

Result<uint64_t> FaultyObjectStore::Head(const std::string& name) const {
  return inner_->Head(name);
}

}  // namespace lsvd
