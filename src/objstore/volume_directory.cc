#include "src/objstore/volume_directory.h"

#include <cassert>
#include <utility>

namespace lsvd {

uint64_t VolumeDirectory::Register(const std::string& volume, int host) {
  assert(!entries_.contains(volume) && "volume already registered");
  entries_[volume] = VolumeDirEntry{host, 1};
  return 1;
}

uint64_t VolumeDirectory::Flip(const std::string& volume, int host) {
  auto it = entries_.find(volume);
  assert(it != entries_.end() && "flip of unregistered volume");
  it->second.host = host;
  it->second.epoch++;
  return it->second.epoch;
}

uint64_t VolumeDirectory::CurrentEpoch(const std::string& volume) const {
  auto it = entries_.find(volume);
  return it == entries_.end() ? 0 : it->second.epoch;
}

Result<VolumeDirEntry> VolumeDirectory::Lookup(
    const std::string& volume) const {
  auto it = entries_.find(volume);
  if (it == entries_.end()) {
    return Status::NotFound(volume);
  }
  return it->second;
}

void FencedObjectStore::Put(const std::string& name, Buffer data,
                            PutCallback done) {
  if (fenced()) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::Fenced("stale attachment epoch"));
    });
    return;
  }
  base_->Put(name, std::move(data), std::move(done));
}

void FencedObjectStore::Get(const std::string& name, GetCallback done) {
  base_->Get(name, std::move(done));
}

void FencedObjectStore::GetRange(const std::string& name, uint64_t offset,
                                 uint64_t len, GetCallback done) {
  base_->GetRange(name, offset, len, std::move(done));
}

void FencedObjectStore::Delete(const std::string& name, PutCallback done) {
  if (fenced()) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::Fenced("stale attachment epoch"));
    });
    return;
  }
  base_->Delete(name, std::move(done));
}

std::vector<std::string> FencedObjectStore::List(
    const std::string& prefix) const {
  return base_->List(prefix);
}

Result<uint64_t> FencedObjectStore::Head(const std::string& name) const {
  return base_->Head(name);
}

}  // namespace lsvd
