#include "src/objstore/mem_object_store.h"

#include <utility>

namespace lsvd {

void MemObjectStore::Put(const std::string& name, Buffer data,
                         PutCallback done) {
  if (drop_puts_ > 0) {
    drop_puts_--;
    return;  // stranded: no object, no ack
  }
  if (objects_.contains(name)) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::InvalidArgument("object exists (objects are immutable)"));
    });
    return;
  }
  objects_[name] = std::move(data);
  sim_->After(0, [done = std::move(done)]() { done(Status::Ok()); });
}

void MemObjectStore::Get(const std::string& name, GetCallback done) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    sim_->After(0, [done = std::move(done), name]() {
      done(Status::NotFound(name));
    });
    return;
  }
  Buffer data = it->second;
  sim_->After(0, [done = std::move(done), data = std::move(data)]() {
    done(data);
  });
}

void MemObjectStore::GetRange(const std::string& name, uint64_t offset,
                              uint64_t len, GetCallback done) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    sim_->After(0, [done = std::move(done), name]() {
      done(Status::NotFound(name));
    });
    return;
  }
  if (offset + len > it->second.size()) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::OutOfRange("range beyond object size"));
    });
    return;
  }
  Buffer data = it->second.Slice(offset, len);
  sim_->After(0, [done = std::move(done), data = std::move(data)]() {
    done(data);
  });
}

void MemObjectStore::Delete(const std::string& name, PutCallback done) {
  objects_.erase(name);
  sim_->After(0, [done = std::move(done)]() { done(Status::Ok()); });
}

std::vector<std::string> MemObjectStore::List(
    const std::string& prefix) const {
  std::vector<std::string> names;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    names.push_back(it->first);
  }
  return names;
}

Result<uint64_t> MemObjectStore::Head(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status::NotFound(name);
  }
  return it->second.size();
}

uint64_t MemObjectStore::bytes_stored() const {
  uint64_t total = 0;
  for (const auto& [name, data] : objects_) {
    total += data.size();
  }
  return total;
}

}  // namespace lsvd
