#include "src/lsvd/replicator.h"

#include <utility>

namespace lsvd {

Replicator::Replicator(Simulator* sim, ObjectStore* primary,
                       ObjectStore* replica, ReplicatorConfig config)
    : sim_(sim), primary_(primary), replica_(replica),
      config_(std::move(config)) {}

void Replicator::Start() {
  *alive_ = false;  // cancel a previous schedule, if any
  alive_ = std::make_shared<bool>(true);
  ScheduleNext();
}

void Replicator::ScheduleNext() {
  auto alive = alive_;
  sim_->After(config_.poll_interval, [this, alive]() {
    if (!*alive) {
      return;
    }
    PollOnce([this, alive]() {
      if (!*alive) {
        return;
      }
      ScheduleNext();
    });
  });
}

void Replicator::PollOnce(std::function<void()> done) {
  const Nanos now = sim_->now();
  // Track first-seen times; select objects that aged past the threshold.
  std::vector<std::string> to_copy;
  std::set<std::string> listed;
  for (const auto& name : primary_->List(config_.volume_name + ".")) {
    listed.insert(name);
    auto [it, inserted] = first_seen_.insert({name, now});
    if (copied_.contains(name)) {
      continue;
    }
    if (now - it->second >= config_.min_age) {
      to_copy.push_back(name);
    }
  }
  // Objects that disappeared before aging in were garbage collected (or were
  // checkpoints replaced by newer ones) and are never copied.
  for (auto it = first_seen_.begin(); it != first_seen_.end();) {
    if (!listed.contains(it->first)) {
      if (!copied_.contains(it->first)) {
        stats_.objects_skipped_deleted++;
      }
      it = first_seen_.erase(it);
    } else {
      ++it;
    }
  }
  if (to_copy.empty()) {
    sim_->After(0, std::move(done));
    return;
  }

  auto remaining = std::make_shared<size_t>(to_copy.size());
  auto alive = alive_;
  auto one_done = [alive, remaining, done = std::move(done)]() {
    if (--*remaining == 0 && *alive) {
      done();
    }
  };
  for (const auto& name : to_copy) {
    copied_.insert(name);
    primary_->Get(name, [this, alive, name, one_done](Result<Buffer> r) {
      if (!*alive) {
        return;
      }
      if (!r.ok()) {
        // Garbage collection deleted the object before we aged it in.
        stats_.objects_skipped_deleted++;
        copied_.erase(name);
        one_done();
        return;
      }
      const uint64_t size = r->size();
      replica_->Put(name, std::move(r).value(),
                    [this, alive, size, one_done](Status s) {
        if (!*alive) {
          return;
        }
        if (s.ok()) {
          stats_.objects_copied++;
          stats_.bytes_copied += size;
        }
        one_done();
      });
    });
  }
}

}  // namespace lsvd
