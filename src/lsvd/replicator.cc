#include "src/lsvd/replicator.h"

#include <utility>

namespace lsvd {

Replicator::Replicator(Simulator* sim, ObjectStore* primary,
                       ObjectStore* replica, ReplicatorConfig config,
                       MetricsRegistry* metrics, const std::string& prefix)
    : sim_(sim), primary_(primary), replica_(replica),
      config_(std::move(config)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_objects_copied_ = metrics_->GetCounter(prefix + ".objects_copied");
  c_bytes_copied_ = metrics_->GetCounter(prefix + ".bytes_copied");
  c_objects_skipped_deleted_ =
      metrics_->GetCounter(prefix + ".objects_skipped_deleted");
  h_copy_lag_us_ = metrics_->GetHistogram(prefix + ".copy_lag_us");
  metrics_->RegisterCallback(prefix + ".tracked_objects", [this] {
    return static_cast<double>(first_seen_.size());
  });
}

ReplicatorStats Replicator::stats() const {
  ReplicatorStats s;
  s.objects_copied = c_objects_copied_->value();
  s.bytes_copied = c_bytes_copied_->value();
  s.objects_skipped_deleted = c_objects_skipped_deleted_->value();
  return s;
}

void Replicator::Start() {
  *alive_ = false;  // cancel a previous schedule, if any
  alive_ = std::make_shared<bool>(true);
  ScheduleNext();
}

void Replicator::ScheduleNext() {
  auto alive = alive_;
  sim_->After(config_.poll_interval, [this, alive]() {
    if (!*alive) {
      return;
    }
    PollOnce([this, alive]() {
      if (!*alive) {
        return;
      }
      ScheduleNext();
    });
  });
}

void Replicator::PollOnce(std::function<void()> done) {
  const Nanos now = sim_->now();
  // Track first-seen times; select objects that aged past the threshold.
  std::vector<std::string> to_copy;
  std::set<std::string> listed;
  for (const auto& name : primary_->List(config_.volume_name + ".")) {
    listed.insert(name);
    auto [it, inserted] = first_seen_.insert({name, now});
    if (copied_.contains(name)) {
      continue;
    }
    if (now - it->second >= config_.min_age) {
      to_copy.push_back(name);
    }
  }
  // Objects that disappeared before aging in were garbage collected (or were
  // checkpoints replaced by newer ones) and are never copied.
  for (auto it = first_seen_.begin(); it != first_seen_.end();) {
    if (!listed.contains(it->first)) {
      if (!copied_.contains(it->first)) {
        c_objects_skipped_deleted_->Inc();
      }
      it = first_seen_.erase(it);
    } else {
      ++it;
    }
  }
  if (to_copy.empty()) {
    sim_->After(0, std::move(done));
    return;
  }

  auto remaining = std::make_shared<size_t>(to_copy.size());
  auto alive = alive_;
  auto one_done = [alive, remaining, done = std::move(done)]() {
    if (--*remaining == 0 && *alive) {
      done();
    }
  };
  for (const auto& name : to_copy) {
    copied_.insert(name);
    primary_->Get(name, [this, alive, name, one_done](Result<Buffer> r) {
      if (!*alive) {
        return;
      }
      if (!r.ok()) {
        // Garbage collection deleted the object before we aged it in.
        c_objects_skipped_deleted_->Inc();
        copied_.erase(name);
        one_done();
        return;
      }
      const uint64_t size = r->size();
      const auto seen = first_seen_.find(name);
      const Nanos seen_at = seen != first_seen_.end() ? seen->second : 0;
      replica_->Put(name, std::move(r).value(),
                    [this, alive, size, seen_at, one_done](Status s) {
        if (!*alive) {
          return;
        }
        if (s.ok()) {
          c_objects_copied_->Inc();
          c_bytes_copied_->Inc(size);
          RecordLatencyUs(h_copy_lag_us_, sim_->now() - seen_at);
        }
        one_done();
      });
    });
  }
}

}  // namespace lsvd
