#include "src/lsvd/replicator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/lsvd/object_format.h"

namespace lsvd {

Replicator::Replicator(Simulator* sim, ObjectStore* primary,
                       ObjectStore* replica, ReplicatorConfig config,
                       MetricsRegistry* metrics, const std::string& prefix)
    : Replicator(sim, std::vector<ObjectStore*>{primary},
                 std::vector<ObjectStore*>{replica}, std::move(config),
                 metrics, prefix) {}

Replicator::Replicator(Simulator* sim, std::vector<ObjectStore*> primaries,
                       std::vector<ObjectStore*> replicas,
                       ReplicatorConfig config, MetricsRegistry* metrics,
                       const std::string& prefix)
    : sim_(sim), config_(std::move(config)), retry_rng_(config_.retry_seed) {
  assert(!primaries.empty() && primaries.size() == replicas.size());
  shards_.resize(primaries.size());
  for (size_t i = 0; i < primaries.size(); i++) {
    shards_[i].primary = primaries[i];
    shards_[i].replica = replicas[i];
  }
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_objects_copied_ = metrics_->GetCounter(prefix + ".objects_copied");
  c_bytes_copied_ = metrics_->GetCounter(prefix + ".bytes_copied");
  c_objects_skipped_deleted_ =
      metrics_->GetCounter(prefix + ".objects_skipped_deleted");
  c_retries_ = metrics_->GetCounter(prefix + ".retries");
  c_copy_failures_ = metrics_->GetCounter(prefix + ".copy_failures");
  h_copy_lag_us_ = metrics_->GetHistogram(prefix + ".copy_lag_us");
  callback_guard_.Register(metrics_, prefix + ".tracked_objects", [this] {
    size_t tracked = 0;
    for (const auto& shard : shards_) {
      tracked += shard.first_seen.size();
    }
    return static_cast<double>(tracked);
  });
}

ReplicatorStats Replicator::stats() const {
  ReplicatorStats s;
  s.objects_copied = c_objects_copied_->value();
  s.bytes_copied = c_bytes_copied_->value();
  s.objects_skipped_deleted = c_objects_skipped_deleted_->value();
  s.retries = c_retries_->value();
  s.copy_failures = c_copy_failures_->value();
  return s;
}

uint64_t Replicator::ConsistencyPoint() const {
  // Collect the data-object seqs present on each replica shard, counting a
  // seq only on its assigned shard (a misplaced copy would never be read by
  // sharded recovery, so it must not extend the prefix).
  std::set<uint64_t> have;
  for (size_t i = 0; i < shards_.size(); i++) {
    for (const auto& name :
         shards_[i].replica->List(DataObjectPrefix(config_.volume_name))) {
      if (auto seq = ParseDataObjectSeq(config_.volume_name, name)) {
        if (ShardForSeq(*seq, shards_.size()) == i) {
          have.insert(*seq);
        }
      }
    }
  }
  uint64_t point = 0;
  while (have.contains(point + 1)) {
    point++;
  }
  return point;
}

void Replicator::Start() {
  *alive_ = false;  // cancel a previous schedule, if any
  alive_ = std::make_shared<bool>(true);
  ScheduleNext();
}

void Replicator::ScheduleNext() {
  auto alive = alive_;
  sim_->After(config_.poll_interval, [this, alive]() {
    if (!*alive) {
      return;
    }
    PollOnce([this, alive]() {
      if (!*alive) {
        return;
      }
      ScheduleNext();
    });
  });
}

void Replicator::PollOnce(std::function<void()> done) {
  const Nanos now = sim_->now();
  // Track first-seen times per shard stream; select objects that aged past
  // the threshold. (shard, name) pairs, since shards share one namespace.
  std::vector<std::pair<size_t, std::string>> to_copy;
  for (size_t i = 0; i < shards_.size(); i++) {
    ShardStream& shard = shards_[i];
    std::set<std::string> listed;
    for (const auto& name : shard.primary->List(config_.volume_name + ".")) {
      listed.insert(name);
      auto [it, inserted] = shard.first_seen.insert({name, now});
      if (shard.copied.contains(name)) {
        continue;
      }
      if (now - it->second >= config_.min_age) {
        to_copy.push_back({i, name});
      }
    }
    // Objects that disappeared before aging in were garbage collected (or
    // were checkpoints replaced by newer ones) and are never copied.
    for (auto it = shard.first_seen.begin(); it != shard.first_seen.end();) {
      if (!listed.contains(it->first)) {
        if (!shard.copied.contains(it->first)) {
          c_objects_skipped_deleted_->Inc();
        }
        it = shard.first_seen.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (to_copy.empty()) {
    sim_->After(0, std::move(done));
    return;
  }

  auto remaining = std::make_shared<size_t>(to_copy.size());
  auto alive = alive_;
  auto one_done = [alive, remaining, done = std::move(done)]() {
    if (--*remaining == 0 && *alive) {
      done();
    }
  };
  for (const auto& [shard, name] : to_copy) {
    shards_[shard].copied.insert(name);
    CopyObject(shard, name, 0, one_done);
  }
}

Nanos Replicator::RetryBackoff(int attempt) {
  double backoff = static_cast<double>(config_.initial_backoff);
  for (int i = 1; i < attempt &&
                  backoff < static_cast<double>(config_.max_backoff); i++) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, static_cast<double>(config_.max_backoff));
  const double factor =
      1.0 + config_.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
  return static_cast<Nanos>(std::max(0.0, backoff * factor));
}

void Replicator::CopyObject(size_t shard_index, const std::string& name,
                            int attempt, std::function<void()> done) {
  ShardStream& shard = shards_[shard_index];
  auto alive = alive_;
  auto retry = [this, alive, shard_index, name, attempt, done]() {
    if (attempt + 1 >= config_.max_attempts) {
      // Out of budget: forget the object so a later poll starts over
      // (leaving it in copied would silently drop it from the replica
      // forever).
      c_copy_failures_->Inc();
      shards_[shard_index].copied.erase(name);
      done();
      return;
    }
    c_retries_->Inc();
    sim_->After(RetryBackoff(attempt + 1), [this, alive, shard_index, name,
                                            attempt, done]() {
      if (!*alive) {
        return;
      }
      CopyObject(shard_index, name, attempt + 1, done);
    });
  };
  shard.primary->Get(name, [this, alive, shard_index, name, retry,
                            done](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    ShardStream& shard = shards_[shard_index];
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kNotFound) {
        // Garbage collection deleted the object before we aged it in.
        c_objects_skipped_deleted_->Inc();
        shard.copied.erase(name);
        shard.first_seen.erase(name);
        done();
        return;
      }
      retry();
      return;
    }
    const uint64_t size = r->size();
    const auto seen = shard.first_seen.find(name);
    const Nanos seen_at = seen != shard.first_seen.end() ? seen->second : 0;
    shard.replica->Put(name, std::move(r).value(),
                       [this, alive, shard_index, name, size, seen_at, retry,
                        done](Status s) {
      if (!*alive) {
        return;
      }
      ShardStream& shard = shards_[shard_index];
      bool complete = s.ok();
      if (!complete && s.code() == StatusCode::kInvalidArgument) {
        // The name already exists on the replica: a previous attempt's PUT
        // landed without us seeing the ack. A full-size copy is a success; a
        // short one is torn — delete it and go around again.
        const auto have = shard.replica->Head(name);
        if (have.ok() && *have == size) {
          complete = true;
        } else {
          shard.replica->Delete(name, [](Status) {});
        }
      }
      if (complete) {
        c_objects_copied_->Inc();
        c_bytes_copied_->Inc(size);
        RecordLatencyUs(h_copy_lag_us_, sim_->now() - seen_at);
        done();
        return;
      }
      retry();
    });
  });
}

}  // namespace lsvd
