#include "src/lsvd/replicator.h"

#include <algorithm>
#include <utility>

namespace lsvd {

Replicator::Replicator(Simulator* sim, ObjectStore* primary,
                       ObjectStore* replica, ReplicatorConfig config,
                       MetricsRegistry* metrics, const std::string& prefix)
    : sim_(sim), primary_(primary), replica_(replica),
      config_(std::move(config)), retry_rng_(config_.retry_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_objects_copied_ = metrics_->GetCounter(prefix + ".objects_copied");
  c_bytes_copied_ = metrics_->GetCounter(prefix + ".bytes_copied");
  c_objects_skipped_deleted_ =
      metrics_->GetCounter(prefix + ".objects_skipped_deleted");
  c_retries_ = metrics_->GetCounter(prefix + ".retries");
  c_copy_failures_ = metrics_->GetCounter(prefix + ".copy_failures");
  h_copy_lag_us_ = metrics_->GetHistogram(prefix + ".copy_lag_us");
  callback_guard_.Register(metrics_, prefix + ".tracked_objects", [this] {
    return static_cast<double>(first_seen_.size());
  });
}

ReplicatorStats Replicator::stats() const {
  ReplicatorStats s;
  s.objects_copied = c_objects_copied_->value();
  s.bytes_copied = c_bytes_copied_->value();
  s.objects_skipped_deleted = c_objects_skipped_deleted_->value();
  s.retries = c_retries_->value();
  s.copy_failures = c_copy_failures_->value();
  return s;
}

void Replicator::Start() {
  *alive_ = false;  // cancel a previous schedule, if any
  alive_ = std::make_shared<bool>(true);
  ScheduleNext();
}

void Replicator::ScheduleNext() {
  auto alive = alive_;
  sim_->After(config_.poll_interval, [this, alive]() {
    if (!*alive) {
      return;
    }
    PollOnce([this, alive]() {
      if (!*alive) {
        return;
      }
      ScheduleNext();
    });
  });
}

void Replicator::PollOnce(std::function<void()> done) {
  const Nanos now = sim_->now();
  // Track first-seen times; select objects that aged past the threshold.
  std::vector<std::string> to_copy;
  std::set<std::string> listed;
  for (const auto& name : primary_->List(config_.volume_name + ".")) {
    listed.insert(name);
    auto [it, inserted] = first_seen_.insert({name, now});
    if (copied_.contains(name)) {
      continue;
    }
    if (now - it->second >= config_.min_age) {
      to_copy.push_back(name);
    }
  }
  // Objects that disappeared before aging in were garbage collected (or were
  // checkpoints replaced by newer ones) and are never copied.
  for (auto it = first_seen_.begin(); it != first_seen_.end();) {
    if (!listed.contains(it->first)) {
      if (!copied_.contains(it->first)) {
        c_objects_skipped_deleted_->Inc();
      }
      it = first_seen_.erase(it);
    } else {
      ++it;
    }
  }
  if (to_copy.empty()) {
    sim_->After(0, std::move(done));
    return;
  }

  auto remaining = std::make_shared<size_t>(to_copy.size());
  auto alive = alive_;
  auto one_done = [alive, remaining, done = std::move(done)]() {
    if (--*remaining == 0 && *alive) {
      done();
    }
  };
  for (const auto& name : to_copy) {
    copied_.insert(name);
    CopyObject(name, 0, one_done);
  }
}

Nanos Replicator::RetryBackoff(int attempt) {
  double backoff = static_cast<double>(config_.initial_backoff);
  for (int i = 1; i < attempt &&
                  backoff < static_cast<double>(config_.max_backoff); i++) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, static_cast<double>(config_.max_backoff));
  const double factor =
      1.0 + config_.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
  return static_cast<Nanos>(std::max(0.0, backoff * factor));
}

void Replicator::CopyObject(const std::string& name, int attempt,
                            std::function<void()> done) {
  auto alive = alive_;
  auto retry = [this, alive, name, attempt, done]() {
    if (attempt + 1 >= config_.max_attempts) {
      // Out of budget: forget the object so a later poll starts over
      // (leaving it in copied_ would silently drop it from the replica
      // forever).
      c_copy_failures_->Inc();
      copied_.erase(name);
      done();
      return;
    }
    c_retries_->Inc();
    sim_->After(RetryBackoff(attempt + 1), [this, alive, name, attempt,
                                            done]() {
      if (!*alive) {
        return;
      }
      CopyObject(name, attempt + 1, done);
    });
  };
  primary_->Get(name, [this, alive, name, retry,
                       done](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kNotFound) {
        // Garbage collection deleted the object before we aged it in.
        c_objects_skipped_deleted_->Inc();
        copied_.erase(name);
        first_seen_.erase(name);
        done();
        return;
      }
      retry();
      return;
    }
    const uint64_t size = r->size();
    const auto seen = first_seen_.find(name);
    const Nanos seen_at = seen != first_seen_.end() ? seen->second : 0;
    replica_->Put(name, std::move(r).value(),
                  [this, alive, name, size, seen_at, retry, done](Status s) {
      if (!*alive) {
        return;
      }
      bool complete = s.ok();
      if (!complete && s.code() == StatusCode::kInvalidArgument) {
        // The name already exists on the replica: a previous attempt's PUT
        // landed without us seeing the ack. A full-size copy is a success; a
        // short one is torn — delete it and go around again.
        const auto have = replica_->Head(name);
        if (have.ok() && *have == size) {
          complete = true;
        } else {
          replica_->Delete(name, [](Status) {});
        }
      }
      if (complete) {
        c_objects_copied_->Inc();
        c_bytes_copied_->Inc(size);
        RecordLatencyUs(h_copy_lag_us_, sim_->now() - seen_at);
        done();
        return;
      }
      retry();
    });
  });
}

}  // namespace lsvd
