// Explicit allocator for the SSD regions backing per-volume caches.
//
// Replaces the client host's old bump-pointer region bookkeeping: a
// multi-volume host carves one region per cache out of the shared SSD and
// must be able to return them (volume detach) and name them (debugging,
// host-level accounting). The free-map mechanics live in util/RunAllocator
// (the same first-fit core the bcache baseline uses); this class adds the
// alignment policy and an owner label per live region.
//
// Note on lifetimes: a region is NOT freed when its LsvdDisk is destroyed —
// crash-recovery tests re-open a disk on the same DiskRegions, so the SSD
// contents (and the reservation) must outlive the disk object. Owners that
// are truly done with a region free it explicitly.
#ifndef SRC_LSVD_SSD_REGION_ALLOCATOR_H_
#define SRC_LSVD_SSD_REGION_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/run_allocator.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace lsvd {

class SsdRegionAllocator {
 public:
  struct Region {
    uint64_t base = 0;
    uint64_t size = 0;
    std::string owner;
  };

  SsdRegionAllocator(uint64_t base, uint64_t size) : core_(base, size) {}

  // Carves a block-aligned region (first fit). The owner label is purely
  // informational (introspection / error messages).
  Result<uint64_t> Allocate(uint64_t size, const std::string& owner) {
    if (size == 0 || size % kBlockSize != 0) {
      return Status::InvalidArgument("region size must be block aligned");
    }
    const auto base = core_.Allocate(size);
    if (!base.has_value()) {
      return Status::ResourceExhausted("SSD regions exhausted");
    }
    allocated_[*base] = Region{*base, size, owner};
    return *base;
  }

  // Returns a previously allocated region, merging free neighbors.
  Status Free(uint64_t base) {
    auto it = allocated_.find(base);
    if (it == allocated_.end()) {
      return Status::InvalidArgument("not an allocated region base");
    }
    core_.Free(it->second.base, it->second.size);
    allocated_.erase(it);
    return Status::Ok();
  }

  uint64_t total_bytes() const { return core_.total_bytes(); }
  uint64_t free_bytes() const { return core_.free_bytes(); }
  uint64_t allocated_bytes() const { return total_bytes() - free_bytes(); }
  size_t region_count() const { return allocated_.size(); }

  // Live regions in address order.
  std::vector<Region> Regions() const {
    std::vector<Region> out;
    out.reserve(allocated_.size());
    for (const auto& [base, region] : allocated_) {
      out.push_back(region);
    }
    return out;
  }

 private:
  RunAllocator core_;
  std::map<uint64_t, Region> allocated_;  // base -> live region
};

}  // namespace lsvd

#endif  // SRC_LSVD_SSD_REGION_ALLOCATOR_H_
