// Explicit allocator for the SSD regions backing per-volume caches.
//
// Replaces the client host's old bump-pointer region bookkeeping: a
// multi-volume host carves one region per cache out of the shared SSD and
// must be able to return them (volume detach) and name them (debugging,
// host-level accounting). First-fit over a free map, same idiom as
// util/RunAllocator, plus an owner label per live region.
//
// Note on lifetimes: a region is NOT freed when its LsvdDisk is destroyed —
// crash-recovery tests re-open a disk on the same DiskRegions, so the SSD
// contents (and the reservation) must outlive the disk object. Owners that
// are truly done with a region free it explicitly.
#ifndef SRC_LSVD_SSD_REGION_ALLOCATOR_H_
#define SRC_LSVD_SSD_REGION_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"

namespace lsvd {

class SsdRegionAllocator {
 public:
  struct Region {
    uint64_t base = 0;
    uint64_t size = 0;
    std::string owner;
  };

  SsdRegionAllocator(uint64_t base, uint64_t size) {
    if (size > 0) {
      free_[base] = size;
    }
    total_ = size;
    free_bytes_ = size;
  }

  // Carves a block-aligned region (first fit). The owner label is purely
  // informational (introspection / error messages).
  Result<uint64_t> Allocate(uint64_t size, const std::string& owner) {
    if (size == 0 || size % kBlockSize != 0) {
      return Status::InvalidArgument("region size must be block aligned");
    }
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second < size) {
        continue;
      }
      const uint64_t base = it->first;
      const uint64_t run = it->second;
      free_.erase(it);
      if (run > size) {
        free_[base + size] = run - size;
      }
      free_bytes_ -= size;
      allocated_[base] = Region{base, size, owner};
      return base;
    }
    return Status::ResourceExhausted("SSD regions exhausted");
  }

  // Returns a previously allocated region, merging free neighbors.
  Status Free(uint64_t base) {
    auto it = allocated_.find(base);
    if (it == allocated_.end()) {
      return Status::InvalidArgument("not an allocated region base");
    }
    uint64_t offset = it->second.base;
    uint64_t len = it->second.size;
    free_bytes_ += len;
    allocated_.erase(it);
    auto next = free_.lower_bound(offset);
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == offset) {
        offset = prev->first;
        len += prev->second;
        free_.erase(prev);
      }
    }
    if (next != free_.end() && offset + len == next->first) {
      len += next->second;
      free_.erase(next);
    }
    free_[offset] = len;
    return Status::Ok();
  }

  uint64_t total_bytes() const { return total_; }
  uint64_t free_bytes() const { return free_bytes_; }
  uint64_t allocated_bytes() const { return total_ - free_bytes_; }
  size_t region_count() const { return allocated_.size(); }

  // Live regions in address order.
  std::vector<Region> Regions() const {
    std::vector<Region> out;
    out.reserve(allocated_.size());
    for (const auto& [base, region] : allocated_) {
      out.push_back(region);
    }
    return out;
  }

 private:
  std::map<uint64_t, uint64_t> free_;     // base -> run length
  std::map<uint64_t, Region> allocated_;  // base -> live region
  uint64_t total_ = 0;
  uint64_t free_bytes_ = 0;
};

}  // namespace lsvd

#endif  // SRC_LSVD_SSD_REGION_ALLOCATOR_H_
