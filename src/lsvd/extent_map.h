// Extent map: ordered map of byte ranges [start, start+len) -> target.
//
// LSVD keeps all translation state in extent maps held purely in memory
// (paper §3.1, §6.1): the write-cache map (vLBA -> SSD pLBA), the read-cache
// map, and the object map (vLBA -> object seq/offset). Targets must describe
// how they advance when an extent is split, so a mapping for 64 KiB can be
// cut anywhere and both halves still point at the right bytes.
//
// Adjacent extents whose targets are contiguous are merged on insert; the
// resulting extent count is the memory-usage measure reported in Table 5.
#ifndef SRC_LSVD_EXTENT_MAP_H_
#define SRC_LSVD_EXTENT_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace lsvd {

// Target of a cache-map extent: a byte offset on the local SSD.
struct SsdTarget {
  uint64_t plba = 0;

  SsdTarget Advanced(uint64_t delta) const { return SsdTarget{plba + delta}; }
  friend bool operator==(const SsdTarget&, const SsdTarget&) = default;
};

// Target of an object-map extent: position within a numbered backend object.
struct ObjTarget {
  uint64_t seq = 0;      // object sequence number
  uint64_t offset = 0;   // byte offset of the data within the object

  ObjTarget Advanced(uint64_t delta) const {
    return ObjTarget{seq, offset + delta};
  }
  friend bool operator==(const ObjTarget&, const ObjTarget&) = default;
};

template <typename T>
class ExtentMap {
 public:
  struct Extent {
    uint64_t start = 0;
    uint64_t len = 0;
    T target{};

    friend bool operator==(const Extent&, const Extent&) = default;
  };

  // A lookup segment: when `target` is empty the range is unmapped.
  struct Segment {
    uint64_t start = 0;
    uint64_t len = 0;
    std::optional<T> target;
  };

  // Maps [start, start+len) to `target`, replacing any overlapped mappings.
  // Returns the (portions of) previous extents that were displaced — the
  // garbage collector uses these to decrement per-object live counts.
  std::vector<Extent> Update(uint64_t start, uint64_t len, T target) {
    std::vector<Extent> displaced = Remove(start, len);
    InsertAndMerge(start, len, target);
    return displaced;
  }

  // Removes mappings in [start, start+len); returns what was removed.
  std::vector<Extent> Remove(uint64_t start, uint64_t len) {
    std::vector<Extent> removed;
    if (len == 0) {
      return removed;
    }
    const uint64_t end = start + len;

    auto it = map_.lower_bound(start);
    // Step back to an extent that may straddle `start`.
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len > start) {
        it = prev;
      }
    }
    while (it != map_.end() && it->first < end) {
      const uint64_t e_start = it->first;
      const uint64_t e_len = it->second.len;
      const uint64_t e_end = e_start + e_len;
      const T e_target = it->second.target;

      const uint64_t cut_start = std::max(e_start, start);
      const uint64_t cut_end = std::min(e_end, end);
      assert(cut_start < cut_end);

      removed.push_back(Extent{cut_start, cut_end - cut_start,
                               e_target.Advanced(cut_start - e_start)});
      it = map_.erase(it);
      mapped_ -= e_len;

      if (e_start < cut_start) {  // left remainder survives
        InsertRaw(e_start, cut_start - e_start, e_target);
      }
      if (cut_end < e_end) {  // right remainder survives
        InsertRaw(cut_end, e_end - cut_end,
                  e_target.Advanced(cut_end - e_start));
        break;  // nothing past e_end can overlap [start, end)
      }
    }
    return removed;
  }

  // Splits [start, start+len) into maximal segments that are each either
  // fully mapped by one extent or fully unmapped.
  std::vector<Segment> Lookup(uint64_t start, uint64_t len) const {
    std::vector<Segment> out;
    if (len == 0) {
      return out;
    }
    const uint64_t end = start + len;
    uint64_t pos = start;

    auto it = map_.lower_bound(start);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len > start) {
        it = prev;
      }
    }
    while (pos < end) {
      if (it == map_.end() || it->first >= end) {
        out.push_back(Segment{pos, end - pos, std::nullopt});
        break;
      }
      const uint64_t e_start = it->first;
      const uint64_t e_end = e_start + it->second.len;
      if (e_start > pos) {
        out.push_back(Segment{pos, e_start - pos, std::nullopt});
        pos = e_start;
      }
      const uint64_t seg_end = std::min(e_end, end);
      out.push_back(Segment{pos, seg_end - pos,
                            it->second.target.Advanced(pos - e_start)});
      pos = seg_end;
      ++it;
    }
    return out;
  }

  // Target covering the single byte at `addr`, if mapped.
  std::optional<T> LookupOne(uint64_t addr) const {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) {
      return std::nullopt;
    }
    --it;
    if (it->first + it->second.len <= addr) {
      return std::nullopt;
    }
    return it->second.target.Advanced(addr - it->first);
  }

  void Clear() {
    map_.clear();
    mapped_ = 0;
  }

  size_t extent_count() const { return map_.size(); }
  uint64_t mapped_bytes() const { return mapped_; }
  bool empty() const { return map_.empty(); }

  // In-order snapshot of all extents (checkpointing, tests).
  std::vector<Extent> Extents() const {
    std::vector<Extent> out;
    out.reserve(map_.size());
    for (const auto& [start, node] : map_) {
      out.push_back(Extent{start, node.len, node.target});
    }
    return out;
  }

 private:
  struct Node {
    uint64_t len;
    T target;
  };

  void InsertRaw(uint64_t start, uint64_t len, T target) {
    assert(len > 0);
    map_[start] = Node{len, target};
    mapped_ += len;
  }

  void InsertAndMerge(uint64_t start, uint64_t len, T target) {
    // Merge with predecessor if byte- and target-contiguous.
    auto it = map_.lower_bound(start);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len == start &&
          prev->second.target.Advanced(prev->second.len) == target) {
        start = prev->first;
        len += prev->second.len;
        target = prev->second.target;
        mapped_ -= prev->second.len;
        map_.erase(prev);
      }
    }
    // Merge with successor.
    it = map_.lower_bound(start);
    if (it != map_.end() && it->first == start + len &&
        target.Advanced(len) == it->second.target) {
      len += it->second.len;
      mapped_ -= it->second.len;
      map_.erase(it);
    }
    InsertRaw(start, len, target);
  }

  std::map<uint64_t, Node> map_;
  uint64_t mapped_ = 0;
};

}  // namespace lsvd

#endif  // SRC_LSVD_EXTENT_MAP_H_
