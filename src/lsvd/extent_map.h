// Extent map: ordered map of byte ranges [start, start+len) -> target.
//
// LSVD keeps all translation state in extent maps held purely in memory
// (paper §3.1, §6.1): the write-cache map (vLBA -> SSD pLBA), the read-cache
// map, and the object map (vLBA -> object seq/offset). Targets must describe
// how they advance when an extent is split, so a mapping for 64 KiB can be
// cut anywhere and both halves still point at the right bytes.
//
// Adjacent extents whose targets are contiguous are merged on insert; the
// resulting extent count is the memory-usage measure reported in Table 5.
//
// This header sits on the per-IO hot path of every component, so it offers
// allocation-free variants of the classic interfaces:
//  - Lookup/Update/Remove accept a caller-provided SmallVector (8 inline
//    entries — a single IO rarely spans more extents) instead of returning
//    a heap-allocated std::vector. The vector-returning forms remain for
//    cold paths and tests.
//  - A cached last-extent hint short-circuits the tree descent for the two
//    dominant access patterns, repeated hits to the same extent (4K random)
//    and sequential advance to the next one. The hint is only ever an
//    accelerator: results are identical with or without it
//    (tests/extent_map_hint_test.cc fuzzes the equivalence).
#ifndef SRC_LSVD_EXTENT_MAP_H_
#define SRC_LSVD_EXTENT_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/small_vector.h"

namespace lsvd {

// Target of a cache-map extent: a byte offset on the local SSD.
struct SsdTarget {
  uint64_t plba = 0;

  SsdTarget Advanced(uint64_t delta) const { return SsdTarget{plba + delta}; }
  friend bool operator==(const SsdTarget&, const SsdTarget&) = default;
};

// Target of an object-map extent: position within a numbered backend object.
struct ObjTarget {
  uint64_t seq = 0;      // object sequence number
  uint64_t offset = 0;   // byte offset of the data within the object

  ObjTarget Advanced(uint64_t delta) const {
    return ObjTarget{seq, offset + delta};
  }
  friend bool operator==(const ObjTarget&, const ObjTarget&) = default;
};

// A mapped extent: [start, start+len) -> target.
template <typename T>
struct MapExtent {
  uint64_t start = 0;
  uint64_t len = 0;
  T target{};

  friend bool operator==(const MapExtent&, const MapExtent&) = default;
};

// A lookup segment: when `target` is empty the range is unmapped.
template <typename T>
struct MapSegment {
  uint64_t start = 0;
  uint64_t len = 0;
  std::optional<T> target;
};

// Narrow interface every extent-map implementation satisfies. The flat
// `ExtentMap` below is the default, fully resident implementation; the
// compressed two-level `PagedExtentMap` (paged_extent_map.h) trades lookup
// cost for bounded memory on huge sparse volumes. Holders that can name the
// concrete type should (the write cache's map stays `ExtentMap` so its
// per-IO calls inline); the backend object map goes through this interface
// so `LsvdConfig::map_resident_bytes` can swap the implementation.
template <typename T>
class ExtentMapIface {
 public:
  using Extent = MapExtent<T>;
  using Segment = MapSegment<T>;
  // Allocation-free output containers for the hot-path interfaces.
  using SegmentVec = SmallVector<Segment, 8>;
  using ExtentVec = SmallVector<Extent, 8>;

  virtual ~ExtentMapIface() = default;

  // Maps [start, start+len) to `target`, replacing any overlapped mappings;
  // displaced portions are appended to `displaced` (cleared first; nullptr
  // discards them).
  virtual void Update(uint64_t start, uint64_t len, T target,
                      ExtentVec* displaced) = 0;
  // Removes mappings in [start, start+len); removed portions go to `removed`
  // (cleared first; nullptr discards them).
  virtual void Remove(uint64_t start, uint64_t len, ExtentVec* removed) = 0;
  // Splits [start, start+len) into maximal mapped/unmapped segments.
  virtual void Lookup(uint64_t start, uint64_t len, SegmentVec* out) const = 0;
  // Target covering the single byte at `addr`, if mapped.
  virtual std::optional<T> LookupOne(uint64_t addr) const = 0;
  virtual void Clear() = 0;
  virtual size_t extent_count() const = 0;
  virtual uint64_t mapped_bytes() const = 0;
  // In-order snapshot of all extents (checkpointing, tests).
  virtual std::vector<Extent> Extents() const = 0;
  // Estimated bytes of memory held by the map's structures.
  virtual uint64_t MemoryBytes() const = 0;

  // Convenience forms built on the virtuals (cold paths, tests).
  bool empty() const { return extent_count() == 0; }
  std::vector<Segment> Lookup(uint64_t start, uint64_t len) const {
    SegmentVec segs;
    Lookup(start, len, &segs);
    std::vector<Segment> out;
    out.reserve(segs.size());
    for (const auto& s : segs) {
      out.push_back(s);
    }
    return out;
  }
};

template <typename T>
class ExtentMap final : public ExtentMapIface<T> {
 public:
  using Extent = MapExtent<T>;
  using Segment = MapSegment<T>;
  using SegmentVec = SmallVector<Segment, 8>;
  using ExtentVec = SmallVector<Extent, 8>;

  ExtentMap() = default;
  // The hint iterator points into this map's nodes, so copies must not
  // inherit it; moves keep it (std::map iterators survive a move).
  ExtentMap(const ExtentMap& other)
      : map_(other.map_), mapped_(other.mapped_) {}
  ExtentMap& operator=(const ExtentMap& other) {
    map_ = other.map_;
    mapped_ = other.mapped_;
    hint_valid_ = false;
    return *this;
  }
  ExtentMap(ExtentMap&& other) noexcept
      : map_(std::move(other.map_)),
        mapped_(other.mapped_),
        hint_(other.hint_),
        hint_valid_(other.hint_valid_) {
    other.mapped_ = 0;
    other.hint_valid_ = false;
  }
  ExtentMap& operator=(ExtentMap&& other) noexcept {
    if (this != &other) {
      map_ = std::move(other.map_);
      mapped_ = other.mapped_;
      hint_ = other.hint_;
      hint_valid_ = other.hint_valid_;
      other.mapped_ = 0;
      other.hint_valid_ = false;
    }
    return *this;
  }

  // Maps [start, start+len) to `target`, replacing any overlapped mappings.
  // The (portions of) previous extents that were displaced are appended to
  // `displaced` (cleared first; pass nullptr to discard) — the garbage
  // collector uses these to decrement per-object live counts.
  void Update(uint64_t start, uint64_t len, T target,
              ExtentVec* displaced) override {
    if (displaced != nullptr) {
      displaced->clear();
      RemoveImpl(start, len,
                 [displaced](Extent e) { displaced->push_back(e); });
    } else {
      RemoveImpl(start, len, [](const Extent&) {});
    }
    if (len > 0) {
      InsertAndMerge(start, len, target);
    }
  }

  // Vector-returning form (cold paths, tests).
  std::vector<Extent> Update(uint64_t start, uint64_t len, T target) {
    std::vector<Extent> displaced;
    RemoveImpl(start, len,
               [&displaced](Extent e) { displaced.push_back(std::move(e)); });
    if (len > 0) {
      InsertAndMerge(start, len, target);
    }
    return displaced;
  }

  // Removes mappings in [start, start+len); what was removed is appended to
  // `removed` (cleared first; pass nullptr to discard).
  void Remove(uint64_t start, uint64_t len, ExtentVec* removed) override {
    if (removed != nullptr) {
      removed->clear();
      RemoveImpl(start, len, [removed](Extent e) { removed->push_back(e); });
    } else {
      RemoveImpl(start, len, [](const Extent&) {});
    }
  }

  std::vector<Extent> Remove(uint64_t start, uint64_t len) {
    std::vector<Extent> removed;
    RemoveImpl(start, len,
               [&removed](Extent e) { removed.push_back(std::move(e)); });
    return removed;
  }

  // Splits [start, start+len) into maximal segments that are each either
  // fully mapped by one extent or fully unmapped, appended to `out`
  // (cleared first).
  void Lookup(uint64_t start, uint64_t len, SegmentVec* out) const override {
    out->clear();
    LookupImpl(start, len, [out](Segment s) { out->push_back(s); });
  }

  std::vector<Segment> Lookup(uint64_t start, uint64_t len) const {
    std::vector<Segment> out;
    LookupImpl(start, len,
               [&out](Segment s) { out.push_back(std::move(s)); });
    return out;
  }

  // Target covering the single byte at `addr`, if mapped.
  std::optional<T> LookupOne(uint64_t addr) const override {
    auto it = SeekFirstEndingAfter(addr);
    if (it == map_.end() || it->first > addr) {
      return std::nullopt;
    }
    hint_ = it;
    hint_valid_ = true;
    return it->second.target.Advanced(addr - it->first);
  }

  void Clear() override {
    map_.clear();
    mapped_ = 0;
    hint_valid_ = false;
  }

  size_t extent_count() const override { return map_.size(); }
  uint64_t mapped_bytes() const override { return mapped_; }
  bool empty() const { return map_.empty(); }

  // In-order snapshot of all extents (checkpointing, tests).
  std::vector<Extent> Extents() const override {
    std::vector<Extent> out;
    out.reserve(map_.size());
    for (const auto& [start, node] : map_) {
      out.push_back(Extent{start, node.len, node.target});
    }
    return out;
  }

  // Estimated resident bytes: per-node payload plus the red-black tree's
  // three pointers + color word per node.
  uint64_t MemoryBytes() const override {
    return sizeof(*this) +
           map_.size() * (sizeof(std::pair<const uint64_t, Node>) + 32);
  }

 private:
  struct Node {
    uint64_t len;
    T target;
  };
  using Map = std::map<uint64_t, Node>;
  using Iter = typename Map::const_iterator;

  // First extent whose end is strictly after `addr` — the only extent that
  // can cover `addr`, and the first that can overlap [addr, ...). Checks
  // the cached hint (same-extent and next-extent cases) before paying for
  // a tree descent.
  Iter SeekFirstEndingAfter(uint64_t addr) const {
    if (hint_valid_) {
      const uint64_t h_start = hint_->first;
      const uint64_t h_end = h_start + hint_->second.len;
      if (addr >= h_start) {
        if (addr < h_end) {
          return hint_;  // repeated hit on the same extent
        }
        // Sequential advance: everything at or before the hint ends at or
        // before h_end <= addr, so the next extent is the first candidate —
        // provided it actually ends after addr.
        const Iter next = std::next(hint_);
        if (next == map_.end() || addr < next->first + next->second.len) {
          return next;
        }
      }
    }
    auto it = map_.lower_bound(addr);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len > addr) {
        it = prev;
      }
    }
    return it;
  }

  template <typename Emit>
  void RemoveImpl(uint64_t start, uint64_t len, Emit&& emit) {
    if (len == 0) {
      return;
    }
    const uint64_t end = start + len;

    Iter it = SeekFirstEndingAfter(start);
    while (it != map_.end() && it->first < end) {
      const uint64_t e_start = it->first;
      const uint64_t e_len = it->second.len;
      const uint64_t e_end = e_start + e_len;
      const T e_target = it->second.target;

      const uint64_t cut_start = std::max(e_start, start);
      const uint64_t cut_end = std::min(e_end, end);
      assert(cut_start < cut_end);

      emit(Extent{cut_start, cut_end - cut_start,
                  e_target.Advanced(cut_start - e_start)});
      it = EraseNode(it);
      mapped_ -= e_len;

      if (e_start < cut_start) {  // left remainder survives
        InsertRaw(e_start, cut_start - e_start, e_target);
      }
      if (cut_end < e_end) {  // right remainder survives
        InsertRaw(cut_end, e_end - cut_end,
                  e_target.Advanced(cut_end - e_start));
        break;  // nothing past e_end can overlap [start, end)
      }
    }
  }

  template <typename Emit>
  void LookupImpl(uint64_t start, uint64_t len, Emit&& emit) const {
    if (len == 0) {
      return;
    }
    const uint64_t end = start + len;
    uint64_t pos = start;

    Iter it = SeekFirstEndingAfter(start);
    Iter last_hit = map_.end();
    while (pos < end) {
      if (it == map_.end() || it->first >= end) {
        emit(Segment{pos, end - pos, std::nullopt});
        break;
      }
      const uint64_t e_start = it->first;
      const uint64_t e_end = e_start + it->second.len;
      if (e_start > pos) {
        emit(Segment{pos, e_start - pos, std::nullopt});
        pos = e_start;
      }
      const uint64_t seg_end = std::min(e_end, end);
      emit(Segment{pos, seg_end - pos,
                   it->second.target.Advanced(pos - e_start)});
      pos = seg_end;
      last_hit = it;
      ++it;
    }
    if (last_hit != map_.end()) {
      // Remember the last extent touched: a sequential follow-up lookup
      // resumes from here in O(1).
      hint_ = last_hit;
      hint_valid_ = true;
    }
  }

  // All erases funnel through here so the hint can never dangle.
  Iter EraseNode(Iter it) {
    if (hint_valid_ && hint_ == it) {
      hint_valid_ = false;
    }
    return map_.erase(it);
  }

  void InsertRaw(uint64_t start, uint64_t len, T target) {
    assert(len > 0);
    const auto [it, inserted] =
        map_.insert_or_assign(start, Node{len, target});
    assert(inserted);
    (void)inserted;
    mapped_ += len;
    hint_ = it;
    hint_valid_ = true;
  }

  void InsertAndMerge(uint64_t start, uint64_t len, T target) {
    // RemoveImpl just cleared [start, start+len), so no extent overlaps the
    // range and the first extent ending after `start` is exactly
    // lower_bound(start).
    Iter it = SeekFirstEndingAfter(start);
    // Merge with predecessor if byte- and target-contiguous.
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len == start &&
          prev->second.target.Advanced(prev->second.len) == target) {
        start = prev->first;
        len += prev->second.len;
        target = prev->second.target;
        mapped_ -= prev->second.len;
        it = EraseNode(prev);
      }
    }
    // Merge with successor.
    if (it != map_.end() && it->first == start + len &&
        target.Advanced(len) == it->second.target) {
      len += it->second.len;
      mapped_ -= it->second.len;
      EraseNode(it);
    }
    InsertRaw(start, len, target);
  }

  Map map_;
  uint64_t mapped_ = 0;
  // Last-extent cache; `hint_` is only dereferenced when `hint_valid_`.
  mutable Iter hint_;
  mutable bool hint_valid_ = false;
};

}  // namespace lsvd

#endif  // SRC_LSVD_EXTENT_MAP_H_
