#include "src/lsvd/extent_map.h"

namespace lsvd {

// Explicit instantiations for the targets LSVD uses, to surface template
// errors at library build time.
template class ExtentMap<SsdTarget>;
template class ExtentMap<ObjTarget>;

}  // namespace lsvd
