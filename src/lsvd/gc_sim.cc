#include "src/lsvd/gc_sim.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lsvd {

void GcSimulator::Write(uint64_t vlba, uint64_t len) {
  assert(len > 0);
  result_.client_bytes += len;
  batch_raw_ += len;
  if (config_.merge) {
    ExtentMap<ObjTarget>::ExtentVec displaced;
    batch_.Update(vlba, len, ObjTarget{next_seq_, 0}, &displaced);
    for (const auto& d : displaced) {
      result_.merged_bytes += d.len;
    }
  } else {
    batch_list_.push_back({vlba, len});
  }
  if (batch_raw_ >= config_.batch_bytes) {
    SealBatch();
  }
}

void GcSimulator::Displace(const ExtentMap<ObjTarget>::ExtentVec& displaced,
                           uint64_t self_seq) {
  for (const auto& d : displaced) {
    auto it = info_.find(d.target.seq);
    if (it != info_.end()) {
      const uint64_t dec = std::min(it->second.live_bytes, d.len);
      it->second.live_bytes -= dec;
      live_sum_ -= dec;
      uint64_t& sl = shard_live_[ShardOf(d.target.seq)];
      sl -= std::min(sl, dec);
    } else if (d.target.seq == self_seq) {
      // Overwrite within the object being applied (no-merge mode): the
      // earlier extent's bytes die immediately.
      live_sum_ -= std::min(live_sum_, d.len);
      uint64_t& sl = shard_live_[ShardOf(self_seq)];
      sl -= std::min(sl, d.len);
      self_dead_ += d.len;
    }
  }
}

void GcSimulator::SealBatch() {
  if (batch_raw_ == 0) {
    return;
  }
  const uint64_t seq = next_seq_++;

  // Extents to write, in apply order, with contiguous object offsets
  // assigned in that order (so vlba-contiguous runs merge in the map).
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  uint64_t object_total = 0;
  if (config_.merge) {
    for (const auto& e : batch_.Extents()) {
      extents.push_back({e.start, e.len});
      object_total += e.len;
    }
    batch_.Clear();
  } else {
    extents = std::move(batch_list_);
    batch_list_.clear();
    for (const auto& [vlba, len] : extents) {
      object_total += len;
    }
  }
  batch_raw_ = 0;

  result_.backend_bytes += object_total;
  result_.objects_created++;
  total_sum_ += object_total;
  live_sum_ += object_total;
  shard_total_[ShardOf(seq)] += object_total;
  shard_live_[ShardOf(seq)] += object_total;
  self_dead_ = 0;

  uint64_t offset = 0;
  ExtentMap<ObjTarget>::ExtentVec displaced;
  std::vector<std::pair<uint64_t, uint64_t>>& created = creation_[seq];
  for (const auto& [vlba, len] : extents) {
    map_.Update(vlba, len, ObjTarget{seq, offset}, &displaced);
    Displace(displaced, seq);
    created.push_back({vlba, len});
    offset += len;
  }
  info_[seq] = ObjectInfo{object_total, object_total - self_dead_};
  MaybeGc();
}

double GcSimulator::Utilization() const {
  if (total_sum_ == 0) {
    return 1.0;
  }
  return static_cast<double>(live_sum_) / static_cast<double>(total_sum_);
}

double GcSimulator::ShardUtilization(size_t shard) const {
  if (shard_total_[shard] == 0) {
    return 1.0;
  }
  return static_cast<double>(shard_live_[shard]) /
         static_cast<double>(shard_total_[shard]);
}

uint64_t GcSimulator::PickVictim(size_t shard, double ceiling) const {
  // Greedy: least-utilized object (within `shard`, unless SIZE_MAX).
  uint64_t victim = 0;
  double best = ceiling;
  for (const auto& [seq, inf] : info_) {
    if (inf.total_bytes == 0) {
      continue;
    }
    if (shard != SIZE_MAX && ShardOf(seq) != shard) {
      continue;
    }
    const double r = static_cast<double>(inf.live_bytes) /
                     static_cast<double>(inf.total_bytes);
    if (r < best) {
      best = r;
      victim = seq;
    }
  }
  return victim;
}

void GcSimulator::MaybeGc() {
  if (config_.shards <= 1) {
    while (Utilization() < config_.gc_low_watermark) {
      const uint64_t victim = PickVictim(SIZE_MAX, config_.gc_high_watermark);
      if (victim == 0) {
        break;
      }
      CleanOne(victim);
      if (Utilization() >= config_.gc_high_watermark) {
        break;
      }
    }
    return;
  }
  // Sharded: each shard's occupancy is a separate pool (its own disks in the
  // real deployment), so each collects independently against the watermarks.
  for (size_t s = 0; s < static_cast<size_t>(config_.shards); s++) {
    while (ShardUtilization(s) < config_.gc_low_watermark) {
      const uint64_t victim = PickVictim(s, config_.gc_high_watermark);
      if (victim == 0) {
        break;
      }
      CleanOne(victim);
      if (ShardUtilization(s) >= config_.gc_high_watermark) {
        break;
      }
    }
  }
}

void GcSimulator::CleanOne(uint64_t victim) {
  // Live pieces: creation extents whose map entry still points at victim.
  struct Piece {
    uint64_t vlba;
    uint64_t len;
    bool plug;  // defrag filler copied from another object
  };
  std::vector<Piece> pieces;
  ExtentMap<ObjTarget>::SegmentVec segs;
  auto cit = creation_.find(victim);
  if (cit != creation_.end()) {
    uint64_t offset = 0;
    for (const auto& [vlba, len] : cit->second) {
      map_.Lookup(vlba, len, &segs);
      for (const auto& seg : segs) {
        // The offset check distinguishes duplicate creation extents (no-merge
        // mode can write the same vLBA twice into one object): only the copy
        // the map actually references is live.
        if (seg.target.has_value() && seg.target->seq == victim &&
            seg.target->offset == offset + (seg.start - vlba)) {
          pieces.push_back({seg.start, seg.len, false});
        }
      }
      offset += len;
    }
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.vlba < b.vlba; });

  if (config_.defrag && !pieces.empty()) {
    // Plug mapped holes of <= defrag_hole_max between consecutive pieces so
    // the copied run becomes one contiguous map extent.
    std::vector<Piece> plugged;
    plugged.push_back(pieces[0]);
    for (size_t i = 1; i < pieces.size(); i++) {
      const uint64_t prev_end = plugged.back().vlba + plugged.back().len;
      const uint64_t gap =
          pieces[i].vlba > prev_end ? pieces[i].vlba - prev_end : 0;
      if (gap > 0 && gap <= config_.defrag_hole_max) {
        // Only plug if the whole gap is currently mapped (reads exist).
        bool mapped = true;
        map_.Lookup(prev_end, gap, &segs);
        for (const auto& seg : segs) {
          if (!seg.target.has_value()) {
            mapped = false;
            break;
          }
        }
        if (mapped) {
          plugged.push_back({prev_end, gap, true});
        }
      }
      plugged.push_back(pieces[i]);
    }
    pieces = std::move(plugged);
  }

  uint64_t copied = 0;
  for (const auto& p : pieces) {
    copied += p.len;
  }

  if (copied > 0) {
    const uint64_t seq = next_seq_++;
    result_.backend_bytes += copied;
    result_.gc_copied_bytes += copied;
    result_.objects_created++;
    total_sum_ += copied;
    live_sum_ += copied;
    shard_total_[ShardOf(seq)] += copied;
    shard_live_[ShardOf(seq)] += copied;
    uint64_t offset = 0;
    ExtentMap<ObjTarget>::ExtentVec displaced;
    std::vector<std::pair<uint64_t, uint64_t>>& created = creation_[seq];
    for (const auto& p : pieces) {
      map_.Update(p.vlba, p.len, ObjTarget{seq, offset}, &displaced);
      Displace(displaced, seq);
      created.push_back({p.vlba, p.len});
      offset += p.len;
    }
    info_[seq] = ObjectInfo{copied, copied};
  }

  // Victim is gone.
  auto it = info_.find(victim);
  if (it != info_.end()) {
    total_sum_ -= it->second.total_bytes;
    live_sum_ -= std::min(live_sum_, it->second.live_bytes);
    uint64_t& st = shard_total_[ShardOf(victim)];
    uint64_t& sl = shard_live_[ShardOf(victim)];
    st -= std::min(st, it->second.total_bytes);
    sl -= std::min(sl, it->second.live_bytes);
    info_.erase(it);
  }
  creation_.erase(victim);
  result_.objects_deleted++;
}

GcSimResult GcSimulator::Finish() {
  SealBatch();
  result_.extent_count = map_.extent_count();
  return result_;
}

}  // namespace lsvd
