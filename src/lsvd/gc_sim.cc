#include "src/lsvd/gc_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace lsvd {

void GcSimulator::Write(uint64_t vlba, uint64_t len) {
  assert(len > 0);
  result_.client_bytes += len;
  batch_raw_ += len;
  if (config_.merge) {
    ExtentMap<ObjTarget>::ExtentVec displaced;
    batch_.Update(vlba, len, ObjTarget{next_seq_, 0}, &displaced);
    for (const auto& d : displaced) {
      result_.merged_bytes += d.len;
    }
  } else {
    batch_list_.push_back({vlba, len});
  }
  if (batch_raw_ >= config_.batch_bytes) {
    SealBatch();
  }
}

void GcSimulator::Trim(uint64_t vlba, uint64_t len) {
  assert(len > 0);
  // Seal-first, like BackendStore::AddTrim: writes accepted before the trim
  // land in an earlier object, then the punch applies strictly after them.
  SealBatch();
  result_.trimmed_bytes += len;
  ExtentMap<ObjTarget>::ExtentVec displaced;
  map_.Remove(vlba, len, &displaced);
  Displace(displaced, /*self_seq=*/0);
  MaybeGc();
}

void GcSimulator::Displace(const ExtentMap<ObjTarget>::ExtentVec& displaced,
                           uint64_t self_seq) {
  for (const auto& d : displaced) {
    auto it = info_.find(d.target.seq);
    if (it != info_.end()) {
      const uint64_t dec = std::min(it->second.live_bytes, d.len);
      it->second.live_bytes -= dec;
      live_sum_ -= dec;
      uint64_t& sl = shard_live_[ShardOf(d.target.seq)];
      sl -= std::min(sl, dec);
      if (config_.zone_bytes > 0) {
        auto m = meta_.find(d.target.seq);
        if (m != meta_.end() && m->second.zone != 0) {
          auto z = zones_.find(m->second.zone);
          if (z != zones_.end()) {
            z->second.live -= std::min(z->second.live, dec);
          }
        }
      }
    } else if (d.target.seq == self_seq) {
      // Overwrite within the object being applied (no-merge mode): the
      // earlier extent's bytes die immediately.
      live_sum_ -= std::min(live_sum_, d.len);
      uint64_t& sl = shard_live_[ShardOf(self_seq)];
      sl -= std::min(sl, d.len);
      self_dead_ += d.len;
    }
  }
}

void GcSimulator::SealBatch() {
  if (batch_raw_ == 0) {
    return;
  }
  const uint64_t seq = next_seq_++;

  // Extents to write, in apply order, with contiguous object offsets
  // assigned in that order (so vlba-contiguous runs merge in the map).
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  uint64_t object_total = 0;
  if (config_.merge) {
    for (const auto& e : batch_.Extents()) {
      extents.push_back({e.start, e.len});
      object_total += e.len;
    }
    batch_.Clear();
  } else {
    extents = std::move(batch_list_);
    batch_list_.clear();
    for (const auto& [vlba, len] : extents) {
      object_total += len;
    }
  }
  batch_raw_ = 0;

  result_.backend_bytes += object_total;
  result_.objects_created++;
  total_sum_ += object_total;
  live_sum_ += object_total;
  shard_total_[ShardOf(seq)] += object_total;
  shard_live_[ShardOf(seq)] += object_total;
  self_dead_ = 0;

  uint64_t offset = 0;
  ExtentMap<ObjTarget>::ExtentVec displaced;
  std::vector<std::pair<uint64_t, uint64_t>>& created = creation_[seq];
  for (const auto& [vlba, len] : extents) {
    map_.Update(vlba, len, ObjTarget{seq, offset}, &displaced);
    Displace(displaced, seq);
    created.push_back({vlba, len});
    offset += len;
  }
  info_[seq] = ObjectInfo{object_total, object_total - self_dead_};
  meta_[seq] = ObjMeta{result_.client_bytes, 0, 0};
  if (config_.zone_bytes > 0) {
    AssignZone(seq, object_total, object_total - self_dead_, /*cold=*/false);
  }
  MaybeGc();
}

double GcSimulator::Utilization() const {
  if (total_sum_ == 0) {
    return 1.0;
  }
  return static_cast<double>(live_sum_) / static_cast<double>(total_sum_);
}

double GcSimulator::ShardUtilization(size_t shard) const {
  if (shard_total_[shard] == 0) {
    return 1.0;
  }
  return static_cast<double>(shard_live_[shard]) /
         static_cast<double>(shard_total_[shard]);
}

double GcSimulator::AgeOf(const ObjMeta& meta) const {
  // Logical clock: client batches written since the object sealed.
  const uint64_t elapsed = result_.client_bytes - meta.seal_clock;
  return static_cast<double>(elapsed) /
         static_cast<double>(config_.batch_bytes);
}

uint64_t GcSimulator::PickVictim(size_t shard, double ceiling) const {
  const GcPolicy& policy = *policies_[shard == SIZE_MAX ? 0 : shard];
  uint64_t victim = 0;
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& [seq, inf] : info_) {
    if (inf.total_bytes == 0 || seq == cold_seq_) {
      continue;
    }
    if (shard != SIZE_MAX && ShardOf(seq) != shard) {
      continue;
    }
    GcCandidate c;
    c.seq = seq;
    c.total_bytes = inf.total_bytes;
    c.live_bytes = inf.live_bytes;
    if (c.utilization() >= ceiling) {
      continue;
    }
    auto m = meta_.find(seq);
    if (m != meta_.end()) {
      c.generation = m->second.generation;
    }
    // Every candidate ages on the object-sequence clock (objects created
    // since this one was sealed): coherent units across client data and GC
    // output, and for generation-tagged output the same crash-stable clock
    // the backend store uses (see GcCandidate::age).
    c.age = static_cast<double>(next_seq_ - seq);
    const double s = policy.Score(c);
    if (s > best) {
      best = s;
      victim = seq;
    }
  }
  return victim;
}

void GcSimulator::MaybeGc() {
  if (config_.zone_bytes > 0) {
    // Zoned backend: free space only comes back a whole zone at a time, so
    // utilization is live bytes over zone capacity and the cleaner
    // relocates and resets entire zones.
    while (ZonedUtilization() < config_.gc_low_watermark) {
      const uint64_t zid = PickZoneVictim(config_.gc_high_watermark);
      if (zid == 0) {
        break;
      }
      CleanZone(zid);
      if (ZonedUtilization() >= config_.gc_high_watermark) {
        break;
      }
    }
    return;
  }
  if (config_.shards <= 1) {
    while (Utilization() < config_.gc_low_watermark) {
      const uint64_t victim = PickVictim(SIZE_MAX, config_.gc_high_watermark);
      if (victim == 0) {
        break;
      }
      CleanOne(victim);
      if (Utilization() >= config_.gc_high_watermark) {
        break;
      }
    }
    return;
  }
  // Sharded: each shard's occupancy is a separate pool (its own disks in the
  // real deployment), so each collects independently against the watermarks.
  for (size_t s = 0; s < static_cast<size_t>(config_.shards); s++) {
    while (ShardUtilization(s) < config_.gc_low_watermark) {
      const uint64_t victim = PickVictim(s, config_.gc_high_watermark);
      if (victim == 0) {
        break;
      }
      CleanOne(victim);
      if (ShardUtilization(s) >= config_.gc_high_watermark) {
        break;
      }
    }
  }
}

std::vector<GcSimulator::Piece> GcSimulator::CollectLivePieces(
    uint64_t victim) const {
  // Live pieces: creation extents whose map entry still points at victim.
  std::vector<Piece> pieces;
  ExtentMap<ObjTarget>::SegmentVec segs;
  auto cit = creation_.find(victim);
  if (cit != creation_.end()) {
    uint64_t offset = 0;
    for (const auto& [vlba, len] : cit->second) {
      map_.Lookup(vlba, len, &segs);
      for (const auto& seg : segs) {
        // The offset check distinguishes duplicate creation extents (no-merge
        // mode can write the same vLBA twice into one object): only the copy
        // the map actually references is live.
        if (seg.target.has_value() && seg.target->seq == victim &&
            seg.target->offset == offset + (seg.start - vlba)) {
          pieces.push_back({seg.start, seg.len, false});
        }
      }
      offset += len;
    }
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.vlba < b.vlba; });

  if (config_.defrag && !pieces.empty()) {
    // Plug mapped holes of <= defrag_hole_max between consecutive pieces so
    // the copied run becomes one contiguous map extent.
    std::vector<Piece> plugged;
    plugged.push_back(pieces[0]);
    for (size_t i = 1; i < pieces.size(); i++) {
      const uint64_t prev_end = plugged.back().vlba + plugged.back().len;
      const uint64_t gap =
          pieces[i].vlba > prev_end ? pieces[i].vlba - prev_end : 0;
      if (gap > 0 && gap <= config_.defrag_hole_max) {
        // Only plug if the whole gap is currently mapped (reads exist).
        bool mapped = true;
        map_.Lookup(prev_end, gap, &segs);
        for (const auto& seg : segs) {
          if (!seg.target.has_value()) {
            mapped = false;
            break;
          }
        }
        if (mapped) {
          plugged.push_back({prev_end, gap, true});
        }
      }
      plugged.push_back(pieces[i]);
    }
    pieces = std::move(plugged);
  }
  return pieces;
}

void GcSimulator::AppendCold(const std::vector<Piece>& pieces,
                             uint32_t generation) {
  ExtentMap<ObjTarget>::ExtentVec displaced;
  for (const auto& p : pieces) {
    if (cold_seq_ == 0) {
      cold_seq_ = next_seq_++;
      cold_bytes_ = 0;
      cold_offset_ = 0;
      result_.objects_created++;
      info_[cold_seq_] = ObjectInfo{0, 0};
      meta_[cold_seq_] = ObjMeta{result_.client_bytes, generation, 0};
      if (config_.zone_bytes > 0) {
        AssignZone(cold_seq_, 0, 0, /*cold=*/true);
      }
    }
    ObjMeta& meta = meta_[cold_seq_];
    meta.generation = std::max(meta.generation, generation);
    meta.seal_clock = result_.client_bytes;
    map_.Update(p.vlba, p.len, ObjTarget{cold_seq_, cold_offset_}, &displaced);
    Displace(displaced, cold_seq_);
    creation_[cold_seq_].push_back({p.vlba, p.len});
    ObjectInfo& inf = info_[cold_seq_];
    inf.total_bytes += p.len;
    inf.live_bytes += p.len;
    result_.backend_bytes += p.len;
    result_.gc_copied_bytes += p.len;
    total_sum_ += p.len;
    live_sum_ += p.len;
    shard_total_[ShardOf(cold_seq_)] += p.len;
    shard_live_[ShardOf(cold_seq_)] += p.len;
    if (config_.zone_bytes > 0) {
      Zone& z = zones_[meta.zone];
      z.total += p.len;
      z.live += p.len;
      z.youngest_seal = result_.client_bytes;
    }
    cold_offset_ += p.len;
    cold_bytes_ += p.len;
    if (cold_bytes_ >= config_.batch_bytes) {
      // Seal the cold object; close its zone too if the zone is full.
      if (config_.zone_bytes > 0) {
        const uint64_t zid = meta.zone;
        if (zones_[zid].total >= config_.zone_bytes &&
            open_cold_zone_ == zid) {
          open_cold_zone_ = 0;
        }
      }
      cold_seq_ = 0;
    }
  }
}

void GcSimulator::EraseObject(uint64_t victim) {
  auto it = info_.find(victim);
  if (it != info_.end()) {
    total_sum_ -= it->second.total_bytes;
    live_sum_ -= std::min(live_sum_, it->second.live_bytes);
    uint64_t& st = shard_total_[ShardOf(victim)];
    uint64_t& sl = shard_live_[ShardOf(victim)];
    st -= std::min(st, it->second.total_bytes);
    sl -= std::min(sl, it->second.live_bytes);
    auto m = meta_.find(victim);
    if (m != meta_.end() && m->second.zone != 0) {
      auto z = zones_.find(m->second.zone);
      if (z != zones_.end()) {
        z->second.total -= std::min(z->second.total, it->second.total_bytes);
        z->second.live -= std::min(z->second.live, it->second.live_bytes);
      }
    }
    info_.erase(it);
  }
  creation_.erase(victim);
  meta_.erase(victim);
  result_.objects_deleted++;
}

void GcSimulator::CleanOne(uint64_t victim) {
  const std::vector<Piece> pieces = CollectLivePieces(victim);
  uint64_t copied = 0;
  for (const auto& p : pieces) {
    copied += p.len;
  }

  uint32_t generation = 1;
  auto m = meta_.find(victim);
  if (m != meta_.end()) {
    generation = m->second.generation + 1;
  }

  if (copied > 0) {
    if (config_.segregate_cold || config_.zone_bytes > 0) {
      AppendCold(pieces, generation);
    } else {
      const uint64_t seq = next_seq_++;
      result_.backend_bytes += copied;
      result_.gc_copied_bytes += copied;
      result_.objects_created++;
      total_sum_ += copied;
      live_sum_ += copied;
      shard_total_[ShardOf(seq)] += copied;
      shard_live_[ShardOf(seq)] += copied;
      uint64_t offset = 0;
      ExtentMap<ObjTarget>::ExtentVec displaced;
      std::vector<std::pair<uint64_t, uint64_t>>& created = creation_[seq];
      for (const auto& p : pieces) {
        map_.Update(p.vlba, p.len, ObjTarget{seq, offset}, &displaced);
        Displace(displaced, seq);
        created.push_back({p.vlba, p.len});
        offset += p.len;
      }
      info_[seq] = ObjectInfo{copied, copied};
      meta_[seq] = ObjMeta{result_.client_bytes, generation, 0};
    }
  }

  // Victim is gone.
  EraseObject(victim);
}

void GcSimulator::AssignZone(uint64_t seq, uint64_t total, uint64_t live,
                             bool cold) {
  uint64_t& open = cold ? open_cold_zone_ : open_hot_zone_;
  if (open == 0) {
    open = next_zone_++;
    zones_[open].cold = cold;
  }
  Zone& z = zones_[open];
  z.total += total;
  z.live += live;
  z.youngest_seal = result_.client_bytes;
  z.objects.push_back(seq);
  meta_[seq].zone = open;
  if (z.total >= config_.zone_bytes) {
    open = 0;  // zone full: closed, eligible for cleaning
  }
}

double GcSimulator::ZonedUtilization() const {
  if (zones_.empty()) {
    return 1.0;
  }
  const double capacity = static_cast<double>(zones_.size()) *
                          static_cast<double>(config_.zone_bytes);
  return static_cast<double>(live_sum_) / capacity;
}

uint64_t GcSimulator::PickZoneVictim(double ceiling) const {
  const GcPolicy& policy = *policies_[0];
  uint64_t victim = 0;
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& [zid, zone] : zones_) {
    // Only closed zones can be reset.
    if (zid == open_hot_zone_ || zid == open_cold_zone_ || zone.total == 0) {
      continue;
    }
    GcCandidate c;
    c.seq = zid;
    c.total_bytes = zone.total;
    c.live_bytes = zone.live;
    if (c.utilization() >= ceiling) {
      continue;
    }
    c.age = AgeOf(ObjMeta{zone.youngest_seal, 0, 0});
    c.generation = zone.cold ? 1 : 0;
    const double s = policy.Score(c);
    if (s > best) {
      best = s;
      victim = zid;
    }
  }
  return victim;
}

void GcSimulator::CleanZone(uint64_t zid) {
  // Relocating into the cold stream can open a new cold zone, but never this
  // one (it is closed); iterate over a copy of the member list.
  const std::vector<uint64_t> members = zones_[zid].objects;
  for (const uint64_t seq : members) {
    if (info_.find(seq) == info_.end()) {
      continue;
    }
    const std::vector<Piece> pieces = CollectLivePieces(seq);
    uint32_t generation = 1;
    auto m = meta_.find(seq);
    if (m != meta_.end()) {
      generation = m->second.generation + 1;
    }
    if (!pieces.empty()) {
      AppendCold(pieces, generation);
    }
    EraseObject(seq);
  }
  zones_.erase(zid);
  result_.zones_reset++;
}

GcSimResult GcSimulator::Finish() {
  SealBatch();
  result_.extent_count = map_.extent_count();
  return result_;
}

}  // namespace lsvd
