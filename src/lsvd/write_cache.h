// Log-structured write-back cache (paper §3.1, Figure 2).
//
// Incoming writes are appended to a circular on-SSD log as journal records
// (4 KiB header + data); the in-memory extent map (vLBA -> device offset) is
// updated when the SSD acknowledges the record. Because the log is written
// sequentially, small random client writes become large sequential device
// writes, and a commit barrier is a single device flush — no metadata
// write-out (the mechanism behind the paper's §4.2.2 varmail result).
//
// Region layout:
//   [base, base+4K)            superblock
//   [.., +2 checkpoint slots)  alternating map checkpoints
//   [log_base, base+size)      circular record log
//
// Eviction is FIFO and gated on backend progress: a record may only be
// released once every backend batch it contributed to has committed
// (ReleaseThrough). When the log fills, appends stall — this is the
// writeback-bound regime of the paper's Figures 9-11.
#ifndef SRC_LSVD_WRITE_CACHE_H_
#define SRC_LSVD_WRITE_CACHE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/lsvd/client_host.h"
#include "src/lsvd/config.h"
#include "src/lsvd/extent_map.h"
#include "src/lsvd/journal.h"
#include "src/util/metrics.h"

namespace lsvd {

// View over the write cache's registry counters (see docs/METRICS.md,
// "lsvd.write_cache.*").
struct WriteCacheStats {
  uint64_t appends = 0;
  uint64_t appended_bytes = 0;
  uint64_t records = 0;
  uint64_t record_bytes = 0;  // headers + data
  uint64_t stalled_appends = 0;
  uint64_t checkpoints = 0;
  uint64_t evicted_records = 0;
};

class WriteCache {
 public:
  // Metadata for a live (not yet evicted) record, kept in memory and in map
  // checkpoints; used for eviction and post-crash replay to the backend.
  struct RecordMeta {
    uint64_t seq = 0;
    uint64_t offset = 0;     // device offset of the header block
    uint64_t total_len = 0;  // header + data bytes
    uint64_t footprint = 0;  // total_len + any wrap gap preceding it
    uint64_t max_batch_seq = 0;
    bool is_trim = false;    // trim tombstone record (extents, no data)
    std::vector<JournalExtent> extents;
    // In-memory only (never checkpointed): append time, for the
    // append-to-releasable lifecycle histogram. -1 for recovered records
    // (whose true append time is unknown).
    Nanos appended_at = -1;
  };

  // `metrics`/`prefix` name this cache's counters in a shared registry; a
  // null registry gives the cache a private one (standalone tests, the
  // recovery probe). A non-zero `volume_limit` (virtual-disk size in bytes)
  // makes log replay reject journal extents past the end of the volume.
  WriteCache(ClientHost* host, uint64_t base, uint64_t size,
             const StageCosts& costs, MetricsRegistry* metrics = nullptr,
             const std::string& prefix = "lsvd.write_cache",
             uint64_t volume_limit = 0);

  // Initializes an empty cache (superblock + blank checkpoint) on SSD.
  void Format(std::function<void(Status)> done);

  // Appends one client write. `batch_seq` is the backend batch the write was
  // assigned to. `done` fires when the containing record is on the SSD —
  // this is the client's write acknowledgement point.
  void Append(uint64_t vlba, Buffer data, uint64_t batch_seq,
              std::function<void(Status)> done);

  // Journals a TRIM of [vlba, vlba+len) as a tombstone record (no payload).
  // When the record lands, the cache map entries for the range are punched
  // out and the range is tracked in trim_map() until backend batch
  // `batch_seq` commits, so reads in the window return zeros instead of
  // stale read-cache/backend data. `done` fires at record durability — the
  // client's discard acknowledgement point.
  void AppendTrim(uint64_t vlba, uint64_t len, uint64_t batch_seq,
                  std::function<void(Status)> done);

  // --- adaptive batching / group commit (DESIGN.md §12) ---
  // Enables the gated tail-latency behaviors. `plug_deadline` bounds how
  // long a lone small write may sit "plugged" waiting for company before its
  // journal record is force-started (0 = wait indefinitely, the historical
  // behavior); `flush_coalescing` makes concurrent Barrier() calls share SSD
  // flushes (group commit); `fast_path` skips the plug wait entirely while
  // the record pipeline is nearly idle. Registers the ".deadline_seals" and
  // ".journal.coalesced_flushes" counters, so call only on adaptive configs
  // to keep default metric dumps unchanged.
  void EnableAdaptiveBatching(Nanos plug_deadline, bool flush_coalescing,
                              bool fast_path);

  // --- write-heat tracking (docs/GC.md hot/cold segregation) ---
  // Enables per-region overwrite-heat tracking: every append adds 1 to the
  // heat of each 1 MiB region it touches, and heat halves every `halflife`.
  // Off (zero cost on the append path) until enabled.
  void EnableHeatTracking(Nanos halflife) { heat_halflife_ = halflife; }
  // Decayed heat of the region containing `vlba`; 0.0 when tracking is off
  // or the region was never written. The backend store compares this against
  // LsvdConfig::gc_heat_threshold to route writes to hot vs cold batches.
  double WriteHeat(uint64_t vlba) const;

  // Commit barrier: flush the SSD (§3.2).
  void Barrier(std::function<void(Status)> done);

  // Cache-map lookup structures for the read path.
  const ExtentMap<SsdTarget>& map() const { return map_; }
  // Trimmed ranges whose object-map punch has not yet committed to the
  // backend (target.seq is the punching batch). The read path must return
  // zeros for these instead of consulting the read cache or backend.
  const ExtentMap<ObjTarget>& trim_map() const { return trim_map_; }
  // Reads cached data by device offset (target of a map lookup).
  void ReadData(uint64_t plba, uint64_t len,
                std::function<void(Result<Buffer>)> done);

  // Marks records whose writes are all contained in backend objects with
  // seq <= `synced_batch_seq` as *releasable*. Eviction itself is lazy and
  // FIFO: releasable records are only dropped when the log needs space for
  // new appends, so cached data stays readable as long as possible (§3.1 —
  // the log's natural FIFO eviction).
  void ReleaseThrough(uint64_t synced_batch_seq);

  // True when every record's data is contained in committed backend objects
  // (the cache and backend are synchronized; safe to migrate).
  bool fully_synced() const {
    return records_.empty() ||
           records_.back().max_batch_seq <= release_watermark_;
  }

  // Evicts every releasable record immediately (e.g. handing the cache
  // device to another volume after migration). Normal operation relies on
  // the lazy FIFO eviction instead.
  void EvictReleasable();

  // Charges the prototype's kernel/user SSD pass-through read (§4.7): the
  // userspace daemon reads `bytes` of outgoing batch data back from the log.
  void ChargeReadback(uint64_t bytes, std::function<void()> done);

  // Writes a map checkpoint (alternating slots) and flushes.
  void WriteCheckpoint(uint64_t backend_synced_seq,
                       std::function<void(Status)> done);

  // Rebuilds state from SSD: superblock, newest valid checkpoint, then log
  // replay up to the first invalid/out-of-sequence record.
  void Recover(std::function<void(Status)> done);

  // Records whose data may be missing from the backend (max_batch_seq >
  // synced_seq), in log order; used for the rewind-and-replay step (§3.3).
  std::vector<RecordMeta> RecordsAfterBatch(uint64_t synced_seq) const;
  // Reads a record's payload directly from its log position (valid even if
  // the map has since been overwritten) and returns per-extent buffers.
  void ReadRecordPayload(const RecordMeta& rec,
                         std::function<void(Result<Buffer>)> done);

  // Invalidates all pending callbacks (crash simulation); the object must
  // still be kept alive until the simulator drains.
  void Kill() { *alive_ = false; }

  uint64_t free_bytes() const { return log_size_ - used_; }
  uint64_t log_size() const { return log_size_; }
  uint64_t used_bytes() const { return used_; }
  uint64_t backend_synced_hint() const { return recovered_synced_; }
  WriteCacheStats stats() const;
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Pending {
    uint64_t vlba;
    Buffer data;
    uint64_t batch_seq;
    std::function<void(Status)> done;
    bool is_trim = false;
    uint64_t trim_len = 0;  // trims carry no data, so length lives here
  };

  void MaybeStartRecord();
  bool StartOneRecord();
  void ApplyCompletedRecords();
  // Adaptive batching (EnableAdaptiveBatching): plug-deadline timer and the
  // coalesced barrier-flush pump.
  void ArmPlugTimer();
  void PlugTimerFire();
  void StartBarrierFlush();
  // Evicts releasable records (FIFO) until at least `needed` bytes are free
  // or nothing more can be evicted.
  void EvictForSpace(uint64_t needed);
  Buffer EncodeCheckpointBlob(uint64_t backend_synced_seq) const;
  Status LoadCheckpointBlob(const Buffer& blob, uint64_t* ckpt_gen);

  // Log-replay state machine (see Recover).
  struct ReplayState {
    uint64_t pos = 0;          // next header position to try
    uint64_t expected_seq = 0; // sequence number the next record must carry
    bool wrapped = false;      // currently probing the wrap position
    uint64_t fail_pos = 0;     // pre-wrap position (head if wrap probe fails)
    uint64_t pending_gap = 0;  // wrap gap to charge to the next record
    std::function<void(Status)> done;
  };
  void ReplayStep(std::shared_ptr<ReplayState> st);
  void ReplayMiss(const std::shared_ptr<ReplayState>& st);
  void ReplayAccept(const std::shared_ptr<ReplayState>& st,
                    JournalRecord rec, uint64_t data_len);

  ClientHost* host_;
  SimSsd* ssd_;
  StageCosts costs_;
  // Dedicated journal-writer worker (the device-mapper kernel thread): the
  // per-record wakeup does not queue behind per-write submission work.
  ServerQueue record_cpu_;

  uint64_t base_;
  uint64_t size_;
  uint64_t slot_size_;
  uint64_t log_base_;
  uint64_t log_size_;
  uint64_t volume_limit_;

  ExtentMap<SsdTarget> map_;
  // Trim tombstones not yet committed to the backend; empty on volumes that
  // never trim. Rebuilt from the live records during recovery.
  ExtentMap<ObjTarget> trim_map_;
  std::deque<RecordMeta> records_;
  std::deque<Pending> pending_;
  // Multiple journal records may be in flight on the SSD concurrently
  // (pipelining); map updates and acknowledgements are applied strictly in
  // sequence order so later records always win.
  struct InFlightRecord {
    std::vector<Pending> writes;
    bool write_done = false;
    Status status;
  };
  std::map<uint64_t, InFlightRecord> in_flight_;
  uint64_t next_apply_seq_ = 1;
  uint64_t release_watermark_ = 0;  // highest backend-synced batch seen
  uint64_t head_;           // absolute append offset
  uint64_t used_ = 0;       // log bytes occupied (incl. wrap gaps)

  // Adaptive batching (all inert until EnableAdaptiveBatching).
  Nanos plug_deadline_ = 0;         // 0 = plugged writes wait indefinitely
  bool flush_coalescing_ = false;
  bool fast_path_ = false;
  bool plug_timer_armed_ = false;
  bool flush_in_flight_ = false;    // coalescing path only
  std::vector<std::function<void(Status)>> pending_barriers_;

  // Write-heat tracking (EnableHeatTracking): decayed append count per 1 MiB
  // region, keyed by vlba >> 20. Empty while disabled.
  struct HeatCell {
    double value = 0.0;
    Nanos updated = 0;
  };
  Nanos heat_halflife_ = 0;  // 0 = tracking off
  std::map<uint64_t, HeatCell> heat_;
  uint64_t next_seq_ = 1;
  uint64_t ckpt_gen_ = 0;   // checkpoint generation (picks newest slot)
  uint64_t recovered_synced_ = 0;
  uint64_t readback_head_ = 0;  // cursor for pass-through readback charging
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Metrics. `owned_metrics_` backs standalone instances; all counters live
  // in *metrics_ under `prefix`.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::string prefix_;  // metric-name root, kept for lazy registration
  Counter* c_appends_;
  Counter* c_appended_bytes_;
  Counter* c_records_;
  Counter* c_record_bytes_;
  Counter* c_stalled_appends_;
  Counter* c_checkpoints_;
  Counter* c_evicted_records_;
  // Registered lazily by EnableAdaptiveBatching (null on default configs so
  // metric dumps stay unchanged).
  Counter* c_deadline_seals_ = nullptr;
  Counter* c_coalesced_flushes_ = nullptr;
  // Registered lazily on the first AppendTrim (trim-free volumes keep their
  // metric dumps unchanged).
  Counter* c_trim_records_ = nullptr;
  // Journal append -> record releasable (backend batches committed): the
  // tail of the write lifecycle trace.
  Histogram* h_append_to_free_us_;
  // Records at the front of records_ whose append_to_free latency has been
  // recorded (timed records form a prefix, like eviction).
  size_t release_timed_count_ = 0;
  // Last member: destroyed first, so gauge callbacks never outlive the state
  // they read (the shared host registry outlives detached volumes).
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_WRITE_CACHE_H_
