#include "src/lsvd/object_format.h"

#include <cassert>
#include <cstdio>

#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "src/util/units.h"

namespace lsvd {
namespace {

constexpr uint32_t kDataMagic = 0x4C53564F;   // "LSVO"
constexpr uint32_t kCkptMagic = 0x4C53564B;   // "LSVK"
constexpr uint32_t kFormatVersion = 1;
// Data-object format v2 adds the GC generation after the extent count; v1 is
// still written whenever the generation is 0, so stores without the extended
// GC features stay byte-identical to older builds.
constexpr uint32_t kDataVersionGen = 2;
// Data-object format v3 adds a per-extent flag word (bit 0 = trim tombstone)
// and always carries the generation field. Only written when the object
// actually contains a trim extent, so trim-free stores keep the v1/v2 bytes.
constexpr uint32_t kDataVersionTrim = 3;
constexpr uint32_t kExtentFlagTrim = 1u << 0;
// Checkpoint format v2 appends the backend shard count and the per-shard
// consistency vector. Unsharded checkpoints keep writing v1 so their encoding
// stays byte-identical to older builds.
constexpr uint32_t kCkptVersionSharded = 2;
// v3 = the v2 layout (shard fields always present, 0 when unsharded) plus a
// GC-generation table. Written only when at least one object carries a
// non-zero generation — possible only under gc_extended() — so default
// volumes keep emitting v1/v2 checkpoints byte for byte.
constexpr uint32_t kCkptVersionGenerations = 3;
constexpr uint64_t kHeaderAlign = 4 * kKiB;

std::string FormatSeq(uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::optional<uint64_t> ParseSeqSuffix(const std::string& prefix,
                                       const std::string& name) {
  if (name.size() != prefix.size() + 12 ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = prefix.size(); i < name.size(); i++) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

std::string DataObjectPrefix(const std::string& volume) {
  return volume + ".d.";
}

std::string CheckpointPrefix(const std::string& volume) {
  return volume + ".c.";
}

std::string DataObjectName(const std::string& volume, uint64_t seq) {
  return DataObjectPrefix(volume) + FormatSeq(seq);
}

std::string CheckpointObjectName(const std::string& volume, uint64_t seq) {
  return CheckpointPrefix(volume) + FormatSeq(seq);
}

std::optional<uint64_t> ParseDataObjectSeq(const std::string& volume,
                                           const std::string& name) {
  return ParseSeqSuffix(DataObjectPrefix(volume), name);
}

std::optional<uint64_t> ParseCheckpointSeq(const std::string& volume,
                                           const std::string& name) {
  return ParseSeqSuffix(CheckpointPrefix(volume), name);
}

uint64_t DataObjectHeaderSize(size_t extent_count, bool with_generation,
                              bool with_trim) {
  // Fixed fields: magic, version, seq, data_offset, extent count,
  // [generation in v2/v3], crc. v3 extents carry an extra flag word.
  const uint64_t raw = 4 + 4 + 8 + 8 + 4 +
                       ((with_generation || with_trim) ? 4 : 0) + 4 +
                       (with_trim ? 36 : 32) * extent_count;
  return (raw + kHeaderAlign - 1) / kHeaderAlign * kHeaderAlign;
}

uint64_t DataObjectPayloadBytes(const DataObjectHeader& header) {
  uint64_t sum = 0;
  for (const auto& e : header.extents) {
    if (!e.is_trim) {
      sum += e.len;
    }
  }
  return sum;
}

Buffer EncodeDataObject(const DataObjectHeader& header, const Buffer& data) {
  bool has_trim = false;
  for (const auto& e : header.extents) {
    has_trim |= e.is_trim;
  }
  const bool v2 = header.generation != 0 || has_trim;
  Encoder enc;
  enc.PutU32(kDataMagic);
  enc.PutU32(has_trim ? kDataVersionTrim
                      : (v2 ? kDataVersionGen : kFormatVersion));
  enc.PutU64(header.seq);
  const uint64_t data_offset =
      DataObjectHeaderSize(header.extents.size(), v2, has_trim);
  enc.PutU64(data_offset);
  enc.PutU32(static_cast<uint32_t>(header.extents.size()));
  if (v2) {
    enc.PutU32(header.generation);
  }
  const size_t crc_pos = enc.size();
  enc.PutU32(0);
  uint64_t sum = 0;
  for (const auto& e : header.extents) {
    enc.PutU64(e.vlba);
    enc.PutU64(e.len);
    enc.PutU64(e.expected_seq);
    enc.PutU64(e.expected_offset);
    if (has_trim) {
      enc.PutU32(e.is_trim ? kExtentFlagTrim : 0);
    }
    if (!e.is_trim) {
      sum += e.len;
    }
  }
  assert(sum == data.size());
  enc.PadTo(kHeaderAlign);
  assert(enc.size() == data_offset);

  std::vector<uint8_t> bytes = enc.Take();
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; i++) {
    bytes[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  Buffer out;
  out.AppendBytes(bytes);
  out.Append(data);
  return out;
}

Status DecodeDataObjectHeader(const Buffer& object_prefix,
                              DataObjectHeader* header) {
  if (object_prefix.size() < kHeaderAlign) {
    return Status::Corruption("object too small for header");
  }
  // Parse the fixed fields from the first block, then extend if the extent
  // list spills past it.
  std::vector<uint8_t> bytes =
      object_prefix.Slice(0, std::min(object_prefix.size(),
                                      uint64_t{256} * kKiB))
          .ToBytes();
  Decoder dec(bytes);
  if (dec.GetU32() != kDataMagic) {
    return Status::Corruption("bad data object magic");
  }
  const uint32_t version = dec.GetU32();
  if (version != kFormatVersion && version != kDataVersionGen &&
      version != kDataVersionTrim) {
    return Status::Corruption("unsupported object version");
  }
  const bool with_trim = version == kDataVersionTrim;
  header->seq = dec.GetU64();
  header->data_offset = dec.GetU64();
  const uint32_t extent_count = dec.GetU32();
  header->generation = version >= kDataVersionGen ? dec.GetU32() : 0;
  const size_t crc_pos = dec.position();
  const uint32_t header_crc = dec.GetU32();
  if (header->data_offset !=
      DataObjectHeaderSize(extent_count, version >= kDataVersionGen,
                           with_trim)) {
    return Status::Corruption("data offset inconsistent with extent count");
  }
  if (bytes.size() < header->data_offset) {
    return Status::Corruption("header truncated");
  }

  header->extents.clear();
  for (uint32_t i = 0; i < extent_count; i++) {
    ObjectExtent e;
    e.vlba = dec.GetU64();
    e.len = dec.GetU64();
    e.expected_seq = dec.GetU64();
    e.expected_offset = dec.GetU64();
    if (with_trim) {
      e.is_trim = (dec.GetU32() & kExtentFlagTrim) != 0;
    }
    if (!dec.ok() || e.len == 0) {
      return Status::Corruption("object extent malformed");
    }
    if (e.is_trim && e.conditional()) {
      return Status::Corruption("trim extent cannot be conditional");
    }
    header->extents.push_back(e);
  }

  // CRC over the padded header with the CRC field zeroed.
  std::vector<uint8_t> check(bytes.begin(),
                             bytes.begin() +
                                 static_cast<ptrdiff_t>(header->data_offset));
  for (int i = 0; i < 4; i++) {
    check[crc_pos + static_cast<size_t>(i)] = 0;
  }
  if (Crc32c(check.data(), check.size()) != header_crc) {
    return Status::Corruption("object header CRC mismatch");
  }
  return Status::Ok();
}

size_t ShardForSeq(uint64_t seq, size_t shard_count) {
  if (shard_count <= 1 || seq == 0) {
    return 0;
  }
  return static_cast<size_t>((seq - 1) % shard_count);
}

std::vector<uint64_t> ConsistencyVector(uint64_t through, size_t shard_count) {
  if (shard_count <= 1) {
    return {through};
  }
  std::vector<uint64_t> vec(shard_count, 0);
  for (size_t i = 0; i < shard_count; i++) {
    if (through == 0) {
      continue;
    }
    // Largest s in [1, through] with (s - 1) % shard_count == i.
    const uint64_t last_slot = (through - 1) % shard_count;
    const uint64_t back =
        last_slot >= i ? last_slot - i : last_slot + shard_count - i;
    if (back < through) {
      vec[i] = through - back;
    }
  }
  return vec;
}

Buffer EncodeCheckpoint(const CheckpointState& state) {
  const bool sharded = state.shard_count > 1;
  const bool with_generations = !state.generations.empty();
  Encoder enc;
  enc.PutU32(kCkptMagic);
  enc.PutU32(with_generations
                 ? kCkptVersionGenerations
                 : (sharded ? kCkptVersionSharded : kFormatVersion));
  enc.PutU64(state.through_seq);
  enc.PutU64(state.next_seq);
  enc.PutU32(static_cast<uint32_t>(state.object_map.size()));
  enc.PutU32(static_cast<uint32_t>(state.object_info.size()));
  enc.PutU32(static_cast<uint32_t>(state.deferred_deletes.size()));
  enc.PutU32(static_cast<uint32_t>(state.snapshots.size()));
  if (sharded || with_generations) {
    enc.PutU32(state.shard_count);
    enc.PutU32(static_cast<uint32_t>(state.shard_consistent.size()));
  }
  if (with_generations) {
    enc.PutU32(static_cast<uint32_t>(state.generations.size()));
  }
  const size_t crc_pos = enc.size();
  enc.PutU32(0);
  for (const auto& e : state.object_map) {
    enc.PutU64(e.start);
    enc.PutU64(e.len);
    enc.PutU64(e.target.seq);
    enc.PutU64(e.target.offset);
  }
  for (const auto& [seq, info] : state.object_info) {
    enc.PutU64(seq);
    enc.PutU64(info.total_bytes);
    enc.PutU64(info.live_bytes);
  }
  for (const auto& d : state.deferred_deletes) {
    enc.PutU64(d.seq);
    enc.PutU64(d.gc_head);
  }
  for (const uint64_t s : state.snapshots) {
    enc.PutU64(s);
  }
  if (sharded || with_generations) {
    for (const uint64_t s : state.shard_consistent) {
      enc.PutU64(s);
    }
  }
  if (with_generations) {
    for (const auto& [seq, gen] : state.generations) {
      enc.PutU64(seq);
      enc.PutU32(gen);
    }
  }

  std::vector<uint8_t> bytes = enc.Take();
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; i++) {
    bytes[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  return Buffer::FromBytes(bytes);
}

Status DecodeCheckpoint(const Buffer& object, CheckpointState* state) {
  std::vector<uint8_t> bytes = object.ToBytes();
  Decoder dec(bytes);
  if (dec.GetU32() != kCkptMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  const uint32_t version = dec.GetU32();
  if (version != kFormatVersion && version != kCkptVersionSharded &&
      version != kCkptVersionGenerations) {
    return Status::Corruption("unsupported checkpoint version");
  }
  state->through_seq = dec.GetU64();
  state->next_seq = dec.GetU64();
  const uint32_t map_count = dec.GetU32();
  const uint32_t info_count = dec.GetU32();
  const uint32_t defer_count = dec.GetU32();
  const uint32_t snap_count = dec.GetU32();
  uint32_t shard_count = 0;
  uint32_t vec_count = 0;
  if (version >= kCkptVersionSharded) {
    shard_count = dec.GetU32();
    vec_count = dec.GetU32();
  }
  uint32_t gen_count = 0;
  if (version >= kCkptVersionGenerations) {
    gen_count = dec.GetU32();
  }
  const size_t crc_pos = dec.position();
  const uint32_t crc = dec.GetU32();

  std::vector<uint8_t> check = bytes;
  for (int i = 0; i < 4; i++) {
    check[crc_pos + static_cast<size_t>(i)] = 0;
  }
  if (Crc32c(check.data(), check.size()) != crc) {
    return Status::Corruption("checkpoint CRC mismatch");
  }

  state->object_map.clear();
  state->object_info.clear();
  state->deferred_deletes.clear();
  state->snapshots.clear();
  state->generations.clear();
  state->shard_count = shard_count;
  state->shard_consistent.clear();
  for (uint32_t i = 0; i < map_count; i++) {
    ExtentMap<ObjTarget>::Extent e;
    e.start = dec.GetU64();
    e.len = dec.GetU64();
    e.target.seq = dec.GetU64();
    e.target.offset = dec.GetU64();
    state->object_map.push_back(e);
  }
  for (uint32_t i = 0; i < info_count; i++) {
    const uint64_t seq = dec.GetU64();
    ObjectInfo info;
    info.total_bytes = dec.GetU64();
    info.live_bytes = dec.GetU64();
    state->object_info[seq] = info;
  }
  for (uint32_t i = 0; i < defer_count; i++) {
    DeferredDelete d;
    d.seq = dec.GetU64();
    d.gc_head = dec.GetU64();
    state->deferred_deletes.push_back(d);
  }
  for (uint32_t i = 0; i < snap_count; i++) {
    state->snapshots.push_back(dec.GetU64());
  }
  for (uint32_t i = 0; i < vec_count; i++) {
    state->shard_consistent.push_back(dec.GetU64());
  }
  for (uint32_t i = 0; i < gen_count; i++) {
    const uint64_t seq = dec.GetU64();
    state->generations[seq] = dec.GetU32();
  }
  if (!dec.ok()) {
    return Status::Corruption("checkpoint truncated");
  }
  if (shard_count > 1 && state->shard_consistent.size() != shard_count) {
    return Status::Corruption("consistency vector size != shard count");
  }
  return Status::Ok();
}

}  // namespace lsvd
