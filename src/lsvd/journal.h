// On-SSD write-cache journal record codec (paper Figure 2).
//
// A record is a 4 KiB header block followed by the data blocks it describes:
//
//   header: magic | seq | batch_seq | extent count | data CRC | header CRC
//           | extents[(vLBA, len), ...]
//
// The sequence number and CRCs ensure that only complete records are used in
// recovery: replay expects exactly the next sequence number and stops at the
// first mismatch or corrupt header (§3.3). `batch_seq` records which backend
// object the contained writes were assigned to, enabling the post-crash
// "rewind and replay to backend" step.
#ifndef SRC_LSVD_JOURNAL_H_
#define SRC_LSVD_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/util/buffer.h"
#include "src/util/status.h"

namespace lsvd {

struct JournalExtent {
  uint64_t vlba = 0;  // byte address in the virtual disk
  uint64_t len = 0;   // bytes (multiple of kBlockSize)
};

struct JournalRecord {
  uint64_t seq = 0;        // journal-local sequence number
  uint64_t batch_seq = 0;  // backend object this data was batched into
  bool is_trim = false;    // TRIM tombstone record: extents only, no payload
  std::vector<JournalExtent> extents;
  Buffer data;             // concatenated extent payloads (empty for trims)
  uint32_t data_crc = 0;   // payload CRC (filled by DecodeJournalHeader)
};

// Maximum extents that fit in the 4 KiB header.
inline constexpr size_t kMaxJournalExtents = 250;

// Serializes header (padded to kBlockSize) + data. data.size() must equal the
// extent length sum and be block-aligned. Trim records carry a distinct magic
// ("LSVT"), describe the discarded ranges in their extents, and have no
// payload — the record is exactly one header block.
Buffer EncodeJournalRecord(const JournalRecord& record);

// Bytes of header + payload a record with these extents occupies in the log.
uint64_t JournalRecordSize(const JournalRecord& record);

// Parses and validates the header block. On success fills `record` (without
// data) and sets `data_len` to the payload size following the header.
// Returns Corruption for bad magic/CRC, which recovery treats as log end.
// When `volume_limit` is non-zero, extents reaching past that many bytes of
// virtual disk are rejected as corruption, so a damaged header that passes
// its CRC by chance can never replay an out-of-range write; the extent
// length sum is always guarded against uint64_t overflow.
Status DecodeJournalHeader(const Buffer& header_block, JournalRecord* record,
                           uint64_t* data_len, uint64_t volume_limit = 0);

// Validates the payload CRC recorded in the header against `data`.
Status VerifyJournalData(const JournalRecord& record, const Buffer& data);

}  // namespace lsvd

#endif  // SRC_LSVD_JOURNAL_H_
