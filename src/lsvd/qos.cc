#include "src/lsvd/qos.h"

#include <algorithm>
#include <utility>

namespace lsvd {

QosScheduler::QosScheduler(Simulator* sim, uint64_t shared_iops,
                           uint64_t shared_bytes_per_sec,
                           double burst_seconds)
    : sim_(sim),
      shared_iops_(static_cast<double>(shared_iops),
                   static_cast<double>(shared_iops) * burst_seconds),
      shared_bandwidth_(static_cast<double>(shared_bytes_per_sec),
                        static_cast<double>(shared_bytes_per_sec) *
                            burst_seconds) {}

int QosScheduler::RegisterVolume(const std::string& name, QosLimits limits,
                                 MetricsRegistry* metrics,
                                 const std::string& prefix) {
  const int id = next_id_++;
  Volume v;
  v.name = name;
  v.limits = limits;
  v.iops = TokenBucket(static_cast<double>(limits.iops),
                       static_cast<double>(limits.iops) *
                           limits.burst_seconds);
  v.bandwidth = TokenBucket(static_cast<double>(limits.bytes_per_sec),
                            static_cast<double>(limits.bytes_per_sec) *
                                limits.burst_seconds);
  if (metrics != nullptr) {
    v.c_admitted = metrics->GetCounter(prefix + ".qos.admitted");
    v.c_throttled = metrics->GetCounter(prefix + ".qos.throttled");
    v.h_wait_us = metrics->GetHistogram(prefix + ".qos.wait_us");
  }
  volumes_.emplace(id, std::move(v));
  return id;
}

void QosScheduler::UnregisterVolume(int id) { volumes_.erase(id); }

size_t QosScheduler::queued() const {
  size_t n = 0;
  for (const auto& [id, v] : volumes_) {
    n += v.queue.size();
  }
  return n;
}

// One op needs 1 IOPS token and `bytes` bandwidth tokens from the volume's
// own buckets, plus the same from the shared pool when it is a fair-share
// participant. All-or-nothing: tokens are taken only when every bucket has
// enough, so a large op cannot starve by losing partial claims.
bool QosScheduler::TryTake(Volume* v, uint64_t bytes) {
  const Nanos now = sim_->now();
  const double b = static_cast<double>(bytes);
  if (!v->iops.Has(1.0, now) || !v->bandwidth.Has(b, now)) {
    return false;
  }
  if (v->limits.fair_share &&
      (!shared_iops_.Has(1.0, now) || !shared_bandwidth_.Has(b, now))) {
    return false;
  }
  v->iops.Take(1.0);
  v->bandwidth.Take(b);
  if (v->limits.fair_share) {
    shared_iops_.Take(1.0);
    shared_bandwidth_.Take(b);
  }
  return true;
}

Nanos QosScheduler::AdmitEta(Volume* v, uint64_t bytes) {
  const Nanos now = sim_->now();
  const double b = static_cast<double>(bytes);
  Nanos eta = std::max(v->iops.Eta(1.0, now), v->bandwidth.Eta(b, now));
  if (v->limits.fair_share) {
    eta = std::max(eta, shared_iops_.Eta(1.0, now));
    eta = std::max(eta, shared_bandwidth_.Eta(b, now));
  }
  return eta;
}

void QosScheduler::Admit(int id, uint64_t bytes, std::function<void()> fn) {
  auto it = volumes_.find(id);
  if (it == volumes_.end()) {
    return;  // detached volume: drop, like a killed component's callbacks
  }
  Volume& v = it->second;
  if (v.limits.unlimited()) {
    fn();
    return;
  }
  if (v.queue.empty() && TryTake(&v, bytes)) {
    if (v.c_admitted != nullptr) {
      v.c_admitted->Inc();
    }
    fn();
    return;
  }
  total_throttled_++;
  if (v.c_throttled != nullptr) {
    v.c_throttled->Inc();
  }
  v.queue.push_back(PendingOp{bytes, sim_->now(), std::move(fn)});
  Pump();
}

// Drains queues round-robin by volume id: each pass admits at most one op
// per volume, so a deep queue on one tenant cannot monopolize a refill.
// When nothing is admittable, arms one timer at the earliest ETA among the
// queue heads.
void QosScheduler::Pump() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [id, v] : volumes_) {
      if (v.queue.empty() || !TryTake(&v, v.queue.front().bytes)) {
        continue;
      }
      PendingOp op = std::move(v.queue.front());
      v.queue.pop_front();
      if (v.c_admitted != nullptr) {
        v.c_admitted->Inc();
      }
      RecordLatencyUs(v.h_wait_us, sim_->now() - op.enqueued_at);
      progressed = true;
      op.fn();
    }
  }
  Nanos min_eta = -1;
  for (auto& [id, v] : volumes_) {
    if (v.queue.empty()) {
      continue;
    }
    const Nanos eta = AdmitEta(&v, v.queue.front().bytes);
    if (min_eta < 0 || eta < min_eta) {
      min_eta = eta;
    }
  }
  if (min_eta >= 0) {
    ArmTimer(std::max<Nanos>(min_eta, 1));
  }
}

void QosScheduler::ArmTimer(Nanos delay) {
  // Re-arming invalidates any earlier pending timer via the epoch; only the
  // newest armed timer pumps, so queued ops cannot be double-admitted.
  const uint64_t epoch = ++timer_epoch_;
  auto alive = alive_;
  sim_->After(delay, [this, alive, epoch]() {
    if (!*alive || epoch != timer_epoch_) {
      return;
    }
    Pump();
  });
}

}  // namespace lsvd
