// Backend object formats and naming (paper Figures 3-4, §3.3).
//
// Data objects:  "<volume>.d.<seq>" — a 4 KiB-aligned header listing the
// virtual-disk extents contained, followed by the batched write data. The
// header lets the in-memory object map be rebuilt by replaying objects in
// sequence order, and lets the garbage collector find an object's
// at-creation extent list without reading its data.
//
// Checkpoint objects: "<volume>.c.<seq>" — a serialized snapshot of the
// object map, the GC object-info table, deferred deletes and snapshots,
// valid through data object <seq>. Recovery loads the newest checkpoint and
// replays data objects with seq greater than it.
#ifndef SRC_LSVD_OBJECT_FORMAT_H_
#define SRC_LSVD_OBJECT_FORMAT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/lsvd/extent_map.h"
#include "src/util/buffer.h"
#include "src/util/status.h"

namespace lsvd {

struct ObjectExtent {
  uint64_t vlba = 0;
  uint64_t len = 0;
  // Garbage-collected extents are applied to the object map *conditionally*:
  // only where the map still points at `expected` (the location the data was
  // copied from). This keeps a concurrent newer write from being clobbered,
  // both live and during recovery replay. Client-write extents have no
  // expectation (expected_seq == 0) and apply unconditionally.
  uint64_t expected_seq = 0;
  uint64_t expected_offset = 0;
  // TRIM tombstone: the extent punches [vlba, vlba+len) out of the object map
  // instead of mapping it, and contributes no payload bytes. Encoded as
  // format v3 (per-extent flag word); objects without trims keep v1/v2.
  bool is_trim = false;

  bool conditional() const { return expected_seq != 0; }
};

struct DataObjectHeader {
  uint64_t seq = 0;
  // Byte offset where data begins (header size, 4 KiB aligned).
  uint64_t data_offset = 0;
  // GC generation (docs/GC.md): 0 for fresh client data, 1 + max victim
  // generation for GC-copied data. Non-zero generations are encoded as
  // format v2; generation 0 keeps the v1 encoding so stores that never set
  // it stay byte-identical to older builds (same gating as checkpoint v2).
  uint32_t generation = 0;
  std::vector<ObjectExtent> extents;
};

// --- naming ---
std::string DataObjectName(const std::string& volume, uint64_t seq);
std::string CheckpointObjectName(const std::string& volume, uint64_t seq);
std::string DataObjectPrefix(const std::string& volume);
std::string CheckpointPrefix(const std::string& volume);
// Parses the sequence number out of a data/checkpoint object name for the
// given volume; nullopt if the name does not match.
std::optional<uint64_t> ParseDataObjectSeq(const std::string& volume,
                                           const std::string& name);
std::optional<uint64_t> ParseCheckpointSeq(const std::string& volume,
                                           const std::string& name);

// --- data objects ---
// Serializes header + data. Header is padded to a 4 KiB boundary.
Buffer EncodeDataObject(const DataObjectHeader& header, const Buffer& data);
// Parses and CRC-checks a header from the first bytes of an object.
Status DecodeDataObjectHeader(const Buffer& object_prefix,
                              DataObjectHeader* header);
// Size in bytes the encoded header will occupy for this many extents.
// `with_generation` selects the v2 layout (4 extra bytes before padding);
// `with_trim` selects the v3 layout (generation plus a per-extent flag word).
uint64_t DataObjectHeaderSize(size_t extent_count,
                              bool with_generation = false,
                              bool with_trim = false);
// Sum of the data-bearing (non-trim) extent lengths: the payload size an
// encoded object with this header must carry after data_offset.
uint64_t DataObjectPayloadBytes(const DataObjectHeader& header);

// --- checkpoint objects ---
struct ObjectInfo {
  uint64_t total_bytes = 0;  // data payload bytes at creation
  uint64_t live_bytes = 0;   // still-referenced payload bytes
};

struct DeferredDelete {
  uint64_t seq = 0;     // object that was garbage collected (N0)
  uint64_t gc_head = 0; // newest object seq at collection time (Ngc)
};

struct CheckpointState {
  uint64_t through_seq = 0;  // map reflects data objects <= this seq
  uint64_t next_seq = 0;     // next object sequence number to allocate
  std::vector<ExtentMap<ObjTarget>::Extent> object_map;
  std::map<uint64_t, ObjectInfo> object_info;
  std::vector<DeferredDelete> deferred_deletes;
  std::vector<uint64_t> snapshots;  // object seqs pinned by snapshots
  // --- sharded backends only (checkpoint format v2) ---
  // Number of backend shards the volume's object stream is striped across
  // (0 or 1 means unsharded; encoded as format v1 with no vector).
  uint32_t shard_count = 0;
  // Consistency vector: per shard, the highest sequence number on that shard
  // that is part of the globally contiguous prefix 1..through_seq. Entry i
  // covers shard i. Recovery uses it to validate that every shard's stream
  // reaches the checkpoint before trusting the map (DESIGN.md §9).
  std::vector<uint64_t> shard_consistent;
  // --- extended GC only (checkpoint format v3) ---
  // Non-zero GC generations by object seq. Objects at or below through_seq
  // are recovered from the checkpoint alone (their headers are never
  // re-read), so generation-aware victim scoring needs the tags here;
  // omitted (and the checkpoint stays v1/v2) when no object is tagged,
  // which keeps default volumes byte-identical.
  std::map<uint64_t, uint32_t> generations;
};

Buffer EncodeCheckpoint(const CheckpointState& state);
Status DecodeCheckpoint(const Buffer& object, CheckpointState* state);

// --- sharding helpers ---
// Round-robin stripe placement: data object `seq` (1-based) lives on shard
// (seq - 1) % shard_count. Checkpoints always live on shard 0.
size_t ShardForSeq(uint64_t seq, size_t shard_count);
// The consistency vector implied by a contiguous global prefix 1..through:
// entry i is the highest seq s <= through with ShardForSeq(s) == i (0 when
// the prefix has no object on that shard yet).
std::vector<uint64_t> ConsistencyVector(uint64_t through, size_t shard_count);

}  // namespace lsvd

#endif  // SRC_LSVD_OBJECT_FORMAT_H_
