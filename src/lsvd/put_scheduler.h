// Host-wide round-robin scheduler for backend PUT slots.
//
// Every BackendStore on a host previously pumped sealed batches into the
// object store independently, bounded only by its per-shard put_window — a
// log-heavy tenant could keep the shared uplink saturated and starve the
// other volumes' writeback. With a host window configured
// (ClientHostConfig::host_put_window > 0), each store must acquire a slot
// per outstanding data-object PUT; when slots run out, stores wait and freed
// slots are granted round-robin across waiting stores, so writeback
// bandwidth interleaves fairly regardless of queue depths. Window 0 keeps
// the legacy independent-pump behavior.
//
// Sharded volumes (DESIGN.md §9) still register ONE client here: the host
// window bounds the volume's aggregate PUT concurrency across all of its
// backend shards, while LsvdConfig::put_window bounds each individual
// shard's window. With N shards a volume can thus have up to
// min(host grant, N * put_window) data PUTs in flight.
#ifndef SRC_LSVD_PUT_SCHEDULER_H_
#define SRC_LSVD_PUT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/sim/simulator.h"

namespace lsvd {

class PutScheduler {
 public:
  // window = max outstanding PUTs across the whole host; 0 = unlimited.
  PutScheduler(Simulator* sim, int window) : sim_(sim), window_(window) {}
  ~PutScheduler() { *alive_ = false; }

  PutScheduler(const PutScheduler&) = delete;
  PutScheduler& operator=(const PutScheduler&) = delete;

  // Registers a store; `pump` is invoked (via the simulator, never
  // reentrantly) when a slot becomes available after a failed TryAcquire.
  int Register(std::function<void()> pump) {
    const int id = next_id_++;
    clients_[id].pump = std::move(pump);
    return id;
  }

  // Releases any slots the client still holds (its completions will never
  // fire) and forgets it.
  void Unregister(int id) {
    auto it = clients_.find(id);
    if (it == clients_.end()) {
      return;
    }
    const int held = it->second.held;
    clients_.erase(it);
    for (int i = 0; i < held; i++) {
      held_--;
      GrantNext();
    }
  }

  // Takes one slot; on false the client is remembered as waiting and its
  // pump runs once a slot frees up.
  bool TryAcquire(int id) {
    auto it = clients_.find(id);
    if (it == clients_.end()) {
      return false;
    }
    if (window_ <= 0) {
      return true;
    }
    if (held_ >= window_) {
      it->second.waiting = true;
      return false;
    }
    held_++;
    it->second.held++;
    return true;
  }

  void Release(int id) {
    auto it = clients_.find(id);
    if (it == clients_.end() || window_ <= 0) {
      return;
    }
    if (it->second.held > 0) {
      it->second.held--;
      held_--;
    }
    GrantNext();
  }

  int window() const { return window_; }
  int held() const { return held_; }
  int waiting() const {
    int n = 0;
    for (const auto& [id, c] : clients_) {
      n += c.waiting ? 1 : 0;
    }
    return n;
  }

 private:
  struct Client {
    std::function<void()> pump;
    int held = 0;
    bool waiting = false;
  };

  // Wakes the next waiting client after `grant_cursor_` (round-robin), via
  // the simulator to avoid re-entering a store from its own completion.
  void GrantNext() {
    if (window_ <= 0 || held_ >= window_ || clients_.empty()) {
      return;
    }
    auto it = clients_.upper_bound(grant_cursor_);
    for (size_t i = 0; i < clients_.size(); i++) {
      if (it == clients_.end()) {
        it = clients_.begin();
      }
      if (it->second.waiting) {
        it->second.waiting = false;
        grant_cursor_ = it->first;
        auto alive = alive_;
        auto pump = it->second.pump;
        sim_->After(0, [alive, pump = std::move(pump)]() {
          if (!*alive) {
            return;
          }
          pump();
        });
        return;
      }
      ++it;
    }
  }

  Simulator* sim_;
  int window_;
  int held_ = 0;
  int next_id_ = 0;
  int grant_cursor_ = -1;
  std::map<int, Client> clients_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace lsvd

#endif  // SRC_LSVD_PUT_SCHEDULER_H_
