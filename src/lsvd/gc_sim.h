// Trace-driven simulator of LSVD's write batching and garbage collection
// (paper §4.6, Table 5).
//
// Runs at extent granularity with no data and no I/O timing, so week-long
// block traces simulate in seconds. Reports the three measures of Table 5:
//   - write amplification (backend bytes / client bytes),
//   - merge ratio (bytes eliminated by within-batch coalescing),
//   - final extent-map size (memory usage / fragmentation).
// Ablations: `merge` toggles within-batch coalescing, `defrag` toggles the
// modified collector that performs extra reads to plug holes of <= 8 KiB in
// copied data, merging map entries (the w01 result in the paper).
#ifndef SRC_LSVD_GC_SIM_H_
#define SRC_LSVD_GC_SIM_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/lsvd/extent_map.h"
#include "src/lsvd/object_format.h"
#include "src/util/metrics.h"
#include "src/util/units.h"

namespace lsvd {

struct GcSimConfig {
  uint64_t batch_bytes = 32 * kMiB;  // paper's simulations use 32 MiB
  double gc_low_watermark = 0.70;
  double gc_high_watermark = 0.75;
  bool merge = true;    // within-batch write coalescing
  bool defrag = false;  // plug small holes during GC copies
  uint64_t defrag_hole_max = 8 * kKiB;
  // Backend shards (DESIGN.md §9): objects stripe round-robin by seq and
  // each shard is collected independently against the watermarks. 1 = the
  // classic single-stream collector (bit-identical behavior).
  int shards = 1;
};

struct GcSimResult {
  uint64_t client_bytes = 0;   // total bytes written by the trace
  uint64_t backend_bytes = 0;  // bytes written to backend (incl. GC copies)
  uint64_t merged_bytes = 0;   // bytes eliminated by coalescing
  uint64_t gc_copied_bytes = 0;
  uint64_t objects_created = 0;
  uint64_t objects_deleted = 0;
  size_t extent_count = 0;     // final object-map size

  // Write amplification: backend bytes over the client bytes that actually
  // needed to reach the backend (i.e. net of within-batch coalescing, which
  // is a *reduction* accounted separately by merge_ratio; this matches how
  // Table 5's merge-mode WAF stays above 1 even at high merge ratios).
  double waf() const {
    const uint64_t net = client_bytes - merged_bytes;
    return net == 0 ? 0.0
                    : static_cast<double>(backend_bytes) /
                          static_cast<double>(net);
  }
  double merge_ratio() const {
    return client_bytes == 0
               ? 0.0
               : static_cast<double>(merged_bytes) /
                     static_cast<double>(client_bytes);
  }
};

class GcSimulator {
 public:
  // If `metrics` is given, live progress ("gcsim.*" callback gauges over the
  // running totals) registers there; the trace loop can snapshot mid-run.
  explicit GcSimulator(GcSimConfig config, MetricsRegistry* metrics = nullptr)
      : config_(config),
        shard_live_(config.shards > 1 ? config.shards : 1, 0),
        shard_total_(config.shards > 1 ? config.shards : 1, 0) {
    if (metrics != nullptr) {
      metrics->RegisterCallback("gcsim.client_bytes", [this] {
        return static_cast<double>(result_.client_bytes);
      });
      metrics->RegisterCallback("gcsim.backend_bytes", [this] {
        return static_cast<double>(result_.backend_bytes);
      });
      metrics->RegisterCallback("gcsim.merged_bytes", [this] {
        return static_cast<double>(result_.merged_bytes);
      });
      metrics->RegisterCallback("gcsim.gc_copied_bytes", [this] {
        return static_cast<double>(result_.gc_copied_bytes);
      });
      metrics->RegisterCallback("gcsim.objects_created", [this] {
        return static_cast<double>(result_.objects_created);
      });
      metrics->RegisterCallback("gcsim.objects_deleted", [this] {
        return static_cast<double>(result_.objects_deleted);
      });
      metrics->RegisterCallback("gcsim.waf", [this] { return result_.waf(); });
      metrics->RegisterCallback("gcsim.utilization",
                                [this] { return Utilization(); });
      metrics->RegisterCallback("gcsim.extent_count", [this] {
        return static_cast<double>(map_.extent_count());
      });
    }
  }

  // One client write of `len` bytes at `vlba` (byte units, any alignment).
  void Write(uint64_t vlba, uint64_t len);

  // Seals the open batch and runs a final GC pass if needed.
  GcSimResult Finish();

  const ExtentMap<ObjTarget>& object_map() const { return map_; }

 private:
  void SealBatch();
  void MaybeGc();
  void CleanOne(uint64_t victim);
  void Displace(const ExtentMap<ObjTarget>::ExtentVec& displaced,
                uint64_t self_seq);
  double Utilization() const;
  // Shard routing and per-shard occupancy (no-ops folded into the global
  // sums when config_.shards <= 1).
  size_t ShardOf(uint64_t seq) const {
    return ShardForSeq(seq, static_cast<size_t>(
                                config_.shards > 1 ? config_.shards : 1));
  }
  double ShardUtilization(size_t shard) const;
  // Least-utilized object, optionally restricted to one shard
  // (shard == SIZE_MAX means any). Returns 0 if none qualifies below
  // `ceiling`.
  uint64_t PickVictim(size_t shard, double ceiling) const;

  GcSimConfig config_;
  ExtentMap<ObjTarget> map_;
  std::map<uint64_t, ObjectInfo> info_;
  // Per-object at-creation extents, the GC's candidate examination input.
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>> creation_;
  // Open batch: coalescing map (merge mode) or raw arrival list.
  ExtentMap<ObjTarget> batch_;
  std::vector<std::pair<uint64_t, uint64_t>> batch_list_;
  uint64_t batch_raw_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t live_sum_ = 0;
  uint64_t total_sum_ = 0;
  std::vector<uint64_t> shard_live_;
  std::vector<uint64_t> shard_total_;
  uint64_t self_dead_ = 0;  // bytes overwritten within the object being applied
  GcSimResult result_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_GC_SIM_H_
