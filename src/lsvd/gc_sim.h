// Trace-driven simulator of LSVD's write batching and garbage collection
// (paper §4.6, Table 5).
//
// Runs at extent granularity with no data and no I/O timing, so week-long
// block traces simulate in seconds. Reports the three measures of Table 5:
//   - write amplification (backend bytes / client bytes),
//   - merge ratio (bytes eliminated by within-batch coalescing),
//   - final extent-map size (memory usage / fragmentation).
// Ablations: `merge` toggles within-batch coalescing, `defrag` toggles the
// modified collector that performs extra reads to plug holes of <= 8 KiB in
// copied data, merging map entries (the w01 result in the paper).
#ifndef SRC_LSVD_GC_SIM_H_
#define SRC_LSVD_GC_SIM_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/lsvd/extent_map.h"
#include "src/lsvd/gc_policy.h"
#include "src/lsvd/object_format.h"
#include "src/util/metrics.h"
#include "src/util/units.h"

namespace lsvd {

struct GcSimConfig {
  uint64_t batch_bytes = 32 * kMiB;  // paper's simulations use 32 MiB
  double gc_low_watermark = 0.70;
  double gc_high_watermark = 0.75;
  bool merge = true;    // within-batch write coalescing
  bool defrag = false;  // plug small holes during GC copies
  uint64_t defrag_hole_max = 8 * kKiB;
  // Backend shards (DESIGN.md §9): objects stripe round-robin by seq and
  // each shard is collected independently against the watermarks. 1 = the
  // classic single-stream collector (bit-identical behavior).
  int shards = 1;
  // Victim-selection policy (docs/GC.md; DESIGN.md §11). `greedy` is
  // bit-identical to the historical least-utilized scan. Age is measured in
  // client batches written since the candidate was sealed.
  GcPolicyKind policy = GcPolicyKind::kGreedy;
  // Optional per-shard policy overrides, indexed by shard; shards beyond the
  // vector's length (and all shards when empty) use `policy`.
  std::vector<GcPolicyKind> shard_policy;
  // Pack GC copies into shared cold output objects that fill across cleaning
  // rounds (instead of one copy object per victim), segregating twice-
  // written cold data from fresh client batches (DESIGN.md §11).
  bool segregate_cold = false;
  // Zoned/SMR-style backend: non-zero groups objects into sequential-only
  // zones of this size (use a multiple of batch_bytes). The cleaner picks a
  // whole closed zone, relocates its live data into the cold stream, then
  // resets the zone. Utilization is live bytes over zone capacity, so dead
  // space stranded in a zone counts against it. Requires shards == 1;
  // implies cold segregation for relocated data.
  uint64_t zone_bytes = 0;
};

struct GcSimResult {
  uint64_t client_bytes = 0;   // total bytes written by the trace
  uint64_t backend_bytes = 0;  // bytes written to backend (incl. GC copies)
  uint64_t merged_bytes = 0;   // bytes eliminated by coalescing
  uint64_t trimmed_bytes = 0;  // bytes discarded via Trim
  uint64_t gc_copied_bytes = 0;
  uint64_t objects_created = 0;
  uint64_t objects_deleted = 0;
  uint64_t zones_reset = 0;    // zoned mode: zones cleaned and reclaimed
  size_t extent_count = 0;     // final object-map size

  // Write amplification: backend bytes over the client bytes that actually
  // needed to reach the backend (i.e. net of within-batch coalescing, which
  // is a *reduction* accounted separately by merge_ratio; this matches how
  // Table 5's merge-mode WAF stays above 1 even at high merge ratios).
  double waf() const {
    const uint64_t net = client_bytes - merged_bytes;
    return net == 0 ? 0.0
                    : static_cast<double>(backend_bytes) /
                          static_cast<double>(net);
  }
  double merge_ratio() const {
    return client_bytes == 0
               ? 0.0
               : static_cast<double>(merged_bytes) /
                     static_cast<double>(client_bytes);
  }
};

class GcSimulator {
 public:
  // If `metrics` is given, live progress ("gcsim.*" callback gauges over the
  // running totals) registers there; the trace loop can snapshot mid-run.
  explicit GcSimulator(GcSimConfig config, MetricsRegistry* metrics = nullptr)
      : config_(config),
        shard_live_(config.shards > 1 ? config.shards : 1, 0),
        shard_total_(config.shards > 1 ? config.shards : 1, 0) {
    assert(config.zone_bytes == 0 || config.shards <= 1);
    const size_t shards = config.shards > 1 ? config.shards : 1;
    for (size_t s = 0; s < shards; s++) {
      policies_.push_back(GcPolicy::Create(
          GcPolicyForShard(config.policy, config.shard_policy, s)));
    }
    if (metrics != nullptr) {
      metrics->RegisterCallback("gcsim.client_bytes", [this] {
        return static_cast<double>(result_.client_bytes);
      });
      metrics->RegisterCallback("gcsim.backend_bytes", [this] {
        return static_cast<double>(result_.backend_bytes);
      });
      metrics->RegisterCallback("gcsim.merged_bytes", [this] {
        return static_cast<double>(result_.merged_bytes);
      });
      metrics->RegisterCallback("gcsim.gc_copied_bytes", [this] {
        return static_cast<double>(result_.gc_copied_bytes);
      });
      metrics->RegisterCallback("gcsim.objects_created", [this] {
        return static_cast<double>(result_.objects_created);
      });
      metrics->RegisterCallback("gcsim.objects_deleted", [this] {
        return static_cast<double>(result_.objects_deleted);
      });
      metrics->RegisterCallback("gcsim.waf", [this] { return result_.waf(); });
      metrics->RegisterCallback("gcsim.utilization",
                                [this] { return Utilization(); });
      metrics->RegisterCallback("gcsim.extent_count", [this] {
        return static_cast<double>(map_.extent_count());
      });
    }
  }

  // One client write of `len` bytes at `vlba` (byte units, any alignment).
  void Write(uint64_t vlba, uint64_t len);

  // One client TRIM/discard of `len` bytes at `vlba`. Mirrors
  // BackendStore::AddTrim's seal-first protocol: the open batch seals, then
  // the trimmed range is punched out of the map, its displaced bytes dying
  // in their objects (which lowers utilization and can trigger cleaning).
  void Trim(uint64_t vlba, uint64_t len);

  // Seals the open batch and runs a final GC pass if needed.
  GcSimResult Finish();

  const ExtentMap<ObjTarget>& object_map() const { return map_; }

 private:
  // GC pieces to relocate: live creation extents of a victim, plus optional
  // defrag filler copied from other objects.
  struct Piece {
    uint64_t vlba;
    uint64_t len;
    bool plug;  // defrag filler copied from another object
  };
  // Per-object bookkeeping beyond ObjectInfo's byte counts.
  struct ObjMeta {
    uint64_t seal_clock = 0;  // result_.client_bytes when the object sealed
    uint32_t generation = 0;  // 0 = client data, else 1 + max victim gen
    uint64_t zone = 0;        // zoned mode: owning zone id (0 = none)
  };
  // Zoned mode: a sequential-only zone holding whole objects. Cleaned as a
  // unit (relocate live data, then reset).
  struct Zone {
    uint64_t total = 0;  // payload bytes appended
    uint64_t live = 0;
    uint64_t youngest_seal = 0;  // newest member object's seal clock
    bool cold = false;
    std::vector<uint64_t> objects;
  };

  void SealBatch();
  void MaybeGc();
  void CleanOne(uint64_t victim);
  std::vector<Piece> CollectLivePieces(uint64_t victim) const;
  // Appends relocated pieces to the shared cold output object, opening and
  // sealing cold objects at batch_bytes granularity.
  void AppendCold(const std::vector<Piece>& pieces, uint32_t generation);
  // Removes a cleaned object from all accounting (info, creation, meta,
  // sums, zone).
  void EraseObject(uint64_t victim);
  void Displace(const ExtentMap<ObjTarget>::ExtentVec& displaced,
                uint64_t self_seq);
  double Utilization() const;
  // Shard routing and per-shard occupancy (no-ops folded into the global
  // sums when config_.shards <= 1).
  size_t ShardOf(uint64_t seq) const {
    return ShardForSeq(seq, static_cast<size_t>(
                                config_.shards > 1 ? config_.shards : 1));
  }
  double ShardUtilization(size_t shard) const;
  // Policy-scored best victim, optionally restricted to one shard
  // (shard == SIZE_MAX means any). Only objects with utilization strictly
  // below `ceiling` are eligible; returns 0 if none qualifies.
  uint64_t PickVictim(size_t shard, double ceiling) const;
  double AgeOf(const ObjMeta& meta) const;

  // --- zoned mode ---
  // Places a newly sealed object into the open hot/cold zone (opening a new
  // zone as needed) and closes the zone once it reaches zone_bytes.
  void AssignZone(uint64_t seq, uint64_t total, uint64_t live, bool cold);
  double ZonedUtilization() const;
  uint64_t PickZoneVictim(double ceiling) const;
  // Relocates every live object in the zone into the cold stream, then
  // resets (erases) the zone.
  void CleanZone(uint64_t zid);

  GcSimConfig config_;
  std::vector<std::unique_ptr<GcPolicy>> policies_;  // one per shard
  ExtentMap<ObjTarget> map_;
  std::map<uint64_t, ObjectInfo> info_;
  std::map<uint64_t, ObjMeta> meta_;
  // Per-object at-creation extents, the GC's candidate examination input.
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>> creation_;
  // Open batch: coalescing map (merge mode) or raw arrival list.
  ExtentMap<ObjTarget> batch_;
  std::vector<std::pair<uint64_t, uint64_t>> batch_list_;
  uint64_t batch_raw_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t live_sum_ = 0;
  uint64_t total_sum_ = 0;
  std::vector<uint64_t> shard_live_;
  std::vector<uint64_t> shard_total_;
  uint64_t self_dead_ = 0;  // bytes overwritten within the object being applied
  // Cold output object under construction (segregate_cold / zoned mode).
  uint64_t cold_seq_ = 0;    // 0 = no cold object open
  uint64_t cold_bytes_ = 0;  // payload accumulated in the open cold object
  uint64_t cold_offset_ = 0;
  // Zoned mode state.
  std::map<uint64_t, Zone> zones_;
  uint64_t next_zone_ = 1;
  uint64_t open_hot_zone_ = 0;   // 0 = none open
  uint64_t open_cold_zone_ = 0;
  GcSimResult result_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_GC_SIM_H_
