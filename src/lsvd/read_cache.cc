#include "src/lsvd/read_cache.h"

#include <algorithm>
#include <cassert>

#include "src/util/codec.h"
#include "src/util/crc32c.h"

namespace lsvd {
namespace {

constexpr uint32_t kRcMapMagic = 0x4C535652;  // "LSVR"

}  // namespace

ReadCache::ReadCache(ClientHost* host, uint64_t base, uint64_t size,
                     uint64_t line_size, MetricsRegistry* metrics,
                     const std::string& prefix)
    : host_(host),
      ssd_(host->ssd()),
      base_(base),
      size_(size),
      line_size_(line_size) {
  assert(line_size_ % kBlockSize == 0);
  map_area_ = std::max<uint64_t>(kMiB, size_ / 64);
  map_area_ = (map_area_ + kBlockSize - 1) / kBlockSize * kBlockSize;
  lines_base_ = base_ + map_area_;
  num_lines_ = (base_ + size_ - lines_base_) / line_size_;
  assert(num_lines_ >= 4 && "read cache region too small");
  slots_.assign(num_lines_, Slot{});

  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  c_insertions_ = metrics_->GetCounter(prefix + ".insertions");
  c_inserted_bytes_ = metrics_->GetCounter(prefix + ".inserted_bytes");
  c_evictions_ = metrics_->GetCounter(prefix + ".evictions");
  c_invalidations_ = metrics_->GetCounter(prefix + ".invalidations");
  c_fill_failures_ = metrics_->GetCounter(prefix + ".fill_failures");
  // Slot lengths over-report: invalidations and map overwrites remove map
  // extents without clearing the slot, so the map itself is the only
  // accurate byte count.
  callback_guard_.Register(metrics_, prefix + ".mapped_bytes", [this] {
    return static_cast<double>(map_.mapped_bytes());
  });
}

ReadCacheStats ReadCache::stats() const {
  ReadCacheStats s;
  s.insertions = c_insertions_->value();
  s.inserted_bytes = c_inserted_bytes_->value();
  s.evictions = c_evictions_->value();
  s.invalidations = c_invalidations_->value();
  s.fill_failures = c_fill_failures_->value();
  return s;
}

void ReadCache::ReadData(uint64_t plba, uint64_t len,
                         std::function<void(Result<Buffer>)> done) {
  auto alive = alive_;
  ssd_->Read(plba, len, [alive, done = std::move(done)](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    done(std::move(r));
  });
}

void ReadCache::EvictSlot(uint64_t slot) {
  Slot& s = slots_[slot];
  if (s.len == 0) {
    return;
  }
  // Remove only map segments that still point into this slot.
  const uint64_t slot_base = SlotOffset(slot);
  ExtentMap<SsdTarget>::SegmentVec segs;
  map_.Lookup(s.vlba, s.len, &segs);
  for (const auto& seg : segs) {
    if (!seg.target.has_value()) {
      continue;
    }
    const uint64_t expected = slot_base + (seg.start - s.vlba);
    if (seg.target->plba == expected) {
      map_.Remove(seg.start, seg.len, nullptr);
    }
  }
  s = Slot{};
  c_evictions_->Inc();
}

void ReadCache::Insert(uint64_t vlba, const Buffer& data) {
  assert(vlba % kBlockSize == 0 && data.size() % kBlockSize == 0);
  uint64_t off = 0;
  while (off < data.size()) {
    const uint64_t n = std::min(line_size_, data.size() - off);
    const uint64_t slot = next_slot_;
    next_slot_ = (next_slot_ + 1) % num_lines_;
    EvictSlot(slot);

    const uint64_t piece_vlba = vlba + off;
    Buffer piece = data.Slice(off, n);
    const uint64_t gen = ++fill_gen_;
    slots_[slot] = Slot{piece_vlba, n, gen};
    c_insertions_->Inc();
    c_inserted_bytes_->Inc(n);

    // The map entry is installed only once the fill is durable on the SSD;
    // until then reads for this range keep missing to the backend. A failed
    // fill just frees the slot — only a future re-fetch, never a map entry
    // routing reads to data that never landed.
    auto pending = std::make_shared<PendingFill>(PendingFill{piece_vlba, n});
    pending_fills_.push_back(pending);
    auto alive = alive_;
    ssd_->Write(SlotOffset(slot), std::move(piece),
                [this, alive, slot, gen, pending](Status s) {
      if (!*alive) {
        return;
      }
      pending_fills_.erase(
          std::find(pending_fills_.begin(), pending_fills_.end(), pending));
      if (slots_[slot].gen != gen) {
        return;  // slot was recycled while the fill was in flight
      }
      if (!s.ok()) {
        c_fill_failures_->Inc();
        slots_[slot] = Slot{};
        return;
      }
      if (pending->invalidated) {
        // A client write overlapped the fill range before it landed; the
        // line would shadow newer data, so drop it.
        slots_[slot] = Slot{};
        return;
      }
      map_.Update(pending->vlba, pending->len, SsdTarget{SlotOffset(slot)},
                  nullptr);
    });
    off += n;
  }
}

void ReadCache::Invalidate(uint64_t vlba, uint64_t len) {
  ExtentMap<SsdTarget>::ExtentVec removed;
  map_.Remove(vlba, len, &removed);
  c_invalidations_->Inc(removed.size());
  // In-flight fills have no map entry yet; mark overlaps so their completion
  // discards instead of installing stale data.
  for (auto& pending : pending_fills_) {
    if (!pending->invalidated && pending->vlba < vlba + len &&
        vlba < pending->vlba + pending->len) {
      pending->invalidated = true;
      c_invalidations_->Inc();
    }
  }
}

void ReadCache::PersistMap(std::function<void(Status)> done) {
  Encoder enc;
  enc.PutU32(kRcMapMagic);
  enc.PutU64(next_slot_);
  const auto extents = map_.Extents();
  enc.PutU32(static_cast<uint32_t>(extents.size()));
  enc.PutU32(static_cast<uint32_t>(slots_.size()));
  const size_t crc_pos = enc.size();
  enc.PutU32(0);
  for (const auto& e : extents) {
    enc.PutU64(e.start);
    enc.PutU64(e.len);
    enc.PutU64(e.target.plba);
  }
  for (const auto& s : slots_) {
    enc.PutU64(s.vlba);
    enc.PutU64(s.len);
  }
  enc.PadTo(kBlockSize);
  std::vector<uint8_t> bytes = enc.Take();
  if (bytes.size() > map_area_) {
    done(Status::ResourceExhausted("read-cache map exceeds persist area"));
    return;
  }
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; i++) {
    bytes[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  auto alive = alive_;
  ssd_->Write(base_, Buffer::FromBytes(bytes),
              [alive, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    done(s);
  });
}

void ReadCache::LoadMap(std::function<void(Status)> done) {
  auto alive = alive_;
  ssd_->Read(base_, map_area_,
             [this, alive, done = std::move(done)](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    if (!r.ok()) {
      done(r.status());
      return;
    }
    std::vector<uint8_t> bytes = r->ToBytes();
    Decoder dec(bytes);
    if (dec.GetU32() != kRcMapMagic) {
      done(Status::Corruption("no read-cache map"));
      return;
    }
    const uint64_t next_slot = dec.GetU64();
    const uint32_t ext_count = dec.GetU32();
    const uint32_t slot_count = dec.GetU32();
    const size_t crc_pos = dec.position();
    const uint32_t crc = dec.GetU32();
    // CRC covers the padded blob; recompute over the same length.
    const size_t blob_len =
        (crc_pos + 4 + static_cast<size_t>(ext_count) * 24 +
         static_cast<size_t>(slot_count) * 16 + kBlockSize - 1) /
        kBlockSize * kBlockSize;
    if (blob_len > bytes.size() || slot_count != slots_.size()) {
      done(Status::Corruption("read-cache map malformed"));
      return;
    }
    std::vector<uint8_t> check(bytes.begin(),
                               bytes.begin() + static_cast<ptrdiff_t>(blob_len));
    for (int i = 0; i < 4; i++) {
      check[crc_pos + static_cast<size_t>(i)] = 0;
    }
    if (Crc32c(check.data(), check.size()) != crc) {
      done(Status::Corruption("read-cache map CRC mismatch"));
      return;
    }
    map_.Clear();
    next_slot_ = next_slot;
    for (uint32_t i = 0; i < ext_count; i++) {
      const uint64_t start = dec.GetU64();
      const uint64_t len = dec.GetU64();
      const uint64_t plba = dec.GetU64();
      map_.Update(start, len, SsdTarget{plba}, nullptr);
    }
    for (uint32_t i = 0; i < slot_count; i++) {
      slots_[i].vlba = dec.GetU64();
      slots_[i].len = dec.GetU64();
    }
    done(dec.ok() ? Status::Ok()
                  : Status::Corruption("read-cache map truncated"));
  });
}

}  // namespace lsvd
