#include "src/lsvd/journal.h"

#include <cassert>

#include "src/util/codec.h"
#include "src/util/crc32c.h"

namespace lsvd {
namespace {

constexpr uint32_t kJournalMagic = 0x4C53564A;  // "LSVJ"
constexpr uint32_t kTrimMagic = 0x4C535654;     // "LSVT": trim record, no data

}  // namespace

uint64_t JournalRecordSize(const JournalRecord& record) {
  if (record.is_trim) {
    return kBlockSize;
  }
  uint64_t data = 0;
  for (const auto& e : record.extents) {
    data += e.len;
  }
  return kBlockSize + data;
}

Buffer EncodeJournalRecord(const JournalRecord& record) {
  assert(record.extents.size() <= kMaxJournalExtents);
  uint64_t data_len = 0;
  for (const auto& e : record.extents) {
    assert(e.len % kBlockSize == 0);
    data_len += e.len;
  }
  if (record.is_trim) {
    // Trim records describe discarded ranges only; no payload follows the
    // header and the data-length field stays zero.
    assert(record.data.size() == 0);
    data_len = 0;
  } else {
    assert(record.data.size() == data_len);
  }

  Encoder enc;
  enc.Reserve(kBlockSize);
  enc.PutU32(record.is_trim ? kTrimMagic : kJournalMagic);
  enc.PutU64(record.seq);
  enc.PutU64(record.batch_seq);
  enc.PutU32(static_cast<uint32_t>(record.extents.size()));
  enc.PutU64(data_len);
  enc.PutU32(record.data.Crc());
  const size_t crc_pos = enc.size();
  enc.PutU32(0);  // header CRC backpatched below
  for (const auto& e : record.extents) {
    enc.PutU64(e.vlba);
    enc.PutU64(e.len);
  }
  enc.PadTo(kBlockSize);
  assert(enc.size() == kBlockSize);

  std::vector<uint8_t> header = enc.Take();
  // CRC covers the whole header block with the CRC field zeroed.
  const uint32_t crc = Crc32c(header.data(), header.size());
  for (int i = 0; i < 4; i++) {
    header[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }

  Buffer out;
  // Donate the header block instead of copying it; downstream consumers
  // (the SSD block store) can then share the same storage copy-free.
  out.AppendShared(
      std::make_shared<const std::vector<uint8_t>>(std::move(header)));
  out.Append(record.data);
  return out;
}

Status DecodeJournalHeader(const Buffer& header_block, JournalRecord* record,
                           uint64_t* data_len, uint64_t volume_limit) {
  if (header_block.size() != kBlockSize) {
    return Status::InvalidArgument("journal header must be one block");
  }
  std::vector<uint8_t> header = header_block.ToBytes();
  Decoder dec(header);
  const uint32_t magic = dec.GetU32();
  if (magic != kJournalMagic && magic != kTrimMagic) {
    return Status::Corruption("bad journal magic");
  }
  record->is_trim = (magic == kTrimMagic);
  record->seq = dec.GetU64();
  record->batch_seq = dec.GetU64();
  const uint32_t extent_count = dec.GetU32();
  *data_len = dec.GetU64();
  const uint32_t data_crc = dec.GetU32();
  const size_t crc_pos = dec.position();
  const uint32_t header_crc = dec.GetU32();
  if (extent_count > kMaxJournalExtents) {
    return Status::Corruption("journal extent count out of range");
  }

  // Verify header CRC with the field zeroed.
  for (int i = 0; i < 4; i++) {
    header[crc_pos + static_cast<size_t>(i)] = 0;
  }
  if (Crc32c(header.data(), header.size()) != header_crc) {
    return Status::Corruption("journal header CRC mismatch");
  }

  record->extents.clear();
  uint64_t sum = 0;
  for (uint32_t i = 0; i < extent_count; i++) {
    JournalExtent e;
    e.vlba = dec.GetU64();
    e.len = dec.GetU64();
    if (!dec.ok() || e.len == 0 || e.len % kBlockSize != 0) {
      return Status::Corruption("journal extent malformed");
    }
    if (e.vlba % kBlockSize != 0 || e.len > UINT64_MAX - e.vlba) {
      return Status::Corruption("journal extent range overflows");
    }
    if (volume_limit != 0 && e.vlba + e.len > volume_limit) {
      return Status::Corruption("journal extent past end of volume");
    }
    if (e.len > UINT64_MAX - sum) {
      return Status::Corruption("journal extent length sum overflows");
    }
    sum += e.len;
    record->extents.push_back(e);
  }
  if (record->is_trim) {
    // Trim records carry no payload; the extent lengths describe only the
    // discarded virtual ranges.
    if (*data_len != 0) {
      return Status::Corruption("trim record carries payload");
    }
  } else if (sum != *data_len) {
    return Status::Corruption("journal extent lengths disagree with payload");
  }
  // Stash the payload CRC for VerifyJournalData via the data field: encode it
  // in an empty buffer's CRC is impossible, so keep it in record->data_crc.
  record->data_crc = data_crc;
  return Status::Ok();
}

Status VerifyJournalData(const JournalRecord& record, const Buffer& data) {
  if (data.Crc() != record.data_crc) {
    return Status::Corruption("journal payload CRC mismatch");
  }
  return Status::Ok();
}

}  // namespace lsvd
