// Block-granular read cache (paper §3.1).
//
// Most of the SSD is devoted to this cache. It stores fixed-size lines
// (default 64 KiB) allocated FIFO, holding data fetched from the backend.
// Its map is memory-efficient (line granularity) and its loss is harmless —
// the map is only persisted opportunistically to avoid cold-start refetches.
//
// Write-after-read hazards are handled by LSVD's read path ordering (write
// cache is consulted first) plus explicit invalidation on every client write,
// so a line never shadows newer data after the write cache evicts.
#ifndef SRC_LSVD_READ_CACHE_H_
#define SRC_LSVD_READ_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/lsvd/client_host.h"
#include "src/lsvd/extent_map.h"
#include "src/util/metrics.h"

namespace lsvd {

// View over the read cache's registry counters (see docs/METRICS.md,
// "lsvd.read_cache.*").
struct ReadCacheStats {
  uint64_t insertions = 0;
  uint64_t inserted_bytes = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t fill_failures = 0;  // slot fills whose SSD write failed
};

class ReadCache {
 public:
  ReadCache(ClientHost* host, uint64_t base, uint64_t size,
            uint64_t line_size, MetricsRegistry* metrics = nullptr,
            const std::string& prefix = "lsvd.read_cache");

  const ExtentMap<SsdTarget>& map() const { return map_; }

  // Reads cached data by device offset (target of a map lookup).
  void ReadData(uint64_t plba, uint64_t len,
                std::function<void(Result<Buffer>)> done);

  // Caches backend data covering [vlba, vlba + data.size()). Fire-and-forget:
  // the SSD writes complete in the background, and a line becomes visible in
  // the map only once its fill write is acknowledged — a slot whose fill
  // failed (or that was invalidated/recycled mid-flight) is never mapped.
  void Insert(uint64_t vlba, const Buffer& data);

  // Drops any cached lines overlapping [vlba, vlba+len); called on every
  // client write to prevent stale reads.
  void Invalidate(uint64_t vlba, uint64_t len);

  // Opportunistically persists / restores the line map (§3.2: "the read
  // cache map is periodically persisted to SSD").
  void PersistMap(std::function<void(Status)> done);
  void LoadMap(std::function<void(Status)> done);

  void Kill() { *alive_ = false; }

  uint64_t line_size() const { return line_size_; }
  uint64_t num_lines() const { return num_lines_; }
  ReadCacheStats stats() const;

 private:
  struct Slot {
    uint64_t vlba = 0;
    uint64_t len = 0;  // 0 = empty
    // Fill generation: the completion callback installs the map entry only
    // if the slot was not recycled (FIFO wrap) while the write was in
    // flight. Monotonic, never reused.
    uint64_t gen = 0;
  };
  // An in-flight slot fill; Invalidate marks overlapping fills so their
  // completion does not install a mapping that a newer client write
  // superseded. Kept in a side list (not per-slot scans): the slot array can
  // be millions of lines, in-flight fills are at most a handful.
  struct PendingFill {
    uint64_t vlba = 0;
    uint64_t len = 0;
    bool invalidated = false;
  };

  uint64_t SlotOffset(uint64_t slot) const {
    return lines_base_ + slot * line_size_;
  }
  void EvictSlot(uint64_t slot);

  ClientHost* host_;
  SimSsd* ssd_;
  uint64_t base_;
  uint64_t size_;
  uint64_t line_size_;
  uint64_t map_area_;    // bytes reserved for map persistence
  uint64_t lines_base_;
  uint64_t num_lines_;
  uint64_t next_slot_ = 0;  // FIFO allocation cursor

  ExtentMap<SsdTarget> map_;
  std::vector<Slot> slots_;
  uint64_t fill_gen_ = 0;
  std::vector<std::shared_ptr<PendingFill>> pending_fills_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter* c_insertions_;
  Counter* c_inserted_bytes_;
  Counter* c_evictions_;
  Counter* c_invalidations_;
  Counter* c_fill_failures_;
  // Last member: destroyed first, so gauge callbacks never outlive the state
  // they read (the shared host registry outlives detached volumes).
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_READ_CACHE_H_
