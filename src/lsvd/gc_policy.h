// Pluggable garbage-collection victim-selection policies (docs/GC.md).
//
// The backend store and the trace-driven GC simulator both pick cleaning
// victims by scoring candidate objects and taking the highest score. The
// scoring function is the policy:
//
//   greedy        score = -u                  (least-utilized object; the
//                                              paper's §3.5 collector)
//   cost-benefit  score = (1-u)(1+a)/(1+u)    (Sprite-LFS benefit/cost:
//                                              free space gained x stability,
//                                              over the cost of reading and
//                                              rewriting the live fraction)
//   age-bucketed  score = 2b + (1-u), b = min(6, floor(log2(1+a)))
//                                             (coarse stability buckets:
//                                              always prefer an older bucket,
//                                              break ties greedily)
//
// where u = live_bytes/total_bytes and a is the *stable* age: both
// collectors fill `age` from the object-sequence clock (objects created
// since this candidate was sealed, next_seq - seq — the simulator's zoned
// mode, which scores whole zones rather than objects, uses its batch clock
// instead), and for GC output (generation > 0) the policies floor it at
// 2^generation - 1. Every scoring input is persisted state — sequence
// numbers and the generation in the v2+ data-object header survive
// recovery; wall/seal clocks would not — so a recovered store ranks
// victims identically to the pre-crash store. Callers scan candidates in
// ascending sequence order and
// replace the best only on a strictly greater score, so ties go to the
// lowest sequence number — with the greedy score this reproduces the
// historical least-ratio scan bit for bit.
#ifndef SRC_LSVD_GC_POLICY_H_
#define SRC_LSVD_GC_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lsvd {

enum class GcPolicyKind : uint8_t {
  kGreedy = 0,
  kCostBenefit = 1,
  kAgeBucketed = 2,
};

// Canonical names ("greedy", "cost-benefit", "age-bucketed") for configs,
// bench flags and metric dumps.
const char* GcPolicyKindName(GcPolicyKind kind);
std::optional<GcPolicyKind> ParseGcPolicyKind(std::string_view name);

// One candidate object (or zone, in the simulator's zoned mode) as the
// policy sees it. Eligibility filtering (sealed, not already pending, below
// the utilization ceiling, right shard) stays in the caller; the policy only
// ranks.
struct GcCandidate {
  uint64_t seq = 0;
  uint64_t total_bytes = 0;
  uint64_t live_bytes = 0;
  // Stability clock: objects created since this candidate was sealed
  // (next_seq - seq). Callers MUST fill it from persisted, recoverable
  // state — the object-sequence clock, never a seal/wall clock — so that
  // scores survive crash recovery. The simulator's zoned mode, whose zone
  // candidates have no sequence, uses its batch clock (zones are never
  // recovered, so stability is moot there).
  double age = 0.0;
  // GC generation: 0 for fresh client data, 1 + max victim generation for
  // GC output. Persisted in the v2+ data-object header; the age-sensitive
  // policies floor a generation-tagged object's effective age at 2^g - 1,
  // its pedigree even in the instant after the collection that produced it.
  uint32_t generation = 0;

  double utilization() const {
    return total_bytes == 0 ? 1.0
                            : static_cast<double>(live_bytes) /
                                  static_cast<double>(total_bytes);
  }
};

class GcPolicy {
 public:
  virtual ~GcPolicy() = default;
  virtual GcPolicyKind kind() const = 0;
  // Higher is a better victim. Scores are only compared within one policy.
  virtual double Score(const GcCandidate& candidate) const = 0;
  const char* name() const { return GcPolicyKindName(kind()); }

  static std::unique_ptr<GcPolicy> Create(GcPolicyKind kind);
};

// Resolves a per-shard policy table: `overrides[shard]` when the vector is
// long enough, else `base` (mirrors LsvdConfig::shard_retry's convention).
GcPolicyKind GcPolicyForShard(GcPolicyKind base,
                              const std::vector<GcPolicyKind>& overrides,
                              size_t shard);

}  // namespace lsvd

#endif  // SRC_LSVD_GC_POLICY_H_
