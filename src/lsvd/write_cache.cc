#include "src/lsvd/write_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "src/util/codec.h"
#include "src/util/crc32c.h"

namespace lsvd {
namespace {

constexpr uint32_t kSuperMagic = 0x4C535653;    // "LSVS"
constexpr uint32_t kWcCkptMagic = 0x4C535643;   // "LSVC"
constexpr uint32_t kVersion = 1;
// Checkpoint-blob v2 adds a per-record flag word (bit 0 = trim record). Only
// written while a live trim record exists, so trim-free volumes keep the v1
// bytes (same gating discipline as the object-format versions).
constexpr uint32_t kCkptVersionTrim = 2;
constexpr uint32_t kRecordFlagTrim = 1u << 0;
// Bound on the data carried by one journal record, to keep record latency
// bounded and recovery reads reasonable.
constexpr uint64_t kMaxRecordData = 4 * kMiB;

// Record pipelining and plugging (MaybeStartRecord): up to kRecordWindow
// concurrent record writes; a lone small write (< kPlugBytes) waits for
// company while others are in flight. With the small-write fast path on, a
// pipeline no deeper than kFastPathDepth skips the wait — there is no queue
// to amortize against, so plugging would only add idle latency.
constexpr size_t kRecordWindow = 12;
constexpr uint64_t kPlugBytes = 16 * kKiB;
constexpr size_t kFastPathDepth = 1;

uint64_t RoundUpBlock(uint64_t v) {
  return (v + kBlockSize - 1) / kBlockSize * kBlockSize;
}

}  // namespace

WriteCache::WriteCache(ClientHost* host, uint64_t base, uint64_t size,
                       const StageCosts& costs, MetricsRegistry* metrics,
                       const std::string& prefix, uint64_t volume_limit)
    : host_(host),
      ssd_(host->ssd()),
      costs_(costs),
      record_cpu_(host->sim(), 2),
      base_(base),
      size_(size),
      volume_limit_(volume_limit) {
  assert(size_ >= 16 * kMiB && "write cache region too small");
  slot_size_ = RoundUpBlock(std::max<uint64_t>(kMiB, size_ / 32));
  log_base_ = base_ + kBlockSize + 2 * slot_size_;
  log_size_ = base_ + size_ - log_base_;
  head_ = log_base_;
  readback_head_ = log_base_;

  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  prefix_ = prefix;
  c_appends_ = metrics_->GetCounter(prefix + ".appends");
  c_appended_bytes_ = metrics_->GetCounter(prefix + ".appended_bytes");
  c_records_ = metrics_->GetCounter(prefix + ".records");
  c_record_bytes_ = metrics_->GetCounter(prefix + ".record_bytes");
  c_stalled_appends_ = metrics_->GetCounter(prefix + ".stalled_appends");
  c_checkpoints_ = metrics_->GetCounter(prefix + ".checkpoints");
  c_evicted_records_ = metrics_->GetCounter(prefix + ".evicted_records");
  h_append_to_free_us_ = metrics_->GetHistogram(prefix + ".append_to_free_us");
  callback_guard_.Register(metrics_, prefix + ".used_bytes",
                           [this] { return static_cast<double>(used_); });
  callback_guard_.Register(metrics_, prefix + ".free_bytes", [this] {
    return static_cast<double>(free_bytes());
  });
  callback_guard_.Register(metrics_, prefix + ".live_records", [this] {
    return static_cast<double>(records_.size());
  });
}

WriteCacheStats WriteCache::stats() const {
  WriteCacheStats s;
  s.appends = c_appends_->value();
  s.appended_bytes = c_appended_bytes_->value();
  s.records = c_records_->value();
  s.record_bytes = c_record_bytes_->value();
  s.stalled_appends = c_stalled_appends_->value();
  s.checkpoints = c_checkpoints_->value();
  s.evicted_records = c_evicted_records_->value();
  return s;
}

void WriteCache::Format(std::function<void(Status)> done) {
  Encoder enc;
  enc.PutU32(kSuperMagic);
  enc.PutU32(kVersion);
  enc.PutU64(base_);
  enc.PutU64(size_);
  enc.PutU64(slot_size_);
  enc.PutU64(log_base_);
  const size_t crc_pos = enc.size();
  enc.PutU32(0);
  enc.PadTo(kBlockSize);
  std::vector<uint8_t> sb = enc.Take();
  const uint32_t crc = Crc32c(sb.data(), sb.size());
  for (int i = 0; i < 4; i++) {
    sb[crc_pos + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }

  auto alive = alive_;
  ssd_->Write(base_, Buffer::FromBytes(sb),
              [this, alive, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    // Initial empty checkpoint in slot 0.
    WriteCheckpoint(0, std::move(done));
  });
}

void WriteCache::Append(uint64_t vlba, Buffer data, uint64_t batch_seq,
                        std::function<void(Status)> done) {
  assert(vlba % kBlockSize == 0 && data.size() % kBlockSize == 0);
  if (data.size() + kBlockSize > log_size_ / 2) {
    done(Status::InvalidArgument("write larger than half the cache log"));
    return;
  }
  c_appends_->Inc();
  c_appended_bytes_->Inc(data.size());
  if (heat_halflife_ > 0) {
    // Bump the overwrite heat of every 1 MiB region this write touches.
    const Nanos now = host_->sim()->now();
    const uint64_t first = vlba >> 20;
    const uint64_t last = (vlba + data.size() - 1) >> 20;
    for (uint64_t region = first; region <= last; region++) {
      HeatCell& cell = heat_[region];
      if (cell.updated < now && cell.value > 0.0) {
        cell.value *= std::exp2(-static_cast<double>(now - cell.updated) /
                                static_cast<double>(heat_halflife_));
      }
      cell.value += 1.0;
      cell.updated = now;
    }
  }
  pending_.push_back(Pending{vlba, std::move(data), batch_seq,
                             std::move(done)});
  MaybeStartRecord();
}

void WriteCache::AppendTrim(uint64_t vlba, uint64_t len, uint64_t batch_seq,
                            std::function<void(Status)> done) {
  assert(vlba % kBlockSize == 0 && len % kBlockSize == 0 && len > 0);
  if (c_trim_records_ == nullptr) {
    c_trim_records_ = metrics_->GetCounter(prefix_ + ".trim_records");
  }
  Pending p;
  p.vlba = vlba;
  p.batch_seq = batch_seq;
  p.done = std::move(done);
  p.is_trim = true;
  p.trim_len = len;
  pending_.push_back(std::move(p));
  MaybeStartRecord();
}

double WriteCache::WriteHeat(uint64_t vlba) const {
  if (heat_halflife_ <= 0) {
    return 0.0;
  }
  auto it = heat_.find(vlba >> 20);
  if (it == heat_.end()) {
    return 0.0;
  }
  const Nanos now = host_->sim()->now();
  if (it->second.updated >= now) {
    return it->second.value;
  }
  return it->second.value *
         std::exp2(-static_cast<double>(now - it->second.updated) /
                   static_cast<double>(heat_halflife_));
}

void WriteCache::MaybeStartRecord() {
  // Pipeline up to a small window of concurrent record writes. While other
  // records are already in flight, a lone small write waits briefly for
  // company ("plugging"): the per-record wakeup cost then amortizes over
  // more writes without adding idle latency.
  while (in_flight_.size() < kRecordWindow && !pending_.empty()) {
    if (!in_flight_.empty() && pending_.size() < 2 &&
        !pending_.front().is_trim &&
        pending_.front().data.size() < kPlugBytes &&
        !(fast_path_ && in_flight_.size() <= kFastPathDepth)) {
      if (plug_deadline_ > 0 && !plug_timer_armed_) {
        ArmPlugTimer();
      }
      return;  // wait for the next append or for the pipeline to drain
    }
    if (!StartOneRecord()) {
      return;
    }
  }
}

void WriteCache::ArmPlugTimer() {
  plug_timer_armed_ = true;
  auto alive = alive_;
  host_->sim()->After(plug_deadline_, [this, alive] {
    if (!*alive) {
      return;
    }
    PlugTimerFire();
  });
}

void WriteCache::PlugTimerFire() {
  plug_timer_armed_ = false;
  if (pending_.empty() || in_flight_.size() >= kRecordWindow) {
    return;  // already started, or the full window will pump it on drain
  }
  // Force-start only if the plug heuristic is still what holds the write
  // back; a space stall resumes through ReleaseThrough instead. A write that
  // replaced the one the timer was armed for just seals a little early —
  // the deadline is an upper bound on plug wait, not an exact hold time.
  if (!in_flight_.empty() && pending_.size() < 2 &&
      !pending_.front().is_trim &&
      pending_.front().data.size() < kPlugBytes) {
    if (StartOneRecord()) {
      c_deadline_seals_->Inc();
      MaybeStartRecord();
    }
  }
}

bool WriteCache::StartOneRecord() {
  // Pack pending writes into one record, bounded by the extent table, the
  // record data cap, and available log space.
  JournalRecord record;
  record.seq = next_seq_;
  // Records are type-homogeneous: trims pack only with trims (the record
  // carries no payload), writes only with writes.
  record.is_trim = pending_.front().is_trim;
  std::vector<Pending> writes;
  uint64_t data_len = 0;
  uint64_t max_batch = 0;
  while (!pending_.empty() && record.extents.size() < kMaxJournalExtents &&
         data_len < kMaxRecordData) {
    Pending& p = pending_.front();
    if (p.is_trim != record.is_trim) {
      break;
    }
    const uint64_t record_size = kBlockSize + data_len + p.data.size();
    // Space feasibility including a potential wrap gap; evict releasable
    // records (FIFO) on demand.
    const uint64_t contiguous = base_ + size_ - head_;
    const uint64_t gap = record_size > contiguous ? contiguous : 0;
    const uint64_t need = gap + record_size + kBlockSize;
    if (used_ + need > log_size_) {
      EvictForSpace(need);
    }
    if (used_ + need > log_size_) {
      if (writes.empty()) {
        c_stalled_appends_->Inc();
        return false;  // no room for even one write; resume on ReleaseThrough
      }
      break;
    }
    record.extents.push_back(JournalExtent{
        p.vlba, record.is_trim ? p.trim_len : p.data.size()});
    record.data.Append(p.data);
    data_len += p.data.size();
    max_batch = std::max(max_batch, p.batch_seq);
    writes.push_back(std::move(p));
    pending_.pop_front();
  }
  if (writes.empty()) {
    return false;
  }
  record.batch_seq = max_batch;

  const uint64_t record_size = kBlockSize + data_len;
  const uint64_t contiguous = base_ + size_ - head_;
  const uint64_t gap = record_size > contiguous ? contiguous : 0;
  const uint64_t target = gap > 0 ? log_base_ : head_;

  RecordMeta meta;
  meta.seq = record.seq;
  meta.offset = target;
  meta.total_len = record_size;
  meta.footprint = gap + record_size;
  meta.max_batch_seq = max_batch;
  meta.is_trim = record.is_trim;
  meta.extents = record.extents;
  meta.appended_at = host_->sim()->now();

  const uint64_t seq = record.seq;
  next_seq_++;
  head_ = target + record_size;
  used_ += meta.footprint;
  c_records_->Inc();
  c_record_bytes_->Inc(record_size);
  if (record.is_trim) {
    c_trim_records_->Inc();
  }
  records_.push_back(meta);  // in sequence order; applied later
  in_flight_[seq] = InFlightRecord{std::move(writes), false, Status::Ok()};

  Buffer encoded = EncodeJournalRecord(record);
  auto alive = alive_;
  // The record write is preceded by the journal worker wakeup (Table 6).
  record_cpu_.Submit(costs_.record_context_switch,
                     [this, alive, seq, target,
                      encoded = std::move(encoded)]() mutable {
    if (!*alive) {
      return;
    }
    ssd_->Write(target, std::move(encoded), [this, alive, seq](Status s) {
      if (!*alive) {
        return;
      }
      auto it = in_flight_.find(seq);
      assert(it != in_flight_.end());
      it->second.write_done = true;
      it->second.status = s;
      ApplyCompletedRecords();
      MaybeStartRecord();
    });
  });
  return true;
}

void WriteCache::ApplyCompletedRecords() {
  // Map updates and acknowledgements in sequence order (§3.2), so that when
  // two pipelined records touch the same vLBA, the later record's mapping
  // survives.
  while (!in_flight_.empty()) {
    auto it = in_flight_.find(next_apply_seq_);
    if (it == in_flight_.end() || !it->second.write_done) {
      return;
    }
    // Find this record's metadata; it is among the most recently appended.
    const RecordMeta* meta = nullptr;
    for (auto rit = records_.rbegin(); rit != records_.rend(); ++rit) {
      if (rit->seq == next_apply_seq_) {
        meta = &*rit;
        break;
      }
      if (rit->seq < next_apply_seq_) {
        break;
      }
    }
    if (it->second.status.ok() && meta != nullptr) {
      if (meta->is_trim) {
        // Punch the cache map and remember the tombstone until the backend
        // batch that carries the object-map punch commits (ReleaseThrough).
        for (const auto& e : meta->extents) {
          map_.Remove(e.vlba, e.len, nullptr);
          trim_map_.Update(e.vlba, e.len,
                           ObjTarget{meta->max_batch_seq, e.vlba}, nullptr);
        }
      } else {
        uint64_t data_plba = meta->offset + kBlockSize;
        for (const auto& e : meta->extents) {
          map_.Update(e.vlba, e.len, SsdTarget{data_plba}, nullptr);
          if (!trim_map_.empty()) {
            // A later write over a trimmed range supersedes the tombstone.
            trim_map_.Remove(e.vlba, e.len, nullptr);
          }
          data_plba += e.len;
        }
      }
    }
    for (auto& w : it->second.writes) {
      w.done(it->second.status);
    }
    in_flight_.erase(it);
    next_apply_seq_++;
  }
  // Stalled appends may proceed now: applied records are no longer pinned
  // in flight, so lazy eviction can reclaim them if they are releasable.
  MaybeStartRecord();
}

void WriteCache::Barrier(std::function<void(Status)> done) {
  if (!flush_coalescing_) {
    auto alive = alive_;
    ssd_->Flush([alive, done = std::move(done)](Status s) {
      if (!*alive) {
        return;
      }
      done(s);
    });
    return;
  }
  // Group commit: barriers arriving while a flush is in flight all ride the
  // next flush together (it starts after the current one completes, so it
  // covers everything written before they were queued). N concurrent
  // barriers cost at most two flushes instead of N.
  pending_barriers_.push_back(std::move(done));
  if (flush_in_flight_) {
    c_coalesced_flushes_->Inc();
    return;
  }
  StartBarrierFlush();
}

void WriteCache::StartBarrierFlush() {
  flush_in_flight_ = true;
  auto waiters = std::make_shared<std::vector<std::function<void(Status)>>>(
      std::move(pending_barriers_));
  pending_barriers_.clear();
  auto alive = alive_;
  ssd_->Flush([this, alive, waiters](Status s) {
    if (!*alive) {
      return;
    }
    flush_in_flight_ = false;
    for (auto& d : *waiters) {
      d(s);
    }
    // A waiter's callback may itself call Barrier() and restart the pump;
    // only start the next group if nothing else already has.
    if (!flush_in_flight_ && !pending_barriers_.empty()) {
      StartBarrierFlush();
    }
  });
}

void WriteCache::EnableAdaptiveBatching(Nanos plug_deadline,
                                        bool flush_coalescing,
                                        bool fast_path) {
  plug_deadline_ = plug_deadline;
  flush_coalescing_ = flush_coalescing;
  fast_path_ = fast_path;
  if (c_deadline_seals_ == nullptr) {
    c_deadline_seals_ = metrics_->GetCounter(prefix_ + ".deadline_seals");
    c_coalesced_flushes_ =
        metrics_->GetCounter(prefix_ + ".journal.coalesced_flushes");
  }
}

void WriteCache::ReadData(uint64_t plba, uint64_t len,
                          std::function<void(Result<Buffer>)> done) {
  auto alive = alive_;
  ssd_->Read(plba, len, [alive, done = std::move(done)](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    done(std::move(r));
  });
}

void WriteCache::ReleaseThrough(uint64_t synced_batch_seq) {
  if (synced_batch_seq > release_watermark_) {
    release_watermark_ = synced_batch_seq;
    // Releasability is FIFO in sequence order, so newly releasable records
    // extend the timed prefix; record their append-to-free latency once.
    const Nanos now = host_->sim()->now();
    while (release_timed_count_ < records_.size()) {
      const RecordMeta& rec = records_[release_timed_count_];
      if (rec.max_batch_seq > release_watermark_) {
        break;
      }
      if (rec.appended_at >= 0) {
        RecordLatencyUs(h_append_to_free_us_, now - rec.appended_at);
      }
      release_timed_count_++;
    }
    if (!trim_map_.empty()) {
      // Tombstones whose punching batch has committed are covered by the
      // backend map (the range is unmapped there) and can be dropped.
      for (const auto& e : trim_map_.Extents()) {
        if (e.target.seq <= release_watermark_) {
          trim_map_.Remove(e.start, e.len, nullptr);
        }
      }
    }
    // Newly releasable space may unblock stalled appends.
    MaybeStartRecord();
  }
}

void WriteCache::EvictReleasable() { EvictForSpace(log_size_); }

void WriteCache::EvictForSpace(uint64_t needed) {
  while (free_bytes() < needed && !records_.empty() &&
         records_.front().max_batch_seq <= release_watermark_ &&
         !in_flight_.contains(records_.front().seq)) {
    const RecordMeta& rec = records_.front();
    // Remove map entries that still point into this record's data area;
    // ranges overwritten by newer records are left alone. Trim records carry
    // no data, so no map entry can point into them.
    if (!rec.is_trim) {
      const uint64_t data_base = rec.offset + kBlockSize;
      uint64_t extent_plba = data_base;
      ExtentMap<SsdTarget>::SegmentVec segs;
      for (const auto& e : rec.extents) {
        map_.Lookup(e.vlba, e.len, &segs);
        for (const auto& seg : segs) {
          if (!seg.target.has_value()) {
            continue;
          }
          const uint64_t expected = extent_plba + (seg.start - e.vlba);
          if (seg.target->plba == expected) {
            map_.Remove(seg.start, seg.len, nullptr);
          }
        }
        extent_plba += e.len;
      }
    }
    used_ -= rec.footprint;
    c_evicted_records_->Inc();
    records_.pop_front();
    if (release_timed_count_ > 0) {
      release_timed_count_--;
    }
  }
}

void WriteCache::ChargeReadback(uint64_t bytes, std::function<void()> done) {
  if (bytes == 0) {
    host_->sim()->After(0, std::move(done));
    return;
  }
  auto remaining = std::make_shared<int>(0);
  auto issued = std::make_shared<bool>(false);
  auto alive = alive_;
  auto one = [alive, remaining, issued, done]() {
    (*remaining)--;
    if (*issued && *remaining == 0 && *alive) {
      done();
    }
  };
  constexpr uint64_t kChunk = 256 * kKiB;
  uint64_t left = bytes;
  while (left > 0) {
    const uint64_t n = RoundUpBlock(std::min(left, kChunk));
    if (readback_head_ + n > base_ + size_) {
      readback_head_ = log_base_;
    }
    (*remaining)++;
    ssd_->Read(readback_head_, n, [one](Result<Buffer>) { one(); });
    readback_head_ += n;
    left -= std::min(left, kChunk);
  }
  *issued = true;
}

Buffer WriteCache::EncodeCheckpointBlob(uint64_t backend_synced_seq) const {
  bool has_trim = false;
  for (const auto& rec : records_) {
    has_trim |= rec.is_trim;
  }
  Encoder enc;
  enc.PutU32(kWcCkptMagic);
  enc.PutU32(has_trim ? kCkptVersionTrim : kVersion);
  const size_t len_pos = enc.size();
  enc.PutU64(0);  // blob length, backpatched after padding
  enc.PutU64(ckpt_gen_ + 1);
  enc.PutU64(next_seq_);
  enc.PutU64(head_);
  enc.PutU64(used_);
  enc.PutU64(backend_synced_seq);
  enc.PutU32(static_cast<uint32_t>(records_.size()));
  const auto extents = map_.Extents();
  enc.PutU32(static_cast<uint32_t>(extents.size()));
  const size_t crc_pos = enc.size();
  enc.PutU32(0);
  for (const auto& rec : records_) {
    enc.PutU64(rec.seq);
    enc.PutU64(rec.offset);
    enc.PutU64(rec.total_len);
    enc.PutU64(rec.footprint);
    enc.PutU64(rec.max_batch_seq);
    if (has_trim) {
      enc.PutU32(rec.is_trim ? kRecordFlagTrim : 0);
    }
    enc.PutU32(static_cast<uint32_t>(rec.extents.size()));
    for (const auto& e : rec.extents) {
      enc.PutU64(e.vlba);
      enc.PutU64(e.len);
    }
  }
  for (const auto& e : extents) {
    enc.PutU64(e.start);
    enc.PutU64(e.len);
    enc.PutU64(e.target.plba);
  }
  enc.PadTo(kBlockSize);
  enc.PatchU32(len_pos, static_cast<uint32_t>(enc.size()));
  enc.PatchU32(len_pos + 4, static_cast<uint32_t>(enc.size() >> 32));
  std::vector<uint8_t> bytes = enc.Take();
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  for (int i = 0; i < 4; i++) {
    bytes[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  return Buffer::FromBytes(bytes);
}

Status WriteCache::LoadCheckpointBlob(const Buffer& blob,
                                      uint64_t* ckpt_gen) {
  std::vector<uint8_t> bytes = blob.ToBytes();
  Decoder dec(bytes);
  if (dec.GetU32() != kWcCkptMagic) {
    return Status::Corruption("bad write-cache checkpoint magic");
  }
  const uint32_t version = dec.GetU32();
  if (version != kVersion && version != kCkptVersionTrim) {
    return Status::Corruption("bad write-cache checkpoint version");
  }
  const uint64_t blob_len = dec.GetU64();
  if (blob_len < 32 || blob_len > bytes.size()) {
    return Status::Corruption("write-cache checkpoint length out of range");
  }
  bytes.resize(blob_len);  // CRC covers exactly the encoded blob
  *ckpt_gen = dec.GetU64();
  const uint64_t next_seq = dec.GetU64();
  const uint64_t head = dec.GetU64();
  const uint64_t used = dec.GetU64();
  const uint64_t synced = dec.GetU64();
  const uint32_t rec_count = dec.GetU32();
  const uint32_t ext_count = dec.GetU32();
  const size_t crc_pos = dec.position();
  const uint32_t crc = dec.GetU32();
  std::vector<uint8_t> check = bytes;
  for (int i = 0; i < 4; i++) {
    check[crc_pos + static_cast<size_t>(i)] = 0;
  }
  if (Crc32c(check.data(), check.size()) != crc) {
    return Status::Corruption("write-cache checkpoint CRC mismatch");
  }

  next_seq_ = next_seq;
  next_apply_seq_ = next_seq;
  head_ = head;
  used_ = used;
  recovered_synced_ = synced;
  records_.clear();
  release_timed_count_ = 0;
  map_.Clear();
  trim_map_.Clear();
  for (uint32_t i = 0; i < rec_count; i++) {
    RecordMeta rec;
    rec.seq = dec.GetU64();
    rec.offset = dec.GetU64();
    rec.total_len = dec.GetU64();
    rec.footprint = dec.GetU64();
    rec.max_batch_seq = dec.GetU64();
    if (version >= kCkptVersionTrim) {
      rec.is_trim = (dec.GetU32() & kRecordFlagTrim) != 0;
    }
    const uint32_t n = dec.GetU32();
    for (uint32_t j = 0; j < n; j++) {
      JournalExtent e;
      e.vlba = dec.GetU64();
      e.len = dec.GetU64();
      rec.extents.push_back(e);
    }
    records_.push_back(std::move(rec));
  }
  for (uint32_t i = 0; i < ext_count; i++) {
    const uint64_t start = dec.GetU64();
    const uint64_t len = dec.GetU64();
    const uint64_t plba = dec.GetU64();
    map_.Update(start, len, SsdTarget{plba}, nullptr);
  }
  if (!dec.ok()) {
    return Status::Corruption("write-cache checkpoint truncated");
  }
  // Rebuild the tombstone map from the live records in sequence order: a
  // trim raises a tombstone, a later write over the range clears it.
  for (const auto& rec : records_) {
    for (const auto& e : rec.extents) {
      if (rec.is_trim) {
        trim_map_.Update(e.vlba, e.len, ObjTarget{rec.max_batch_seq, e.vlba},
                         nullptr);
      } else if (!trim_map_.empty()) {
        trim_map_.Remove(e.vlba, e.len, nullptr);
      }
    }
  }
  return Status::Ok();
}

void WriteCache::WriteCheckpoint(uint64_t backend_synced_seq,
                                 std::function<void(Status)> done) {
  Buffer blob = EncodeCheckpointBlob(backend_synced_seq);
  if (blob.size() > slot_size_) {
    done(Status::ResourceExhausted("write-cache map exceeds checkpoint slot"));
    return;
  }
  const uint64_t slot_offset =
      base_ + kBlockSize + ((ckpt_gen_ + 1) % 2) * slot_size_;
  auto alive = alive_;
  ssd_->Write(slot_offset, std::move(blob),
              [this, alive, done = std::move(done)](Status s) mutable {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    ssd_->Flush([this, alive, done = std::move(done)](Status s2) {
      if (!*alive) {
        return;
      }
      if (s2.ok()) {
        ckpt_gen_++;
        c_checkpoints_->Inc();
      }
      done(s2);
    });
  });
}

void WriteCache::Recover(std::function<void(Status)> done) {
  auto alive = alive_;
  ssd_->Read(base_, kBlockSize,
             [this, alive, done = std::move(done)](Result<Buffer> r) mutable {
    if (!*alive) {
      return;
    }
    if (!r.ok()) {
      done(r.status());
      return;
    }
    std::vector<uint8_t> sb = r->ToBytes();
    Decoder dec(sb);
    if (dec.GetU32() != kSuperMagic || dec.GetU32() != kVersion) {
      done(Status::Corruption("bad write-cache superblock"));
      return;
    }
    if (dec.GetU64() != base_ || dec.GetU64() != size_ ||
        dec.GetU64() != slot_size_ || dec.GetU64() != log_base_) {
      done(Status::Corruption("write-cache geometry mismatch"));
      return;
    }
    const size_t crc_pos = dec.position();
    const uint32_t crc = dec.GetU32();
    std::vector<uint8_t> check = sb;
    for (int i = 0; i < 4; i++) {
      check[crc_pos + static_cast<size_t>(i)] = 0;
    }
    if (Crc32c(check.data(), check.size()) != crc) {
      done(Status::Corruption("write-cache superblock CRC mismatch"));
      return;
    }

    // Read both checkpoint slots; keep the newest valid one.
    ssd_->Read(base_ + kBlockSize, 2 * slot_size_,
               [this, alive, done = std::move(done)](Result<Buffer> slots) {
      if (!*alive) {
        return;
      }
      if (!slots.ok()) {
        done(slots.status());
        return;
      }
      uint64_t best_gen = 0;
      int best_slot = -1;
      for (int s = 0; s < 2; s++) {
        uint64_t gen = 0;
        WriteCache probe(host_, base_, size_, costs_);
        Buffer blob = slots->Slice(static_cast<uint64_t>(s) * slot_size_,
                                   slot_size_);
        if (probe.LoadCheckpointBlob(blob, &gen).ok() && gen > best_gen) {
          best_gen = gen;
          best_slot = s;
        }
      }
      if (best_slot < 0) {
        done(Status::Corruption("no valid write-cache checkpoint"));
        return;
      }
      uint64_t gen = 0;
      Buffer blob = slots->Slice(static_cast<uint64_t>(best_slot) * slot_size_,
                                 slot_size_);
      const Status s = LoadCheckpointBlob(blob, &gen);
      if (!s.ok()) {
        done(s);
        return;
      }
      ckpt_gen_ = gen;
      auto st = std::make_shared<ReplayState>();
      st->pos = head_;
      st->expected_seq = next_seq_;
      st->done = std::move(done);
      ReplayStep(st);
    });
  });
}

// Replay rules (§3.3): records must appear at the expected position with the
// expected sequence number; any mismatch first probes the wrap position
// (log_base_) once — the writer wraps when a record does not fit contiguously
// — and otherwise ends the log. Stale data from a previous lap fails the
// sequence check because sequence numbers are strictly increasing.
void WriteCache::ReplayMiss(const std::shared_ptr<ReplayState>& st) {
  if (!st->wrapped && st->pos != log_base_) {
    st->wrapped = true;
    st->fail_pos = st->pos;
    st->pos = log_base_;
    ReplayStep(st);
    return;
  }
  // End of log. If we got here via a failed wrap probe, the writer never
  // wrapped and the true head is the pre-wrap position.
  head_ = st->wrapped ? st->fail_pos : st->pos;
  next_seq_ = st->expected_seq;
  next_apply_seq_ = st->expected_seq;
  st->done(Status::Ok());
}

void WriteCache::ReplayStep(std::shared_ptr<ReplayState> st) {
  const uint64_t region_end = base_ + size_;
  if (st->pos + 2 * kBlockSize > region_end) {
    ReplayMiss(st);
    return;
  }
  auto alive = alive_;
  ssd_->Read(st->pos, kBlockSize,
             [this, alive, st](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    if (!r.ok()) {
      st->done(r.status());
      return;
    }
    JournalRecord rec;
    uint64_t data_len = 0;
    if (!DecodeJournalHeader(*r, &rec, &data_len, volume_limit_).ok() ||
        rec.seq != st->expected_seq ||
        st->pos + kBlockSize + data_len > base_ + size_ ||
        (data_len == 0 && !rec.is_trim)) {
      ReplayMiss(st);
      return;
    }
    if (rec.is_trim) {
      // Trim records are a bare header; nothing to verify beyond its CRC.
      ReplayAccept(st, std::move(rec), 0);
      return;
    }
    // Header valid; verify the payload before accepting the record.
    ssd_->Read(st->pos + kBlockSize, data_len,
               [this, alive, st, rec = std::move(rec),
                data_len](Result<Buffer> dr) mutable {
      if (!*alive) {
        return;
      }
      if (!dr.ok() || !VerifyJournalData(rec, *dr).ok()) {
        ReplayMiss(st);
        return;
      }
      ReplayAccept(st, std::move(rec), data_len);
    });
  });
}

void WriteCache::ReplayAccept(const std::shared_ptr<ReplayState>& st,
                              JournalRecord rec, uint64_t data_len) {
  RecordMeta meta;
  meta.seq = rec.seq;
  meta.offset = st->pos;
  meta.total_len = kBlockSize + data_len;
  // A record found at the wrap position means the writer wrapped here; the
  // skipped tail of the region counts against the record's footprint.
  const uint64_t gap =
      st->wrapped ? (base_ + size_) - st->fail_pos : st->pending_gap;
  meta.footprint = gap + meta.total_len;
  meta.max_batch_seq = rec.batch_seq;
  meta.is_trim = rec.is_trim;
  meta.extents = rec.extents;

  if (rec.is_trim) {
    for (const auto& e : rec.extents) {
      map_.Remove(e.vlba, e.len, nullptr);
      trim_map_.Update(e.vlba, e.len, ObjTarget{rec.batch_seq, e.vlba},
                       nullptr);
    }
  } else {
    uint64_t data_plba = st->pos + kBlockSize;
    for (const auto& e : rec.extents) {
      map_.Update(e.vlba, e.len, SsdTarget{data_plba}, nullptr);
      if (!trim_map_.empty()) {
        trim_map_.Remove(e.vlba, e.len, nullptr);
      }
      data_plba += e.len;
    }
  }
  used_ += meta.footprint;
  const uint64_t next_pos = st->pos + meta.total_len;
  records_.push_back(std::move(meta));

  st->pos = next_pos;
  st->expected_seq++;
  st->wrapped = false;
  st->fail_pos = 0;
  st->pending_gap = 0;
  ReplayStep(st);
}

std::vector<WriteCache::RecordMeta> WriteCache::RecordsAfterBatch(
    uint64_t synced_seq) const {
  std::vector<RecordMeta> out;
  for (const auto& rec : records_) {
    if (rec.max_batch_seq > synced_seq) {
      out.push_back(rec);
    }
  }
  return out;
}

void WriteCache::ReadRecordPayload(const RecordMeta& rec,
                                   std::function<void(Result<Buffer>)> done) {
  ReadData(rec.offset + kBlockSize, rec.total_len - kBlockSize,
           std::move(done));
}

}  // namespace lsvd
