// Asynchronous volume replication (paper §4.8).
//
// Because the backend log is a stream of immutable named objects, a volume
// replicates by lazily copying objects from the primary store to a replica
// store. Objects are copied once they are older than `min_age` (first seen
// at least that long ago); objects garbage-collected before they age in are
// simply never copied — the paper's experiment shows ~18 GB of 103 GB
// avoided this way. The replica may receive objects out of order; mounting
// it uses the standard recovery prefix rule, which the paper found
// sufficient to produce a consistent disk.
#ifndef SRC_LSVD_REPLICATOR_H_
#define SRC_LSVD_REPLICATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/objstore/object_store.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace lsvd {

struct ReplicatorConfig {
  std::string volume_name = "vol";
  Nanos min_age = 60 * kSecond;        // copy objects older than this
  Nanos poll_interval = 5 * kSecond;
  // Per-object retry budget for transient primary GETs / replica PUTs,
  // with exponential backoff and jitter (cf. BackendRetryPolicy). An object
  // whose budget is exhausted is retried from scratch on a later poll.
  int max_attempts = 5;
  Nanos initial_backoff = 10 * kMillisecond;
  Nanos max_backoff = 2 * kSecond;
  double jitter = 0.25;
  uint64_t retry_seed = 0x5EED;
};

struct ReplicatorStats {
  uint64_t objects_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t objects_skipped_deleted = 0;  // GC won the race
  uint64_t retries = 0;
  uint64_t copy_failures = 0;  // copies that exhausted their retry budget
};

class Replicator {
 public:
  Replicator(Simulator* sim, ObjectStore* primary, ObjectStore* replica,
             ReplicatorConfig config, MetricsRegistry* metrics = nullptr,
             const std::string& prefix = "replicator");
  // Sharded volume (DESIGN.md §9): each shard's object stream is copied
  // independently from primaries[i] to replicas[i]. The vectors must have
  // equal, non-zero length matching the volume's stripe width.
  Replicator(Simulator* sim, std::vector<ObjectStore*> primaries,
             std::vector<ObjectStore*> replicas, ReplicatorConfig config,
             MetricsRegistry* metrics = nullptr,
             const std::string& prefix = "replicator");
  ~Replicator() { Stop(); }

  // Starts periodic polling; call Stop() to let the simulator drain.
  void Start();
  void Stop() { *alive_ = false; }

  // One scan-and-copy round; `done` fires when every copy it started
  // finished. Usable directly for deterministic tests.
  void PollOnce(std::function<void()> done);

  // The replica cluster's consistency point: the highest data-object seq S
  // such that every object 1..S is present on its assigned replica shard.
  // Mounting the replica with the prefix rule yields the image through S, so
  // this is the min consistency point across the shard streams.
  uint64_t ConsistencyPoint() const;

  size_t shard_count() const { return shards_.size(); }
  ReplicatorStats stats() const;

 private:
  // Per-shard copy stream: its store pair plus the first-seen/copied
  // tracking, which must be shard-local because shards share one namespace.
  struct ShardStream {
    ObjectStore* primary = nullptr;
    ObjectStore* replica = nullptr;
    std::map<std::string, Nanos> first_seen;
    std::set<std::string> copied;
  };

  void ScheduleNext();
  Nanos RetryBackoff(int attempt);
  // One object's GET-then-PUT with per-stage retries; always calls `done`
  // exactly once.
  void CopyObject(size_t shard, const std::string& name, int attempt,
                  std::function<void()> done);

  Simulator* sim_;
  std::vector<ShardStream> shards_;
  ReplicatorConfig config_;
  Rng retry_rng_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Counter* c_objects_copied_;
  Counter* c_bytes_copied_;
  Counter* c_objects_skipped_deleted_;
  Counter* c_retries_;
  Counter* c_copy_failures_;
  // Object creation (first seen by the poller) -> copy committed to the
  // replica; bounded below by min_age.
  Histogram* h_copy_lag_us_;
  // Last member: destroyed first, so gauge callbacks never outlive the state
  // they read (the shared host registry outlives detached volumes).
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_REPLICATOR_H_
