// Compressed two-level extent map for huge thin volumes (DESIGN.md §13).
//
// The flat ExtentMap keeps every translation in a std::map node (~88 bytes
// per extent), which caps volume size × volume count per host. This
// implementation splits the address space into fixed-span *leaf pages* keyed
// by a small resident directory. Each page lives in one of two forms:
//
//  - packed: a run-length varint encoding (~6-14 bytes per extent) — the
//    same representation a checkpoint would hold, kept as the page's backing
//    store;
//  - live: an ordinary ExtentMap for the page's span, materialized lazily on
//    first access (a "page load", counted) and packed back down when the
//    resident budget is exceeded (LRU eviction).
//
// With `resident_budget = 0` every touched page stays live forever, so the
// map behaves exactly like the flat one plus a packed shadow. A non-zero
// budget bounds the live bytes; lookups that miss pay the unpack cost, which
// fig22_thin_maps reports rather than hides.
//
// Operations that span page boundaries are split per page; Lookup() and
// Extents() re-merge target-contiguous results across the splits so callers
// observe the same segments the flat map would produce.
#ifndef SRC_LSVD_PAGED_EXTENT_MAP_H_
#define SRC_LSVD_PAGED_EXTENT_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/lsvd/extent_map.h"

namespace lsvd {

namespace paged_detail {

inline void PutVar(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline uint64_t GetVar(const uint8_t** p, const uint8_t* end) {
  uint64_t v = 0;
  int shift = 0;
  while (*p < end) {
    const uint8_t byte = *(*p)++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
  assert(false && "truncated varint in packed map page");
  return v;
}

inline void PackTarget(std::vector<uint8_t>* out, const SsdTarget& t) {
  PutVar(out, t.plba);
}
inline void UnpackTarget(const uint8_t** p, const uint8_t* end, SsdTarget* t) {
  t->plba = GetVar(p, end);
}
inline void PackTarget(std::vector<uint8_t>* out, const ObjTarget& t) {
  PutVar(out, t.seq);
  PutVar(out, t.offset);
}
inline void UnpackTarget(const uint8_t** p, const uint8_t* end, ObjTarget* t) {
  t->seq = GetVar(p, end);
  t->offset = GetVar(p, end);
}

}  // namespace paged_detail

template <typename T>
class PagedExtentMap final : public ExtentMapIface<T> {
 public:
  using Extent = MapExtent<T>;
  using Segment = MapSegment<T>;
  using SegmentVec = typename ExtentMapIface<T>::SegmentVec;
  using ExtentVec = typename ExtentMapIface<T>::ExtentVec;
  using ExtentMapIface<T>::Lookup;  // keep the 2-arg convenience form visible

  static constexpr uint64_t kDefaultPageSpan = 256ull * 1024 * 1024;

  explicit PagedExtentMap(uint64_t resident_budget_bytes = 0,
                          uint64_t page_span = kDefaultPageSpan)
      : budget_(resident_budget_bytes), span_(page_span) {
    assert(span_ > 0);
  }

  void Update(uint64_t start, uint64_t len, T target,
              ExtentVec* displaced) override {
    if (displaced != nullptr) {
      displaced->clear();
    }
    ForEachPageRange(start, len, [&](uint64_t s, uint64_t l) {
      Page& pg = Resident(s / span_);
      ApplyDelta(pg, [&](ExtentMap<T>& m) {
        if (displaced != nullptr) {
          scratch_.clear();
          m.Update(s, l, target.Advanced(s - start), &scratch_);
          for (const auto& e : scratch_) {
            displaced->push_back(e);
          }
        } else {
          m.Update(s, l, target.Advanced(s - start), nullptr);
        }
      });
    });
    MaybeEvict();
  }

  void Remove(uint64_t start, uint64_t len, ExtentVec* removed) override {
    if (removed != nullptr) {
      removed->clear();
    }
    ForEachPageRange(start, len, [&](uint64_t s, uint64_t l) {
      auto it = pages_.find(s / span_);
      if (it == pages_.end()) {
        return;  // nothing mapped in this page
      }
      Page& pg = Resident(it);
      ApplyDelta(pg, [&](ExtentMap<T>& m) {
        if (removed != nullptr) {
          scratch_.clear();
          m.Remove(s, l, &scratch_);
          for (const auto& e : scratch_) {
            removed->push_back(e);
          }
        } else {
          m.Remove(s, l, nullptr);
        }
      });
    });
    MaybeEvict();
  }

  void Lookup(uint64_t start, uint64_t len, SegmentVec* out) const override {
    out->clear();
    ForEachPageRange(start, len, [&](uint64_t s, uint64_t l) {
      auto it = pages_.find(s / span_);
      if (it == pages_.end()) {
        EmitMerged(out, Segment{s, l, std::nullopt});
        return;
      }
      const Page& pg = Resident(it);
      page_scratch_.clear();
      pg.live->Lookup(s, l, &page_scratch_);
      for (const auto& seg : page_scratch_) {
        EmitMerged(out, seg);
      }
    });
    MaybeEvict();
  }

  std::optional<T> LookupOne(uint64_t addr) const override {
    auto it = pages_.find(addr / span_);
    if (it == pages_.end()) {
      return std::nullopt;
    }
    auto result = Resident(it).live->LookupOne(addr);
    MaybeEvict();
    return result;
  }

  void Clear() override {
    pages_.clear();
    mapped_ = 0;
    extents_ = 0;
    live_bytes_ = 0;
  }

  size_t extent_count() const override {
    return static_cast<size_t>(extents_);
  }
  uint64_t mapped_bytes() const override { return mapped_; }

  std::vector<Extent> Extents() const override {
    std::vector<Extent> out;
    out.reserve(extents_);
    for (const auto& [idx, pg] : pages_) {
      const auto emit = [&out](const Extent& e) {
        // Re-merge extents split at a page boundary so the snapshot is
        // byte-identical to what the flat map would produce.
        if (!out.empty()) {
          Extent& back = out.back();
          if (back.start + back.len == e.start &&
              back.target.Advanced(back.len) == e.target) {
            back.len += e.len;
            return;
          }
        }
        out.push_back(e);
      };
      if (pg.live != nullptr) {
        for (const auto& e : pg.live->Extents()) {
          emit(e);
        }
      } else {
        DecodePacked(idx, pg.packed, emit);
      }
    }
    return out;
  }

  // Total in-process bytes: packed backing store + live pages + directory.
  uint64_t MemoryBytes() const override {
    uint64_t packed = 0;
    for (const auto& [idx, pg] : pages_) {
      packed += pg.packed.capacity() + kPageOverhead;
    }
    return sizeof(*this) + packed + live_bytes_;
  }

  // Bytes held by live (unpacked) pages — what the resident budget bounds.
  uint64_t ResidentBytes() const { return live_bytes_; }
  // Bytes of the packed (checkpoint-form) representation alone.
  uint64_t PackedBytes() const {
    uint64_t packed = 0;
    for (const auto& [idx, pg] : pages_) {
      packed += pg.packed.size();
    }
    return packed;
  }
  uint64_t page_loads() const { return page_loads_; }
  uint64_t page_evictions() const { return page_evictions_; }
  size_t page_count() const { return pages_.size(); }
  uint64_t page_span() const { return span_; }

  void SetResidentBudget(uint64_t bytes) {
    budget_ = bytes;
    MaybeEvict();
  }

  // Packs every live page down to its compressed form (e.g. before taking a
  // memory measurement or a checkpoint).
  void PackAll() const {
    for (auto& [idx, pg] : pages_) {
      PackPage(idx, &pg);
    }
  }

 private:
  static constexpr uint64_t kPageOverhead = 64;  // directory node estimate

  struct Page {
    std::vector<uint8_t> packed;          // current iff live == nullptr or !dirty
    std::unique_ptr<ExtentMap<T>> live;   // unpacked form when resident
    uint64_t mapped = 0;
    uint64_t extents = 0;
    uint64_t last_use = 0;
    bool dirty = false;  // live has changes the packed form lacks
  };

  template <typename Fn>
  void ForEachPageRange(uint64_t start, uint64_t len, Fn&& fn) const {
    while (len > 0) {
      const uint64_t page_end = (start / span_ + 1) * span_;
      const uint64_t l = std::min(len, page_end - start);
      fn(start, l);
      start += l;
      len -= l;
    }
  }

  Page& Resident(uint64_t idx) const {
    auto it = pages_.find(idx);
    if (it == pages_.end()) {
      it = pages_.emplace(idx, Page{}).first;
      it->second.live = std::make_unique<ExtentMap<T>>();
      live_bytes_ += it->second.live->MemoryBytes();
    }
    return Resident(it);
  }

  Page& Resident(typename std::map<uint64_t, Page>::iterator it) const {
    Page& pg = it->second;
    pg.last_use = ++use_tick_;
    if (pg.live == nullptr) {
      pg.live = std::make_unique<ExtentMap<T>>();
      const uint8_t* p = pg.packed.data();
      const uint8_t* end = p + pg.packed.size();
      uint64_t pos = it->first * span_;
      const uint64_t count = p < end ? paged_detail::GetVar(&p, end) : 0;
      for (uint64_t i = 0; i < count; i++) {
        pos += paged_detail::GetVar(&p, end);
        const uint64_t elen = paged_detail::GetVar(&p, end);
        T target{};
        paged_detail::UnpackTarget(&p, end, &target);
        pg.live->Update(pos, elen, target, nullptr);
        pos += elen;
      }
      pg.dirty = false;
      page_loads_++;
      live_bytes_ += pg.live->MemoryBytes();
    }
    return pg;
  }

  // Runs a mutation against the page's live map, keeping the aggregate
  // counters in sync via before/after deltas.
  template <typename Fn>
  void ApplyDelta(Page& pg, Fn&& fn) const {
    const uint64_t mem_before = pg.live->MemoryBytes();
    fn(*pg.live);
    mapped_ += pg.live->mapped_bytes() - pg.mapped;
    extents_ += pg.live->extent_count() - pg.extents;
    live_bytes_ += pg.live->MemoryBytes() - mem_before;
    pg.mapped = pg.live->mapped_bytes();
    pg.extents = pg.live->extent_count();
    pg.dirty = true;
  }

  void PackPage(uint64_t idx, Page* pg) const {
    if (pg->live == nullptr) {
      return;
    }
    if (pg->dirty) {
      std::vector<uint8_t> packed;
      const auto extents = pg->live->Extents();
      paged_detail::PutVar(&packed, extents.size());
      uint64_t prev_end = idx * span_;
      for (const auto& e : extents) {
        paged_detail::PutVar(&packed, e.start - prev_end);
        paged_detail::PutVar(&packed, e.len);
        paged_detail::PackTarget(&packed, e.target);
        prev_end = e.start + e.len;
      }
      packed.shrink_to_fit();  // capacity counts toward MemoryBytes()
      pg->packed = std::move(packed);
      pg->dirty = false;
    }
    live_bytes_ -= pg->live->MemoryBytes();
    pg->live.reset();
  }

  template <typename Emit>
  void DecodePacked(uint64_t idx, const std::vector<uint8_t>& packed,
                    Emit&& emit) const {
    const uint8_t* p = packed.data();
    const uint8_t* end = p + packed.size();
    uint64_t pos = idx * span_;
    const uint64_t count = p < end ? paged_detail::GetVar(&p, end) : 0;
    for (uint64_t i = 0; i < count; i++) {
      pos += paged_detail::GetVar(&p, end);
      const uint64_t elen = paged_detail::GetVar(&p, end);
      T target{};
      paged_detail::UnpackTarget(&p, end, &target);
      emit(Extent{pos, elen, target});
      pos += elen;
    }
  }

  static void EmitMerged(SegmentVec* out, const Segment& seg) {
    if (!out->empty()) {
      Segment& back = (*out)[out->size() - 1];
      if (back.start + back.len == seg.start) {
        if (!back.target.has_value() && !seg.target.has_value()) {
          back.len += seg.len;
          return;
        }
        if (back.target.has_value() && seg.target.has_value() &&
            back.target->Advanced(back.len) == *seg.target) {
          back.len += seg.len;
          return;
        }
      }
    }
    out->push_back(seg);
  }

  void MaybeEvict() const {
    if (budget_ == 0) {
      return;
    }
    while (live_bytes_ > budget_) {
      auto victim = pages_.end();
      for (auto it = pages_.begin(); it != pages_.end(); ++it) {
        if (it->second.live == nullptr) {
          continue;
        }
        if (victim == pages_.end() ||
            it->second.last_use < victim->second.last_use) {
          victim = it;
        }
      }
      if (victim == pages_.end()) {
        break;
      }
      PackPage(victim->first, &victim->second);
      page_evictions_++;
      // Empty pages need no backing store at all once packed.
      if (victim->second.extents == 0) {
        pages_.erase(victim);
      }
    }
  }

  uint64_t budget_ = 0;
  const uint64_t span_;
  // The directory and counters are mutable because const lookups materialize
  // (and may evict) pages — semantically the map is unchanged.
  mutable std::map<uint64_t, Page> pages_;
  mutable uint64_t mapped_ = 0;
  mutable uint64_t extents_ = 0;
  mutable uint64_t live_bytes_ = 0;
  mutable uint64_t use_tick_ = 0;
  mutable uint64_t page_loads_ = 0;
  mutable uint64_t page_evictions_ = 0;
  mutable ExtentVec scratch_;
  mutable SegmentVec page_scratch_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_PAGED_EXTENT_MAP_H_
