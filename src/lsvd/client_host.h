// Client machine model: the host every LSVD volume (or baseline cache) on a
// node shares.
//
// Owns the cache SSD, the network link to the backend, and two CPU service
// queues modeling the prototype's split (§3.7): the kernel device-mapper
// worker and the userspace daemon. Multiple virtual disks on one host share
// all of these — which is what makes the single client machine the
// bottleneck in the paper's Figure 12 load test.
//
// A host is explicitly multi-tenant (§4.3's hypervisor hosting N volumes):
//   - SSD space is carved out by a real region allocator (alloc + free +
//     owner labels), not a bump pointer;
//   - a QosScheduler applies per-volume token-bucket admission plus an
//     optional host-wide fair-share pool;
//   - a PutScheduler bounds outstanding backend PUTs host-wide and grants
//     freed slots round-robin so one volume's writeback cannot starve the
//     rest.
// Attached volumes report their traffic counters so the host can export
// aggregate gauges ("host.*", see docs/METRICS.md).
#ifndef SRC_LSVD_CLIENT_HOST_H_
#define SRC_LSVD_CLIENT_HOST_H_

#include <map>
#include <memory>
#include <string>

#include "src/blockdev/sim_ssd.h"
#include "src/lsvd/put_scheduler.h"
#include "src/lsvd/qos.h"
#include "src/lsvd/ssd_region_allocator.h"
#include "src/sim/net_link.h"
#include "src/sim/server_queue.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace lsvd {

struct ClientHostConfig {
  uint64_t ssd_capacity = 800 * kGiB;  // Intel DC P3700 (Table 1)
  SsdParams ssd = SsdParams::P3700();
  NetParams net;
  // Worker parallelism for the kernel- and user-level halves.
  int kernel_workers = 2;
  int user_workers = 2;
  // Host-wide QoS pool that fair_share volumes draw from (0 = unlimited).
  uint64_t fair_share_iops = 0;
  uint64_t fair_share_bytes_per_sec = 0;
  double fair_share_burst_seconds = 0.1;
  // Max outstanding backend PUTs across all volumes (0 = per-shard windows
  // only, the single-tenant behavior). A sharded volume (DESIGN.md §9)
  // counts every shard's in-flight PUTs against this one budget.
  int host_put_window = 0;
  // Root of the host's aggregate gauge names. The default keeps the
  // historical single-host names; a fleet (src/fleet) sets "host.<i>" so M
  // hosts can share one registry without colliding (docs/METRICS.md).
  std::string metric_prefix = "host";
};

class ClientHost {
 public:
  // Per-volume traffic counters a volume exposes at attach time so the host
  // can sum them into aggregate gauges without depending on LsvdDisk.
  struct VolumeCounters {
    const Counter* writes = nullptr;
    const Counter* write_bytes = nullptr;
    const Counter* reads = nullptr;
    const Counter* read_bytes = nullptr;
  };

  // With a null registry the host owns a private one (metrics()), same
  // convention as every other component.
  ClientHost(Simulator* sim, ClientHostConfig config,
             MetricsRegistry* metrics = nullptr)
      : sim_(sim),
        config_(config),
        ssd_(sim, config.ssd_capacity, config.ssd),
        link_(sim, config.net),
        kernel_cpu_(sim, config.kernel_workers),
        user_cpu_(sim, config.user_workers),
        regions_(0, config.ssd_capacity),
        qos_(sim, config.fair_share_iops, config.fair_share_bytes_per_sec,
             config.fair_share_burst_seconds),
        put_scheduler_(sim, config.host_put_window) {
    if (metrics == nullptr) {
      owned_metrics_ = std::make_unique<MetricsRegistry>();
      metrics = owned_metrics_.get();
    }
    metrics_ = metrics;
    const std::string& p = config_.metric_prefix;
    callback_guard_.Register(metrics_, p + ".volumes", [this] {
      return static_cast<double>(volumes_.size());
    });
    callback_guard_.Register(metrics_, p + ".ssd.allocated_bytes", [this] {
      return static_cast<double>(regions_.allocated_bytes());
    });
    callback_guard_.Register(metrics_, p + ".ssd.free_bytes", [this] {
      return static_cast<double>(regions_.free_bytes());
    });
    callback_guard_.Register(metrics_, p + ".qos.queued", [this] {
      return static_cast<double>(qos_.queued());
    });
    callback_guard_.Register(metrics_, p + ".put_slots.held", [this] {
      return static_cast<double>(put_scheduler_.held());
    });
    callback_guard_.Register(metrics_, p + ".writes", [this] {
      return SumCounters(&VolumeCounters::writes);
    });
    callback_guard_.Register(metrics_, p + ".write_bytes", [this] {
      return SumCounters(&VolumeCounters::write_bytes);
    });
    callback_guard_.Register(metrics_, p + ".reads", [this] {
      return SumCounters(&VolumeCounters::reads);
    });
    callback_guard_.Register(metrics_, p + ".read_bytes", [this] {
      return SumCounters(&VolumeCounters::read_bytes);
    });
  }

  ClientHost(const ClientHost&) = delete;
  ClientHost& operator=(const ClientHost&) = delete;

  Simulator* sim() { return sim_; }
  SimSsd* ssd() { return &ssd_; }
  NetLink* link() { return &link_; }
  ServerQueue* kernel_cpu() { return &kernel_cpu_; }
  ServerQueue* user_cpu() { return &user_cpu_; }
  SsdRegionAllocator* ssd_regions() { return &regions_; }
  QosScheduler* qos() { return &qos_; }
  PutScheduler* put_scheduler() { return &put_scheduler_; }
  MetricsRegistry& metrics() { return *metrics_; }

  // Carves a block-aligned SSD region out for a cache. Regions survive their
  // owner object (crash-recovery re-opens attach to the same bases); truly
  // finished owners return space via ssd_regions()->Free().
  Result<uint64_t> AllocRegion(uint64_t size,
                               const std::string& owner = "anonymous") {
    return regions_.Allocate(size, owner);
  }

  // Volume registry for host aggregates; returns an attach id.
  int AttachVolume(const std::string& name, VolumeCounters counters) {
    const int id = next_volume_id_++;
    volumes_.emplace(id, AttachedVolume{name, counters});
    return id;
  }
  void DetachVolume(int id) { volumes_.erase(id); }
  size_t volume_count() const { return volumes_.size(); }

 private:
  struct AttachedVolume {
    std::string name;
    VolumeCounters counters;
  };

  double SumCounters(const Counter* VolumeCounters::* member) const {
    double sum = 0;
    for (const auto& [id, v] : volumes_) {
      const Counter* c = v.counters.*member;
      if (c != nullptr) {
        sum += static_cast<double>(c->value());
      }
    }
    return sum;
  }

  Simulator* sim_;
  ClientHostConfig config_;
  SimSsd ssd_;
  NetLink link_;
  ServerQueue kernel_cpu_;
  ServerQueue user_cpu_;
  SsdRegionAllocator regions_;
  QosScheduler qos_;
  PutScheduler put_scheduler_;
  std::map<int, AttachedVolume> volumes_;
  int next_volume_id_ = 0;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  // Last member: destroyed first, so the host.* gauges never outlive the
  // state they read if the registry outlives the host.
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_CLIENT_HOST_H_
