// Client machine model: the host every LSVD volume (or baseline cache) on a
// node shares.
//
// Owns the cache SSD, the network link to the backend, and two CPU service
// queues modeling the prototype's split (§3.7): the kernel device-mapper
// worker and the userspace daemon. Multiple virtual disks on one host share
// all of these — which is what makes the single client machine the
// bottleneck in the paper's Figure 12 load test.
#ifndef SRC_LSVD_CLIENT_HOST_H_
#define SRC_LSVD_CLIENT_HOST_H_

#include <memory>

#include "src/blockdev/sim_ssd.h"
#include "src/sim/net_link.h"
#include "src/sim/server_queue.h"
#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace lsvd {

struct ClientHostConfig {
  uint64_t ssd_capacity = 800 * kGiB;  // Intel DC P3700 (Table 1)
  SsdParams ssd = SsdParams::P3700();
  NetParams net;
  // Worker parallelism for the kernel- and user-level halves.
  int kernel_workers = 2;
  int user_workers = 2;
};

class ClientHost {
 public:
  ClientHost(Simulator* sim, ClientHostConfig config)
      : sim_(sim),
        config_(config),
        ssd_(sim, config.ssd_capacity, config.ssd),
        link_(sim, config.net),
        kernel_cpu_(sim, config.kernel_workers),
        user_cpu_(sim, config.user_workers) {}

  Simulator* sim() { return sim_; }
  SimSsd* ssd() { return &ssd_; }
  NetLink* link() { return &link_; }
  ServerQueue* kernel_cpu() { return &kernel_cpu_; }
  ServerQueue* user_cpu() { return &user_cpu_; }

  // Carves a block-aligned SSD region out for a cache. Regions are never
  // returned (hosts live for a whole experiment).
  Result<uint64_t> AllocRegion(uint64_t size) {
    if (size % kBlockSize != 0) {
      return Status::InvalidArgument("region size must be block aligned");
    }
    if (next_region_ + size > ssd_.capacity()) {
      return Status::ResourceExhausted("SSD regions exhausted");
    }
    const uint64_t base = next_region_;
    next_region_ += size;
    return base;
  }

 private:
  Simulator* sim_;
  ClientHostConfig config_;
  SimSsd ssd_;
  NetLink link_;
  ServerQueue kernel_cpu_;
  ServerQueue user_cpu_;
  uint64_t next_region_ = 0;
};

}  // namespace lsvd

#endif  // SRC_LSVD_CLIENT_HOST_H_
