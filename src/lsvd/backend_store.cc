#include "src/lsvd/backend_store.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace lsvd {
namespace {

// Cap on extents per object so the encoded header stays within the 256 KiB
// window recovery and the garbage collector read.
constexpr size_t kMaxObjectExtents = 6000;
// Window used when fetching an object's header.
constexpr uint64_t kHeaderReadWindow = 256 * kKiB;

}  // namespace

BackendStore::BackendStore(ClientHost* host, ObjectStore* store,
                           WriteCache* cache, const LsvdConfig& config,
                           MetricsRegistry* metrics, const std::string& prefix)
    : BackendStore(host, std::vector<ObjectStore*>{store}, cache, config,
                   metrics, prefix) {}

BackendStore::BackendStore(ClientHost* host, std::vector<ObjectStore*> stores,
                           WriteCache* cache, const LsvdConfig& config,
                           MetricsRegistry* metrics, const std::string& prefix)
    : host_(host), cache_(cache), config_(config),
      retry_rng_(config.retry.seed) {
  assert(!stores.empty());
  config_.backend_shards = static_cast<int>(stores.size());
  shards_.resize(stores.size());
  for (size_t i = 0; i < stores.size(); i++) {
    shards_[i].store = stores[i];
    shards_[i].retry = i < config_.shard_retry.size() ? config_.shard_retry[i]
                                                      : config_.retry;
  }
  next_seq_ = config_.base_last_seq + 1;
  applied_seq_ = config_.base_last_seq;
  last_checkpoint_seq_ = config_.base_last_seq;
  for (size_t i = 0; i < shards_.size(); i++) {
    gc_policies_.push_back(GcPolicy::Create(
        GcPolicyForShard(config_.gc_policy, config_.gc_shard_policy, i)));
  }

  // Select the object-map implementation (DESIGN.md §13): the classic flat
  // map by default, or the compressed two-level paged map when a resident
  // budget is configured.
  if (config_.paged_map()) {
    paged_map_ = std::make_unique<PagedExtentMap<ObjTarget>>(
        config_.map_resident_bytes, config_.map_page_span);
    object_map_ = paged_map_.get();
  } else {
    object_map_ = &flat_map_;
  }

  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  metrics_prefix_ = prefix;
  c_client_bytes_ = metrics_->GetCounter(prefix + ".client_bytes");
  c_coalesced_bytes_ = metrics_->GetCounter(prefix + ".coalesced_bytes");
  c_objects_put_ = metrics_->GetCounter(prefix + ".objects_put");
  c_object_bytes_ = metrics_->GetCounter(prefix + ".object_bytes");
  c_payload_bytes_ = metrics_->GetCounter(prefix + ".payload_bytes");
  c_gc_objects_cleaned_ = metrics_->GetCounter(prefix + ".gc.objects_cleaned");
  c_gc_bytes_moved_ = metrics_->GetCounter(prefix + ".gc.bytes_moved");
  c_gc_cache_hits_ = metrics_->GetCounter(prefix + ".gc.cache_hits");
  c_objects_deleted_ = metrics_->GetCounter(prefix + ".objects_deleted");
  c_checkpoints_ = metrics_->GetCounter(prefix + ".checkpoints");
  c_deferred_deletes_ = metrics_->GetCounter(prefix + ".deferred_deletes");
  c_put_failures_ = metrics_->GetCounter(prefix + ".put_failures");
  c_retries_ = metrics_->GetCounter(prefix + ".retries");
  c_timeouts_ = metrics_->GetCounter(prefix + ".timeouts");
  c_gc_aborted_corrupt_ = metrics_->GetCounter(prefix + ".gc_aborted_corrupt");
  callback_guard_.Register(metrics_, prefix + ".degraded",
                           [this] { return degraded() ? 1.0 : 0.0; });
  h_open_to_seal_us_ = metrics_->GetHistogram(prefix + ".batch.open_to_seal_us");
  h_seal_to_commit_us_ =
      metrics_->GetHistogram(prefix + ".batch.seal_to_commit_us");
  callback_guard_.Register(metrics_, prefix + ".utilization",
                           [this] { return Utilization(); });
  callback_guard_.Register(metrics_, prefix + ".live_bytes", [this] {
    return static_cast<double>(live_bytes());
  });
  callback_guard_.Register(metrics_, prefix + ".total_bytes", [this] {
    return static_cast<double>(total_bytes());
  });
  callback_guard_.Register(metrics_, prefix + ".object_count", [this] {
    return static_cast<double>(object_count());
  });

  // Extended-GC metrics exist only when a non-default GC configuration is
  // active, so the long-standing default metric dumps stay unchanged.
  if (config_.gc_extended()) {
    callback_guard_.Register(metrics_, prefix + ".gc_policy", [this] {
      return static_cast<double>(config_.gc_policy);
    });
    c_gc_cold_objects_ = metrics_->GetCounter(prefix + ".gc.cold_objects");
    g_cost_benefit_score_ =
        metrics_->GetGauge(prefix + ".gc.cost_benefit_score");
    callback_guard_.Register(metrics_, prefix + ".gc.waf", [this] {
      const double client = static_cast<double>(c_client_bytes_->value());
      return client == 0.0
                 ? 0.0
                 : static_cast<double>(c_object_bytes_->value()) / client;
    });
  }

  // Seal-on-deadline metric exists only on adaptive-batching configs
  // (DESIGN.md §12), same gating discipline as the extended-GC block above.
  if (config_.batch_seal_deadline > 0) {
    c_deadline_seals_ = metrics_->GetCounter(prefix + ".deadline_seals");
  }

  // Paged-map metrics exist only when the compressed two-level map is active
  // (DESIGN.md §13), same gating discipline as the extended-GC block above.
  if (config_.paged_map()) {
    callback_guard_.Register(metrics_, prefix + ".map.resident_bytes", [this] {
      return static_cast<double>(paged_map_->ResidentBytes());
    });
    callback_guard_.Register(metrics_, prefix + ".map.packed_bytes", [this] {
      return static_cast<double>(paged_map_->PackedBytes());
    });
    callback_guard_.Register(metrics_, prefix + ".map.page_loads", [this] {
      return static_cast<double>(paged_map_->page_loads());
    });
    callback_guard_.Register(metrics_, prefix + ".map.page_evictions", [this] {
      return static_cast<double>(paged_map_->page_evictions());
    });
  }

  // Per-shard counters and gauges exist only on sharded volumes, so the
  // long-standing single-shard metric dumps stay unchanged.
  if (shards_.size() > 1) {
    for (size_t i = 0; i < shards_.size(); i++) {
      const std::string sp = prefix + ".shard" + std::to_string(i);
      shards_[i].c_objects_put = metrics_->GetCounter(sp + ".objects_put");
      shards_[i].c_object_bytes = metrics_->GetCounter(sp + ".object_bytes");
      shards_[i].c_put_failures = metrics_->GetCounter(sp + ".put_failures");
      shards_[i].c_retries = metrics_->GetCounter(sp + ".retries");
      callback_guard_.Register(metrics_, sp + ".degraded", [this, i] {
        return shards_[i].degraded ? 1.0 : 0.0;
      });
      callback_guard_.Register(metrics_, sp + ".outstanding_puts", [this, i] {
        return static_cast<double>(shards_[i].outstanding);
      });
      callback_guard_.Register(metrics_, sp + ".utilization", [this, i] {
        return ShardUtilization(i);
      });
    }
  }

  put_slot_id_ =
      host_->put_scheduler()->Register([this, alive = alive_]() {
        if (*alive) {
          PumpPuts();
        }
      });
}

BackendStore::~BackendStore() {
  *alive_ = false;
  // A killed store's completions never fire, so its held PUT slots must be
  // returned here or the host window would leak capacity.
  host_->put_scheduler()->Unregister(put_slot_id_);
}

BackendStoreStats BackendStore::stats() const {
  BackendStoreStats s;
  s.client_bytes = c_client_bytes_->value();
  s.coalesced_bytes = c_coalesced_bytes_->value();
  s.objects_put = c_objects_put_->value();
  s.object_bytes = c_object_bytes_->value();
  s.payload_bytes = c_payload_bytes_->value();
  s.gc_objects_cleaned = c_gc_objects_cleaned_->value();
  s.gc_bytes_copied = c_gc_bytes_moved_->value();
  s.gc_cache_hits = c_gc_cache_hits_->value();
  s.objects_deleted = c_objects_deleted_->value();
  s.checkpoints = c_checkpoints_->value();
  s.deferred_deletes = c_deferred_deletes_->value();
  s.put_failures = c_put_failures_->value();
  s.retries = c_retries_->value();
  s.timeouts = c_timeouts_->value();
  s.gc_aborted_corrupt = c_gc_aborted_corrupt_->value();
  return s;
}

std::string BackendStore::NameForSeq(uint64_t seq) const {
  if (!config_.base_image.empty() && seq <= config_.base_last_seq) {
    return DataObjectName(config_.base_image, seq);
  }
  return DataObjectName(config_.volume_name, seq);
}

uint64_t BackendStore::OpenBatchSeq(std::optional<OpenBatch>& slot) {
  if (!slot.has_value()) {
    slot = OpenBatch{};
    slot->seq = next_seq_++;
    slot->opened_at = host_->sim()->now();
    if (config_.batch_seal_deadline > 0) {
      ArmSealDeadline(&slot);
    }
  }
  return slot->seq;
}

void BackendStore::ArmSealDeadline(std::optional<OpenBatch>* slot) {
  const uint64_t seq = (*slot)->seq;
  auto alive = alive_;
  host_->sim()->After(config_.batch_seal_deadline, [this, alive, slot, seq] {
    if (!*alive) {
      return;
    }
    // The batch may have filled and sealed (and the slot reopened for a
    // younger batch) since the timer was armed; the sequence number
    // identifies the exact batch. Never seal a batch with no entries: an
    // empty object would advance the sync watermark past journal records
    // whose data the backend does not hold yet.
    if (!slot->has_value() || (*slot)->seq != seq ||
        (*slot)->entries.empty()) {
      return;
    }
    OpenBatch b = std::move(**slot);
    slot->reset();
    c_deadline_seals_->Inc();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  });
}

uint64_t BackendStore::AddWrite(uint64_t vlba, Buffer data) {
  // Hot/cold segregation (docs/GC.md): writes to regions the cache has not
  // seen overwritten recently go to a separate cold batch, so each object's
  // data shares a lifetime — hot objects die nearly whole, cold objects stay
  // nearly full, and both are cheap for the cleaner.
  const bool cold = config_.gc_hot_cold_split && cache_ != nullptr &&
                    cache_->WriteHeat(vlba) < config_.gc_heat_threshold;
  std::optional<OpenBatch>& slot = cold ? cold_batch_ : batch_;
  const uint64_t seq = OpenBatchSeq(slot);
  slot->cold = cold;
  c_client_bytes_->Inc(data.size());
  slot->raw_bytes += data.size();
  slot->entries.push_back(BatchEntry{vlba, std::move(data), std::nullopt});
  if (slot->raw_bytes >= config_.batch_bytes ||
      slot->entries.size() >= kMaxObjectExtents) {
    // Seal only the batch that filled; its sibling stream keeps batching
    // (each holds its own sequence number, so the in-order apply just waits
    // for the younger one — bounded by batch_max_age).
    OpenBatch b = std::move(*slot);
    slot.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
    SealGcBatch();
  }
  return seq;
}

uint64_t BackendStore::AddTrim(uint64_t vlba, uint64_t len) {
  assert(len > 0);
  // Seal-first protocol (see header comment): every write accepted before
  // this trim must land in an object with a smaller sequence number, so any
  // open client batch holding write entries seals now. Writes always follow
  // trims within a batch, so a non-trim tail means the batch holds writes.
  if (batch_.has_value() && !batch_->entries.empty() &&
      !batch_->entries.back().is_trim) {
    OpenBatch b = std::move(*batch_);
    batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  if (cold_batch_.has_value() && !cold_batch_->entries.empty()) {
    OpenBatch b = std::move(*cold_batch_);
    cold_batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  // The open GC batch needs no seal: its extents apply conditionally, so a
  // copy of data this trim punches finds no matching map entry and is
  // skipped no matter when its object commits.
  if (c_trim_extents_ == nullptr) {
    c_trim_extents_ = metrics_->GetCounter(metrics_prefix_ + ".trim_extents");
    c_trim_punched_bytes_ =
        metrics_->GetCounter(metrics_prefix_ + ".trim_punched_bytes");
  }
  c_trim_extents_->Inc();
  const uint64_t seq = OpenBatchSeq(batch_);
  BatchEntry e;
  e.vlba = vlba;
  e.is_trim = true;
  e.trim_len = len;
  batch_->entries.push_back(std::move(e));
  if (batch_->entries.size() >= kMaxObjectExtents) {
    OpenBatch b = std::move(*batch_);
    batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  return seq;
}

void BackendStore::Seal() {
  if (batch_.has_value() && !batch_->entries.empty()) {
    OpenBatch b = std::move(*batch_);
    batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  if (cold_batch_.has_value() && !cold_batch_->entries.empty()) {
    OpenBatch b = std::move(*cold_batch_);
    cold_batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  SealGcBatch();
}

// The GC batch receives its sequence number only here, at seal time: an open
// GC batch must never reserve a sequence number, or every later-sealed
// object would wait for it in the in-order map apply. Late sequencing is
// safe because GC extents apply conditionally.
void BackendStore::SealGcBatch() {
  if (gc_running_) {
    return;
  }
  SealGcBatchNow();
}

void BackendStore::SealGcBatchNow() {
  if (!gc_batch_.has_value() || gc_batch_->entries.empty()) {
    return;
  }
  OpenBatch b = std::move(*gc_batch_);
  gc_batch_.reset();
  b.seq = next_seq_++;
  b.generation = gc_batch_generation_;  // non-zero only when gc_extended()
  b.cold = true;
  gc_batch_generation_ = 0;
  std::vector<uint64_t> cleaned = std::move(gc_batch_cleaned_);
  gc_batch_cleaned_.clear();
  SealBatch(std::move(b), /*from_gc=*/true, std::move(cleaned));
}

void BackendStore::SealIfAged(Nanos max_age) {
  const Nanos now = host_->sim()->now();
  if (batch_.has_value() && !batch_->entries.empty() &&
      now - batch_->opened_at >= max_age) {
    OpenBatch b = std::move(*batch_);
    batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  if (cold_batch_.has_value() && !cold_batch_->entries.empty() &&
      now - cold_batch_->opened_at >= max_age) {
    OpenBatch b = std::move(*cold_batch_);
    cold_batch_.reset();
    SealBatch(std::move(b), /*from_gc=*/false, {});
  }
  if (gc_batch_.has_value() && !gc_batch_->entries.empty() &&
      now - gc_batch_->opened_at >= max_age) {
    SealGcBatch();
  }
}

void BackendStore::SealBatch(OpenBatch batch, bool from_gc,
                             std::vector<uint64_t> cleaned_seqs) {
  SealedObject sealed;
  sealed.seq = batch.seq;
  sealed.from_gc = from_gc;
  sealed.cleaned_seqs = std::move(cleaned_seqs);
  sealed.header.seq = batch.seq;
  sealed.header.generation = batch.generation;
  sealed.sealed_at = host_->sim()->now();
  if (batch.cold && c_gc_cold_objects_ != nullptr) {
    c_gc_cold_objects_->Inc();
  }
  if (batch.opened_at >= 0) {
    RecordLatencyUs(h_open_to_seal_us_, sealed.sealed_at - batch.opened_at);
  }

  Buffer payload;
  if (config_.coalesce_within_batch) {
    // Within-batch overwrite merging (§3.1): replay entries in arrival order
    // into a scratch extent map keyed by entry index; only surviving ranges
    // make it into the object. Cross-batch coalescing would break the
    // ordering guarantee, so it never happens.
    ExtentMap<ObjTarget> scratch;
    ExtentMap<ObjTarget>::ExtentVec displaced;
    for (size_t i = 0; i < batch.entries.size(); i++) {
      const auto& e = batch.entries[i];
      const uint64_t elen = e.is_trim ? e.trim_len : e.data.size();
      scratch.Update(e.vlba, elen, ObjTarget{i, 0}, &displaced);
      for (const auto& d : displaced) {
        // A write landing over an earlier same-batch trim shrinks the trim
        // extent; only displaced write bytes count as coalesced payload.
        if (!batch.entries[d.target.seq].is_trim) {
          c_coalesced_bytes_->Inc(d.len);
        }
      }
    }
    for (const auto& ext : scratch.Extents()) {
      const BatchEntry& src = batch.entries[ext.target.seq];
      ObjectExtent oe;
      oe.vlba = ext.start;
      oe.len = ext.len;
      if (src.is_trim) {
        oe.is_trim = true;
      } else if (src.expected.has_value()) {
        const ObjTarget adj = src.expected->Advanced(ext.start - src.vlba);
        oe.expected_seq = adj.seq;
        oe.expected_offset = adj.offset;
      }
      sealed.header.extents.push_back(oe);
      // ext.target.offset is the offset within the source entry where this
      // surviving range begins. Trim extents carry no payload.
      if (!src.is_trim) {
        payload.Append(src.data.Slice(ext.target.offset, ext.len));
      }
    }
  } else {
    for (const auto& e : batch.entries) {
      ObjectExtent oe;
      oe.vlba = e.vlba;
      oe.len = e.is_trim ? e.trim_len : e.data.size();
      if (e.is_trim) {
        oe.is_trim = true;
      } else if (e.expected.has_value()) {
        oe.expected_seq = e.expected->seq;
        oe.expected_offset = e.expected->offset;
      }
      sealed.header.extents.push_back(oe);
      if (!e.is_trim) {
        payload.Append(e.data);
      }
    }
  }

  bool has_trim = false;
  for (const auto& ext : sealed.header.extents) {
    has_trim |= ext.is_trim;
  }
  sealed.payload_bytes = payload.size();
  sealed.header.data_offset =
      DataObjectHeaderSize(sealed.header.extents.size(),
                           sealed.header.generation != 0, has_trim);
  sealed.object = EncodeDataObject(sealed.header, payload);
  put_queue_.push_back(std::move(sealed));
  PumpPuts();
}

bool BackendStore::degraded() const {
  for (const Shard& shard : shards_) {
    if (shard.degraded) {
      return true;
    }
  }
  return false;
}

Nanos BackendStore::RetryBackoff(const BackendRetryPolicy& p, int attempt) {
  double backoff = static_cast<double>(p.initial_backoff);
  for (int i = 1; i < attempt &&
                  backoff < static_cast<double>(p.max_backoff); i++) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, static_cast<double>(p.max_backoff));
  const double factor =
      1.0 + p.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
  return static_cast<Nanos>(std::max(0.0, backoff * factor));
}

void BackendStore::PutWithRetry(size_t shard, std::string name, Buffer object,
                                std::function<void(Status)> done) {
  auto op = std::make_shared<PutRetryState>();
  op->shard = shard;
  op->name = std::move(name);
  op->object = std::move(object);
  op->done = std::move(done);
  StartPutAttempt(std::move(op));
}

void BackendStore::StartPutAttempt(std::shared_ptr<PutRetryState> op) {
  ObjectStore* store = shards_[op->shard].store;
  if (op->attempt > 0) {
    // A previous attempt may have landed after its timeout: objects are
    // immutable, so blindly re-PUTting an existing name fails. Head is the
    // (reliable) control plane: a size match means the object is complete
    // and the PUT already succeeded; a mismatch is a torn object that must
    // be deleted and re-uploaded.
    auto existing = store->Head(op->name);
    if (existing.ok()) {
      if (*existing == op->object.size()) {
        op->done(Status::Ok());
        return;
      }
      auto alive = alive_;
      store->Delete(op->name, [this, alive, op](Status) {
        if (!*alive) {
          return;
        }
        // If the delete itself failed, the re-PUT fails on the existing
        // name and comes back through the retry loop.
        RawPutAttempt(op);
      });
      return;
    }
  }
  RawPutAttempt(std::move(op));
}

void BackendStore::RawPutAttempt(std::shared_ptr<PutRetryState> op) {
  auto alive = alive_;
  auto settled = std::make_shared<bool>(false);
  const BackendRetryPolicy& policy = PolicyFor(op->shard);
  if (policy.op_timeout > 0) {
    host_->sim()->After(policy.op_timeout,
                        [this, alive, settled, op]() {
      if (!*alive || *settled) {
        return;
      }
      *settled = true;
      c_timeouts_->Inc();
      OnPutAttemptFailed(op, Status::Unavailable("backend PUT timed out"));
    });
  }
  shards_[op->shard].store->Put(op->name, op->object,
                                [this, alive, settled, op](Status s) {
    if (!*alive || *settled) {
      return;
    }
    *settled = true;
    if (s.ok()) {
      op->done(Status::Ok());
      return;
    }
    OnPutAttemptFailed(op, std::move(s));
  });
}

void BackendStore::OnPutAttemptFailed(std::shared_ptr<PutRetryState> op,
                                      Status s) {
  if (s.code() == StatusCode::kFenced) {
    // A fenced PUT can never succeed: this attachment's epoch is stale —
    // another host owns the volume now. Fail the operation without retries;
    // ParkFailedPut keeps the sealed object but skips degraded probing.
    MarkFenced();
    op->done(std::move(s));
    return;
  }
  const BackendRetryPolicy& policy = PolicyFor(op->shard);
  op->attempt++;
  if (op->attempt >= policy.max_attempts) {
    op->done(std::move(s));
    return;
  }
  c_retries_->Inc();
  if (shards_[op->shard].c_retries != nullptr) {
    shards_[op->shard].c_retries->Inc();
  }
  auto alive = alive_;
  host_->sim()->After(RetryBackoff(policy, op->attempt), [this, alive, op]() {
    if (!*alive) {
      return;
    }
    StartPutAttempt(op);
  });
}

void BackendStore::GetRangeWithRetry(
    size_t shard, std::string name, uint64_t offset, uint64_t len,
    std::function<void(Result<Buffer>)> done) {
  auto op = std::make_shared<GetRetryState>();
  op->shard = shard;
  op->name = std::move(name);
  op->offset = offset;
  op->len = len;
  op->done = std::move(done);
  StartGetAttempt(std::move(op));
}

void BackendStore::StartGetAttempt(std::shared_ptr<GetRetryState> op) {
  auto alive = alive_;
  auto settled = std::make_shared<bool>(false);
  const BackendRetryPolicy& policy = PolicyFor(op->shard);
  if (policy.op_timeout > 0) {
    host_->sim()->After(policy.op_timeout,
                        [this, alive, settled, op]() {
      if (!*alive || *settled) {
        return;
      }
      *settled = true;
      c_timeouts_->Inc();
      OnGetAttemptFailed(op, Status::Unavailable("backend GET timed out"));
    });
  }
  shards_[op->shard].store->GetRange(op->name, op->offset, op->len,
                                     [this, alive, settled, op](Result<Buffer> r) {
    if (!*alive || *settled) {
      return;
    }
    *settled = true;
    if (r.ok() || r.status().code() != StatusCode::kUnavailable) {
      op->done(std::move(r));
      return;
    }
    OnGetAttemptFailed(op, r.status());
  });
}

void BackendStore::OnGetAttemptFailed(std::shared_ptr<GetRetryState> op,
                                      Status s) {
  const BackendRetryPolicy& policy = PolicyFor(op->shard);
  op->attempt++;
  if (op->attempt >= policy.max_attempts) {
    op->done(std::move(s));
    return;
  }
  c_retries_->Inc();
  if (shards_[op->shard].c_retries != nullptr) {
    shards_[op->shard].c_retries->Inc();
  }
  auto alive = alive_;
  host_->sim()->After(RetryBackoff(policy, op->attempt), [this, alive, op]() {
    if (!*alive) {
      return;
    }
    StartGetAttempt(op);
  });
}

void BackendStore::DeleteWithRetry(size_t shard, const std::string& name,
                                   int attempt) {
  auto alive = alive_;
  shards_[shard].store->Delete(name,
                               [this, alive, shard, name, attempt](Status s) {
    if (!*alive || s.ok() || attempt + 1 >= PolicyFor(shard).max_attempts) {
      return;
    }
    c_retries_->Inc();
    host_->sim()->After(RetryBackoff(PolicyFor(shard), attempt + 1),
                        [this, alive = alive_, shard, name, attempt]() {
      if (!*alive) {
        return;
      }
      DeleteWithRetry(shard, name, attempt + 1);
    });
  });
}

void BackendStore::PumpPuts() {
  // Walk the queue in seal order, skipping entries whose shard is degraded
  // or has a full per-shard PUT window — a blocked shard must not head-of-
  // line-block the others' stripes. Beyond the per-shard window, each
  // outstanding PUT needs a host-wide slot; when denied, the scheduler
  // re-pumps us once a slot frees.
  size_t i = 0;
  while (i < put_queue_.size()) {
    const size_t shard_index = ShardOf(put_queue_[i].seq);
    Shard& shard = shards_[shard_index];
    if (shard.degraded || shard.outstanding >= config_.put_window) {
      ++i;
      continue;
    }
    if (!host_->put_scheduler()->TryAcquire(put_slot_id_)) {
      return;
    }
    SealedObject sealed = std::move(put_queue_[i]);
    put_queue_.erase(put_queue_.begin() + static_cast<ptrdiff_t>(i));
    outstanding_puts_++;
    shard.outstanding++;
    const uint64_t seq = sealed.seq;
    const uint64_t payload = sealed.payload_bytes;
    Buffer object = sealed.object;
    in_flight_[seq] = std::move(sealed);

    auto alive = alive_;
    auto do_put = [this, alive, seq, shard_index,
                   object = std::move(object)]() mutable {
      if (!*alive) {
        return;
      }
      host_->user_cpu()->Submit(config_.costs.batch_golang,
                                [this, alive, seq, shard_index,
                                 object = std::move(object)]() mutable {
        if (!*alive) {
          return;
        }
        c_objects_put_->Inc();
        c_object_bytes_->Inc(object.size());
        if (shards_[shard_index].c_objects_put != nullptr) {
          shards_[shard_index].c_objects_put->Inc();
          shards_[shard_index].c_object_bytes->Inc(object.size());
        }
        PutWithRetry(shard_index, NameForSeq(seq), std::move(object),
                     [this, alive, seq](Status s) {
          if (!*alive) {
            return;
          }
          OnPutComplete(seq, std::move(s));
        });
      });
    };

    auto after_barrier = [this, alive, payload,
                          do_put = std::move(do_put)]() mutable {
      if (!*alive) {
        return;
      }
      if (config_.pass_through_ssd && cache_ != nullptr) {
        // Prototype overhead (§4.7): userspace re-reads the outgoing data
        // from the cache SSD before uploading.
        cache_->ChargeReadback(payload, std::move(do_put));
      } else {
        host_->sim()->After(0, std::move(do_put));
      }
    };
    if (cache_ != nullptr) {
      // Order the object write after cache durability: if this PUT commits,
      // every journal record feeding it survives a power failure, so the
      // backend can never get ahead of the recovered cache log (keeps the
      // §3.3 rewind-and-replay invariant).
      cache_->Barrier([after_barrier = std::move(after_barrier)](Status) mutable {
        after_barrier();
      });
    } else {
      after_barrier();
    }
  }
}

// A failed PUT must not lose its batch: write-cache records are only
// released after the containing object commits, so parking the sealed object
// and stopping that shard's pump preserves every write. The shard enters the
// degraded state; other shards keep streaming, and the client keeps
// acknowledging writes until the cache log fills.
void BackendStore::ParkFailedPut(uint64_t seq) {
  auto it = in_flight_.find(seq);
  assert(it != in_flight_.end());
  c_put_failures_->Inc();
  const size_t shard_index = ShardOf(seq);
  Shard& shard = shards_[shard_index];
  if (shard.c_put_failures != nullptr) {
    shard.c_put_failures->Inc();
  }
  SealedObject sealed = std::move(it->second);
  in_flight_.erase(it);
  // Re-queue in sequence order so a later recovery pump re-PUTs objects in
  // the same order they were sealed.
  auto pos = put_queue_.begin();
  while (pos != put_queue_.end() && pos->seq < sealed.seq) {
    ++pos;
  }
  put_queue_.insert(pos, std::move(sealed));
  if (!shard.degraded) {
    shard.degraded = true;
    // A fenced store never probes: no retry can outrun an epoch flip, and a
    // terminal park is what lets a stale host's simulation quiesce.
    if (!fenced_) {
      ScheduleDegradedProbe(shard_index);
    }
  }
}

void BackendStore::MarkFenced() {
  if (fenced_) {
    return;
  }
  fenced_ = true;
  // Registered lazily so volumes that are never fenced keep their metric
  // dumps unchanged (same discipline as the trim counters).
  callback_guard_.Register(metrics_, metrics_prefix_ + ".fenced",
                           [this] { return fenced_ ? 1.0 : 0.0; });
}

// The degraded state is left by probing, not by waiting for client traffic:
// every probe interval the shard's pump is unblocked once, which re-PUTs its
// parked objects in sequence order. If the shard is still down the first PUT
// exhausts its budget, re-parks, and re-arms the probe.
void BackendStore::ScheduleDegradedProbe(size_t shard) {
  auto alive = alive_;
  host_->sim()->After(PolicyFor(shard).degraded_probe_interval,
                      [this, alive, shard]() {
    if (!*alive || !shards_[shard].degraded) {
      return;
    }
    shards_[shard].degraded = false;
    PumpPuts();
  });
}

void BackendStore::OnPutComplete(uint64_t seq, Status s) {
  outstanding_puts_--;
  shards_[ShardOf(seq)].outstanding--;
  host_->put_scheduler()->Release(put_slot_id_);
  if (!s.ok()) {
    ParkFailedPut(seq);
    return;
  }
  auto it = in_flight_.find(seq);
  assert(it != in_flight_.end());
  c_payload_bytes_->Inc(it->second.payload_bytes);
  completed_.insert({seq, std::move(it->second)});
  in_flight_.erase(it);
  ApplyReady();
  PumpPuts();
}

void BackendStore::ApplyReady() {
  bool advanced = false;
  while (true) {
    auto it = completed_.find(applied_seq_ + 1);
    if (it == completed_.end()) {
      break;
    }
    SealedObject sealed = std::move(it->second);
    completed_.erase(it);
    ApplyObjectExtents(sealed.seq, sealed.header, sealed.payload_bytes);
    if (sealed.sealed_at >= 0) {
      RecordLatencyUs(h_seal_to_commit_us_,
                      host_->sim()->now() - sealed.sealed_at);
    }
    applied_seq_ = sealed.seq;
    objects_since_checkpoint_++;
    advanced = true;
    for (const uint64_t victim : sealed.cleaned_seqs) {
      ProcessDelete(victim);
    }
  }
  if (advanced) {
    if (on_synced) {
      on_synced(applied_seq_);
    }
    MaybeCheckpoint();
    MaybeGc();
  }
}

void BackendStore::ApplyObjectExtents(uint64_t seq,
                                      const DataObjectHeader& header,
                                      uint64_t payload_bytes) {
  uint64_t offset = header.data_offset;
  uint64_t live = 0;
  ExtentMap<ObjTarget>::ExtentVec displaced;
  ExtentMap<ObjTarget>::SegmentVec segs;
  for (const auto& ext : header.extents) {
    if (ext.is_trim) {
      // TRIM tombstone: punch the map and feed whatever it displaced to GC
      // accounting. Contributes no payload (offset stays) and no live bytes.
      object_map_->Remove(ext.vlba, ext.len, &displaced);
      AccountDisplaced(displaced);
      if (c_trim_punched_bytes_ != nullptr) {
        for (const auto& d : displaced) {
          c_trim_punched_bytes_->Inc(d.len);
        }
      }
      continue;
    }
    const ObjTarget target{seq, offset};
    if (!ext.conditional()) {
      object_map_->Update(ext.vlba, ext.len, target, &displaced);
      AccountDisplaced(displaced);
      live += ext.len;
    } else {
      // GC data: apply only where the map still points at the source.
      const ObjTarget expected{ext.expected_seq, ext.expected_offset};
      object_map_->Lookup(ext.vlba, ext.len, &segs);
      for (const auto& seg : segs) {
        if (!seg.target.has_value()) {
          continue;
        }
        const ObjTarget want = expected.Advanced(seg.start - ext.vlba);
        if (*seg.target == want) {
          object_map_->Update(seg.start, seg.len,
                             target.Advanced(seg.start - ext.vlba),
                             &displaced);
          AccountDisplaced(displaced);
          live += seg.len;
        }
      }
    }
    offset += ext.len;
  }
  object_info_[seq] = ObjectInfo{payload_bytes, live};
  if (header.generation != 0) {
    object_generation_[seq] = header.generation;
  }
}

void BackendStore::AccountDisplaced(
    const ExtentMap<ObjTarget>::ExtentVec& displaced) {
  for (const auto& d : displaced) {
    auto it = object_info_.find(d.target.seq);
    if (it != object_info_.end()) {
      it->second.live_bytes -= std::min(it->second.live_bytes, d.len);
    }
  }
}

uint64_t BackendStore::live_bytes() const {
  uint64_t sum = 0;
  for (const auto& [seq, info] : object_info_) {
    sum += info.live_bytes;
  }
  return sum;
}

uint64_t BackendStore::total_bytes() const {
  uint64_t sum = 0;
  for (const auto& [seq, info] : object_info_) {
    sum += info.total_bytes;
  }
  return sum;
}

double BackendStore::Utilization() const {
  const uint64_t total = total_bytes();
  if (total == 0) {
    return 1.0;
  }
  return static_cast<double>(live_bytes()) / static_cast<double>(total);
}

double BackendStore::ShardUtilization(size_t shard) const {
  if (shards_.size() <= 1) {
    return Utilization();
  }
  uint64_t live = 0;
  uint64_t total = 0;
  for (const auto& [seq, info] : object_info_) {
    if (ShardOf(seq) != shard) {
      continue;
    }
    live += info.live_bytes;
    total += info.total_bytes;
  }
  if (total == 0) {
    return 1.0;
  }
  return static_cast<double>(live) / static_cast<double>(total);
}

std::optional<GcCandidate> BackendStore::gc_candidate_for(
    uint64_t seq) const {
  auto it = object_info_.find(seq);
  if (it == object_info_.end()) {
    return std::nullopt;
  }
  GcCandidate c;
  c.seq = seq;
  c.total_bytes = it->second.total_bytes;
  c.live_bytes = it->second.live_bytes;
  auto gen = object_generation_.find(seq);
  if (gen != object_generation_.end()) {
    c.generation = gen->second;
  }
  // Every candidate ages on the object-sequence clock (objects created
  // since this one was sealed): the clock is recovered exactly from the
  // checkpoint and the object listing, so victim ranking — not just the
  // generation-tagged part of it — is crash-stable, unlike the old
  // seal-time clock which restarted at age 0 after recovery.
  c.age = seq < next_seq_ ? static_cast<double>(next_seq_ - seq) : 0.0;
  return c;
}

std::optional<uint64_t> BackendStore::PickGcVictim(size_t shard) const {
  // Policy-scored victim selection (docs/GC.md): the shard's policy ranks
  // eligible objects and the best score wins (ties to the lowest seq, since
  // the ascending scan only replaces on a strictly greater score — with the
  // greedy policy this is exactly §3.5's least-utilized scan). Eligibility
  // is unchanged: older than the last checkpoint (so recovery never sees
  // holes above it), never from the clone base image, not already pending,
  // and not fully live.
  const GcPolicy& policy = *gc_policies_[shard];
  std::optional<uint64_t> best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [seq, info] : object_info_) {
    if (seq <= config_.base_last_seq || seq >= last_checkpoint_seq_ ||
        info.total_bytes == 0 || gc_pending_victims_.contains(seq) ||
        ShardOf(seq) != shard) {
      continue;
    }
    const GcCandidate c = *gc_candidate_for(seq);
    if (c.utilization() >= 1.0) {
      continue;  // fully live: nothing to reclaim
    }
    const double score = policy.Score(c);
    if (score > best_score) {
      best_score = score;
      best = seq;
    }
  }
  if (best.has_value() && g_cost_benefit_score_ != nullptr) {
    g_cost_benefit_score_->Set(best_score);
  }
  return best;
}

std::optional<uint64_t> BackendStore::PickShardedVictim(
    double watermark) const {
  // Per-shard thresholding (DESIGN.md §9): a shard is cleaned only when its
  // own slice of the stream drops below the watermark; shards are tried in
  // ascending-utilization order so the dirtiest is cleaned first.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); s++) {
    order.push_back({ShardUtilization(s), s});
  }
  std::sort(order.begin(), order.end());
  for (const auto& [util, shard] : order) {
    if (util >= watermark) {
      break;
    }
    auto victim = PickGcVictim(shard);
    if (victim.has_value()) {
      return victim;
    }
  }
  return std::nullopt;
}

void BackendStore::MaybeGc() {
  if (!config_.gc_enabled || gc_running_) {
    return;
  }
  auto victim = PickShardedVictim(config_.gc_low_watermark);
  if (!victim.has_value()) {
    return;
  }
  gc_running_ = true;
  CleanOneObject(*victim);
}

void BackendStore::CleanOneObject(uint64_t victim) {
  gc_pending_victims_.insert(victim);
  const std::string name = NameForSeq(victim);
  auto size = StoreFor(victim)->Head(name);
  if (!size.ok()) {
    // Already gone (shouldn't happen); drop bookkeeping and move on.
    object_info_.erase(victim);
    object_generation_.erase(victim);
    FinishGcRound();
    return;
  }
  auto alive = alive_;
  const uint64_t window = std::min(*size, kHeaderReadWindow);
  GetRangeWithRetry(ShardOf(victim), name, 0, window,
                    [this, alive, victim, name](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    if (!r.ok() && r.status().code() == StatusCode::kUnavailable) {
      // Backend unreachable even after retries: abort the round without
      // touching the victim (its data is still live) and without re-picking
      // a victim, which would spin while the backend is down. The next
      // apply re-triggers GC.
      gc_pending_victims_.erase(victim);
      gc_running_ = false;
      return;
    }
    DataObjectHeader header;
    if (!r.ok() || !DecodeDataObjectHeader(*r, &header).ok()) {
      // Undecodable victim header (torn object, bit rot). Live map extents
      // may still point into the victim, so it is NOT fully dead: erasing it
      // from object_info_ would drop it from utilization accounting while
      // reads through those extents keep failing. Abort the round like the
      // unreachable-backend path — the victim keeps its accounting and will
      // be re-examined (or healed by a PUT retry) later.
      c_gc_aborted_corrupt_->Inc();
      gc_pending_victims_.erase(victim);
      gc_running_ = false;
      return;
    }

    // Identify still-live ranges: creation extents whose map entry still
    // points into this object.
    struct LivePiece {
      uint64_t vlba;
      uint64_t len;
      ObjTarget src;
    };
    auto pieces = std::make_shared<std::vector<LivePiece>>();
    uint64_t offset = header.data_offset;
    ExtentMap<ObjTarget>::SegmentVec scan;
    for (const auto& ext : header.extents) {
      if (ext.is_trim) {
        // Tombstones hold no payload and never own map entries.
        continue;
      }
      const ObjTarget created{victim, offset};
      object_map_->Lookup(ext.vlba, ext.len, &scan);
      for (const auto& seg : scan) {
        if (!seg.target.has_value() || seg.target->seq != victim) {
          continue;
        }
        const ObjTarget want = created.Advanced(seg.start - ext.vlba);
        if (*seg.target == want) {
          pieces->push_back(LivePiece{seg.start, seg.len, want});
        }
      }
      offset += ext.len;
    }

    if (pieces->empty()) {
      // Nothing live: the object can be deleted (or deferred) right away.
      c_gc_objects_cleaned_->Inc();
      ProcessDelete(victim);
      FinishGcRound();
      return;
    }

    // Defragmentation (§4.6): plug small fully-mapped holes between
    // adjacent live pieces by copying the holes' current data (wherever it
    // lives) into the same new object, so the copied run becomes one
    // contiguous map extent.
    std::sort(pieces->begin(), pieces->end(),
              [](const LivePiece& a, const LivePiece& b) {
                return a.vlba < b.vlba;
              });
    if (config_.gc_defrag_hole_max > 0 && pieces->size() > 1) {
      std::vector<LivePiece> plugged;
      plugged.push_back((*pieces)[0]);
      for (size_t i = 1; i < pieces->size(); i++) {
        const uint64_t prev_end =
            plugged.back().vlba + plugged.back().len;
        const LivePiece& next = (*pieces)[i];
        const uint64_t gap = next.vlba > prev_end ? next.vlba - prev_end : 0;
        if (gap > 0 && gap <= config_.gc_defrag_hole_max) {
          ExtentMap<ObjTarget>::SegmentVec hole;
          object_map_->Lookup(prev_end, gap, &hole);
          bool fully_mapped = true;
          for (const auto& seg : hole) {
            if (!seg.target.has_value()) {
              fully_mapped = false;
              break;
            }
          }
          if (fully_mapped) {
            for (const auto& seg : hole) {
              plugged.push_back(LivePiece{seg.start, seg.len, *seg.target});
            }
          }
        }
        plugged.push_back(next);
      }
      *pieces = std::move(plugged);
    }

    // Fetch each live piece — from the local write cache when it fully
    // covers the range (§3.5 optimization), otherwise a backend range read —
    // and append it to the GC batch.
    auto remaining = std::make_shared<size_t>(pieces->size());
    auto failed = std::make_shared<bool>(false);
    auto finish_piece = [this, alive, victim, remaining, failed](
                            const LivePiece& piece, Result<Buffer> data) {
      if (!*alive) {
        return;
      }
      if (data.ok()) {
        if (!gc_batch_.has_value()) {
          gc_batch_ = OpenBatch{};
          // seq assigned at seal time (see SealGcBatch).
          gc_batch_->opened_at = host_->sim()->now();
        }
        gc_batch_->raw_bytes += piece.len;
        gc_batch_->entries.push_back(
            BatchEntry{piece.vlba, std::move(data).value(), piece.src});
        c_gc_bytes_moved_->Inc(piece.len);
      } else {
        *failed = true;
      }
      if (--*remaining == 0) {
        if (*failed) {
          // Some live data could not be read even after retries. The victim
          // must survive: it keeps its map entries, so nothing is lost, and
          // it stays eligible once the backend recovers. Pieces that did
          // land in the GC batch are conditional copies — duplicating them
          // later is safe. End the round instead of re-picking, which would
          // spin against a down backend.
          gc_pending_victims_.erase(victim);
          gc_running_ = false;
          return;
        }
        c_gc_objects_cleaned_->Inc();
        gc_batch_cleaned_.push_back(victim);
        if (config_.gc_extended()) {
          // GC output generation: one past the oldest generation it copies
          // (docs/GC.md). Recorded per batch so the v2 header persists it.
          auto g = object_generation_.find(victim);
          const uint32_t victim_gen = g == object_generation_.end()
                                          ? 0
                                          : g->second;
          gc_batch_generation_ =
              std::max(gc_batch_generation_, victim_gen + 1);
        }
        if (gc_batch_.has_value() &&
            gc_batch_->raw_bytes >= config_.batch_bytes) {
          SealGcBatchNow();
        }
        FinishGcRound();
      }
    };

    for (const auto& piece : *pieces) {
      bool cache_covers = cache_ != nullptr;
      if (cache_covers) {
        ExtentMap<SsdTarget>::SegmentVec csegs;
        cache_->map().Lookup(piece.vlba, piece.len, &csegs);
        for (const auto& seg : csegs) {
          if (!seg.target.has_value()) {
            cache_covers = false;
            break;
          }
        }
      }
      if (cache_covers) {
        // Assemble from (possibly several) cache extents.
        c_gc_cache_hits_->Inc();
        auto segs = cache_->map().Lookup(piece.vlba, piece.len);
        auto parts = std::make_shared<std::vector<Buffer>>(segs.size());
        auto left = std::make_shared<size_t>(segs.size());
        for (size_t i = 0; i < segs.size(); i++) {
          cache_->ReadData(segs[i].target->plba, segs[i].len,
                           [alive, parts, left, i, piece,
                            finish_piece](Result<Buffer> r) {
            if (!*alive) {
              return;
            }
            if (r.ok()) {
              (*parts)[i] = std::move(r).value();
            }
            if (--*left == 0) {
              Buffer whole;
              for (auto& p : *parts) {
                whole.Append(p);
              }
              finish_piece(piece, whole.size() == piece.len
                                      ? Result<Buffer>(std::move(whole))
                                      : Result<Buffer>(Status::Unavailable(
                                            "cache read failed")));
            }
          });
        }
      } else {
        // Plugged pieces may live in other objects; fetch from wherever the
        // map says the data is.
        GetRangeWithRetry(ShardOf(piece.src.seq), NameForSeq(piece.src.seq),
                          piece.src.offset, piece.len,
                          [piece, finish_piece](Result<Buffer> r) {
          finish_piece(piece, std::move(r));
        });
      }
    }
  });
}

void BackendStore::FinishGcRound() {
  if (config_.gc_enabled) {
    auto victim = PickShardedVictim(config_.gc_high_watermark);
    if (victim.has_value()) {
      CleanOneObject(*victim);
      return;
    }
  }
  // Round over. The open GC batch is left to fill up (sealed by size in
  // CleanOneObject, by age in SealIfAged, or by Seal) — sealing per round
  // would produce swarms of tiny objects that immediately become GC victims
  // themselves. It holds no sequence number while open, so it cannot stall
  // the in-order apply of later objects. Pure deletions (victims with no
  // live data) were already processed.
  gc_running_ = false;
}

void BackendStore::ProcessDelete(uint64_t seq) {
  gc_pending_victims_.erase(seq);
  // Snapshot deferral rule (§3.6): with Ngc = newest allocated object, the
  // pair (N0, Ngc) is deferred iff some snapshot s satisfies N0 <= s < Ngc.
  const uint64_t gc_head = next_seq_ - 1;
  bool deferred = false;
  for (const uint64_t s : snapshots_) {
    if (s >= seq && s < gc_head) {
      deferred = true;
      break;
    }
  }
  auto it = object_info_.find(seq);
  if (it != object_info_.end()) {
    object_info_.erase(it);
  }
  object_generation_.erase(seq);
  if (deferred) {
    deferred_deletes_.push_back(DeferredDelete{seq, gc_head});
    c_deferred_deletes_->Inc();
    return;
  }
  c_objects_deleted_->Inc();
  DeleteWithRetry(ShardOf(seq), NameForSeq(seq));
}

void BackendStore::ReexamineDeferred() {
  std::vector<DeferredDelete> still_deferred;
  for (const auto& d : deferred_deletes_) {
    bool pinned = false;
    for (const uint64_t s : snapshots_) {
      if (s >= d.seq && s < d.gc_head) {
        pinned = true;
        break;
      }
    }
    if (pinned) {
      still_deferred.push_back(d);
    } else {
      c_objects_deleted_->Inc();
      DeleteWithRetry(ShardOf(d.seq), NameForSeq(d.seq));
    }
  }
  deferred_deletes_ = std::move(still_deferred);
}

void BackendStore::CreateSnapshot(
    std::function<void(Result<uint64_t>)> done) {
  const uint64_t seq = applied_seq_;
  snapshots_.insert(seq);
  auto alive = alive_;
  WriteCheckpoint([alive, seq, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    done(seq);
  });
}

void BackendStore::DeleteSnapshot(uint64_t seq,
                                  std::function<void(Status)> done) {
  if (snapshots_.erase(seq) == 0) {
    done(Status::NotFound("no such snapshot"));
    return;
  }
  ReexamineDeferred();
  WriteCheckpoint(std::move(done));
}

void BackendStore::MaybeCheckpoint() {
  if (objects_since_checkpoint_ >= config_.checkpoint_interval_objects &&
      !checkpoint_in_flight_) {
    WriteCheckpoint([](Status) {});
  }
}

void BackendStore::WriteCheckpoint(std::function<void(Status)> done) {
  if (checkpoint_in_flight_) {
    done(Status::Ok());
    return;
  }
  checkpoint_in_flight_ = true;
  CheckpointState state;
  state.through_seq = applied_seq_;
  state.next_seq = next_seq_;
  state.object_map = object_map_->Extents();
  state.object_info = object_info_;
  state.deferred_deletes = deferred_deletes_;
  state.snapshots.assign(snapshots_.begin(), snapshots_.end());
  if (shards_.size() > 1) {
    // Consistency vector (DESIGN.md §9): the highest contiguous seq each
    // shard contributes to the applied prefix. Recorded so recovery can
    // cross-check every shard's stream against the checkpoint.
    state.shard_count = static_cast<uint32_t>(shards_.size());
    state.shard_consistent = ConsistencyVector(applied_seq_, shards_.size());
  }
  // GC generations of surviving objects (non-zero only under gc_extended):
  // objects at or below the checkpoint are recovered from this state alone,
  // so without the table a recovered store would score old GC output as
  // ordinary client data. Empty table keeps the checkpoint at v1/v2.
  for (const auto& [seq, gen] : object_generation_) {
    if (gen > 0 && object_info_.contains(seq)) {
      state.generations[seq] = gen;
    }
  }

  const uint64_t ckpt_id = ++checkpoint_counter_;
  const std::string name =
      CheckpointObjectName(config_.volume_name, ckpt_id);
  const uint64_t through = state.through_seq;
  auto alive = alive_;
  // Checkpoints always go to shard 0, the volume's metadata home.
  PutWithRetry(0, name, EncodeCheckpoint(state),
               [this, alive, through, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    checkpoint_in_flight_ = false;
    if (!s.ok()) {
      done(s);
      return;
    }
    last_checkpoint_seq_ = std::max(last_checkpoint_seq_, through);
    objects_since_checkpoint_ = 0;
    c_checkpoints_->Inc();
    // Trim-only objects (zero payload, zero live bytes) at or below the
    // checkpoint are no longer needed for replay: recovery starts past them,
    // so they can be deleted like cleaned GC victims. Only trims produce
    // such objects, so default volumes never take this path.
    std::vector<uint64_t> spent;
    for (const auto& [seq, info] : object_info_) {
      if (seq > config_.base_last_seq && seq <= through &&
          info.total_bytes == 0 && info.live_bytes == 0) {
        spent.push_back(seq);
      }
    }
    for (const uint64_t seq : spent) {
      ProcessDelete(seq);
    }
    // Keep only the two newest checkpoints.
    auto names = meta_store()->List(CheckpointPrefix(config_.volume_name));
    while (names.size() > 2) {
      DeleteWithRetry(0, names.front());
      names.erase(names.begin());
    }
    done(Status::Ok());
  });
}

bool BackendStore::idle() const {
  const bool batch_open =
      (batch_.has_value() && !batch_->entries.empty()) ||
      (cold_batch_.has_value() && !cold_batch_->entries.empty()) ||
      (gc_batch_.has_value() && !gc_batch_->entries.empty());
  return !batch_open && put_queue_.empty() && in_flight_.empty() &&
         completed_.empty() && !gc_running_;
}

// Recovery is a chain of member-function stages threaded through a shared
// RecoverState. Continuation lambdas capture the state but no lambda ever
// captures a std::function holding itself, so nothing here can form a
// shared_ptr retain cycle (the pre-PR-5 implementation leaked exactly that
// way); once the final callback returns the state's refcount hits zero.
void BackendStore::Recover(std::function<void(Status)> done) {
  // Start from nothing; a loaded checkpoint overrides these. In particular a
  // fresh clone has no checkpoint yet and must replay the base image's
  // object stream from sequence 1.
  object_map_->Clear();
  object_info_.clear();
  object_generation_.clear();
  deferred_deletes_.clear();
  snapshots_.clear();
  applied_seq_ = 0;
  next_seq_ = 1;
  last_checkpoint_seq_ = 0;

  auto st = std::make_shared<RecoverState>();
  st->ckpts = meta_store()->List(CheckpointPrefix(config_.volume_name));
  st->done = std::move(done);
  RecoverTryCheckpoint(std::move(st), 0);
}

// 1. Find the newest usable checkpoint (always on shard 0), walking
// backwards past undecodable or unusable ones.
void BackendStore::RecoverTryCheckpoint(std::shared_ptr<RecoverState> st,
                                        size_t back_index) {
  if (back_index >= st->ckpts.size()) {
    RecoverScanAndReplay(std::move(st));
    return;
  }
  const std::string name = st->ckpts[st->ckpts.size() - 1 - back_index];
  const auto size = meta_store()->Head(name);
  if (!size.ok()) {
    RecoverTryCheckpoint(std::move(st), back_index + 1);
    return;
  }
  auto alive = alive_;
  GetRangeWithRetry(0, name, 0, *size,
                    [this, alive, st, name, back_index](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    if (!r.ok() && r.status().code() == StatusCode::kUnavailable) {
      // Transient: falling back to an older checkpoint here could replay
      // across a GC hole; report the failure and let the caller re-open.
      st->done(r.status());
      return;
    }
    CheckpointState state;
    if (!r.ok() || !DecodeCheckpoint(*r, &state).ok()) {
      RecoverTryCheckpoint(st, back_index + 1);
      return;
    }
    // Snapshot mounting (§3.6): only checkpoints at or before the snapshot
    // point are usable; otherwise backtrack to an older one.
    if (config_.open_limit_seq != 0 &&
        state.through_seq > config_.open_limit_seq) {
      RecoverTryCheckpoint(st, back_index + 1);
      return;
    }
    // Sharding sanity (DESIGN.md §9): placement is derived from seq, so a
    // checkpoint written under a different stripe width — or whose recorded
    // consistency vector does not match its own prefix — cannot be applied.
    const size_t ckpt_shards = state.shard_count == 0 ? 1 : state.shard_count;
    if (ckpt_shards != shards_.size() ||
        (state.shard_count > 1 &&
         state.shard_consistent !=
             ConsistencyVector(state.through_seq, shards_.size()))) {
      RecoverTryCheckpoint(st, back_index + 1);
      return;
    }
    object_map_->Clear();
    for (const auto& e : state.object_map) {
      object_map_->Update(e.start, e.len, e.target, nullptr);
    }
    object_info_ = state.object_info;
    object_generation_ = state.generations;
    deferred_deletes_ = state.deferred_deletes;
    snapshots_.clear();
    snapshots_.insert(state.snapshots.begin(), state.snapshots.end());
    applied_seq_ = state.through_seq;
    next_seq_ = state.next_seq;
    last_checkpoint_seq_ = state.through_seq;
    if (auto id = ParseCheckpointSeq(config_.volume_name, name)) {
      checkpoint_counter_ = std::max(checkpoint_counter_, *id);
    }
    st->ckpt_back_index = back_index;
    st->from_checkpoint = true;
    RecoverScanAndReplay(st);
  });
}

// 2. Per-shard tail scan: collect available data-object seqs (own stream +
// clone base) from every shard, keeping only seqs whose name was found on
// the shard the striping rule assigns them to.
void BackendStore::RecoverScanAndReplay(std::shared_ptr<RecoverState> st) {
  for (size_t shard = 0; shard < shards_.size(); shard++) {
    for (const auto& name :
         shards_[shard].store->List(DataObjectPrefix(config_.volume_name))) {
      if (auto s = ParseDataObjectSeq(config_.volume_name, name)) {
        if (ShardOf(*s) == shard) {
          st->seqs.insert(*s);
        }
      }
    }
    if (!config_.base_image.empty()) {
      for (const auto& name :
           shards_[shard].store->List(DataObjectPrefix(config_.base_image))) {
        if (auto s = ParseDataObjectSeq(config_.base_image, name)) {
          if (*s <= config_.base_last_seq && ShardOf(*s) == shard) {
            st->seqs.insert(*s);
          }
        }
      }
    }
  }
  RecoverReplayNext(std::move(st));
}

// 3. Replay the globally consecutive run after the checkpoint, in order,
// routing each read to its shard. A gap on ANY shard — including a shard
// that lost its tail — ends the global prefix, exactly as §3.5's single-log
// rule truncates one log at its first hole.
void BackendStore::RecoverReplayNext(std::shared_ptr<RecoverState> st) {
  const uint64_t want = applied_seq_ + 1;
  const bool past_limit =
      config_.open_limit_seq != 0 && want > config_.open_limit_seq;
  if (past_limit || !st->seqs.contains(want)) {
    RecoverFinish(std::move(st));
    return;
  }
  const std::string name = NameForSeq(want);
  auto size = StoreFor(want)->Head(name);
  if (!size.ok()) {
    st->done(size.status());
    return;
  }
  const uint64_t window = std::min(*size, kHeaderReadWindow);
  const uint64_t object_size = *size;
  auto alive = alive_;
  GetRangeWithRetry(ShardOf(want), name, 0, window,
                    [this, alive, st, want, object_size](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    if (!r.ok() && r.status().code() == StatusCode::kUnavailable) {
      // Transient even after retries: stopping the prefix here would
      // silently truncate the volume, so surface the error instead.
      st->done(r.status());
      return;
    }
    DataObjectHeader header;
    const bool decoded = r.ok() && DecodeDataObjectHeader(*r, &header).ok();
    // Trim extents carry no payload, so the size cross-check counts only the
    // non-trim extent lengths.
    const uint64_t extent_sum = decoded ? DataObjectPayloadBytes(header) : 0;
    if (!decoded || object_size < header.data_offset ||
        extent_sum != object_size - header.data_offset) {
      // A torn or corrupt object ends the log: it was never applied, so
      // the write cache still holds every write it contained (records
      // are only released after commit) and rewind-and-replay re-sends
      // them (§3.3). Treat it like a gap — stop the prefix here.
      RecoverFinish(st);
      return;
    }
    ApplyObjectExtents(want, header, object_size - header.data_offset);
    applied_seq_ = want;
    RecoverReplayNext(st);
  });
}

// 4. End of the consecutive prefix: delete stranded own objects past it (on
// whichever shard they landed) and fix up counters. Snapshot mounts are
// read-only views and must not delete anything belonging to the live volume.
void BackendStore::RecoverFinish(std::shared_ptr<RecoverState> st) {
  if (shards_.size() > 1 && st->from_checkpoint) {
    // Post-replay shard-loss check (DESIGN.md §9): after a full replay the
    // object map may only reference objects the shards still hold — a GC
    // victim referenced by the checkpoint is always fully displaced by
    // replaying its GC copy, so a reference that is missing from its shard
    // means the shard lost part of its stream since the checkpoint. The
    // checkpoint lineage is then unusable: fall back to the next older
    // checkpoint, ultimately to a bare scan, which truncates the global
    // prefix at the gap (§3.5's single-log rule).
    std::set<uint64_t> referenced;
    for (const auto& e : object_map_->Extents()) {
      referenced.insert(e.target.seq);
    }
    for (const uint64_t seq : referenced) {
      if (!StoreFor(seq)->Head(NameForSeq(seq)).ok()) {
        const size_t next_back = st->ckpt_back_index + 1;
        object_map_->Clear();
        object_info_.clear();
        object_generation_.clear();
        deferred_deletes_.clear();
        snapshots_.clear();
        applied_seq_ = 0;
        next_seq_ = 1;
        last_checkpoint_seq_ = 0;
        st->seqs.clear();
        st->from_checkpoint = false;
        RecoverTryCheckpoint(std::move(st), next_back);
        return;
      }
    }
  }
  if (config_.open_limit_seq == 0) {
    for (const uint64_t s : st->seqs) {
      if (s > applied_seq_ && s > config_.base_last_seq) {
        DeleteWithRetry(ShardOf(s), NameForSeq(s));
      }
    }
  }
  next_seq_ = std::max(applied_seq_, config_.base_last_seq) + 1;
  st->done(Status::Ok());
}

void BackendStore::Fetch(ObjTarget target, uint64_t len,
                         std::function<void(Result<Buffer>)> done) {
  auto alive = alive_;
  GetRangeWithRetry(ShardOf(target.seq), NameForSeq(target.seq),
                    target.offset, len,
                    [alive, done = std::move(done)](Result<Buffer> r) {
    if (!*alive) {
      return;
    }
    done(std::move(r));
  });
}

}  // namespace lsvd
