// Per-volume QoS admission control for a multi-tenant client host (§4.3's
// deployment story: many LSVD volumes share one hypervisor's SSD and CPUs).
//
// Each registered volume owns token buckets for IOPS and bandwidth,
// refilled on simulated time; a volume marked fair_share additionally draws
// from a host-wide shared pool, so capped tenants cannot exceed their slice
// while uncapped ones split the remainder. Admission is work-conserving: an
// op runs inline when its volume's queue is empty and tokens are available,
// otherwise it queues FIFO per volume and a single timer drains queues
// round-robin across volumes when tokens accrue.
#ifndef SRC_LSVD_QOS_H_
#define SRC_LSVD_QOS_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/lsvd/config.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"

namespace lsvd {

// Token bucket over simulated time. rate 0 = unlimited (always has tokens).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double capacity)
      : rate_(rate_per_sec),
        capacity_(capacity < 1.0 ? 1.0 : capacity),
        tokens_(capacity_) {}

  bool unlimited() const { return rate_ <= 0.0; }

  void Refill(Nanos now) {
    if (unlimited()) {
      return;
    }
    const Nanos dt = now - last_refill_;
    if (dt > 0) {
      tokens_ += rate_ * ToSeconds(dt);
      if (tokens_ > capacity_) {
        tokens_ = capacity_;
      }
      last_refill_ = now;
    }
  }

  // An op larger than the bucket capacity is admitted once the bucket is
  // full and pushes the balance negative ("borrowing") — otherwise a 64 KiB
  // write against a 10 KiB burst could never be admitted at all. The debt
  // must be repaid before the next op, so the long-term rate still holds.
  bool Has(double tokens, Nanos now) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    return tokens_ >= tokens || tokens_ >= capacity_;
  }

  void Take(double tokens) {
    if (!unlimited()) {
      tokens_ -= tokens;  // may go negative for oversized ops (see Has)
    }
  }

  // Virtual-time delay until the op can be admitted; 0 if already.
  Nanos Eta(double tokens, Nanos now) {
    if (unlimited()) {
      return 0;
    }
    Refill(now);
    const double needed = tokens < capacity_ ? tokens : capacity_;
    if (tokens_ >= needed) {
      return 0;
    }
    // A deficit smaller than one tick's accrual truncates to 0 ns, which
    // would re-arm the admission timer at the current timestamp and spin the
    // event loop; any real deficit waits at least one tick.
    return std::max<Nanos>(FromSeconds((needed - tokens_) / rate_), 1);
  }

 private:
  double rate_ = 0.0;
  double capacity_ = 0.0;
  double tokens_ = 0.0;
  Nanos last_refill_ = 0;
};

class QosScheduler {
 public:
  // shared_iops / shared_bytes_per_sec bound the fair-share pool (0 =
  // unlimited). burst_seconds sizes the shared buckets.
  QosScheduler(Simulator* sim, uint64_t shared_iops,
               uint64_t shared_bytes_per_sec, double burst_seconds = 0.1);
  ~QosScheduler() { *alive_ = false; }

  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  // Registers a volume; limits.unlimited() volumes are admitted inline with
  // no bookkeeping. The optional registry records the volume's throttle
  // metrics under `prefix` (".qos.throttled", ".qos.wait_us", ...).
  int RegisterVolume(const std::string& name, QosLimits limits,
                     MetricsRegistry* metrics = nullptr,
                     const std::string& prefix = "lsvd");
  // Dropped queued admissions are never run (mirrors Kill() semantics of the
  // disk components: a detached volume's pending work just disappears).
  void UnregisterVolume(int id);

  // Runs `fn` when the volume's buckets allow one op of `bytes` bytes.
  void Admit(int id, uint64_t bytes, std::function<void()> fn);

  size_t queued() const;
  uint64_t throttled() const { return total_throttled_; }

 private:
  struct PendingOp {
    uint64_t bytes = 0;
    Nanos enqueued_at = 0;
    std::function<void()> fn;
  };
  struct Volume {
    std::string name;
    QosLimits limits;
    TokenBucket iops;
    TokenBucket bandwidth;
    std::deque<PendingOp> queue;
    Counter* c_admitted = nullptr;
    Counter* c_throttled = nullptr;
    Histogram* h_wait_us = nullptr;
  };

  bool TryTake(Volume* v, uint64_t bytes);
  Nanos AdmitEta(Volume* v, uint64_t bytes);
  void Pump();
  void ArmTimer(Nanos delay);

  Simulator* sim_;
  TokenBucket shared_iops_;
  TokenBucket shared_bandwidth_;
  std::map<int, Volume> volumes_;
  int next_id_ = 0;
  uint64_t timer_epoch_ = 0;  // invalidates armed timers on re-arm
  uint64_t total_throttled_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace lsvd

#endif  // SRC_LSVD_QOS_H_
