// Log-structured block store (paper §3.1 Figure 3, §3.5, §3.6).
//
// Collects client writes into batches; each sealed batch becomes an
// immutable, sequence-numbered data object. The in-memory object map routes
// reads; a per-object info table (total/live payload bytes) drives Greedy
// garbage collection with 70/75 % thresholds. Map checkpoints go to numbered
// checkpoint objects; recovery loads the newest checkpoint, replays the
// consecutive run of data objects past it, and deletes stranded objects
// beyond the first gap (the prefix rule, §3.3).
//
// Clones (§3.6) share a base image's object stream prefix: sequence numbers
// <= base_last_seq resolve to the base volume's names and are never cleaned
// or deleted. Snapshots pin a log position; deletions of objects older than
// a snapshot are deferred as (N0, Ngc) pairs until the snapshot is dropped.
#ifndef SRC_LSVD_BACKEND_STORE_H_
#define SRC_LSVD_BACKEND_STORE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/lsvd/client_host.h"
#include "src/lsvd/config.h"
#include "src/lsvd/extent_map.h"
#include "src/lsvd/gc_policy.h"
#include "src/lsvd/object_format.h"
#include "src/lsvd/paged_extent_map.h"
#include "src/lsvd/write_cache.h"
#include "src/objstore/object_store.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace lsvd {

// View over the backend store's registry counters (see docs/METRICS.md,
// "backend.*"). Note: gc_bytes_copied is registered as
// "backend.gc.bytes_moved".
struct BackendStoreStats {
  uint64_t client_bytes = 0;      // payload bytes handed to AddWrite
  uint64_t coalesced_bytes = 0;   // dropped by within-batch overwrite merging
  uint64_t objects_put = 0;
  uint64_t object_bytes = 0;      // headers + payload PUT to the store
  uint64_t payload_bytes = 0;     // payload only
  uint64_t gc_objects_cleaned = 0;
  uint64_t gc_bytes_copied = 0;
  uint64_t gc_cache_hits = 0;     // GC reads served from the local cache
  uint64_t objects_deleted = 0;
  uint64_t checkpoints = 0;
  uint64_t deferred_deletes = 0;
  uint64_t put_failures = 0;      // PUTs that exhausted their retry budget
  uint64_t retries = 0;           // backend op attempts after the first
  uint64_t timeouts = 0;          // attempts abandoned by the op timeout
  uint64_t gc_aborted_corrupt = 0;  // GC rounds aborted on a corrupt victim
};

class BackendStore {
 public:
  BackendStore(ClientHost* host, ObjectStore* store, WriteCache* cache,
               const LsvdConfig& config, MetricsRegistry* metrics = nullptr,
               const std::string& prefix = "backend");
  // Sharded backend (DESIGN.md §9): data object `seq` lives on
  // stores[ShardForSeq(seq, stores.size())]; checkpoints live on stores[0].
  // The stripe width is fixed for the volume's lifetime.
  BackendStore(ClientHost* host, std::vector<ObjectStore*> stores,
               WriteCache* cache, const LsvdConfig& config,
               MetricsRegistry* metrics = nullptr,
               const std::string& prefix = "backend");
  ~BackendStore();

  BackendStore(const BackendStore&) = delete;
  BackendStore& operator=(const BackendStore&) = delete;

  // Fires whenever the highest contiguously-applied object seq advances;
  // the owner uses it to release write-cache records.
  std::function<void(uint64_t)> on_synced;

  // Adds one client write to the open batch; returns the batch's object
  // sequence number (recorded in the journal for crash replay). Seals the
  // batch if it reached the configured size.
  uint64_t AddWrite(uint64_t vlba, Buffer data);

  // Adds one client TRIM to the object stream; returns the batch's object
  // sequence number (recorded in the journal like a write's). Any open client
  // batch holding writes is sealed first, so every write accepted before the
  // trim carries a smaller sequence number and the in-order apply can never
  // resurrect pre-trim data. Within a batch, trim entries always precede
  // write entries (a write arriving later may join the trim's batch; a later
  // trim re-seals). The trim becomes a zero-payload v3 header extent whose
  // apply punches the object map, feeding displaced bytes to GC accounting.
  uint64_t AddTrim(uint64_t vlba, uint64_t len);

  // Seals the open batch if it has exceeded the configured age (called from
  // the owner's periodic tick) or unconditionally (drain paths).
  void SealIfAged(Nanos max_age);
  void Seal();
  void SealGcBatch();

  const ExtentMapIface<ObjTarget>& object_map() const { return *object_map_; }
  // Non-null only when config.paged_map(): the compressed two-level map
  // behind object_map(), exposed for paging statistics (DESIGN.md §13).
  const PagedExtentMap<ObjTarget>* paged_object_map() const {
    return paged_map_.get();
  }

  // Fetches `len` bytes at `target` (an object-map lookup result).
  void Fetch(ObjTarget target, uint64_t len,
             std::function<void(Result<Buffer>)> done);

  // --- garbage collection (§3.5) ---
  double Utilization() const;
  // Utilization of one shard's slice of the object stream; victims are
  // selected per shard against the watermarks (DESIGN.md §9).
  double ShardUtilization(size_t shard) const;
  bool gc_running() const { return gc_running_; }
  uint64_t live_bytes() const;
  uint64_t total_bytes() const;

  // --- sharding ---
  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(uint64_t seq) const {
    return ShardForSeq(seq, shards_.size());
  }
  // Highest contiguous seq per shard implied by the applied prefix.
  std::vector<uint64_t> consistency_vector() const {
    return ConsistencyVector(applied_seq_, shards_.size());
  }
  bool shard_degraded(size_t shard) const { return shards_[shard].degraded; }

  // --- snapshots (§3.6) ---
  // Pins the current applied log position; durability comes from the
  // checkpoint written immediately after. Returns the snapshot's object seq.
  void CreateSnapshot(std::function<void(Result<uint64_t>)> done);
  void DeleteSnapshot(uint64_t seq, std::function<void(Status)> done);
  const std::set<uint64_t>& snapshots() const { return snapshots_; }
  const std::vector<DeferredDelete>& deferred_deletes() const {
    return deferred_deletes_;
  }

  // --- checkpoint / recovery ---
  void WriteCheckpoint(std::function<void(Status)> done);
  // Rebuilds all state from the object store; safe on a brand-new volume
  // (results in an empty image).
  void Recover(std::function<void(Status)> done);

  uint64_t applied_seq() const { return applied_seq_; }
  uint64_t next_seq() const { return next_seq_; }
  uint64_t last_checkpoint_seq() const { return last_checkpoint_seq_; }
  // True while the store has given up on any backend shard (a PUT exhausted
  // its retry budget): that shard's sealed batches are parked in the queue —
  // the write cache keeps their data, so correctness is preserved — and only
  // a periodic probe PUT tests whether the shard came back. Healthy shards
  // keep absorbing their own stripe of the stream.
  bool degraded() const;
  // True once any PUT was rejected with kFenced: this attachment's epoch is
  // stale (another host took over the volume, see
  // src/objstore/volume_directory.h). Fencing is terminal — parked batches
  // stay parked and no degraded-mode probing runs, so a stale host winds
  // down instead of retrying forever. The write cache still holds the
  // unshipped tail; the new attachment recovers the consistent prefix.
  bool fenced() const { return fenced_; }
  // True when no batch is open and no PUT is outstanding.
  bool idle() const;
  BackendStoreStats stats() const;
  size_t object_count() const { return object_info_.size(); }
  // Persisted GC generations (from v2+ data-object headers), keyed by seq.
  // Exposed so tests can check a recovered store scores victims identically
  // to the pre-crash store (generations survive recovery; seal times do not).
  const std::map<uint64_t, uint32_t>& object_generations() const {
    return object_generation_;
  }
  std::optional<ObjectInfo> object_info_for(uint64_t seq) const {
    auto it = object_info_.find(seq);
    if (it == object_info_.end()) {
      return std::nullopt;
    }
    return it->second;
  }
  // The exact candidate the GC victim scan would score for this object.
  // For generation-tagged GC output every field is derived from persisted
  // state (sequence-clock age, never the seal clock), which is what makes
  // victim ranking crash-stable — the property the recovery regression
  // tests pin down through this accessor.
  std::optional<GcCandidate> gc_candidate_for(uint64_t seq) const;

  void Kill() { *alive_ = false; }

  // Object name for a sequence number, honoring the clone base prefix.
  std::string NameForSeq(uint64_t seq) const;

 private:
  struct BatchEntry {
    uint64_t vlba;
    Buffer data;
    // Set for GC-copied data; see ObjectExtent::conditional().
    std::optional<ObjTarget> expected;
    // TRIM tombstone entry: carries no payload (data stays empty); the
    // trimmed length lives in trim_len. See AddTrim for the ordering rules.
    bool is_trim = false;
    uint64_t trim_len = 0;
  };
  struct OpenBatch {
    uint64_t seq = 0;
    Nanos opened_at = -1;
    uint64_t raw_bytes = 0;
    // GC generation of the batch's data (docs/GC.md): 0 for client writes,
    // 1 + max victim generation for GC copies. Only set when the extended
    // GC features are configured, so default volumes keep v1 headers.
    uint32_t generation = 0;
    // Cold stream member (GC output, or a cold client batch under
    // gc_hot_cold_split); counted by backend.gc.cold_objects.
    bool cold = false;
    std::vector<BatchEntry> entries;
  };
  struct SealedObject {
    uint64_t seq = 0;
    DataObjectHeader header;
    Buffer object;          // encoded header + payload
    uint64_t payload_bytes = 0;
    bool from_gc = false;
    std::vector<uint64_t> cleaned_seqs;  // old objects to delete once applied
    Nanos sealed_at = -1;   // for the seal -> commit lifecycle histogram
  };

  // One backend shard: an independent object store with its own PUT window,
  // degraded flag, retry policy and (when sharded) metric counters.
  struct Shard {
    ObjectStore* store = nullptr;
    BackendRetryPolicy retry;
    int outstanding = 0;
    bool degraded = false;
    Counter* c_objects_put = nullptr;
    Counter* c_object_bytes = nullptr;
    Counter* c_put_failures = nullptr;
    Counter* c_retries = nullptr;
  };

  // Retry state for one logical backend PUT/GET; lives on the heap across
  // attempts, backoff sleeps, and timeout races.
  struct PutRetryState {
    size_t shard = 0;
    std::string name;
    Buffer object;
    int attempt = 0;
    std::function<void(Status)> done;
  };
  struct GetRetryState {
    size_t shard = 0;
    std::string name;
    uint64_t offset = 0;
    uint64_t len = 0;
    int attempt = 0;
    std::function<void(Result<Buffer>)> done;
  };
  // Recovery pipeline state; owned only by the in-flight continuation
  // lambdas (never by a lambda reachable from itself, so no retain cycle).
  struct RecoverState {
    std::vector<std::string> ckpts;
    std::set<uint64_t> seqs;
    // Which checkpoint (ckpts back-index) the current attempt loaded, if
    // any; the sharded post-replay loss check falls back to the next older
    // one when a map reference turns out to be missing from its shard.
    size_t ckpt_back_index = 0;
    bool from_checkpoint = false;
    std::function<void(Status)> done;
  };

  ObjectStore* StoreFor(uint64_t seq) const {
    return shards_[ShardOf(seq)].store;
  }
  // Checkpoints and other volume metadata always live on shard 0.
  ObjectStore* meta_store() const { return shards_[0].store; }
  const BackendRetryPolicy& PolicyFor(size_t shard) const {
    return shards_[shard].retry;
  }

  // Lazily opens `slot` (assigning the next sequence number) and returns its
  // seq. `slot` is batch_ for hot client writes, cold_batch_ for cold ones.
  uint64_t OpenBatchSeq(std::optional<OpenBatch>& slot);
  // Seal-on-deadline (LsvdConfig::batch_seal_deadline): per-batch timer armed
  // at open that seals the batch if it is still the slot's occupant when the
  // deadline passes. `slot` must outlive the store (it is a member).
  void ArmSealDeadline(std::optional<OpenBatch>* slot);
  void SealBatch(OpenBatch batch, bool from_gc,
                 std::vector<uint64_t> cleaned_seqs);
  // Seals the open GC batch inline (size threshold reached mid-round).
  void SealGcBatchNow();
  void PumpPuts();
  void OnPutComplete(uint64_t seq, Status s);
  void ParkFailedPut(uint64_t seq);
  // Backoff delay before retry number `attempt` (>= 1), with jitter.
  Nanos RetryBackoff(const BackendRetryPolicy& policy, int attempt);
  // PUT with timeout, bounded retries, and torn-object healing: a retry that
  // finds `name` already existing treats a size match as success (a prior
  // attempt landed after its timeout) and deletes + re-uploads on mismatch.
  void PutWithRetry(size_t shard, std::string name, Buffer object,
                    std::function<void(Status)> done);
  void StartPutAttempt(std::shared_ptr<PutRetryState> op);
  void RawPutAttempt(std::shared_ptr<PutRetryState> op);
  void OnPutAttemptFailed(std::shared_ptr<PutRetryState> op, Status s);
  // Range GET with timeout and bounded retries on Unavailable; other errors
  // (NotFound, OutOfRange, Corruption) are permanent and pass through.
  void GetRangeWithRetry(size_t shard, std::string name, uint64_t offset,
                         uint64_t len,
                         std::function<void(Result<Buffer>)> done);
  void StartGetAttempt(std::shared_ptr<GetRetryState> op);
  void OnGetAttemptFailed(std::shared_ptr<GetRetryState> op, Status s);
  // Fire-and-forget DELETE with bounded retries; a final failure only
  // leaves garbage behind.
  void DeleteWithRetry(size_t shard, const std::string& name, int attempt = 0);
  void ScheduleDegradedProbe(size_t shard);
  void MarkFenced();
  void ApplyReady();
  void ApplyObjectExtents(uint64_t seq, const DataObjectHeader& header,
                          uint64_t payload_bytes);
  void AccountDisplaced(const ExtentMap<ObjTarget>::ExtentVec& displaced);
  void MaybeCheckpoint();
  void MaybeGc();
  void CleanOneObject(uint64_t victim);
  void FinishGcRound();
  void ProcessDelete(uint64_t seq);
  void ReexamineDeferred();
  std::optional<uint64_t> PickGcVictim(size_t shard) const;
  // Least-utilized victim across shards whose utilization is below
  // `watermark`; shards are tried in ascending-utilization order.
  std::optional<uint64_t> PickShardedVictim(double watermark) const;
  // Recovery pipeline (§3.3, sharded per DESIGN.md §9).
  void RecoverTryCheckpoint(std::shared_ptr<RecoverState> st,
                            size_t back_index);
  void RecoverScanAndReplay(std::shared_ptr<RecoverState> st);
  void RecoverReplayNext(std::shared_ptr<RecoverState> st);
  void RecoverFinish(std::shared_ptr<RecoverState> st);

  ClientHost* host_;
  std::vector<Shard> shards_;
  WriteCache* cache_;
  LsvdConfig config_;

  // The object map lives behind the narrow ExtentMapIface: the classic flat
  // map by default (bit-identical to older builds), or the compressed
  // two-level PagedExtentMap when config.map_resident_bytes > 0
  // (DESIGN.md §13). object_map_ points at whichever is active.
  ExtentMap<ObjTarget> flat_map_;
  std::unique_ptr<PagedExtentMap<ObjTarget>> paged_map_;
  ExtentMapIface<ObjTarget>* object_map_ = nullptr;
  std::map<uint64_t, ObjectInfo> object_info_;  // applied data objects
  // Per-object GC generation, feeding the policy's pedigree floor.
  // Persisted (v2+ data-object headers, checkpoint v3 table), so victim
  // scoring — which also ages candidates on the recoverable object-sequence
  // clock, never a wall clock — is identical before and after recovery.
  std::map<uint64_t, uint32_t> object_generation_;
  std::optional<OpenBatch> batch_;              // client-write batch (hot)
  // Cold client-write batch, open only under gc_hot_cold_split: writes to
  // regions below the heat threshold batch separately so objects die either
  // mostly together (hot) or not at all (cold).
  std::optional<OpenBatch> cold_batch_;
  std::optional<OpenBatch> gc_batch_;           // GC-copy batch
  std::vector<uint64_t> gc_batch_cleaned_;      // victims of the open GC batch
  // Running generation of the open GC batch: 1 + max generation among the
  // victims whose copies it holds (tracked only when gc_extended()).
  uint32_t gc_batch_generation_ = 0;

  std::deque<SealedObject> put_queue_;
  std::map<uint64_t, SealedObject> in_flight_;  // seq -> awaiting ack
  std::map<uint64_t, SealedObject> completed_;  // acked, awaiting in-order apply
  int outstanding_puts_ = 0;  // across all shards
  int put_slot_id_ = -1;  // registration with the host's PutScheduler
  Rng retry_rng_;

  uint64_t next_seq_ = 1;
  uint64_t applied_seq_ = 0;
  uint64_t last_checkpoint_seq_ = 0;
  uint64_t objects_since_checkpoint_ = 0;
  uint64_t checkpoint_counter_ = 0;  // monotonic checkpoint-object id
  bool checkpoint_in_flight_ = false;

  // Per-shard victim-selection policies (docs/GC.md), resolved from
  // config.gc_policy / gc_shard_policy at construction.
  std::vector<std::unique_ptr<GcPolicy>> gc_policies_;

  bool gc_running_ = false;
  // Victims whose live data sits in the open (unsealed) GC batch: excluded
  // from re-selection; removed when their deletion is processed.
  std::set<uint64_t> gc_pending_victims_;
  std::set<uint64_t> snapshots_;
  std::vector<DeferredDelete> deferred_deletes_;
  bool fenced_ = false;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::string metrics_prefix_;  // for lazily-registered counters
  Counter* c_client_bytes_;
  Counter* c_coalesced_bytes_;
  Counter* c_objects_put_;
  Counter* c_object_bytes_;
  Counter* c_payload_bytes_;
  Counter* c_gc_objects_cleaned_;
  Counter* c_gc_bytes_moved_;
  Counter* c_gc_cache_hits_;
  Counter* c_objects_deleted_;
  Counter* c_checkpoints_;
  Counter* c_deferred_deletes_;
  Counter* c_put_failures_;
  Counter* c_retries_;
  Counter* c_timeouts_;
  Counter* c_gc_aborted_corrupt_;
  // Trim counters, registered lazily on the first AddTrim so volumes that
  // never trim keep their metric dumps unchanged (docs/METRICS.md).
  Counter* c_trim_extents_ = nullptr;
  Counter* c_trim_punched_bytes_ = nullptr;
  // Extended-GC metrics, registered only when config.gc_extended() so the
  // long-standing default metric dumps stay unchanged (docs/METRICS.md).
  Counter* c_gc_cold_objects_ = nullptr;
  // Registered only when batch_seal_deadline > 0 (adaptive batching), so
  // default metric dumps stay unchanged.
  Counter* c_deadline_seals_ = nullptr;
  Gauge* g_cost_benefit_score_ = nullptr;
  // Write-lifecycle stages downstream of the journal ack: batch open ->
  // seal, and seal -> applied to the object map (commit).
  Histogram* h_open_to_seal_us_;
  Histogram* h_seal_to_commit_us_;
  // Last member: destroyed first, so gauge callbacks never outlive the state
  // they read (the shared host registry outlives detached volumes).
  CallbackGuard callback_guard_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_BACKEND_STORE_H_
