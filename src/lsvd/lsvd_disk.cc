#include "src/lsvd/lsvd_disk.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace lsvd {
namespace {

// Write-cache map checkpoint cadence, in journal records.
constexpr uint64_t kCacheCheckpointRecords = 4096;

bool Aligned(uint64_t v) { return v % kBlockSize == 0; }

}  // namespace

LsvdDisk::LsvdDisk(ClientHost* host, ObjectStore* store, LsvdConfig config,
                   MetricsRegistry* metrics)
    : LsvdDisk(host, std::vector<ObjectStore*>{store}, std::move(config),
               metrics) {}

LsvdDisk::LsvdDisk(ClientHost* host, ObjectStore* store, LsvdConfig config,
                   DiskRegions regions, MetricsRegistry* metrics)
    : LsvdDisk(host, std::vector<ObjectStore*>{store}, std::move(config),
               regions, metrics) {}

LsvdDisk::LsvdDisk(ClientHost* host, std::vector<ObjectStore*> stores,
                   LsvdConfig config, MetricsRegistry* metrics)
    : host_(host), stores_(std::move(stores)), config_(std::move(config)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  auto wc_region = host_->AllocRegion(config_.write_cache_size,
                                      config_.volume_name + ".write_cache");
  auto rc_region = host_->AllocRegion(config_.read_cache_size,
                                      config_.volume_name + ".read_cache");
  assert(wc_region.ok() && rc_region.ok() && "SSD too small for caches");
  wc_base_ = *wc_region;
  rc_base_ = *rc_region;
  InitComponents();
}

LsvdDisk::LsvdDisk(ClientHost* host, std::vector<ObjectStore*> stores,
                   LsvdConfig config, DiskRegions regions,
                   MetricsRegistry* metrics)
    : host_(host), stores_(std::move(stores)), config_(std::move(config)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  wc_base_ = regions.write_cache_base;
  rc_base_ = regions.read_cache_base;
  InitComponents();
}

void LsvdDisk::InitComponents() {
  const std::string& p = config_.metrics_prefix;
  write_cache_ = std::make_unique<WriteCache>(
      host_, wc_base_, config_.write_cache_size, config_.costs, metrics_,
      p + ".write_cache", config_.volume_size);
  if (config_.gc_hot_cold_split) {
    write_cache_->EnableHeatTracking(config_.gc_heat_halflife);
  }
  if (config_.adaptive_batching()) {
    write_cache_->EnableAdaptiveBatching(config_.batch_seal_deadline,
                                         config_.journal_flush_coalescing,
                                         config_.small_write_fast_path);
  }
  read_cache_ = std::make_unique<ReadCache>(
      host_, rc_base_, config_.read_cache_size, config_.read_cache_line,
      metrics_, p + ".read_cache");
  backend_ = std::make_unique<BackendStore>(host_, stores_, write_cache_.get(),
                                            config_, metrics_,
                                            config_.backend_metrics_prefix);
  backend_->on_synced = [this](uint64_t seq) {
    write_cache_->ReleaseThrough(seq);
  };

  c_writes_ = metrics_->GetCounter(p + ".writes");
  c_write_bytes_ = metrics_->GetCounter(p + ".write_bytes");
  c_reads_ = metrics_->GetCounter(p + ".reads");
  c_read_bytes_ = metrics_->GetCounter(p + ".read_bytes");
  c_flushes_ = metrics_->GetCounter(p + ".flushes");
  c_write_cache_hits_ = metrics_->GetCounter(p + ".read.write_cache_hits");
  c_read_cache_hits_ = metrics_->GetCounter(p + ".read.read_cache_hits");
  c_backend_reads_ = metrics_->GetCounter(p + ".read.backend_reads");
  c_zero_reads_ = metrics_->GetCounter(p + ".read.zero_reads");
  h_write_ack_us_ = metrics_->GetHistogram(p + ".write.ack_us");
  h_read_e2e_us_ = metrics_->GetHistogram(p + ".read.e2e_us");
  h_read_write_cache_us_ = metrics_->GetHistogram(p + ".read.write_cache_us");
  h_read_read_cache_us_ = metrics_->GetHistogram(p + ".read.read_cache_us");
  h_read_backend_us_ = metrics_->GetHistogram(p + ".read.backend_us");
  h_read_zero_us_ = metrics_->GetHistogram(p + ".read.zero_us");

  if (!config_.qos.unlimited()) {
    qos_id_ = host_->qos()->RegisterVolume(config_.volume_name, config_.qos,
                                           metrics_, p);
  }
  attach_id_ = host_->AttachVolume(
      config_.volume_name,
      ClientHost::VolumeCounters{c_writes_, c_write_bytes_, c_reads_,
                                 c_read_bytes_});
}

LsvdDiskStats LsvdDisk::stats() const {
  LsvdDiskStats s;
  s.writes = c_writes_->value();
  s.write_bytes = c_write_bytes_->value();
  s.reads = c_reads_->value();
  s.read_bytes = c_read_bytes_->value();
  s.flushes = c_flushes_->value();
  s.write_cache_hits = c_write_cache_hits_->value();
  s.read_cache_hits = c_read_cache_hits_->value();
  s.backend_reads = c_backend_reads_->value();
  s.zero_reads = c_zero_reads_->value();
  if (c_trims_ != nullptr) {
    s.trims = c_trims_->value();
    s.trim_bytes = c_trim_bytes_->value();
  }
  return s;
}

LsvdDisk::~LsvdDisk() {
  Kill();
  host_->DetachVolume(attach_id_);
  if (qos_id_ >= 0) {
    host_->qos()->UnregisterVolume(qos_id_);
  }
}

void LsvdDisk::Kill() {
  *alive_ = false;
  write_cache_->Kill();
  read_cache_->Kill();
  backend_->Kill();
}

void LsvdDisk::Create(std::function<void(Status)> done) {
  auto alive = alive_;
  write_cache_->Format([this, alive, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    // For clones this replays the base image's object stream into the map;
    // for a fresh volume it is a no-op. Either way an initial checkpoint is
    // written so later recoveries have an anchor.
    backend_->Recover([this, alive, done = std::move(done)](Status s2) {
      if (!*alive) {
        return;
      }
      if (!s2.ok()) {
        done(s2);
        return;
      }
      backend_->WriteCheckpoint(std::move(done));
    });
  });
}

void LsvdDisk::OpenAfterCrash(std::function<void(Status)> done) {
  auto alive = alive_;
  write_cache_->Recover([this, alive, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    backend_->Recover([this, alive, done = std::move(done)](Status s2) {
      if (!*alive) {
        return;
      }
      if (!s2.ok()) {
        done(s2);
        return;
      }
      ReplayCacheTail(std::move(done));
    });
  });
}

void LsvdDisk::OpenClean(std::function<void(Status)> done) {
  auto alive = alive_;
  OpenAfterCrash([this, alive, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    // Restoring the read-cache map is best-effort: a corrupt or missing map
    // just means a cold read cache.
    read_cache_->LoadMap([done = std::move(done)](Status) {
      done(Status::Ok());
    });
  });
}

void LsvdDisk::OpenCacheLost(std::function<void(Status)> done) {
  auto alive = alive_;
  write_cache_->Format([this, alive, done = std::move(done)](Status s) {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    backend_->Recover(std::move(done));
  });
}

// Rewind-and-replay (§3.3): every journal record whose backend batch did not
// commit is re-sent to the backend, in log order, under fresh sequence
// numbers. Committed-and-cached writes that get resent are harmless
// duplicates — replay preserves order, so the final image is identical.
void LsvdDisk::ReplayCacheTail(std::function<void(Status)> done) {
  // A power failure can drop journal records whose batches the backend had
  // already committed. A surviving *older* record for the same blocks would
  // then shadow the newer backend data through the cache map, so evict
  // everything the backend already owns before serving reads.
  write_cache_->ReleaseThrough(backend_->applied_seq());
  write_cache_->EvictReleasable();
  auto records = std::make_shared<std::vector<WriteCache::RecordMeta>>(
      write_cache_->RecordsAfterBatch(backend_->applied_seq()));
  auto index = std::make_shared<size_t>(0);
  auto alive = alive_;
  // The loop body holds only a weak reference to itself; each async hop's
  // callback re-locks it, so the last strong reference (the callback of the
  // final payload read, or the local below) dies when the loop ends instead
  // of leaking in a shared_ptr cycle.
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [this, alive, records, index, weak_step, done]() {
    if (!*alive) {
      return;
    }
    if (*index >= records->size()) {
      backend_->Seal();
      done(Status::Ok());
      return;
    }
    const WriteCache::RecordMeta& rec = (*records)[*index];
    if (rec.is_trim) {
      // Tombstone records carry no payload: re-punch the backend directly,
      // preserving log order relative to the surrounding write records.
      for (const auto& e : rec.extents) {
        backend_->AddTrim(e.vlba, e.len);
      }
      (*index)++;
      host_->sim()->After(0, [step = weak_step.lock()]() { (*step)(); });
      return;
    }
    write_cache_->ReadRecordPayload(rec,
                                    [this, alive, records, index,
                                     step = weak_step.lock(),
                                     done](Result<Buffer> r) {
      if (!*alive) {
        return;
      }
      if (!r.ok()) {
        done(r.status());
        return;
      }
      const WriteCache::RecordMeta& cur = (*records)[*index];
      uint64_t off = 0;
      for (const auto& e : cur.extents) {
        backend_->AddWrite(e.vlba, r->Slice(off, e.len));
        off += e.len;
      }
      (*index)++;
      (*step)();
    });
  };
  (*step)();
}

void LsvdDisk::ArmBatchTimer() {
  if (batch_timer_armed_) {
    return;
  }
  batch_timer_armed_ = true;
  auto alive = alive_;
  host_->sim()->After(config_.batch_max_age, [this, alive]() {
    if (!*alive) {
      return;
    }
    batch_timer_armed_ = false;
    backend_->SealIfAged(config_.batch_max_age);
    // Re-arm if a batch is still (or newly) open.
    if (!backend_->idle()) {
      ArmBatchTimer();
    }
  });
}

void LsvdDisk::MaybeCheckpointCache() {
  if (cache_ckpt_in_flight_ ||
      write_cache_->stats().records - records_at_last_ckpt_ <
          kCacheCheckpointRecords) {
    return;
  }
  cache_ckpt_in_flight_ = true;
  records_at_last_ckpt_ = write_cache_->stats().records;
  auto alive = alive_;
  write_cache_->WriteCheckpoint(backend_->applied_seq(),
                                [this, alive](Status) {
    if (!*alive) {
      return;
    }
    cache_ckpt_in_flight_ = false;
  });
}

void LsvdDisk::Write(uint64_t offset, Buffer data,
                     std::function<void(Status)> done) {
  if (!Aligned(offset) || !Aligned(data.size()) || data.empty()) {
    done(Status::InvalidArgument("unaligned or empty write"));
    return;
  }
  if (offset + data.size() > config_.volume_size) {
    done(Status::OutOfRange("write beyond volume size"));
    return;
  }
  c_writes_->Inc();
  c_write_bytes_->Inc(data.size());
  // The ack clock starts before admission: tokens a throttled tenant waits
  // for are part of its observed write latency.
  const Nanos submitted = host_->sim()->now();
  if (qos_id_ < 0) {
    WriteAdmitted(offset, std::move(data), submitted, std::move(done));
    return;
  }
  const uint64_t bytes = data.size();
  auto alive = alive_;
  host_->qos()->Admit(qos_id_, bytes,
                      [this, alive, offset, data = std::move(data), submitted,
                       done = std::move(done)]() mutable {
    if (!*alive) {
      return;
    }
    WriteAdmitted(offset, std::move(data), submitted, std::move(done));
  });
}

void LsvdDisk::WriteAdmitted(uint64_t offset, Buffer data, Nanos submitted,
                             std::function<void(Status)> done) {
  // Stale read-cache lines for this range must never be served again.
  read_cache_->Invalidate(offset, data.size());

  // A copy of the write goes to the block store's open batch (§3.2 step c);
  // the batch seq is journaled for crash replay.
  const uint64_t batch_seq = backend_->AddWrite(offset, data);
  ArmBatchTimer();
  MaybeCheckpointCache();

  // Ack latency: submission to journal-record-durable (when `done` fires).
  auto alive = alive_;
  auto acked = [this, alive, submitted,
                done = std::move(done)](Status s) mutable {
    if (*alive) {
      RecordLatencyUs(h_write_ack_us_, host_->sim()->now() - submitted);
    }
    done(s);
  };
  host_->kernel_cpu()->Submit(
      config_.costs.write_submit + config_.costs.write_map_update,
      [this, alive, offset, data = std::move(data), batch_seq,
       acked = std::move(acked)]() mutable {
    if (!*alive) {
      return;
    }
    write_cache_->Append(offset, std::move(data), batch_seq,
                         std::move(acked));
  });
}

void LsvdDisk::Trim(uint64_t offset, uint64_t len,
                    std::function<void(Status)> done) {
  if (!Aligned(offset) || !Aligned(len) || len == 0) {
    done(Status::InvalidArgument("unaligned or empty trim"));
    return;
  }
  if (offset + len > config_.volume_size) {
    done(Status::OutOfRange("trim beyond volume size"));
    return;
  }
  if (c_trims_ == nullptr) {
    const std::string& p = config_.metrics_prefix;
    c_trims_ = metrics_->GetCounter(p + ".trims");
    c_trim_bytes_ = metrics_->GetCounter(p + ".trim_bytes");
  }
  c_trims_->Inc();
  c_trim_bytes_->Inc(len);
  // Trims ride the write path's QoS lane, charged by trimmed length, so a
  // discard storm cannot starve a throttled tenant's writes out of order.
  const Nanos submitted = host_->sim()->now();
  if (qos_id_ < 0) {
    TrimAdmitted(offset, len, submitted, std::move(done));
    return;
  }
  auto alive = alive_;
  host_->qos()->Admit(qos_id_, len,
                      [this, alive, offset, len, submitted,
                       done = std::move(done)]() mutable {
    if (!*alive) {
      return;
    }
    TrimAdmitted(offset, len, submitted, std::move(done));
  });
}

void LsvdDisk::TrimAdmitted(uint64_t offset, uint64_t len, Nanos submitted,
                            std::function<void(Status)> done) {
  // Stale read-cache lines must never serve pre-trim data again.
  read_cache_->Invalidate(offset, len);

  // The trim enters the object stream like a write (§3.2 step c): AddTrim
  // seals any open write batch first, so the punch applies strictly after
  // every earlier write. The batch seq is journaled for crash replay.
  const uint64_t batch_seq = backend_->AddTrim(offset, len);
  ArmBatchTimer();
  MaybeCheckpointCache();

  auto alive = alive_;
  auto acked = [this, alive, submitted,
                done = std::move(done)](Status s) mutable {
    if (*alive) {
      RecordLatencyUs(h_write_ack_us_, host_->sim()->now() - submitted);
    }
    done(s);
  };
  host_->kernel_cpu()->Submit(
      config_.costs.write_submit + config_.costs.write_map_update,
      [this, alive, offset, len, batch_seq,
       acked = std::move(acked)]() mutable {
    if (!*alive) {
      return;
    }
    write_cache_->AppendTrim(offset, len, batch_seq, std::move(acked));
  });
}

void LsvdDisk::Read(uint64_t offset, uint64_t len,
                    std::function<void(Result<Buffer>)> done) {
  if (!Aligned(offset) || !Aligned(len) || len == 0) {
    done(Status::InvalidArgument("unaligned or empty read"));
    return;
  }
  if (offset + len > config_.volume_size) {
    done(Status::OutOfRange("read beyond volume size"));
    return;
  }
  c_reads_->Inc();
  c_read_bytes_->Inc(len);
  const Nanos started = host_->sim()->now();
  if (qos_id_ < 0) {
    ReadAdmitted(offset, len, started, std::move(done));
    return;
  }
  auto alive = alive_;
  host_->qos()->Admit(qos_id_, len,
                      [this, alive, offset, len, started,
                       done = std::move(done)]() mutable {
    if (!*alive) {
      return;
    }
    ReadAdmitted(offset, len, started, std::move(done));
  });
}

void LsvdDisk::ReadAdmitted(uint64_t offset, uint64_t len, Nanos started,
                            std::function<void(Result<Buffer>)> done) {
  // Build the routing plan: write cache > read cache > backend > zeros.
  struct Fragment {
    FragmentKind kind;
    uint64_t vlba;
    uint64_t len;
    uint64_t plba = 0;   // caches
    ObjTarget target{};  // backend
  };
  auto plan = std::make_shared<std::vector<Fragment>>();
  ExtentMap<SsdTarget>::SegmentVec wsegs;
  ExtentMap<SsdTarget>::SegmentVec rsegs;
  ExtentMap<ObjTarget>::SegmentVec osegs;
  auto plan_below_write_cache = [&](uint64_t start, uint64_t sublen) {
    read_cache_->map().Lookup(start, sublen, &rsegs);
    for (const auto& rseg : rsegs) {
      if (rseg.target.has_value()) {
        plan->push_back(Fragment{FragmentKind::kReadCache, rseg.start,
                                 rseg.len, rseg.target->plba, {}});
        continue;
      }
      backend_->object_map().Lookup(rseg.start, rseg.len, &osegs);
      for (const auto& oseg : osegs) {
        if (oseg.target.has_value()) {
          plan->push_back(Fragment{FragmentKind::kBackend, oseg.start,
                                   oseg.len, 0, *oseg.target});
        } else {
          plan->push_back(Fragment{FragmentKind::kZero, oseg.start, oseg.len,
                                   0, {}});
        }
      }
    }
  };
  // Pending trim tombstones (journaled but not yet released) shadow the
  // layers below the write cache: a trimmed range reads as zeros even while
  // older backend objects still hold its pre-trim data.
  const ExtentMap<ObjTarget>& trim_map = write_cache_->trim_map();
  write_cache_->map().Lookup(offset, len, &wsegs);
  for (const auto& wseg : wsegs) {
    if (wseg.target.has_value()) {
      plan->push_back(Fragment{FragmentKind::kWriteCache, wseg.start,
                               wseg.len, wseg.target->plba, {}});
      continue;
    }
    if (trim_map.empty()) {
      plan_below_write_cache(wseg.start, wseg.len);
      continue;
    }
    ExtentMap<ObjTarget>::SegmentVec tsegs;
    trim_map.Lookup(wseg.start, wseg.len, &tsegs);
    for (const auto& tseg : tsegs) {
      if (tseg.target.has_value()) {
        plan->push_back(Fragment{FragmentKind::kZero, tseg.start, tseg.len,
                                 0, {}});
      } else {
        plan_below_write_cache(tseg.start, tseg.len);
      }
    }
  }

  auto parts = std::make_shared<std::vector<Buffer>>(plan->size());
  auto remaining = std::make_shared<size_t>(plan->size());
  auto failed = std::make_shared<bool>(false);
  auto alive = alive_;
  // Per-fragment routing latency (submit -> fragment data available), into
  // the per-route histogram; end-to-end latency recorded when the last
  // fragment lands. Callers reach here only through component callbacks that
  // are gated on their own alive flags, but guard anyway for the synchronous
  // kZero path during teardown.
  auto route_hist = [this](FragmentKind kind) -> Histogram* {
    switch (kind) {
      case FragmentKind::kWriteCache:
        return h_read_write_cache_us_;
      case FragmentKind::kReadCache:
        return h_read_read_cache_us_;
      case FragmentKind::kBackend:
        return h_read_backend_us_;
      case FragmentKind::kZero:
        return h_read_zero_us_;
    }
    return nullptr;
  };
  auto finish_part = [this, alive, started, plan, parts, remaining, failed,
                      route_hist, done](size_t i, Result<Buffer> r) {
    if (*alive) {
      const Nanos elapsed = host_->sim()->now() - started;
      RecordLatencyUs(route_hist((*plan)[i].kind), elapsed);
    }
    if (r.ok()) {
      (*parts)[i] = std::move(r).value();
    } else if (!*failed) {
      *failed = true;
      done(r.status());
    }
    if (--*remaining == 0 && !*failed) {
      if (*alive) {
        RecordLatencyUs(h_read_e2e_us_, host_->sim()->now() - started);
      }
      Buffer out;
      for (auto& p : *parts) {
        out.Append(p);
      }
      done(out);
    }
  };

  // Charge the kernel-side lookup once per client read.
  host_->kernel_cpu()->Submit(
      config_.costs.read_map_lookup + config_.costs.read_hit,
      [this, alive, plan, finish_part]() {
    if (!*alive) {
      return;
    }
    for (size_t i = 0; i < plan->size(); i++) {
      const Fragment& frag = (*plan)[i];
      switch (frag.kind) {
        case FragmentKind::kWriteCache:
          c_write_cache_hits_->Inc();
          write_cache_->ReadData(frag.plba, frag.len,
                                 [i, finish_part](Result<Buffer> r) {
            finish_part(i, std::move(r));
          });
          break;
        case FragmentKind::kReadCache:
          c_read_cache_hits_->Inc();
          read_cache_->ReadData(frag.plba, frag.len,
                                [i, finish_part](Result<Buffer> r) {
            finish_part(i, std::move(r));
          });
          break;
        case FragmentKind::kZero:
          c_zero_reads_->Inc();
          finish_part(i, Buffer::Zeros(frag.len));
          break;
        case FragmentKind::kBackend: {
          c_backend_reads_->Inc();
          // Temporal-locality prefetch (§3.2): extend the fetch to the
          // remainder of the extent, up to the prefetch window — data
          // written together is fetched together.
          uint64_t fetch_len = frag.len;
          if (fetch_len < config_.prefetch_bytes) {
            ExtentMap<ObjTarget>::SegmentVec around;
            backend_->object_map().Lookup(frag.vlba, config_.prefetch_bytes,
                                          &around);
            if (!around.empty() && around[0].target.has_value() &&
                *around[0].target == frag.target) {
              fetch_len = std::min(around[0].len, config_.prefetch_bytes);
            }
          }
          fetch_len = std::max(fetch_len, frag.len);
          const uint64_t frag_len = frag.len;
          const uint64_t frag_vlba = frag.vlba;
          // Miss path overheads (Table 6): kernel/user transitions + daemon.
          host_->kernel_cpu()->Submit(config_.costs.read_miss_kernel,
                                      [this, alive, i, frag, fetch_len,
                                       frag_len, frag_vlba, finish_part]() {
            if (!*alive) {
              return;
            }
            host_->user_cpu()->Submit(config_.costs.read_miss_golang,
                                      [this, alive, i, frag, fetch_len,
                                       frag_len, frag_vlba, finish_part]() {
              if (!*alive) {
                return;
              }
              backend_->Fetch(frag.target, fetch_len,
                              [this, alive, i, fetch_len, frag_len, frag_vlba,
                               finish_part](Result<Buffer> r) {
                if (!*alive) {
                  return;
                }
                if (!r.ok()) {
                  finish_part(i, std::move(r));
                  return;
                }
                // Cache the whole fetched window (the requested fragment
                // plus prefetch), then return the requested part.
                read_cache_->Insert(frag_vlba, *r);
                (void)fetch_len;
                finish_part(i, r->Slice(0, frag_len));
              });
            });
          });
          break;
        }
      }
    }
  });
}

void LsvdDisk::Flush(std::function<void(Status)> done) {
  c_flushes_->Inc();
  write_cache_->Barrier(std::move(done));
}

void LsvdDisk::Drain(std::function<void(Status)> done) {
  backend_->Seal();
  PollDrain(std::move(done));
}

void LsvdDisk::PollDrain(std::function<void(Status)> done) {
  if (backend_->idle()) {
    done(Status::Ok());
    return;
  }
  auto alive = alive_;
  host_->sim()->After(kMillisecond, [this, alive, done = std::move(done)]() mutable {
    if (!*alive) {
      return;
    }
    backend_->Seal();
    PollDrain(std::move(done));
  });
}

void LsvdDisk::CleanShutdown(std::function<void(Status)> done) {
  auto alive = alive_;
  Drain([this, alive, done = std::move(done)](Status s) mutable {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    write_cache_->WriteCheckpoint(backend_->applied_seq(),
                                  [this, alive,
                                   done = std::move(done)](Status s2) mutable {
      if (!*alive) {
        return;
      }
      if (!s2.ok()) {
        done(s2);
        return;
      }
      read_cache_->PersistMap([this, alive,
                               done = std::move(done)](Status) mutable {
        if (!*alive) {
          return;
        }
        backend_->WriteCheckpoint(std::move(done));
      });
    });
  });
}

void LsvdDisk::DetachForMigration(
    std::function<void(Result<MigrationHandoff>)> done) {
  auto alive = alive_;
  Drain([this, alive, done = std::move(done)](Status s) mutable {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    backend_->WriteCheckpoint([this, alive,
                               done = std::move(done)](Status s2) mutable {
      if (!*alive) {
        return;
      }
      if (!s2.ok()) {
        done(s2);
        return;
      }
      MigrationHandoff handoff;
      handoff.applied_seq = backend_->applied_seq();
      handoff.checkpoint_seq = backend_->last_checkpoint_seq();
      done(handoff);
    });
  });
}

void LsvdDisk::Snapshot(std::function<void(Result<uint64_t>)> done) {
  auto alive = alive_;
  // Snapshots pin an object-stream position; drain first so the snapshot
  // covers everything written so far.
  Drain([this, alive, done = std::move(done)](Status s) mutable {
    if (!*alive) {
      return;
    }
    if (!s.ok()) {
      done(s);
      return;
    }
    backend_->CreateSnapshot(std::move(done));
  });
}

void LsvdDisk::DeleteSnapshot(uint64_t seq,
                              std::function<void(Status)> done) {
  backend_->DeleteSnapshot(seq, std::move(done));
}

LsvdConfig LsvdDisk::MakeCloneConfig(const std::string& clone_name,
                                     uint64_t base_seq) const {
  LsvdConfig clone = config_;
  clone.volume_name = clone_name;
  // The clone's base is this volume's object stream up to base_seq; if this
  // volume is itself a clone, sequences at or below our own base still
  // resolve to the original base image name chain only one level deep, so
  // cloning a clone requires base_seq > our base_last_seq.
  assert(base_seq > config_.base_last_seq &&
         "cannot clone from within another volume's base image");
  clone.base_image = config_.volume_name;
  clone.base_last_seq = base_seq;
  return clone;
}

}  // namespace lsvd
