// LsvdDisk: the log-structured virtual disk (paper Figure 1).
//
// Public block-device API over the three LSVD components:
//   - WriteCache  : log-structured write-back cache on the local SSD
//   - ReadCache   : block-granular read cache on the same SSD
//   - BackendStore: batched, immutable, sequence-numbered objects on an
//                   S3-compatible store, with GC, snapshots and clones
//
// Reads consult the write cache, then the read cache, then the backend
// (with temporal-locality prefetch); unmapped ranges read as zeros. A write
// is acknowledged when its journal record is on the SSD; a Flush is a single
// device commit barrier. Write-cache space is released only once the backend
// object containing the data has committed, so a crash can always rewind the
// cache log and replay the tail to the backend (§3.3):
//
//   Create()         : fresh volume (also materializes a clone's base map)
//   OpenAfterCrash() : cache survived — recovers every committed write
//   OpenCacheLost()  : cache gone — recovers a consistent prefix
//   CleanShutdown()  : drains writeback and persists all maps
#ifndef SRC_LSVD_LSVD_DISK_H_
#define SRC_LSVD_LSVD_DISK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/blockdev/virtual_disk.h"
#include "src/lsvd/backend_store.h"
#include "src/lsvd/client_host.h"
#include "src/lsvd/config.h"
#include "src/lsvd/read_cache.h"
#include "src/lsvd/write_cache.h"
#include "src/objstore/object_store.h"
#include "src/util/metrics.h"

namespace lsvd {

// View over the disk's registry counters (see docs/METRICS.md, "lsvd.*").
struct LsvdDiskStats {
  uint64_t writes = 0;
  uint64_t write_bytes = 0;
  uint64_t reads = 0;
  uint64_t read_bytes = 0;
  uint64_t flushes = 0;
  // TRIM/discard, zero until the volume's first Trim (lazy counters).
  uint64_t trims = 0;
  uint64_t trim_bytes = 0;
  // Read routing, counted per contiguous fragment.
  uint64_t write_cache_hits = 0;
  uint64_t read_cache_hits = 0;
  uint64_t backend_reads = 0;
  uint64_t zero_reads = 0;
};

// SSD regions backing a disk's caches; capture via regions() before a crash
// to re-open the same on-SSD state afterwards.
struct DiskRegions {
  uint64_t write_cache_base = 0;
  uint64_t read_cache_base = 0;
};

// Warm-handoff descriptor produced by DetachForMigration (DESIGN.md §15):
// after the write-cache tail has been drained into the backend and a fresh
// checkpoint written, these two pointers are all a target host needs to
// recover-attach the volume with zero replay beyond the checkpoint. The
// fleet layer ships a serialized form of this (plus the volume config) over
// a NetLink and charges its size against both hosts' links.
struct MigrationHandoff {
  uint64_t applied_seq = 0;     // backend image is complete through here
  uint64_t checkpoint_seq = 0;  // newest checkpoint at detach time
};

class LsvdDisk : public VirtualDisk {
 public:
  // Allocates fresh SSD regions from the host. If `metrics` is non-null all
  // of the disk's (and its components') metrics register there — e.g. a
  // bench-wide registry; the registry must outlive the disk's last snapshot.
  // Otherwise the disk owns a private registry, exposed via metrics().
  LsvdDisk(ClientHost* host, ObjectStore* store, LsvdConfig config,
           MetricsRegistry* metrics = nullptr);
  // Attaches to existing regions (re-open after a crash).
  LsvdDisk(ClientHost* host, ObjectStore* store, LsvdConfig config,
           DiskRegions regions, MetricsRegistry* metrics = nullptr);
  // Sharded backend (DESIGN.md §9): the object stream is striped round-robin
  // across `stores`; the stripe width is fixed for the volume's lifetime.
  LsvdDisk(ClientHost* host, std::vector<ObjectStore*> stores,
           LsvdConfig config, MetricsRegistry* metrics = nullptr);
  LsvdDisk(ClientHost* host, std::vector<ObjectStore*> stores,
           LsvdConfig config, DiskRegions regions,
           MetricsRegistry* metrics = nullptr);
  ~LsvdDisk() override;

  LsvdDisk(const LsvdDisk&) = delete;
  LsvdDisk& operator=(const LsvdDisk&) = delete;

  uint64_t size() const override { return config_.volume_size; }

  // --- lifecycle (call exactly one, then wait for its callback) ---
  void Create(std::function<void(Status)> done);
  void OpenAfterCrash(std::function<void(Status)> done);
  void OpenCacheLost(std::function<void(Status)> done);
  // Re-open after CleanShutdown: like OpenAfterCrash but also restores the
  // persisted read-cache map.
  void OpenClean(std::function<void(Status)> done);

  // --- block device operations (offsets/lengths multiples of 4 KiB) ---
  void Write(uint64_t offset, Buffer data,
             std::function<void(Status)> done) override;
  void Read(uint64_t offset, uint64_t len,
            std::function<void(Result<Buffer>)> done) override;
  void Flush(std::function<void(Status)> done) override;
  // TRIM/discard (DESIGN.md §13): journals a tombstone record, punches the
  // object map via a zero-payload extent in the object stream, and makes
  // reads of the range return zeros. Acknowledged like a write, once the
  // journal record is on the SSD.
  void Trim(uint64_t offset, uint64_t len,
            std::function<void(Status)> done) override;

  // --- management ---
  // Seals open batches and waits until the backend image matches the cache
  // (the precondition for VM migration, §4.3/§4.4).
  void Drain(std::function<void(Status)> done);
  // Drain + persist write-cache and read-cache maps + backend checkpoint.
  void CleanShutdown(std::function<void(Status)> done);
  // Live-migration source half (DESIGN.md §15): drain-and-seal the
  // write-cache tail into the backend, write a checkpoint so the target's
  // recover-attach replays nothing, and hand back the pointers the target
  // needs. The disk keeps serving reads until the caller destroys it; the
  // caller is responsible for fencing the stale attachment (epoch flip) and
  // freeing this host's SSD regions once the target is live.
  void DetachForMigration(std::function<void(Result<MigrationHandoff>)> done);

  void Snapshot(std::function<void(Result<uint64_t>)> done);
  void DeleteSnapshot(uint64_t seq, std::function<void(Status)> done);
  // Configuration for a new volume cloned from this volume's snapshot (or
  // current drained state) at object `seq`.
  LsvdConfig MakeCloneConfig(const std::string& clone_name,
                             uint64_t base_seq) const;

  // Simulates the client process dying: all pending callbacks are dropped.
  // The SSD/object-store contents survive per their own crash semantics.
  void Kill();

  // --- introspection ---
  DiskRegions regions() const { return DiskRegions{wc_base_, rc_base_}; }
  uint64_t volume_size() const { return config_.volume_size; }
  const LsvdConfig& config() const { return config_; }
  LsvdDiskStats stats() const;
  // The registry holding every metric of this disk and its components.
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }
  WriteCache& write_cache() { return *write_cache_; }
  ReadCache& read_cache() { return *read_cache_; }
  BackendStore& backend() { return *backend_; }

 private:
  enum class FragmentKind { kWriteCache, kReadCache, kBackend, kZero };

  void InitComponents();
  // Write/Read bodies, entered after QoS admission; `submitted` is the
  // pre-admission timestamp so throttle wait shows up in client latency.
  void WriteAdmitted(uint64_t offset, Buffer data, Nanos submitted,
                     std::function<void(Status)> done);
  void TrimAdmitted(uint64_t offset, uint64_t len, Nanos submitted,
                    std::function<void(Status)> done);
  void ReadAdmitted(uint64_t offset, uint64_t len, Nanos started,
                    std::function<void(Result<Buffer>)> done);
  void ArmBatchTimer();
  void MaybeCheckpointCache();
  void ReplayCacheTail(std::function<void(Status)> done);
  void PollDrain(std::function<void(Status)> done);

  ClientHost* host_;
  std::vector<ObjectStore*> stores_;  // one per backend shard
  LsvdConfig config_;

  // Declared before the components so it outlives them on destruction.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;

  uint64_t wc_base_ = 0;
  uint64_t rc_base_ = 0;
  std::unique_ptr<WriteCache> write_cache_;
  std::unique_ptr<ReadCache> read_cache_;
  std::unique_ptr<BackendStore> backend_;

  bool batch_timer_armed_ = false;
  uint64_t records_at_last_ckpt_ = 0;
  bool cache_ckpt_in_flight_ = false;

  // Host registrations: QoS admission (-1 = uncapped volume, admission
  // bypassed) and the host's attached-volume registry.
  int qos_id_ = -1;
  int attach_id_ = -1;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  Counter* c_writes_;
  Counter* c_write_bytes_;
  Counter* c_reads_;
  Counter* c_read_bytes_;
  Counter* c_flushes_;
  Counter* c_write_cache_hits_;
  Counter* c_read_cache_hits_;
  Counter* c_backend_reads_;
  Counter* c_zero_reads_;
  // Registered lazily on the volume's first Trim so trim-free volumes keep
  // their metric dumps unchanged (docs/METRICS.md).
  Counter* c_trims_ = nullptr;
  Counter* c_trim_bytes_ = nullptr;
  // Write lifecycle head: submit -> journal record on SSD (the client ack).
  Histogram* h_write_ack_us_;
  // Read latencies: end-to-end per client read, and per routed fragment.
  Histogram* h_read_e2e_us_;
  Histogram* h_read_write_cache_us_;
  Histogram* h_read_read_cache_us_;
  Histogram* h_read_backend_us_;
  Histogram* h_read_zero_us_;
};

}  // namespace lsvd

#endif  // SRC_LSVD_LSVD_DISK_H_
