#include "src/lsvd/gc_policy.h"

#include <algorithm>
#include <cmath>

namespace lsvd {
namespace {

class GreedyPolicy : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kGreedy; }
  double Score(const GcCandidate& c) const override {
    // Negated utilization: the strictly-greater replacement rule makes this
    // exactly the historical strictly-less least-ratio scan.
    return -c.utilization();
  }
};

class CostBenefitPolicy : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kCostBenefit; }
  double Score(const GcCandidate& c) const override {
    // Sprite-LFS benefit/cost. Benefit: the free space gained (1-u) weighted
    // by how long the data has been stable (1+age — the +1 keeps freshly
    // sealed mostly-dead objects collectable). Cost: read the object and
    // rewrite the live fraction, 1+u.
    const double u = c.utilization();
    return (1.0 - u) * (1.0 + c.age) / (1.0 + u);
  }
};

class AgeBucketedPolicy : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kAgeBucketed; }
  double Score(const GcCandidate& c) const override {
    // Coarse generation buckets: floor(log2(1+age)) capped at 6. Any object
    // in an older bucket beats any object in a younger one (the 2x stride
    // dominates the [0,1] greedy term); within a bucket, pick greedily.
    const double b = std::min(6.0, std::floor(std::log2(1.0 + c.age)));
    return 2.0 * b + (1.0 - c.utilization());
  }
};

}  // namespace

const char* GcPolicyKindName(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kGreedy:
      return "greedy";
    case GcPolicyKind::kCostBenefit:
      return "cost-benefit";
    case GcPolicyKind::kAgeBucketed:
      return "age-bucketed";
  }
  return "unknown";
}

std::optional<GcPolicyKind> ParseGcPolicyKind(std::string_view name) {
  if (name == "greedy") {
    return GcPolicyKind::kGreedy;
  }
  if (name == "cost-benefit" || name == "cost_benefit") {
    return GcPolicyKind::kCostBenefit;
  }
  if (name == "age-bucketed" || name == "age_bucketed") {
    return GcPolicyKind::kAgeBucketed;
  }
  return std::nullopt;
}

std::unique_ptr<GcPolicy> GcPolicy::Create(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kCostBenefit:
      return std::make_unique<CostBenefitPolicy>();
    case GcPolicyKind::kAgeBucketed:
      return std::make_unique<AgeBucketedPolicy>();
    case GcPolicyKind::kGreedy:
      break;
  }
  return std::make_unique<GreedyPolicy>();
}

GcPolicyKind GcPolicyForShard(GcPolicyKind base,
                              const std::vector<GcPolicyKind>& overrides,
                              size_t shard) {
  return shard < overrides.size() ? overrides[shard] : base;
}

}  // namespace lsvd
