#include "src/lsvd/gc_policy.h"

#include <algorithm>
#include <cmath>

namespace lsvd {
namespace {

class GreedyPolicy : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kGreedy; }
  double Score(const GcCandidate& c) const override {
    // Negated utilization: the strictly-greater replacement rule makes this
    // exactly the historical strictly-less least-ratio scan.
    return -c.utilization();
  }
};

// Effective age for scoring. Client data (generation 0) ages on the
// caller's advisory clock. GC output (generation > 0) must rank the same
// before and after crash recovery, so callers fill its `age` from the
// crash-stable object-sequence clock (objects created since this one; see
// GcCandidate::age) and the persisted generation tag floors the result at
// 2^g - 1: data that survived g collections is at least as stable as data
// that aged through g log2 buckets, even in the instant after the
// collection that produced it. Every input is persisted state, so a
// recovered store scores GC output identically to the pre-crash store.
double StableAge(const GcCandidate& c) {
  const double age = std::max(0.0, c.age);
  if (c.generation == 0) {
    return age;
  }
  // The pedigree floor saturates at generation 6, like the age-bucketed
  // cap: without the cap, each collection of already-cold output doubles
  // the floor and the collector feeds back into re-collecting its own
  // output.
  const double floor_age =
      std::exp2(static_cast<double>(std::min(c.generation, 6u))) - 1.0;
  return std::max(age, floor_age);
}

class CostBenefitPolicy : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kCostBenefit; }
  double Score(const GcCandidate& c) const override {
    // Sprite-LFS benefit/cost. Benefit: the free space gained (1-u) weighted
    // by how long the data has been stable (1+age — the +1 keeps freshly
    // sealed mostly-dead objects collectable). Cost: read the object and
    // rewrite the live fraction, 1+u.
    const double u = c.utilization();
    return (1.0 - u) * (1.0 + StableAge(c)) / (1.0 + u);
  }
};

class AgeBucketedPolicy : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kAgeBucketed; }
  double Score(const GcCandidate& c) const override {
    // Coarse stability buckets: floor(log2(1+age)) capped at 6. Any object
    // in an older bucket beats any object in a younger one (the 2x stride
    // dominates the [0,1] greedy term); within a bucket, pick greedily.
    // The generation floor inside StableAge lands GC output in bucket >= g.
    const double b = std::min(6.0, std::floor(std::log2(1.0 + StableAge(c))));
    return 2.0 * b + (1.0 - c.utilization());
  }
};

}  // namespace

const char* GcPolicyKindName(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kGreedy:
      return "greedy";
    case GcPolicyKind::kCostBenefit:
      return "cost-benefit";
    case GcPolicyKind::kAgeBucketed:
      return "age-bucketed";
  }
  return "unknown";
}

std::optional<GcPolicyKind> ParseGcPolicyKind(std::string_view name) {
  if (name == "greedy") {
    return GcPolicyKind::kGreedy;
  }
  if (name == "cost-benefit" || name == "cost_benefit") {
    return GcPolicyKind::kCostBenefit;
  }
  if (name == "age-bucketed" || name == "age_bucketed") {
    return GcPolicyKind::kAgeBucketed;
  }
  return std::nullopt;
}

std::unique_ptr<GcPolicy> GcPolicy::Create(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kCostBenefit:
      return std::make_unique<CostBenefitPolicy>();
    case GcPolicyKind::kAgeBucketed:
      return std::make_unique<AgeBucketedPolicy>();
    case GcPolicyKind::kGreedy:
      break;
  }
  return std::make_unique<GreedyPolicy>();
}

GcPolicyKind GcPolicyForShard(GcPolicyKind base,
                              const std::vector<GcPolicyKind>& overrides,
                              size_t shard) {
  return shard < overrides.size() ? overrides[shard] : base;
}

}  // namespace lsvd
