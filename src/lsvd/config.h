// LSVD volume configuration.
//
// Defaults follow the paper's prototype (§3.7, §4.1): 8-32 MiB backend
// batches, 70/75 % garbage-collection thresholds, a write cache taking ~20 %
// of the SSD allocation with the rest as read cache, and the prototype's
// "data passes through the SSD" kernel/user split (§4.7) as a switchable
// overhead model.
#ifndef SRC_LSVD_CONFIG_H_
#define SRC_LSVD_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lsvd/gc_policy.h"
#include "src/util/units.h"

namespace lsvd {

// Per-stage software overheads measured in the paper's Table 6. Charged
// against the client host's kernel / userspace CPU queues; the tbl06 bench
// echoes this decomposition against simulated end-to-end latency.
struct StageCosts {
  // Write path.
  Nanos write_map_update = 3 * kMicrosecond;       // k: map update
  Nanos write_submit = 9 * kMicrosecond;           // k: request handling
  Nanos record_context_switch = 65 * kMicrosecond; // k: wake journal worker
  Nanos batch_golang = 63 * kMicrosecond;          // u: per-batch daemon work
  Nanos return_to_kernel = 27 * kMicrosecond;      // u->k completion
  // Read path.
  Nanos read_map_lookup = 3 * kMicrosecond;        // k: map lookup
  Nanos read_hit = 12 * kMicrosecond;              // k: hit handling
  Nanos read_miss_kernel = 72 * kMicrosecond;      // k: switch + return paths
  Nanos read_miss_golang = 34 * kMicrosecond;      // u: daemon work
};

// Retry/backoff policy for backend object operations. All delays are in
// simulated time. An operation is attempted up to `max_attempts` times; the
// k-th retry waits min(initial_backoff * 2^k, max_backoff) scaled by a
// uniform jitter factor in [1-jitter, 1+jitter]. Attempts that produce no
// response within `op_timeout` are treated as failed (the response, if it
// ever arrives, is ignored). When a PUT exhausts its budget the store goes
// degraded and probes the backend every `degraded_probe_interval`.
struct BackendRetryPolicy {
  int max_attempts = 5;
  Nanos initial_backoff = 10 * kMillisecond;
  Nanos max_backoff = 2 * kSecond;
  double jitter = 0.25;
  Nanos op_timeout = 30 * kSecond;
  Nanos degraded_probe_interval = kSecond;
  uint64_t seed = 0xBACC0FF;  // jitter RNG seed
};

// Per-volume QoS caps, enforced by the client host's token-bucket admission
// (see src/lsvd/qos.h). Zero means uncapped on that axis; a volume with no
// caps and fair_share off bypasses admission entirely.
struct QosLimits {
  uint64_t iops = 0;           // client ops per second (reads + writes)
  uint64_t bytes_per_sec = 0;  // client payload bytes per second
  // Bucket capacity as seconds of accrual at the configured rate: how much
  // idle credit a bursty tenant may bank.
  double burst_seconds = 0.1;
  // Also draw from the host-wide shared pool (ClientHostConfig::fair_share_*)
  // so concurrent fair-share tenants split it round-robin.
  bool fair_share = false;

  bool unlimited() const {
    return iops == 0 && bytes_per_sec == 0 && !fair_share;
  }
};

struct LsvdConfig {
  std::string volume_name = "vol";
  uint64_t volume_size = 8 * kGiB;

  // SSD cache allocation (write cache includes superblock + map checkpoint
  // area; paper suggests ~20 % write / 80 % read split).
  uint64_t write_cache_size = 256 * kMiB;
  uint64_t read_cache_size = kGiB;

  // Backend batching (paper: 8 or 32 MiB).
  uint64_t batch_bytes = 8 * kMiB;
  Nanos batch_max_age = 100 * kMillisecond;
  int put_window = 8;  // concurrent outstanding PUTs (per backend shard)

  // --- Adaptive batching / group commit (DESIGN.md §12) ---
  // Seal-on-deadline: an open backend batch is sealed this long after its
  // first write even if far from batch_bytes, on a per-batch timer (unlike
  // batch_max_age, which is only polled at batch_max_age granularity). The
  // same deadline bounds how long the write cache "plugs" a lone small write
  // waiting for company before force-starting its journal record. 0 = off:
  // only size sealing plus the coarse age poll, the historical behavior.
  Nanos batch_seal_deadline = 0;
  // Group commit for the journal: concurrent Flush barriers share one SSD
  // flush instead of each issuing their own (BtrLog-style flush coalescing).
  bool journal_flush_coalescing = false;
  // Under light load (journal pipeline nearly idle) a lone small write
  // skips the plug wait entirely and starts its record immediately, trading
  // batching efficiency for latency only when there is no queue to amortize.
  bool small_write_fast_path = false;

  // True when any adaptive-batching knob is active; gates the new seal/flush
  // behaviors and their metrics so default-config runs stay byte-identical
  // (same discipline as gc_extended()).
  bool adaptive_batching() const {
    return batch_seal_deadline > 0 || journal_flush_coalescing ||
           small_write_fast_path;
  }

  // Backend sharding (DESIGN.md §9): the volume's object stream is striped
  // round-robin by batch sequence across this many independent object-store
  // shards, each with its own disk pool, retry state and PUT window. Must
  // match the number of stores the volume was created with, and must never
  // change over a volume's lifetime (placement is derived from seq).
  int backend_shards = 1;

  // Garbage collection thresholds on live/total utilization (§3.5, §4.6).
  double gc_low_watermark = 0.70;   // start cleaning below this
  double gc_high_watermark = 0.75;  // stop cleaning at this
  bool gc_enabled = true;
  // §4.6's modified collector: while copying live data, also copy ("plug")
  // mapped holes up to this size between adjacent live pieces, merging map
  // extents at a small write-amplification cost. 0 disables.
  uint64_t gc_defrag_hole_max = 0;

  // Victim-selection policy (docs/GC.md; DESIGN.md §11). `greedy` is the
  // paper's least-utilized collector and is bit-identical to the historical
  // behavior; `cost-benefit` and `age-bucketed` also weigh object age.
  GcPolicyKind gc_policy = GcPolicyKind::kGreedy;
  // Optional per-shard policy overrides, indexed by shard. Shards beyond the
  // vector's length (and all shards when it is empty) use `gc_policy`.
  std::vector<GcPolicyKind> gc_shard_policy;

  // Hot/cold segregation of *client* writes (docs/GC.md): writes whose 1 MiB
  // region shows a decayed overwrite heat >= gc_heat_threshold are batched
  // separately from cold first-touch writes, so objects die either mostly
  // together (hot) or not at all (cold). GC output is always packed into its
  // own objects regardless of this flag. Off by default — splitting opens a
  // second batch stream, which changes object boundaries.
  bool gc_hot_cold_split = false;
  double gc_heat_threshold = 2.0;
  // Half-life of the write-heat decay clock.
  Nanos gc_heat_halflife = 10 * kSecond;

  // True when any of the extended-GC knobs above are active; gates the new
  // GC metrics and the v2 data-object header so default-config runs stay
  // byte-identical to older builds (same gating discipline as checkpoint v2).
  bool gc_extended() const {
    return gc_policy != GcPolicyKind::kGreedy || !gc_shard_policy.empty() ||
           gc_hot_cold_split;
  }

  // --- Paged extent maps (DESIGN.md §13) ---
  // Resident-memory budget for the backend object map's unpacked leaf pages.
  // 0 (the default) keeps the classic fully resident flat map, bit-identical
  // to older builds (same gating discipline as gc_extended()); non-zero swaps
  // in the compressed two-level PagedExtentMap and bounds its live pages to
  // this many bytes, packing cold pages down to their run-length form.
  uint64_t map_resident_bytes = 0;
  // Virtual-address span covered by one leaf page of the paged map.
  uint64_t map_page_span = 256 * kMiB;

  // True when the paged object map is active; gates the map.* metrics so
  // default-config runs stay byte-identical.
  bool paged_map() const { return map_resident_bytes > 0; }

  // Read cache geometry.
  uint64_t read_cache_line = 64 * kKiB;
  uint64_t prefetch_bytes = 256 * kKiB;

  // Object-map checkpoint cadence, in data objects written.
  uint64_t checkpoint_interval_objects = 64;

  // Coalesce overwrites within a batch (§3.1: "writes may be coalesced
  // within a single batch, although not across batches").
  bool coalesce_within_batch = true;

  // Prototype overhead model (§4.7): the userspace daemon re-reads outgoing
  // data from the write cache SSD before each PUT.
  bool pass_through_ssd = true;

  StageCosts costs;

  BackendRetryPolicy retry;
  // Optional per-shard retry-policy overrides, indexed by shard. Shards
  // beyond the vector's length (and all shards when it is empty) use `retry`.
  std::vector<BackendRetryPolicy> shard_retry;

  // Clone support (§3.6): objects with seq <= base_last_seq are read from
  // `base_image`'s object stream.
  std::string base_image;
  uint64_t base_last_seq = 0;

  // Snapshot mounting (§3.6): when non-zero, recovery backtracks to the last
  // checkpoint at or before this object seq and replays no further — the
  // volume opens read-only-in-spirit at the snapshot point.
  uint64_t open_limit_seq = 0;

  // Per-volume QoS admission caps (multi-tenant hosts).
  QosLimits qos;

  // Roots of this volume's metric names: "<metrics_prefix>.writes",
  // "<metrics_prefix>.write_cache.*", "<backend_metrics_prefix>.gc.*", ...
  // The defaults keep the historical single-volume names; hosts with several
  // volumes sharing one registry call SetPerVolumeMetricPrefixes() so names
  // become "lsvd.<vol>.*" / "lsvd.<vol>.backend.*" (docs/METRICS.md).
  std::string metrics_prefix = "lsvd";
  std::string backend_metrics_prefix = "backend";

  void SetPerVolumeMetricPrefixes() {
    metrics_prefix = "lsvd." + volume_name;
    backend_metrics_prefix = metrics_prefix + ".backend";
  }
};

}  // namespace lsvd

#endif  // SRC_LSVD_CONFIG_H_
