#!/usr/bin/env bash
# Configures a dedicated build tree with -DLSVD_SANITIZE=address,undefined
# and runs the whole test suite under it. Usage:
#
#   scripts/run_sanitized_tests.sh [build-dir] [ctest-args...]
#
# Defaults to build-asan/ next to the source tree. Extra arguments are
# forwarded to ctest (e.g. -R LsvdDisk to narrow the run). The fault model
# the sanitizers check against is documented in DESIGN.md ("Fault model").
set -eu

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$SRC_DIR/build-asan}"
shift || true

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLSVD_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so ctest reports UBSan findings as failures, not log noise.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
