#!/usr/bin/env bash
# Configures a dedicated build tree with -DLSVD_SANITIZE=address,undefined
# and runs the test suite under it. Usage:
#
#   scripts/run_sanitized_tests.sh [--touched[=BASE] | --tsan] \
#       [build-dir] [ctest-args...]
#
# Defaults to build-asan/ next to the source tree. Extra arguments are
# forwarded to ctest (e.g. -R LsvdDisk to narrow the run). The fault model
# the sanitizers check against is documented in DESIGN.md ("Fault model").
#
# With --touched, only the tests/<name>_test.cc files changed relative to
# BASE (default: the working tree vs HEAD, including untracked test files)
# are built and executed — the cheap sanitizer pass the tier-1 ctest flow
# runs on every change (see tests/CMakeLists.txt, `sanitized_touched`).
# When nothing relevant changed it exits 0 without configuring anything.
#
# With --tsan, a separate build tree (default build-tsan/) is configured with
# -DLSVD_SANITIZE=thread and the parallel-engine test binaries — the only
# multithreaded code in the repo — run under ThreadSanitizer (see DESIGN.md
# section 14; tests/CMakeLists.txt registers this as `sanitized_tsan`).
set -eu

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

TOUCHED=0
TSAN=0
BASE="HEAD"
case "${1:-}" in
  --touched)
    TOUCHED=1
    shift
    ;;
  --touched=*)
    TOUCHED=1
    BASE="${1#--touched=}"
    shift
    ;;
  --tsan)
    TSAN=1
    shift
    ;;
esac

if [ "$TSAN" = 1 ]; then
  BUILD_DIR="${1:-$SRC_DIR/build-tsan}"
else
  BUILD_DIR="${1:-$SRC_DIR/build-asan}"
fi
shift || true

if [ "$TSAN" = 1 ]; then
  TSAN_TARGETS="sim_domain_test parallel_determinism_test fleet_test"
  cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DLSVD_SANITIZE=thread
  # shellcheck disable=SC2086
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target $TSAN_TARGETS
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  status=0
  for t in $TSAN_TARGETS; do
    echo "=== tsan: $t ==="
    "$BUILD_DIR/tests/$t" || status=1
  done
  exit "$status"
fi

if [ "$TOUCHED" = 1 ]; then
  if ! git -C "$SRC_DIR" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    echo "sanitized: not a git checkout, skipping touched-test pass"
    exit 0
  fi
  changed="$( { git -C "$SRC_DIR" diff --name-only "$BASE" -- 'tests/*.cc';
                git -C "$SRC_DIR" ls-files --others --exclude-standard \
                    -- 'tests/*.cc'; } 2>/dev/null | sort -u)"
  targets=""
  for f in $changed; do
    name="$(basename "$f" .cc)"
    case "$name" in
      *_test) targets="$targets $name" ;;
    esac
  done
  if [ -z "$targets" ]; then
    echo "sanitized: no touched test sources vs $BASE, nothing to run"
    exit 0
  fi
  echo "sanitized: touched tests vs $BASE:$targets"
fi

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLSVD_SANITIZE=address,undefined

# halt_on_error so ctest reports UBSan findings as failures, not log noise.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

if [ "$TOUCHED" = 1 ]; then
  # shellcheck disable=SC2086
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target $targets
  status=0
  for t in $targets; do
    echo "=== sanitized: $t ==="
    "$BUILD_DIR/tests/$t" || status=1
  done
  exit "$status"
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
