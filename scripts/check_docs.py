#!/usr/bin/env python3
"""Doc lint: the docs must keep up with the code.

Two checks, both wired into ctest as `check_docs`:

1. Every metric name registered in src/ (GetCounter / GetGauge /
   GetHistogram / RegisterCallback / CallbackGuard::Register) must have a
   matching row in docs/METRICS.md. Names are built as `prefix + ".suffix"`,
   so the lint extracts the dotted string-literal fragment at each
   registration site and requires that exact fragment to appear in
   METRICS.md (rows spell either the suffix, `.objects_put`, or a full
   name containing it, `backend.shard<i>.objects_put`).

2. Every bench binary named like a paper artifact (bench/fig*.cc,
   bench/tbl*.cc) must have a row in the EXPERIMENTS.md bench index.

3. Every data-member field of the config structs listed in CONFIG_STRUCTS
   must appear backticked in that struct's target doc (LsvdConfig and
   GcSimConfig in docs/GC.md, FleetConfig in docs/FLEET.md), so new knobs
   ship documented.

Run from anywhere: `python3 scripts/check_docs.py [repo_root]`.
Exit 0 = docs in sync; exit 1 = findings (listed on stderr).
"""

import re
import sys
from pathlib import Path

REGISTER_CALL = re.compile(
    r"\b(?:GetCounter|GetGauge|GetHistogram|RegisterCallback|Register)\s*\("
)
STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)*)"')
# How far past the call token to look for the name literal; registration
# sites put the name in the first argument or two, never further.
WINDOW = 160


def metric_fragments(src_root: Path):
    """Yield (file, fragment) for every dotted literal at a registration site."""
    for path in sorted(src_root.rglob("*.cc")) + sorted(src_root.rglob("*.h")):
        text = path.read_text(encoding="utf-8", errors="replace")
        for call in REGISTER_CALL.finditer(text):
            window = text[call.end():call.end() + WINDOW]
            # Stop at a lambda: RegisterCallback bodies may contain
            # unrelated string literals.
            lambda_at = window.find("[")
            if lambda_at != -1:
                window = window[:lambda_at]
            for lit in STRING_LITERAL.finditer(window):
                frag = lit.group(1)
                # Metric fragments are dotted identifier paths; anything
                # else (error text, file names) is not a metric name.
                if re.fullmatch(r"\.?[A-Za-z0-9_]+(\.[A-Za-z0-9_]+)*", frag) \
                        and "." in frag.lstrip("."):
                    yield path, frag
                elif re.fullmatch(r"\.[A-Za-z0-9_]+", frag):
                    yield path, frag


def check_metrics(repo: Path, errors: list):
    metrics_md = (repo / "docs" / "METRICS.md").read_text(encoding="utf-8")
    seen = set()
    for path, frag in metric_fragments(repo / "src"):
        if frag in seen:
            continue
        seen.add(frag)
        if frag not in metrics_md:
            errors.append(
                f"{path.relative_to(repo)}: registered metric fragment "
                f'"{frag}" has no row in docs/METRICS.md'
            )
    if not seen:
        errors.append("metric scan found no registration sites — "
                      "check_docs.py is broken, fix its patterns")


def check_bench_index(repo: Path, errors: list):
    experiments_md = (repo / "EXPERIMENTS.md").read_text(encoding="utf-8")
    benches = sorted((repo / "bench").glob("fig*.cc")) + \
        sorted((repo / "bench").glob("tbl*.cc"))
    if not benches:
        errors.append("no bench/fig*.cc or bench/tbl*.cc found — "
                      "check_docs.py is broken, fix its globs")
    for path in benches:
        name = path.stem
        if f"`{name}`" not in experiments_md:
            errors.append(
                f"bench/{path.name}: no `{name}` row in the EXPERIMENTS.md "
                "bench index"
            )


# Struct member declaration: `type name = default;` or `type name;` on one
# line. Lines containing `(` are functions/ctors, not fields.
FIELD_DECL = re.compile(r"^\s+[A-Za-z_][\w:<>,\* ]*?[\s&\*]([a-z_][a-z0-9_]*)\s*(?:=[^;]*)?;")

# (header, struct, doc that must backtick every field of the struct)
CONFIG_STRUCTS = [
    ("src/lsvd/config.h", "LsvdConfig", "docs/GC.md"),
    ("src/lsvd/gc_sim.h", "GcSimConfig", "docs/GC.md"),
    ("src/fleet/fleet.h", "FleetConfig", "docs/FLEET.md"),
]


def struct_fields(text: str, struct: str):
    """Yield the data-member names of `struct <name> { ... };` in `text`."""
    start = text.find("struct %s {" % struct)
    if start == -1:
        return
    depth = 0
    body_lines = []
    for i, ch in enumerate(text[start:], start):
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                body_lines = text[start:i].splitlines()
                break
    nested = 0  # skip bodies of nested structs/lambdas/member functions
    for line in body_lines[1:]:
        line = line.split("//", 1)[0]  # trailing comments may contain ( or {
        nested += line.count("{") - line.count("}")
        if nested != 0 or "(" in line:
            continue
        m = FIELD_DECL.match(line)
        if m:
            yield m.group(1)


def check_config_reference(repo: Path, errors: list):
    docs = {}  # doc path -> text, read once
    found_any = False
    for rel, struct, doc in CONFIG_STRUCTS:
        if doc not in docs:
            docs[doc] = (repo / doc).read_text(encoding="utf-8")
        text = (repo / rel).read_text(encoding="utf-8")
        for field in struct_fields(text, struct):
            found_any = True
            if f"`{field}`" not in docs[doc]:
                errors.append(
                    f"{rel}: {struct}::{field} is not documented in "
                    f"{doc}'s config reference"
                )
    if not found_any:
        errors.append("config scan found no struct fields — "
                      "check_docs.py is broken, fix its patterns")


def main() -> int:
    repo = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    errors = []
    check_metrics(repo, errors)
    check_bench_index(repo, errors)
    check_config_reference(repo, errors)
    if errors:
        print("check_docs: %d finding(s)" % len(errors), file=sys.stderr)
        for e in errors:
            print("  " + e, file=sys.stderr)
        return 1
    print("check_docs: docs in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
