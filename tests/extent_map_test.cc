// Unit and property tests for the extent map, LSVD's central translation
// structure.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/lsvd/extent_map.h"
#include "src/util/rng.h"

namespace lsvd {
namespace {

using Map = ExtentMap<SsdTarget>;

TEST(ExtentMap, EmptyLookups) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.LookupOne(100), std::nullopt);
  auto segs = m.Lookup(0, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_FALSE(segs[0].target.has_value());
  EXPECT_EQ(segs[0].len, 100u);
}

TEST(ExtentMap, SimpleInsertAndLookup) {
  Map m;
  m.Update(100, 50, SsdTarget{1000});
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.mapped_bytes(), 50u);
  EXPECT_EQ(m.LookupOne(100)->plba, 1000u);
  EXPECT_EQ(m.LookupOne(149)->plba, 1049u);
  EXPECT_EQ(m.LookupOne(150), std::nullopt);
  EXPECT_EQ(m.LookupOne(99), std::nullopt);
}

TEST(ExtentMap, OverwriteMiddleSplits) {
  Map m;
  m.Update(0, 100, SsdTarget{1000});
  auto displaced = m.Update(40, 20, SsdTarget{5000});
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0].start, 40u);
  EXPECT_EQ(displaced[0].len, 20u);
  EXPECT_EQ(displaced[0].target.plba, 1040u);

  EXPECT_EQ(m.extent_count(), 3u);
  EXPECT_EQ(m.mapped_bytes(), 100u);
  EXPECT_EQ(m.LookupOne(39)->plba, 1039u);
  EXPECT_EQ(m.LookupOne(40)->plba, 5000u);
  EXPECT_EQ(m.LookupOne(59)->plba, 5019u);
  EXPECT_EQ(m.LookupOne(60)->plba, 1060u);
}

TEST(ExtentMap, OverwriteSpanningMultipleExtents) {
  Map m;
  m.Update(0, 10, SsdTarget{100});
  m.Update(10, 10, SsdTarget{500});
  m.Update(20, 10, SsdTarget{900});
  auto displaced = m.Update(5, 20, SsdTarget{7000});
  ASSERT_EQ(displaced.size(), 3u);
  EXPECT_EQ(displaced[0].start, 5u);
  EXPECT_EQ(displaced[0].len, 5u);
  EXPECT_EQ(displaced[0].target.plba, 105u);
  EXPECT_EQ(displaced[1].start, 10u);
  EXPECT_EQ(displaced[1].len, 10u);
  EXPECT_EQ(displaced[2].start, 20u);
  EXPECT_EQ(displaced[2].len, 5u);
  EXPECT_EQ(m.mapped_bytes(), 30u);
}

TEST(ExtentMap, AdjacentContiguousExtentsMerge) {
  Map m;
  m.Update(0, 10, SsdTarget{100});
  m.Update(10, 10, SsdTarget{110});  // target continues: should merge
  EXPECT_EQ(m.extent_count(), 1u);
  m.Update(20, 10, SsdTarget{999});  // not contiguous target: no merge
  EXPECT_EQ(m.extent_count(), 2u);
  // Fill a hole whose both sides line up: all three merge.
  Map m2;
  m2.Update(0, 10, SsdTarget{100});
  m2.Update(20, 10, SsdTarget{120});
  EXPECT_EQ(m2.extent_count(), 2u);
  m2.Update(10, 10, SsdTarget{110});
  EXPECT_EQ(m2.extent_count(), 1u);
  EXPECT_EQ(m2.mapped_bytes(), 30u);
}

TEST(ExtentMap, RemoveReturnsRemoved) {
  Map m;
  m.Update(0, 100, SsdTarget{0});
  auto removed = m.Remove(25, 50);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].start, 25u);
  EXPECT_EQ(removed[0].len, 50u);
  EXPECT_EQ(m.mapped_bytes(), 50u);
  EXPECT_EQ(m.extent_count(), 2u);
  EXPECT_EQ(m.LookupOne(25), std::nullopt);
  EXPECT_EQ(m.LookupOne(74), std::nullopt);
  EXPECT_EQ(m.LookupOne(75)->plba, 75u);
}

TEST(ExtentMap, LookupSegmentsCoverGapsAndMappings) {
  Map m;
  m.Update(10, 10, SsdTarget{100});
  m.Update(30, 10, SsdTarget{300});
  auto segs = m.Lookup(0, 50);
  ASSERT_EQ(segs.size(), 5u);
  EXPECT_FALSE(segs[0].target.has_value());  // [0,10)
  EXPECT_EQ(segs[1].target->plba, 100u);     // [10,20)
  EXPECT_FALSE(segs[2].target.has_value());  // [20,30)
  EXPECT_EQ(segs[3].target->plba, 300u);     // [30,40)
  EXPECT_FALSE(segs[4].target.has_value());  // [40,50)
  uint64_t covered = 0;
  for (const auto& s : segs) {
    covered += s.len;
  }
  EXPECT_EQ(covered, 50u);
}

TEST(ExtentMap, LookupPartialExtentAdvancesTarget) {
  Map m;
  m.Update(0, 100, SsdTarget{1000});
  auto segs = m.Lookup(30, 10);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].target->plba, 1030u);
}

TEST(ExtentMap, ObjTargetAdvance) {
  ExtentMap<ObjTarget> m;
  m.Update(0, 4096, ObjTarget{7, 512});
  auto t = m.LookupOne(1000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->seq, 7u);
  EXPECT_EQ(t->offset, 512u + 1000u);
  // Same object, discontinuous offsets: no merge.
  m.Update(4096, 4096, ObjTarget{7, 9000});
  EXPECT_EQ(m.extent_count(), 2u);
  // Contiguous continuation merges.
  ExtentMap<ObjTarget> m2;
  m2.Update(0, 4096, ObjTarget{7, 512});
  m2.Update(4096, 4096, ObjTarget{7, 512 + 4096});
  EXPECT_EQ(m2.extent_count(), 1u);
}

TEST(ExtentMap, ClearResets) {
  Map m;
  m.Update(0, 100, SsdTarget{5});
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.mapped_bytes(), 0u);
}

// Directed accounting checks for the partial-overlap Update/Remove paths:
// every trim/shrink combination must leave mapped_bytes() equal to the sum of
// the surviving extent lengths.
TEST(ExtentMap, PartialOverlapAccounting) {
  // Remove clipping head, tail, middle, and spanning several extents.
  Map m;
  m.Update(0, 100, SsdTarget{1000});
  m.Remove(0, 10);  // head clip
  EXPECT_EQ(m.mapped_bytes(), 90u);
  m.Remove(90, 20);  // tail clip (extends past the end)
  EXPECT_EQ(m.mapped_bytes(), 80u);
  m.Remove(40, 10);  // middle punch splits
  EXPECT_EQ(m.mapped_bytes(), 70u);
  EXPECT_EQ(m.extent_count(), 2u);
  m.Update(200, 50, SsdTarget{5000});
  m.Remove(30, 250);  // spans the split pair and the far extent
  EXPECT_EQ(m.mapped_bytes(), 20u);
  uint64_t sum = 0;
  for (const auto& e : m.Extents()) {
    sum += e.len;
  }
  EXPECT_EQ(m.mapped_bytes(), sum);

  // Update overlapping both neighbors partially: net mapped size is the
  // union, not old + new.
  Map m2;
  m2.Update(0, 50, SsdTarget{100});
  m2.Update(60, 50, SsdTarget{900});
  m2.Update(40, 40, SsdTarget{5000});  // clips 10 off each neighbor
  EXPECT_EQ(m2.mapped_bytes(), 110u);
  sum = 0;
  for (const auto& e : m2.Extents()) {
    sum += e.len;
  }
  EXPECT_EQ(m2.mapped_bytes(), sum);

  // Zero-net-change overwrite of an exact extent.
  m2.Update(40, 40, SsdTarget{7000});
  EXPECT_EQ(m2.mapped_bytes(), 110u);
}

// Property test: random updates/removes against a per-byte reference model.
class ExtentMapProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtentMapProperty, MatchesByteLevelReferenceModel) {
  Rng rng(GetParam());
  Map m;
  std::map<uint64_t, uint64_t> ref;  // byte addr -> target byte
  constexpr uint64_t kSpace = 2000;

  for (int step = 0; step < 500; step++) {
    const uint64_t start = rng.Uniform(kSpace);
    const uint64_t len = 1 + rng.Uniform(64);
    if (rng.Bernoulli(0.8)) {
      const uint64_t target = rng.Uniform(1u << 20);
      m.Update(start, len, SsdTarget{target});
      for (uint64_t i = 0; i < len; i++) {
        ref[start + i] = target + i;
      }
    } else {
      m.Remove(start, len);
      for (uint64_t i = 0; i < len; i++) {
        ref.erase(start + i);
      }
    }

    // Invariant: mapped_bytes matches the reference.
    ASSERT_EQ(m.mapped_bytes(), ref.size());

    // Invariant: the mapped_bytes accumulator never drifts from the ground
    // truth, the sum of extent lengths (guards the partial-overlap
    // Update/Remove accounting paths).
    uint64_t extent_len_sum = 0;
    for (const auto& e : m.Extents()) {
      extent_len_sum += e.len;
    }
    ASSERT_EQ(m.mapped_bytes(), extent_len_sum) << "step " << step;

    // Spot-check random addresses.
    for (int probe = 0; probe < 20; probe++) {
      const uint64_t addr = rng.Uniform(kSpace + 100);
      auto got = m.LookupOne(addr);
      auto it = ref.find(addr);
      if (it == ref.end()) {
        ASSERT_EQ(got, std::nullopt) << "addr " << addr << " step " << step;
      } else {
        ASSERT_TRUE(got.has_value()) << "addr " << addr << " step " << step;
        ASSERT_EQ(got->plba, it->second) << "addr " << addr;
      }
    }
  }

  // Full-range Lookup covers every byte exactly once with correct targets.
  auto segs = m.Lookup(0, kSpace + 100);
  uint64_t pos = 0;
  for (const auto& s : segs) {
    ASSERT_EQ(s.start, pos);
    for (uint64_t i = 0; i < s.len; i++) {
      auto it = ref.find(s.start + i);
      if (s.target.has_value()) {
        ASSERT_TRUE(it != ref.end());
        ASSERT_EQ(s.target->plba + i, it->second);
      } else {
        ASSERT_TRUE(it == ref.end());
      }
    }
    pos += s.len;
  }
  EXPECT_EQ(pos, kSpace + 100);

  // Extents() reports non-overlapping, sorted, merged extents.
  auto extents = m.Extents();
  for (size_t i = 1; i < extents.size(); i++) {
    ASSERT_GE(extents[i].start, extents[i - 1].start + extents[i - 1].len);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentMapProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace lsvd
