// GC victim-selection policies (docs/GC.md; DESIGN.md §11): score ordering
// on hand-built candidates, the ascending-seq tie-break convention, and the
// policies' end-to-end effect in the trace-driven GC simulator (including
// cold segregation and the zoned/SMR reclaim mode).
#include <gtest/gtest.h>

#include <vector>

#include "src/lsvd/gc_policy.h"
#include "src/lsvd/gc_sim.h"
#include "src/util/units.h"
#include "src/workload/trace_gen.h"

namespace lsvd {
namespace {

GcCandidate Cand(uint64_t seq, uint64_t total, uint64_t live, double age) {
  GcCandidate c;
  c.seq = seq;
  c.total_bytes = total;
  c.live_bytes = live;
  c.age = age;
  return c;
}

TEST(GcPolicyKindTest, ParseAndNameRoundTrip) {
  for (GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
        GcPolicyKind::kAgeBucketed}) {
    auto parsed = ParseGcPolicyKind(GcPolicyKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(ParseGcPolicyKind("cost_benefit"), GcPolicyKind::kCostBenefit);
  EXPECT_EQ(ParseGcPolicyKind("age_bucketed"), GcPolicyKind::kAgeBucketed);
  EXPECT_FALSE(ParseGcPolicyKind("lru").has_value());
  EXPECT_FALSE(ParseGcPolicyKind("").has_value());
}

TEST(GcPolicyKindTest, CreateReturnsMatchingKind) {
  for (GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
        GcPolicyKind::kAgeBucketed}) {
    auto policy = GcPolicy::Create(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_STREQ(policy->name(), GcPolicyKindName(kind));
  }
}

TEST(GreedyPolicyTest, PrefersLeastUtilized) {
  auto greedy = GcPolicy::Create(GcPolicyKind::kGreedy);
  const double quarter = greedy->Score(Cand(1, 100, 25, 0.0));
  const double half = greedy->Score(Cand(2, 100, 50, 0.0));
  const double full = greedy->Score(Cand(3, 100, 100, 0.0));
  EXPECT_GT(quarter, half);
  EXPECT_GT(half, full);
}

TEST(GreedyPolicyTest, IgnoresAge) {
  auto greedy = GcPolicy::Create(GcPolicyKind::kGreedy);
  EXPECT_EQ(greedy->Score(Cand(1, 100, 50, 0.0)),
            greedy->Score(Cand(2, 100, 50, 1000.0)));
}

TEST(CostBenefitPolicyTest, PrefersOlderAtEqualUtilization) {
  auto cb = GcPolicy::Create(GcPolicyKind::kCostBenefit);
  EXPECT_GT(cb->Score(Cand(1, 100, 50, 10.0)),
            cb->Score(Cand(2, 100, 50, 1.0)));
}

TEST(CostBenefitPolicyTest, PrefersEmptierAtEqualAge) {
  auto cb = GcPolicy::Create(GcPolicyKind::kCostBenefit);
  EXPECT_GT(cb->Score(Cand(1, 100, 25, 5.0)),
            cb->Score(Cand(2, 100, 75, 5.0)));
}

TEST(CostBenefitPolicyTest, OldColdBeatsYoungHalfEmpty) {
  // The Sprite-LFS tradeoff: a 90%-full object idle for 100 batch-times
  // yields more benefit per copy cost than a 50%-full object written
  // moments ago — greedy would pick the opposite.
  auto cb = GcPolicy::Create(GcPolicyKind::kCostBenefit);
  auto greedy = GcPolicy::Create(GcPolicyKind::kGreedy);
  const GcCandidate old_cold = Cand(1, 100, 90, 100.0);
  const GcCandidate young_half = Cand(2, 100, 50, 0.0);
  EXPECT_GT(cb->Score(old_cold), cb->Score(young_half));
  EXPECT_GT(greedy->Score(young_half), greedy->Score(old_cold));
}

TEST(CostBenefitPolicyTest, FullObjectScoresZero) {
  auto cb = GcPolicy::Create(GcPolicyKind::kCostBenefit);
  EXPECT_EQ(cb->Score(Cand(1, 100, 100, 50.0)), 0.0);
  EXPECT_GT(cb->Score(Cand(2, 100, 99, 0.0)), 0.0);
}

TEST(AgeBucketedPolicyTest, BucketDominatesUtilization) {
  // An object one bucket older wins even against a completely empty
  // younger one: 2*b term strictly dominates the (1-u) tie-break.
  auto ab = GcPolicy::Create(GcPolicyKind::kAgeBucketed);
  EXPECT_GT(ab->Score(Cand(1, 100, 99, 3.5)),   // bucket floor(log2(4.5)) = 2
            ab->Score(Cand(2, 100, 0, 1.0)));   // bucket 1
}

TEST(AgeBucketedPolicyTest, UtilizationBreaksTiesWithinBucket) {
  auto ab = GcPolicy::Create(GcPolicyKind::kAgeBucketed);
  EXPECT_GT(ab->Score(Cand(1, 100, 25, 2.0)),
            ab->Score(Cand(2, 100, 75, 2.5)));  // same bucket (1)
}

TEST(AgeBucketedPolicyTest, BucketSaturates) {
  auto ab = GcPolicy::Create(GcPolicyKind::kAgeBucketed);
  // Both ages land in the saturated bucket (6); only utilization differs.
  EXPECT_GT(ab->Score(Cand(1, 100, 40, 200.0)),
            ab->Score(Cand(2, 100, 60, 20000.0)));
}

TEST(GcPolicyTest, AscendingScanTieBreaksToLowestSeq) {
  // Callers scan candidates in ascending seq and replace only on a strictly
  // greater score, so equal-scoring candidates resolve to the lowest seq —
  // the convention that keeps greedy bit-identical to the historical scan.
  for (GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
        GcPolicyKind::kAgeBucketed}) {
    auto policy = GcPolicy::Create(kind);
    const std::vector<GcCandidate> candidates = {
        Cand(3, 100, 50, 2.0), Cand(5, 100, 50, 2.0), Cand(9, 100, 50, 2.0)};
    uint64_t victim = 0;
    double best = -1e300;
    for (const auto& c : candidates) {
      const double s = policy->Score(c);
      if (s > best) {
        best = s;
        victim = c.seq;
      }
    }
    EXPECT_EQ(victim, 3u) << GcPolicyKindName(kind);
  }
}

TEST(GcPolicyForShardTest, OverridesApplyPerShard) {
  const std::vector<GcPolicyKind> overrides = {GcPolicyKind::kCostBenefit,
                                               GcPolicyKind::kAgeBucketed};
  EXPECT_EQ(GcPolicyForShard(GcPolicyKind::kGreedy, overrides, 0),
            GcPolicyKind::kCostBenefit);
  EXPECT_EQ(GcPolicyForShard(GcPolicyKind::kGreedy, overrides, 1),
            GcPolicyKind::kAgeBucketed);
  // Shards past the override vector fall back to the base policy.
  EXPECT_EQ(GcPolicyForShard(GcPolicyKind::kGreedy, overrides, 2),
            GcPolicyKind::kGreedy);
  EXPECT_EQ(GcPolicyForShard(GcPolicyKind::kCostBenefit, {}, 7),
            GcPolicyKind::kCostBenefit);
}

// --- end-to-end: the policies driving the trace simulator ---

TraceProfile ProfileByName(const std::string& name) {
  for (const auto& profile : TraceProfile::Table5()) {
    if (profile.name == name) {
      return profile;
    }
  }
  ADD_FAILURE() << "no Table 5 profile named " << name;
  return TraceProfile{};
}

GcSimResult RunProfile(const TraceProfile& profile, uint64_t scale,
                       GcSimConfig config) {
  GcSimulator sim(config);
  auto stream = MakeTraceStream(profile, scale, 17);
  uint64_t vlba = 0;
  uint64_t len = 0;
  while (stream(&vlba, &len)) {
    sim.Write(vlba, len);
  }
  return sim.Finish();
}

GcSimConfig HighPressureConfig() {
  GcSimConfig config;
  config.batch_bytes = 32 * kMiB;
  config.gc_low_watermark = 0.85;
  config.gc_high_watermark = 0.89;
  return config;
}

TEST(GcSimPolicyTest, DeterministicPerPolicy) {
  const TraceProfile w04 = ProfileByName("w04");
  for (GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
        GcPolicyKind::kAgeBucketed}) {
    GcSimConfig config = HighPressureConfig();
    config.policy = kind;
    const GcSimResult a = RunProfile(w04, 512, config);
    const GcSimResult b = RunProfile(w04, 512, config);
    EXPECT_EQ(a.backend_bytes, b.backend_bytes) << GcPolicyKindName(kind);
    EXPECT_EQ(a.objects_created, b.objects_created) << GcPolicyKindName(kind);
    EXPECT_EQ(a.extent_count, b.extent_count) << GcPolicyKindName(kind);
    EXPECT_GE(a.waf(), 1.0) << GcPolicyKindName(kind);
  }
}

TEST(GcSimPolicyTest, CostBenefitNotWorseThanGreedyAtHighUtilization) {
  // The fig21 acceptance shape as a regression, at fig21's own smoke
  // point (w04, scale 256, 0.90 target): cost-benefit must not lose to
  // greedy on write amplification (it wins outright here — the simulator
  // is deterministic, so this is a stable comparison, not a flaky one).
  const TraceProfile w04 = ProfileByName("w04");
  GcSimConfig config = HighPressureConfig();
  config.gc_low_watermark = 0.90;
  config.gc_high_watermark = 0.94;
  config.segregate_cold = true;
  config.policy = GcPolicyKind::kGreedy;
  const GcSimResult greedy = RunProfile(w04, 256, config);
  config.policy = GcPolicyKind::kCostBenefit;
  const GcSimResult cb = RunProfile(w04, 256, config);
  EXPECT_GT(greedy.gc_copied_bytes, 0u);  // the run must actually collect
  EXPECT_LE(cb.waf(), greedy.waf() + 1e-9);
}

TEST(GcSimPolicyTest, SegregateColdPacksGcOutput) {
  // Shared cold output objects fill to batch_bytes across cleaning rounds,
  // so segregation creates fewer (larger) objects than the one-copy-object-
  // per-victim default while relocating comparable data.
  const TraceProfile w04 = ProfileByName("w04");
  GcSimConfig config = HighPressureConfig();
  config.segregate_cold = false;
  const GcSimResult plain = RunProfile(w04, 512, config);
  config.segregate_cold = true;
  const GcSimResult packed = RunProfile(w04, 512, config);
  EXPECT_GT(plain.gc_copied_bytes, 0u);
  EXPECT_GT(packed.gc_copied_bytes, 0u);
  EXPECT_LT(packed.objects_created, plain.objects_created);
  EXPECT_GE(packed.waf(), 1.0);
}

TEST(GcSimZonedTest, ReclaimsWholeZones) {
  const TraceProfile w04 = ProfileByName("w04");
  GcSimConfig config = HighPressureConfig();
  config.zone_bytes = 4 * config.batch_bytes;
  const GcSimResult r = RunProfile(w04, 512, config);
  EXPECT_GT(r.zones_reset, 0u);
  EXPECT_GT(r.gc_copied_bytes, 0u);
  EXPECT_GE(r.waf(), 1.0);
  EXPECT_GT(r.extent_count, 0u);
  // Deterministic like every other mode.
  const GcSimResult again = RunProfile(w04, 512, config);
  EXPECT_EQ(r.backend_bytes, again.backend_bytes);
  EXPECT_EQ(r.zones_reset, again.zones_reset);
}

TEST(GcSimZonedTest, PolicyChangesZonedReclaim) {
  // Victim scoring applies to whole zones too; the sweep stays sane for
  // every policy (WAF >= 1, zones actually reset).
  const TraceProfile w04 = ProfileByName("w04");
  for (GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
        GcPolicyKind::kAgeBucketed}) {
    GcSimConfig config = HighPressureConfig();
    config.zone_bytes = 4 * config.batch_bytes;
    config.policy = kind;
    const GcSimResult r = RunProfile(w04, 512, config);
    EXPECT_GT(r.zones_reset, 0u) << GcPolicyKindName(kind);
    EXPECT_GE(r.waf(), 1.0) << GcPolicyKindName(kind);
  }
}

TEST(GcSimShardedTest, MixedPerShardPolicies) {
  const TraceProfile w04 = ProfileByName("w04");
  GcSimConfig config = HighPressureConfig();
  config.shards = 3;
  config.shard_policy = {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
                         GcPolicyKind::kAgeBucketed};
  const GcSimResult r = RunProfile(w04, 512, config);
  EXPECT_GT(r.gc_copied_bytes, 0u);
  EXPECT_GE(r.waf(), 1.0);
  const GcSimResult again = RunProfile(w04, 512, config);
  EXPECT_EQ(r.backend_bytes, again.backend_bytes);
  EXPECT_EQ(r.objects_created, again.objects_created);
}

}  // namespace
}  // namespace lsvd
