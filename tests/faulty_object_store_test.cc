// FaultyObjectStore: each injection mode, pass-through behaviour, offline
// mode, and determinism for a fixed seed.
#include "src/objstore/faulty_object_store.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/objstore/mem_object_store.h"
#include "src/sim/simulator.h"
#include "src/util/buffer.h"

namespace lsvd {
namespace {

Buffer Payload(uint64_t len) {
  std::vector<uint8_t> bytes(len);
  for (uint64_t i = 0; i < len; i++) {
    bytes[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  return Buffer::FromBytes(bytes);
}

Status PutSync(Simulator* sim, ObjectStore* store, const std::string& name,
               Buffer data) {
  std::optional<Status> result;
  store->Put(name, std::move(data), [&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("PUT never completed"));
}

Result<Buffer> GetSync(Simulator* sim, ObjectStore* store,
                       const std::string& name) {
  std::optional<Result<Buffer>> result;
  store->Get(name, [&](Result<Buffer> r) { result = std::move(r); });
  while (!result.has_value() && sim->Step()) {
  }
  if (!result.has_value()) {
    return Status::Unavailable("GET never completed");
  }
  return std::move(*result);
}

Status DeleteSync(Simulator* sim, ObjectStore* store,
                  const std::string& name) {
  std::optional<Status> result;
  store->Delete(name, [&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("DELETE never completed"));
}

TEST(FaultyObjectStoreTest, CleanConfigPassesEverythingThrough) {
  Simulator sim;
  MemObjectStore inner(&sim);
  FaultyObjectStore store(&inner, &sim, FaultInjectionConfig{});

  ASSERT_TRUE(PutSync(&sim, &store, "a.1", Payload(4096)).ok());
  auto r = GetSync(&sim, &store, "a.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4096u);
  EXPECT_EQ(store.List("a.").size(), 1u);
  ASSERT_TRUE(store.Head("a.1").ok());
  EXPECT_TRUE(DeleteSync(&sim, &store, "a.1").ok());
  EXPECT_EQ(inner.object_count(), 0u);
  EXPECT_EQ(store.fault_stats().put_errors, 0u);
  EXPECT_EQ(store.fault_stats().get_errors, 0u);
}

TEST(FaultyObjectStoreTest, TransientPutErrors) {
  Simulator sim;
  MemObjectStore inner(&sim);
  FaultInjectionConfig fc;
  fc.seed = 11;
  fc.put_error_p = 0.5;
  FaultyObjectStore store(&inner, &sim, fc);

  int failures = 0;
  for (int i = 0; i < 100; i++) {
    const Status s =
        PutSync(&sim, &store, "obj." + std::to_string(i), Payload(512));
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable);
      failures++;
      // A failed PUT must not create the object.
      EXPECT_FALSE(store.Head("obj." + std::to_string(i)).ok());
    }
  }
  EXPECT_GT(failures, 20);
  EXPECT_LT(failures, 80);
  EXPECT_EQ(store.fault_stats().put_errors, static_cast<uint64_t>(failures));
}

TEST(FaultyObjectStoreTest, TransientGetAndDeleteErrors) {
  Simulator sim;
  MemObjectStore inner(&sim);
  FaultInjectionConfig fc;
  fc.seed = 12;
  fc.get_error_p = 0.5;
  fc.delete_error_p = 0.5;
  FaultyObjectStore store(&inner, &sim, fc);

  ASSERT_TRUE(PutSync(&sim, &store, "x.1", Payload(4096)).ok());
  int get_failures = 0;
  for (int i = 0; i < 50; i++) {
    auto r = GetSync(&sim, &store, "x.1");
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      get_failures++;
    } else {
      EXPECT_EQ(r->size(), 4096u);
    }
  }
  EXPECT_GT(get_failures, 10);
  EXPECT_EQ(store.fault_stats().get_errors,
            static_cast<uint64_t>(get_failures));

  int delete_failures = 0;
  for (int i = 0; i < 50; i++) {
    if (!DeleteSync(&sim, &store, "x.1").ok()) {
      delete_failures++;
    }
  }
  EXPECT_GT(delete_failures, 10);
  EXPECT_EQ(store.fault_stats().delete_errors,
            static_cast<uint64_t>(delete_failures));
}

TEST(FaultyObjectStoreTest, TornPutLeavesTruncatedObject) {
  Simulator sim;
  MemObjectStore inner(&sim);
  FaultInjectionConfig fc;
  fc.seed = 13;
  fc.torn_put_p = 1.0;
  FaultyObjectStore store(&inner, &sim, fc);

  const Status s = PutSync(&sim, &store, "t.1", Payload(8192));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // The torn object exists under the real name but is a strict prefix.
  auto have = inner.Head("t.1");
  ASSERT_TRUE(have.ok());
  EXPECT_GT(*have, 0u);
  EXPECT_LT(*have, 8192u);
  auto full = Payload(8192).ToBytes();
  auto torn = GetSync(&sim, &inner, "t.1");
  ASSERT_TRUE(torn.ok());
  auto torn_bytes = torn->ToBytes();
  for (size_t i = 0; i < torn_bytes.size(); i++) {
    ASSERT_EQ(torn_bytes[i], full[i]);
  }
  EXPECT_EQ(store.fault_stats().torn_puts, 1u);
}

TEST(FaultyObjectStoreTest, AddedLatencyIsWithinConfiguredRange) {
  Simulator sim;
  MemObjectStore inner(&sim);
  FaultInjectionConfig fc;
  fc.seed = 14;
  fc.added_latency_min = 3 * kMillisecond;
  fc.added_latency_max = 9 * kMillisecond;
  FaultyObjectStore store(&inner, &sim, fc);

  for (int i = 0; i < 20; i++) {
    const Nanos before = sim.now();
    ASSERT_TRUE(
        PutSync(&sim, &store, "lat." + std::to_string(i), Payload(64)).ok());
    const Nanos took = sim.now() - before;
    EXPECT_GE(took, 3 * kMillisecond);
    EXPECT_LE(took, 9 * kMillisecond);
  }
}

TEST(FaultyObjectStoreTest, OfflineFailsDataPlaneButNotControlPlane) {
  Simulator sim;
  MemObjectStore inner(&sim);
  FaultyObjectStore store(&inner, &sim, FaultInjectionConfig{});

  ASSERT_TRUE(PutSync(&sim, &store, "o.1", Payload(1024)).ok());
  store.set_offline(true);
  EXPECT_EQ(PutSync(&sim, &store, "o.2", Payload(1024)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(GetSync(&sim, &store, "o.1").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(DeleteSync(&sim, &store, "o.1").code(),
            StatusCode::kUnavailable);
  // Control plane still answers.
  EXPECT_EQ(store.List("o.").size(), 1u);
  EXPECT_TRUE(store.Head("o.1").ok());

  store.set_offline(false);
  EXPECT_TRUE(PutSync(&sim, &store, "o.2", Payload(1024)).ok());
  auto r = GetSync(&sim, &store, "o.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1024u);
}

TEST(FaultyObjectStoreTest, SameSeedSameFaultSequence) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    MemObjectStore inner(&sim);
    FaultInjectionConfig fc;
    fc.seed = seed;
    fc.put_error_p = 0.3;
    FaultyObjectStore store(&inner, &sim, fc);
    std::vector<bool> outcome;
    for (int i = 0; i < 64; i++) {
      outcome.push_back(
          PutSync(&sim, &store, "d." + std::to_string(i), Buffer::Zeros(64))
              .ok());
    }
    return outcome;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace lsvd
