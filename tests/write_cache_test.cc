// Unit tests for the log-structured write-back cache: append/map/read,
// batching of concurrent writes, wrap-around, eviction gating, checkpointing
// and log replay after crashes.
#include <gtest/gtest.h>

#include <optional>

#include "src/lsvd/write_cache.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

class WriteCacheTest : public ::testing::Test {
 protected:
  WriteCacheTest()
      : host_(&sim_, HostConfig()),
        base_(*host_.AllocRegion(kRegionSize)),
        wc_(std::make_unique<WriteCache>(&host_, base_, kRegionSize,
                                         ZeroCosts())) {
    std::optional<Status> s;
    wc_->Format([&](Status st) { s = st; });
    sim_.Run();
    EXPECT_TRUE(s.has_value() && s->ok());
  }

  static ClientHostConfig HostConfig() {
    ClientHostConfig hc;
    hc.ssd_capacity = 2 * kGiB;
    hc.ssd = SsdParams::Instant();
    return hc;
  }
  static StageCosts ZeroCosts() { return StageCosts{0, 0, 0, 0, 0, 0, 0, 0, 0}; }

  Status Append(uint64_t vlba, Buffer data, uint64_t batch = 1) {
    std::optional<Status> s;
    wc_->Append(vlba, std::move(data), batch, [&](Status st) { s = st; });
    sim_.Run();
    return s.value_or(Status::Unavailable("append stalled"));
  }

  Result<Buffer> ReadVlba(uint64_t vlba, uint64_t len) {
    auto t = wc_->map().LookupOne(vlba);
    if (!t.has_value()) {
      return Status::NotFound("vlba not in cache map");
    }
    std::optional<Result<Buffer>> r;
    wc_->ReadData(t->plba, len, [&](Result<Buffer> rr) { r = std::move(rr); });
    sim_.Run();
    return std::move(*r);
  }

  // Rebuilds a WriteCache over the same region, as after a restart.
  std::unique_ptr<WriteCache> Reopen() {
    wc_->Kill();
    auto fresh = std::make_unique<WriteCache>(&host_, base_, kRegionSize,
                                              ZeroCosts());
    std::optional<Status> s;
    fresh->Recover([&](Status st) { s = st; });
    sim_.Run();
    EXPECT_TRUE(s.has_value()) << "recovery did not complete";
    EXPECT_TRUE(s->ok()) << s->ToString();
    return fresh;
  }

  static constexpr uint64_t kRegionSize = 64 * kMiB;

  Simulator sim_;
  ClientHost host_;
  uint64_t base_;
  std::unique_ptr<WriteCache> wc_;
};

TEST_F(WriteCacheTest, AppendUpdatesMapAndDataReadable) {
  Buffer data = TestPattern(8192, 1);
  ASSERT_TRUE(Append(kMiB, data).ok());
  EXPECT_EQ(wc_->stats().records, 1u);
  EXPECT_EQ(wc_->map().mapped_bytes(), 8192u);
  auto r = ReadVlba(kMiB, 8192);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

TEST_F(WriteCacheTest, ConcurrentAppendsBatchIntoFewerRecords) {
  // Under realistic device timing the pipeline window fills and subsequent
  // appends coalesce into shared records.
  ClientHostConfig hc;
  hc.ssd_capacity = 2 * kGiB;
  hc.ssd = SsdParams::P3700();
  ClientHost host(&sim_, hc);
  const uint64_t base = *host.AllocRegion(kRegionSize);
  WriteCache wc(&host, base, kRegionSize, ZeroCosts());
  std::optional<Status> fmt;
  wc.Format([&](Status s) { fmt = s; });
  sim_.Run();
  ASSERT_TRUE(fmt->ok());

  int done = 0;
  constexpr int kWrites = 64;
  for (int i = 0; i < kWrites; i++) {
    wc.Append(static_cast<uint64_t>(i) * 4096, TestPattern(4096, 10 + i), 1,
              [&](Status s) {
                ASSERT_TRUE(s.ok());
                done++;
              });
  }
  sim_.Run();
  EXPECT_EQ(done, kWrites);
  EXPECT_LT(wc.stats().records, static_cast<uint64_t>(kWrites));
  EXPECT_EQ(wc.map().mapped_bytes(), static_cast<uint64_t>(kWrites) * 4096);
}

// --- adaptive batching (DESIGN.md §12) ---

TEST_F(WriteCacheTest, PlugDeadlineForceStartsLoneSmallWrite) {
  // Under realistic device timing: a large record in flight plus one small
  // pending write is exactly the plug scenario. With a 5 us deadline (far
  // below the ~40 us record write) the timer, not the pipeline drain, starts
  // the lone write's record.
  ClientHostConfig hc;
  hc.ssd_capacity = 2 * kGiB;
  hc.ssd = SsdParams::P3700();
  ClientHost host(&sim_, hc);
  const uint64_t base = *host.AllocRegion(kRegionSize);
  WriteCache wc(&host, base, kRegionSize, ZeroCosts());
  wc.EnableAdaptiveBatching(/*plug_deadline=*/5 * kMicrosecond,
                            /*flush_coalescing=*/false, /*fast_path=*/false);
  std::optional<Status> fmt;
  wc.Format([&](Status s) { fmt = s; });
  sim_.Run();
  ASSERT_TRUE(fmt->ok());

  std::optional<Status> s1, s2;
  wc.Append(0, TestPattern(64 * kKiB, 1), 1, [&](Status s) { s1 = s; });
  wc.Append(kMiB, TestPattern(4096, 2), 1, [&](Status s) { s2 = s; });
  sim_.Run();
  ASSERT_TRUE(s1.has_value() && s1->ok());
  ASSERT_TRUE(s2.has_value() && s2->ok());
  EXPECT_EQ(wc.stats().records, 2u);
  EXPECT_EQ(wc.metrics()->Snapshot().CounterValue(
                "lsvd.write_cache.deadline_seals"),
            1u);
}

TEST_F(WriteCacheTest, FastPathSkipsPlugWaitAtShallowDepth) {
  // Same two-write sequence with and without the small-write fast path; the
  // second (small) write must acknowledge strictly earlier with it, because
  // it no longer waits for the first record to drain.
  auto ack_time = [this](bool fast_path) {
    Simulator sim;
    ClientHostConfig hc;
    hc.ssd_capacity = 2 * kGiB;
    hc.ssd = SsdParams::P3700();
    ClientHost host(&sim, hc);
    const uint64_t base = *host.AllocRegion(kRegionSize);
    WriteCache wc(&host, base, kRegionSize, ZeroCosts());
    if (fast_path) {
      wc.EnableAdaptiveBatching(0, false, /*fast_path=*/true);
    }
    std::optional<Status> fmt;
    wc.Format([&](Status s) { fmt = s; });
    sim.Run();
    EXPECT_TRUE(fmt->ok());
    std::optional<Status> s1;
    std::optional<Nanos> acked_at;
    wc.Append(0, TestPattern(64 * kKiB, 1), 1, [&](Status s) { s1 = s; });
    wc.Append(kMiB, TestPattern(4096, 2), 1, [&](Status s) {
      EXPECT_TRUE(s.ok());
      acked_at = sim.now();
    });
    sim.Run();
    EXPECT_TRUE(s1.has_value() && s1->ok());
    EXPECT_TRUE(acked_at.has_value());
    return *acked_at;
  };
  EXPECT_LT(ack_time(true), ack_time(false));
}

TEST_F(WriteCacheTest, CoalescedBarriersShareFlushes) {
  wc_->EnableAdaptiveBatching(0, /*flush_coalescing=*/true, false);
  ASSERT_TRUE(Append(0, TestPattern(4096, 1)).ok());
  int done = 0;
  for (int i = 0; i < 4; i++) {
    wc_->Barrier([&](Status s) {
      ASSERT_TRUE(s.ok());
      done++;
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 4);
  // Barrier #1 started a flush; #2-4 arrived while it was in flight and
  // shared the follow-up flush: 3 of the 4 barriers were coalesced.
  EXPECT_EQ(wc_->metrics()->Snapshot().CounterValue(
                "lsvd.write_cache.journal.coalesced_flushes"),
            3u);
  // Sequential barriers (no overlap) never coalesce.
  std::optional<Status> s;
  wc_->Barrier([&](Status st) { s = st; });
  sim_.Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(wc_->metrics()->Snapshot().CounterValue(
                "lsvd.write_cache.journal.coalesced_flushes"),
            3u);
}

TEST_F(WriteCacheTest, DefaultConfigRegistersNoAdaptiveCounters) {
  // The adaptive counters appear only after EnableAdaptiveBatching, so a
  // default cache's metric dump stays byte-identical to the pre-§12 output.
  const MetricsSnapshot snap = wc_->metrics()->Snapshot();
  EXPECT_EQ(snap.Find("lsvd.write_cache.deadline_seals"), nullptr);
  EXPECT_EQ(snap.Find("lsvd.write_cache.journal.coalesced_flushes"), nullptr);
}

TEST_F(WriteCacheTest, OverwriteShadowsOldData) {
  ASSERT_TRUE(Append(0, TestPattern(4096, 1)).ok());
  Buffer newer = TestPattern(4096, 2);
  ASSERT_TRUE(Append(0, newer).ok());
  auto r = ReadVlba(0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, newer);
}

TEST_F(WriteCacheTest, BarrierMakesRecordsDurable) {
  Buffer data = TestPattern(4096, 3);
  ASSERT_TRUE(Append(0, data).ok());
  std::optional<Status> s;
  wc_->Barrier([&](Status st) { s = st; });
  sim_.Run();
  ASSERT_TRUE(s->ok());
  host_.ssd()->PowerFail();
  auto fresh = Reopen();
  EXPECT_EQ(fresh->map().mapped_bytes(), 4096u);
}

TEST_F(WriteCacheTest, PowerFailLosesUnflushedTail) {
  ASSERT_TRUE(Append(0, TestPattern(4096, 1)).ok());
  std::optional<Status> s;
  wc_->Barrier([&](Status st) { s = st; });
  sim_.Run();
  ASSERT_TRUE(s->ok());
  ASSERT_TRUE(Append(4096, TestPattern(4096, 2)).ok());  // never flushed

  host_.ssd()->PowerFail();
  auto fresh = Reopen();
  // Only the flushed record survives; replay stops at the lost one.
  EXPECT_EQ(fresh->map().mapped_bytes(), 4096u);
  EXPECT_TRUE(fresh->map().LookupOne(0).has_value());
  EXPECT_FALSE(fresh->map().LookupOne(4096).has_value());
}

TEST_F(WriteCacheTest, RecoveryReplaysLogAfterCheckpoint) {
  ASSERT_TRUE(Append(0, TestPattern(4096, 1), 1).ok());
  std::optional<Status> cs;
  wc_->WriteCheckpoint(0, [&](Status s) { cs = s; });
  sim_.Run();
  ASSERT_TRUE(cs->ok());
  // More appends after the checkpoint.
  ASSERT_TRUE(Append(4096, TestPattern(4096, 2), 2).ok());
  ASSERT_TRUE(Append(8192, TestPattern(4096, 3), 3).ok());
  std::optional<Status> fs;
  wc_->Barrier([&](Status s) { fs = s; });
  sim_.Run();
  ASSERT_TRUE(fs->ok());

  host_.ssd()->PowerFail();
  auto fresh = Reopen();
  EXPECT_EQ(fresh->map().mapped_bytes(), 3u * 4096);
  EXPECT_TRUE(fresh->map().LookupOne(8192).has_value());
  // Replay also restores record metadata for backend rewind.
  auto tail = fresh->RecordsAfterBatch(1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].max_batch_seq, 2u);
}

TEST_F(WriteCacheTest, ReleaseIsLazyEvictionIsOnDemand) {
  ASSERT_TRUE(Append(0, TestPattern(4096, 1), /*batch=*/1).ok());
  ASSERT_TRUE(Append(4096, TestPattern(4096, 2), /*batch=*/2).ok());
  const uint64_t used_before = wc_->used_bytes();
  ASSERT_GT(used_before, 0u);

  // Marking batch 1 synced keeps the data cached and readable (§3.1: FIFO
  // eviction happens only under space pressure).
  wc_->ReleaseThrough(1);
  EXPECT_EQ(wc_->used_bytes(), used_before);
  EXPECT_TRUE(wc_->map().LookupOne(0).has_value());
  EXPECT_FALSE(wc_->fully_synced());
  wc_->ReleaseThrough(2);
  EXPECT_TRUE(wc_->fully_synced());

  // Explicit eviction drops mappings and frees space.
  wc_->EvictReleasable();
  EXPECT_LT(wc_->used_bytes(), used_before);
  EXPECT_FALSE(wc_->map().LookupOne(0).has_value());
  EXPECT_FALSE(wc_->map().LookupOne(4096).has_value());
  EXPECT_EQ(wc_->stats().evicted_records, 2u);
}

TEST_F(WriteCacheTest, EvictionKeepsNewerOverwrites) {
  // Record 1 (batch 1) writes LBA 0; record 2 (batch 2) overwrites it.
  ASSERT_TRUE(Append(0, TestPattern(4096, 1), 1).ok());
  Buffer newer = TestPattern(4096, 2);
  ASSERT_TRUE(Append(0, newer, 2).ok());
  // Evicting record 1 must not remove the newer mapping.
  wc_->ReleaseThrough(1);
  wc_->EvictReleasable();
  EXPECT_EQ(wc_->stats().evicted_records, 1u);
  auto r = ReadVlba(0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, newer);
}

TEST_F(WriteCacheTest, AppendsStallWhenFullAndResumeAfterRelease) {
  // Fill the log with large appends that are never released.
  const uint64_t chunk = 2 * kMiB;
  uint64_t written = 0;
  int acked = 0;
  int submitted = 0;
  while (wc_->free_bytes() > 4 * chunk) {
    wc_->Append(written, Buffer::Zeros(chunk), 1, [&](Status s) {
      ASSERT_TRUE(s.ok());
      acked++;
    });
    submitted++;
    written += chunk;
    sim_.Run();
  }
  // The next append cannot fit and must stall.
  bool stalled_acked = false;
  wc_->Append(written, Buffer::Zeros(4 * chunk), 2,
              [&](Status s) {
                ASSERT_TRUE(s.ok());
                stalled_acked = true;
              });
  sim_.Run();
  EXPECT_FALSE(stalled_acked);
  EXPECT_GT(wc_->stats().stalled_appends, 0u);

  // Releasing batch 1 frees everything and the stalled write completes.
  wc_->ReleaseThrough(1);
  sim_.Run();
  EXPECT_TRUE(stalled_acked);
}

TEST_F(WriteCacheTest, LogWrapsAroundAndRecovers) {
  // Write, release, and rewrite enough to lap the log a few times.
  const uint64_t chunk = kMiB;
  const uint64_t laps = 3 * (kRegionSize / chunk);
  for (uint64_t i = 0; i < laps; i++) {
    ASSERT_TRUE(Append((i % 16) * chunk, Buffer::Zeros(chunk), i + 1).ok());
    wc_->ReleaseThrough(i);  // keep only the most recent record
  }
  ASSERT_TRUE(Append(kMiB, TestPattern(4096, 9), laps + 1).ok());
  std::optional<Status> fs;
  wc_->Barrier([&](Status s) { fs = s; });
  sim_.Run();
  ASSERT_TRUE(fs->ok());

  // Checkpoint so recovery has a recent anchor, then crash and replay.
  std::optional<Status> cs;
  wc_->WriteCheckpoint(laps, [&](Status s) { cs = s; });
  sim_.Run();
  ASSERT_TRUE(cs->ok());
  host_.ssd()->PowerFail();
  auto fresh = Reopen();
  EXPECT_TRUE(fresh->map().LookupOne(kMiB).has_value());
}

TEST_F(WriteCacheTest, RecoverWithoutFormatFails) {
  host_.ssd()->DiscardAll();
  wc_->Kill();
  auto fresh = std::make_unique<WriteCache>(&host_, base_, kRegionSize,
                                            ZeroCosts());
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  sim_.Run();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->code(), StatusCode::kCorruption);
}

TEST_F(WriteCacheTest, ReadRecordPayloadReturnsOriginalBytes) {
  Buffer first = TestPattern(4096, 1);
  ASSERT_TRUE(Append(0, first, 5).ok());
  // Overwrite LBA 0 in a later record; the original record's payload must
  // still be readable from its own log position.
  ASSERT_TRUE(Append(0, TestPattern(4096, 2), 6).ok());
  auto records = wc_->RecordsAfterBatch(4);
  ASSERT_GE(records.size(), 2u);
  std::optional<Result<Buffer>> r;
  wc_->ReadRecordPayload(records[0],
                         [&](Result<Buffer> rr) { r = std::move(rr); });
  sim_.Run();
  ASSERT_TRUE(r->ok());
  EXPECT_EQ(r->value(), first);
}

TEST_F(WriteCacheTest, CheckpointSurvivesAlternatingSlots) {
  for (int round = 0; round < 5; round++) {
    ASSERT_TRUE(Append(static_cast<uint64_t>(round) * 4096,
                       TestPattern(4096, 20 + round), round + 1)
                    .ok());
    std::optional<Status> cs;
    wc_->WriteCheckpoint(round, [&](Status s) { cs = s; });
    sim_.Run();
    ASSERT_TRUE(cs->ok());
  }
  host_.ssd()->PowerFail();
  auto fresh = Reopen();
  EXPECT_EQ(fresh->map().mapped_bytes(), 5u * 4096);
  EXPECT_EQ(fresh->backend_synced_hint(), 4u);
}

}  // namespace
}  // namespace lsvd
