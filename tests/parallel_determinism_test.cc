// Determinism fuzz for the parallel engine (DESIGN.md §14): a seeded
// client workload against sharded SimObjectStores must produce byte-identical
// results — completion traces, store stats, and the full metric dump — for
// every worker-thread count AND for every way of packing the shard backends
// onto 1/2/4 domains. Channel ids key to the shard index, so the
// (deliver, channel, seq) barrier drain gives one canonical merged order no
// matter how the work is scheduled.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/objstore/sim_object_store.h"
#include "src/sim/cross_domain_channel.h"
#include "src/sim/net_link.h"
#include "src/sim/sim_domain.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

constexpr int kShards = 4;
constexpr int kOps = 96;

// xorshift64* — deterministic workload shapes independent of libc rand.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

// Runs the seeded workload on `backend_domains` domains (shards round-robin
// onto them) with `threads` workers and returns a fingerprint covering every
// observable result.
std::string RunWorkload(int backend_domains, int threads, uint64_t seed) {
  MetricsRegistry metrics;
  Simulator client_sim;
  SimDomainGroup group;
  SimDomain* client = group.AdoptDomain("client", &client_sim);
  std::vector<SimDomain*> doms;
  for (int d = 0; d < backend_domains; d++) {
    doms.push_back(group.AddDomain("backend" + std::to_string(d)));
  }

  NetLink link(&client_sim, NetParams{});
  std::vector<std::unique_ptr<BackendCluster>> clusters;
  std::vector<std::unique_ptr<SimObjectStore>> stores;
  for (int s = 0; s < kShards; s++) {
    SimDomain* dom = doms[static_cast<size_t>(s % backend_domains)];
    const std::string prefix = "shard" + std::to_string(s);
    clusters.push_back(std::make_unique<BackendCluster>(
        dom->sim(), ClusterConfig::SsdPool(), &metrics, prefix + ".cluster"));
    stores.push_back(std::make_unique<SimObjectStore>(
        &client_sim, clusters.back().get(), &link, SimObjectStoreConfig{},
        &metrics, prefix + ".objstore"));
    // Channel ids key to the shard index (creation order), not to the
    // domain packing — the determinism contract in cross_domain_channel.h.
    CrossDomainChannel* c2b = group.Connect(client, dom, link.half_rtt());
    CrossDomainChannel* b2c = group.Connect(dom, client, link.half_rtt());
    stores.back()->BindBackendDomain(dom, c2b, b2c);
  }

  // Completion trace: appended only from client-domain events, race-free
  // under any worker count.
  std::string trace;
  uint64_t rng = seed;
  int puts_issued = 0;
  for (int op = 0; op < kOps; op++) {
    const Nanos when = static_cast<Nanos>(NextRand(&rng) % 5000000);
    const int shard = static_cast<int>(NextRand(&rng) % kShards);
    const uint64_t size = 4096 + (NextRand(&rng) % (256 * kKiB));
    const bool is_put = op < kShards || (NextRand(&rng) % 3) != 0;
    SimObjectStore* store = stores[static_cast<size_t>(shard)].get();
    if (is_put) {
      const std::string name =
          "s" + std::to_string(shard) + "." + std::to_string(puts_issued);
      puts_issued++;
      client_sim.At(when, [&trace, &client_sim, store, name, size, op] {
        store->Put(name, TestPattern(size, static_cast<uint64_t>(op)),
                   [&trace, &client_sim, op](Status st) {
                     char buf[64];
                     std::snprintf(buf, sizeof(buf), "put %d %s @%lld\n", op,
                                   st.ok() ? "ok" : "err",
                                   static_cast<long long>(client_sim.now()));
                     trace += buf;
                   });
      });
    } else {
      // Read back a name that may or may not exist yet — NotFound results
      // are part of the fingerprint too.
      const std::string name =
          "s" + std::to_string(shard) + "." +
          std::to_string(NextRand(&rng) % (static_cast<uint64_t>(op) + 1));
      client_sim.At(when, [&trace, &client_sim, store, name, op] {
        store->Get(name, [&trace, &client_sim, op](Result<Buffer> r) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "get %d %s %llu @%lld\n", op,
                        r.ok() ? "ok" : "miss",
                        r.ok() ? static_cast<unsigned long long>(r->size())
                               : 0ull,
                        static_cast<long long>(client_sim.now()));
          trace += buf;
        });
      });
    }
  }

  group.Run(threads);

  std::string fp = trace;
  for (int s = 0; s < kShards; s++) {
    const ObjectStoreStats st = stores[static_cast<size_t>(s)]->stats();
    char buf[96];
    std::snprintf(buf, sizeof(buf), "shard%d puts=%llu put_bytes=%llu "
                  "get_bytes=%llu\n", s,
                  static_cast<unsigned long long>(st.puts),
                  static_cast<unsigned long long>(st.put_bytes),
                  static_cast<unsigned long long>(st.get_bytes));
    fp += buf;
  }
  fp += metrics.ToJson();
  return fp;
}

TEST(ParallelDeterminismTest, FingerprintInvariantAcrossThreadsAndDomains) {
  const std::string base = RunWorkload(1, 1, 0x9E3779B97F4A7C15ull);
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("put"), std::string::npos);
  for (int domains : {1, 2, 4}) {
    for (int threads : {1, 2, 4}) {
      const std::string got =
          RunWorkload(domains, threads, 0x9E3779B97F4A7C15ull);
      EXPECT_EQ(base, got) << "domains=" << domains
                           << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, RepeatRunsAreByteIdentical) {
  const std::string a = RunWorkload(4, 4, 42);
  const std::string b = RunWorkload(4, 4, 42);
  EXPECT_EQ(a, b);
}

TEST(ParallelDeterminismTest, DifferentSeedsDiffer) {
  EXPECT_NE(RunWorkload(2, 2, 1), RunWorkload(2, 2, 2));
}

}  // namespace
}  // namespace lsvd
