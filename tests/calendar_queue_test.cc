// The calendar-queue event engine must be observably identical to the
// reference binary heap it replaced: every figure in the reproduction
// depends on event ordering being exactly (timestamp, FIFO sequence).
//
// These tests fuzz randomized schedule/run interleavings through the real
// Simulator and through a minimal reference implementation (priority_queue
// of (t, seq), the pre-overhaul engine) and require identical execution
// traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace lsvd {
namespace {

// The pre-overhaul engine, kept verbatim as the ordering oracle.
class ReferenceSim {
 public:
  using Fn = std::function<void()>;

  Nanos now() const { return now_; }
  void At(Nanos t, Fn fn) { queue_.push(Event{t, next_seq_++, std::move(fn)}); }
  void After(Nanos dt, Fn fn) { At(now_ + dt, std::move(fn)); }

  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    return true;
  }

  void Run() {
    while (Step()) {
    }
  }

  uint64_t RunUntil(Nanos t) {
    uint64_t processed = 0;
    while (!queue_.empty() && queue_.top().t <= t) {
      Step();
      processed++;
    }
    if (now_ < t) {
      now_ = t;
    }
    return processed;
  }

  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Nanos t;
    uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// One trace entry: which logical event ran, and at what virtual time.
struct TraceEntry {
  uint64_t id;
  Nanos at;
  bool operator==(const TraceEntry&) const = default;
};

// Replays a deterministic random schedule script on any engine with the
// Simulator interface. Handlers reschedule follow-up events with seeded
// random delays, so ordering bugs compound into divergent traces quickly.
template <typename Engine>
std::vector<TraceEntry> RunScript(uint64_t seed, int initial_events,
                                  int max_events) {
  Engine sim;
  Rng rng(seed);
  std::vector<TraceEntry> trace;
  uint64_t next_id = 0;
  int scheduled = 0;

  std::function<void(uint64_t)> fire = [&](uint64_t id) {
    trace.push_back({id, sim.now()});
    // Each event spawns 0-2 children at a mix of near/far delays; delay 0
    // exercises the same-timestamp FIFO tie-break.
    const int children = static_cast<int>(rng.Uniform(3));
    for (int c = 0; c < children && scheduled < max_events; c++) {
      Nanos dt = 0;
      switch (rng.Uniform(4)) {
        case 0: dt = 0; break;                                  // same tick
        case 1: dt = rng.Uniform(100); break;                   // same bucket
        case 2: dt = rng.Uniform(100'000); break;               // near window
        default: dt = rng.Uniform(50'000'000); break;           // far heap
      }
      const uint64_t child = next_id++;
      scheduled++;
      sim.After(dt, [&fire, child] { fire(child); });
    }
  };

  for (int i = 0; i < initial_events; i++) {
    const uint64_t id = next_id++;
    scheduled++;
    sim.At(rng.Uniform(1'000'000), [&fire, id] { fire(id); });
  }

  // Mix RunUntil windows with free running, as the benches do.
  sim.RunUntil(500'000);
  trace.push_back({~uint64_t{0}, sim.now()});  // clock checkpoint
  // Schedule externally after the RunUntil, while events it did not reach
  // are still pending — some of these land earlier than those survivors,
  // which must not have dragged the engine's cursor past them.
  for (int i = 0; i < 8; i++) {
    const uint64_t id = next_id++;
    const Nanos dt = rng.Uniform(10'000'000);
    sim.At(sim.now() + dt, [&fire, id] { fire(id); });
  }
  sim.Run();
  trace.push_back({~uint64_t{0}, sim.now()});
  return trace;
}

TEST(CalendarQueue, MatchesReferenceHeapOnRandomSchedules) {
  for (uint64_t seed = 1; seed <= 25; seed++) {
    const auto got = RunScript<Simulator>(seed, 32, 4000);
    const auto want = RunScript<ReferenceSim>(seed, 32, 4000);
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (size_t i = 0; i < got.size(); i++) {
      ASSERT_EQ(got[i], want[i]) << "seed " << seed << " step " << i;
    }
  }
}

TEST(CalendarQueue, MassiveSameTimestampBurstIsFifo) {
  Simulator sim;
  std::vector<int> order;
  // Far more events on one timestamp than any single bucket expects.
  constexpr int kN = 20000;
  for (int i = 0; i < kN; i++) {
    sim.At(12345, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; i++) {
    ASSERT_EQ(order[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(sim.now(), 12345);
}

TEST(CalendarQueue, FarFutureEventsMigrateInOrder) {
  Simulator sim;
  std::vector<uint64_t> order;
  // Span many horizon windows: timers land well beyond the near buckets.
  const std::vector<Nanos> times = {5'000'000'000, 1,       3'000'000'000,
                                    2,             999'999, 4'000'000'001,
                                    4'000'000'000, 100'000'000};
  for (size_t i = 0; i < times.size(); i++) {
    sim.At(times[i], [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 3, 4, 7, 2, 6, 5, 0}));
  EXPECT_EQ(sim.now(), 5'000'000'000);
}

TEST(CalendarQueue, HandlersSchedulingAtNowRunThisStep) {
  Simulator sim;
  std::vector<int> order;
  sim.At(100, [&] {
    order.push_back(0);
    sim.After(0, [&] { order.push_back(2); });
  });
  sim.At(100, [&] { order.push_back(1); });
  sim.At(101, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueue, PendingAndProcessedCounts) {
  Simulator sim;
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.events_processed(), 0u);
  for (int i = 0; i < 10; i++) {
    sim.After(static_cast<Nanos>(i) * 10'000'000, [] {});
  }
  EXPECT_EQ(sim.pending_events(), 10u);
  sim.RunUntil(45'000'000);
  EXPECT_EQ(sim.pending_events(), 5u);
  EXPECT_EQ(sim.events_processed(), 5u);
  sim.Run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.events_processed(), 10u);
}

// Regression: RunUntil used to commit cursor movement for an event it then
// declined to pop, so a later At() with an earlier timestamp landed in a
// bucket behind the cursor and ran *after* the later event, with now()
// regressing. Trace from the report: At(3ms); RunUntil(1ms); At(1.1ms);
// Run() fired 3ms before 1.1ms.
TEST(CalendarQueue, RunUntilLeavingPendingEventDoesNotReorderLaterSchedules) {
  Simulator sim;
  std::vector<int> order;
  std::vector<Nanos> fired_at;
  sim.At(3'000'000, [&] {
    order.push_back(0);
    fired_at.push_back(sim.now());
  });
  EXPECT_EQ(sim.RunUntil(1'000'000), 0u);  // 3ms event stays pending
  EXPECT_EQ(sim.now(), 1'000'000);
  sim.At(1'100'000, [&] {
    order.push_back(1);
    fired_at.push_back(sim.now());
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
  EXPECT_EQ(fired_at, (std::vector<Nanos>{1'100'000, 3'000'000}));
}

// Same shape, but the pending survivor is a far timer beyond the near
// window: the declined settle must not jump the window to it either.
TEST(CalendarQueue, RunUntilLeavingPendingFarTimerDoesNotReorder) {
  Simulator sim;
  std::vector<Nanos> fired_at;
  sim.At(10'000'000'000, [&] { fired_at.push_back(sim.now()); });
  EXPECT_EQ(sim.RunUntil(1'000'000), 0u);
  sim.At(2'000'000, [&] { fired_at.push_back(sim.now()); });
  sim.At(1'000'000, [&] { fired_at.push_back(sim.now()); });  // t == now
  sim.Run();
  EXPECT_EQ(fired_at,
            (std::vector<Nanos>{1'000'000, 2'000'000, 10'000'000'000}));
  EXPECT_EQ(sim.now(), 10'000'000'000);
}

// Interleaved RunUntil windows and external schedules against the reference
// heap, asserting the clock never goes backwards.
TEST(CalendarQueue, RepeatedRunUntilWithExternalSchedulesStaysMonotonic) {
  for (uint64_t seed = 1; seed <= 10; seed++) {
    Simulator sim;
    ReferenceSim ref;
    Rng rng(seed);
    std::vector<TraceEntry> got, want;
    Nanos last = 0;
    uint64_t next_id = 0;
    for (int round = 0; round < 50; round++) {
      // A mix of near and far events, some beyond the RunUntil horizon so
      // survivors are always pending when the next round schedules.
      const int n = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < n; i++) {
        const Nanos t = sim.now() + rng.Uniform(20'000'000);
        const uint64_t id = next_id++;
        sim.At(t, [&got, &sim, &last, id] {
          ASSERT_GE(sim.now(), last);
          last = sim.now();
          got.push_back({id, sim.now()});
        });
        ref.At(t, [&want, &ref, id] { want.push_back({id, ref.now()}); });
      }
      const Nanos until = sim.now() + rng.Uniform(5'000'000);
      sim.RunUntil(until);
      ref.RunUntil(until);
      ASSERT_EQ(sim.now(), ref.now()) << "seed " << seed;
    }
    sim.Run();
    ref.Run();
    ASSERT_EQ(got, want) << "seed " << seed;
  }
}

TEST(CalendarQueue, RunUntilThenScheduleSkipsAhead) {
  Simulator sim;
  std::vector<int> order;
  // Advance the clock far past the initial near window with nothing queued,
  // then schedule around the new now.
  sim.RunUntil(10'000'000'000);
  EXPECT_EQ(sim.now(), 10'000'000'000);
  sim.After(5, [&] { order.push_back(1); });
  sim.After(0, [&] { order.push_back(0); });
  sim.After(20'000'000'000, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), 30'000'000'000);
}

}  // namespace
}  // namespace lsvd
